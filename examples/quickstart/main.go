// Quickstart: the Section 2 walk-through of the paper — querying authors,
// producing RDF as output, inventing anonymous resources with existential
// rules, and encoding owl:sameAs reasoning as a reusable rule library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The graph G4 of Section 2: two URIs for Jeffrey Ullman, linked by
	// owl:sameAs.
	g, err := repro.ParseGraph(`
		dbUllman is_author_of "The Complete Book" .
		dbUllman owl:sameAs yagoUllman .
		yagoUllman name "Jeffrey Ullman" .
		dbAho is_coauthor_of dbUllman .
		dbAho name "Alfred Aho" .
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Query (2): the author list. Without sameAs reasoning it is empty,
	// because the authorship and the name use different URIs.
	authors := `
		triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).
	`
	q, err := repro.ParseQuery(authors, "query")
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Ask(g, q, repro.TriQLite10, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("authors without the sameAs library:", res.Rows())

	// Section 2: "all these problems can be solved by incorporating a fixed
	// set of rules encoding the semantics of owl:sameAs". The library is
	// plain Datalog, so the combined query is still TriQ-Lite 1.0.
	sameAsLibrary := `
		% owl:sameAs is symmetric and transitive, and propagates triples.
		triple(?X, owl:sameAs, ?Y) -> triple2(?X, ?Y).
		triple2(?X, ?Y) -> triple2(?Y, ?X).
		triple2(?X, ?Y), triple2(?Y, ?Z) -> triple2(?X, ?Z).
		triple(?X, ?U, ?Y) -> eqtriple(?X, ?U, ?Y).
		eqtriple(?X1, ?U, ?Y), triple2(?X1, ?X2) -> eqtriple(?X2, ?U, ?Y).
		eqtriple(?X, ?U, ?Y1), triple2(?Y1, ?Y2) -> eqtriple(?X, ?U, ?Y2).
	`
	q2, err := repro.ParseQuery(sameAsLibrary+`
		eqtriple(?Y, is_author_of, ?Z), eqtriple(?Y, name, ?X) -> query(?X).
	`, "query")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.Validate(q2, repro.TriQLite10); err != nil {
		log.Fatal(err)
	}
	res, err = repro.Ask(g, q2, repro.TriQLite10, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("authors with the sameAs library:   ", res.Rows())

	// Query (4) as an existential rule: every pair of coauthors shares some
	// publication — an anonymous resource, invented by the ∃ in the head.
	q3, err := repro.ParseQuery(`
		triple(?X, is_coauthor_of, ?Y) ->
			exists ?Z pub(?X, ?Z), pub(?Y, ?Z).
		pub(?X, ?Z), triple(?X, name, ?N) -> query(?N).
	`, "query")
	if err != nil {
		log.Fatal(err)
	}
	res, err = repro.Ask(g, q3, repro.TriQLite10, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("people with some (possibly implied) publication:", res.Rows())
}
