// Anonymize: the Section 2 privacy example — replacing every subject URI by
// a blank node. Crucially, the SAME blank node must be used for every triple
// of a given subject, which the local blank-node semantics of SPARQL's
// CONSTRUCT cannot express, but a TriQ existential rule can.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g, err := repro.ParseGraph(`
		alice worksAt acme .
		alice email "alice@example.org" .
		bob worksAt initech .
	`)
	if err != nil {
		log.Fatal(err)
	}

	// First, the CONSTRUCT attempt: one fresh blank node per match, so
	// alice's two triples get DIFFERENT blanks — linkage is destroyed.
	construct, err := repro.ParseSPARQL(`
		CONSTRUCT { _:B ?P ?O } WHERE { ?S ?P ?O }
	`)
	if err != nil {
		log.Fatal(err)
	}
	viaConstruct, err := repro.Construct(construct, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CONSTRUCT (local blanks — alice's triples are unlinked):")
	fmt.Println(viaConstruct)

	// The paper's program: one blank node per subject, shared across all of
	// that subject's triples.
	q, err := repro.ParseQuery(`
		triple(?X, ?Y, ?Z) -> subj(?X).
		subj(?X) -> exists ?Y bn(?X, ?Y).
		triple(?X, ?Y, ?Z), bn(?X, ?U) -> output(?U, ?Y, ?Z).
	`, "query")
	if err != nil {
		log.Fatal(err)
	}
	_ = q // the output predicate here is "output"; query it directly:
	q2, err := repro.ParseQuery(`
		triple(?X, ?Y, ?Z) -> subj(?X).
		subj(?X) -> exists ?Y bn(?X, ?Y).
		triple(?X, ?Y, ?Z), bn(?X, ?U) -> out(?U, ?Y, ?Z).
		out(?U, ?Y, ?Z) -> query(?Y, ?Z).
	`, "query")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.Validate(q2, repro.TriQLite10); err != nil {
		log.Fatal(err)
	}
	res, err := repro.Ask(g, q2, repro.TriQLite10, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("anonymized predicate/object pairs (subjects hidden):")
	for _, row := range res.Rows() {
		fmt.Println(" ", row)
	}
	fmt.Println("\n(the out(·,·,·) relation itself holds one shared blank node per subject,")
	fmt.Println(" preserving linkage — see TestChaseAnonymizationGlobalBlankNodes)")
}
