// Clique: Example 4.3 of the paper — the k-clique query as a TriQ 1.0
// program, demonstrating that the language can express inherently hard
// (ExpTime) queries. The program builds a tree of n^k mappings with
// existential rules and checks it with stratified negation.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chase"
	"repro/internal/triq"
	"repro/internal/workload"
)

func main() {
	q := workload.CliqueQuery()
	if err := triq.Validate(q, triq.TriQ10); err != nil {
		log.Fatal("clique query should be TriQ 1.0: ", err)
	}
	if err := triq.Validate(q, triq.TriQLite10); err == nil {
		log.Fatal("clique query should NOT be TriQ-Lite 1.0")
	} else {
		fmt.Println("as expected, the program is TriQ 1.0 but not TriQ-Lite 1.0:")
		fmt.Println("  ", err)
	}

	for _, cfg := range []struct {
		n, k int
		seed int64
	}{
		{6, 3, 1}, {6, 4, 2}, {8, 3, 3}, {8, 4, 4},
	} {
		nodes, edges := workload.RandomGraph(cfg.n, 0.5, cfg.seed)
		db := workload.CliqueDB(cfg.k, nodes, edges)
		start := time.Now()
		res, err := triq.Eval(db, q, triq.TriQ10, triq.Options{
			Chase: chase.Options{MaxFacts: 10_000_000},
		})
		if err != nil {
			log.Fatal(err)
		}
		found := len(res.Answers.Tuples) > 0
		oracle := workload.HasClique(nodes, edges, cfg.k)
		fmt.Printf("n=%d k=%d: clique=%v (oracle %v), %d chase facts, %v\n",
			cfg.n, cfg.k, found, oracle, res.Stats.FactsDerived, time.Since(start).Round(time.Millisecond))
	}
}
