// Prooftree: Figure 1 of the paper — building and rendering the proof-tree
// of p(a,a) with respect to D = {s(a,a,a), t(a)} and the warded program of
// Example 6.10, using the ProofTree decision procedure of Section 6.3.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/datalog"
)

func main() {
	g, err := repro.ParseGraph(`
		a a a .
	`)
	_ = g
	if err != nil {
		log.Fatal(err)
	}
	// The prover works over arbitrary fact databases; Figure 1's database is
	// not a triple graph, so we feed it through the program facts directly
	// by using the internal entry point via the facade's graph loader on a
	// triple encoding, or simply build the instance with datalog atoms.
	prog, err := repro.ParseProgram(`
		s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).
		s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
		t(?X) -> exists ?Z p(?X, ?Z).
		p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
		r(?X, ?Y, ?Z) -> p(?X, ?Z).
	`)
	if err != nil {
		log.Fatal(err)
	}
	// Encode D = {s(a,a,a), t(a)} as triples the facade can load, then remap
	// them into the s/t predicates with two loading rules.
	data, err := repro.ParseGraph(`
		a sfact3 a .
		a tfact a .
	`)
	if err != nil {
		log.Fatal(err)
	}
	loader, err := repro.ParseProgram(`
		triple(?X, sfact3, ?Z) -> s(?X, ?X, ?Z).
		triple(?X, tfact, ?Y) -> t(?X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	full := loader.Merge(prog)
	pv, err := repro.NewProver(data, full)
	if err != nil {
		log.Fatal(err)
	}
	goal := datalog.MustParseAtom("p(a, a)")
	node, ok, err := pv.Prove(goal)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("%v should be provable (Figure 1)", goal)
	}
	fmt.Printf("proof-tree of %v (Definition 6.11, cf. Figure 1):\n\n", goal)
	fmt.Print(node.Render())
	fmt.Printf("\n%d nodes.\n", node.Size())

	// r(a,a,a) is also derivable (p(a,a) and q(a,a) both hold)…
	also := datalog.MustParseAtom("r(a, a, a)")
	_, ok, err = pv.Prove(also)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v provable: %v\n", also, ok)
	// …while a goal that no chase derivation reaches is refuted finitely.
	bad := datalog.MustParseAtom("s(a, sfact3, a)")
	_, ok, err = pv.Prove(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v provable: %v\n", bad, ok)
}
