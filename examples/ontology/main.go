// Ontology: SPARQL under the OWL 2 QL core direct semantics entailment
// regime (Sections 5.2–5.3). The same basic graph pattern is evaluated under
// plain SPARQL, under the active-domain regime ⟦·⟧^U, and under ⟦·⟧^All —
// reproducing the dog-that-eats-something story of the paper.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/chase"
	"repro/internal/owl"
)

func main() {
	// The graph (14) of Section 5.2: dog is an animal, every animal eats
	// something — with the herbivore twist of Section 5.3: whatever is eaten
	// is plant material.
	o := owl.NewOntology().Add(
		owl.ClassAssertion(owl.Atom("animal"), "dog"),
		owl.SubClassOf(owl.Atom("animal"), owl.Some(owl.Prop("eats"))),
		owl.SubClassOf(owl.Some(owl.Inv("eats")), owl.Atom("plant_material")),
	)
	g := o.ToGraph()
	fmt.Println("ontology:")
	fmt.Println(o)

	q, err := repro.ParseSPARQL(`SELECT ?X WHERE { ?X eats _:B . _:B rdf:type plant_material }`)
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.Options{Chase: chase.Options{MaxDepth: 16}}

	for _, mode := range []struct {
		name   string
		regime repro.Regime
	}{
		{"plain SPARQL            ", repro.PlainRegime},
		{"OWL 2 QL core regime (U)", repro.ActiveDomainRegime},
		{"regime without AD (All) ", repro.AllRegime},
	} {
		ms, inconsistent, err := repro.AskSPARQL(q, g, mode.regime, opts)
		if err != nil {
			log.Fatal(err)
		}
		if inconsistent {
			fmt.Printf("%s → ⊤\n", mode.name)
			continue
		}
		fmt.Printf("%s → %d mapping(s) %s\n", mode.name, ms.Len(), ms)
	}

	// The independent DL-LiteR reasoner agrees: dog ∈ ∃eats, and the
	// anonymous meal is plant material in every model.
	r := owl.NewReasoner(o)
	fmt.Printf("\noracle: dog ∈ ∃eats = %v, ∃eats⁻ ⊑ plant_material = %v\n",
		r.Member("dog", owl.Some(owl.Prop("eats"))),
		r.SubClassOf(owl.Some(owl.Inv("eats")), owl.Atom("plant_material")))
}
