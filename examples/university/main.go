// University: a LUBM-style end-to-end walk-through — an OWL 2 QL core
// ontology written in functional-style syntax, SPARQL queries answered
// under the entailment regime (Theorem 5.3), and consistency checking via
// the disjointness constraints of τ_owl2ql_core.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/chase"
)

const ontologySrc = `
% TBox: the usual university vocabulary (DL-LiteR / OWL 2 QL core).
SubClassOf(professor, faculty)
SubClassOf(faculty, employee)
SubClassOf(employee, person)
SubClassOf(student, person)
SubClassOf(professor, ∃teaches)
SubClassOf(∃teaches⁻, course)
SubClassOf(∃advises, professor)
SubClassOf(∃advises⁻, student)
SubObjectPropertyOf(headOf, worksFor)
SubClassOf(∃worksFor⁻, department)
DisjointClasses(person, course)

% ABox
ObjectPropertyAssertion(headOf, ada, cs)
ObjectPropertyAssertion(advises, ada, bob)
ObjectPropertyAssertion(advises, ada, cleo)
ClassAssertion(professor, turing)
`

func main() {
	onto, err := repro.ParseOntology(ontologySrc)
	if err != nil {
		log.Fatal(err)
	}
	g := onto.ToGraph()
	opts := repro.Options{Chase: chase.Options{MaxDepth: 10}}

	queries := []string{
		// bob and cleo are persons only via ∃advises⁻ ⊑ student ⊑ person;
		// ada via headOf ⊑ worksFor, ∃worksFor... and ∃advises ⊑ professor.
		`SELECT ?X WHERE { ?X rdf:type person }`,
		// Who works for what (headOf is a subproperty).
		`SELECT ?X ?D WHERE { ?X worksFor ?D }`,
		// Professors teach something: anonymous witness, so ask with a blank.
		`SELECT ?X WHERE { ?X teaches _:C }`,
	}
	for _, src := range queries {
		q, err := repro.ParseSPARQL(src)
		if err != nil {
			log.Fatal(err)
		}
		plain, err := repro.EvalSPARQL(q, g)
		if err != nil {
			log.Fatal(err)
		}
		// Under ⟦·⟧^All even anonymous witnesses count.
		regime, inconsistent, err := repro.AskSPARQL(q, g, repro.AllRegime, opts)
		if err != nil {
			log.Fatal(err)
		}
		if inconsistent {
			log.Fatal("unexpected inconsistency")
		}
		fmt.Printf("%s\n  plain:  %d mappings\n  regime: %d mappings %s\n\n",
			src, plain.Len(), regime.Len(), regime)
	}

	// Now violate the disjointness: a course that is also a person.
	bad, err := repro.ParseOntology(ontologySrc + `
		ClassAssertion(course, bob)
	`)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := repro.ParseSPARQL(`SELECT ?X WHERE { ?X rdf:type person }`)
	_, inconsistent, err := repro.AskSPARQL(q, bad.ToGraph(), repro.ActiveDomainRegime, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after asserting course(bob): inconsistent = %v (bob is a student via ∃advises⁻, and person ⊓ course ⊑ ⊥)\n", inconsistent)
}
