// Paths: the navigational baseline. SPARQL 1.1 property paths (the
// regular-expression mechanism the paper's introduction discusses) handle
// single-direction reachability fine — but the Section 2 transport query
// needs recursion in two directions at once, and this example demonstrates
// finitely that no small path expression expresses it: expressions tuned to
// one network break on a renamed copy, while the TriQ program transfers.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func main() {
	// Plain reachability IS a property path.
	g, _ := repro.ParseGraph(`
		a knows b .
		b knows c .
		c knows d .
	`)
	reach := sparql.MustParsePath("knows+")
	fmt.Println("knows+ pairs:")
	for _, p := range sparql.EvalPath(g, reach).Sorted() {
		fmt.Printf("  %s → %s\n", p[0], p[1])
	}

	// The transport query is not: enumerate every path expression up to
	// size 5 over network A's vocabulary…
	gA := workload.TransportGraph(2, 2, 3, "acme")
	gB := workload.TransportGraph(2, 2, 3, "zeta")
	wantA := transportRelation(gA)
	wantB := transportRelation(gB)
	var alphabet []string
	for _, p := range gA.Predicates() {
		alphabet = append(alphabet, p.Value)
	}
	exprs := sparql.EnumeratePaths(alphabet, 5)
	var winners []sparql.PathExpr
	for _, e := range exprs {
		if sparql.EvalPath(gA, e).Equal(wantA) {
			winners = append(winners, e)
		}
	}
	fmt.Printf("\n%d path expressions enumerated over network A's vocabulary\n", len(exprs))
	fmt.Printf("%d compute the correct transport relation on network A, e.g.:\n", len(winners))
	for i, e := range winners {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s\n", e)
	}
	survived := 0
	for _, e := range winners {
		if sparql.EvalPath(gB, e).Equal(wantB) {
			survived++
		}
	}
	fmt.Printf("…but %d of them survive on network B (renamed services).\n", survived)
	fmt.Println("The TriQ-Lite program is correct on both networks unchanged.")
}

func transportRelation(g *repro.Graph) sparql.PairSet {
	res, err := repro.Ask(g, workload.TransportQuery(), repro.TriQLite10, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	out := make(sparql.PairSet)
	for _, tup := range res.Tuples {
		out[sparql.TermPair{tup[0], tup[1]}] = true
	}
	return out
}
