package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chase"
	"repro/internal/obs"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
	"repro/internal/workload"
)

// e12Reps is how many interleaved off/on pairs each workload is measured
// over; minima are compared, which damps scheduler noise on both sides
// identically.
const e12Reps = 5

// e12Overhead is the telemetry-on overhead the experiment accepts. The
// target recorded in EXPERIMENTS.md is 5%; the OK gate is doubled so a noisy
// CI host does not flip the table.
const e12Overhead = 0.10

// e12Workload is one E11 workload evaluated with a caller-supplied chase
// option block, so the same code path runs with telemetry off (nil Obs, nil
// Progress) and on (registry + live progress attached).
type e12Workload struct {
	name string
	run  func(o chase.Options) error
}

func e12Workloads() []e12Workload {
	return []e12Workload{
		{
			name: "transport lines=48",
			run: func(o chase.Options) error {
				db := workload.Transport(48, 3, 6)
				_, err := triq.Eval(db, workload.TransportQuery(), triq.TriQLite10, triq.Options{Chase: o})
				return err
			},
		},
		{
			name: "clique n=7 k=4",
			run: func(o chase.Options) error {
				nodes, edges := workload.RandomGraph(7, 0.5, 74)
				db := workload.CliqueDB(4, nodes, edges)
				o.MaxFacts = 10_000_000
				_, err := triq.Eval(db, workload.CliqueQuery(), triq.TriQ10, triq.Options{Chase: o})
				return err
			},
		},
		{
			name: "university regime",
			run: func(o chase.Options) error {
				onto := workload.University(3, 2, 3, false)
				p := sparql.BGP{Triples: []sparql.TriplePattern{
					sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("person")),
				}}
				tr, err := translate.Translate(p, translate.ActiveDomain)
				if err != nil {
					return err
				}
				o.MaxDepth = 10
				_, _, err = tr.EvaluateFull(onto.ToGraph(), triq.Options{Chase: o})
				return err
			},
		},
	}
}

// histBreakdown renders the span histograms of a registry as percentile
// StageMetric rows (count, p50, p95, p99, max in the span's native µs).
func histBreakdown(stage string, reg *obs.Registry) []StageMetric {
	snap := reg.Snapshot()
	var names []string
	for name := range snap.Hists {
		if strings.HasPrefix(name, "span.") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var rows []StageMetric
	for _, name := range names {
		h := snap.Hists[name]
		span := strings.TrimPrefix(name, "span.")
		rows = append(rows,
			StageMetric{stage, span + ".count", fmt.Sprintf("%d", h.Count)},
			StageMetric{stage, span + ".p50_us", fmt.Sprintf("%.0f", h.P50)},
			StageMetric{stage, span + ".p95_us", fmt.Sprintf("%.0f", h.P95)},
			StageMetric{stage, span + ".p99_us", fmt.Sprintf("%.0f", h.P99)},
			StageMetric{stage, span + ".max_us", fmt.Sprintf("%.0f", h.Max)},
		)
	}
	return rows
}

// RunE12 measures the cost of the telemetry layer itself: each E11 workload
// runs with observability fully off (nil handle — no registry, no spans, no
// progress) and fully on (metrics registry, span histograms, live progress
// gauge), interleaved rep by rep; the minima are compared. The claim is that
// full telemetry is cheap enough to leave on in production. The telemetry-on
// registry also feeds the per-stage histogram percentiles into the breakdown,
// which is the exposition /metrics serves.
func RunE12() *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Telemetry overhead: histogram metrics, spans, and live progress on vs off",
		Claim:   "query-level telemetry (atomic histograms + progress gauges) costs ≤5% wall clock on the E11 workloads",
		Columns: []string{"workload", "telemetry off", "telemetry on", "overhead", "within bound"},
		OK:      true,
	}
	for _, w := range e12Workloads() {
		var offBest, onBest time.Duration
		var lastReg *obs.Registry
		failed := false
		for rep := 0; rep < e12Reps; rep++ {
			start := time.Now()
			err := w.run(par(chase.Options{}))
			off := time.Since(start)

			o := obs.New()
			progress := &chase.Progress{}
			start = time.Now()
			onErr := w.run(par(chase.Options{Obs: o, Progress: progress}))
			on := time.Since(start)

			if err != nil || onErr != nil {
				t.OK = false
				failed = true
				t.Notes = append(t.Notes, fmt.Sprintf("%s: off=%v on=%v", w.name, err, onErr))
				break
			}
			if rep == 0 || off < offBest {
				offBest = off
			}
			if rep == 0 || on < onBest {
				onBest = on
			}
			lastReg = o.Registry()
		}
		if failed {
			continue
		}
		overhead := float64(onBest-offBest) / float64(offBest)
		ok := overhead <= e12Overhead
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			w.name, dur(offBest), dur(onBest),
			fmt.Sprintf("%+.1f%%", overhead*100), fmt.Sprintf("%v", ok),
		})
		if lastReg != nil {
			t.Breakdown = append(t.Breakdown, histBreakdown(w.name, lastReg)...)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Best of %d interleaved reps per side. Target ≤5%%; the OK gate allows %.0f%% headroom for scheduler noise.",
		e12Reps, e12Overhead*100))
	return t
}
