package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/chase"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/translate"
	"repro/internal/triq"
	"repro/internal/workload"
)

// E15: WAL-shipping replication. Three questions, one table:
//
//  1. Replication lag: how far behind does a streaming replica trail a
//     primary committing batches flat out, and how long is the catch-up
//     tail once writes stop?
//  2. Failover: after the primary dies, how long until a promote-on-loss
//     replica serves its first 200 to a write (the real serve path, not
//     just the state flip)?
//  3. Steady-state overhead: does an attached, streaming replica slow the
//     primary's read path?
//
// As in E14 the OK gates are correctness, not speed — the replica must
// converge to the primary's exact graph, the promoted node must accept and
// apply the write, and read answers must be identical with and without the
// replica attached — so the table stays green on noisy CI hosts while
// still recording the measured lag, failover time, and overhead.

// e15LagBatches is the batches committed per replication-lag point.
const e15LagBatches = 150

// e15Heartbeat keeps the harness brisk; production default is 500ms.
const e15Heartbeat = 25 * time.Millisecond

// e15ReadReps is the evaluations per read-overhead arm.
const e15ReadReps = 5

// e15Batch builds batch b of n distinct triples tagged for E15.
func e15Batch(b, n int) []rdf.Triple {
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.T(fmt.Sprintf("e15-b%d-s%d", b, i), "e15-p", fmt.Sprintf("o%d", i))
	}
	return ts
}

// e15LagResult is one replication-lag measurement.
type e15LagResult struct {
	write    time.Duration // committing e15LagBatches batches on the primary
	converge time.Duration // write start → replica at the final epoch
	epoch    uint64
	ok       bool // replica graph bit-identical to the primary's
}

// e15Lag streams a write burst of the given batch size into a live replica
// and measures the catch-up tail (converge − write).
func e15Lag(batch int) (e15LagResult, error) {
	var r e15LagResult
	primary, _, err := store.Open(store.Config{})
	if err != nil {
		return r, err
	}
	defer primary.Close()
	srv := httptest.NewServer(repl.StreamHandler(primary, nil, repl.StreamOptions{Heartbeat: e15Heartbeat}))
	replica, _, err := store.Open(store.Config{})
	if err != nil {
		srv.Close()
		return r, err
	}
	rep := repl.New(repl.Config{Primary: srv.URL, Store: replica, Backoff: 5 * time.Millisecond})
	rep.Start(context.Background())
	defer func() {
		rep.Stop() // disconnect before srv.Close, which waits on the stream
		srv.Close()
		replica.Close()
	}()

	start := time.Now()
	for b := 0; b < e15LagBatches; b++ {
		if _, _, err := primary.Insert(e15Batch(b, batch)); err != nil {
			return r, err
		}
	}
	r.write = time.Since(start)

	want := primary.Current()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := replica.WaitEpoch(ctx, want.Seq); err != nil {
		return r, fmt.Errorf("replica stuck at epoch %d waiting for %d: %w",
			replica.Current().Seq, want.Seq, err)
	}
	r.converge = time.Since(start)
	got := replica.Current()
	r.epoch = got.Seq
	r.ok = got.Seq == want.Seq && got.Graph.Equal(want.Graph)
	return r, nil
}

// e15Failover kills a primary under a promote-on-loss replica and measures
// the time from the kill to the replica's first 200 on a write — the full
// serve path: loss detection, grace, promotion, and the mutation handler
// flipping from 503-with-primary-address to accepting the batch.
func e15Failover(grace time.Duration) (timeToFirst200 time.Duration, ok bool, err error) {
	newServer := func(st *store.Store) (*serve.Server, *httptest.Server) {
		cfg := serve.Config{Obs: obs.New()}
		cfg.Breaker.Disabled = true
		s := serve.New(cfg)
		s.SetStore(st)
		return s, httptest.NewServer(s.Handler())
	}

	priStore, _, err := store.Open(store.Config{})
	if err != nil {
		return 0, false, err
	}
	defer priStore.Close()
	if _, _, err := priStore.Insert(e15Batch(0, 8)); err != nil {
		return 0, false, err
	}
	_, pri := newServer(priStore)

	repStore, _, err := store.Open(store.Config{})
	if err != nil {
		pri.Close()
		return 0, false, err
	}
	defer repStore.Close()
	repSrv, repTS := newServer(repStore)
	defer repTS.Close()
	rep := repl.New(repl.Config{
		Primary: pri.URL, Store: repStore,
		PromoteOnLoss: true, PromoteGrace: grace,
		Backoff: 5 * time.Millisecond,
	})
	repSrv.SetReplica(rep)
	rep.Start(context.Background())
	defer rep.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := repStore.WaitEpoch(ctx, priStore.Current().Seq); err != nil {
		pri.Close()
		return 0, false, fmt.Errorf("replica never caught up: %v", err)
	}
	base := repStore.Current().Seq

	post := func() (int, uint64) {
		body, _ := json.Marshal(serve.MutationRequest{Triples: "e15 failover write .\n"})
		resp, err := http.Post(repTS.URL+"/insert", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, 0
		}
		defer resp.Body.Close()
		var mr serve.MutationResponse
		json.NewDecoder(resp.Body).Decode(&mr)
		return resp.StatusCode, mr.Epoch
	}

	// Before the kill a replica refuses writes: the 503 is the baseline the
	// failover recovers from.
	if status, _ := post(); status != http.StatusServiceUnavailable {
		pri.Close()
		return 0, false, fmt.Errorf("pre-failover write = %d, want 503", status)
	}

	// Kill the primary and poll the replica's write path until the first 200.
	start := time.Now()
	pri.CloseClientConnections()
	pri.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, epoch := post()
		if status == http.StatusOK {
			elapsed := time.Since(start)
			applied := epoch == base+1 &&
				repStore.Current().Graph.Has(rdf.T("e15", "failover", "write"))
			return elapsed, applied, nil
		}
		if time.Now().After(deadline) {
			return time.Since(start), false, fmt.Errorf("no 200 after primary kill (last status %d)", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// e15ReadArm evaluates the transport closure e15ReadReps times against the
// store's pinned graph (the serve read path without HTTP framing) and
// returns the minimum single-evaluation wall clock — the same
// best-of-reps reporting as E11, which damps scheduler noise without
// hiding a real slowdown — plus the canonical answer rendering.
func e15ReadArm(st *store.Store) (time.Duration, string, error) {
	evalOnce := func() (string, error) {
		db := translate.DB(st.Current().Graph)
		res, err := triq.Eval(db, workload.TransportQuery(), triq.TriQLite10,
			triq.Options{Chase: par(chase.Options{})})
		if err != nil {
			return "", err
		}
		return renderTuples(res), nil
	}
	// One warm-up evaluation keeps allocator noise out of the comparison.
	if _, err := evalOnce(); err != nil {
		return 0, "", err
	}
	best := time.Duration(0)
	var answers string
	for i := 0; i < e15ReadReps; i++ {
		start := time.Now()
		a, err := evalOnce()
		if err != nil {
			return 0, "", err
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
		answers = a
	}
	return best, answers, nil
}

// e15Overhead measures the primary's read throughput with and without an
// attached streaming replica. The answers must be identical in both arms
// and the replica must hold the exact graph at the end.
func e15Overhead() (base, attached time.Duration, ok bool, err error) {
	st, _, err := store.Open(store.Config{})
	if err != nil {
		return 0, 0, false, err
	}
	defer st.Close()
	if _, err := st.Bootstrap(workload.TransportGraph(24, 3, 6, "e15")); err != nil {
		return 0, 0, false, err
	}

	base, baseAnswers, err := e15ReadArm(st)
	if err != nil {
		return 0, 0, false, err
	}

	srv := httptest.NewServer(repl.StreamHandler(st, nil, repl.StreamOptions{Heartbeat: e15Heartbeat}))
	replica, _, err := store.Open(store.Config{})
	if err != nil {
		srv.Close()
		return 0, 0, false, err
	}
	rep := repl.New(repl.Config{Primary: srv.URL, Store: replica, Backoff: 5 * time.Millisecond})
	rep.Start(context.Background())
	defer func() {
		rep.Stop()
		srv.Close()
		replica.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := replica.WaitEpoch(ctx, st.Current().Seq); err != nil {
		return 0, 0, false, fmt.Errorf("replica never caught up: %v", err)
	}

	attached, attachedAnswers, err := e15ReadArm(st)
	if err != nil {
		return 0, 0, false, err
	}
	ok = baseAnswers == attachedAnswers &&
		replica.Current().Graph.Equal(st.Current().Graph)
	return base, attached, ok, nil
}

// RunE15 measures WAL-shipping replication: lag and catch-up per batch
// size, serve-level failover time-to-first-200, and the read-path cost of
// an attached replica.
func RunE15() *Table {
	t := &Table{
		ID:      "E15",
		Title:   "WAL-shipping replication: lag, failover, and read overhead",
		Claim:   "replicas converge to the primary's exact graph, a promote-on-loss failover yields a writable node, and attached replication leaves read answers unchanged",
		Columns: []string{"scenario", "config", "elapsed", "rate", "ok"},
		OK:      true,
	}

	for _, batch := range []int{1, 64} {
		r, err := e15Lag(batch)
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("lag batch=%d: %v", batch, err))
			continue
		}
		if !r.ok {
			t.OK = false
		}
		tail := r.converge - r.write
		perSec := float64(e15LagBatches) / r.write.Seconds()
		t.Rows = append(t.Rows, []string{
			"replication lag",
			fmt.Sprintf("batch=%d n=%d", batch, e15LagBatches),
			dur(r.converge),
			fmt.Sprintf("%.0f batches/s, catch-up tail %s", perSec, dur(tail)),
			fmt.Sprintf("%v", r.ok),
		})
		t.Breakdown = append(t.Breakdown,
			StageMetric{fmt.Sprintf("lag batch=%d", batch), "catch_up_tail_us", fmt.Sprintf("%d", tail.Microseconds())},
			StageMetric{fmt.Sprintf("lag batch=%d", batch), "replica_epoch", fmt.Sprintf("%d", r.epoch)},
		)
	}

	grace := 100 * time.Millisecond
	elapsed, ok, err := e15Failover(grace)
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, fmt.Sprintf("failover: %v", err))
	} else {
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			"failover",
			fmt.Sprintf("promote-on-loss grace=%s", grace),
			dur(elapsed),
			"time to first 200 after primary kill",
			fmt.Sprintf("%v", ok),
		})
		t.Breakdown = append(t.Breakdown,
			StageMetric{"failover", "time_to_first_200_us", fmt.Sprintf("%d", elapsed.Microseconds())})
	}

	base, attached, okReads, err := e15Overhead()
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, fmt.Sprintf("read overhead: %v", err))
	} else {
		if !okReads {
			t.OK = false
		}
		overhead := (attached.Seconds() - base.Seconds()) / base.Seconds() * 100
		t.Rows = append(t.Rows,
			[]string{"read workload", "no replica", dur(base),
				fmt.Sprintf("%.1f evals/s", 1/base.Seconds()), fmt.Sprintf("%v", okReads)},
			[]string{"read workload", "replica attached", dur(attached),
				fmt.Sprintf("%.1f evals/s (%+.1f%%)", 1/attached.Seconds(), overhead), fmt.Sprintf("%v", okReads)},
		)
		t.Breakdown = append(t.Breakdown,
			StageMetric{"read overhead", "overhead_pct", fmt.Sprintf("%.1f", overhead)})
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("Lag: %d single-writer batches per point against a live streaming replica (heartbeat %s); the catch-up tail is convergence time minus write time.", e15LagBatches, e15Heartbeat),
		"Failover: the full serve path — the replica answers 503 with the primary's address until promote-on-loss fires, then applies the write at the next epoch.",
		fmt.Sprintf("Read overhead: best of %d transport-closure evaluations per arm against the pinned epoch graph (E11's noise-damping reporting); reads never take the replication path, so the expected overhead is noise (target ≤5%%).", e15ReadReps),
	)
	return t
}
