package bench

import (
	"fmt"
	"time"

	"repro"

	"repro/internal/chase"
	"repro/internal/mat"
	"repro/internal/rdf"
	"repro/internal/triq"
	"repro/internal/workload"
)

// E16: incremental materialization. Three questions, one table:
//
//  1. Warm-serve speedup: after a 1-triple insert, how much faster is a
//     query answered from the DRed/semi-naive-maintained materialization
//     than re-chasing the whole graph (the E11 transport workload)?
//  2. Maintain cost: how does the latency of folding one committed batch
//     into the warm instance scale with the batch size, for both inserts
//     (semi-naive) and deletes (DRed)?
//  3. Write-heavy mix: under an insert/delete/query interleaving, does the
//     materialization stay warm — every query served from it — and what is
//     the sustained maintenance latency?
//
// The OK gates are the PR's acceptance claims: warm answers identical to the
// re-chase with ≥5× lower latency after a 1-triple insert, maintenance cost
// proportional to the delta (per-triple cost must not blow up with batch
// size), and the mixed workload never losing the warm entry.

// e16Reps is the best-of repetitions per latency point.
const e16Reps = 5

// e16SpeedupFloor is the acceptance bar for warm serving vs re-chase after a
// single-triple insert.
const e16SpeedupFloor = 5.0

// e16Harness is one transport store wired into a materializer.
type e16Harness struct {
	st *repro.Store
	m  *mat.Materializer
	q  repro.Query
	co chase.Options
}

func newE16Harness(lines, depth, cities int) (*e16Harness, error) {
	co := chase.Options{Parallelism: parallelism}
	m := mat.New(mat.Config{Chase: co})
	scfg := repro.StoreConfig{}
	scfg.OnCommit = m.OnCommit
	st, _, err := repro.OpenStore(scfg)
	if err != nil {
		return nil, err
	}
	m.Reset(st.Current().Seq)
	g := workload.TransportGraph(lines, depth, cities, "e16")
	if _, _, err := st.Insert(g.Triples()); err != nil {
		st.Close()
		return nil, err
	}
	return &e16Harness{st: st, m: m, q: workload.TransportQuery(), co: co}, nil
}

func (h *e16Harness) opts() repro.Options {
	return repro.Options{Chase: h.co, Mat: h.m, MatEpoch: h.st.Current().Seq}
}

// build performs the cold evaluation that installs the materialization and
// verifies the entry is warm afterwards.
func (h *e16Harness) build() error {
	if _, err := repro.Ask(h.st.Current().Graph, h.q, repro.TriQLite10, h.opts()); err != nil {
		return err
	}
	if _, ok := triq.ServeMaterialized(h.q, repro.TriQLite10, h.opts()); !ok {
		return fmt.Errorf("cold build did not install the materialization")
	}
	return nil
}

// warmAsk evaluates through the materialization fast path and fails if the
// answer was not actually served from the warm instance.
func (h *e16Harness) warmAsk() (*repro.Results, error) {
	if _, ok := triq.ServeMaterialized(h.q, repro.TriQLite10, h.opts()); !ok {
		return nil, fmt.Errorf("epoch %d not served warm", h.st.Current().Seq)
	}
	return repro.Ask(h.st.Current().Graph, h.q, repro.TriQLite10, h.opts())
}

// e16Render canonicalizes answers for identity checks.
func e16Render(res *repro.Results) string {
	out := fmt.Sprintf("inconsistent=%v\n", res.Inconsistent)
	for _, row := range res.Rows() {
		out += row + "\n"
	}
	return out
}

// e16Fresh builds batch-distinct triples that extend line 0's city chain, so
// every one of them feeds the recursive conn derivation.
func e16Fresh(tag string, n int) []rdf.Triple {
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.T(fmt.Sprintf("e16x-%s-%d", tag, i), "e16_line0", fmt.Sprintf("e16x-%s-%d'", tag, i))
	}
	return ts
}

// bestOf runs f e16Reps times and returns the minimum wall clock.
func bestOf(f func() error) (time.Duration, error) {
	var best time.Duration
	for rep := 0; rep < e16Reps; rep++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); rep == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunE16 measures the incremental materialization maintain/serve path.
func RunE16() *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Incremental materialization: maintain cost and warm-serve speedup",
		Claim:   "semi-naive insert deltas and DRed deletes keep the chased fixpoint warm: queries skip the re-chase entirely and maintenance cost tracks the delta, not the database",
		Columns: []string{"scenario", "point", "warm / maintain", "re-chase / per-triple", "speedup / note"},
		OK:      true,
	}
	fail := func(format string, args ...any) {
		t.OK = false
		t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	}

	// 1. Warm vs re-chase after a single-triple insert.
	for _, lines := range []int{8, 24, 48} {
		name := fmt.Sprintf("transport lines=%d", lines)
		h, err := newE16Harness(lines, 3, 6)
		if err != nil {
			fail("%s: %v", name, err)
			continue
		}
		if err := h.build(); err != nil {
			h.st.Close()
			fail("%s: cold build: %v", name, err)
			continue
		}
		if _, _, err := h.st.Insert(e16Fresh("one", 1)); err != nil {
			h.st.Close()
			fail("%s: 1-triple insert: %v", name, err)
			continue
		}
		var warmRes, chaseRes *repro.Results
		warm, err := bestOf(func() error { warmRes, err = h.warmAsk(); return err })
		if err != nil {
			h.st.Close()
			fail("%s: warm ask: %v", name, err)
			continue
		}
		rechase, err := bestOf(func() error {
			chaseRes, err = repro.Ask(h.st.Current().Graph, h.q, repro.TriQLite10, repro.Options{Chase: h.co})
			return err
		})
		if err != nil {
			h.st.Close()
			fail("%s: re-chase: %v", name, err)
			continue
		}
		if e16Render(warmRes) != e16Render(chaseRes) {
			fail("%s: warm answers diverge from the re-chase", name)
		}
		speedup := float64(rechase) / float64(warm)
		if speedup < e16SpeedupFloor {
			fail("%s: warm speedup %.1fx under the %.0fx floor", name, speedup, e16SpeedupFloor)
		}
		t.Rows = append(t.Rows, []string{
			"warm vs re-chase", name, dur(warm), dur(rechase), fmt.Sprintf("%.1fx", speedup),
		})
		t.Breakdown = append(t.Breakdown,
			StageMetric{Stage: name, Metric: "answers", Value: fmt.Sprintf("%d", len(warmRes.Tuples))},
			StageMetric{Stage: name, Metric: "mat_facts", Value: fmt.Sprintf("%d", h.m.Snapshot().Facts)})
		h.st.Close()
	}

	// 2. Maintain latency vs batch size, inserts then DRed deletes.
	{
		h, err := newE16Harness(24, 3, 6)
		if err != nil {
			fail("maintain sweep: %v", err)
		} else {
			if err := h.build(); err != nil {
				fail("maintain sweep: cold build: %v", err)
			}
			type point struct {
				size      int
				ins, del  time.Duration
				perTriple time.Duration
			}
			var points []point
			for _, size := range []int{1, 8, 64, 256} {
				batch := e16Fresh(fmt.Sprintf("b%d", size), size)
				start := time.Now()
				if _, _, err := h.st.Insert(batch); err != nil {
					fail("maintain sweep insert n=%d: %v", size, err)
					break
				}
				ins := time.Since(start)
				start = time.Now()
				if _, _, err := h.st.Delete(batch); err != nil {
					fail("maintain sweep delete n=%d: %v", size, err)
					break
				}
				del := time.Since(start)
				per := (ins + del) / time.Duration(2*size)
				points = append(points, point{size: size, ins: ins, del: del, perTriple: per})
				t.Rows = append(t.Rows, []string{
					"maintain vs batch", fmt.Sprintf("n=%d", size),
					fmt.Sprintf("ins %s / del %s", dur(ins), dur(del)),
					fmt.Sprintf("%s/triple", dur(per)),
					"insert=semi-naive, delete=DRed",
				})
			}
			// Proportionality gate: per-triple cost must not explode as the
			// batch grows — folding a 256-triple delta is allowed fixed
			// overhead but not a superlinear blowup over the 8-triple point.
			if len(points) == 4 {
				base, big := points[1], points[3]
				if big.perTriple > 10*base.perTriple {
					fail("maintain cost superlinear: %s/triple at n=%d vs %s/triple at n=%d",
						dur(big.perTriple), big.size, dur(base.perTriple), base.size)
				}
			}
			if snap := h.m.Snapshot(); snap.Programs != 1 {
				fail("maintain sweep dropped the materialization")
			}
			h.st.Close()
		}
	}

	// 3. Write-heavy mix: inserts, DRed deletes, and queries interleaved.
	{
		h, err := newE16Harness(16, 3, 6)
		if err != nil {
			fail("write mix: %v", err)
		} else {
			if err := h.build(); err != nil {
				fail("write mix: cold build: %v", err)
			}
			var pending [][]rdf.Triple
			var maintain time.Duration
			mutations, queries := 0, 0
			for i := 0; i < 60; i++ {
				switch i % 3 {
				case 0, 1: // write-heavy: two mutations per query
					var err error
					start := time.Now()
					if len(pending) > 2 && i%2 == 0 {
						_, _, err = h.st.Delete(pending[0])
						pending = pending[1:]
					} else {
						batch := e16Fresh(fmt.Sprintf("mix%d", i), 4)
						_, _, err = h.st.Insert(batch)
						pending = append(pending, batch)
					}
					maintain += time.Since(start)
					mutations++
					if err != nil {
						fail("write mix op %d: %v", i, err)
						i = 60
					}
				default:
					if _, err := h.warmAsk(); err != nil {
						fail("write mix query %d: %v", i, err)
						i = 60
					}
					queries++
				}
			}
			if snap := h.m.Snapshot(); snap.Programs != 1 {
				fail("write mix dropped the materialization")
			}
			if mutations > 0 {
				t.Rows = append(t.Rows, []string{
					"write-heavy mix",
					fmt.Sprintf("%d mutations / %d queries", mutations, queries),
					fmt.Sprintf("%s/mutation", dur(maintain/time.Duration(mutations))),
					"-",
					"every query served warm",
				})
			}
			h.st.Close()
		}
	}

	t.Notes = append(t.Notes,
		"Warm latency is the full facade Ask through the materialization fast path (no graph→instance load, no chase); re-chase is the identical Ask without a materializer.",
		"Maintenance latency is the store mutation end to end: the commit plus the synchronous OnCommit fold, i.e. what a writer actually waits for.")
	return t
}
