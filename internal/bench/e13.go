package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chase"
	"repro/internal/obs"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
	"repro/internal/workload"
)

// e13Reps mirrors e12Reps: interleaved baseline/traced pairs, minima
// compared.
const e13Reps = 5

// e13Overhead is the accepted tracing overhead at the default 10% sampling
// rate. The target recorded in EXPERIMENTS.md is 5%; the OK gate is doubled
// so a noisy CI host does not flip the table.
const e13Overhead = 0.10

// e13Sample is the head-sampling rate the overhead is projected at — the
// server's default.
const e13Sample = 0.10

// e13Workload is one E12 workload evaluated under a caller-supplied context,
// so the same code path runs without a trace, with an account-only
// (non-recording) trace, and with a recording trace.
type e13Workload struct {
	name string
	run  func(ctx context.Context, o chase.Options) error
}

func e13Workloads() []e13Workload {
	return []e13Workload{
		{
			name: "transport lines=48",
			run: func(ctx context.Context, o chase.Options) error {
				db := workload.Transport(48, 3, 6)
				_, err := triq.EvalCtx(ctx, db, workload.TransportQuery(), triq.TriQLite10, triq.Options{Chase: o})
				return err
			},
		},
		{
			name: "clique n=7 k=4",
			run: func(ctx context.Context, o chase.Options) error {
				nodes, edges := workload.RandomGraph(7, 0.5, 74)
				db := workload.CliqueDB(4, nodes, edges)
				o.MaxFacts = 10_000_000
				_, err := triq.EvalCtx(ctx, db, workload.CliqueQuery(), triq.TriQ10, triq.Options{Chase: o})
				return err
			},
		},
		{
			name: "university regime",
			run: func(ctx context.Context, o chase.Options) error {
				onto := workload.University(3, 2, 3, false)
				p := sparql.BGP{Triples: []sparql.TriplePattern{
					sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("person")),
				}}
				tr, err := translate.Translate(p, translate.ActiveDomain)
				if err != nil {
					return err
				}
				o.MaxDepth = 10
				_, _, err = tr.EvaluateFullCtx(ctx, onto.ToGraph(), triq.Options{Chase: o})
				return err
			},
		},
	}
}

// e13Run evaluates one workload under a fresh trace (recording or not) and
// returns the wall time. The baseline passes a nil trace — plain context.
func e13Run(w e13Workload, ids *obs.IDSource, recording bool, withTrace bool) (time.Duration, error) {
	o := obs.New()
	ctx := context.Background()
	var tr *obs.Trace
	if withTrace {
		tr = obs.NewTrace(ids.TraceID(), ids, recording)
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	start := time.Now()
	err := w.run(ctx, par(chase.Options{Obs: o, Progress: &chase.Progress{}}))
	d := time.Since(start)
	tr.Finish()
	return d, err
}

// RunE13 measures the cost of request-scoped tracing on top of the E12
// telemetry baseline. Three variants run interleaved per rep: no trace (the
// E12 "telemetry on" configuration — the PR-5 baseline), an account-only
// trace (what the 90% of unsampled requests pay: resource accounting but no
// span tree), and a recording trace (span-tree nodes, per-rule pprof
// labels). The reported overhead is the expected cost at the server's
// default 10% head-sampling rate:
//
//	cost(10%) = 0.9·account-only + 0.1·recording
//
// compared against the no-trace baseline, minima over e13Reps interleaved
// reps on every side.
func RunE13() *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Tracing overhead: span trees + resource accounts at 10% sampling",
		Claim:   "request tracing costs ≤5% wall clock at the default 10% sampling rate",
		Columns: []string{"workload", "no trace", "account only", "recording", "overhead @10%", "within bound"},
		OK:      true,
	}
	ids := obs.NewIDSource(1)
	for _, w := range e13Workloads() {
		var baseBest, acctBest, recBest time.Duration
		failed := false
		for rep := 0; rep < e13Reps; rep++ {
			base, err1 := e13Run(w, ids, false, false)
			acct, err2 := e13Run(w, ids, false, true)
			rec, err3 := e13Run(w, ids, true, true)
			if err1 != nil || err2 != nil || err3 != nil {
				t.OK = false
				failed = true
				t.Notes = append(t.Notes, fmt.Sprintf("%s: base=%v acct=%v rec=%v", w.name, err1, err2, err3))
				break
			}
			if rep == 0 || base < baseBest {
				baseBest = base
			}
			if rep == 0 || acct < acctBest {
				acctBest = acct
			}
			if rep == 0 || rec < recBest {
				recBest = rec
			}
		}
		if failed {
			continue
		}
		sampled := time.Duration((1-e13Sample)*float64(acctBest) + e13Sample*float64(recBest))
		overhead := float64(sampled-baseBest) / float64(baseBest)
		ok := overhead <= e13Overhead
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			w.name, dur(baseBest), dur(acctBest), dur(recBest),
			fmt.Sprintf("%+.1f%%", overhead*100), fmt.Sprintf("%v", ok),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Best of %d interleaved reps per variant; overhead projected at %.0f%% sampling (0.9·account + 0.1·recording vs no trace). Target ≤5%%; the OK gate allows %.0f%% headroom for scheduler noise.",
		e13Reps, e13Sample*100, e13Overhead*100))
	return t
}
