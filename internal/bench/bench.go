// Package bench implements the experiment harness of EXPERIMENTS.md: one
// runner per paper artifact (Table 1, Figure 1, and the complexity /
// expressiveness theorems), each producing a printable table of
// paper-vs-measured results. The runners are shared by cmd/triqbench and the
// root testing.B benchmarks.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/pep"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
	"repro/internal/workload"
)

// Table is one experiment's result. The json tags define the schema of
// `triqbench -json` (BENCH JSON).
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim"` // what the paper asserts
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// OK is false when a measured result contradicts the expected shape.
	OK bool `json:"ok"`
	// Breakdown carries per-stage engine metrics (chase rounds, per-rule
	// hot spots, prover search-space counters) alongside the headline rows.
	Breakdown []StageMetric `json:"breakdown,omitempty"`
}

// StageMetric is one engine-level measurement attributed to a pipeline stage.
type StageMetric struct {
	Stage  string `json:"stage"`  // e.g. "chase n=7 k=4", "prover p(a,a)"
	Metric string `json:"metric"` // e.g. "rounds", "top_rule_time"
	Value  string `json:"value"`
}

// parallelism is the chase worker count every runner uses (0 = GOMAXPROCS,
// the chase default). cmd/triqbench sets it from -parallelism so a whole
// harness run can be pinned to one worker count; RunE11 sweeps its own.
var parallelism int

// SetParallelism pins the chase worker count used by the runners.
func SetParallelism(n int) { parallelism = n }

// par applies the harness-wide worker count to a chase option block.
func par(o chase.Options) chase.Options {
	o.Parallelism = parallelism
	return o
}

// chaseBreakdown summarizes chase.Stats as StageMetric rows. Every point
// carries its round count and worker count so BENCH JSON is self-describing.
func chaseBreakdown(stage string, s chase.Stats) []StageMetric {
	rows := []StageMetric{
		{stage, "rounds", fmt.Sprintf("%d", s.Rounds)},
		{stage, "parallelism", fmt.Sprintf("%d", s.Parallelism)},
		{stage, "triggers_fired", fmt.Sprintf("%d", s.TriggersFired)},
		{stage, "facts_derived", fmt.Sprintf("%d", s.FactsDerived)},
		{stage, "nulls_invented", fmt.Sprintf("%d", s.NullsInvented)},
	}
	if top := s.TopRule(); top != nil {
		rows = append(rows,
			StageMetric{stage, "top_rule", top.Rule},
			StageMetric{stage, "top_rule_time", obs.FormatDuration(top.Time)},
		)
	}
	return rows
}

// proverBreakdown summarizes triq.ProofMetrics as StageMetric rows.
func proverBreakdown(stage string, m triq.ProofMetrics) []StageMetric {
	return []StageMetric{
		{stage, "components", fmt.Sprintf("%d", m.Components)},
		{stage, "expansions", fmt.Sprintf("%d", m.Expansions)},
		{stage, "memo_hits", fmt.Sprintf("%d", m.MemoHits)},
		{stage, "memo_misses", fmt.Sprintf("%d", m.MemoMisses)},
		{stage, "resolutions", fmt.Sprintf("%d", m.Resolutions)},
		{stage, "max_recursion_depth", fmt.Sprintf("%d", m.MaxRecursionDepth)},
	}
}

// Render prints the table as GitHub markdown.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Paper: %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	if len(t.Breakdown) > 0 {
		b.WriteString("\nEngine breakdown:\n")
		for _, m := range t.Breakdown {
			fmt.Fprintf(&b, "  %s: %s = %s\n", m.Stage, m.Metric, m.Value)
		}
	}
	status := "reproduced"
	if !t.OK {
		status = "**MISMATCH**"
	}
	fmt.Fprintf(&b, "\nStatus: %s.\n", status)
	return b.String()
}

// dur formats a duration on the µs/ms/s ladder with fixed two-decimal
// precision (see obs.FormatDuration), so table cells line up across rows.
func dur(d time.Duration) string { return obs.FormatDuration(d) }

// RunT1 reproduces Table 1: the axiom → RDF-triple mapping, validated by a
// round trip through the RDF serialization.
func RunT1() *Table {
	t := &Table{
		ID:      "T1",
		Title:   "Table 1: OWL 2 QL core axioms as RDF triples",
		Claim:   "each of the six axiom forms maps to the listed triple shape",
		Columns: []string{"axiom", "RDF triple", "round-trips"},
		OK:      true,
	}
	axioms := []owl.Axiom{
		owl.SubClassOf(owl.Atom("b1"), owl.Atom("b2")),
		owl.SubPropertyOf(owl.Prop("r1"), owl.Prop("r2")),
		owl.DisjointClasses(owl.Atom("b1"), owl.Atom("b2")),
		owl.DisjointProperties(owl.Prop("r1"), owl.Prop("r2")),
		owl.ClassAssertion(owl.Atom("b"), "a"),
		owl.PropertyAssertion("p", "a1", "a2"),
	}
	for _, ax := range axioms {
		o := owl.NewOntology().Add(ax)
		back, err := owl.FromGraph(o.ToGraph())
		ok := err == nil && back.String() == o.String()
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{ax.String(), ax.Triple().String(), fmt.Sprintf("%v", ok)})
	}
	return t
}

// RunF1 reproduces Figure 1: the proof-tree of p(a,a) w.r.t. the program of
// Example 6.10 and D = {s(a,a,a), t(a)}.
func RunF1() *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: proof-tree of p(a,a) (Example 6.10)",
		Claim:   "p(a,a) has a proof-tree via ρ5 ← ρ4 ← {ρ3, ρ2 ← ρ1}",
		Columns: []string{"goal", "provable", "tree size"},
		OK:      true,
	}
	db := chase.NewInstance(
		datalog.MustParseAtom("s(a, a, a)"),
		datalog.MustParseAtom("t(a)"),
	)
	prog := datalog.MustParse(`
		s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).
		s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
		t(?X) -> exists ?Z p(?X, ?Z).
		p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
		r(?X, ?Y, ?Z) -> p(?X, ?Z).
	`)
	pv, err := triq.NewProver(db, prog, triq.ProofOptions{})
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, "prover construction failed: "+err.Error())
		return t
	}
	node, ok, err := pv.Prove(datalog.MustParseAtom("p(a, a)"))
	if err != nil || !ok {
		t.OK = false
	}
	t.Breakdown = proverBreakdown("prover p(a,a)", pv.Metrics())
	size := 0
	if node != nil {
		size = node.Size()
		t.Notes = append(t.Notes, "```\n"+node.Render()+"```")
	}
	t.Rows = append(t.Rows, []string{"p(a, a)", fmt.Sprintf("%v", ok), fmt.Sprintf("%d", size)})
	// Negative control.
	db2 := chase.NewInstance(datalog.MustParseAtom("s(a, a, a)"))
	pv2, _ := triq.NewProver(db2, prog, triq.ProofOptions{})
	ok2, _ := pv2.Proves(datalog.MustParseAtom("p(a, a)"))
	if ok2 {
		t.OK = false
	}
	t.Rows = append(t.Rows, []string{"p(a, a) without t(a)", fmt.Sprintf("%v", ok2), "-"})
	return t
}

// RunE1 measures the k-clique TriQ 1.0 query of Example 4.3 (Theorem 4.4):
// evaluation cost grows sharply with both n and k (the chase materializes
// the n^k mapping tree), while answers always match a direct clique oracle.
func RunE1() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Theorem 4.4 / Example 4.3: k-clique via TriQ 1.0",
		Claim:   "Eval for TriQ 1.0 is ExpTime-complete; the clique program materializes n^k mappings",
		Columns: []string{"n", "k", "chase facts", "time", "clique found", "oracle agrees"},
		OK:      true,
	}
	q := workload.CliqueQuery()
	for _, cfg := range []struct{ n, k int }{
		{5, 3}, {7, 3}, {9, 3}, {5, 4}, {7, 4}, {6, 5},
	} {
		nodes, edges := workload.RandomGraph(cfg.n, 0.5, int64(cfg.n*10+cfg.k))
		db := workload.CliqueDB(cfg.k, nodes, edges)
		start := time.Now()
		res, err := triq.Eval(db, q, triq.TriQ10, triq.Options{
			Chase: par(chase.Options{MaxFacts: 10_000_000}),
		})
		elapsed := time.Since(start)
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("n=%d k=%d: %v", cfg.n, cfg.k, err))
			continue
		}
		got := len(res.Answers.Tuples) > 0
		want := workload.HasClique(nodes, edges, cfg.k)
		if got != want {
			t.OK = false
		}
		t.Breakdown = append(t.Breakdown,
			chaseBreakdown(fmt.Sprintf("chase n=%d k=%d", cfg.n, cfg.k), res.Stats)...)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cfg.n), fmt.Sprintf("%d", cfg.k),
			fmt.Sprintf("%d", res.Stats.FactsDerived), dur(elapsed),
			fmt.Sprintf("%v", got), fmt.Sprintf("%v", got == want),
		})
	}
	return t
}

// RunE2 measures Theorem 6.7: TriQ-Lite 1.0 evaluation is polynomial in the
// data. The transport reachability query is swept over growing networks and
// a log-log slope (the measured polynomial degree) is reported.
func RunE2() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Theorem 6.7: TriQ-Lite 1.0 is PTime in data complexity",
		Claim:   "evaluation time grows polynomially (low-degree) in |D|",
		Columns: []string{"lines", "facts", "answers", "time"},
		OK:      true,
	}
	q := workload.TransportQuery()
	type point struct {
		size float64
		time float64
	}
	var pts []point
	for _, lines := range []int{4, 8, 16, 32} {
		db := workload.Transport(lines, 3, 6)
		start := time.Now()
		res, err := triq.Eval(db, q, triq.TriQLite10, triq.Options{Chase: par(chase.Options{})})
		elapsed := time.Since(start)
		if err != nil {
			t.OK = false
			continue
		}
		n := workload.TransportCityCount(lines, 6)
		wantPairs := n * (n - 1) / 2
		if len(res.Answers.Tuples) != wantPairs {
			t.OK = false
		}
		pts = append(pts, point{float64(db.Len()), float64(elapsed.Nanoseconds())})
		t.Breakdown = append(t.Breakdown,
			chaseBreakdown(fmt.Sprintf("chase lines=%d", lines), res.Stats)...)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", lines), fmt.Sprintf("%d", db.Len()),
			fmt.Sprintf("%d", len(res.Answers.Tuples)), dur(elapsed),
		})
	}
	if len(pts) >= 2 {
		first, last := pts[0], pts[len(pts)-1]
		slope := math.Log(last.time/first.time) / math.Log(last.size/first.size)
		t.Notes = append(t.Notes, fmt.Sprintf("measured log-log slope (polynomial degree) ≈ %.2f", slope))
		if slope > 5 {
			t.OK = false
		}
	}
	return t
}

// RunE3 validates Theorem 5.2 and measures the overhead of evaluating
// SPARQL through its Datalog translation instead of the direct algebra.
func RunE3() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 5.2: ⟦P⟧_G = ⟦(P_dat, τ_db(G))⟧",
		Claim:   "the translation preserves the SPARQL semantics on every operator",
		Columns: []string{"pattern", "answers", "direct", "translated", "ratio", "equal"},
		OK:      true,
	}
	g := rdf.NewGraph()
	for i := 0; i < 120; i++ {
		g.Add(rdf.T(fmt.Sprintf("u%d", i), "name", fmt.Sprintf("n%d", i)))
		if i%2 == 0 {
			g.Add(rdf.T(fmt.Sprintf("u%d", i), "phone", fmt.Sprintf("t%d", i)))
		}
		if i%3 == 0 {
			g.Add(rdf.T(fmt.Sprintf("t%d", i), "phone_company", "acme"))
		}
		g.Add(rdf.T(fmt.Sprintf("u%d", i), "knows", fmt.Sprintf("u%d", (i+1)%120)))
	}
	v, iri := sparql.Var, sparql.IRI
	patterns := map[string]sparql.Pattern{
		"AND (join)": sparql.And{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("name"), v("N"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("phone"), v("P"))}},
		},
		"OPT": sparql.Opt{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("name"), v("N"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("phone"), v("P"))}},
		},
		"UNION": sparql.Union{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("phone"), v("Y"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("knows"), v("Y"))}},
		},
		"FILTER": sparql.Filter{
			P:    sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("name"), v("N"))}},
			Cond: sparql.Neg{C: sparql.EqConst{Var: "?N", Val: rdf.NewIRI("n7")}},
		},
		"OPT+AND (P4)": sparql.And{
			L: sparql.Opt{
				L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("name"), v("N"))}},
				R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("phone"), v("P"))}},
			},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("P"), iri("phone_company"), v("W"))}},
		},
	}
	names := make([]string, 0, len(patterns))
	for name := range patterns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := patterns[name]
		start := time.Now()
		direct := sparql.Eval(p, g)
		directTime := time.Since(start)
		tr, err := translate.Translate(p, translate.Plain)
		if err != nil {
			t.OK = false
			continue
		}
		start = time.Now()
		got, evalRes, err := tr.EvaluateFull(g, triq.Options{Chase: par(chase.Options{})})
		transTime := time.Since(start)
		if err != nil {
			t.OK = false
			continue
		}
		t.Breakdown = append(t.Breakdown,
			chaseBreakdown("translated "+name, evalRes.Stats)...)
		equal := direct.Equal(got)
		if !equal {
			t.OK = false
		}
		ratio := float64(transTime) / float64(directTime+1)
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", direct.Len()), dur(directTime), dur(transTime),
			fmt.Sprintf("%.1fx", ratio), fmt.Sprintf("%v", equal),
		})
	}
	return t
}

// RunE4 exercises the OWL 2 QL core entailment regime end-to-end (Theorem
// 5.3, Corollaries 5.4/6.2) over university ontologies of growing size,
// comparing answer counts against the direct DL-LiteR reasoner and against
// regime-less evaluation (the "reasoning gap").
func RunE4() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 5.3: SPARQL under the OWL 2 QL core entailment regime",
		Claim:   "P^U_dat computes ⟦P⟧^U_G; the regime surfaces implied answers that plain SPARQL misses",
		Columns: []string{"departments", "individuals", "query", "plain", "regime", "oracle", "time"},
		OK:      true,
	}
	pattern := func(class string) sparql.Pattern {
		return sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI(class)),
		}}
	}
	for _, depts := range []int{1, 2, 4} {
		o := workload.University(depts, 2, 3, false)
		g := o.ToGraph()
		r := owl.NewReasoner(o)
		for _, class := range []string{"person", "employee", "student"} {
			p := pattern(class)
			plain := sparql.Eval(p, g)
			tr, err := translate.Translate(p, translate.ActiveDomain)
			if err != nil {
				t.OK = false
				continue
			}
			start := time.Now()
			regime, evalRes, err := tr.EvaluateFull(g, triq.Options{Chase: par(chase.Options{MaxDepth: 10})})
			elapsed := time.Since(start)
			if err != nil {
				t.OK = false
				continue
			}
			t.Breakdown = append(t.Breakdown, chaseBreakdown(
				fmt.Sprintf("regime depts=%d class=%s", depts, class), evalRes.Stats)...)
			oracle := len(r.Members(owl.Atom(class)))
			if regime.Len() != oracle {
				t.OK = false
			}
			if regime.Len() < plain.Len() {
				t.OK = false
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", depts), fmt.Sprintf("%d", len(o.Individuals())),
				"type " + class,
				fmt.Sprintf("%d", plain.Len()), fmt.Sprintf("%d", regime.Len()),
				fmt.Sprintf("%d", oracle), dur(elapsed),
			})
		}
	}
	return t
}

// RunE5 demonstrates the UGCP separation of Lemmas 6.5/6.6: the warded
// τ_owl2ql_core connects one null with n constants (mgc grows with n) and
// answers the P_n query for every n, while a nearly-frontier-guarded program
// keeps mgc bounded.
func RunE5() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Lemmas 6.5/6.6: the unbounded ground-connection property",
		Claim:   "warded Datalog∃ has the UGCP; nearly-frontier-guarded Datalog∃ does not",
		Columns: []string{"n", "mgc (warded τ_owl2ql_core)", "P_n answered", "mgc (nearly-FG control)"},
		OK:      true,
	}
	nfg := datalog.MustParse(`
		e(?X, ?Y) -> exists ?Z f(?X, ?Y, ?Z).
		e(?X, ?Y), e(?Y, ?W) -> e(?X, ?W).
	`)
	for _, n := range []int{2, 4, 8, 16} {
		o := workload.UGCP(n)
		db, err := chase.FromFacts(owl.GraphToDB(o.ToGraph()))
		if err != nil {
			t.OK = false
			continue
		}
		res, err := chase.Run(db, owl.Program().Positive(), par(chase.Options{MaxDepth: 6}))
		if err != nil {
			t.OK = false
			continue
		}
		mgcWarded := workload.MaxGroundConnection(res.Instance)
		if mgcWarded < n {
			t.OK = false
		}
		// The boolean query P_n = {(_:B, rdf:type, a1), …, (_:B, rdf:type, an)}
		// under ⟦·⟧^All.
		var triples []sparql.TriplePattern
		for _, cls := range workload.UGCPClasses(n) {
			triples = append(triples, sparql.TP(sparql.Blank("B"), sparql.IRI("rdf:type"), sparql.IRI(cls)))
		}
		tr, err := translate.Translate(sparql.BGP{Triples: triples}, translate.All)
		if err != nil {
			t.OK = false
			continue
		}
		ans, _, err := tr.Evaluate(o.ToGraph(), triq.Options{Chase: par(chase.Options{MaxDepth: 10})})
		if err != nil || ans.Len() != 1 {
			t.OK = false
		}
		nfgRes, err := chase.Run(workload.Chain(n), nfg, par(chase.Options{}))
		if err != nil {
			t.OK = false
			continue
		}
		mgcNFG := workload.MaxGroundConnection(nfgRes.Instance)
		if mgcNFG > 2 {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", mgcWarded),
			fmt.Sprintf("%v", ans != nil && ans.Len() == 1), fmt.Sprintf("%d", mgcNFG),
		})
	}
	return t
}

// RunE6 exercises the Theorem 6.15 reduction: the fixed warded-with-minimal-
// interaction program simulates an ATM; the chase grows exponentially with
// the explored configuration-tree depth, and acceptance matches the direct
// simulator.
func RunE6() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 6.15: minimal interaction is ExpTime-hard",
		Claim:   "the fixed ATM program decides acceptance; chase size grows ~2^depth",
		Columns: []string{"bits", "depth", "chase facts", "growth", "reduction", "simulator"},
		OK:      true,
	}
	m := workload.ParityATM()
	q := workload.ATMQuery()
	prevFacts := 0
	for _, bits := range [][]int{{1, 1}, {1, 0, 1}, {1, 1, 1, 1}} {
		input := workload.ParityInput(bits)
		want := m.Accepts(input, 60)
		db := m.ATMDatabase(input)
		depth := len(input) + 4
		start := time.Now()
		res, err := chase.Run(db, q.Program, par(chase.Options{
			MaxDepth: depth, MaxFacts: 10_000_000,
		}))
		elapsed := time.Since(start)
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("bits=%v: %v", bits, err))
			continue
		}
		got := len(res.Instance.AtomsOf("accepted")) > 0
		if got != want {
			t.OK = false
		}
		t.Breakdown = append(t.Breakdown,
			chaseBreakdown(fmt.Sprintf("atm bits=%d", len(bits)), res.Stats)...)
		growth := "-"
		if prevFacts > 0 {
			growth = fmt.Sprintf("%.1fx", float64(res.Stats.FactsDerived)/float64(prevFacts))
		}
		prevFacts = res.Stats.FactsDerived
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(bits)), fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", res.Stats.FactsDerived), growth,
			fmt.Sprintf("%v (%s)", got, dur(elapsed)), fmt.Sprintf("%v", want),
		})
	}
	return t
}

// RunE7 runs the program-expressive-power separations of Theorems 7.1/7.2.
func RunE7() *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Theorems 7.1/7.2: program expressive power separations",
		Claim:   "(D,Λ1,()) ∈ Pep[Π] and (D,Λ2,()) ∉ Pep[Π] for the warded/TriQ-Lite Π; Datalog cannot separate them",
		Columns: []string{"witness", "Λ1 holds", "Λ2 holds", "separated"},
		OK:      true,
	}
	witnesses := []struct {
		name string
		w    pep.Witness
	}{
		{"Theorem 7.1 (Datalog ≺ warded)", pep.Theorem71()},
		{"Theorem 7.2 (Datalog¬s,⊥ ≺ TriQ-Lite)", pep.Theorem72()},
	}
	for _, entry := range witnesses {
		name, w := entry.name, entry.w
		h1, err1 := w.Holds(w.Lambda1)
		h2, err2 := w.Holds(w.Lambda2)
		if err1 != nil || err2 != nil || !h1 || h2 {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%v", h1), fmt.Sprintf("%v", h2), fmt.Sprintf("%v", h1 && !h2),
		})
	}
	return t
}

// RunE8 quantifies the Section 5.2 modularity claim: τ_owl2ql_core is fixed,
// so a new query only adds its own small rule set. We verify the ontology
// program is byte-identical across translations of different queries and
// report per-query compile+evaluate cost.
func RunE8() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Section 5.2: the ontology program is fixed across queries",
		Claim:   "posing a new query never touches τ_owl2ql_core",
		Columns: []string{"query", "program rules", "query-specific rules", "compile+eval"},
		OK:      true,
	}
	o := workload.University(2, 2, 2, false)
	g := o.ToGraph()
	base := len(owl.Program().Rules)
	queries := map[string]sparql.Pattern{
		"persons": sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("person"))}},
		"teachers": sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI("teaches"), sparql.Blank("B"))}},
		"advisor pairs": sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI("advises"), sparql.Var("Y"))}},
	}
	qnames := make([]string, 0, len(queries))
	for name := range queries {
		qnames = append(qnames, name)
	}
	sort.Strings(qnames)
	for _, name := range qnames {
		p := queries[name]
		start := time.Now()
		tr, err := translate.Translate(p, translate.ActiveDomain)
		if err != nil {
			t.OK = false
			continue
		}
		_, _, err = tr.Evaluate(g, triq.Options{Chase: par(chase.Options{MaxDepth: 8})})
		elapsed := time.Since(start)
		if err != nil {
			t.OK = false
			continue
		}
		total := len(tr.Query.Program.Rules)
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", total), fmt.Sprintf("%d", total-base), dur(elapsed),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("τ_owl2ql_core contributes %d rules + 2 constraints, byte-identical in every translation.", base))
	return t
}

// RunAll executes every experiment in order.
func RunAll() []*Table {
	return []*Table{
		RunT1(), RunF1(), RunE1(), RunE2(), RunE3(), RunE4(), RunE5(), RunE6(), RunE7(), RunE8(), RunE9(), RunE11(), RunE12(), RunE13(), RunE14(), RunE15(), RunE16(), RunE17(),
	}
}

// RunE9 demonstrates the motivating inexpressibility claim of Section 2
// (after [26, 36]): the transport-connection query cannot be expressed by
// SPARQL 1.1 property paths. The demonstration is finite: ALL property-path
// expressions up to a syntactic size bound over the predicate alphabet of a
// network G1 are enumerated; the (many) expressions that happen to compute
// the right relation on G1 all fail on a structurally identical network G2
// whose service URIs are renamed — while the TriQ-Lite program transfers
// verbatim. Path expressions can only mention fixed URIs, but the transport
// query must *discover* the connecting predicates recursively.
func RunE9() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Section 2: property paths cannot express the transport query",
		Claim:   "the query 'requires navigating simultaneously in two different directions' — beyond SPARQL 1.1 paths",
		Columns: []string{"max size", "paths enumerated", "correct on G1", "also correct on G2", "TriQ correct on both"},
		OK:      true,
	}
	g1 := workload.TransportGraph(2, 2, 3, "acme")
	g2 := workload.TransportGraph(2, 2, 3, "zeta")
	want1 := transportPairs(t, g1)
	want2 := transportPairs(t, g2)
	if len(want1) == 0 || len(want2) == 0 {
		t.OK = false
		return t
	}
	// Alphabet: every predicate of G1.
	var alphabet []string
	for _, p := range g1.Predicates() {
		alphabet = append(alphabet, p.Value)
	}
	for _, maxSize := range []int{3, 5} {
		exprs := sparql.EnumeratePaths(alphabet, maxSize)
		okG1, okBoth := 0, 0
		for _, e := range exprs {
			if !sparql.EvalPath(g1, e).Equal(want1) {
				continue
			}
			okG1++
			if sparql.EvalPath(g2, e).Equal(want2) {
				okBoth++
				t.Notes = append(t.Notes, "unexpected transferable path: "+e.String())
			}
		}
		if okBoth != 0 {
			t.OK = false
		}
		if maxSize >= 5 && okG1 == 0 {
			// The enumeration must find *some* per-graph solution, or the
			// demonstration is vacuous.
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", maxSize), fmt.Sprintf("%d", len(exprs)),
			fmt.Sprintf("%d", okG1), fmt.Sprintf("%d", okBoth), "true",
		})
	}
	// Contrast: nSPARQL's nested regular expressions (reference [32],
	// Corollary 7.3) DO express the query with one fixed expression that
	// transfers across the renaming — the separation from TriQ-Lite 1.0 is
	// at the level of program expressive power (Theorem 7.2), not here.
	nre := sparql.MustParseNRE("(next::[ (next::partOf)+ / self::transportService ])+")
	nreOK := EvalNREPairs(g1, nre).Equal(want1) && EvalNREPairs(g2, nre).Equal(want2)
	if !nreOK {
		t.OK = false
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"nSPARQL nested regular expression `%s` is correct on both networks: %v.", nre, nreOK))
	return t
}

// EvalNREPairs adapts sparql.EvalNRE for the harness.
func EvalNREPairs(g *rdf.Graph, e sparql.NRE) sparql.PairSet { return sparql.EvalNRE(g, e) }

// transportPairs computes the reference relation with the TriQ program.
func transportPairs(t *Table, g *rdf.Graph) sparql.PairSet {
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		t.OK = false
		return nil
	}
	res, err := triq.Eval(db, workload.TransportQuery(), triq.TriQLite10, triq.Options{Chase: par(chase.Options{})})
	if err != nil {
		t.OK = false
		return nil
	}
	out := make(sparql.PairSet)
	for _, tup := range res.Answers.Tuples {
		out[sparql.TermPair{rdf.NewIRI(tup[0].Name), rdf.NewIRI(tup[1].Name)}] = true
	}
	return out
}
