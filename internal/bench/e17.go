package bench

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"

	"repro/internal/chase"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

// E17: write-path observability overhead. The PR's claim is that the
// always-on write-pipeline telemetry — epoch-timeline stage stamps plus the
// per-stage histograms (wal.sync_us, mat.maintain_us,
// store.commit_visible_us) — costs at most 2% of write throughput. Two
// workloads, each run identically with the obs registry disabled (nil, every
// Observe/Count a no-op) and enabled (live registry, every sample bucketed):
//
//  1. The E14 durable write path: back-to-back insert batches through a
//     WAL-backed store (SyncNone, so the CPU cost of telemetry is measured
//     against the write path itself rather than hidden under fsync waits —
//     the conservative denominator).
//  2. The E16 incremental-materialization mix: insert/delete batches through
//     a store whose OnCommit folds the delta into a warm materialization,
//     the heaviest per-commit work the pipeline instruments.
//
// Each leg is the best of e17Reps full-workload repetitions (best-of damps
// scheduler noise; the workload itself is deterministic), and the table
// records the measured overhead. The OK gate is the ≤2% acceptance bar with
// the measurement's own noise floor: legs faster under obs count as 0%.

// e17Reps is the best-of repetitions per leg.
const e17Reps = 7

// e17OverheadCeiling is the acceptance bar: obs-on may cost at most this
// fraction of the obs-off wall time.
const e17OverheadCeiling = 0.02

// e17NoiseFloor pads the gate: a leg must exceed ceiling + floor to fail, so
// a sub-millisecond jitter on a fast CI host cannot flip the table.
const e17NoiseFloor = 0.01

// e17DurableBatches × e17BatchSize is the durable-write workload volume.
const (
	e17DurableBatches = 200
	e17BatchSize      = 16
)

// e17MatRounds is the insert+delete rounds of the materializer workload.
const e17MatRounds = 120

// e17Durable runs the E14-style durable write workload under the given obs
// sink and returns the wall time of the mutation loop.
func e17Durable(o *obs.Obs) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "triq-e17-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	st, _, err := store.Open(store.Config{
		Dir: dir, Sync: store.SyncNone,
		CheckpointEvery: -1, CheckpointBytes: -1,
		Obs: o,
	})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	start := time.Now()
	for b := 0; b < e17DurableBatches; b++ {
		if _, _, err := st.Insert(e14Batch(b, e17BatchSize)); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// e17Mat runs the E16-style maintain workload — insert and delete batches
// folded into a warm materialization on every commit — under the given obs
// sink and returns the wall time of the mutation loop.
func e17Mat(o *obs.Obs) (time.Duration, error) {
	co := chase.Options{Parallelism: parallelism}
	m := mat.New(mat.Config{Chase: co, Obs: o})
	scfg := repro.StoreConfig{}
	scfg.OnCommit = m.OnCommit
	scfg.Obs = o
	st, _, err := repro.OpenStore(scfg)
	if err != nil {
		return 0, err
	}
	defer st.Close()
	m.Reset(st.Current().Seq)
	g := workload.TransportGraph(16, 3, 6, "e17")
	if _, _, err := st.Insert(g.Triples()); err != nil {
		return 0, err
	}
	q := workload.TransportQuery()
	opts := repro.Options{Chase: co, Mat: m, MatEpoch: st.Current().Seq}
	if _, err := repro.Ask(st.Current().Graph, q, repro.TriQLite10, opts); err != nil {
		return 0, err
	}
	start := time.Now()
	for r := 0; r < e17MatRounds; r++ {
		batch := e16Fresh(fmt.Sprintf("e17-%d", r), 8)
		if _, _, err := st.Insert(batch); err != nil {
			return 0, err
		}
		if _, _, err := st.Delete(batch); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// e17Leg measures one workload obs-off vs obs-on, best of e17Reps each. The
// off/on order alternates every rep and each timed run starts from a
// collected heap, so GC debt left by one run cannot systematically tax
// whichever variant happens to go second.
func e17Leg(run func(*obs.Obs) (time.Duration, error)) (off, on time.Duration, err error) {
	timed := func(o *obs.Obs, best *time.Duration, first bool) error {
		runtime.GC()
		d, err := run(o)
		if err != nil {
			return err
		}
		if first || d < *best {
			*best = d
		}
		return nil
	}
	for rep := 0; rep < e17Reps; rep++ {
		order := []bool{false, true} // false = obs off
		if rep%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, withObs := range order {
			if withObs {
				err = timed(obs.New(), &on, rep == 0)
			} else {
				err = timed(nil, &off, rep == 0)
			}
			if err != nil {
				return 0, 0, err
			}
		}
	}
	return off, on, nil
}

// e17Overhead renders the on-vs-off cost as a fraction of the off time;
// negative measurements (on faster than off) clamp to 0.
func e17Overhead(off, on time.Duration) float64 {
	if off <= 0 {
		return 0
	}
	o := float64(on-off) / float64(off)
	if o < 0 {
		return 0
	}
	return o
}

// RunE17 measures the observability overhead on the write pipeline.
func RunE17() *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Write-pipeline observability overhead",
		Claim:   fmt.Sprintf("epoch-timeline stamps and per-stage histograms cost ≤%.0f%% of write throughput on the E14/E16 write workloads", e17OverheadCeiling*100),
		Columns: []string{"workload", "obs off", "obs on", "overhead", "gate"},
		OK:      true,
	}
	fail := func(format string, args ...any) {
		t.OK = false
		t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	}
	gate := e17OverheadCeiling + e17NoiseFloor

	legs := []struct {
		name string
		run  func(*obs.Obs) (time.Duration, error)
	}{
		{fmt.Sprintf("durable writes (%d×%d, SyncNone)", e17DurableBatches, e17BatchSize), e17Durable},
		{fmt.Sprintf("mat maintain mix (%d ins+del rounds)", e17MatRounds), e17Mat},
	}
	for _, leg := range legs {
		off, on, err := e17Leg(leg.run)
		if err != nil {
			fail("%s: %v", leg.name, err)
			continue
		}
		overhead := e17Overhead(off, on)
		verdict := "ok"
		if overhead > gate {
			verdict = "FAIL"
			fail("%s: obs overhead %.1f%% over the %.0f%% bar (+%.0f%% noise floor)",
				leg.name, overhead*100, e17OverheadCeiling*100, e17NoiseFloor*100)
		}
		t.Rows = append(t.Rows, []string{
			leg.name, dur(off), dur(on), fmt.Sprintf("%.2f%%", overhead*100), verdict,
		})
		t.Breakdown = append(t.Breakdown,
			StageMetric{Stage: leg.name, Metric: "obs_off_ns", Value: fmt.Sprintf("%d", off.Nanoseconds())},
			StageMetric{Stage: leg.name, Metric: "obs_on_ns", Value: fmt.Sprintf("%d", on.Nanoseconds())})
	}

	t.Notes = append(t.Notes,
		"Both legs keep the epoch timeline on (it is unconditional); the measured delta is the obs registry: histogram Observe calls, counters, and gauges on the write path.",
		fmt.Sprintf("Each time is the best of %d full-workload repetitions with the off/on order alternating per rep (and a GC between runs); the gate only fails past %.0f%% so sub-noise jitter cannot flip the table.", e17Reps, gate*100))
	return t
}
