package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/chase"
	"repro/internal/triq"
)

// Every experiment runner must report OK: the qualitative claims of the
// paper are assertions, not just measurements.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, tbl := range RunAll() {
		tbl := tbl
		t.Run(tbl.ID, func(t *testing.T) {
			if !tbl.OK {
				t.Errorf("%s did not reproduce:\n%s", tbl.ID, tbl.Render())
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", tbl.ID)
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.ID) || !strings.Contains(out, "|") {
				t.Errorf("Render output malformed:\n%s", out)
			}
		})
	}
}

func TestTableRenderMismatch(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Claim: "c", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	if !strings.Contains(tbl.Render(), "MISMATCH") {
		t.Error("OK=false should render as MISMATCH")
	}
}

// TestDur pins the unit ladder of the table duration formatter: µs below a
// millisecond, ms below a second, s above — always two decimals.
func TestDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.00µs"},
		{500 * time.Nanosecond, "0.50µs"},
		{time.Microsecond, "1.00µs"},
		{999 * time.Microsecond, "999.00µs"},
		{time.Millisecond, "1.00ms"},
		{1500 * time.Microsecond, "1.50ms"},
		{999 * time.Millisecond, "999.00ms"},
		{time.Second, "1.00s"},
		{2500 * time.Millisecond, "2.50s"},
		{90 * time.Second, "90.00s"},
	}
	for _, c := range cases {
		if got := dur(c.d); got != c.want {
			t.Errorf("dur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestTableJSONBreakdown checks the BENCH JSON schema: tables marshal with
// the breakdown dimension and round-trip.
func TestTableJSONBreakdown(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "t", Claim: "c", Columns: []string{"a"},
		Rows: [][]string{{"1"}}, OK: true,
		Breakdown: []StageMetric{{Stage: "chase", Metric: "rounds", Value: "3"}},
	}
	raw, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"X"`, `"breakdown"`, `"stage":"chase"`, `"metric":"rounds"`, `"value":"3"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("JSON missing %s: %s", want, raw)
		}
	}
	var back Table
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Breakdown) != 1 || back.Breakdown[0] != tbl.Breakdown[0] {
		t.Errorf("breakdown did not round-trip: %+v", back.Breakdown)
	}
}

// TestBreakdownHelpers checks the stage-metric summarizers used by the
// runners.
func TestBreakdownHelpers(t *testing.T) {
	rows := chaseBreakdown("s", chase.Stats{
		Rounds: 2, TriggersFired: 5, FactsDerived: 7, NullsInvented: 1,
		PerRule: []chase.RuleStats{{Index: 0, Rule: "a -> b", Time: time.Millisecond}},
	})
	found := map[string]string{}
	for _, r := range rows {
		if r.Stage != "s" {
			t.Errorf("stage = %q, want s", r.Stage)
		}
		found[r.Metric] = r.Value
	}
	if found["rounds"] != "2" || found["facts_derived"] != "7" {
		t.Errorf("unexpected chase breakdown: %v", found)
	}
	if found["top_rule"] != "a -> b" || found["top_rule_time"] != "1.00ms" {
		t.Errorf("top rule not reported: %v", found)
	}
	pr := proverBreakdown("p", triq.ProofMetrics{Components: 3, MemoHits: 2})
	got := map[string]string{}
	for _, r := range pr {
		got[r.Metric] = r.Value
	}
	if got["components"] != "3" || got["memo_hits"] != "2" {
		t.Errorf("unexpected prover breakdown: %v", got)
	}
}
