package bench

import (
	"strings"
	"testing"
)

// Every experiment runner must report OK: the qualitative claims of the
// paper are assertions, not just measurements.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, tbl := range RunAll() {
		tbl := tbl
		t.Run(tbl.ID, func(t *testing.T) {
			if !tbl.OK {
				t.Errorf("%s did not reproduce:\n%s", tbl.ID, tbl.Render())
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", tbl.ID)
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.ID) || !strings.Contains(out, "|") {
				t.Errorf("Render output malformed:\n%s", out)
			}
		})
	}
}

func TestTableRenderMismatch(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Claim: "c", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	if !strings.Contains(tbl.Render(), "MISMATCH") {
		t.Error("OK=false should render as MISMATCH")
	}
}
