package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/chase"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
	"repro/internal/workload"
)

// e11Reps is how many times each (workload, workers) point is run; the
// minimum wall clock is reported, which damps scheduler noise without
// hiding a missing speedup.
const e11Reps = 3

// e11Run is one measured point: the canonical answer rendering, the stats
// fingerprint that must match the sequential baseline bit for bit, and the
// best-of-reps chase wall clock.
type e11Run struct {
	answers string
	fprint  string
	stats   chase.Stats
	elapsed time.Duration
}

// e11Fingerprint renders the stats fields the determinism contract covers:
// everything except the configured worker count and the per-rule wall
// clocks, which legitimately vary across widths.
func e11Fingerprint(s chase.Stats) string {
	s.Parallelism = 0
	per := make([]chase.RuleStats, len(s.PerRule))
	copy(per, s.PerRule)
	for i := range per {
		per[i].Time = 0
	}
	s.PerRule = per
	return fmt.Sprintf("%+v", s)
}

// e11Workload is one materialization workload of the sweep. run evaluates it
// at the given worker count and returns the rendered answers plus stats.
type e11Workload struct {
	name string
	run  func(workers int) (string, chase.Stats, error)
}

func e11Workloads() []e11Workload {
	return []e11Workload{
		{
			// The paper's transport closure on a large network: a pure
			// Datalog saturation, the headline materialization workload.
			name: "transport lines=48",
			run: func(workers int) (string, chase.Stats, error) {
				db := workload.Transport(48, 3, 6)
				res, err := triq.Eval(db, workload.TransportQuery(), triq.TriQLite10,
					triq.Options{Chase: chase.Options{Parallelism: workers}})
				if err != nil {
					return "", chase.Stats{}, err
				}
				return renderTuples(res), res.Stats, nil
			},
		},
		{
			// Example 4.3's k-clique program: wide joins, the heaviest
			// per-round trigger enumeration in the harness.
			name: "clique n=7 k=4",
			run: func(workers int) (string, chase.Stats, error) {
				nodes, edges := workload.RandomGraph(7, 0.5, 74)
				db := workload.CliqueDB(4, nodes, edges)
				res, err := triq.Eval(db, workload.CliqueQuery(), triq.TriQ10,
					triq.Options{Chase: chase.Options{Parallelism: workers, MaxFacts: 10_000_000}})
				if err != nil {
					return "", chase.Stats{}, err
				}
				return renderTuples(res), res.Stats, nil
			},
		},
		{
			// The OWL 2 QL regime over a university ontology: existential
			// rules, so Skolem-null invention order is on the line too.
			name: "university regime",
			run: func(workers int) (string, chase.Stats, error) {
				o := workload.University(3, 2, 3, false)
				p := sparql.BGP{Triples: []sparql.TriplePattern{
					sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("person")),
				}}
				tr, err := translate.Translate(p, translate.ActiveDomain)
				if err != nil {
					return "", chase.Stats{}, err
				}
				ans, evalRes, err := tr.EvaluateFull(o.ToGraph(),
					triq.Options{Chase: chase.Options{Parallelism: workers, MaxDepth: 10}})
				if err != nil {
					return "", chase.Stats{}, err
				}
				return ans.String(), evalRes.Stats, nil
			},
		},
	}
}

// renderTuples gives a canonical string for a result's answer tuples. The
// chase is deterministic, so no sorting is needed — byte equality across
// worker counts is exactly the claim under test.
func renderTuples(res *triq.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "inconsistent=%v\n", res.Answers.Inconsistent)
	for _, tup := range res.Answers.Tuples {
		parts := make([]string, len(tup))
		for i, t := range tup {
			parts[i] = t.String()
		}
		b.WriteString(strings.Join(parts, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// e11Point measures one (workload, workers) cell: best of e11Reps runs.
func e11Point(w e11Workload, workers int) (e11Run, error) {
	var out e11Run
	for rep := 0; rep < e11Reps; rep++ {
		start := time.Now()
		answers, stats, err := w.run(workers)
		elapsed := time.Since(start)
		if err != nil {
			return e11Run{}, err
		}
		if rep == 0 || elapsed < out.elapsed {
			out.elapsed = elapsed
		}
		out.answers, out.stats, out.fprint = answers, stats, e11Fingerprint(stats)
	}
	return out, nil
}

// RunE11 measures the parallel chase: each materialization workload is
// evaluated at 1, 2, 4, and 8 workers. Correctness is the headline claim —
// answers and chase statistics must be byte-identical to the sequential run
// at every width — and the wall-clock speedup over the 1-worker baseline is
// reported alongside. OK tracks only the determinism contract: speedup
// depends on the host's core count (see the GOMAXPROCS note), identity does
// not.
func RunE11() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Parallel chase: deterministic speedup over the sequential engine",
		Claim:   "trigger enumeration parallelizes across workers while answers, Skolem nulls, and per-rule stats stay bit-identical",
		Columns: []string{"workload", "workers", "chase time", "speedup", "identical"},
		OK:      true,
	}
	widths := []int{1, 2, 4, 8}
	for _, w := range e11Workloads() {
		var base e11Run
		for _, workers := range widths {
			run, err := e11Point(w, workers)
			if err != nil {
				t.OK = false
				t.Notes = append(t.Notes, fmt.Sprintf("%s workers=%d: %v", w.name, workers, err))
				continue
			}
			identical := true
			speedup := "1.00x"
			if workers == 1 {
				base = run
			} else {
				identical = run.answers == base.answers && run.fprint == base.fprint
				if !identical {
					t.OK = false
				}
				speedup = fmt.Sprintf("%.2fx", float64(base.elapsed)/float64(run.elapsed))
			}
			t.Breakdown = append(t.Breakdown,
				chaseBreakdown(fmt.Sprintf("%s workers=%d", w.name, workers), run.stats)...)
			t.Rows = append(t.Rows, []string{
				w.name, fmt.Sprintf("%d", workers), dur(run.elapsed), speedup,
				fmt.Sprintf("%v", identical),
			})
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Host: GOMAXPROCS=%d. Wall-clock speedup needs >1 core; the identity columns are the load-bearing result on single-core hosts.",
		runtime.GOMAXPROCS(0)))
	return t
}
