package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// E14: the durable write path. Three questions, one table:
//
//  1. Write throughput by fsync policy × batch size (the fsync-policy cost
//     is the always-vs-none gap at equal batch size).
//  2. Recovery time as a function of WAL length (records replayed on boot).
//  3. Checkpointing: recovery from a snapshot + short WAL tail.
//
// The OK gates are correctness, not speed — every acknowledged batch must
// survive the reopen with the exact epoch and triple count — so the table
// stays green on noisy CI hosts while still recording the measured rates.

// e14WriteBatches is the batches committed per throughput point.
const e14WriteBatches = 200

// e14WALLengths are the WAL record counts of the recovery sweep.
var e14WALLengths = []int{256, 1024, 4096}

// e14Triple renders the i-th generated triple of batch b.
func e14Triple(b, i int) rdf.Triple {
	return rdf.T(fmt.Sprintf("e14-b%d-s%d", b, i), "e14-p", fmt.Sprintf("o%d", i))
}

// e14Batch builds batch b of n distinct triples.
func e14Batch(b, n int) []rdf.Triple {
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = e14Triple(b, i)
	}
	return ts
}

// e14Throughput commits e14WriteBatches batches of size batch under the
// given policy and returns the elapsed wall time and final epoch.
func e14Throughput(policy store.SyncPolicy, batch int) (time.Duration, uint64, error) {
	dir, err := os.MkdirTemp("", "triq-e14-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	st, _, err := store.Open(store.Config{Dir: dir, Sync: policy, CheckpointEvery: -1, CheckpointBytes: -1})
	if err != nil {
		return 0, 0, err
	}
	defer st.Close()
	start := time.Now()
	for b := 0; b < e14WriteBatches; b++ {
		if _, _, err := st.Insert(e14Batch(b, batch)); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	return elapsed, st.Current().Seq, st.Close()
}

// e14Recovery builds a WAL of n single-triple batches (checkpoints off,
// unless snapEvery > 0) and times the reopen.
func e14Recovery(n, snapEvery int) (time.Duration, *store.Recovery, uint64, error) {
	dir, err := os.MkdirTemp("", "triq-e14-*")
	if err != nil {
		return 0, nil, 0, err
	}
	defer os.RemoveAll(dir)
	every := snapEvery
	if every == 0 {
		every = -1
	}
	st, _, err := store.Open(store.Config{Dir: dir, Sync: store.SyncNone, CheckpointEvery: every, CheckpointBytes: -1})
	if err != nil {
		return 0, nil, 0, err
	}
	for b := 0; b < n; b++ {
		if _, _, err := st.Insert(e14Batch(b, 1)); err != nil {
			st.Close()
			return 0, nil, 0, err
		}
	}
	if err := st.Close(); err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	st2, rec, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return 0, nil, 0, err
	}
	elapsed := time.Since(start)
	epoch := st2.Current().Seq
	return elapsed, rec, epoch, st2.Close()
}

// RunE14 measures the durable write path: throughput per fsync policy,
// recovery time vs WAL length, and checkpointed recovery.
func RunE14() *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Durable writes: fsync-policy throughput and WAL recovery time",
		Claim:   "acknowledged batches survive reopen bit-exactly at every policy and WAL length",
		Columns: []string{"scenario", "config", "elapsed", "rate", "ok"},
		OK:      true,
	}

	for _, p := range []struct {
		policy store.SyncPolicy
		batch  int
	}{
		{store.SyncAlways, 1},
		{store.SyncAlways, 64},
		{store.SyncInterval, 1},
		{store.SyncInterval, 64},
		{store.SyncNone, 1},
		{store.SyncNone, 64},
	} {
		elapsed, epoch, err := e14Throughput(p.policy, p.batch)
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("throughput sync=%s batch=%d: %v", p.policy, p.batch, err))
			continue
		}
		ok := epoch == uint64(e14WriteBatches)
		if !ok {
			t.OK = false
		}
		perSec := float64(e14WriteBatches) / elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			"write throughput",
			fmt.Sprintf("sync=%s batch=%d n=%d", p.policy, p.batch, e14WriteBatches),
			dur(elapsed),
			fmt.Sprintf("%.0f batches/s (%.0f triples/s)", perSec, perSec*float64(p.batch)),
			fmt.Sprintf("%v", ok),
		})
		t.Breakdown = append(t.Breakdown, StageMetric{
			Stage:  fmt.Sprintf("write sync=%s batch=%d", p.policy, p.batch),
			Metric: "batches_per_sec",
			Value:  fmt.Sprintf("%.1f", perSec),
		})
	}

	for _, n := range e14WALLengths {
		elapsed, rec, epoch, err := e14Recovery(n, 0)
		if err != nil {
			t.OK = false
			t.Notes = append(t.Notes, fmt.Sprintf("recovery wal=%d: %v", n, err))
			continue
		}
		ok := rec != nil && rec.Records == n && !rec.DamagedTail && epoch == uint64(n)
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			"recovery",
			fmt.Sprintf("wal=%d records", n),
			dur(elapsed),
			fmt.Sprintf("%.0f records/s", float64(n)/elapsed.Seconds()),
			fmt.Sprintf("%v", ok),
		})
		t.Breakdown = append(t.Breakdown, StageMetric{
			Stage:  fmt.Sprintf("recovery wal=%d", n),
			Metric: "replay_us",
			Value:  fmt.Sprintf("%d", elapsed.Microseconds()),
		})
	}

	// Checkpointed recovery: the same 4096 mutations, but with a snapshot
	// every 512 batches the boot replays only the short tail.
	n := e14WALLengths[len(e14WALLengths)-1]
	elapsed, rec, epoch, err := e14Recovery(n, 512)
	if err != nil {
		t.OK = false
		t.Notes = append(t.Notes, fmt.Sprintf("checkpointed recovery: %v", err))
	} else {
		ok := rec != nil && rec.Records < n && epoch == uint64(n)
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			"recovery",
			fmt.Sprintf("wal=%d, checkpoint every 512", n),
			dur(elapsed),
			fmt.Sprintf("%d records replayed", rec.Records),
			fmt.Sprintf("%v", ok),
		})
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("Throughput: %d single-writer batches per point, temp-dir store, checkpoints off; the fsync-policy cost is the always-vs-none gap at equal batch size.", e14WriteBatches),
		"Recovery: boot-time Open() on a store whose WAL holds the listed record count; the checkpointed row snapshots every 512 batches so only the tail replays.",
	)
	return t
}
