package triq

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
)

// This file provides the provably-exact counterpart to the fast bottom-up
// evaluator: Π(D)↓ computed by running the ProofTree decision procedure of
// Section 6.3 over every candidate ground atom, sharing the memoized state
// space across goals. For a fixed warded program this is polynomial in the
// database (|sch| · |dom|^arity goals, each decided in polynomial time), so
// it realizes the Theorem 6.7 upper bound end-to-end — the "practical
// algorithm for computing the ground semantics of a warded Datalog^∃
// program" the paper lists as future work, in its simplest correct form.

// ExactGround computes Π(D)↓ for a warded program with (optional) stratified
// grounded negation. Negation is first eliminated per Step 1 of Section 6.3;
// constraints are not supported (apply the Π⊥ reduction first). The
// predicates of the result are those of the original program.
//
// Only predicates listed in preds are enumerated; nil means every program
// predicate. Restricting the predicates keeps |dom|^arity enumeration
// affordable when only an output relation is needed.
func ExactGround(db *chase.Instance, prog *datalog.Program, preds []string, chaseOpts chase.Options, opts ProofOptions) (*chase.Instance, error) {
	return ExactGroundCtx(context.Background(), db, prog, preds, chaseOpts, opts)
}

// ExactGroundCtx is ExactGround under a context. When the proof search is
// cut short by a limit mid-enumeration, the atoms certified before the
// abort are returned alongside the typed error: each carries a proof, so
// the partial instance is a sound under-approximation of Π(D)↓.
func ExactGroundCtx(ctx context.Context, db *chase.Instance, prog *datalog.Program, preds []string, chaseOpts chase.Options, opts ProofOptions) (*chase.Instance, error) {
	if len(prog.Constraints) > 0 {
		return nil, fmt.Errorf("triq: ExactGround requires a constraint-free program")
	}
	workDB, workProg := db, prog
	if prog.HasNegation() {
		var err error
		workDB, workProg, err = EliminateNegationCtx(ctx, db, prog, chaseOpts)
		if err != nil {
			return nil, err
		}
	}
	pv, err := NewProver(workDB, workProg, opts)
	if err != nil {
		return nil, err
	}
	// Enumerate over the ORIGINAL program's schema: negation elimination
	// replaces ¬s atoms by complement predicates, which would otherwise drop
	// purely-extensional negated predicates like s from the schema.
	sch, err := prog.Schema()
	if err != nil {
		return nil, err
	}
	if workProg != prog {
		workSch, err := workProg.Schema()
		if err != nil {
			return nil, err
		}
		for p, a := range workSch {
			if _, ok := sch[p]; !ok {
				sch[p] = a
			}
		}
	}
	if preds == nil {
		preds = append(preds, prog.Predicates()...)
		sort.Strings(preds)
	}
	// The goal domain: constants of the (negation-eliminated) database and
	// the program.
	domSet := make(map[datalog.Term]bool)
	for _, c := range workDB.Constants() {
		domSet[c] = true
	}
	for _, r := range workProg.Rules {
		for _, a := range append(r.Body(), r.Head...) {
			for _, t := range a.Args {
				if t.IsConst() {
					domSet[t] = true
				}
			}
		}
	}
	dom := make([]datalog.Term, 0, len(domSet))
	for t := range domSet {
		dom = append(dom, t)
	}
	sort.Slice(dom, func(i, j int) bool { return dom[i].Compare(dom[j]) < 0 })

	out := chase.NewInstance()
	for _, pred := range preds {
		arity, ok := sch[pred]
		if !ok {
			return nil, fmt.Errorf("triq: predicate %s not in the program schema", pred)
		}
		tuple := make([]datalog.Term, arity)
		var rec func(k int) error
		rec = func(k int) error {
			if k == arity {
				goal := datalog.Atom{Pred: pred, Args: append([]datalog.Term(nil), tuple...)}
				proven, err := pv.ProvesCtx(ctx, goal)
				if err != nil {
					return err
				}
				if proven {
					out.Add(goal)
				}
				return nil
			}
			for _, c := range dom {
				tuple[k] = c
				if err := rec(k + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			// The atoms certified so far each carry a proof: return them as a
			// sound partial result alongside the typed error.
			return out, err
		}
	}
	return out, nil
}

// EvalExact evaluates a TriQ-Lite 1.0 query with the exact procedure: the
// constraints are reduced per Theorem 4.4, negation is eliminated per
// Step 1, and the output predicate (plus the inconsistency marker) is
// enumerated with ProofTree. Slower than Eval, but its answers carry a
// per-tuple proof, and it is exact even when the chase of the program is
// infinite.
func EvalExact(db *chase.Instance, q datalog.Query, opts Options) (*Result, error) {
	return EvalExactCtx(context.Background(), db, q, opts)
}

// EvalExactCtx is EvalExact under a context. A visit-budget trip degrades to
// the sound partial answer set (every tuple certified by a proof) with
// Result.Incomplete set; cancellation and deadlines return typed errors.
func EvalExactCtx(ctx context.Context, db *chase.Instance, q datalog.Query, opts Options) (*Result, error) {
	if err := Validate(q, TriQLite10); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, opts.Chase.Obs, "triq.exact",
		obs.F("output", q.Output),
		obs.F("db_facts", db.Len()))
	prog := q.Program
	preds := []string{q.Output}
	if len(prog.Constraints) > 0 {
		prog = prog.Clone()
		for _, c := range prog.Constraints {
			prog.Add(datalog.Rule{BodyPos: c.Body, Head: []datalog.Atom{{Pred: inconsistencyMarker}}})
		}
		prog.Constraints = nil
		preds = append(preds, inconsistencyMarker)
	}
	ground, err := ExactGroundCtx(ctx, db, prog, preds, opts.Chase, ProofOptions{MaxVisits: opts.MaxVisits, Obs: opts.Chase.Obs, Faults: opts.Chase.Faults})
	res := &Result{Exact: true}
	if err != nil {
		if ground == nil || !limits.IsBudget(err) {
			sp.End(obs.F("error", true))
			return nil, err
		}
		res.Exact = false
		res.Incomplete = true
		if tr, ok := limits.TruncationOf(err); ok {
			res.Truncation = tr
		}
	}
	ans := &chase.Answers{}
	if len(ground.AtomsOf(inconsistencyMarker)) > 0 {
		ans.Inconsistent = true
		res.Answers = ans
		sp.End(obs.F("inconsistent", true))
		return res, nil
	}
	for _, a := range ground.AtomsOf(q.Output) {
		ans.Tuples = append(ans.Tuples, a.Args)
	}
	sortTuples(ans.Tuples)
	res.Answers = ans
	sp.End(
		obs.F("answers", len(ans.Tuples)),
		obs.F("exact", res.Exact),
		obs.F("incomplete", res.Incomplete))
	return res, nil
}
