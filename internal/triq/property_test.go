package triq

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
)

// randomWardedProgram generates random positive Datalog∃ programs and keeps
// the warded ones: rule shapes are drawn from templates known to often land
// inside the fragment, then CheckWarded filters.
func randomWardedProgram(rng *rand.Rand) *datalog.Program {
	x, y, z, w := datalog.V("X"), datalog.V("Y"), datalog.V("Z"), datalog.V("W")
	templates := []datalog.Rule{
		// guarded existential invention
		{BodyPos: []datalog.Atom{datalog.NewAtom("a", x)},
			Head: []datalog.Atom{datalog.NewAtom("s", x, w)}},
		// chain invention (infinite chase shape)
		{BodyPos: []datalog.Atom{datalog.NewAtom("s", x, y)},
			Head: []datalog.Atom{datalog.NewAtom("s", y, w)}},
		// transitive closure over the affected relation
		{BodyPos: []datalog.Atom{datalog.NewAtom("s", x, y), datalog.NewAtom("s", y, z)},
			Head: []datalog.Atom{datalog.NewAtom("s", x, z)}},
		// join back on ground anchors
		{BodyPos: []datalog.Atom{datalog.NewAtom("s", x, y), datalog.NewAtom("g", y)},
			Head: []datalog.Atom{datalog.NewAtom("out", x)}},
		{BodyPos: []datalog.Atom{datalog.NewAtom("s", x, y), datalog.NewAtom("a", x)},
			Head: []datalog.Atom{datalog.NewAtom("hit", x)}},
		// copy rules
		{BodyPos: []datalog.Atom{datalog.NewAtom("a", x)},
			Head: []datalog.Atom{datalog.NewAtom("g", x)}},
		{BodyPos: []datalog.Atom{datalog.NewAtom("out", x)},
			Head: []datalog.Atom{datalog.NewAtom("hit", x)}},
		{BodyPos: []datalog.Atom{datalog.NewAtom("g", x), datalog.NewAtom("s", x, y)},
			Head: []datalog.Atom{datalog.NewAtom("s2", x, y)}},
	}
	for tries := 0; tries < 50; tries++ {
		prog := &datalog.Program{}
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			prog.Add(templates[rng.Intn(len(templates))])
		}
		if err := datalog.CheckWarded(prog); err == nil {
			return prog
		}
	}
	// Fallback: a fixed warded program.
	return datalog.MustParse(`
		a(?X) -> exists ?W s(?X, ?W).
		s(?X, ?Y), g(?Y) -> out(?X).
	`)
}

// TestPropertyProofTreeAgreesWithChaseRandom cross-validates the paper's
// top-down decision procedure against the bottom-up stable-ground chase on
// randomly drawn warded programs and databases, over every candidate ground
// atom of arity ≤ 2.
func TestPropertyProofTreeAgreesWithChaseRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("random cross-validation skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(63))
	names := []string{"a", "b"}
	for round := 0; round < 30; round++ {
		prog := randomWardedProgram(rng)
		db := chase.NewInstance()
		for i := 0; i < 1+rng.Intn(3); i++ {
			switch rng.Intn(3) {
			case 0:
				db.Add(atom("a", names[rng.Intn(2)]))
			case 1:
				db.Add(atom("g", names[rng.Intn(2)]))
			default:
				db.Add(atom("s", names[rng.Intn(2)], names[rng.Intn(2)]))
			}
		}
		gr, err := chase.StableGround(db, prog, chase.Options{MaxDepth: 16}, 2)
		if err != nil {
			t.Fatalf("round %d: chase: %v\n%s", round, err, prog)
		}
		pv, err := NewProver(db, prog, ProofOptions{})
		if err != nil {
			t.Fatalf("round %d: prover: %v\n%s", round, err, prog)
		}
		sch, _ := prog.Schema()
		for pred, arity := range sch {
			var tuples [][]datalog.Term
			switch arity {
			case 1:
				for _, n := range names {
					tuples = append(tuples, []datalog.Term{datalog.C(n)})
				}
			case 2:
				for _, n := range names {
					for _, m := range names {
						tuples = append(tuples, []datalog.Term{datalog.C(n), datalog.C(m)})
					}
				}
			}
			for _, tup := range tuples {
				goal := datalog.Atom{Pred: pred, Args: tup}
				want := gr.Ground.Has(goal)
				got, err := pv.Proves(goal)
				if err != nil {
					t.Fatalf("round %d: prove %v: %v\n%s", round, goal, err, prog)
				}
				if got != want {
					t.Fatalf("round %d: %v: prooftree=%v chase=%v\nprogram:\n%s\ndb:\n%s",
						round, goal, got, want, prog, db)
				}
			}
		}
	}
}
