package triq

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
)

func TestEliminateNegationSimple(t *testing.T) {
	// Unreachable pairs in a graph: a two-stratum program.
	db := chase.NewInstance(
		atom("e", "a", "b"), atom("e", "b", "c"),
		atom("v", "a"), atom("v", "b"), atom("v", "c"),
	)
	prog := datalog.MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
		v(?X), v(?Y), not tc(?X, ?Y) -> un(?X, ?Y).
	`)
	dbPlus, progPlus, err := EliminateNegation(db, prog, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if progPlus.HasNegation() {
		t.Fatal("Π+ must be negation-free")
	}
	// The complement predicate must be populated: tc misses e.g. (b,a).
	if !dbPlus.Has(atom("not#tc", "b", "a")) {
		t.Error("complement fact not#tc(b,a) missing")
	}
	if dbPlus.Has(atom("not#tc", "a", "b")) {
		t.Error("not#tc(a,b) should be absent: tc(a,b) holds")
	}
	// Q(D) = Q+(D+) on the output predicate.
	orig, err := chase.Run(db, prog, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plus, err := chase.Run(dbPlus, progPlus, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, wantAtom := range orig.Instance.AtomsOf("un") {
		if !plus.Instance.Has(wantAtom) {
			t.Errorf("Π+ lost %v", wantAtom)
		}
	}
	if len(plus.Instance.AtomsOf("un")) != len(orig.Instance.AtomsOf("un")) {
		t.Errorf("un counts differ: %d vs %d",
			len(plus.Instance.AtomsOf("un")), len(orig.Instance.AtomsOf("un")))
	}
}

func TestEliminateNegationThreeStrata(t *testing.T) {
	db := chase.NewInstance(atom("b", "x"), atom("b", "y"), atom("special", "y"))
	prog := datalog.MustParse(`
		b(?X), not special(?X) -> plain(?X).
		b(?X), not plain(?X) -> fancy(?X).
	`)
	dbPlus, progPlus, err := EliminateNegation(db, prog, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := chase.Run(dbPlus, progPlus, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instance.Has(atom("plain", "x")) || res.Instance.Has(atom("plain", "y")) {
		t.Errorf("plain wrong: %v", res.Instance.AtomsOf("plain"))
	}
	if !res.Instance.Has(atom("fancy", "y")) || res.Instance.Has(atom("fancy", "x")) {
		t.Errorf("fancy wrong: %v", res.Instance.AtomsOf("fancy"))
	}
}

func TestEliminateNegationWithExistentials(t *testing.T) {
	// Negation downstream of value invention: warded, grounded.
	db := chase.NewInstance(atom("p", "c"), atom("p", "d"), atom("seen", "d"))
	prog := datalog.MustParse(`
		p(?X), not seen(?X) -> fresh(?X).
		fresh(?X) -> exists ?Y s(?X, ?Y).
		s(?X, ?Y), p(?X) -> out(?X).
	`)
	if err := datalog.CheckGroundedNegation(prog); err != nil {
		t.Fatal(err)
	}
	dbPlus, progPlus, err := EliminateNegation(db, prog, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := chase.StableGround(dbPlus, progPlus, chase.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Ground.Has(atom("out", "c")) {
		t.Error("out(c) missing")
	}
	if gr.Ground.Has(atom("out", "d")) {
		t.Error("out(d) must be blocked by the negation")
	}
}

func TestEliminateNegationRejects(t *testing.T) {
	db := chase.NewInstance()
	withConstraint := datalog.MustParse(`
		p(?X) -> q(?X).
		q(?X) -> false.
	`)
	if _, _, err := EliminateNegation(db, withConstraint, chase.Options{}); err == nil {
		t.Error("constraints must be rejected")
	}
	ungrounded := datalog.MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y), not b(?Y) -> d(?X).
	`)
	if _, _, err := EliminateNegation(db, ungrounded, chase.Options{}); err == nil {
		t.Error("ungrounded negation must be rejected")
	}
}

func TestProverWithNegation(t *testing.T) {
	db := chase.NewInstance(atom("p", "c"), atom("p", "d"), atom("seen", "d"))
	prog := datalog.MustParse(`
		p(?X), not seen(?X) -> fresh(?X).
		fresh(?X) -> exists ?Y s(?X, ?Y).
		s(?X, ?Y), p(?X) -> out(?X).
	`)
	pv, err := NewProverWithNegation(db, prog, chase.Options{}, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := pv.Proves(atom("out", "c")); err != nil || !ok {
		t.Errorf("out(c) should be provable: %v %v", ok, err)
	}
	if ok, err := pv.Proves(atom("out", "d")); err != nil || ok {
		t.Errorf("out(d) should not be provable: %v %v", ok, err)
	}
	// Negation-free programs pass straight through.
	pv2, err := NewProverWithNegation(db, datalog.MustParse(`p(?X) -> q(?X).`), chase.Options{}, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := pv2.Proves(atom("q", "c")); !ok {
		t.Error("q(c) should be provable")
	}
}

func TestComplementPredNaming(t *testing.T) {
	if !strings.HasPrefix(complementPred("tc"), "not#") {
		t.Error("complement naming changed")
	}
}
