package triq

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
)

func TestExactGroundAgreesWithStableGround(t *testing.T) {
	cases := []struct {
		name string
		db   *chase.Instance
		src  string
	}{
		{
			"example 6.10",
			chase.NewInstance(atom("s", "a", "a", "a"), atom("t", "a")),
			example610Src,
		},
		{
			"infinite chain",
			chase.NewInstance(atom("e", "a", "b"), atom("g", "b")),
			`
				e(?X, ?Y) -> exists ?Z e(?Y, ?Z).
				e(?X, ?Y), g(?Y) -> out(?X).
			`,
		},
		{
			"grounded negation",
			chase.NewInstance(atom("p", "c"), atom("p", "d"), atom("seen", "d")),
			`
				p(?X), not seen(?X) -> fresh(?X).
				fresh(?X) -> exists ?Y s(?X, ?Y).
				s(?X, ?Y), p(?X) -> out(?X).
			`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := datalog.MustParse(tc.src)
			exact, err := ExactGround(tc.db, prog, nil, chase.Options{}, ProofOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gr, err := chase.StableGround(tc.db, prog, chase.Options{MaxDepth: 24}, 2)
			if err != nil {
				t.Fatal(err)
			}
			// Compare on the original program's predicates only (negation
			// elimination adds complement relations on the exact side, and
			// StableGround does not see them; single-head aux predicates are
			// shared).
			sch, _ := prog.Schema()
			for pred := range sch {
				exactAtoms := exact.AtomsOf(pred)
				for _, a := range exactAtoms {
					if !gr.Ground.Has(a) {
						t.Errorf("exact derived %v, chase did not", a)
					}
				}
				for _, a := range gr.Ground.AtomsOf(pred) {
					if !exact.Has(a) {
						t.Errorf("chase derived %v, exact did not", a)
					}
				}
			}
		})
	}
}

func TestExactGroundPredicateSelection(t *testing.T) {
	db := chase.NewInstance(atom("e", "a", "b"), atom("e", "b", "c"))
	prog := datalog.MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`)
	out, err := ExactGround(db, prog, []string{"tc"}, chase.Options{}, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.AtomsOf("tc")) != 3 {
		t.Errorf("tc = %v", out.AtomsOf("tc"))
	}
	if len(out.AtomsOf("e")) != 0 {
		t.Error("unselected predicate should not be enumerated")
	}
	if _, err := ExactGround(db, prog, []string{"absent"}, chase.Options{}, ProofOptions{}); err == nil {
		t.Error("unknown predicate should error")
	}
}

func TestExactGroundRejectsConstraints(t *testing.T) {
	prog := datalog.MustParse(`p(?X) -> q(?X). q(?X) -> false.`)
	if _, err := ExactGround(chase.NewInstance(), prog, nil, chase.Options{}, ProofOptions{}); err == nil {
		t.Error("constraints must be rejected")
	}
}

func TestEvalExactMatchesEval(t *testing.T) {
	db := chase.NewInstance(
		atom("triple", "TheAirline", "partOf", "transportService"),
		atom("triple", "A311", "partOf", "TheAirline"),
		atom("triple", "Oxford", "A311", "London"),
		atom("triple", "London", "A311", "Madrid"),
	)
	q := datalog.MustParseQuery(`
		triple(?X, partOf, transportService) -> ts(?X).
		triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
		ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
		ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
		conn(?X, ?Y) -> query(?X, ?Y).
	`, "query")
	fast, err := Eval(db, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := EvalExact(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Answers.Tuples) != len(exact.Answers.Tuples) {
		t.Fatalf("answer counts differ: fast %d vs exact %d",
			len(fast.Answers.Tuples), len(exact.Answers.Tuples))
	}
	for i := range fast.Answers.Tuples {
		if !isSameTuple(fast.Answers.Tuples[i], exact.Answers.Tuples[i]) {
			t.Errorf("tuple %d differs: %v vs %v", i, fast.Answers.Tuples[i], exact.Answers.Tuples[i])
		}
	}
	if !exact.Exact {
		t.Error("EvalExact must report exactness")
	}
}

func isSameTuple(a, b []datalog.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEvalExactConstraints(t *testing.T) {
	q := datalog.MustParseQuery(`
		type(?X, ?Y) -> out(?X).
		type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.
	`, "out")
	bad := chase.NewInstance(atom("type", "a", "C1"), atom("type", "a", "C2"), atom("disj", "C1", "C2"))
	res, err := EvalExact(bad, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers.Inconsistent {
		t.Error("EvalExact should detect ⊤")
	}
	good := chase.NewInstance(atom("type", "a", "C1"))
	res, err = EvalExact(good, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Inconsistent || len(res.Answers.Tuples) != 1 {
		t.Errorf("answers = %+v", res.Answers)
	}
}

func TestEvalExactRejectsNonTriQLite(t *testing.T) {
	q := datalog.MustParseQuery(datalog.MustParse(`
		n(?X) -> exists ?Y s(?X, ?Y).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W) -> out(?X).
	`).String(), "out")
	if _, err := EvalExact(chase.NewInstance(), q, Options{}); err == nil {
		t.Error("non-warded query must be rejected")
	}
}
