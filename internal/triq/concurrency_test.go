package triq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
)

// TestProverConcurrentProve hammers one shared Prover from many goroutines.
// The memo table, visit counters, and in-flight context are shared state;
// this test (run under -race in CI) proves the serialization makes them
// safe, and checks every goroutine still gets the right answer.
func TestProverConcurrentProve(t *testing.T) {
	db := chase.NewInstance()
	for i := 0; i < 20; i++ {
		db.Add(datalog.NewAtom("e", datalog.C(fmt.Sprintf("v%d", i)), datalog.C(fmt.Sprintf("v%d", i+1))))
	}
	prog := datalog.MustParse(`
		e(?X, ?Y) -> r(?X, ?Y).
		e(?X, ?Y), r(?Y, ?Z) -> r(?X, ?Z).
	`)
	pv, err := NewProver(db, prog, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				from := (w + i) % 15
				to := from + 1 + (w % 5)
				goal := datalog.NewAtom("r",
					datalog.C(fmt.Sprintf("v%d", from)), datalog.C(fmt.Sprintf("v%d", to)))
				ok, err := pv.ProvesCtx(context.Background(), goal)
				if err != nil {
					// CI arms sparse process-global faults (TRIQ_FAULTS); an
					// injected typed error is a legal concurrent outcome.
					if errors.Is(err, limits.ErrInjected) {
						continue
					}
					errs <- fmt.Errorf("prove %v: %w", goal, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("prove %v: expected provable", goal)
					return
				}
				// A non-fact: reachability never goes backwards.
				bad := datalog.NewAtom("r",
					datalog.C(fmt.Sprintf("v%d", to)), datalog.C(fmt.Sprintf("v%d", from)))
				ok, err = pv.ProvesCtx(context.Background(), bad)
				if err != nil {
					if errors.Is(err, limits.ErrInjected) {
						continue
					}
					errs <- fmt.Errorf("prove %v: %w", bad, err)
					return
				}
				if ok {
					errs <- fmt.Errorf("prove %v: expected unprovable", bad)
					return
				}
				// Metrics may be read concurrently with in-flight proofs.
				_ = pv.Metrics()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
