package triq

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
)

// This file implements the ProofTree algorithm of Section 6.3: a top-down
// decision procedure for the question "is the ground atom p(t) in Π(D)?" for
// a positive warded Datalog^∃ program Π. Per Lemma 6.12 this is equivalent
// to the existence of a proof-tree (Definition 6.11), which the procedure
// searches for by resolution over *components*: sets of atoms glued by
// labeled nulls whose invention point is not yet known. The paper runs the
// components in parallel universal branches of an alternating machine; this
// implementation explores them recursively with memoization of successful
// canonicalized states (alternating reachability), which realizes the same
// polynomial state space. Successful resolutions are recorded so that the
// actual proof-tree (as in Figure 1) can be rendered.

// ProofNode is one node of a proof-tree: an atom, the rule that derived it
// (empty for database facts), and the instantiated body atoms as children.
type ProofNode struct {
	Atom     datalog.Atom
	Rule     string
	Children []*ProofNode
}

// Render draws the proof tree as an ASCII tree, root first.
func (n *ProofNode) Render() string {
	var b strings.Builder
	var rec func(node *ProofNode, prefix string, last bool, root bool)
	rec = func(node *ProofNode, prefix string, last bool, root bool) {
		label := node.Atom.String()
		if node.Rule != "" {
			label += "   [" + node.Rule + "]"
		} else {
			label += "   [db]"
		}
		if root {
			b.WriteString(label + "\n")
		} else {
			connector := "├─ "
			if last {
				connector = "└─ "
			}
			b.WriteString(prefix + connector + label + "\n")
		}
		childPrefix := prefix
		if !root {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		for i, c := range node.Children {
			rec(c, childPrefix, i == len(node.Children)-1, false)
		}
	}
	rec(n, "", true, true)
	return b.String()
}

// Size returns the number of nodes in the tree.
func (n *ProofNode) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// ProofOptions bound the proof search.
type ProofOptions struct {
	// MaxVisits caps the number of component expansions (default 2,000,000).
	MaxVisits int
	// Obs attaches the observability layer: when non-nil each Prove emits a
	// prover.prove span with its search-space metrics, the registry gains
	// prover.* counters, and canonicalization time is measured. Nil (the
	// default) disables all of it.
	Obs *obs.Obs
	// Faults arms a per-evaluation fault-injection plan checked at the
	// prover.expand and prover.memo sites (the process-global TRIQ_FAULTS
	// plan is always consulted too). Nil disables per-evaluation injection.
	Faults *limits.Plan
}

// ProofMetrics is the cumulative search-space accounting of a Prover. It
// grows monotonically across Prove calls on the same Prover, so callers
// snapshot it before and after a call to attribute work to one goal.
type ProofMetrics struct {
	// Components counts component states visited (the paper's alternating
	// branches), including memoized and cycle-cut revisits.
	Components int
	// Expansions counts states that needed actual resolution work (i.e.
	// neither a database base case nor a memo hit nor a cycle cut).
	Expansions int
	// MemoHits / MemoMisses count canonical-state memo lookups.
	MemoHits   int
	MemoMisses int
	// Resolutions counts successful head unifications tried during expansion.
	Resolutions int
	// MaxRecursionDepth is the deepest component nesting reached.
	MaxRecursionDepth int
	// FreshNulls counts the fresh labeled nulls allocated by µ-enumeration.
	FreshNulls int
	// CanonTime is the total time spent canonicalizing states; it is only
	// collected when ProofOptions.Obs is set (timing calls are skipped on the
	// disabled path).
	CanonTime time.Duration
	// VisitBudget echoes the effective ProofOptions.MaxVisits limit.
	VisitBudget int
}

// Prover decides membership of ground atoms in Π(D) for a positive warded
// Datalog^∃ program Π.
//
// A Prover is safe for concurrent use: Prove/ProveCtx calls from multiple
// goroutines serialize on an internal mutex. The search state (the canonical
// memo table, visit counters, the in-flight context) is deliberately shared
// across calls — that cross-goal memo reuse is what keeps ExactGround
// polynomial — so concurrent searches cannot safely interleave; serializing
// them preserves both safety and the memo benefit. Callers needing parallel
// proof search should build one Prover per goroutine over the shared
// (read-only) database instance.
type Prover struct {
	db     *chase.Instance
	orig   *datalog.Program
	prog   *datalog.Program // normalized for the algorithm
	an     *datalog.Analysis
	rules  []proverRule
	domain []datalog.Term // dom(D) ∪ constants of Π
	opts   ProofOptions

	// mu serializes Prove calls: everything below it is per-call or
	// cross-call mutable state.
	mu     sync.Mutex
	memo   map[string]*memoEntry
	visits int
	fresh  int
	err    error

	m        ProofMetrics // hits/misses/expansions/resolutions/depth/canon
	depthNow int
	timing   bool // collect CanonTime (set when opts.Obs != nil)

	ctx   context.Context // the context of the in-flight Prove, nil between calls
	start time.Time       // start of the in-flight Prove
	tick  int             // µ-enumeration counter gating the ctx checks
}

// fail records a typed abort, decorating its Truncation with the prover's
// progress and emitting the limits.aborted observability event. It returns
// false so call sites can `return nil, pv.fail(err)`-style collapse.
func (pv *Prover) fail(err error) bool {
	if tr, ok := limits.TruncationOf(err); ok {
		tr.Visits = pv.visits
		tr.Elapsed = time.Since(pv.start)
		if pv.opts.Obs != nil {
			pv.opts.Obs.Event("limits.aborted",
				obs.F("limit", tr.Limit),
				obs.F("visits", tr.Visits))
			pv.opts.Obs.Count("limits.aborted", 1)
		}
	}
	pv.err = err
	return false
}

// interrupted aborts the search when the Prove context has been canceled or
// its deadline passed.
func (pv *Prover) interrupted() bool {
	if pv.err != nil {
		return true
	}
	if kind := limits.CtxKind(pv.ctx); kind != nil {
		return !pv.fail(limits.NewError(kind, limits.Truncation{}))
	}
	return false
}

// Metrics snapshots the prover's cumulative search-space accounting. It
// blocks while a Prove call is in flight on another goroutine.
func (pv *Prover) Metrics() ProofMetrics {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	return pv.metricsLocked()
}

// metricsLocked is Metrics for callers already holding pv.mu.
func (pv *Prover) metricsLocked() ProofMetrics {
	m := pv.m
	m.Components = pv.visits
	m.FreshNulls = pv.fresh
	m.VisitBudget = pv.opts.MaxVisits
	return m
}

// memoEntry stores the proof nodes of a successfully proven state with the
// state's nulls renamed to canonical placeholders (#0, #1, …), so the entry
// can be reused by any isomorphic state: on retrieval the placeholders are
// renamed to the requesting state's concrete null names. Children keep
// whatever names they were proven with — they only matter for rendering.
type memoEntry struct {
	nodes []*ProofNode // node atoms use canonical placeholder nulls
}

func renameAtomNulls(a datalog.Atom, ren map[string]string) datalog.Atom {
	out := datalog.Atom{Pred: a.Pred, Args: make([]datalog.Term, len(a.Args))}
	for i, t := range a.Args {
		if t.IsNull() {
			if to, ok := ren[t.Name]; ok {
				out.Args[i] = datalog.N(to)
				continue
			}
		}
		out.Args[i] = t
	}
	return out
}

type proverRule struct {
	rule     datalog.Rule
	head     datalog.Atom
	label    string
	exVar    datalog.Term // zero Term when the rule has no existential
	exPos    int          // head position of the existential occurrence, -1 otherwise
	harmless map[datalog.Term]bool
	unbound  []datalog.Term // body vars not occurring in the head
}

// NewProver validates and normalizes the program (single-head, at most one
// existential occurrence, head-grounded/semi-body-grounded — Section 6.3).
func NewProver(db *chase.Instance, prog *datalog.Program, opts ProofOptions) (*Prover, error) {
	if prog.HasNegation() {
		return nil, fmt.Errorf("triq: ProofTree requires a negation-free program (eliminate negation first)")
	}
	if len(prog.Constraints) > 0 {
		return nil, fmt.Errorf("triq: ProofTree requires a constraint-free program (apply the Π⊥ reduction first)")
	}
	if err := datalog.CheckWarded(prog); err != nil {
		return nil, err
	}
	norm, err := datalog.NormalizeForProofTree(prog)
	if err != nil {
		return nil, err
	}
	if opts.MaxVisits == 0 {
		opts.MaxVisits = 2_000_000
	}
	pv := &Prover{
		db:     db,
		orig:   prog,
		prog:   norm,
		an:     datalog.Analyze(norm),
		opts:   opts,
		memo:   make(map[string]*memoEntry),
		timing: opts.Obs != nil,
	}
	// Domain: constants of the database and of the program.
	seen := make(map[datalog.Term]bool)
	for _, c := range db.Constants() {
		seen[c] = true
	}
	for _, r := range norm.Rules {
		for _, a := range append(r.Body(), r.Head...) {
			for _, t := range a.Args {
				if t.IsConst() {
					seen[t] = true
				}
			}
		}
	}
	for t := range seen {
		pv.domain = append(pv.domain, t)
	}
	sort.Slice(pv.domain, func(i, j int) bool { return pv.domain[i].Compare(pv.domain[j]) < 0 })

	for i, r := range norm.Rules {
		pr := proverRule{
			rule:     r,
			head:     r.Head[0],
			label:    fmt.Sprintf("ρ%d: %s", i+1, r.String()),
			exPos:    -1,
			harmless: map[datalog.Term]bool{},
		}
		vc := pv.an.Classify(r)
		for v := range vc.Harmless {
			pr.harmless[v] = true
		}
		if ex := r.ExistentialVars(); len(ex) == 1 {
			pr.exVar = ex[0]
			for j, t := range pr.head.Args {
				if t == ex[0] {
					pr.exPos = j
					break
				}
			}
		} else if len(ex) > 1 {
			return nil, fmt.Errorf("triq: normalization left %d existentials in %v", len(ex), r)
		}
		headVars := map[datalog.Term]bool{}
		for _, v := range r.HeadVars() {
			headVars[v] = true
		}
		for _, v := range r.BodyVars() {
			if !headVars[v] {
				pr.unbound = append(pr.unbound, v)
			}
		}
		pv.rules = append(pv.rules, pr)
	}
	return pv, nil
}

// Proves reports whether the constant-ground atom is in Π(D).
func (pv *Prover) Proves(goal datalog.Atom) (bool, error) {
	_, ok, err := pv.Prove(goal)
	return ok, err
}

// ProvesCtx is Proves under a context.
func (pv *Prover) ProvesCtx(ctx context.Context, goal datalog.Atom) (bool, error) {
	_, ok, err := pv.ProveCtx(ctx, goal)
	return ok, err
}

// Prove decides membership and returns the proof-tree on success.
func (pv *Prover) Prove(goal datalog.Atom) (*ProofNode, bool, error) {
	return pv.ProveCtx(context.Background(), goal)
}

// ProveCtx is Prove under a context: cancellation and deadlines are checked
// at every component visit and throughout µ-enumeration, so a canceled
// search stops within one expansion; the visit budget aborts with a typed
// ErrVisitBudget carrying a Truncation report.
func (pv *Prover) ProveCtx(ctx context.Context, goal datalog.Atom) (*ProofNode, bool, error) {
	if !goal.IsConstantGround() {
		return nil, false, fmt.Errorf("triq: goal %v must be a constant-ground atom", goal)
	}
	// Serialize concurrent Prove calls: the memo table and counters are
	// shared across calls by design (see the Prover doc comment).
	pv.mu.Lock()
	defer pv.mu.Unlock()
	o := pv.opts.Obs
	before := pv.metricsLocked()
	_, sp := obs.StartSpan(ctx, o, "prover.prove", obs.F("goal", goal.String()))
	pv.err = nil
	pv.ctx = ctx
	pv.start = time.Now()
	defer func() { pv.ctx = nil }()
	nodes, ok := pv.proveComponent([]datalog.Atom{goal}, map[string]datalog.Atom{}, map[string]bool{})
	after := pv.metricsLocked()
	// Bill this proof search's memoization to the request's resource
	// account (no-op without a trace on ctx).
	obs.TraceFrom(ctx).AddProver(int64(after.MemoHits-before.MemoHits), int64(after.MemoMisses-before.MemoMisses))
	if o != nil || sp != nil {
		sp.End(
			obs.F("ok", ok && pv.err == nil),
			obs.F("components", after.Components-before.Components),
			obs.F("expansions", after.Expansions-before.Expansions),
			obs.F("memo_hits", after.MemoHits-before.MemoHits),
			obs.F("memo_misses", after.MemoMisses-before.MemoMisses),
			obs.F("resolutions", after.Resolutions-before.Resolutions),
			obs.F("fresh_nulls", after.FreshNulls-before.FreshNulls),
			obs.F("max_recursion_depth", after.MaxRecursionDepth),
			obs.F("canon_us", after.CanonTime.Microseconds()),
			obs.F("visit_budget", after.VisitBudget))
		o.Count("prover.proofs", 1)
		o.Count("prover.components", int64(after.Components-before.Components))
		o.Count("prover.expansions", int64(after.Expansions-before.Expansions))
		o.Count("prover.memo_hits", int64(after.MemoHits-before.MemoHits))
		o.Count("prover.memo_misses", int64(after.MemoMisses-before.MemoMisses))
		o.Count("prover.resolutions", int64(after.Resolutions-before.Resolutions))
		o.Gauge("prover.visit_budget", float64(after.VisitBudget))
		o.Gauge("prover.max_recursion_depth", float64(after.MaxRecursionDepth))
	}
	if pv.err != nil {
		return nil, false, pv.err
	}
	if !ok {
		return nil, false, nil
	}
	return nodes[goal.Key()], true, nil
}

// proveComponent proves every atom of the component S under the invention
// record RS (null name → birth atom; absent = ε). It returns proof nodes per
// atom key.
func (pv *Prover) proveComponent(s []datalog.Atom, rs map[string]datalog.Atom, stack map[string]bool) (map[string]*ProofNode, bool) {
	if pv.err != nil {
		return nil, false
	}
	pv.visits++
	if err := limits.Hit(pv.opts.Faults, "prover.expand"); err != nil {
		pv.fail(err)
		return nil, false
	}
	if pv.interrupted() {
		return nil, false
	}
	if pv.visits > pv.opts.MaxVisits {
		pv.fail(limits.NewError(limits.ErrVisitBudget, limits.Truncation{
			Budget: int64(pv.opts.MaxVisits), Reached: int64(pv.visits),
		}))
		return nil, false
	}
	pv.depthNow++
	defer func() { pv.depthNow-- }()
	if pv.depthNow > pv.m.MaxRecursionDepth {
		pv.m.MaxRecursionDepth = pv.depthNow
	}
	// Base: a single constant atom present in the database (step 1).
	if len(s) == 1 && s[0].IsConstantGround() && pv.db.Has(s[0]) {
		return map[string]*ProofNode{s[0].Key(): {Atom: s[0]}}, true
	}
	var canonStart time.Time
	if pv.timing {
		canonStart = time.Now()
	}
	key, order := canonState(s, rs)
	if pv.timing {
		pv.m.CanonTime += time.Since(canonStart)
	}
	if err := limits.Hit(pv.opts.Faults, "prover.memo"); err != nil {
		pv.fail(err)
		return nil, false
	}
	if e, ok := pv.memo[key]; ok {
		pv.m.MemoHits++
		// Rename the canonical placeholders to this state's null names.
		ren := make(map[string]string, len(order))
		for id, name := range order {
			ren[canonNullName(id)] = name
		}
		out := make(map[string]*ProofNode, len(e.nodes))
		for _, n := range e.nodes {
			atom := renameAtomNulls(n.Atom, ren)
			out[atom.Key()] = &ProofNode{Atom: atom, Rule: n.Rule, Children: n.Children}
		}
		return out, true
	}
	pv.m.MemoMisses++
	if stack[key] {
		// A minimal proof never repeats a state along a branch; treat as
		// failure here without memoizing (the state may succeed elsewhere).
		return nil, false
	}
	stack[key] = true
	defer delete(stack, key)

	pv.m.Expansions++
	nodes, ok := pv.expand(s, rs, stack)
	if ok {
		// Store in canonical form.
		ren := make(map[string]string, len(order))
		for id, name := range order {
			ren[name] = canonNullName(id)
		}
		entry := &memoEntry{}
		for _, n := range nodes {
			entry.nodes = append(entry.nodes, &ProofNode{
				Atom: renameAtomNulls(n.Atom, ren), Rule: n.Rule, Children: n.Children,
			})
		}
		pv.memo[key] = entry
		return nodes, true
	}
	return nil, false
}

func canonNullName(id int) string { return "#" + strconv.Itoa(id) }

// resolution is one atom of the component resolved against a rule.
type resolution struct {
	atom datalog.Atom
	rule *proverRule
	body []datalog.Atom
}

// expand implements steps 2–13: choose a compatible rule and an instantiation
// for every atom of the component, then recurse on the [N]-optimal partition
// of the union of the instantiated bodies.
func (pv *Prover) expand(s []datalog.Atom, rs map[string]datalog.Atom, stack map[string]bool) (map[string]*ProofNode, bool) {
	var chosen []resolution
	var try func(i int, rs map[string]datalog.Atom, freshUsed []datalog.Term) (map[string]*ProofNode, bool)
	try = func(i int, rs map[string]datalog.Atom, freshUsed []datalog.Term) (map[string]*ProofNode, bool) {
		if pv.err != nil {
			return nil, false
		}
		if i == len(s) {
			return pv.finish(s, rs, chosen, stack)
		}
		a := s[i]
		// A constant atom inside a mixed expansion may also be closed by the
		// database directly.
		if a.IsConstantGround() && pv.db.Has(a) {
			chosen = append(chosen, resolution{atom: a})
			res, ok := try(i+1, rs, freshUsed)
			chosen = chosen[:len(chosen)-1]
			if ok {
				return res, true
			}
		}
		for ri := range pv.rules {
			pr := &pv.rules[ri]
			h, ok := pv.unifyHead(pr, a)
			if !ok {
				continue
			}
			pv.m.Resolutions++
			// Step 7b: if a null sits at the existential position, this
			// resolution claims its invention; it must agree with RS.
			rs2 := rs
			if pr.exPos >= 0 {
				z := a.Args[pr.exPos]
				// unifyHead guarantees z is a null occurring once. This
				// resolution claims z's invention (step 7b): it must agree
				// with any previously recorded birth atom.
				if prev, known := rs[z.Name]; known {
					if !prev.Equal(a) {
						continue
					}
				} else {
					rs2 = cloneRS(rs)
					rs2[z.Name] = a
				}
			}
			var success map[string]*ProofNode
			pv.enumAssignments(pr, h, 0, s, freshUsed, func(b chase.Binding, fu []datalog.Term) bool {
				body := make([]datalog.Atom, 0, len(pr.rule.BodyPos))
				for _, ba := range pr.rule.BodyPos {
					body = append(body, ba.Substitute(b))
				}
				chosen = append(chosen, resolution{atom: a, rule: pr, body: body})
				res, done := try(i+1, rs2, fu)
				chosen = chosen[:len(chosen)-1]
				if done {
					success = res
					return false // stop enumeration: success
				}
				return true
			})
			if success != nil {
				return success, true
			}
		}
		return nil, false
	}
	return try(0, rs, nil)
}

// finish is reached when every atom of the component has a resolution: build
// S+, partition it, and recurse (steps 8–13).
func (pv *Prover) finish(s []datalog.Atom, rs map[string]datalog.Atom, chosen []resolution, stack map[string]bool) (map[string]*ProofNode, bool) {
	// S+ = union of the instantiated bodies, deduplicated.
	plus := make([]datalog.Atom, 0, 8)
	seen := make(map[string]bool)
	for _, c := range chosen {
		for _, b := range c.body {
			if !seen[b.Key()] {
				seen[b.Key()] = true
				plus = append(plus, b)
			}
		}
	}
	// N: nulls with a recorded invention atom. F: fresh nulls of S+ (not in
	// S) — their RS entries reset to ε (step 11–12). Entries for vanished
	// nulls are dropped by construction of the per-component RS below.
	inS := make(map[string]bool)
	for _, a := range s {
		for _, t := range a.Args {
			if t.IsNull() {
				inS[t.Name] = true
			}
		}
	}
	known := make(map[string]bool)
	for z := range rs {
		known[z] = true
	}
	comps := partitionAtoms(plus, known)
	allNodes := make(map[string]*ProofNode)
	for _, comp := range comps {
		compRS := make(map[string]datalog.Atom)
		for _, a := range comp {
			for _, t := range a.Args {
				if t.IsNull() && inS[t.Name] {
					if birth, ok := rs[t.Name]; ok {
						compRS[t.Name] = birth
					}
				}
			}
		}
		nodes, ok := pv.proveComponent(comp, compRS, stack)
		if !ok {
			return nil, false
		}
		for k, n := range nodes {
			allNodes[k] = n
		}
	}
	// Assemble the nodes for the atoms of S.
	out := make(map[string]*ProofNode, len(s))
	for _, c := range chosen {
		if c.rule == nil {
			out[c.atom.Key()] = &ProofNode{Atom: c.atom}
			continue
		}
		node := &ProofNode{Atom: c.atom, Rule: c.rule.label}
		for _, b := range c.body {
			child := allNodes[b.Key()]
			if child == nil {
				// The body atom must have been proven in some component.
				pv.err = fmt.Errorf("triq: internal: missing proof for body atom %v", b)
				return nil, false
			}
			node.Children = append(node.Children, child)
		}
		out[c.atom.Key()] = node
	}
	return out, true
}

// unifyHead computes h_{ρ,a} (the unique homomorphism head → a) and checks
// the compatibility condition ρ ◃ a, plus the chase-soundness prunes: a
// harmless head variable never binds a null, and the existential position
// must hold a null occurring exactly once in a.
func (pv *Prover) unifyHead(pr *proverRule, a datalog.Atom) (chase.Binding, bool) {
	head := pr.head
	if head.Pred != a.Pred || len(head.Args) != len(a.Args) {
		return nil, false
	}
	b := chase.Binding{}
	for i, t := range head.Args {
		v := a.Args[i]
		if i == pr.exPos {
			// Condition (ii) of ◃: the existential position must carry a
			// null with a single occurrence in a.
			if !v.IsNull() {
				return nil, false
			}
			occurrences := 0
			for _, u := range a.Args {
				if u == v {
					occurrences++
				}
			}
			if occurrences != 1 {
				return nil, false
			}
			continue
		}
		switch {
		case t.IsConst():
			if t != v {
				return nil, false
			}
		case t.IsVar():
			if v.IsNull() && pr.harmless[t] {
				// Harmless variables never hold nulls in any chase instance;
				// this resolution cannot correspond to a real derivation.
				return nil, false
			}
			if prev, ok := b[t]; ok {
				if prev != v {
					return nil, false
				}
			} else {
				b[t] = v
			}
		default:
			return nil, false
		}
	}
	return b, true
}

// enumAssignments enumerates the mapping µ of step 3/7c: every body variable
// not bound by the head unification takes a value from dom(D) ∪ B. Harmless
// variables range over constants only; harmful variables additionally range
// over the nulls of the component and over fresh nulls (with canonical
// restricted-growth sharing, so that identifications between fresh nulls are
// covered exactly once). The callback returns false to stop; enumAssignments
// reports whether enumeration ran to completion.
func (pv *Prover) enumAssignments(pr *proverRule, base chase.Binding, idx int, s []datalog.Atom, freshUsed []datalog.Term, yield func(chase.Binding, []datalog.Term) bool) bool {
	// A single expansion can enumerate a huge µ space; poll cancellation
	// here (counter-gated) so a canceled search stops within the expansion
	// instead of after it.
	if pv.tick++; pv.tick&63 == 0 && pv.interrupted() {
		return false
	}
	if idx == len(pr.unbound) {
		return yield(base, freshUsed)
	}
	v := pr.unbound[idx]
	try := func(val datalog.Term, fu []datalog.Term) bool {
		base[v] = val
		ok := pv.enumAssignments(pr, base, idx+1, s, fu, yield)
		delete(base, v)
		return ok
	}
	for _, c := range pv.domain {
		if !try(c, freshUsed) {
			return false
		}
	}
	if !pr.harmless[v] {
		// Existing nulls of the component.
		seen := map[string]bool{}
		for _, a := range s {
			for _, t := range a.Args {
				if t.IsNull() && !seen[t.Name] {
					seen[t.Name] = true
					if !try(t, freshUsed) {
						return false
					}
				}
			}
		}
		// Fresh nulls already allocated in this expansion round…
		for _, f := range freshUsed {
			if !seen[f.Name] {
				if !try(f, freshUsed) {
					return false
				}
			}
		}
		// …or one brand-new null (restricted growth: allocating more than
		// one new class at a time is covered by later variables).
		pv.fresh++
		f := datalog.N("f" + strconv.Itoa(pv.fresh))
		if !try(f, append(freshUsed, f)) {
			return false
		}
	}
	return true
}

// partitionAtoms groups atoms into the [N]-optimal partition: the connected
// components of the "shares a null outside N" relation (Section 6.3). Atoms
// without such nulls become singletons.
func partitionAtoms(atoms []datalog.Atom, known map[string]bool) [][]datalog.Atom {
	parent := make([]int, len(atoms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byNull := make(map[string]int)
	for i, a := range atoms {
		for _, t := range a.Args {
			if t.IsNull() && !known[t.Name] {
				if j, ok := byNull[t.Name]; ok {
					union(i, j)
				} else {
					byNull[t.Name] = i
				}
			}
		}
	}
	groups := make(map[int][]datalog.Atom)
	var order []int
	for i, a := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([][]datalog.Atom, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

func cloneRS(rs map[string]datalog.Atom) map[string]datalog.Atom {
	out := make(map[string]datalog.Atom, len(rs)+1)
	for k, v := range rs {
		out[k] = v
	}
	return out
}

// canonState renders (S, RS) with nulls renamed canonically so that
// isomorphic states share a memo entry. It also returns the renaming order:
// order[id] is the original name of the null with canonical id.
func canonState(s []datalog.Atom, rs map[string]datalog.Atom) (string, []string) {
	// Sort atoms by a null-invariant signature, breaking ties with concrete
	// names for determinism.
	type entry struct {
		sig  string
		atom datalog.Atom
	}
	entries := make([]entry, len(s))
	for i, a := range s {
		var sb strings.Builder
		sb.WriteString(a.Pred)
		for _, t := range a.Args {
			sb.WriteByte('|')
			if t.IsNull() {
				sb.WriteByte('*')
			} else {
				sb.WriteByte(byte('0' + t.Kind))
				sb.WriteString(t.Name)
			}
		}
		entries[i] = entry{sig: sb.String(), atom: a}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].sig != entries[j].sig {
			return entries[i].sig < entries[j].sig
		}
		return entries[i].atom.Compare(entries[j].atom) < 0
	})
	ids := make(map[string]int)
	var order []string
	id := func(name string) int {
		if n, ok := ids[name]; ok {
			return n
		}
		n := len(ids)
		ids[name] = n
		order = append(order, name)
		return n
	}
	var b strings.Builder
	writeAtom := func(a datalog.Atom) {
		b.WriteString(a.Pred)
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			if t.IsNull() {
				b.WriteString("#")
				b.WriteString(strconv.Itoa(id(t.Name)))
			} else {
				b.WriteByte(byte('0' + t.Kind))
				b.WriteString(t.Name)
			}
		}
		b.WriteByte(')')
	}
	for _, e := range entries {
		writeAtom(e.atom)
		b.WriteByte(';')
	}
	// RS entries in canonical-null order of their keys.
	type rsEntry struct {
		z     string
		birth datalog.Atom
	}
	var rsl []rsEntry
	for z, birth := range rs {
		if _, occurs := ids[z]; !occurs {
			// Entry for a null not in S: irrelevant, skip.
			continue
		}
		rsl = append(rsl, rsEntry{z, birth})
	}
	sort.Slice(rsl, func(i, j int) bool { return ids[rsl[i].z] < ids[rsl[j].z] })
	b.WriteByte('|')
	for _, e := range rsl {
		b.WriteString("#")
		b.WriteString(strconv.Itoa(ids[e.z]))
		b.WriteString("←")
		writeAtom(e.birth)
		b.WriteByte(';')
	}
	return b.String(), order
}

// DOT renders the proof tree in Graphviz DOT format.
func (n *ProofNode) DOT() string {
	var b strings.Builder
	b.WriteString("digraph proof {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	var rec func(node *ProofNode) int
	rec = func(node *ProofNode) int {
		me := id
		id++
		label := node.Atom.String()
		if node.Rule == "" {
			fmt.Fprintf(&b, "  n%d [label=%q, style=filled, fillcolor=lightgrey];\n", me, label)
		} else {
			fmt.Fprintf(&b, "  n%d [label=%q, tooltip=%q];\n", me, label, node.Rule)
		}
		for _, c := range node.Children {
			child := rec(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", me, child)
		}
		return me
	}
	rec(n)
	b.WriteString("}\n")
	return b.String()
}
