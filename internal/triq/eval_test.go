package triq

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
)

func TestLanguageStrings(t *testing.T) {
	for _, l := range []Language{TriQ10, TriQLite10, Unrestricted, Language(9)} {
		if l.String() == "" {
			t.Errorf("Language(%d).String empty", int(l))
		}
	}
}

func TestValidateLanguages(t *testing.T) {
	clique := datalog.MustParseQuery(`
		n(?X) -> exists ?Y ism(?Y, ?X).
		ism(?X, ?Y), n2(?W) -> exists ?U next(?X, ?W, ?U).
		next(?X, ?Y, ?Z), map2(?X, ?U) -> map2(?Z, ?U).
		map2(?X, ?U) -> out(?U).
	`, "out")
	// The map2-propagation joins the ward with next on the harmful ?X:
	// TriQ 1.0 yes, TriQ-Lite 1.0 no.
	if err := Validate(clique, TriQ10); err != nil {
		t.Errorf("should be TriQ 1.0: %v", err)
	}
	if err := Validate(clique, TriQLite10); err == nil {
		t.Error("should not be TriQ-Lite 1.0")
	}
	if err := Validate(clique, Unrestricted); err != nil {
		t.Errorf("unrestricted should accept: %v", err)
	}
}

func TestEvalTransportTriQLite(t *testing.T) {
	db := chase.NewInstance(
		atom("triple", "TheAirline", "partOf", "transportService"),
		atom("triple", "A311", "partOf", "TheAirline"),
		atom("triple", "Oxford", "A311", "London"),
		atom("triple", "BritishAirways", "partOf", "transportService"),
		atom("triple", "BA201", "partOf", "BritishAirways"),
		atom("triple", "London", "BA201", "Madrid"),
	)
	q := datalog.MustParseQuery(`
		triple(?X, partOf, transportService) -> ts(?X).
		triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
		ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
		ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
		conn(?X, ?Y) -> query(?X, ?Y).
	`, "query")
	res, err := Eval(db, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("Datalog program should evaluate exactly")
	}
	if len(res.Answers.Tuples) != 3 {
		t.Errorf("answers = %v", res.Answers.Tuples)
	}
	if !res.Answers.HasConstants("Oxford", "Madrid") {
		t.Error("Oxford→Madrid missing")
	}
}

func TestEvalWithConstraints(t *testing.T) {
	q := datalog.MustParseQuery(`
		type(?X, ?Y) -> out(?X).
		type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.
	`, "out")
	bad := chase.NewInstance(atom("type", "a", "C1"), atom("type", "a", "C2"), atom("disj", "C1", "C2"))
	res, err := Eval(bad, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers.Inconsistent {
		t.Error("Q(D) should be ⊤")
	}
	if len(res.Answers.Tuples) != 0 {
		t.Error("⊤ must carry no tuples")
	}
	good := chase.NewInstance(atom("type", "a", "C1"))
	res, err = Eval(good, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Inconsistent || len(res.Answers.Tuples) != 1 {
		t.Errorf("answers = %+v", res.Answers)
	}
}

func TestEvalInfiniteChaseWarded(t *testing.T) {
	// Warded program with an infinite chase: Eval must stabilize and agree
	// with the ProofTree certifier.
	db := chase.NewInstance(atom("e", "a", "b"), atom("g", "b"))
	prog := datalog.MustParse(`
		e(?X, ?Y) -> exists ?Z e(?Y, ?Z).
		e(?X, ?Y), g(?Y) -> reach(?X).
		reach(?X) -> out(?X).
	`)
	q := datalog.NewQuery(prog, "out")
	res, err := Eval(db, q, TriQLite10, Options{Chase: chase.Options{MaxDepth: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Log("note: chase reported exact (restricted-mode could terminate)")
	}
	if len(res.Answers.Tuples) != 1 || !res.Answers.HasConstants("a") {
		t.Errorf("answers = %v", res.Answers.Tuples)
	}
	pv, err := NewProver(db, prog, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pv.Proves(atom("out", "a"))
	if err != nil || !ok {
		t.Errorf("ProofTree disagrees: out(a) = %v, %v", ok, err)
	}
}

func TestEvalRejectsWrongDialect(t *testing.T) {
	q := datalog.MustParseQuery(`
		n(?X) -> exists ?Y s(?X, ?Y).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W) -> out(?X).
	`, "out")
	if _, err := Eval(chase.NewInstance(), q, TriQLite10, Options{}); err == nil {
		t.Error("non-warded query must be rejected under TriQ-Lite 1.0")
	}
	if _, err := Eval(chase.NewInstance(), q, TriQ10, Options{}); err != nil {
		t.Errorf("TriQ 1.0 should accept: %v", err)
	}
}

func TestEvalAnswersSorted(t *testing.T) {
	db := chase.NewInstance(atom("p", "c"), atom("p", "a"), atom("p", "b"))
	q := datalog.MustParseQuery(`p(?X) -> out(?X).`, "out")
	res, err := Eval(db, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers.Tuples) != 3 {
		t.Fatalf("answers = %v", res.Answers.Tuples)
	}
	for i, want := range []string{"a", "b", "c"} {
		if res.Answers.Tuples[i][0] != datalog.C(want) {
			t.Errorf("tuple %d = %v, want %s", i, res.Answers.Tuples[i], want)
		}
	}
}

func TestEvalStarAnswersAreNotInconsistency(t *testing.T) {
	// Legitimate answers containing ⋆ (as produced by the SPARQL
	// translation for unbound positions) must not be mistaken for ⊤.
	db := chase.NewInstance(atom("p", "a"))
	q := datalog.MustParseQuery(`p(?X) -> out(?X, ⋆).`, "out")
	res, err := Eval(db, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Inconsistent {
		t.Error("⋆-answers misread as ⊤")
	}
	if len(res.Answers.Tuples) != 1 || res.Answers.Tuples[0][1] != datalog.C(datalog.StarConstant) {
		t.Errorf("answers = %v", res.Answers.Tuples)
	}
}
