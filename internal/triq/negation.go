package triq

import (
	"context"
	"fmt"

	"repro/internal/chase"
	"repro/internal/datalog"
)

// This file implements Step 1 of the evaluation algorithm of Section 6.3:
// eliminating stratified *grounded* negation from a warded Datalog^{∃,¬sg}
// program by materializing complement relations. For each stratum i and each
// predicate s negated in it, the relation s̄ holds the complement of s with
// respect to the ground semantics Π⋆_{i-1}(D⋆_{i-1})↓ over the active
// domain; negative atoms ¬s(t) become positive atoms s̄(t). Because the
// negation is grounded, negated atoms only ever instantiate to constant
// tuples, so the complement construction is sound. The result (D+, Π+)
// satisfies Q(D) = Q+(D+) on the original schema.

// complementPred names the complement relation of a predicate.
func complementPred(pred string) string { return "not#" + pred }

// EliminateNegation computes (D+, Π+). The program must be stratified with
// grounded negation and free of constraints (apply the Π⊥ reduction first);
// the chase options bound the ground-semantics computations of the
// intermediate strata.
func EliminateNegation(db *chase.Instance, prog *datalog.Program, opts chase.Options) (*chase.Instance, *datalog.Program, error) {
	return EliminateNegationCtx(context.Background(), db, prog, opts)
}

// EliminateNegationCtx is EliminateNegation under a context: the
// intermediate ground-semantics chases honor cancellation, deadlines, and
// budgets. Complement materialization is NOT degradable — an incomplete
// reference instance would make complements unsound — so any limit abort is
// returned as an error.
func EliminateNegationCtx(ctx context.Context, db *chase.Instance, prog *datalog.Program, opts chase.Options) (*chase.Instance, *datalog.Program, error) {
	if len(prog.Constraints) > 0 {
		return nil, nil, fmt.Errorf("triq: EliminateNegation requires a constraint-free program")
	}
	if err := datalog.CheckGroundedNegation(prog); err != nil {
		return nil, nil, err
	}
	work := datalog.SingleHead(prog)
	strat, err := datalog.Stratify(work)
	if err != nil {
		return nil, nil, err
	}
	strata, err := strat.Strata(work)
	if err != nil {
		return nil, nil, err
	}
	sch, err := work.Schema()
	if err != nil {
		return nil, nil, err
	}
	dbPlus := db.Clone()
	progPlus := &datalog.Program{}
	// The active domain for complements: constants of D and of Π.
	domSet := make(map[datalog.Term]bool)
	for _, c := range db.Constants() {
		domSet[c] = true
	}
	for _, r := range work.Rules {
		for _, a := range append(r.Body(), r.Head...) {
			for _, t := range a.Args {
				if t.IsConst() {
					domSet[t] = true
				}
			}
		}
	}
	var dom []datalog.Term
	for t := range domSet {
		dom = append(dom, t)
	}

	for i, rules := range strata {
		if i > 0 {
			// Materialize complements for the predicates negated in this
			// stratum, against the ground semantics of the accumulated
			// positive program.
			negPreds := make(map[string]bool)
			for _, r := range rules {
				for _, a := range r.BodyNeg {
					negPreds[a.Pred] = true
				}
			}
			if len(negPreds) > 0 {
				gr, err := chase.StableGroundCtx(ctx, dbPlus, progPlus, opts, 0)
				if err != nil {
					return nil, nil, err
				}
				if gr.Inconsistent {
					return nil, nil, fmt.Errorf("triq: unexpected ⊤ during negation elimination")
				}
				for pred := range negPreds {
					if err := addComplement(dbPlus, gr.Ground, pred, sch[pred], dom); err != nil {
						return nil, nil, err
					}
				}
			}
		} else {
			// Predicates negated in stratum 0 are purely extensional.
			negPreds := make(map[string]bool)
			for _, r := range rules {
				for _, a := range r.BodyNeg {
					negPreds[a.Pred] = true
				}
			}
			for pred := range negPreds {
				if err := addComplement(dbPlus, dbPlus, pred, sch[pred], dom); err != nil {
					return nil, nil, err
				}
			}
		}
		for _, r := range rules {
			progPlus.Add(positivize(r))
		}
	}
	return dbPlus, progPlus, nil
}

func positivize(r datalog.Rule) datalog.Rule {
	out := datalog.Rule{
		BodyPos: append([]datalog.Atom(nil), r.BodyPos...),
		Head:    r.Head,
	}
	for _, a := range r.BodyNeg {
		out.BodyPos = append(out.BodyPos, datalog.Atom{Pred: complementPred(a.Pred), Args: a.Args})
	}
	return out
}

// addComplement inserts s̄(t) for every constant tuple t over the domain
// with s(t) absent from the reference instance.
func addComplement(dbPlus, ref *chase.Instance, pred string, arity int, dom []datalog.Term) error {
	if arity > 4 && len(dom) > 32 {
		return fmt.Errorf("triq: complement of %s would need |dom|^%d = %d^%d facts", pred, arity, len(dom), arity)
	}
	tuple := make([]datalog.Term, arity)
	var rec func(k int)
	rec = func(k int) {
		if k == arity {
			a := datalog.Atom{Pred: pred, Args: append([]datalog.Term(nil), tuple...)}
			if !ref.Has(a) {
				dbPlus.Add(datalog.Atom{Pred: complementPred(pred), Args: a.Args})
			}
			return
		}
		for _, c := range dom {
			tuple[k] = c
			rec(k + 1)
		}
	}
	rec(0)
	return nil
}

// NewProverWithNegation eliminates grounded negation per Step 1 and builds a
// ProofTree prover for the resulting positive warded program, extending the
// Section 6.3 decision procedure to full TriQ-Lite 1.0 rule sets (without
// constraints).
func NewProverWithNegation(db *chase.Instance, prog *datalog.Program, chaseOpts chase.Options, opts ProofOptions) (*Prover, error) {
	if !prog.HasNegation() {
		return NewProver(db, prog, opts)
	}
	dbPlus, progPlus, err := EliminateNegation(db, prog, chaseOpts)
	if err != nil {
		return nil, err
	}
	return NewProver(dbPlus, progPlus, opts)
}
