package triq

import (
	"bytes"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/obs"
)

// figure1DB/figure1Prog are the Example 6.10 instance and program (Figure 1).
func figure1DB() *chase.Instance {
	return chase.NewInstance(
		datalog.MustParseAtom("s(a, a, a)"),
		datalog.MustParseAtom("t(a)"),
	)
}

func figure1Prog() *datalog.Program {
	return datalog.MustParse(`
		s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).
		s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
		t(?X) -> exists ?Z p(?X, ?Z).
		p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
		r(?X, ?Y, ?Z) -> p(?X, ?Z).
	`)
}

// TestProverMemoMetrics exercises memoization through the observability
// counters: re-proving an already-memoized goal must register memo hits and
// zero new expansions.
func TestProverMemoMetrics(t *testing.T) {
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	pv, err := NewProver(figure1DB(), figure1Prog(), ProofOptions{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	goal := datalog.MustParseAtom("p(a, a)")
	ok, err := pv.Proves(goal)
	if err != nil || !ok {
		t.Fatalf("p(a,a) should be provable: ok=%v err=%v", ok, err)
	}
	first := pv.Metrics()
	if first.Expansions == 0 || first.Resolutions == 0 || first.MemoMisses == 0 {
		t.Errorf("first proof recorded no search work: %+v", first)
	}
	if first.MaxRecursionDepth == 0 {
		t.Errorf("first proof recorded no recursion depth: %+v", first)
	}
	if first.CanonTime == 0 {
		t.Errorf("canonicalization time not collected with Obs set: %+v", first)
	}

	ok, err = pv.Proves(goal)
	if err != nil || !ok {
		t.Fatalf("re-prove failed: ok=%v err=%v", ok, err)
	}
	second := pv.Metrics()
	if hits := second.MemoHits - first.MemoHits; hits == 0 {
		t.Errorf("re-proving a memoized goal registered no memo hits: first=%+v second=%+v", first, second)
	}
	if exp := second.Expansions - first.Expansions; exp != 0 {
		t.Errorf("re-proving a memoized goal expanded %d new components, want 0", exp)
	}

	// The trace carries one prover.prove span per Prove call with the visit
	// budget attached.
	if err := o.SinkErr(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	proveSpans := 0
	for _, r := range recs {
		if r["name"] == "prover.prove" {
			proveSpans++
			attrs, _ := r["attrs"].(map[string]any)
			if _, ok := attrs["visit_budget"]; !ok {
				t.Errorf("prover.prove span missing visit_budget attr: %v", r)
			}
			if _, ok := attrs["memo_hits"]; !ok {
				t.Errorf("prover.prove span missing memo_hits attr: %v", r)
			}
		}
	}
	if proveSpans != 2 {
		t.Errorf("want 2 prover.prove spans, got %d", proveSpans)
	}
	if got := o.Registry().Counter("prover.proofs"); got != 2 {
		t.Errorf("prover.proofs counter = %d, want 2", got)
	}
}

// TestProverMetricsReflectOptions: ProofOptions limits must show up in the
// metrics snapshot.
func TestProverMetricsReflectOptions(t *testing.T) {
	pv, err := NewProver(figure1DB(), figure1Prog(), ProofOptions{MaxVisits: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if got := pv.Metrics().VisitBudget; got != 1234 {
		t.Errorf("VisitBudget = %d, want 1234", got)
	}
	// Without Obs, canonicalization timing stays off (zero-overhead path) but
	// counters still accumulate.
	if _, err := pv.Proves(datalog.MustParseAtom("p(a, a)")); err != nil {
		t.Fatal(err)
	}
	m := pv.Metrics()
	if m.CanonTime != 0 {
		t.Errorf("CanonTime collected without Obs: %v", m.CanonTime)
	}
	if m.Expansions == 0 || m.Components == 0 {
		t.Errorf("counters not collected without Obs: %+v", m)
	}
}

// TestEvalTrace: Eval with an Obs handle emits the triq.eval root span over
// the chase spans.
func TestEvalTrace(t *testing.T) {
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	db := chase.NewInstance(
		datalog.MustParseAtom("e(a, b)"),
		datalog.MustParseAtom("e(b, c)"),
	)
	prog := datalog.MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
		tc(?X, ?Y) -> query(?X, ?Y).
	`)
	res, err := Eval(db, datalog.NewQuery(prog, "query"), TriQLite10, Options{
		Chase: chase.Options{Obs: o},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers.Tuples) != 3 {
		t.Fatalf("want 3 answers, got %d", len(res.Answers.Tuples))
	}
	recs, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, k := range obs.TraceKinds(recs) {
		kinds[k] = true
	}
	for _, k := range []string{"triq.eval", "chase.deepen", "chase.run", "chase.round", "chase.rule"} {
		if !kinds[k] {
			t.Errorf("trace missing span kind %q (got %v)", k, obs.TraceKinds(recs))
		}
	}
	// Per-rule stats surfaced through the Result.
	if len(res.Stats.PerRule) == 0 {
		t.Error("Eval result carries no per-rule stats")
	}
}
