package triq

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
)

// example610 is the warded program of Example 6.10 / Figure 1.
const example610Src = `
	s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).
	s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
	t(?X) -> exists ?Z p(?X, ?Z).
	p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
	r(?X, ?Y, ?Z) -> p(?X, ?Z).
`

func atom(pred string, names ...string) datalog.Atom {
	args := make([]datalog.Term, len(names))
	for i, n := range names {
		args[i] = datalog.C(n)
	}
	return datalog.NewAtom(pred, args...)
}

func TestProofTreeFigure1(t *testing.T) {
	// Figure 1: p(a,a) has a proof-tree w.r.t. D = {s(a,a,a), t(a)} and the
	// program of Example 6.10.
	db := chase.NewInstance(atom("s", "a", "a", "a"), atom("t", "a"))
	pv, err := NewProver(db, datalog.MustParse(example610Src), ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	node, ok, err := pv.Prove(atom("p", "a", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("p(a,a) should be provable (Figure 1)")
	}
	if node == nil || node.Size() < 3 {
		t.Errorf("proof tree too small: %v", node)
	}
	rendered := node.Render()
	if !strings.Contains(rendered, "p(a, a)") {
		t.Errorf("rendered tree missing root:\n%s", rendered)
	}
	// q(a,a) is derivable directly from s(a,a,a) twice.
	if ok, err := pv.Proves(atom("q", "a", "a")); err != nil || !ok {
		t.Errorf("q(a,a) should be provable: %v %v", ok, err)
	}
}

func TestProofTreeNegativeGoal(t *testing.T) {
	// Without t(a), p(a,a) is not derivable.
	db := chase.NewInstance(atom("s", "a", "a", "a"))
	pv, err := NewProver(db, datalog.MustParse(example610Src), ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := pv.Proves(atom("p", "a", "a")); err != nil || ok {
		t.Errorf("p(a,a) should not be provable, got %v %v", ok, err)
	}
	// q(a,a) still is.
	if ok, _ := pv.Proves(atom("q", "a", "a")); !ok {
		t.Error("q(a,a) should still be provable")
	}
}

func TestProofTreeInfiniteChaseTerminates(t *testing.T) {
	// The chase of this warded program is infinite, yet every ground goal is
	// decided finitely.
	db := chase.NewInstance(atom("e", "a", "b"), atom("g", "b"))
	prog := datalog.MustParse(`
		e(?X, ?Y) -> exists ?Z e(?Y, ?Z).
		e(?X, ?Y), g(?Y) -> out(?X).
	`)
	pv, err := NewProver(db, prog, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := pv.Proves(atom("out", "a")); err != nil || !ok {
		t.Errorf("out(a) should be provable: %v %v", ok, err)
	}
	if ok, err := pv.Proves(atom("out", "b")); err != nil || ok {
		t.Errorf("out(b) should NOT be provable: %v %v", ok, err)
	}
	if ok, _ := pv.Proves(atom("e", "a", "b")); !ok {
		t.Error("database fact should be provable")
	}
	if ok, _ := pv.Proves(atom("e", "b", "a")); ok {
		t.Error("e(b,a) should not be provable")
	}
}

func TestProofTreeDatalogCycles(t *testing.T) {
	// Mutual recursion without base case must fail finitely; with a base
	// case it succeeds.
	prog := datalog.MustParse(`
		q(?X) -> p(?X).
		p(?X) -> q(?X).
		r(?X) -> p(?X).
	`)
	db := chase.NewInstance(atom("seed", "a"))
	pv, err := NewProver(db, prog, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := pv.Proves(atom("p", "a")); ok {
		t.Error("p(a) should not be provable without a base fact")
	}
	db2 := chase.NewInstance(atom("r", "a"))
	pv2, _ := NewProver(db2, prog, ProofOptions{})
	if ok, _ := pv2.Proves(atom("q", "a")); !ok {
		t.Error("q(a) should be provable via r(a) → p(a) → q(a)")
	}
}

func TestProverRejectsBadPrograms(t *testing.T) {
	db := chase.NewInstance()
	if _, err := NewProver(db, datalog.MustParse(`a(?X), not b(?X) -> c(?X).`), ProofOptions{}); err == nil {
		t.Error("negation must be rejected")
	}
	if _, err := NewProver(db, datalog.MustParse(`a(?X), a(?Y) -> false.`), ProofOptions{}); err == nil {
		t.Error("constraints must be rejected")
	}
	unwarded := datalog.MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W) -> h(?X).
	`)
	if _, err := NewProver(db, unwarded, ProofOptions{}); err == nil {
		t.Error("unwarded program must be rejected")
	}
}

func TestProveRejectsNonGroundGoal(t *testing.T) {
	db := chase.NewInstance(atom("a", "c"))
	pv, err := NewProver(db, datalog.MustParse(`a(?X) -> b(?X).`), ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pv.Proves(datalog.NewAtom("b", datalog.V("X"))); err == nil {
		t.Error("variable goal must be rejected")
	}
	if _, err := pv.Proves(datalog.NewAtom("b", datalog.N("z"))); err == nil {
		t.Error("null goal must be rejected")
	}
}

// crossValidate checks that ProofTree and the bottom-up stable-ground chase
// agree on every candidate ground atom of the program's schema over the
// database's constants.
func crossValidate(t *testing.T, name string, db *chase.Instance, prog *datalog.Program) {
	t.Helper()
	gr, err := chase.StableGround(db, prog, chase.Options{MaxDepth: 24}, 2)
	if err != nil {
		t.Fatalf("%s: chase: %v", name, err)
	}
	pv, err := NewProver(db, prog, ProofOptions{})
	if err != nil {
		t.Fatalf("%s: prover: %v", name, err)
	}
	sch, err := prog.Schema()
	if err != nil {
		t.Fatal(err)
	}
	consts := db.Constants()
	for _, a := range prog.Rules {
		_ = a
	}
	var tuples func(arity int) [][]datalog.Term
	tuples = func(arity int) [][]datalog.Term {
		if arity == 0 {
			return [][]datalog.Term{{}}
		}
		var out [][]datalog.Term
		for _, rest := range tuples(arity - 1) {
			for _, c := range consts {
				out = append(out, append(append([]datalog.Term{}, rest...), c))
			}
		}
		return out
	}
	for pred, arity := range sch {
		for _, tup := range tuples(arity) {
			goal := datalog.Atom{Pred: pred, Args: tup}
			want := gr.Ground.Has(goal)
			got, err := pv.Proves(goal)
			if err != nil {
				t.Fatalf("%s: prove %v: %v", name, goal, err)
			}
			if got != want {
				t.Errorf("%s: %v: prooftree=%v chase=%v", name, goal, got, want)
			}
		}
	}
}

func TestProofTreeAgreesWithChase(t *testing.T) {
	cases := []struct {
		name string
		db   *chase.Instance
		src  string
	}{
		{
			"example 6.10",
			chase.NewInstance(atom("s", "a", "a", "a"), atom("t", "a")),
			example610Src,
		},
		{
			"example 6.10 richer db",
			chase.NewInstance(atom("s", "a", "b", "a"), atom("s", "b", "a", "b"), atom("t", "b")),
			example610Src,
		},
		{
			"infinite chain with join-back",
			chase.NewInstance(atom("e", "a", "b"), atom("g", "b"), atom("g", "a")),
			`
				e(?X, ?Y) -> exists ?Z e(?Y, ?Z).
				e(?X, ?Y), g(?Y) -> out(?X).
			`,
		},
		{
			"existential transitive closure",
			chase.NewInstance(atom("a", "x"), atom("e", "x", "y"), atom("e", "y", "x")),
			`
				a(?X) -> exists ?Z e(?X, ?Z).
				e(?X, ?Y), e(?Y, ?Z) -> e(?X, ?Z).
			`,
		},
		{
			"plain datalog transitive closure",
			chase.NewInstance(atom("e", "a", "b"), atom("e", "b", "c")),
			`
				e(?X, ?Y) -> tc(?X, ?Y).
				e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
			`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crossValidate(t, tc.name, tc.db, datalog.MustParse(tc.src))
		})
	}
}

func TestProofTreeVisitBudget(t *testing.T) {
	db := chase.NewInstance(atom("e", "a", "b"), atom("g", "b"))
	prog := datalog.MustParse(`
		e(?X, ?Y) -> exists ?Z e(?Y, ?Z).
		e(?X, ?Y), g(?Y) -> out(?X).
	`)
	pv, err := NewProver(db, prog, ProofOptions{MaxVisits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pv.Proves(atom("out", "a")); err == nil {
		t.Error("tiny budget should produce an error")
	}
}

func TestProofNodeRenderShape(t *testing.T) {
	n := &ProofNode{
		Atom: atom("p", "a"),
		Rule: "ρ1",
		Children: []*ProofNode{
			{Atom: atom("q", "a")},
			{Atom: atom("r", "a"), Rule: "ρ2", Children: []*ProofNode{{Atom: atom("s", "a")}}},
		},
	}
	out := n.Render()
	for _, want := range []string{"p(a)", "├─ q(a)", "└─ r(a)", "   └─ s(a)", "[db]", "[ρ1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if n.Size() != 4 {
		t.Errorf("Size = %d", n.Size())
	}
}
