// EXPLAIN: per-query structured telemetry. Explain/ExplainCtx evaluate a
// query exactly like Eval/EvalCtx but under a private observability registry,
// then distill the run into an ExplainReport: per-rule chase stats with
// provenance (which SPARQL operator or ontology emitted each rule), the
// per-worker shard balance of the parallel enumeration phase, prover memo
// behavior when the exact procedure ran, and wall-time percentiles per
// pipeline stage. The report answers "why was this query slow" from one run,
// without rerunning under -trace.
package triq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"context"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
)

// RuleExplain is one rule's share of the chase work.
type RuleExplain struct {
	// Index is the rule's position in stratum evaluation order.
	Index int `json:"index"`
	// Rule is the rule's source rendering.
	Rule string `json:"rule"`
	// Origin is the rule's provenance: for translated SPARQL queries the
	// operator that emitted it (BGP, AND, UNION, OPT, FILTER, SELECT,
	// τ_out, EQ, ontology); empty for hand-written rules.
	Origin            string `json:"origin,omitempty"`
	TriggersAttempted int    `json:"triggers_attempted"`
	TriggersFired     int    `json:"triggers_fired"`
	FactsDerived      int    `json:"facts_derived"`
	NullsInvented     int    `json:"nulls_invented"`
	TimeUS            int64  `json:"time_us"`
}

// WorkerExplain is one enumeration worker's share of the parallel phase.
type WorkerExplain struct {
	Worker   int   `json:"worker"`
	Shards   int64 `json:"shards"`
	Triggers int64 `json:"triggers"`
}

// StageExplain summarizes one pipeline stage's wall-clock span histogram
// (all values in microseconds).
type StageExplain struct {
	// Stage is the span name (e.g. "chase.round", "translate.compile").
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalUS float64 `json:"total_us"`
	P50US   float64 `json:"p50_us"`
	P95US   float64 `json:"p95_us"`
	P99US   float64 `json:"p99_us"`
	MaxUS   float64 `json:"max_us"`
}

// ProverExplain reports the ProofTree search-space metrics of an exact run.
type ProverExplain struct {
	Proofs      int64 `json:"proofs"`
	Components  int64 `json:"components"`
	Expansions  int64 `json:"expansions"`
	MemoHits    int64 `json:"memo_hits"`
	MemoMisses  int64 `json:"memo_misses"`
	Resolutions int64 `json:"resolutions"`
}

// ExplainReport is the structured result of an explained evaluation.
type ExplainReport struct {
	// Kind names the evaluation path: "triq", "triq-exact", or "sparql".
	Kind string `json:"kind"`
	// Language is the dialect the query was validated against (TriQ paths).
	Language string `json:"language,omitempty"`
	// Regime is the SPARQL entailment regime (SPARQL path only).
	Regime string `json:"regime,omitempty"`

	// Path reports how the answer was produced: "materialized" (warm
	// materialization hit), "materialized-build", or "chase".
	Path string `json:"path,omitempty"`

	Answers      int                `json:"answers"`
	Inconsistent bool               `json:"inconsistent,omitempty"`
	Exact        bool               `json:"exact"`
	Incomplete   bool               `json:"incomplete,omitempty"`
	Truncation   *limits.Truncation `json:"truncation,omitempty"`

	Depth         int `json:"depth"`
	Rounds        int `json:"rounds"`
	Parallelism   int `json:"parallelism"`
	TriggersFired int `json:"triggers_fired"`
	FactsDerived  int `json:"facts_derived"`
	NullsInvented int `json:"nulls_invented"`

	// Rules is the per-rule chase breakdown, sorted by cumulative time
	// (slowest first). Trigger/fact totals equal the run's chase.Stats.
	Rules []RuleExplain `json:"rules"`
	// Workers is the shard balance of the parallel enumeration phase; empty
	// for sequential runs.
	Workers []WorkerExplain `json:"workers,omitempty"`
	// Stages summarizes every span histogram the run produced.
	Stages []StageExplain `json:"stages,omitempty"`
	// Prover is set when the exact (ProofTree) procedure ran.
	Prover *ProverExplain `json:"prover,omitempty"`

	// TotalUS is the wall-clock time of the whole explained evaluation.
	TotalUS int64 `json:"total_us"`

	// Resources is the request's resource account when the evaluation ran
	// under a traced request (internal/serve fills it); nil otherwise. Its
	// chase counters mirror the final evaluation's chase.Stats exactly.
	Resources *obs.Account `json:"resources,omitempty"`
}

// Explain is Eval with a report: the query is evaluated under a private
// metrics registry and the run is distilled into an ExplainReport. Answers
// are identical to Eval's.
func Explain(db *chase.Instance, q datalog.Query, lang Language, opts Options) (*Result, *ExplainReport, error) {
	return ExplainCtx(context.Background(), db, q, lang, opts)
}

// ExplainCtx is Explain under a context. The evaluation runs with a fresh
// private *obs.Obs in place of opts.Chase.Obs (so stage times and worker
// counters are this query's alone); if the caller had an Obs attached, the
// private registry is folded back into it afterwards, so long-lived metrics
// (triqd's /metrics) still see the run. Span JSONL sinks are not forwarded.
func ExplainCtx(ctx context.Context, db *chase.Instance, q datalog.Query, lang Language, opts Options) (*Result, *ExplainReport, error) {
	priv, orig := obs.New(), opts.Chase.Obs
	opts.Chase.Obs = priv
	start := time.Now()
	res, err := EvalCtx(ctx, db, q, lang, opts)
	elapsed := time.Since(start)
	if orig != nil {
		orig.Registry().MergeFrom(priv.Registry())
	}
	if err != nil {
		return res, nil, err
	}
	rep := BuildExplain(res, priv.Registry(), elapsed)
	rep.Kind = "triq"
	rep.Language = lang.String()
	return res, rep, nil
}

// ExplainExactCtx is ExplainCtx over the exact ProofTree procedure
// (EvalExactCtx); the report carries the prover's memo metrics.
func ExplainExactCtx(ctx context.Context, db *chase.Instance, q datalog.Query, opts Options) (*Result, *ExplainReport, error) {
	priv, orig := obs.New(), opts.Chase.Obs
	opts.Chase.Obs = priv
	start := time.Now()
	res, err := EvalExactCtx(ctx, db, q, opts)
	elapsed := time.Since(start)
	if orig != nil {
		orig.Registry().MergeFrom(priv.Registry())
	}
	if err != nil {
		return res, nil, err
	}
	rep := BuildExplain(res, priv.Registry(), elapsed)
	rep.Kind = "triq-exact"
	rep.Language = TriQLite10.String()
	return res, rep, nil
}

// BuildExplain distills an evaluation result plus the private registry it
// ran under into a report. Exposed so the facade can assemble the SPARQL
// variant (which adds translation spans and regime info) without this
// package importing the translator.
func BuildExplain(res *Result, reg *obs.Registry, elapsed time.Duration) *ExplainReport {
	rep := &ExplainReport{
		Path:       res.Path,
		Exact:      res.Exact,
		Incomplete: res.Incomplete,
		Truncation: res.Truncation,
		Depth:      res.Depth,
		TotalUS:    elapsed.Microseconds(),
	}
	if res.Answers != nil {
		rep.Answers = len(res.Answers.Tuples)
		rep.Inconsistent = res.Answers.Inconsistent
	}
	st := res.Stats
	rep.Rounds = st.Rounds
	rep.Parallelism = st.Parallelism
	rep.TriggersFired = st.TriggersFired
	rep.FactsDerived = st.FactsDerived
	rep.NullsInvented = st.NullsInvented
	for _, rs := range st.PerRule {
		rep.Rules = append(rep.Rules, RuleExplain{
			Index:             rs.Index,
			Rule:              rs.Rule,
			Origin:            rs.Origin,
			TriggersAttempted: rs.TriggersAttempted,
			TriggersFired:     rs.TriggersFired,
			FactsDerived:      rs.FactsDerived,
			NullsInvented:     rs.NullsInvented,
			TimeUS:            rs.Time.Microseconds(),
		})
	}
	sort.SliceStable(rep.Rules, func(i, j int) bool {
		return rep.Rules[i].TimeUS > rep.Rules[j].TimeUS
	})

	snap := reg.Snapshot()
	workers := map[int]*WorkerExplain{}
	for name, v := range snap.Counters {
		base, id, ok := splitWorkerCounter(name)
		if !ok {
			continue
		}
		w := workers[id]
		if w == nil {
			w = &WorkerExplain{Worker: id}
			workers[id] = w
		}
		switch base {
		case "chase.worker.shards":
			w.Shards += v
		case "chase.worker.triggers":
			w.Triggers += v
		}
	}
	for _, w := range workers {
		rep.Workers = append(rep.Workers, *w)
	}
	sort.Slice(rep.Workers, func(i, j int) bool {
		return rep.Workers[i].Worker < rep.Workers[j].Worker
	})

	for name, h := range snap.Hists {
		if !strings.HasPrefix(name, "span.") {
			continue
		}
		rep.Stages = append(rep.Stages, StageExplain{
			Stage:   strings.TrimPrefix(name, "span."),
			Count:   h.Count,
			TotalUS: h.Sum,
			P50US:   h.P50,
			P95US:   h.P95,
			P99US:   h.P99,
			MaxUS:   h.Max,
		})
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		return rep.Stages[i].TotalUS > rep.Stages[j].TotalUS
	})

	if snap.Counters["prover.proofs"] > 0 || snap.Counters["prover.expansions"] > 0 {
		rep.Prover = &ProverExplain{
			Proofs:      snap.Counters["prover.proofs"],
			Components:  snap.Counters["prover.components"],
			Expansions:  snap.Counters["prover.expansions"],
			MemoHits:    snap.Counters["prover.memo_hits"],
			MemoMisses:  snap.Counters["prover.memo_misses"],
			Resolutions: snap.Counters["prover.resolutions"],
		}
	}
	return rep
}

// splitWorkerCounter recognizes the "<base>.wN" per-worker counter shape.
func splitWorkerCounter(name string) (base string, worker int, ok bool) {
	i := strings.LastIndex(name, ".w")
	if i < 0 {
		return "", 0, false
	}
	base = name[:i]
	if base != "chase.worker.shards" && base != "chase.worker.triggers" {
		return "", 0, false
	}
	n, err := strconv.Atoi(name[i+2:])
	if err != nil {
		return "", 0, false
	}
	return base, n, true
}

// String renders the report as the human-readable block printed by
// `triq -explain`.
func (r *ExplainReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN %s", r.Kind)
	if r.Language != "" {
		fmt.Fprintf(&b, " (%s)", r.Language)
	}
	if r.Regime != "" {
		fmt.Fprintf(&b, " regime=%s", r.Regime)
	}
	fmt.Fprintf(&b, "  total=%s", obs.FormatDuration(time.Duration(r.TotalUS)*time.Microsecond))
	if r.Path != "" {
		fmt.Fprintf(&b, "  path=%s", r.Path)
	}
	b.WriteByte('\n')
	switch {
	case r.Inconsistent:
		b.WriteString("result: ⊤ (inconsistent)\n")
	default:
		fmt.Fprintf(&b, "result: %d answers, exact=%v", r.Answers, r.Exact)
		if r.Incomplete {
			b.WriteString(", INCOMPLETE")
			if r.Truncation != nil {
				fmt.Fprintf(&b, " (%s budget)", r.Truncation.Limit)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "chase: %d rounds at depth %d, %d triggers fired, %d facts, %d nulls, parallelism %d\n",
		r.Rounds, r.Depth, r.TriggersFired, r.FactsDerived, r.NullsInvented, r.Parallelism)
	if len(r.Rules) > 0 {
		fmt.Fprintf(&b, "%-5s %-9s %9s %9s %9s %7s %10s  %s\n",
			"rule", "origin", "attempted", "fired", "facts", "nulls", "time", "definition")
		for _, ru := range r.Rules {
			def := ru.Rule
			if len([]rune(def)) > 48 {
				def = string([]rune(def)[:45]) + "..."
			}
			origin := ru.Origin
			if origin == "" {
				origin = "-"
			}
			fmt.Fprintf(&b, "#%-4d %-9s %9d %9d %9d %7d %10s  %s\n",
				ru.Index, origin, ru.TriggersAttempted, ru.TriggersFired,
				ru.FactsDerived, ru.NullsInvented,
				obs.FormatDuration(time.Duration(ru.TimeUS)*time.Microsecond), def)
		}
	}
	if len(r.Workers) > 0 {
		b.WriteString("workers:")
		for _, w := range r.Workers {
			fmt.Fprintf(&b, " w%d=%d shards/%d triggers", w.Worker, w.Shards, w.Triggers)
		}
		b.WriteByte('\n')
	}
	if r.Prover != nil {
		fmt.Fprintf(&b, "prover: %d proofs, %d components, %d expansions, memo %d hits / %d misses, %d resolutions\n",
			r.Prover.Proofs, r.Prover.Components, r.Prover.Expansions,
			r.Prover.MemoHits, r.Prover.MemoMisses, r.Prover.Resolutions)
	}
	if len(r.Stages) > 0 {
		fmt.Fprintf(&b, "%-20s %7s %12s %10s %10s %10s\n",
			"stage", "count", "total", "p50", "p95", "max")
		us := func(v float64) string {
			return obs.FormatDuration(time.Duration(v) * time.Microsecond)
		}
		for _, s := range r.Stages {
			fmt.Fprintf(&b, "%-20s %7d %12s %10s %10s %10s\n",
				s.Stage, s.Count, us(s.TotalUS), us(s.P50US), us(s.P95US), us(s.MaxUS))
		}
	}
	return b.String()
}
