// Package triq implements the paper's two query languages — TriQ 1.0
// (weakly-frontier-guarded Datalog^{∃,¬s,⊥}, Definition 4.2) and
// TriQ-Lite 1.0 (warded Datalog^{∃,¬sg,⊥}, Definition 6.1) — together with
// their evaluation: the Π⊥ constraint reduction of Theorem 4.4, bottom-up
// evaluation through the chase with ground-stabilized iterative deepening,
// and the top-down ProofTree decision procedure of Section 6.3 with
// proof-tree extraction (Definition 6.11, Figure 1).
package triq

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
)

// Language selects which of the paper's languages a query must belong to.
type Language int

const (
	// TriQ10 is TriQ 1.0: weakly-frontier-guarded Datalog^{∃,¬s,⊥}.
	// Eval is ExpTime-complete in data complexity (Theorem 4.4).
	TriQ10 Language = iota
	// TriQLite10 is TriQ-Lite 1.0: warded Datalog^{∃,¬sg,⊥}.
	// Eval is PTime-complete in data complexity (Theorem 6.7).
	TriQLite10
	// Unrestricted skips the dialect check (plain Datalog^{∃,¬s,⊥}; Eval is
	// undecidable in general, so evaluation is necessarily bounded).
	Unrestricted
)

func (l Language) String() string {
	switch l {
	case TriQ10:
		return "TriQ 1.0"
	case TriQLite10:
		return "TriQ-Lite 1.0"
	case Unrestricted:
		return "Datalog[∃,¬s,⊥]"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// dialect maps a language to its syntactic check.
func (l Language) dialect() datalog.Dialect {
	switch l {
	case TriQ10:
		return datalog.WeaklyFrontierGuarded
	case TriQLite10:
		return datalog.TriQLite
	default:
		return datalog.AnyDialect
	}
}

// Validate checks that the query program belongs to the language.
func Validate(q datalog.Query, lang Language) error {
	if err := q.Validate(); err != nil {
		return err
	}
	return datalog.CheckDialect(q.Program, lang.dialect())
}

// Options configure evaluation.
type Options struct {
	// Chase bounds the underlying chase engine.
	Chase chase.Options
	// StabilityWindow is the number of consecutive depth increments with an
	// unchanged ground part required to declare the ground semantics stable
	// (see chase.StableGround); 0 selects the default of 2.
	StabilityWindow int
	// MaxVisits caps the proof-search component expansions of the exact
	// procedure (EvalExact); 0 selects the ProofOptions default. Ignored by
	// the bottom-up evaluator.
	MaxVisits int
	// Mat, when non-nil, lets evaluation answer from an incrementally
	// maintained materialization instead of chasing, provided Mat holds (or
	// can build) an instance for this program at exactly MatEpoch. On any
	// miss evaluation falls back to the from-scratch chase; Result.Path
	// reports which way the answer was produced.
	Mat Materializer
	// MatEpoch is the store epoch the query is pinned to; a materialization
	// serves only on an exact epoch match.
	MatEpoch uint64
}

// Result is the outcome of evaluating a TriQ query.
type Result struct {
	// Answers is Q(D): ⊤ (Inconsistent) or the set of constant tuples.
	Answers *chase.Answers
	// Exact reports whether the chase terminated within its depth bound, so
	// the answer set is provably complete. When false the answers are the
	// stable fixpoint of iterative deepening (exact for warded programs; see
	// chase.StableGround).
	Exact bool
	// Incomplete is true when a resource budget (facts, rounds, or visits)
	// tripped and the answers are the sound partial set computed before the
	// abort rather than all of Q(D). The chase is monotone, so for positive
	// programs every tuple reported is a certain answer; with stratified
	// negation tuples that depend on a negated atom of a truncated stratum
	// may be unsound and Incomplete should be treated as "approximate".
	Incomplete bool
	// Truncation reports which limit tripped and how far the evaluation got;
	// non-nil exactly when Incomplete.
	Truncation *limits.Truncation
	// Depth is the null-nesting depth at which the result was computed.
	Depth int
	// Path reports how the answer was produced: PathMaterialized (warm
	// materialization hit), PathMaterializedBuild (materialization built
	// during this query), or PathChase (from-scratch chase).
	Path  string
	Stats chase.Stats
}

// inconsistencyMarker is the 0-ary predicate used internally to signal that
// some constraint fired. It is a variant of the Π⊥ construction of
// Theorem 4.4 (whose literal form, deriving the all-⋆ output tuple, is
// available as datalog.ReduceConstraints): using a dedicated marker avoids
// colliding with legitimate all-⋆ answers, which the SPARQL translation of
// Section 5.1 produces for mappings with empty domain.
const inconsistencyMarker = "⊥#marker"

// Eval evaluates the query over the database as defined in Section 3.2:
// Q(D) = ⊤ when D is inconsistent w.r.t. Π, and the set of constant output
// tuples otherwise. The query must belong to the given language.
//
// Internally constraints are first eliminated in the style of Theorem 4.4 —
// they become ordinary rules deriving an inconsistency marker — so that a
// single monotone chase answers both the consistency question and the query.
func Eval(db *chase.Instance, q datalog.Query, lang Language, opts Options) (*Result, error) {
	return EvalCtx(context.Background(), db, q, lang, opts)
}

// EvalCtx is Eval under a context. Cancellation and deadlines abort with a
// typed limits error (ErrCanceled / ErrDeadline, carrying a Truncation
// report). Budget exhaustion — MaxFacts or MaxRounds tripping — degrades
// gracefully instead: the sound partial answer set computed before the
// abort is returned with Result.Incomplete set and the Truncation attached,
// and err is nil.
func EvalCtx(ctx context.Context, db *chase.Instance, q datalog.Query, lang Language, opts Options) (*Result, error) {
	if err := Validate(q, lang); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, opts.Chase.Obs, "triq.eval",
		obs.F("lang", lang.String()),
		obs.F("output", q.Output),
		obs.F("db_facts", db.Len()))
	prog := rewriteConstraints(q.Program)
	if opts.Mat != nil {
		if served := opts.Mat.Serve(prog, opts.MatEpoch, q.Output, opts.Chase); served != nil {
			res := servedResult(served, PathMaterialized)
			sp.End(obs.F("path", res.Path), obs.F("depth", res.Depth))
			return res, nil
		}
		if served, merr := opts.Mat.BuildServe(ctx, db, prog, opts.MatEpoch, q.Output, opts.Chase); merr == nil && served != nil {
			res := servedResult(served, PathMaterializedBuild)
			sp.End(obs.F("path", res.Path), obs.F("depth", res.Depth))
			return res, nil
		}
		// Decline or failed build: fall through to the chase. A failed build
		// is not a query error — the chase remains authoritative.
	}
	gr, err := chase.StableGroundCtx(ctx, db, prog, opts.Chase, opts.StabilityWindow)
	res := &Result{Path: PathChase}
	if err != nil {
		if gr == nil || !limits.IsBudget(err) {
			sp.End(obs.F("error", true))
			return nil, err
		}
		// Budget trip with a partial instance: degrade to the sound partial
		// answers instead of discarding the work.
		res.Incomplete = true
		if tr, ok := limits.TruncationOf(err); ok {
			res.Truncation = tr
		}
	}
	res.Exact = gr.Exact
	res.Depth = gr.Depth
	res.Stats = gr.Stats
	accountChase(ctx, res.Stats)
	ans := &chase.Answers{}
	if len(gr.Ground.AtomsOf(inconsistencyMarker)) > 0 {
		// Marker derivation is monotone, so ⊤ is sound even on a truncated
		// run.
		ans.Inconsistent = true
		res.Answers = ans
		sp.End(obs.F("inconsistent", true), obs.F("depth", res.Depth))
		return res, nil
	}
	for _, a := range gr.Ground.AtomsOf(q.Output) {
		ans.Tuples = append(ans.Tuples, a.Args)
	}
	sortTuples(ans.Tuples)
	res.Answers = ans
	sp.End(
		obs.F("answers", len(ans.Tuples)),
		obs.F("depth", res.Depth),
		obs.F("exact", res.Exact),
		obs.F("incomplete", res.Incomplete))
	return res, nil
}

// accountChase writes the final evaluation's chase.Stats into the request's
// resource account (a no-op without a trace on ctx). Storing the very
// snapshot Result.Stats carries keeps the account, EXPLAIN, and Stats in
// exact agreement.
func accountChase(ctx context.Context, st chase.Stats) {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return
	}
	var attempted int64
	for _, r := range st.PerRule {
		attempted += int64(r.TriggersAttempted)
	}
	tr.SetChaseWork(int64(st.Rounds), attempted, int64(st.TriggersFired),
		int64(st.FactsDerived), int64(st.NullsInvented))
}

func sortTuples(ts [][]datalog.Term) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}
