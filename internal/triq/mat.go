package triq

import (
	"context"

	"repro/internal/chase"
	"repro/internal/datalog"
)

// InconsistencyMarker is the marker predicate EvalCtx's constraint rewrite
// derives (see inconsistencyMarker). Exported so a materialization layer,
// which maintains the rewritten — hence positive and constraint-free —
// program, can recognize ⊤ in the fixpoint it serves.
const InconsistencyMarker = inconsistencyMarker

// MatServed is a query answer served from a warm materialization instead of
// a chase: the constant-ground atoms of the query's output predicate at the
// pinned epoch, exactly as a from-scratch chase of the same database would
// produce them.
type MatServed struct {
	// Output holds the constant-ground output atoms (ignored when
	// Inconsistent). Order is not significant; EvalCtx sorts tuples.
	Output []datalog.Atom
	// Inconsistent is ⊤: the materialization contains the inconsistency
	// marker, so some constraint of the original program fired.
	Inconsistent bool
	// Facts and Depth describe the materialized instance the answer was read
	// from.
	Facts int
	Depth int
}

// Materializer is the hook through which evaluation consults incrementally
// maintained materializations. Implementations live outside this package
// (internal/mat); evaluation only requires the two-phase contract:
//
//   - Serve answers from an existing materialization if one matches the
//     program (after constraint rewriting), the epoch, and compatible chase
//     bounds; it returns nil on any miss and must be cheap.
//   - BuildServe may build (and retain) a materialization from the given
//     database first. It returns (nil, nil) to decline — wrong mode,
//     negation, stale epoch, over budget — in which case the caller falls
//     back to a from-scratch chase.
//
// Both receive the rewritten program: positive, constraint-free, with
// constraints turned into InconsistencyMarker rules, so serving the marker
// predicate answers the consistency question too.
type Materializer interface {
	Serve(prog *datalog.Program, epoch uint64, output string, copts chase.Options) *MatServed
	BuildServe(ctx context.Context, db *chase.Instance, prog *datalog.Program, epoch uint64, output string, copts chase.Options) (*MatServed, error)
}

// rewriteConstraints eliminates constraints in the style of Theorem 4.4:
// each becomes an ordinary rule deriving the inconsistency marker, so a
// single monotone chase answers both the consistency question and the query.
// The input program is not modified.
func rewriteConstraints(prog *datalog.Program) *datalog.Program {
	if len(prog.Constraints) == 0 {
		return prog
	}
	out := prog.Clone()
	for _, c := range out.Constraints {
		out.Add(datalog.Rule{BodyPos: c.Body, Head: []datalog.Atom{{Pred: inconsistencyMarker}}})
	}
	out.Constraints = nil
	return out
}

// ServeMaterialized answers the query from a warm materialization without
// touching the database: it validates the query, applies the same constraint
// rewrite EvalCtx would, and asks opts.Mat for an epoch-exact hit. It never
// builds. The boolean reports whether the materialization served; on false
// the caller should evaluate normally (facades use this to skip loading the
// graph into an Instance at all — the point of serving warm).
func ServeMaterialized(q datalog.Query, lang Language, opts Options) (*Result, bool) {
	if opts.Mat == nil {
		return nil, false
	}
	if err := Validate(q, lang); err != nil {
		return nil, false
	}
	prog := rewriteConstraints(q.Program)
	served := opts.Mat.Serve(prog, opts.MatEpoch, q.Output, opts.Chase)
	if served == nil {
		return nil, false
	}
	return servedResult(served, PathMaterialized), true
}

// Path values reported by Result.Path.
const (
	// PathMaterialized: answered from an already-warm materialization.
	PathMaterialized = "materialized"
	// PathMaterializedBuild: a materialization was built for this program
	// during the query and then answered from.
	PathMaterializedBuild = "materialized-build"
	// PathChase: answered by the from-scratch chase.
	PathChase = "chase"
)

// servedResult converts a materialization hit into a Result. A served answer
// is always Exact: the materialization layer never installs an instance
// whose build or maintenance tripped a bound.
func servedResult(served *MatServed, path string) *Result {
	res := &Result{Exact: true, Depth: served.Depth, Path: path}
	res.Stats.FactsDerived = served.Facts
	ans := &chase.Answers{}
	if served.Inconsistent {
		ans.Inconsistent = true
	} else {
		ans.Tuples = make([][]datalog.Term, 0, len(served.Output))
		for _, a := range served.Output {
			ans.Tuples = append(ans.Tuples, a.Args)
		}
		sortTuples(ans.Tuples)
	}
	res.Answers = ans
	return res
}
