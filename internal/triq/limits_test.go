package triq

import (
	"context"
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
)

// limitsChainSrc is a positive chain program: each chase round derives one
// new step fact, so budgets cut it at a predictable point.
const limitsChainSrc = `
	start(?X) -> step(?X, ?X).
	step(?X, ?Y), edge(?Y, ?Z) -> step(?X, ?Z).
	step(?X, ?Y) -> query(?X, ?Y).
`

func limitsChainDB(n int) *chase.Instance {
	db := chase.NewInstance(atom("start", "c0"))
	names := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9"}
	for i := 0; i+1 <= n; i++ {
		db.Add(atom("edge", names[i], names[i+1]))
	}
	return db
}

func TestEvalDegradesToPartialAnswersOnBudget(t *testing.T) {
	q := datalog.Query{Program: datalog.MustParse(limitsChainSrc), Output: "query"}
	full, err := Eval(limitsChainDB(8), q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	opts.Chase.MaxRounds = 3
	res, err := Eval(limitsChainDB(8), q, TriQLite10, opts)
	if err != nil {
		t.Fatalf("budget trips must degrade, not error: %v", err)
	}
	if !res.Incomplete {
		t.Fatal("budget-tripped Eval must set Incomplete")
	}
	if res.Truncation == nil || res.Truncation.Limit != limits.LimitRounds {
		t.Fatalf("Truncation = %+v, want rounds", res.Truncation)
	}
	if len(res.Answers.Tuples) == 0 || len(res.Answers.Tuples) >= len(full.Answers.Tuples) {
		t.Fatalf("partial answers = %d, full = %d; want proper non-empty subset",
			len(res.Answers.Tuples), len(full.Answers.Tuples))
	}
	// Soundness: every partial answer is a certain answer of the full run.
	for _, tup := range res.Answers.Tuples {
		if !full.Answers.Has(tup...) {
			t.Fatalf("partial answer %v is not a certain answer", tup)
		}
	}
}

func TestEvalCanceledContextReturnsTypedError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := datalog.Query{Program: datalog.MustParse(limitsChainSrc), Output: "query"}
	_, err := EvalCtx(ctx, limitsChainDB(8), q, TriQLite10, Options{})
	if !errors.Is(err, limits.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestProveCtxCancelStopsWithinOneExpansion(t *testing.T) {
	db := chase.NewInstance(atom("s", "a", "a", "a"), atom("t", "a"))
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the search at the first component expansion; the
	// prover must notice before expanding another component.
	plan := limits.NewPlan(limits.Fault{Point: "prover.expand", Action: limits.ActHook, Hook: cancel})
	pv, err := NewProver(db, datalog.MustParse(example610Src), ProofOptions{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = pv.ProveCtx(ctx, atom("p", "a", "a"))
	if !errors.Is(err, limits.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	tr, ok := limits.TruncationOf(err)
	if !ok {
		t.Fatal("canceled proof search must carry a Truncation")
	}
	// "Within one expansion": the visit on which the hook fired is the last.
	if tr.Visits > 1 {
		t.Fatalf("search continued after cancellation: %d visits", tr.Visits)
	}
}

func TestProveCtxVisitBudgetTypedError(t *testing.T) {
	db := chase.NewInstance(atom("s", "a", "a", "a"), atom("t", "a"))
	pv, err := NewProver(db, datalog.MustParse(example610Src), ProofOptions{MaxVisits: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = pv.ProveCtx(context.Background(), atom("p", "a", "a"))
	if !errors.Is(err, limits.ErrVisitBudget) {
		t.Fatalf("want ErrVisitBudget, got %v", err)
	}
	if tr, ok := limits.TruncationOf(err); !ok || tr.Limit != limits.LimitVisits {
		t.Fatalf("want visits truncation, got %+v (ok=%v)", tr, ok)
	}
}

func TestProverMemoFaultPoint(t *testing.T) {
	db := chase.NewInstance(atom("s", "a", "a", "a"), atom("t", "a"))
	plan := limits.NewPlan(limits.Fault{Point: "prover.memo", Action: limits.ActError})
	pv, err := NewProver(db, datalog.MustParse(example610Src), ProofOptions{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = pv.ProveCtx(context.Background(), atom("p", "a", "a"))
	if !errors.Is(err, limits.ErrInjected) {
		t.Fatalf("want ErrInjected from prover.memo, got %v", err)
	}
}

func TestEvalExactDegradesOnVisitBudget(t *testing.T) {
	q := datalog.Query{Program: datalog.MustParse(limitsChainSrc), Output: "query"}
	opts := Options{MaxVisits: 2}
	res, err := EvalExactCtx(context.Background(), limitsChainDB(3), q, opts)
	if err != nil {
		t.Fatalf("visit-budget trips must degrade, not error: %v", err)
	}
	if !res.Incomplete || res.Exact {
		t.Fatalf("degraded exact run must set Incomplete and clear Exact: %+v", res)
	}
	if res.Truncation == nil || res.Truncation.Limit != limits.LimitVisits {
		t.Fatalf("Truncation = %+v, want visits", res.Truncation)
	}
	// Full run for comparison: the partial answers must be a subset.
	fullRes, err := EvalExact(limitsChainDB(3), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range res.Answers.Tuples {
		if !fullRes.Answers.Has(tup...) {
			t.Fatalf("degraded exact answer %v is not a certain answer", tup)
		}
	}
}
