package triq

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/obs"
)

func transportFixture() (*chase.Instance, datalog.Query) {
	db := chase.NewInstance(
		atom("triple", "TheAirline", "partOf", "transportService"),
		atom("triple", "A311", "partOf", "TheAirline"),
		atom("triple", "Oxford", "A311", "London"),
		atom("triple", "BritishAirways", "partOf", "transportService"),
		atom("triple", "BA201", "partOf", "BritishAirways"),
		atom("triple", "London", "BA201", "Madrid"),
	)
	q := datalog.MustParseQuery(`
		triple(?X, partOf, transportService) -> ts(?X).
		triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
		ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
		ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
		conn(?X, ?Y) -> query(?X, ?Y).
	`, "query")
	return db, q
}

// The report must agree with the evaluation's own chase stats: same per-rule
// cardinality and identical trigger/fact/null totals (the acceptance check
// behind `triq -explain`).
func TestExplainMatchesChaseStats(t *testing.T) {
	db, q := transportFixture()
	res, rep, err := Explain(db, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "triq" {
		t.Errorf("Kind = %q, want triq", rep.Kind)
	}
	if rep.Answers != len(res.Answers.Tuples) || rep.Answers == 0 {
		t.Errorf("Answers = %d, want %d (nonzero)", rep.Answers, len(res.Answers.Tuples))
	}
	if len(rep.Rules) != len(res.Stats.PerRule) {
		t.Fatalf("report has %d rules, stats have %d", len(rep.Rules), len(res.Stats.PerRule))
	}
	var attempted, fired, facts, nulls int
	for _, ru := range rep.Rules {
		attempted += ru.TriggersAttempted
		fired += ru.TriggersFired
		facts += ru.FactsDerived
		nulls += ru.NullsInvented
	}
	var wantAttempted, wantFired, wantFacts, wantNulls int
	for _, rs := range res.Stats.PerRule {
		wantAttempted += rs.TriggersAttempted
		wantFired += rs.TriggersFired
		wantFacts += rs.FactsDerived
		wantNulls += rs.NullsInvented
	}
	if attempted != wantAttempted || fired != wantFired || facts != wantFacts || nulls != wantNulls {
		t.Errorf("rule totals = (%d,%d,%d,%d), stats = (%d,%d,%d,%d)",
			attempted, fired, facts, nulls, wantAttempted, wantFired, wantFacts, wantNulls)
	}
	if fired != res.Stats.TriggersFired {
		t.Errorf("trigger total %d != Stats.TriggersFired %d", fired, res.Stats.TriggersFired)
	}
	// Rules are sorted by cumulative time, slowest first.
	for i := 1; i < len(rep.Rules); i++ {
		if rep.Rules[i-1].TimeUS < rep.Rules[i].TimeUS {
			t.Errorf("rules not sorted by time at %d: %d < %d", i, rep.Rules[i-1].TimeUS, rep.Rules[i].TimeUS)
		}
	}
	// The evaluation itself emits at least the triq.eval span.
	var stages []string
	for _, s := range rep.Stages {
		stages = append(stages, s.Stage)
	}
	if !contains(stages, "triq.eval") || !contains(stages, "chase.run") {
		t.Errorf("stages %v missing triq.eval / chase.run", stages)
	}
	if rep.TotalUS <= 0 {
		t.Errorf("TotalUS = %d, want > 0", rep.TotalUS)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// Answers must be byte-identical with and without EXPLAIN: telemetry never
// changes evaluation.
func TestExplainAnswersMatchEval(t *testing.T) {
	db, q := transportFixture()
	plain, err := Eval(db, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2, q2 := transportFixture()
	explained, _, err := Explain(db2, q2, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", plain.Answers) != fmt.Sprintf("%v", explained.Answers) {
		t.Errorf("answers differ:\n%v\nvs\n%v", plain.Answers, explained.Answers)
	}
}

// When the caller had its own Obs, the private per-query observations fold
// back into it, so long-lived metrics still see explained runs.
func TestExplainMergesBackIntoCallerRegistry(t *testing.T) {
	db, q := transportFixture()
	o := obs.New()
	opts := Options{}
	opts.Chase.Obs = o
	_, rep, err := Explain(db, q, TriQLite10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
	if n := o.Registry().Counter("chase.rounds"); n == 0 {
		t.Error("caller registry did not receive chase counters after merge-back")
	}
	if _, ok := o.Registry().Hist("span.triq.eval"); !ok {
		t.Error("caller registry did not receive span histograms after merge-back")
	}
}

// The exact (ProofTree) path reports prover memo metrics.
func TestExplainExactCarriesProver(t *testing.T) {
	db, q := transportFixture()
	res, rep, err := ExplainExactCtx(t.Context(), db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("exact evaluation should be exact")
	}
	if rep.Kind != "triq-exact" {
		t.Errorf("Kind = %q, want triq-exact", rep.Kind)
	}
	if rep.Prover == nil {
		t.Fatal("exact explain should carry prover metrics")
	}
	if rep.Prover.Proofs == 0 && rep.Prover.Expansions == 0 {
		t.Error("prover metrics all zero")
	}
}

// The report must render for humans and round-trip as JSON.
func TestExplainRenderAndJSON(t *testing.T) {
	db, q := transportFixture()
	_, rep, err := Explain(db, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"EXPLAIN triq", "chase:", "rule", "stage"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ExplainReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != rep.Kind || len(back.Rules) != len(rep.Rules) || back.TriggersFired != rep.TriggersFired {
		t.Errorf("JSON round-trip changed the report: %+v vs %+v", back, rep)
	}
}

// A parallel run surfaces the worker shard balance, and the per-worker
// trigger counts agree with the run's total.
func TestExplainParallelWorkers(t *testing.T) {
	// A wide instance so the parallel path actually engages (threshold 64).
	var facts []datalog.Atom
	for i := 0; i < 200; i++ {
		facts = append(facts, atom("triple", "n"+itoa(i), "next", "n"+itoa(i+1)))
	}
	db := chase.NewInstance(facts...)
	q := datalog.MustParseQuery(`
		triple(?X, next, ?Y) -> conn(?X, ?Y).
		conn(?X, ?Z), triple(?Z, next, ?Y) -> conn(?X, ?Y).
		conn(?X, ?Y) -> query(?X, ?Y).
	`, "query")
	opts := Options{}
	opts.Chase.Parallelism = 4
	_, rep, err := Explain(db, q, TriQLite10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallelism != 4 {
		t.Errorf("Parallelism = %d, want 4", rep.Parallelism)
	}
	if len(rep.Workers) == 0 {
		t.Fatal("parallel run reported no workers")
	}
	var shards int64
	for _, w := range rep.Workers {
		shards += w.Shards
	}
	if shards == 0 {
		t.Error("worker shard counts all zero")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
