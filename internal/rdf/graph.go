package rdf

import (
	"sort"
	"strings"
)

// Triple is an RDF triple (s, p, o).
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// T is a convenience constructor building a triple of three IRIs.
func T(s, p, o string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewIRI(o)}
}

// String renders the triple in N-Triples syntax (without the final newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// Graph is a finite set of RDF triples with per-position hash indexes so
// that triple patterns with any combination of bound positions can be
// matched efficiently. The zero value is not usable; call NewGraph.
type Graph struct {
	set map[Triple]struct{}
	byS map[Term][]Triple
	byP map[Term][]Triple
	byO map[Term][]Triple
	// bySP indexes (subject, predicate) pairs, the most common access path
	// for the evaluators in this repository.
	bySP map[[2]Term][]Triple
	byPO map[[2]Term][]Triple
}

// NewGraph returns an empty graph.
func NewGraph(triples ...Triple) *Graph {
	g := &Graph{
		set:  make(map[Triple]struct{}),
		byS:  make(map[Term][]Triple),
		byP:  make(map[Term][]Triple),
		byO:  make(map[Term][]Triple),
		bySP: make(map[[2]Term][]Triple),
		byPO: make(map[[2]Term][]Triple),
	}
	g.Add(triples...)
	return g
}

// Add inserts the given triples, ignoring duplicates. It returns the number
// of triples that were actually new.
func (g *Graph) Add(triples ...Triple) int {
	added := 0
	for _, t := range triples {
		if _, ok := g.set[t]; ok {
			continue
		}
		g.set[t] = struct{}{}
		g.byS[t.S] = append(g.byS[t.S], t)
		g.byP[t.P] = append(g.byP[t.P], t)
		g.byO[t.O] = append(g.byO[t.O], t)
		g.bySP[[2]Term{t.S, t.P}] = append(g.bySP[[2]Term{t.S, t.P}], t)
		g.byPO[[2]Term{t.P, t.O}] = append(g.byPO[[2]Term{t.P, t.O}], t)
		added++
	}
	return added
}

// Remove deletes the given triples, ignoring ones not present. It returns
// the number of triples actually removed.
func (g *Graph) Remove(triples ...Triple) int {
	removed := 0
	for _, t := range triples {
		if _, ok := g.set[t]; !ok {
			continue
		}
		delete(g.set, t)
		g.byS[t.S] = dropTriple(g.byS[t.S], t)
		if len(g.byS[t.S]) == 0 {
			delete(g.byS, t.S)
		}
		g.byP[t.P] = dropTriple(g.byP[t.P], t)
		if len(g.byP[t.P]) == 0 {
			delete(g.byP, t.P)
		}
		g.byO[t.O] = dropTriple(g.byO[t.O], t)
		if len(g.byO[t.O]) == 0 {
			delete(g.byO, t.O)
		}
		sp := [2]Term{t.S, t.P}
		g.bySP[sp] = dropTriple(g.bySP[sp], t)
		if len(g.bySP[sp]) == 0 {
			delete(g.bySP, sp)
		}
		po := [2]Term{t.P, t.O}
		g.byPO[po] = dropTriple(g.byPO[po], t)
		if len(g.byPO[po]) == 0 {
			delete(g.byPO, po)
		}
		removed++
	}
	return removed
}

// dropTriple removes the first occurrence of t from a fresh copy of s, so
// index slices previously handed out by Match stay intact.
func dropTriple(s []Triple, t Triple) []Triple {
	for i, u := range s {
		if u == t {
			out := make([]Triple, 0, len(s)-1)
			out = append(out, s[:i]...)
			return append(out, s[i+1:]...)
		}
	}
	return s
}

// AddGraph inserts every triple of h into g and returns the number added.
func (g *Graph) AddGraph(h *Graph) int {
	added := 0
	for t := range h.set {
		added += g.Add(t)
	}
	return added
}

// Has reports whether the triple is in the graph.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return len(g.set) }

// Triples returns all triples in an unspecified order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, len(g.set))
	for t := range g.set {
		out = append(out, t)
	}
	return out
}

// SortedTriples returns all triples sorted lexicographically; useful for
// deterministic output and golden tests.
func (g *Graph) SortedTriples() []Triple {
	out := g.Triples()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Match returns the triples matching the pattern; a nil position matches
// anything. The returned slice must not be modified.
func (g *Graph) Match(s, p, o *Term) []Triple {
	filter := func(cands []Triple) []Triple {
		out := cands[:0:0]
		for _, t := range cands {
			if s != nil && t.S != *s {
				continue
			}
			if p != nil && t.P != *p {
				continue
			}
			if o != nil && t.O != *o {
				continue
			}
			out = append(out, t)
		}
		return out
	}
	switch {
	case s != nil && p != nil && o != nil:
		t := Triple{S: *s, P: *p, O: *o}
		if g.Has(t) {
			return []Triple{t}
		}
		return nil
	case s != nil && p != nil:
		return g.bySP[[2]Term{*s, *p}]
	case p != nil && o != nil:
		return g.byPO[[2]Term{*p, *o}]
	case s != nil:
		return filter(g.byS[*s])
	case o != nil:
		return filter(g.byO[*o])
	case p != nil:
		return g.byP[*p]
	default:
		return g.Triples()
	}
}

// Subjects returns the set of distinct subject terms.
func (g *Graph) Subjects() []Term { return keys(g.byS) }

// Predicates returns the set of distinct predicate terms.
func (g *Graph) Predicates() []Term { return keys(g.byP) }

// Objects returns the set of distinct object terms.
func (g *Graph) Objects() []Term { return keys(g.byO) }

// Terms returns every distinct term occurring anywhere in the graph.
func (g *Graph) Terms() []Term {
	seen := make(map[Term]struct{})
	for t := range g.set {
		seen[t.S] = struct{}{}
		seen[t.P] = struct{}{}
		seen[t.O] = struct{}{}
	}
	out := make([]Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := NewGraph()
	for t := range g.set {
		h.Add(t)
	}
	return h
}

// Equal reports whether two graphs contain exactly the same triples.
func (g *Graph) Equal(h *Graph) bool {
	if g.Len() != h.Len() {
		return false
	}
	for t := range g.set {
		if !h.Has(t) {
			return false
		}
	}
	return true
}

// String renders the graph as sorted N-Triples lines.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.SortedTriples() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func keys(m map[Term][]Triple) []Term {
	out := make([]Term, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
