// Package rdf implements the RDF data model used throughout the paper
// "Expressive Languages for Querying the Semantic Web" (Arenas, Gottlob,
// Pieris; TODS 2018): terms (URIs, blank nodes, literals), triples, and
// indexed RDF graphs, together with an N-Triples reader and writer.
//
// Following Section 3 of the paper, RDF graphs proper contain only URIs
// (footnote 5: literals and blank nodes are omitted from graphs without loss
// of generality). Blank nodes are still first-class terms because they occur
// in SPARQL basic graph patterns, where they act as existential variables,
// and literals are supported so that realistic data files round-trip.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI is a URI reference (the set U of the paper).
	IRI TermKind = iota
	// Blank is a blank node (the set B of the paper).
	Blank
	// Literal is an RDF literal (plain, typed, or language-tagged).
	Literal
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Blank:
		return "Blank"
	case Literal:
		return "Literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term. Terms are value types and compare with ==.
type Term struct {
	// Kind says whether the term is an IRI, blank node, or literal.
	Kind TermKind
	// Value holds the IRI string, the blank node label (without the "_:"
	// prefix), or the literal's lexical form.
	Value string
	// Datatype is the datatype IRI of a typed literal, empty otherwise.
	Datatype string
	// Lang is the language tag of a language-tagged literal, empty otherwise.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// String renders the term in N-Triples surface syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + escapeIRI(t.Value) + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(escapeIRI(t.Datatype))
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("<invalid term kind %d>", t.Kind)
	}
}

// Compare orders terms lexicographically by (kind, value, datatype, lang).
// It returns -1, 0, or +1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeIRI makes an IRI value safe for the angle-bracket form: '>' would
// terminate the bracket early and '\' would be read as an escape introducer,
// so both are backslash-escaped, as are the line/column controls that would
// break the line-oriented reader. The parser's iri() decodes the same set.
func escapeIRI(s string) string {
	if !strings.ContainsAny(s, ">\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '>':
			b.WriteString(`\>`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Well-known vocabulary IRIs used by the paper's examples and by the
// OWL 2 QL core mapping of Table 1.
const (
	RDFType                 = "rdf:type"
	RDFSSubClassOf          = "rdfs:subClassOf"
	RDFSSubPropertyOf       = "rdfs:subPropertyOf"
	OWLClass                = "owl:Class"
	OWLObjectProperty       = "owl:ObjectProperty"
	OWLRestriction          = "owl:Restriction"
	OWLOnProperty           = "owl:onProperty"
	OWLSomeValuesFrom       = "owl:someValuesFrom"
	OWLThing                = "owl:Thing"
	OWLInverseOf            = "owl:inverseOf"
	OWLDisjointWith         = "owl:disjointWith"
	OWLPropertyDisjointWith = "owl:propertyDisjointWith"
	OWLSameAs               = "owl:sameAs"
)
