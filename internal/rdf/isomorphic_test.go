package rdf

import "testing"

func TestIsomorphicGroundGraphs(t *testing.T) {
	g := NewGraph(T("a", "p", "b"), T("b", "p", "c"))
	h := NewGraph(T("b", "p", "c"), T("a", "p", "b"))
	if !Isomorphic(g, h) {
		t.Error("identical ground graphs should be isomorphic")
	}
	if Isomorphic(g, NewGraph(T("a", "p", "b"))) {
		t.Error("different sizes")
	}
	if Isomorphic(g, NewGraph(T("a", "p", "b"), T("b", "p", "d"))) {
		t.Error("different ground triples")
	}
}

func TestIsomorphicBlankRenaming(t *testing.T) {
	g := NewGraph(
		Triple{S: NewIRI("a"), P: NewIRI("p"), O: NewBlank("x")},
		Triple{S: NewBlank("x"), P: NewIRI("q"), O: NewIRI("b")},
	)
	h := NewGraph(
		Triple{S: NewIRI("a"), P: NewIRI("p"), O: NewBlank("y")},
		Triple{S: NewBlank("y"), P: NewIRI("q"), O: NewIRI("b")},
	)
	if !Isomorphic(g, h) {
		t.Error("blank renaming should be isomorphic")
	}
	// Splitting the blank breaks isomorphism.
	k := NewGraph(
		Triple{S: NewIRI("a"), P: NewIRI("p"), O: NewBlank("y")},
		Triple{S: NewBlank("z"), P: NewIRI("q"), O: NewIRI("b")},
	)
	if Isomorphic(g, k) {
		t.Error("shared vs split blanks must differ")
	}
	if Isomorphic(k, g) {
		t.Error("isomorphism must be symmetric on the negative case")
	}
}

func TestIsomorphicPermutation(t *testing.T) {
	// Two blanks forming a 2-cycle vs two self-loops: same degrees per
	// position, different structure.
	g := NewGraph(
		Triple{S: NewBlank("x"), P: NewIRI("p"), O: NewBlank("y")},
		Triple{S: NewBlank("y"), P: NewIRI("p"), O: NewBlank("x")},
	)
	h := NewGraph(
		Triple{S: NewBlank("u"), P: NewIRI("p"), O: NewBlank("u")},
		Triple{S: NewBlank("v"), P: NewIRI("p"), O: NewBlank("v")},
	)
	if Isomorphic(g, h) {
		t.Error("cycle vs self-loops must not be isomorphic")
	}
	h2 := NewGraph(
		Triple{S: NewBlank("v"), P: NewIRI("p"), O: NewBlank("u")},
		Triple{S: NewBlank("u"), P: NewIRI("p"), O: NewBlank("v")},
	)
	if !Isomorphic(g, h2) {
		t.Error("renamed cycle should be isomorphic")
	}
}

func TestIsomorphicBlankCountMismatch(t *testing.T) {
	g := NewGraph(Triple{S: NewBlank("x"), P: NewIRI("p"), O: NewBlank("x")})
	h := NewGraph(Triple{S: NewBlank("u"), P: NewIRI("p"), O: NewBlank("v")})
	if Isomorphic(g, h) {
		t.Error("one blank vs two blanks must differ")
	}
}
