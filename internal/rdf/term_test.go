package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("http://example.org/a"), IRI, "<http://example.org/a>"},
		{"bare iri", NewIRI("rdf:type"), IRI, "<rdf:type>"},
		{"blank", NewBlank("b0"), Blank, "_:b0"},
		{"plain literal", NewLiteral("Jeffrey Ullman"), Literal, `"Jeffrey Ullman"`},
		{"typed literal", NewTypedLiteral("1", "xsd:integer"), Literal, `"1"^^<xsd:integer>`},
		{"lang literal", NewLangLiteral("hola", "es"), Literal, `"hola"@es`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
		})
	}
}

func TestTermKindPredicates(t *testing.T) {
	if !NewIRI("a").IsIRI() || NewIRI("a").IsBlank() || NewIRI("a").IsLiteral() {
		t.Error("IRI predicates wrong")
	}
	if !NewBlank("b").IsBlank() || NewBlank("b").IsIRI() {
		t.Error("Blank predicates wrong")
	}
	if !NewLiteral("l").IsLiteral() || NewLiteral("l").IsIRI() {
		t.Error("Literal predicates wrong")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Blank.String() != "Blank" || Literal.String() != "Literal" {
		t.Error("TermKind.String wrong")
	}
	if TermKind(42).String() == "" {
		t.Error("unknown kind should render something")
	}
}

func TestLiteralEscaping(t *testing.T) {
	lit := NewLiteral("a\"b\\c\nd\re\tf")
	want := `"a\"b\\c\nd\re\tf"`
	if got := lit.String(); got != want {
		t.Errorf("escaped literal = %q, want %q", got, want)
	}
}

func TestTermCompare(t *testing.T) {
	a := NewIRI("a")
	b := NewIRI("b")
	bl := NewBlank("a")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("IRI ordering wrong")
	}
	if a.Compare(bl) >= 0 {
		t.Error("IRIs must sort before blanks")
	}
	if NewTypedLiteral("x", "d1").Compare(NewTypedLiteral("x", "d2")) >= 0 {
		t.Error("datatype tie-break wrong")
	}
	if NewLangLiteral("x", "en").Compare(NewLangLiteral("x", "es")) >= 0 {
		t.Error("lang tie-break wrong")
	}
}

func TestTermCompareProperties(t *testing.T) {
	mk := func(kind uint8, v string) Term {
		switch kind % 3 {
		case 0:
			return NewIRI(v)
		case 1:
			return NewBlank(v)
		default:
			return NewLiteral(v)
		}
	}
	antisym := func(k1 uint8, v1 string, k2 uint8, v2 string) bool {
		a, b := mk(k1, v1), mk(k2, v2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("Compare not antisymmetric: %v", err)
	}
	reflexive := func(k uint8, v string) bool {
		a := mk(k, v)
		return a.Compare(a) == 0
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("Compare not reflexive: %v", err)
	}
}
