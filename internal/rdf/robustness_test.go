package rdf

import (
	"testing"
	"testing/quick"
)

func TestNTriplesParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseNTriplesString(%q) panicked: %v", s, r)
			}
		}()
		_, _ = ParseNTriplesString(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	full := `<http://a> <b> "lit\n"^^<t> . # c` + "\n_:b p o ."
	for i := 0; i <= len(full); i++ {
		_, _ = ParseNTriplesString(full[:i])
	}
}
