package rdf

// Isomorphic reports whether two graphs are equal up to a bijective renaming
// of blank nodes (RDF graph isomorphism). Non-blank terms must match
// exactly. The search is backtracking with signature pruning; it is intended
// for the small graphs produced by CONSTRUCT queries and tests, not for
// adversarial inputs.
func Isomorphic(g, h *Graph) bool {
	if g.Len() != h.Len() {
		return false
	}
	gBlanks := blankNodes(g)
	hBlanks := blankNodes(h)
	if len(gBlanks) != len(hBlanks) {
		return false
	}
	if len(gBlanks) == 0 {
		return g.Equal(h)
	}
	// Ground triples (no blanks) must coincide.
	for _, t := range g.Triples() {
		if !t.S.IsBlank() && !t.P.IsBlank() && !t.O.IsBlank() && !h.Has(t) {
			return false
		}
	}
	// Backtracking over the blank-node bijection, most-constrained first.
	mapping := make(map[Term]Term, len(gBlanks))
	used := make(map[Term]bool, len(hBlanks))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(gBlanks) {
			return checkMapped(g, h, mapping)
		}
		b := gBlanks[i]
		for _, c := range hBlanks {
			if used[c] {
				continue
			}
			if blankDegree(g, b) != blankDegree(h, c) {
				continue
			}
			mapping[b] = c
			used[c] = true
			if partialConsistent(g, h, mapping) && rec(i+1) {
				return true
			}
			delete(mapping, b)
			delete(used, c)
		}
		return false
	}
	return rec(0)
}

func blankNodes(g *Graph) []Term {
	seen := make(map[Term]bool)
	var out []Term
	for _, t := range g.SortedTriples() {
		for _, x := range []Term{t.S, t.P, t.O} {
			if x.IsBlank() && !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}

func blankDegree(g *Graph, b Term) [3]int {
	var d [3]int
	for _, t := range g.Triples() {
		if t.S == b {
			d[0]++
		}
		if t.P == b {
			d[1]++
		}
		if t.O == b {
			d[2]++
		}
	}
	return d
}

func mapTerm(t Term, m map[Term]Term) (Term, bool) {
	if !t.IsBlank() {
		return t, true
	}
	u, ok := m[t]
	return u, ok
}

// partialConsistent checks that every g-triple whose blanks are all mapped
// already appears in h.
func partialConsistent(g, h *Graph, m map[Term]Term) bool {
	for _, t := range g.Triples() {
		s, ok1 := mapTerm(t.S, m)
		p, ok2 := mapTerm(t.P, m)
		o, ok3 := mapTerm(t.O, m)
		if ok1 && ok2 && ok3 && !h.Has(Triple{S: s, P: p, O: o}) {
			return false
		}
	}
	return true
}

func checkMapped(g, h *Graph, m map[Term]Term) bool {
	for _, t := range g.Triples() {
		s, _ := mapTerm(t.S, m)
		p, _ := mapTerm(t.P, m)
		o, _ := mapTerm(t.O, m)
		if !h.Has(Triple{S: s, P: p, O: o}) {
			return false
		}
	}
	return true
}
