package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseNTriples reads a graph in (a pragmatic superset of) N-Triples syntax:
// one triple per line, terms separated by whitespace, a terminating dot,
// comments starting with '#'. IRIs may be written either in angle brackets
// (<http://…>) or as bare prefixed names (rdf:type, dbUllman) — the latter
// matches the notation used throughout the paper's examples.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		g.Add(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading input: %w", err)
	}
	return g, nil
}

// ParseNTriplesString is ParseNTriples over a string.
func ParseNTriplesString(s string) (*Graph, error) {
	return ParseNTriples(strings.NewReader(s))
}

// MustParseNTriples parses the input and panics on error; intended for
// tests and examples with literal data.
func MustParseNTriples(s string) *Graph {
	g, err := ParseNTriplesString(s)
	if err != nil {
		panic(err)
	}
	return g
}

// WriteNTriples serializes the graph as sorted N-Triples.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.SortedTriples() {
		if _, err := fmt.Fprintln(bw, t.String()); err != nil {
			return fmt.Errorf("rdf: writing triple: %w", err)
		}
	}
	return bw.Flush()
}

func parseTripleLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("expected terminating '.' at %q", p.rest())
	}
	p.skipSpace()
	if !p.atEOF() && !strings.HasPrefix(p.rest(), "#") {
		return Triple{}, fmt.Errorf("trailing content %q", p.rest())
	}
	return Triple{S: s, P: pred, O: o}, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) atEOF() bool  { return p.pos >= len(p.in) }
func (p *ntParser) rest() string { return p.in[p.pos:] }
func (p *ntParser) peek() byte   { return p.in[p.pos] }

func (p *ntParser) skipSpace() {
	for !p.atEOF() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *ntParser) eat(c byte) bool {
	if !p.atEOF() && p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.atEOF() {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return p.bareName()
	}
}

func (p *ntParser) iri() (Term, error) {
	p.pos++ // consume '<'
	var b strings.Builder
	for {
		if p.atEOF() {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		c := p.peek()
		if c == '>' {
			p.pos++
			break
		}
		if c == '\\' {
			// Decode the writer's escapeIRI set so IRIs containing '>' or
			// '\' round-trip through the angle-bracket form.
			p.pos++
			if p.atEOF() {
				return Term{}, fmt.Errorf("dangling escape in IRI")
			}
			switch p.peek() {
			case '>':
				b.WriteByte('>')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			default:
				return Term{}, fmt.Errorf("unknown escape \\%c in IRI", p.peek())
			}
			p.pos++
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	return NewIRI(b.String()), nil
}

func (p *ntParser) blank() (Term, error) {
	if !strings.HasPrefix(p.rest(), "_:") {
		return Term{}, fmt.Errorf("expected blank node at %q", p.rest())
	}
	p.pos += 2
	start := p.pos
	for !p.atEOF() && isNameByte(p.peek()) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return NewBlank(p.in[start:p.pos]), nil
}

func (p *ntParser) literal() (Term, error) {
	p.pos++ // consume '"'
	var b strings.Builder
	for {
		if p.atEOF() {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.peek()
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			p.pos++
			if p.atEOF() {
				return Term{}, fmt.Errorf("dangling escape in literal")
			}
			switch p.peek() {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, fmt.Errorf("unknown escape \\%c", p.peek())
			}
			p.pos++
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	if strings.HasPrefix(p.rest(), "^^") {
		p.pos += 2
		dt, err := p.iri()
		if err != nil {
			return Term{}, fmt.Errorf("literal datatype: %w", err)
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	if p.eat('@') {
		start := p.pos
		for !p.atEOF() && (isNameByte(p.peek()) || p.peek() == '-') {
			p.pos++
		}
		if p.pos == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		return NewLangLiteral(lex, p.in[start:p.pos]), nil
	}
	return NewLiteral(lex), nil
}

// bareName accepts the paper's notation: an unquoted token such as
// dbUllman, rdf:type, is_author_of, ∃eats. It is read as an IRI.
func (p *ntParser) bareName() (Term, error) {
	start := p.pos
	for !p.atEOF() {
		c := p.peek()
		if c == ' ' || c == '\t' {
			break
		}
		// A final '.' terminates the triple rather than the name, but dots
		// inside names (e.g. version numbers) are preserved.
		if c == '.' && (p.pos+1 >= len(p.in) || p.in[p.pos+1] == ' ' || p.in[p.pos+1] == '\t') {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return Term{}, fmt.Errorf("expected term at %q", p.rest())
	}
	return NewIRI(p.in[start:p.pos]), nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == ':' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
