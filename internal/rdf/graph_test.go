package rdf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphAddHasLen(t *testing.T) {
	g := NewGraph()
	t1 := T("a", "p", "b")
	t2 := T("b", "p", "c")
	if g.Len() != 0 {
		t.Fatalf("empty graph Len = %d", g.Len())
	}
	if n := g.Add(t1, t2, t1); n != 2 {
		t.Errorf("Add returned %d new, want 2", n)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
	if !g.Has(t1) || !g.Has(t2) || g.Has(T("c", "p", "d")) {
		t.Error("Has results wrong")
	}
}

func TestGraphMatch(t *testing.T) {
	g := NewGraph(
		T("a", "p", "b"),
		T("a", "p", "c"),
		T("a", "q", "b"),
		T("b", "p", "c"),
	)
	s, p, o := NewIRI("a"), NewIRI("p"), NewIRI("c")
	cases := []struct {
		name    string
		s, p, o *Term
		want    int
	}{
		{"all wild", nil, nil, nil, 4},
		{"s bound", &s, nil, nil, 3},
		{"p bound", nil, &p, nil, 3},
		{"o bound", nil, nil, &o, 2},
		{"sp bound", &s, &p, nil, 2},
		{"po bound", nil, &p, &o, 2},
		{"so bound", &s, nil, &o, 1},
		{"spo present", &s, &p, &o, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := g.Match(tc.s, tc.p, tc.o)
			if len(got) != tc.want {
				t.Errorf("Match returned %d triples, want %d: %v", len(got), tc.want, got)
			}
			for _, tr := range got {
				if tc.s != nil && tr.S != *tc.s {
					t.Errorf("triple %v does not match bound subject", tr)
				}
				if tc.p != nil && tr.P != *tc.p {
					t.Errorf("triple %v does not match bound predicate", tr)
				}
				if tc.o != nil && tr.O != *tc.o {
					t.Errorf("triple %v does not match bound object", tr)
				}
			}
		})
	}
	x := NewIRI("missing")
	if got := g.Match(&x, &p, &o); got != nil {
		t.Errorf("absent spo should return nil, got %v", got)
	}
}

func TestGraphTermsAndProjections(t *testing.T) {
	g := NewGraph(T("a", "p", "b"), T("b", "q", "a"))
	if n := len(g.Subjects()); n != 2 {
		t.Errorf("Subjects = %d, want 2", n)
	}
	if n := len(g.Predicates()); n != 2 {
		t.Errorf("Predicates = %d, want 2", n)
	}
	if n := len(g.Objects()); n != 2 {
		t.Errorf("Objects = %d, want 2", n)
	}
	if n := len(g.Terms()); n != 4 {
		t.Errorf("Terms = %d, want 4 (a,b,p,q)", n)
	}
}

func TestGraphCloneEqual(t *testing.T) {
	g := NewGraph(T("a", "p", "b"), T("b", "p", "c"))
	h := g.Clone()
	if !g.Equal(h) || !h.Equal(g) {
		t.Fatal("clone should be equal")
	}
	h.Add(T("c", "p", "d"))
	if g.Equal(h) {
		t.Error("graphs of different size should not be equal")
	}
	k := NewGraph(T("a", "p", "b"), T("x", "y", "z"))
	if g.Equal(k) {
		t.Error("same-size different graphs should not be equal")
	}
}

func TestGraphAddGraph(t *testing.T) {
	g := NewGraph(T("a", "p", "b"))
	h := NewGraph(T("a", "p", "b"), T("b", "p", "c"))
	if n := g.AddGraph(h); n != 1 {
		t.Errorf("AddGraph added %d, want 1", n)
	}
	if g.Len() != 2 {
		t.Errorf("Len after AddGraph = %d, want 2", g.Len())
	}
}

func TestGraphSortedDeterministic(t *testing.T) {
	g := NewGraph(T("b", "p", "c"), T("a", "p", "b"), T("a", "p", "a"))
	got := g.SortedTriples()
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatalf("SortedTriples not strictly sorted: %v >= %v", got[i-1], got[i])
		}
	}
	if g.String() == "" {
		t.Error("String should be non-empty")
	}
}

// Property: Match(s,p,o) equals the brute-force filter for random graphs and
// random patterns.
func TestGraphMatchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c", "d", "e"}
	randTerm := func() Term { return NewIRI(names[rng.Intn(len(names))]) }
	for round := 0; round < 50; round++ {
		g := NewGraph()
		for i := 0; i < 30; i++ {
			g.Add(Triple{S: randTerm(), P: randTerm(), O: randTerm()})
		}
		var s, p, o *Term
		if rng.Intn(2) == 0 {
			v := randTerm()
			s = &v
		}
		if rng.Intn(2) == 0 {
			v := randTerm()
			p = &v
		}
		if rng.Intn(2) == 0 {
			v := randTerm()
			o = &v
		}
		want := 0
		for _, tr := range g.Triples() {
			if (s == nil || tr.S == *s) && (p == nil || tr.P == *p) && (o == nil || tr.O == *o) {
				want++
			}
		}
		if got := len(g.Match(s, p, o)); got != want {
			t.Fatalf("round %d: Match = %d, brute force = %d", round, got, want)
		}
	}
}

func TestTripleStringAndCompare(t *testing.T) {
	tr := T("a", "p", "b")
	if got := tr.String(); got != "<a> <p> <b> ." {
		t.Errorf("Triple.String = %q", got)
	}
	if tr.Compare(tr) != 0 {
		t.Error("triple should equal itself")
	}
	if T("a", "p", "b").Compare(T("a", "p", "c")) >= 0 {
		t.Error("object tie-break wrong")
	}
	if T("a", "p", "b").Compare(T("a", "q", "a")) >= 0 {
		t.Error("predicate tie-break wrong")
	}
}

// Property-based: adding a set of triples in any order yields equal graphs.
func TestGraphOrderInsensitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ts []Triple
		for i := 0; i < 20; i++ {
			ts = append(ts, T(
				fmt.Sprintf("s%d", rng.Intn(5)),
				fmt.Sprintf("p%d", rng.Intn(3)),
				fmt.Sprintf("o%d", rng.Intn(5))))
		}
		g := NewGraph(ts...)
		perm := rng.Perm(len(ts))
		h := NewGraph()
		for _, i := range perm {
			h.Add(ts[i])
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph(
		T("a", "p", "b"),
		T("a", "p", "c"),
		T("a", "q", "b"),
		T("b", "p", "c"),
	)
	if n := g.Remove(T("a", "p", "b"), T("x", "y", "z"), T("a", "p", "b")); n != 1 {
		t.Errorf("Remove returned %d, want 1 (absent and repeated triples are no-ops)", n)
	}
	if g.Len() != 3 || g.Has(T("a", "p", "b")) {
		t.Errorf("Len = %d after remove, Has(removed) = %v", g.Len(), g.Has(T("a", "p", "b")))
	}
	// Every index must forget the triple.
	s, p, b := NewIRI("a"), NewIRI("p"), NewIRI("b")
	if got := g.Match(&s, &p, nil); len(got) != 1 {
		t.Errorf("byS/bySP stale after remove: %v", got)
	}
	if got := g.Match(nil, &p, &b); len(got) != 0 {
		t.Errorf("byPO stale after remove: %v", got)
	}
	if got := g.Match(nil, nil, &b); len(got) != 1 {
		t.Errorf("byO stale after remove: %v", got)
	}
	g.Remove(g.Triples()...)
	if g.Len() != 0 || len(g.Match(nil, nil, nil)) != 0 {
		t.Errorf("graph not empty after removing everything: %v", g.Triples())
	}
	// Removing from empty and re-adding round-trips.
	if n := g.Remove(T("a", "p", "b")); n != 0 {
		t.Errorf("Remove on empty = %d", n)
	}
	g.Add(T("a", "p", "b"))
	if !g.Has(T("a", "p", "b")) {
		t.Error("re-add after full removal failed")
	}
}

// Match-returned slices must survive a later Remove (readers hold them while
// the store commits new epochs against cloned graphs, but even same-graph
// removal must not clobber shared backing arrays).
func TestGraphRemoveDoesNotClobberMatchResults(t *testing.T) {
	g := NewGraph(T("a", "p", "b"), T("a", "p", "c"), T("a", "p", "d"))
	s := NewIRI("a")
	got := g.Match(&s, nil, nil)
	if len(got) != 3 {
		t.Fatalf("Match = %d, want 3", len(got))
	}
	snapshot := append([]Triple(nil), got...)
	g.Remove(T("a", "p", "b"))
	for i := range got {
		if got[i] != snapshot[i] {
			t.Fatalf("Remove mutated a previously returned Match slice at %d: %v != %v", i, got[i], snapshot[i])
		}
	}
}

// Property-based: removing a random subset leaves exactly the complement.
func TestGraphRemoveComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ts []Triple
		for i := 0; i < 24; i++ {
			ts = append(ts, T(
				fmt.Sprintf("s%d", rng.Intn(4)),
				fmt.Sprintf("p%d", rng.Intn(3)),
				fmt.Sprintf("o%d", rng.Intn(4))))
		}
		g := NewGraph(ts...)
		all := g.SortedTriples()
		var gone, kept []Triple
		for _, tr := range all {
			if rng.Intn(2) == 0 {
				gone = append(gone, tr)
			} else {
				kept = append(kept, tr)
			}
		}
		if n := g.Remove(gone...); n != len(gone) {
			return false
		}
		return g.Equal(NewGraph(kept...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
