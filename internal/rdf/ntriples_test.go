package rdf

import (
	"strings"
	"testing"
)

func TestParseNTriplesBasics(t *testing.T) {
	in := `
# the paper's graph G1
dbUllman is_author_of "The Complete Book" .
dbUllman name "Jeffrey Ullman" .
<http://example.org/x> <http://example.org/p> _:b0 .
a b "typed"^^<xsd:int> .
a b "tagged"@en .
`
	g, err := ParseNTriplesString(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5\n%s", g.Len(), g)
	}
	if !g.Has(Triple{S: NewIRI("dbUllman"), P: NewIRI("name"), O: NewLiteral("Jeffrey Ullman")}) {
		t.Error("missing bare-name triple with plain literal")
	}
	if !g.Has(Triple{S: NewIRI("http://example.org/x"), P: NewIRI("http://example.org/p"), O: NewBlank("b0")}) {
		t.Error("missing bracketed-IRI triple with blank object")
	}
	if !g.Has(Triple{S: NewIRI("a"), P: NewIRI("b"), O: NewTypedLiteral("typed", "xsd:int")}) {
		t.Error("missing typed literal triple")
	}
	if !g.Has(Triple{S: NewIRI("a"), P: NewIRI("b"), O: NewLangLiteral("tagged", "en")}) {
		t.Error("missing lang literal triple")
	}
}

func TestParseNTriplesRoundTrip(t *testing.T) {
	g := NewGraph(
		T("a", "p", "b"),
		Triple{S: NewIRI("s"), P: NewIRI("p"), O: NewLiteral("line\nbreak \"q\" \\slash")},
		Triple{S: NewBlank("x"), P: NewIRI("p"), O: NewTypedLiteral("3", "xsd:integer")},
		Triple{S: NewIRI("s"), P: NewIRI("p"), O: NewLangLiteral("hello", "en-GB")},
	)
	var sb strings.Builder
	if err := WriteNTriples(&sb, g); err != nil {
		t.Fatal(err)
	}
	h, err := ParseNTriplesString(sb.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\noutput was:\n%s", err, sb.String())
	}
	if !g.Equal(h) {
		t.Errorf("round trip changed graph.\nbefore:\n%s\nafter:\n%s", g, h)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		"a b",                 // too few terms, no dot
		"a b c",               // missing dot
		"a b c . extra",       // trailing garbage
		`a b "unterminated .`, // unterminated literal
		"<unterminated b c .", // unterminated IRI
		"_: b c .",            // empty blank label
		`a b "x"@ .`,          // empty language tag
		`a b "bad\q" .`,       // unknown escape
	}
	for _, in := range bad {
		if _, err := ParseNTriplesString(in); err == nil {
			t.Errorf("ParseNTriples(%q) succeeded, want error", in)
		}
	}
}

func TestParseNTriplesDotInName(t *testing.T) {
	g, err := ParseNTriplesString("v1.2 p o .")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(T("v1.2", "p", "o")) {
		t.Errorf("dot inside a bare name should be preserved, got %s", g)
	}
}

func TestMustParseNTriplesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseNTriples should panic on bad input")
		}
	}()
	MustParseNTriples("a b")
}

func TestParseNTriplesCommentAfterDot(t *testing.T) {
	g, err := ParseNTriplesString("a b c . # trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(T("a", "b", "c")) {
		t.Error("triple with trailing comment not parsed")
	}
}
