package rdf

import "testing"

// FuzzParseNTriples asserts the parser's total-function contract: any input,
// valid or garbage, must produce a graph or an error — never a panic. A
// successfully parsed graph must additionally serialize to valid N-Triples
// that re-parse to the same number of triples (no term collisions in the
// writer's escaping).
func FuzzParseNTriples(f *testing.F) {
	f.Add("TheAirline partOf transportService .\nA311 partOf TheAirline .\n")
	f.Add(`<http://a> <http://b> "lit"@en .`)
	f.Add(`_:b1 <http://p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .`)
	f.Add("# comment only\n")
	f.Add("s p \"unterminated")
	f.Add("s p o")
	f.Add("\x00\xff .")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseNTriplesString(src)
		if err != nil {
			return
		}
		out := g.String()
		h, err := ParseNTriplesString(out)
		if err != nil {
			t.Fatalf("re-parse of serialized graph failed: %v\ninput: %q\nserialized: %q", err, src, out)
		}
		if g.Len() != h.Len() {
			t.Fatalf("round-trip changed triple count %d -> %d\ninput: %q\nserialized: %q", g.Len(), h.Len(), src, out)
		}
	})
}
