// Package mat maintains chased materializations incrementally across store
// epochs. A Materializer holds, per program, one chase.Incremental instance
// — the Skolem-chase fixpoint of that program over the live graph's τ_db
// encoding — and folds every committed store delta into all of them: inserts
// by semi-naive propagation seeded on the batch, deletes by exact counting
// (non-recursive programs) or DRed. Queries pinned to the epoch the
// materializer is at are answered straight from the warm instance instead of
// re-chasing the whole graph; everything else falls back to the from-scratch
// chase, which stays authoritative.
//
// Entries are built lazily: the first (cold) evaluation of a program builds
// the materialization through triq's BuildServe hook, and subsequent commits
// keep it warm. A maintenance pass that trips a bound (depth, facts, rounds)
// or fails in any way drops the entry — a partial materialization is never
// served — and the next query simply rebuilds or chases. Wholesale state
// replacements (bootstrap, replica snapshot install, recovery) reset the
// materializer; entries rebuild lazily from the new graph.
package mat

import (
	"context"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/store"
	"repro/internal/triq"
)

// Config assembles a Materializer.
type Config struct {
	// Chase bounds builds and maintenance passes. Serving requires the
	// querying side to use identical bounds (see compatible); triqd
	// guarantees that by configuring both from the same flags.
	Chase chase.Options
	// MaxFacts caps one materialized instance (-mat-max-facts). An entry
	// that grows past the cap is dropped; 0 defaults to Chase.MaxFacts.
	MaxFacts int
	// MaxPrograms caps how many programs are kept materialized at once
	// (least-recently-served eviction). Default 4.
	MaxPrograms int
	// Obs receives the mat.* gauges and maintenance metrics.
	Obs *obs.Obs
}

// entry is one program's warm materialization.
type entry struct {
	progStr string // full program rendering; guards fingerprint collisions
	inc     *chase.Incremental
	used    int64 // LRU tick of the last serve/build
}

// Materializer implements triq.Materializer over a set of incrementally
// maintained program materializations, all pinned to one store epoch. It is
// safe for concurrent use; maintenance and serving serialize on one lock
// (maintenance runs under the store's commit lock anyway, and serving copies
// answers out so evaluation never holds the lock).
type Materializer struct {
	cfg Config

	mu        sync.Mutex
	epoch     uint64
	haveEpoch bool
	entries   map[uint64]*entry
	tick      int64
}

// New builds an empty Materializer. Call Reset with the store's recovered
// epoch before serving, then feed every commit through OnCommit (wire it as
// store.Config.OnCommit).
func New(cfg Config) *Materializer {
	cfg.Chase = cfg.Chase.WithDefaults()
	if cfg.MaxFacts <= 0 {
		cfg.MaxFacts = cfg.Chase.MaxFacts
	}
	if cfg.MaxPrograms <= 0 {
		cfg.MaxPrograms = 4
	}
	return &Materializer{cfg: cfg, entries: make(map[uint64]*entry)}
}

// fingerprint keys entries by the program's full rendering.
func fingerprint(prog *datalog.Program) (uint64, string) {
	s := prog.String()
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64(), s
}

// compatible reports whether answers materialized under the configured chase
// bounds are exchangeable for a chase under copts: same chase variant and
// same bounds (a materialization built at MaxDepth 12 must not answer for a
// query that would chase at MaxDepth 3). Parallelism and observability
// differences don't affect answers.
func (m *Materializer) compatible(copts chase.Options) bool {
	copts = copts.WithDefaults()
	c := m.cfg.Chase
	return copts.Mode == chase.Skolem &&
		copts.MaxDepth == c.MaxDepth &&
		copts.MaxFacts == c.MaxFacts &&
		copts.MaxRounds == c.MaxRounds
}

// Epoch returns the store epoch the materializer is at (false before the
// first Reset/commit).
func (m *Materializer) Epoch() (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch, m.haveEpoch
}

// Stats is a point-in-time snapshot for /metrics gauges.
type Stats struct {
	Epoch    uint64
	Programs int
	Facts    int
}

// Snapshot returns the current gauge values.
func (m *Materializer) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Epoch: m.epoch, Programs: len(m.entries)}
	for _, e := range m.entries {
		st.Facts += e.inc.Facts()
	}
	return st
}

// Reset drops every entry and pins the materializer to the given epoch. Use
// it at startup (with the recovered epoch) and after any state change that
// did not flow through OnCommit.
func (m *Materializer) Reset(epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resetLocked(epoch)
}

func (m *Materializer) resetLocked(epoch uint64) {
	m.entries = make(map[uint64]*entry)
	m.epoch = epoch
	m.haveEpoch = true
	m.gaugesLocked()
}

// OnCommit folds one committed store batch into every entry and advances the
// materializer's epoch; wire it as store.Config.OnCommit so it runs before
// the mutation is acknowledged and queries pinned to the new epoch always
// find the materialization already caught up. Snapshot events (bootstrap,
// replica snapshot install) reset the materializer instead. An entry whose
// maintenance fails or overflows MaxFacts is dropped.
func (m *Materializer) OnCommit(ev store.CommitEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Op != store.OpInsert && ev.Op != store.OpDelete {
		m.resetLocked(ev.Epoch)
		return
	}
	atoms := make([]datalog.Atom, len(ev.Triples))
	for i, t := range ev.Triples {
		atoms[i] = owl.TripleAtom(t)
	}
	ctx := context.Background()
	for fp, e := range m.entries {
		start := time.Now()
		var st chase.MaintainStats
		var err error
		if ev.Op == store.OpInsert {
			st, err = e.inc.Insert(ctx, atoms)
		} else {
			st, err = e.inc.Delete(ctx, atoms)
		}
		if err != nil || e.inc.Facts() > m.cfg.MaxFacts {
			delete(m.entries, fp)
			m.cfg.Obs.Count("mat.dropped", 1)
			continue
		}
		m.maintainMetrics(st, time.Since(start))
	}
	m.epoch = ev.Epoch
	m.haveEpoch = true
	m.gaugesLocked()
}

func (m *Materializer) maintainMetrics(st chase.MaintainStats, elapsed time.Duration) {
	o := m.cfg.Obs
	o.Observe("mat.maintain_us", float64(elapsed.Microseconds()))
	o.Observe("mat.maintain_delta", float64(st.DeltaIn))
	o.Count("mat.maintain_passes", 1)
	o.Count("mat.triggers", int64(st.Triggers))
	o.Count("mat.derived", int64(st.Derived))
	o.Count("mat.deleted", int64(st.Deleted))
	if st.OverDeleted > 0 {
		// Rederive fraction: how much of the DRed over-deletion survived.
		o.Observe("mat.rederive_fraction", float64(st.Rederived)/float64(st.OverDeleted))
		o.Count("mat.overdeleted", int64(st.OverDeleted))
		o.Count("mat.rederived", int64(st.Rederived))
	}
}

func (m *Materializer) gaugesLocked() {
	o := m.cfg.Obs
	if !o.Enabled() {
		return
	}
	o.Gauge("mat.epoch", float64(m.epoch))
	o.Gauge("mat.programs", float64(len(m.entries)))
	facts := 0
	for _, e := range m.entries {
		facts += e.inc.Facts()
	}
	o.Gauge("mat.facts", float64(facts))
}

// Serve implements triq.Materializer: it answers from a warm entry when the
// program is materialized, the pinned epoch matches exactly, and the chase
// bounds are compatible. Answers are copied out under the lock (maintenance
// filters instance buckets in place).
func (m *Materializer) Serve(prog *datalog.Program, epoch uint64, output string, copts chase.Options) *triq.MatServed {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.haveEpoch || epoch != m.epoch || !m.compatible(copts) {
		return nil
	}
	fp, s := fingerprint(prog)
	e := m.entries[fp]
	if e == nil || e.progStr != s {
		return nil
	}
	m.tick++
	e.used = m.tick
	m.cfg.Obs.Count("mat.hits", 1)
	return served(e.inc, output)
}

// served extracts the constant-ground answer for one output predicate.
func served(inc *chase.Incremental, output string) *triq.MatServed {
	out := &triq.MatServed{Facts: inc.Facts(), Depth: inc.Depth()}
	if len(inc.Instance().AtomsOf(triq.InconsistencyMarker)) > 0 {
		out.Inconsistent = true
		return out
	}
	for _, a := range inc.Instance().AtomsOf(output) {
		if a.IsConstantGround() {
			out.Output = append(out.Output, a)
		}
	}
	return out
}

// BuildServe implements the cold half of triq.Materializer: when the program
// is not materialized yet, build its fixpoint from the database the caller
// already constructed, serve the answer, and — provided the store did not
// move on while building — install the entry so the next commits keep it
// warm. It declines ((nil, nil)) when the epoch is stale, the bounds are
// incompatible, the program is not maintainable (negation, non-Skolem), or
// the build trips a budget; the caller then falls back to the chase.
func (m *Materializer) BuildServe(ctx context.Context, db *chase.Instance, prog *datalog.Program, epoch uint64, output string, copts chase.Options) (*triq.MatServed, error) {
	m.mu.Lock()
	if !m.haveEpoch || epoch != m.epoch || !m.compatible(copts) {
		m.mu.Unlock()
		return nil, nil
	}
	fp, s := fingerprint(prog)
	m.mu.Unlock()

	// Build outside the lock: a from-scratch chase can be long, and commits
	// must not stall behind it.
	bopts := m.cfg.Chase
	bopts.Obs = copts.Obs
	start := time.Now()
	inc, err := chase.NewIncremental(ctx, db, prog, bopts)
	if err != nil || inc.Facts() > m.cfg.MaxFacts {
		m.cfg.Obs.Count("mat.build_declined", 1)
		return nil, nil
	}
	m.cfg.Obs.Observe("mat.build_us", float64(time.Since(start).Microseconds()))

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.haveEpoch && m.epoch == epoch {
		// Still at the build's epoch: install (evicting the stalest entry
		// over MaxPrograms) so commits maintain it from here on.
		m.tick++
		m.entries[fp] = &entry{progStr: s, inc: inc, used: m.tick}
		for len(m.entries) > m.cfg.MaxPrograms {
			var oldFP uint64
			oldest := int64(1<<63 - 1)
			for k, e := range m.entries {
				if e.used < oldest {
					oldest, oldFP = e.used, k
				}
			}
			delete(m.entries, oldFP)
			m.cfg.Obs.Count("mat.evicted", 1)
		}
		m.gaugesLocked()
	}
	// Either way the answer is valid for the pinned epoch the db was read at.
	m.cfg.Obs.Count("mat.builds", 1)
	return served(inc, output), nil
}
