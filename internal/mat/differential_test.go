package mat

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/triq"
)

// The mat differential suite proves the end-to-end maintenance contract over
// the real write path: a volatile store whose commits feed OnCommit, a random
// warded program over the triple(·,·,·) encoding, and a random schedule of
// insert/delete batches. After every mutation the materialized answer at the
// store's epoch must be identical to a from-scratch chase of the same epoch's
// graph — same tuples, same ⊤/⊥ verdict — and the materializer's epoch must
// track the store's. Replay one schedule with
// TRIQ_DIFF_SEED=<n> go test -run TestMatDifferential ./internal/mat.

// matTemplates is the warded positive rule pool over the τ_db triple
// encoding: recursion through reach, existential invention through anon/tag
// (tag's null has a null in its frontier), and head-only output predicate
// out so the sampled program always forms a valid query.
var matTemplates = []string{
	"triple(?X, link, ?Y) -> reach(?X, ?Y).",
	"triple(?X, rel, ?Y) -> reach(?Y, ?X).",
	"reach(?X, ?Y), triple(?Y, link, ?Z) -> reach(?X, ?Z).",
	"triple(?X, type, hub) -> hub(?X).",
	"hub(?X) -> anon(?X, ?V).",
	"anon(?X, ?V) -> tag(?V, ?W).",
	"anon(?X, ?V), triple(?X, rel, ?Y) -> hub(?Y).",
	"reach(?X, ?Y), hub(?Y) -> out(?Y, ?X).",
	"reach(?X, ?Y) -> out(?X, ?Y).",
	"hub(?X) -> out(?X, ?X).",
}

// matOutputs are the head-only predicates a schedule may query.
const matOutput = "out"

// genMatProgram samples a warded program from the template pool, always
// keeping at least one rule deriving the output predicate.
func genMatProgram(rng *rand.Rand) (*datalog.Program, string, error) {
	for attempt := 0; attempt < 100; attempt++ {
		perm := rng.Perm(len(matTemplates))
		k := 3 + rng.Intn(6)
		var source string
		hasOut := false
		for _, i := range perm[:k] {
			source += matTemplates[i] + "\n"
			if strings.Contains(matTemplates[i], "-> "+matOutput) {
				hasOut = true
			}
		}
		if !hasOut {
			continue
		}
		p, err := datalog.Parse(source)
		if err != nil {
			continue
		}
		if datalog.CheckWarded(p) != nil {
			continue
		}
		if datalog.NewQuery(p, matOutput).Validate() != nil {
			continue
		}
		return p, source, nil
	}
	return nil, "", fmt.Errorf("no valid program after 100 attempts")
}

// randTriple draws an EDB triple over a small node pool; type edges point at
// hub often enough that the existential rules fire.
func randTriple(rng *rand.Rand) rdf.Triple {
	node := func() rdf.Term { return rdf.NewIRI("n" + strconv.Itoa(rng.Intn(7))) }
	switch rng.Intn(4) {
	case 0:
		return rdf.NewTriple(node(), rdf.NewIRI("rel"), node())
	case 1:
		o := rdf.NewIRI("hub")
		if rng.Intn(3) == 0 {
			o = node()
		}
		return rdf.NewTriple(node(), rdf.NewIRI("type"), o)
	default:
		return rdf.NewTriple(node(), rdf.NewIRI("link"), node())
	}
}

// matFaultsArmed reports whether a fault plan is injected (CI chaos runs).
// Answer correctness must hold regardless; warm-path guarantees cannot — a
// maintenance pass hit by an injected fault drops the entry by design, so the
// next query legitimately rebuilds or chases.
func matFaultsArmed() bool { return os.Getenv("TRIQ_FAULTS") != "" }

func matSkipInjected(t *testing.T, errs ...error) {
	t.Helper()
	for _, err := range errs {
		if err != nil && errors.Is(err, limits.ErrInjected) {
			t.Skipf("injected fault (TRIQ_FAULTS armed); schedule not comparable")
		}
	}
}

// matSeeds yields the schedule seeds: 200 in a full run, 40 under -short, or
// exactly the one named by TRIQ_DIFF_SEED.
func matSeeds(t *testing.T) []int64 {
	n := 200
	if testing.Short() {
		n = 40
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	if env := os.Getenv("TRIQ_DIFF_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad TRIQ_DIFF_SEED %q: %v", env, err)
		}
		seeds = []int64{v}
	}
	return seeds
}

// matHarness is one schedule's fixture: a volatile store wired into a fresh
// materializer, plus the chase options shared by both sides of the diff.
type matHarness struct {
	st    *store.Store
	m     *Materializer
	copts chase.Options
}

func newMatHarness(t *testing.T) *matHarness {
	t.Helper()
	copts := chase.Options{Parallelism: 1}
	m := New(Config{Chase: copts})
	st, _, err := store.Open(store.Config{OnCommit: m.OnCommit})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	m.Reset(st.Current().Seq)
	return &matHarness{st: st, m: m, copts: copts}
}

// query evaluates the program's output at the store's current epoch twice —
// once offered the materializer, once forced through the chase — and fails
// the test on any divergence. It returns the materialized side's path.
func (h *matHarness) query(t *testing.T, ctx context.Context, prog *datalog.Program, label string) string {
	t.Helper()
	ep := h.st.Current()
	db, err := chase.FromFacts(owl.GraphToDB(ep.Graph))
	if err != nil {
		t.Fatalf("%s: graph to db: %v", label, err)
	}
	q := datalog.NewQuery(prog, matOutput)
	warm, err := triq.EvalCtx(ctx, db, q, triq.Unrestricted,
		triq.Options{Chase: h.copts, Mat: h.m, MatEpoch: ep.Seq})
	matSkipInjected(t, err)
	if err != nil {
		t.Fatalf("%s: materialized eval: %v", label, err)
	}
	cold, err := triq.EvalCtx(ctx, db, q, triq.Unrestricted, triq.Options{Chase: h.copts})
	matSkipInjected(t, err)
	if err != nil {
		t.Fatalf("%s: chase eval: %v", label, err)
	}
	if warm.Answers.Inconsistent != cold.Answers.Inconsistent {
		t.Fatalf("%s: inconsistency verdicts differ: materialized=%v chase=%v",
			label, warm.Answers.Inconsistent, cold.Answers.Inconsistent)
	}
	if got, want := renderTuples(warm), renderTuples(cold); got != want {
		t.Fatalf("%s: answers differ at epoch %d (path %s)\nmaterialized:\n%s\nchase:\n%s",
			label, ep.Seq, warm.Path, got, want)
	}
	if !warm.Exact {
		t.Fatalf("%s: materialized answer not exact (path %s)", label, warm.Path)
	}
	return warm.Path
}

func renderTuples(res *triq.Result) string {
	var b strings.Builder
	for _, tup := range res.Answers.Tuples {
		for i, term := range tup {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(term.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestMatDifferential(t *testing.T) {
	ctx := context.Background()
	for _, seed := range matSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			prog, source, err := genMatProgram(rng)
			if err != nil {
				t.Fatal(err)
			}
			replay := func() {
				t.Logf("replay: TRIQ_DIFF_SEED=%d go test -run TestMatDifferential ./internal/mat\nprogram:\n%s", seed, source)
			}
			h := newMatHarness(t)
			base := make([]rdf.Triple, 8+rng.Intn(12))
			for i := range base {
				base[i] = randTriple(rng)
			}
			if _, _, err := h.st.Insert(base); err != nil {
				matSkipInjected(t, err)
				t.Fatalf("seed insert: %v", err)
			}
			servedWarm := false
			steps := 10
			queryEvery := 1 + rng.Intn(3)
			for step := 0; step < steps; step++ {
				if rng.Intn(5) < 3 { // insert-leaning mix
					batch := make([]rdf.Triple, 1+rng.Intn(5))
					for i := range batch {
						batch[i] = randTriple(rng)
					}
					_, _, err = h.st.Insert(batch)
				} else {
					pool := h.st.Current().Graph.Triples()
					batch := make([]rdf.Triple, 1+rng.Intn(5))
					for i := range batch {
						if len(pool) > 0 && rng.Intn(8) > 0 {
							batch[i] = pool[rng.Intn(len(pool))]
						} else {
							// Occasionally delete a triple that may never have
							// been inserted: must be a no-op on both sides.
							batch[i] = randTriple(rng)
						}
					}
					_, _, err = h.st.Delete(batch)
				}
				matSkipInjected(t, err)
				if err != nil {
					replay()
					t.Fatalf("step %d: mutate: %v", step, err)
				}
				if me, ok := h.m.Epoch(); !ok || me != h.st.Current().Seq {
					replay()
					t.Fatalf("step %d: mat epoch %d (have=%v) does not track store epoch %d",
						step, me, ok, h.st.Current().Seq)
				}
				if step%queryEvery != 0 {
					continue
				}
				path := h.query(t, ctx, prog, fmt.Sprintf("step %d", step))
				if path == triq.PathMaterialized {
					servedWarm = true
				}
			}
			// The program is positive and Skolem-maintainable, so after the
			// first cold build every later query must have been served warm —
			// the whole point of the maintenance path.
			if !servedWarm && !matFaultsArmed() {
				replay()
				t.Fatalf("no query was served from the warm materialization")
			}
		})
	}
}

// TestMatInsertDeleteRestores: inserting a batch and deleting it again (two
// epochs) must restore the previous answers, served warm — the materializer
// folds both deltas rather than rebuilding.
func TestMatInsertDeleteRestores(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	prog, _, err := genMatProgram(rng)
	if err != nil {
		t.Fatal(err)
	}
	h := newMatHarness(t)
	base := make([]rdf.Triple, 15)
	for i := range base {
		base[i] = randTriple(rng)
	}
	if _, _, err := h.st.Insert(base); err != nil {
		matSkipInjected(t, err)
		t.Fatalf("seed insert: %v", err)
	}
	h.query(t, ctx, prog, "cold build") // installs the entry
	before := h.st.Current()
	db, err := chase.FromFacts(owl.GraphToDB(before.Graph))
	if err != nil {
		t.Fatal(err)
	}
	q := datalog.NewQuery(prog, matOutput)
	res0, err := triq.EvalCtx(ctx, db, q, triq.Unrestricted,
		triq.Options{Chase: h.copts, Mat: h.m, MatEpoch: before.Seq})
	matSkipInjected(t, err)
	if err != nil {
		t.Fatal(err)
	}
	// A batch of genuinely-new triples round-trips to a no-op.
	var batch []rdf.Triple
	for len(batch) < 6 {
		tr := randTriple(rng)
		if !before.Graph.Has(tr) {
			batch = append(batch, tr)
		}
	}
	if _, _, err := h.st.Insert(batch); err != nil {
		matSkipInjected(t, err)
		t.Fatalf("insert: %v", err)
	}
	if _, _, err := h.st.Delete(batch); err != nil {
		matSkipInjected(t, err)
		t.Fatalf("delete: %v", err)
	}
	after := h.st.Current()
	if !after.Graph.Equal(before.Graph) {
		t.Fatalf("graph not restored by insert-then-delete")
	}
	res1, err := triq.EvalCtx(ctx, db, q, triq.Unrestricted,
		triq.Options{Chase: h.copts, Mat: h.m, MatEpoch: after.Seq})
	matSkipInjected(t, err)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Path != triq.PathMaterialized && !matFaultsArmed() {
		t.Fatalf("restored epoch not served warm: path=%s", res1.Path)
	}
	if renderTuples(res0) != renderTuples(res1) {
		t.Fatalf("answers changed across insert-then-delete\nbefore:\n%s\nafter:\n%s",
			renderTuples(res0), renderTuples(res1))
	}
}

// TestMatBatchSplit: committing one batch in a single epoch or split across
// two epochs must yield the same final answers.
func TestMatBatchSplit(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	prog, _, err := genMatProgram(rng)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]rdf.Triple, 12)
	for i := range base {
		base[i] = randTriple(rng)
	}
	batch := make([]rdf.Triple, 10)
	for i := range batch {
		batch[i] = randTriple(rng)
	}
	run := func(splits [][]rdf.Triple) string {
		h := newMatHarness(t)
		if _, _, err := h.st.Insert(base); err != nil {
			matSkipInjected(t, err)
			t.Fatalf("seed insert: %v", err)
		}
		h.query(t, ctx, prog, "cold build")
		for _, s := range splits {
			if _, _, err := h.st.Insert(s); err != nil {
				matSkipInjected(t, err)
				t.Fatalf("insert: %v", err)
			}
		}
		ep := h.st.Current()
		db, err := chase.FromFacts(owl.GraphToDB(ep.Graph))
		if err != nil {
			t.Fatal(err)
		}
		res, err := triq.EvalCtx(ctx, db, datalog.NewQuery(prog, matOutput), triq.Unrestricted,
			triq.Options{Chase: h.copts, Mat: h.m, MatEpoch: ep.Seq})
		matSkipInjected(t, err)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != triq.PathMaterialized && !matFaultsArmed() {
			t.Fatalf("final epoch not served warm: path=%s", res.Path)
		}
		return renderTuples(res)
	}
	one := run([][]rdf.Triple{batch})
	two := run([][]rdf.Triple{batch[:5], batch[5:]})
	if one != two {
		t.Fatalf("one epoch ≠ two epochs\none:\n%s\ntwo:\n%s", one, two)
	}
}

// TestMatDeleteAll: deleting every triple must leave the materialized answer
// equal to the empty-graph chase.
func TestMatDeleteAll(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	prog, _, err := genMatProgram(rng)
	if err != nil {
		t.Fatal(err)
	}
	h := newMatHarness(t)
	base := make([]rdf.Triple, 20)
	for i := range base {
		base[i] = randTriple(rng)
	}
	if _, _, err := h.st.Insert(base); err != nil {
		matSkipInjected(t, err)
		t.Fatalf("seed insert: %v", err)
	}
	h.query(t, ctx, prog, "cold build")
	if _, _, err := h.st.Delete(h.st.Current().Graph.Triples()); err != nil {
		matSkipInjected(t, err)
		t.Fatalf("delete all: %v", err)
	}
	if h.st.Current().Graph.Len() != 0 {
		t.Fatalf("%d triples remain", h.st.Current().Graph.Len())
	}
	path := h.query(t, ctx, prog, "after delete-all")
	if path != triq.PathMaterialized && !matFaultsArmed() {
		t.Fatalf("empty epoch not served warm: path=%s", path)
	}
}

// TestMatSnapshotResets: a snapshot install (wholesale state replacement, the
// replica catch-up path) must reset the materializer — entries rebuild lazily
// and still agree with the chase.
func TestMatSnapshotResets(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	prog, _, err := genMatProgram(rng)
	if err != nil {
		t.Fatal(err)
	}
	h := newMatHarness(t)
	base := make([]rdf.Triple, 10)
	for i := range base {
		base[i] = randTriple(rng)
	}
	if _, _, err := h.st.Insert(base); err != nil {
		matSkipInjected(t, err)
		t.Fatalf("seed insert: %v", err)
	}
	h.query(t, ctx, prog, "cold build")
	g := rdf.NewGraph()
	for i := 0; i < 12; i++ {
		g.Add(randTriple(rng))
	}
	if _, err := h.st.InstallSnapshot(h.st.Current().Seq+10, g); err != nil {
		matSkipInjected(t, err)
		t.Fatalf("install snapshot: %v", err)
	}
	snap := h.m.Snapshot()
	if snap.Programs != 0 {
		t.Fatalf("snapshot install did not reset the materializer: %d entries", snap.Programs)
	}
	if snap.Epoch != h.st.Current().Seq {
		t.Fatalf("mat epoch %d ≠ store epoch %d after snapshot install", snap.Epoch, h.st.Current().Seq)
	}
	h.query(t, ctx, prog, "after snapshot install")
}
