package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/limits"
	"repro/internal/obs"
)

// The write-ahead log is a single append-only file of length-prefixed,
// CRC-checksummed records:
//
//	u32 LE  payload length N
//	u32 LE  CRC32-C of the payload
//	N bytes payload:  op (1 byte) | epoch (u64 LE) | N-Triples text
//
// A record is the unit of both atomicity and recovery: the reader accepts
// the longest prefix of whole, checksum-valid, epoch-monotonic records and
// truncates the file at the first torn or corrupt byte. Nothing in the
// format is position-dependent, so a checkpoint resets the log by
// truncating it to zero.
//
// The same framing is the replication wire format (internal/repl): a
// primary ships Records over HTTP exactly as they land in its WAL, plus the
// two stream-only opcodes OpSnapshot and OpHeartbeat that never appear in a
// log file.

const (
	// OpInsert / OpDelete are the mutation record operations; they appear
	// both in WAL files and on replication streams.
	OpInsert byte = 1
	OpDelete byte = 2
	// OpSnapshot is stream-only: a full N-Triples dump of the graph at
	// Record.Epoch, sent when a replica is too far behind the retained
	// changelog to catch up record-by-record.
	OpSnapshot byte = 3
	// OpHeartbeat is stream-only: a liveness frame carrying the primary's
	// current epoch, so a replica can account lag while the write path is
	// idle. Text, when non-empty, is the primary's wall clock at send time
	// (decimal unix nanoseconds), letting the replica report lag in seconds
	// as well as epochs.
	OpHeartbeat byte = 4
	// OpTrace is stream-only: a trace-context sidecar announcing that the
	// next mutation frame at Record.Epoch originated under the W3C
	// traceparent in Text. Replicas join their apply span to that trace so
	// one distributed trace spans client → primary → replica.
	OpTrace byte = 5

	// recHeaderLen is the fixed record header: length + checksum.
	recHeaderLen = 8
	// recPayloadMin is the smallest valid payload: op byte + epoch.
	recPayloadMin = 1 + 8
	// maxRecordLen caps a single record payload. A length field beyond it is
	// treated as corruption rather than an allocation request.
	maxRecordLen = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one framed entry: a WAL record or a replication stream frame.
type Record struct {
	// Op is one of the Op* constants.
	Op byte
	// Epoch is the commit epoch the record creates (OpInsert/OpDelete), the
	// epoch a snapshot represents (OpSnapshot), or the primary's current
	// epoch (OpHeartbeat).
	Epoch uint64
	// Text is the N-Triples payload (a wall clock for heartbeats, a
	// traceparent for trace sidecars).
	Text []byte
	// Trace is the W3C traceparent of the mutation that produced this
	// record, when the client sent one. It is in-memory metadata only: the
	// changelog carries it to the replication layer (which ships it as an
	// OpTrace sidecar frame), but EncodeRecord never serializes it, so WAL
	// files and mutation wire frames are unchanged.
	Trace string
}

// walRec is a scanned Record plus its file offset (for tail truncation).
type walRec struct {
	Record
	off int64
}

// EncodeRecord renders a record in the on-disk / on-wire format.
func EncodeRecord(r Record) []byte {
	n := recPayloadMin + len(r.Text)
	buf := make([]byte, recHeaderLen+n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	buf[8] = r.Op
	binary.LittleEndian.PutUint64(buf[9:17], r.Epoch)
	copy(buf[17:], r.Text)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], crcTable))
	return buf
}

// ErrBadFrame reports a framing/checksum/opcode violation on a streamed
// record — the receiver must drop the connection and resynchronize.
var ErrBadFrame = errors.New("store: bad record frame")

// ReadRecord decodes one framed record from a stream, validating framing,
// checksum, and opcode (any Op* constant is accepted — streams carry
// snapshot and heartbeat frames that never appear in WAL files). io.EOF at
// a frame boundary is returned as-is; a partial frame surfaces as
// io.ErrUnexpectedEOF, and corruption as an error wrapping ErrBadFrame.
func ReadRecord(br *bufio.Reader) (Record, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return Record{}, err // EOF at a boundary stays io.EOF
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n < recPayloadMin || n > maxRecordLen {
		return Record{}, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	op := payload[0]
	if op != OpInsert && op != OpDelete && op != OpSnapshot && op != OpHeartbeat && op != OpTrace {
		return Record{}, fmt.Errorf("%w: unknown opcode %d", ErrBadFrame, op)
	}
	return Record{Op: op, Epoch: binary.LittleEndian.Uint64(payload[1:9]), Text: payload[9:]}, nil
}

// scanRecords walks buf from the start and returns the records of the
// longest valid prefix, the byte length of that prefix, and whether the scan
// stopped at a torn or corrupt tail (false means it consumed buf exactly).
// It validates framing, checksums, opcodes, and that epochs are strictly
// sequential; it never panics on arbitrary input.
func scanRecords(buf []byte) (recs []walRec, valid int, damaged bool) {
	off := 0
	var lastEpoch uint64
	for off < len(buf) {
		rem := buf[off:]
		if len(rem) < recHeaderLen {
			return recs, off, true // torn header
		}
		n := int(binary.LittleEndian.Uint32(rem[0:4]))
		if n < recPayloadMin || n > maxRecordLen {
			return recs, off, true // corrupt length
		}
		if len(rem) < recHeaderLen+n {
			return recs, off, true // torn payload
		}
		payload := rem[recHeaderLen : recHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rem[4:8]) {
			return recs, off, true // checksum mismatch
		}
		op := payload[0]
		if op != OpInsert && op != OpDelete {
			return recs, off, true // unknown opcode (stream-only ops never hit disk)
		}
		epoch := binary.LittleEndian.Uint64(payload[1:9])
		if epoch == 0 || (lastEpoch != 0 && epoch != lastEpoch+1) {
			return recs, off, true // epoch sequence break
		}
		lastEpoch = epoch
		recs = append(recs, walRec{
			Record: Record{Op: op, Epoch: epoch, Text: payload[9:]},
			off:    int64(off),
		})
		off += recHeaderLen + n
	}
	return recs, off, false
}

// wal is the open log file plus its fsync policy. The Store's writer lock
// serializes appends; the interval syncer only ever calls Sync, which is
// safe alongside writes.
type wal struct {
	f      *os.File
	path   string
	policy SyncPolicy
	faults *limits.Plan
	o      *obs.Obs
	size   int64
	dirty  atomic.Bool // set by unsynced appends, cleared by the syncer

	// appendedAt / syncedAt are the last append's pipeline stamps, read by
	// the store (under its writer lock, which serializes appends) to feed
	// the epoch timeline. syncedAt is zero when the policy did not fsync.
	appendedAt time.Time
	syncedAt   time.Time
}

// openWAL opens (creating if needed) the log and positions the write cursor
// at the end. The caller scans and truncates before the first append.
func openWAL(path string, policy SyncPolicy, faults *limits.Plan, o *obs.Obs) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, path: path, policy: policy, faults: faults, o: o}, nil
}

// append writes one record and makes it durable per the sync policy. The
// "wal.append" fault point fires before the write and the "wal.sync" point
// between the write and the fsync; an injected crash leaves the file exactly
// as a killed process would (nothing, a torn prefix, or a bit-flipped
// record) and surfaces as an error wrapping limits.ErrCrash.
func (w *wal) append(r Record) error {
	buf := EncodeRecord(r)
	if err := limits.Hit(w.faults, "wal.append"); err != nil {
		var ce *limits.CrashError
		if errors.As(err, &ce) {
			w.crashWrite(ce.Mode, buf)
		}
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.size += int64(len(buf))
	w.appendedAt = time.Now()
	w.syncedAt = time.Time{}
	if err := limits.Hit(w.faults, "wal.sync"); err != nil {
		// The record is fully written; whether it survives the simulated
		// crash durably is exactly the ambiguity a real crash leaves.
		return err
	}
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
		w.syncedAt = time.Now()
		w.o.Observe("wal.sync_us", float64(w.syncedAt.Sub(w.appendedAt).Microseconds()))
	} else {
		w.dirty.Store(true)
	}
	return nil
}

// crashWrite emulates what a death mid-append leaves behind.
func (w *wal) crashWrite(mode limits.CrashMode, buf []byte) {
	switch mode {
	case limits.CrashTorn:
		cut := len(buf) / 2
		if cut == 0 {
			cut = 1
		}
		if _, err := w.f.Write(buf[:cut]); err == nil {
			w.size += int64(cut)
		}
	case limits.CrashFlip:
		// Flip one bit inside the checksummed payload so recovery must
		// reject the record on CRC, not framing.
		flipped := make([]byte, len(buf))
		copy(flipped, buf)
		flipped[len(flipped)-1] ^= 0x01
		if _, err := w.f.Write(flipped); err == nil {
			w.size += int64(len(flipped))
		}
	}
}

// sync flushes pending appends if any (interval policy tick).
func (w *wal) sync() error {
	if w.dirty.Swap(false) {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.o.Observe("wal.sync_us", float64(time.Since(start).Microseconds()))
	}
	return nil
}

// reset truncates the log to zero after a checkpoint made it redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("store: wal reset: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal reset: %w", err)
	}
	w.size = 0
	w.dirty.Store(false)
	return nil
}

// close releases the file, syncing first for a clean shutdown.
func (w *wal) close() error {
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
