// Tests for the store's replication surface (Subscribe / ApplyReplicated /
// InstallSnapshot / WaitEpoch) and the read-only degrade path for real WAL
// I/O failures.
package store_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/limits"
	"repro/internal/rdf"
	"repro/internal/store"
)

func mustInsert(t *testing.T, s *store.Store, triples ...rdf.Triple) store.Epoch {
	t.Helper()
	e, _, err := s.Insert(triples)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	return e
}

func memStore(t *testing.T, cfg store.Config) *store.Store {
	t.Helper()
	s, _, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// A real (non-injected, non-crash) WAL append error must degrade the store
// to read-only: the failed write and all later writes report a typed
// limits.ErrStorage, reads keep serving the last epoch, and reopening the
// directory recovers.
func TestReadOnlyDegradeOnWALError(t *testing.T) {
	dir := t.TempDir()
	enospc := errors.New("write wal.log: no space left on device")
	plan := limits.NewPlan(limits.Fault{Point: "wal.append", After: 1, Err: enospc})
	s, _, err := store.Open(store.Config{Dir: dir, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	e1 := mustInsert(t, s, rdf.T("a", "p", "b"))

	_, _, err = s.Insert([]rdf.Triple{rdf.T("c", "p", "d")})
	if !errors.Is(err, limits.ErrStorage) {
		t.Fatalf("failed write must wrap limits.ErrStorage, got %v", err)
	}
	var se *store.StorageError
	if !errors.As(err, &se) || !errors.Is(se.Cause, enospc) {
		t.Fatalf("want *StorageError carrying the I/O cause, got %v", err)
	}
	if !s.ReadOnly() {
		t.Fatal("store must latch read-only after a WAL I/O failure")
	}

	// Later writes hit the latch (typed the same way), reads keep serving.
	if _, _, err := s.Insert([]rdf.Triple{rdf.T("e", "p", "f")}); !errors.Is(err, limits.ErrStorage) {
		t.Fatalf("latched write = %v, want ErrStorage", err)
	}
	if cur := s.Current(); cur.Seq != e1.Seq || !cur.Graph.Has(rdf.T("a", "p", "b")) {
		t.Fatalf("reads must keep serving the last committed epoch, got seq %d", cur.Seq)
	}
	s.Close()

	// A restart (with the condition fixed) recovers writes.
	s2, rec, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Epoch != e1.Seq || s2.ReadOnly() {
		t.Fatalf("reopen: epoch=%d readonly=%v", rec.Epoch, s2.ReadOnly())
	}
	mustInsert(t, s2, rdf.T("c", "p", "d"))
}

// An injected transient fault (plain ActError) is not an I/O failure and
// must not latch read-only — the retry layer upstream absorbs it.
func TestInjectedTransientDoesNotLatchReadOnly(t *testing.T) {
	plan := limits.NewPlan(limits.Fault{Point: "wal.append", Times: 1, Action: limits.ActError})
	s := memStore(t, store.Config{Dir: t.TempDir(), Faults: plan})
	_, _, err := s.Insert([]rdf.Triple{rdf.T("a", "p", "b")})
	if !errors.Is(err, limits.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if s.ReadOnly() {
		t.Fatal("injected transient must not latch read-only")
	}
	mustInsert(t, s, rdf.T("a", "p", "b"))
}

// Subscribe pre-buffers the retained backlog and then delivers live
// commits in epoch order.
func TestSubscribeTail(t *testing.T) {
	s := memStore(t, store.Config{})
	mustInsert(t, s, rdf.T("a", "p", "b"))
	mustInsert(t, s, rdf.T("b", "p", "c"))

	sub, snap, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if snap != nil {
		t.Fatalf("backlog within retention must not need a snapshot (got seq %d)", snap.Seq)
	}
	mustInsert(t, s, rdf.T("c", "p", "d"))

	for want := uint64(1); want <= 3; want++ {
		select {
		case r := <-sub.Records():
			if r.Epoch != want || r.Op != store.OpInsert {
				t.Fatalf("record %d: epoch=%d op=%d", want, r.Epoch, r.Op)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for record %d", want)
		}
	}

	// Subscribing from a future epoch is an error.
	if _, _, err := s.Subscribe(99); !errors.Is(err, store.ErrFutureEpoch) {
		t.Fatalf("future subscribe = %v, want ErrFutureEpoch", err)
	}
}

// A subscriber older than the retained changelog gets a snapshot to
// install, and its record stream resumes after the snapshot epoch.
func TestSubscribeSnapshotFallback(t *testing.T) {
	s := memStore(t, store.Config{ReplLog: 2})
	for i := 0; i < 5; i++ {
		mustInsert(t, s, rdf.T(fmt.Sprintf("s%d", i), "p", "o"))
	}
	sub, snap, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if snap == nil || snap.Seq != 5 || snap.Graph.Len() != 5 {
		t.Fatalf("want full snapshot at epoch 5, got %+v", snap)
	}
	select {
	case r := <-sub.Records():
		t.Fatalf("no backlog expected after a snapshot handoff, got epoch %d", r.Epoch)
	default:
	}

	// Within retention: records, no snapshot.
	sub2, snap2, err := s.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if snap2 != nil {
		t.Fatal("epoch 4 is within retention; no snapshot expected")
	}
	if r := <-sub2.Records(); r.Epoch != 5 {
		t.Fatalf("backlog must resume at epoch 5, got %d", r.Epoch)
	}
}

// A subscriber that stops draining is dropped with Overflowed set rather
// than stalling writers.
func TestSubscribeOverflow(t *testing.T) {
	s := memStore(t, store.Config{})
	sub, _, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		mustInsert(t, s, rdf.T(fmt.Sprintf("s%d", i), "p", "o"))
	}
	deadline := time.After(time.Second)
	for !sub.Overflowed() {
		select {
		case <-deadline:
			t.Fatal("sub never overflowed")
		case <-time.After(time.Millisecond):
		}
	}
	// The channel must be closed (drain whatever was buffered first).
	for range sub.Records() {
	}
}

// ApplyReplicated replays a primary's stream: duplicates skip idempotently,
// gaps are typed errors, and the replica converges to the same graph at the
// same epoch.
func TestApplyReplicatedStream(t *testing.T) {
	primary := memStore(t, store.Config{})
	sub, _, err := primary.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	mustInsert(t, primary, rdf.T("a", "p", "b"), rdf.T("b", "p", "c"))
	if _, _, err := primary.Delete([]rdf.Triple{rdf.T("a", "p", "b")}); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, primary, rdf.T("c", "p", "d"))

	var recs []store.Record
	for len(recs) < 3 {
		recs = append(recs, <-sub.Records())
	}

	replica := memStore(t, store.Config{})
	for _, r := range recs {
		e, applied, err := replica.ApplyReplicated(r)
		if err != nil || !applied || e.Seq != r.Epoch {
			t.Fatalf("apply epoch %d: e=%d applied=%v err=%v", r.Epoch, e.Seq, applied, err)
		}
	}
	if !replica.Current().Graph.Equal(primary.Current().Graph) {
		t.Fatal("replica must converge to the primary's graph")
	}

	// Duplicate: skipped, epoch unchanged — NetDup faults are harmless.
	e, applied, err := replica.ApplyReplicated(recs[1])
	if err != nil || applied || e.Seq != 3 {
		t.Fatalf("dup apply: e=%d applied=%v err=%v", e.Seq, applied, err)
	}
	// Gap: typed error, state unchanged.
	_, _, err = replica.ApplyReplicated(store.Record{Op: store.OpInsert, Epoch: 9, Text: []byte("x p y .\n")})
	var ge *store.GapError
	if !errors.Is(err, store.ErrEpochGap) || !errors.As(err, &ge) || ge.Want != 4 || ge.Got != 9 {
		t.Fatalf("gap apply = %v", err)
	}

	// A no-op batch still advances the epoch: replicas track the primary's
	// numbering exactly.
	e, applied, err = replica.ApplyReplicated(store.Record{Op: store.OpInsert, Epoch: 4, Text: []byte(`<c> <p> <d> .` + "\n")})
	if err != nil || !applied || e.Seq != 4 {
		t.Fatalf("no-op apply: e=%d applied=%v err=%v", e.Seq, applied, err)
	}
}

// InstallSnapshot clobbers replica state, and a durable replica checkpoints
// it so the installed state survives a restart.
func TestInstallSnapshotDurable(t *testing.T) {
	primary := memStore(t, store.Config{})
	mustInsert(t, primary, rdf.T("a", "p", "b"), rdf.T("b", "p", "c"))
	mustInsert(t, primary, rdf.T("c", "p", "d"))
	frame := store.SnapshotRecord(primary.Current())
	epoch, g, err := store.DecodeSnapshot(frame)
	if err != nil || epoch != 2 || g.Len() != 3 {
		t.Fatalf("snapshot round-trip: epoch=%d len=%d err=%v", epoch, g.Len(), err)
	}

	dir := t.TempDir()
	replica, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, replica, rdf.T("stale", "p", "state")) // diverged state to clobber
	if _, err := replica.InstallSnapshot(epoch, g); err != nil {
		t.Fatal(err)
	}
	if cur := replica.Current(); cur.Seq != 2 || !cur.Graph.Equal(g) {
		t.Fatalf("installed state: seq=%d len=%d", cur.Seq, cur.Graph.Len())
	}
	replica.Close()

	re, rec, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec.Epoch != 2 || !re.Current().Graph.Equal(g) {
		t.Fatalf("reopen after install: epoch=%d triples=%d", rec.Epoch, rec.Triples)
	}
}

// WaitEpoch is the bounded-staleness primitive: it returns when the epoch
// arrives, types a deadline miss, and fails fast on a closed store.
func TestWaitEpoch(t *testing.T) {
	s := memStore(t, store.Config{})
	done := make(chan error, 1)
	go func() { done <- s.WaitEpoch(context.Background(), 2) }()
	mustInsert(t, s, rdf.T("a", "p", "b"))
	mustInsert(t, s, rdf.T("b", "p", "c"))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait for reached epoch: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitEpoch never returned")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.WaitEpoch(ctx, 99); !errors.Is(err, limits.ErrDeadline) {
		t.Fatalf("deadline wait = %v, want ErrDeadline", err)
	}

	s.Close()
	if err := s.WaitEpoch(context.Background(), 99); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("closed wait = %v, want ErrClosed", err)
	}
}

// A bootstrap produces no changelog record, so subscribers from before it
// must be dropped (they resubscribe and get the snapshot path) and
// subscribers from after it must resync via snapshot rather than wait for
// an epoch-1 record that never comes.
func TestSubscribeAcrossBootstrap(t *testing.T) {
	s := memStore(t, store.Config{})
	early, _, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	g.Add(rdf.T("a", "p", "b"))
	if _, err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-early.Records():
		if ok {
			t.Fatal("pre-bootstrap subscriber received a record")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pre-bootstrap subscriber was not dropped")
	}
	sub, snap, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if snap == nil || snap.Seq != 1 || !snap.Graph.Has(rdf.T("a", "p", "b")) {
		t.Fatalf("post-bootstrap subscribe = %+v, want snapshot at epoch 1", snap)
	}
	// WaitEpoch observers see the bootstrap too.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.WaitEpoch(ctx, 1); err != nil {
		t.Fatal(err)
	}
}
