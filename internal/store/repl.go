package store

// The replication-facing surface of the store. A primary exposes its commit
// stream through Subscribe; internal/repl ships the records over HTTP and a
// replica folds them back in through ApplyReplicated / InstallSnapshot.
// Epoch numbering is the correctness contract end to end: a replica at
// epoch E holds bit-identical triples to the primary at epoch E, so the
// paper's certain-answer semantics gives identical query answers at equal
// epochs.
//
// This file also owns the read-only degrade path (satellite of the same
// PR): a real WAL append/fsync I/O error — ENOSPC-class, as opposed to an
// injected crash — must not take reads down with the writes. The store
// latches readonly, keeps serving the last committed epoch, and fails
// further writes with a *StorageError wrapping limits.ErrStorage, which the
// serve layer maps to 503 + Retry-After.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/limits"
	"repro/internal/rdf"
)

// subBuf is the live-tail channel capacity a subscription gets beyond its
// catch-up backlog. A subscriber that falls further behind than this without
// draining is dropped (Overflowed) and must resubscribe.
const subBuf = 256

// Replication errors.
var (
	// ErrEpochGap reports an ApplyReplicated record that is neither a
	// duplicate nor the next epoch: the stream skipped records and the
	// replica must resynchronize.
	ErrEpochGap = errors.New("store: replication epoch gap")
	// ErrFutureEpoch reports a Subscribe from an epoch the store has not
	// reached.
	ErrFutureEpoch = errors.New("store: subscribe from future epoch")
)

// GapError carries the epochs around a replication gap.
type GapError struct {
	// Want is the next epoch the store can apply (current + 1).
	Want uint64
	// Got is the record epoch that arrived instead.
	Got uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("store: replication epoch gap: want %d, got %d", e.Want, e.Got)
}

func (e *GapError) Unwrap() error { return ErrEpochGap }

// StorageError is a durable-write failure: a real WAL append or fsync I/O
// error (as opposed to an injected crash or network fault). It wraps
// limits.ErrStorage. A nil Cause means the store was already latched
// read-only by an earlier failure.
type StorageError struct {
	// Op is the failed operation, e.g. "wal append".
	Op string
	// Cause is the underlying I/O error; nil on the latched path.
	Cause error
}

func (e *StorageError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("store: %s failed, store is now read-only: %v", e.Op, e.Cause)
	}
	return "store: read-only (an earlier WAL write failed); reads keep serving"
}

func (e *StorageError) Unwrap() error { return limits.ErrStorage }

// writeFailed classifies a WAL write error. Injected crashes latch the
// crashed state (simulated process death: nothing works until reopen);
// injected transient and network faults pass through untouched; anything
// else is a real I/O failure that degrades the store to read-only.
func (s *Store) writeFailed(op string, err error) error {
	s.noteCrash(err)
	if errors.Is(err, limits.ErrCrash) || errors.Is(err, limits.ErrInjected) || errors.Is(err, limits.ErrNet) {
		return err
	}
	s.readonly.Store(true)
	return &StorageError{Op: op, Cause: err}
}

// ReadOnly reports whether a WAL I/O failure degraded the store to
// read-only. Reads keep serving; restart the process (with the underlying
// condition fixed, e.g. disk space freed) to recover writes.
func (s *Store) ReadOnly() bool { return s.readonly.Load() }

// Faults exposes the store's fault plan so the replication layer can arm
// its own points ("repl.send") from the same plan.
func (s *Store) Faults() *limits.Plan { return s.cfg.Faults }

// Sub is a live subscription to the commit stream. Records arrive on
// Records() in epoch order; the channel closes when the subscriber falls
// too far behind (Overflowed reports true — resubscribe), on
// InstallSnapshot (stream continuity is broken), or when the store closes.
type Sub struct {
	st   *Store
	ch   chan Record
	once sync.Once
	over atomic.Bool
}

// Records is the subscription's record channel.
func (u *Sub) Records() <-chan Record { return u.ch }

// Overflowed reports whether the store dropped this subscription because
// the subscriber did not keep up.
func (u *Sub) Overflowed() bool { return u.over.Load() }

// Close detaches the subscription and closes its channel.
func (u *Sub) Close() {
	u.st.mu.Lock()
	defer u.st.mu.Unlock()
	u.st.dropSubLocked(u)
}

// Subscribe attaches a commit-stream subscription resuming after epoch
// `from` (i.e. the first record delivered is epoch from+1). When `from` is
// older than the retained changelog, record-by-record catch-up is not
// possible: the returned *Epoch is non-nil and holds the current state the
// subscriber must install first, with the subscription resuming after it.
// Records already committed are pre-buffered, so they are never missed
// between the Subscribe and the first channel read.
func (s *Store) Subscribe(from uint64) (*Sub, *Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return nil, nil, err
	}
	cur := s.cur.Load()
	if from > cur.Seq {
		return nil, nil, fmt.Errorf("%w: %d > %d", ErrFutureEpoch, from, cur.Seq)
	}
	var snapshot *Epoch
	var backlog []Record
	if from < s.clFloor {
		snapshot = cur // too far behind: full state transfer, resume at cur
	} else {
		backlog = s.changelog[from-s.clFloor:]
	}
	u := &Sub{st: s, ch: make(chan Record, len(backlog)+subBuf)}
	for _, r := range backlog {
		u.ch <- r
	}
	s.subs[u] = struct{}{}
	return u, snapshot, nil
}

// noteCommitLocked records a committed mutation in the changelog, fans it
// out to live subscriptions, and wakes epoch waiters. Caller holds s.mu and
// has already swapped the epoch in.
func (s *Store) noteCommitLocked(r Record) {
	if s.cfg.ReplLog > 0 {
		s.changelog = append(s.changelog, r)
		if over := len(s.changelog) - s.cfg.ReplLog; over > 0 {
			s.clFloor += uint64(over)
			s.changelog = append(s.changelog[:0:0], s.changelog[over:]...)
		}
	} else {
		s.clFloor = r.Epoch
	}
	for u := range s.subs {
		select {
		case u.ch <- r:
		default:
			u.over.Store(true)
			s.dropSubLocked(u)
		}
	}
	s.wakeWaitersLocked()
}

func (s *Store) dropSubLocked(u *Sub) {
	if _, ok := s.subs[u]; ok {
		delete(s.subs, u)
	}
	u.once.Do(func() { close(u.ch) })
}

func (s *Store) dropAllSubsLocked() {
	for u := range s.subs {
		s.dropSubLocked(u)
	}
}

func (s *Store) wakeWaitersLocked() {
	close(s.watch)
	s.watch = make(chan struct{})
}

// WaitEpoch blocks until the store's epoch reaches seq, the context ends,
// or the store closes. It is the bounded-staleness primitive: a replica
// holding a client's min-epoch token waits here up to the staleness
// deadline. Context expiry returns a typed limits error (ErrDeadline /
// ErrCanceled).
func (s *Store) WaitEpoch(ctx context.Context, seq uint64) error {
	for {
		if s.cur.Load().Seq >= seq {
			return nil
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		ch := s.watch
		reached := s.cur.Load().Seq >= seq
		s.mu.Unlock()
		if reached {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			if kind := limits.CtxKind(ctx); kind != nil {
				return limits.NewError(kind, limits.Truncation{})
			}
			return ctx.Err()
		}
	}
}

// ApplyReplicated folds one primary-shipped mutation record into the store.
// A record at or below the current epoch is a duplicate and is skipped
// idempotently (applied=false) — receiver-side dedup is what makes injected
// NetDup faults harmless. A record more than one epoch ahead is a *GapError
// and the replica must resynchronize. The record is WAL-appended locally
// (replica durability: promotion serves from the recovered WAL), and unlike
// Insert/Delete the epoch advances even for a no-op batch, because the
// replica must track the primary's epoch numbering exactly.
func (s *Store) ApplyReplicated(r Record) (Epoch, bool, error) {
	start := time.Now()
	if r.Op != OpInsert && r.Op != OpDelete {
		return Epoch{}, false, fmt.Errorf("store: apply replicated: opcode %d is not a mutation", r.Op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableWrite(); err != nil {
		return Epoch{}, false, err
	}
	cur := s.cur.Load()
	if r.Epoch <= cur.Seq {
		return *cur, false, nil
	}
	if r.Epoch != cur.Seq+1 {
		return Epoch{}, false, &GapError{Want: cur.Seq + 1, Got: r.Epoch}
	}
	batch, err := rdf.ParseNTriplesString(string(r.Text))
	if err != nil {
		return Epoch{}, false, fmt.Errorf("store: apply replicated: bad record payload: %w", err)
	}
	next := cur.Graph.Clone()
	if r.Op == OpInsert {
		next.AddGraph(batch)
	} else {
		next.Remove(batch.Triples()...)
	}
	s.tl.StampAt(r.Epoch, StageStart, start)
	if s.w != nil {
		if err := s.w.append(r); err != nil {
			return Epoch{}, false, s.writeFailed("wal append", err)
		}
		s.tl.StampAt(r.Epoch, StageAppend, s.w.appendedAt)
		if !s.w.syncedAt.IsZero() {
			s.tl.StampAt(r.Epoch, StageSync, s.w.syncedAt)
		}
	} else {
		s.tl.Stamp(r.Epoch, StageAppend)
	}
	if err := limits.Hit(s.cfg.Faults, "store.swap"); err != nil {
		s.noteCrash(err)
		return Epoch{}, false, err
	}
	e := &Epoch{Seq: r.Epoch, Graph: next}
	s.cur.Store(e)
	s.batches++
	s.noteCommitLocked(r)
	if s.cfg.OnCommit != nil {
		s.cfg.OnCommit(CommitEvent{Epoch: e.Seq, Op: r.Op, Triples: batch.Triples()})
		s.tl.Stamp(e.Seq, StageMaintain)
	}
	s.tl.Stamp(e.Seq, StageApply)
	s.cfg.Obs.Observe("store.commit_visible_us", float64(time.Since(start).Microseconds()))
	if err := s.maybeCheckpointLocked(); err != nil {
		return *e, true, err
	}
	return *e, true, nil
}

// InstallSnapshot replaces the store's state wholesale with g at the given
// epoch — the replica-side counterpart of a stream snapshot frame. The
// changelog is cleared and live subscriptions are dropped (their stream
// continuity is gone); when durable, the state is checkpointed so the
// snapshot survives a restart without the shipped records.
func (s *Store) InstallSnapshot(epoch uint64, g *rdf.Graph) (Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableWrite(); err != nil {
		return Epoch{}, err
	}
	e := &Epoch{Seq: epoch, Graph: g.Clone()}
	s.cur.Store(e)
	s.changelog = nil
	s.clFloor = epoch
	s.dropAllSubsLocked()
	if s.cfg.OnCommit != nil {
		s.cfg.OnCommit(CommitEvent{Epoch: e.Seq, Op: OpSnapshot})
	}
	if s.w != nil {
		if err := s.checkpointLocked(); err != nil {
			return Epoch{}, err
		}
	}
	s.wakeWaitersLocked()
	return *e, nil
}

// SnapshotRecord renders an epoch as a stream snapshot frame (OpSnapshot,
// payload = the full graph in sorted N-Triples).
func SnapshotRecord(e Epoch) Record {
	return Record{Op: OpSnapshot, Epoch: e.Seq, Text: encodeTriples(e.Graph.SortedTriples())}
}

// DecodeSnapshot parses a stream snapshot frame back into its graph.
func DecodeSnapshot(r Record) (uint64, *rdf.Graph, error) {
	if r.Op != OpSnapshot {
		return 0, nil, fmt.Errorf("store: decode snapshot: opcode %d is not a snapshot", r.Op)
	}
	g, err := rdf.ParseNTriplesString(string(r.Text))
	if err != nil {
		return 0, nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	return r.Epoch, g, nil
}
