package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/limits"
	"repro/internal/rdf"
)

func tr(s, p, o string) rdf.Triple { return rdf.T(s, p, o) }

func openT(t *testing.T, cfg Config) (*Store, *Recovery) {
	t.Helper()
	st, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st, rec
}

func TestEncodeScanRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpInsert, Epoch: 1, Text: []byte("a p b .\n")},
		{Op: OpDelete, Epoch: 2, Text: []byte("a p b .\n")},
		{Op: OpInsert, Epoch: 3, Text: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = append(buf, EncodeRecord(r)...)
	}
	got, valid, damaged := scanRecords(buf)
	if damaged || valid != len(buf) {
		t.Fatalf("scan: valid=%d damaged=%v, want %d clean", valid, damaged, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("scan: %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Op != recs[i].Op || r.Epoch != recs[i].Epoch || !bytes.Equal(r.Text, recs[i].Text) {
			t.Fatalf("record %d: got %+v want %+v", i, r, recs[i])
		}
	}
}

func TestScanStopsAtDamage(t *testing.T) {
	whole := EncodeRecord(Record{Op: OpInsert, Epoch: 1, Text: []byte("a p b .\n")})
	cases := map[string][]byte{
		"torn header":  append(append([]byte{}, whole...), 0x01, 0x02),
		"torn payload": append(append([]byte{}, whole...), whole[:len(whole)-3]...),
		"bit flip": func() []byte {
			buf := append(append([]byte{}, whole...), whole...)
			buf[len(buf)-1] ^= 0x01
			// second record's epoch must continue the sequence
			binary.LittleEndian.PutUint64(buf[len(whole)+9:], 2)
			return buf
		}(),
		"bad opcode": func() []byte {
			second := EncodeRecord(Record{Op: 9, Epoch: 2, Text: []byte("x")})
			return append(append([]byte{}, whole...), second...)
		}(),
		"length bomb": func() []byte {
			bomb := make([]byte, recHeaderLen)
			binary.LittleEndian.PutUint32(bomb, uint32(maxRecordLen)+1)
			return append(append([]byte{}, whole...), bomb...)
		}(),
		"epoch gap": func() []byte {
			second := EncodeRecord(Record{Op: OpInsert, Epoch: 5, Text: []byte("x p y .\n")})
			return append(append([]byte{}, whole...), second...)
		}(),
	}
	for name, buf := range cases {
		recs, valid, damaged := scanRecords(buf)
		if !damaged {
			t.Errorf("%s: scan reported clean", name)
		}
		if valid != len(whole) {
			t.Errorf("%s: valid=%d, want %d", name, valid, len(whole))
		}
		if len(recs) != 1 {
			t.Errorf("%s: %d records survived, want 1", name, len(recs))
		}
	}
}

func TestBootstrapInsertDeleteEpochs(t *testing.T) {
	st, rec := openT(t, Config{Dir: t.TempDir()})
	if rec.Epoch != 0 || rec.Records != 0 {
		t.Fatalf("fresh dir recovery = %+v, want empty", rec)
	}
	base := rdf.NewGraph(tr("a", "p", "b"))
	e, err := st.Bootstrap(base)
	if err != nil || e.Seq != 1 {
		t.Fatalf("Bootstrap: epoch %d err %v", e.Seq, err)
	}
	if _, err := st.Bootstrap(base); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("second Bootstrap err = %v, want ErrNotEmpty", err)
	}

	pinned := st.Current() // a reader's snapshot at epoch 1

	e2, n, err := st.Insert([]rdf.Triple{tr("b", "p", "c"), tr("a", "p", "b")})
	if err != nil || e2.Seq != 2 || n != 1 {
		t.Fatalf("Insert: epoch %d added %d err %v", e2.Seq, n, err)
	}
	e3, n, err := st.Delete([]rdf.Triple{tr("a", "p", "b"), tr("nope", "p", "x")})
	if err != nil || e3.Seq != 3 || n != 1 {
		t.Fatalf("Delete: epoch %d removed %d err %v", e3.Seq, n, err)
	}

	// No-op batches commit nothing.
	same, n, err := st.Insert([]rdf.Triple{tr("b", "p", "c")})
	if err != nil || n != 0 || same.Seq != 3 {
		t.Fatalf("duplicate insert: epoch %d added %d err %v", same.Seq, n, err)
	}

	// The pinned epoch-1 snapshot is untouched by the later commits.
	if pinned.Seq != 1 || pinned.Graph.Len() != 1 || !pinned.Graph.Has(tr("a", "p", "b")) {
		t.Fatalf("pinned epoch mutated: %+v", pinned)
	}
	cur := st.Current()
	if cur.Graph.Has(tr("a", "p", "b")) || !cur.Graph.Has(tr("b", "p", "c")) {
		t.Fatalf("current graph wrong: %s", cur.Graph)
	}
}

// TestDeleteAbsentTripleNoOp pins the regression that deleting a triple that
// was never inserted is a pure no-op: acknowledged at the current epoch with
// zero removals, no WAL record appended, and no commit event delivered to a
// wired OnCommit observer (the materializer's epoch tracking relies on no-op
// batches committing nothing).
func TestDeleteAbsentTripleNoOp(t *testing.T) {
	dir := t.TempDir()
	var events []CommitEvent
	st, _ := openT(t, Config{Dir: dir, OnCommit: func(ev CommitEvent) { events = append(events, ev) }})
	if _, err := st.Bootstrap(rdf.NewGraph(tr("a", "p", "b"))); err != nil {
		t.Fatal(err)
	}
	before := st.Current()
	evBefore := len(events)

	e, n, err := st.Delete([]rdf.Triple{tr("never", "p", "x")})
	if err != nil {
		t.Fatalf("delete absent: %v", err)
	}
	if n != 0 || e.Seq != before.Seq {
		t.Fatalf("delete absent: removed %d at epoch %d, want no-op ack at epoch %d", n, e.Seq, before.Seq)
	}
	// A mixed batch where only part is absent still commits, removing just
	// the present triple.
	e2, n, err := st.Delete([]rdf.Triple{tr("never", "p", "x"), tr("a", "p", "b")})
	if err != nil || n != 1 || e2.Seq != before.Seq+1 {
		t.Fatalf("mixed delete: removed %d at epoch %d err %v, want 1 at %d", n, e2.Seq, err, before.Seq+1)
	}
	if got := len(events) - evBefore; got != 1 {
		t.Fatalf("%d commit events fired, want 1 (the no-op must not be observed)", got)
	}

	// The no-op left no WAL record behind: reopening replays exactly the one
	// real delete on top of the bootstrap snapshot.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := openT(t, Config{Dir: dir})
	if rec.Records != 1 || rec.Epoch != before.Seq+1 {
		t.Fatalf("recovery = %+v, want 1 record to epoch %d", rec, before.Seq+1)
	}
	if st2.Current().Graph.Len() != 0 {
		t.Fatalf("recovered graph not empty: %s", st2.Current().Graph)
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, Config{Dir: dir, CheckpointEvery: -1, CheckpointBytes: -1})
	if _, err := st.Bootstrap(rdf.NewGraph(tr("a", "p", "b"))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Insert([]rdf.Triple{tr("b", "p", "c")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Delete([]rdf.Triple{tr("a", "p", "b")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, Config{Dir: dir})
	if rec.SnapshotEpoch != 1 || rec.Records != 2 || rec.Epoch != 3 || rec.DamagedTail {
		t.Fatalf("recovery = %+v, want snapshot 1 + 2 records to epoch 3", rec)
	}
	g := st2.Current().Graph
	if g.Len() != 1 || !g.Has(tr("b", "p", "c")) {
		t.Fatalf("recovered graph wrong: %s", g)
	}
}

func TestCheckpointResetsWALAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, Config{Dir: dir, CheckpointEvery: -1, CheckpointBytes: -1})
	if _, err := st.Bootstrap(rdf.NewGraph(tr("a", "p", "b"))); err != nil {
		t.Fatal(err)
	}
	for _, x := range []string{"c", "d", "e"} {
		if _, _, err := st.Insert([]rdf.Triple{tr(x, "p", "b")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal after checkpoint: %v size %d, want 0", err, fi.Size())
	}
	if _, _, err := st.Insert([]rdf.Triple{tr("f", "p", "b")}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := openT(t, Config{Dir: dir})
	if rec.SnapshotEpoch != 4 || rec.Records != 1 || rec.Epoch != 5 {
		t.Fatalf("recovery = %+v, want snapshot 4, 1 record, epoch 5", rec)
	}
	if st2.Current().Graph.Len() != 5 {
		t.Fatalf("recovered %d triples, want 5", st2.Current().Graph.Len())
	}
}

func TestAutoCheckpointByCount(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, Config{Dir: dir, CheckpointEvery: 2, CheckpointBytes: -1})
	if _, err := st.Bootstrap(rdf.NewGraph()); err != nil {
		t.Fatal(err)
	}
	for i, x := range []string{"c", "d"} {
		if _, _, err := st.Insert([]rdf.Triple{tr(x, "p", "b")}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Two batches committed: the auto-checkpoint must have reset the WAL.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal after auto checkpoint: %v size %d, want 0", err, fi.Size())
	}
	snapEpoch, g, err := readSnapshot(filepath.Join(dir, snapshotName))
	if err != nil || snapEpoch != 3 || g.Len() != 2 {
		t.Fatalf("snapshot epoch %d len %d err %v, want epoch 3 len 2", snapEpoch, g.Len(), err)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, Config{Dir: dir, CheckpointEvery: -1, CheckpointBytes: -1})
	st.Bootstrap(rdf.NewGraph(tr("a", "p", "b")))
	st.Insert([]rdf.Triple{tr("b", "p", "c")})
	st.Close()

	// Append garbage simulating a torn write at the tail.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cleanSize, _ := f.Seek(0, 2)
	f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe})
	f.Close()

	st2, rec := openT(t, Config{Dir: dir})
	if !rec.DamagedTail || rec.TruncatedAt != cleanSize {
		t.Fatalf("recovery = %+v, want damaged tail truncated at %d", rec, cleanSize)
	}
	if fi, _ := os.Stat(walPath); fi.Size() != cleanSize {
		t.Fatalf("wal size after truncation = %d, want %d", fi.Size(), cleanSize)
	}
	if !st2.Current().Graph.Has(tr("b", "p", "c")) {
		t.Fatalf("acknowledged record lost with the torn tail")
	}

	// The truncated store keeps working and a further reopen is clean.
	if _, _, err := st2.Insert([]rdf.Triple{tr("c", "p", "d")}); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, rec3 := openT(t, Config{Dir: dir})
	if rec3.DamagedTail {
		t.Fatalf("second recovery still damaged: %+v", rec3)
	}
	if !st3.Current().Graph.Has(tr("c", "p", "d")) {
		t.Fatalf("post-truncation insert lost")
	}
}

func TestCrashPointsLatchStore(t *testing.T) {
	for _, tc := range []struct {
		point string
		mode  limits.CrashMode
	}{
		{"wal.append", limits.CrashClean},
		{"wal.append", limits.CrashTorn},
		{"wal.append", limits.CrashFlip},
		{"wal.sync", limits.CrashClean},
		{"store.swap", limits.CrashClean},
	} {
		t.Run(tc.point+"/"+tc.mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			seed, _, _ := Open(Config{Dir: dir})
			seed.Bootstrap(rdf.NewGraph(tr("a", "p", "b")))
			seed.Close()

			plan := limits.NewPlan(limits.Fault{Point: tc.point, Action: limits.ActCrash, Mode: tc.mode})
			st, _ := openT(t, Config{Dir: dir, Faults: plan})
			_, _, err := st.Insert([]rdf.Triple{tr("b", "p", "c")})
			if !errors.Is(err, limits.ErrCrash) {
				t.Fatalf("Insert err = %v, want ErrCrash", err)
			}
			if !st.Crashed() {
				t.Fatal("store not latched crashed")
			}
			if _, _, err := st.Insert([]rdf.Triple{tr("c", "p", "d")}); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash Insert err = %v, want ErrCrashed", err)
			}
			if err := st.Close(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash Close err = %v, want ErrCrashed", err)
			}

			// Restart: recovery must never error, never panic, and must hold
			// the acknowledged base; the crashed batch is absent or whole.
			st2, rec := openT(t, Config{Dir: dir})
			g := st2.Current().Graph
			if !g.Has(tr("a", "p", "b")) {
				t.Fatalf("%s: acknowledged triple lost", tc.point)
			}
			switch tc.point {
			case "wal.append":
				// Died before/during the record write: the batch must be gone
				// and any torn/flipped bytes truncated away.
				if g.Has(tr("b", "p", "c")) {
					t.Fatalf("unacknowledged torn batch surfaced")
				}
				if tc.mode != limits.CrashClean && !rec.DamagedTail {
					t.Fatalf("recovery = %+v, want damaged tail", rec)
				}
			case "wal.sync", "store.swap":
				// Record fully written before the crash: whole-or-absent, and
				// with the bytes in the OS cache it is recovered whole here.
				if !g.Has(tr("b", "p", "c")) {
					t.Fatalf("whole logged batch lost")
				}
			}
		})
	}
}

func TestCrashDuringCheckpointSkipsStaleRecords(t *testing.T) {
	dir := t.TempDir()
	seed, _, _ := Open(Config{Dir: dir, CheckpointEvery: -1, CheckpointBytes: -1})
	seed.Bootstrap(rdf.NewGraph(tr("a", "p", "b")))
	seed.Insert([]rdf.Triple{tr("b", "p", "c")})
	seed.Insert([]rdf.Triple{tr("c", "p", "d")})
	seed.Close()

	// Crash between the snapshot rename and the WAL reset: the snapshot is
	// new but the WAL still holds the (now stale) records.
	plan := limits.NewPlan(limits.Fault{Point: "wal.checkpoint", Action: limits.ActCrash})
	st, _ := openT(t, Config{Dir: dir, Faults: plan, CheckpointEvery: -1, CheckpointBytes: -1})
	if err := st.Checkpoint(); !errors.Is(err, limits.ErrCrash) {
		t.Fatalf("Checkpoint err = %v, want ErrCrash", err)
	}
	if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() == 0 {
		t.Fatal("crash point fired after WAL reset; want before")
	}

	st2, rec := openT(t, Config{Dir: dir})
	if rec.SnapshotEpoch != 3 || rec.Skipped != 2 || rec.Records != 0 {
		t.Fatalf("recovery = %+v, want snapshot 3 with 2 stale records skipped", rec)
	}
	g := st2.Current().Graph
	if g.Len() != 3 || !g.Has(tr("c", "p", "d")) {
		t.Fatalf("recovered graph wrong: %s", g)
	}
}

func TestInMemoryStore(t *testing.T) {
	st, rec := openT(t, Config{})
	if st.Durable() || st.AckDurable() || rec.Epoch != 0 {
		t.Fatalf("in-memory store claims durability")
	}
	st.Bootstrap(rdf.NewGraph(tr("a", "p", "b")))
	e, n, err := st.Insert([]rdf.Triple{tr("b", "p", "c")})
	if err != nil || e.Seq != 2 || n != 1 {
		t.Fatalf("in-memory insert: %v %d %v", e, n, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openT(t, Config{Dir: dir, Sync: pol, SyncInterval: 5 * time.Millisecond})
			st.Bootstrap(rdf.NewGraph())
			for i, x := range []string{"a", "b", "c"} {
				if _, _, err := st.Insert([]rdf.Triple{tr(x, "p", "o")}); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if pol == SyncInterval {
				time.Sleep(20 * time.Millisecond) // let the syncer tick
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, rec := openT(t, Config{Dir: dir})
			if st2.Current().Graph.Len() != 3 {
				t.Fatalf("policy %s: recovered %d triples, want 3 (%+v)", pol, st2.Current().Graph.Len(), rec)
			}
			if got := st2.AckDurable(); got != (pol == SyncAlways) && st2.cfg.Sync == pol {
				t.Fatalf("AckDurable = %v for policy %s", got, pol)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for name, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted junk")
	}
}

func TestConcurrentReadersDuringCommits(t *testing.T) {
	st, _ := openT(t, Config{Dir: t.TempDir(), CheckpointEvery: 8})
	st.Bootstrap(rdf.NewGraph(tr("a", "p", "b")))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := st.Current()
				// Epoch graphs are immutable: length is stable across reads.
				n := e.Graph.Len()
				for i := 0; i < 3; i++ {
					if e.Graph.Len() != n {
						t.Error("pinned epoch changed size")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 64; i++ {
		if _, _, err := st.Insert([]rdf.Triple{tr(fmt6(i), "p", "b")}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := st.Current().Graph.Len(); got != 65 {
		t.Fatalf("final graph %d triples, want 65", got)
	}
}

func fmt6(i int) string { return "s" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }
