package store

import (
	"bytes"
	"testing"
)

// FuzzWALRecord is the WAL framing fuzz target: arbitrary bytes must scan
// without panicking into a clean prefix + truncation point (re-scanning the
// prefix is clean and stable), and any payload must round-trip through
// EncodeRecord/scanRecords bit-identically.
func FuzzWALRecord(f *testing.F) {
	one := EncodeRecord(Record{Op: OpInsert, Epoch: 1, Text: []byte("a p b .\n")})
	two := append(append([]byte{}, one...), EncodeRecord(Record{Op: OpDelete, Epoch: 2, Text: []byte("a p b .\n")})...)
	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, damaged := scanRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid=%d out of range [0,%d]", valid, len(data))
		}
		if !damaged && valid != len(data) {
			t.Fatalf("clean scan consumed %d of %d bytes", valid, len(data))
		}
		// Truncate-at-first-bad-record must converge: the surviving prefix
		// rescans cleanly to the same records.
		recs2, valid2, damaged2 := scanRecords(data[:valid])
		if damaged2 || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("prefix rescan: valid=%d damaged=%v records=%d, want %d/false/%d",
				valid2, damaged2, len(recs2), valid, len(recs))
		}

		// Any byte string is a legal payload and must round-trip.
		buf := EncodeRecord(Record{Op: OpDelete, Epoch: 7, Text: data})
		rt, v, d := scanRecords(buf)
		if d || v != len(buf) || len(rt) != 1 {
			t.Fatalf("round-trip scan: valid=%d damaged=%v records=%d", v, d, len(rt))
		}
		if rt[0].Op != OpDelete || rt[0].Epoch != 7 || !bytes.Equal(rt[0].Text, data) {
			t.Fatalf("round-trip mismatch: %+v", rt[0])
		}
	})
}
