// Package store is the durable live write path of the engine: an
// epoch-versioned, copy-on-write RDF fact store in front of a length-
// prefixed, CRC32-checksummed write-ahead log with snapshot checkpoints and
// crash recovery.
//
// Readers call Current and get an immutable Epoch — a sequence number plus
// an rdf.Graph that is never mutated again — so any number of in-flight
// queries keep a consistent snapshot while writers commit. Writers
// (Insert/Delete) serialize on an internal lock: each batch is logged to
// the WAL, made durable per the sync policy, applied to a copy of the
// current graph, and only then swapped in as the next epoch. A batch is
// atomic: it is entirely visible from its epoch on, or not at all.
//
// Durability contract: with SyncAlways, a batch whose call returned is on
// stable storage before it is acknowledged, so an acknowledged write
// survives kill -9. With SyncInterval/SyncNone the acknowledgment races
// the flush and a crash may lose the tail — but recovery still never
// surfaces a torn batch: the WAL reader accepts the longest prefix of
// whole, checksum-valid records and truncates the file at the first bad
// byte (see wal.go). Checkpoints write the current graph as an N-Triples
// snapshot via an atomic rename, then reset the WAL; a crash between the
// two leaves stale records that recovery skips by epoch.
//
// The fault points "wal.append", "wal.sync", "wal.checkpoint", and
// "store.swap" (internal/limits, TRIQ_FAULTS) let tests kill the store at
// every stage of a commit, with torn-write and bit-flip corruption modes;
// after an injected crash the store refuses all further work and the test
// reopens the directory, exactly like a restarted process.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/rdf"
)

// SyncPolicy says when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before it is acknowledged: acknowledged
	// writes survive kill -9.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence (Config.SyncInterval); a
	// crash may lose the unsynced tail, never a torn batch.
	SyncInterval
	// SyncNone never fsyncs; the OS decides. Fastest, weakest.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the -wal-sync flag values to a policy.
func ParseSyncPolicy(name string) (SyncPolicy, error) {
	switch name {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval, or none)", name)
	}
}

// Config assembles a Store.
type Config struct {
	// Dir is the durability directory (WAL + snapshot). Empty means a pure
	// in-memory epoch store: mutations work, nothing survives the process.
	Dir string
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background flush cadence under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// CheckpointEvery triggers a snapshot checkpoint after this many
	// committed batches (default 1024; negative disables count-triggered
	// checkpoints).
	CheckpointEvery int
	// CheckpointBytes triggers a checkpoint once the WAL exceeds this size
	// (default 64 MiB; negative disables size-triggered checkpoints).
	CheckpointBytes int64
	// ReplLog is how many committed records the in-memory changelog retains
	// for replication catch-up (default 4096; negative disables retention, so
	// every reconnecting replica gets a full snapshot).
	ReplLog int
	// Faults arms the store's crash/corruption points for tests; the
	// process-global TRIQ_FAULTS plan is always consulted as well.
	Faults *limits.Plan
	// OnCommit, when set, observes every epoch swap: committed mutation
	// batches (OpInsert/OpDelete with the batch's triples) and wholesale
	// state replacements (OpSnapshot from Bootstrap/InstallSnapshot, no
	// triples — downstream state must be rebuilt from the graph). It runs
	// synchronously under the store's write lock, before the mutation is
	// acknowledged, so an incremental materialization folded here is never
	// behind an acknowledged write; it must be fast and must not call back
	// into the store. No-op primary batches commit no epoch and are not
	// reported; replicated no-op records are (the replica's epoch advances).
	OnCommit func(CommitEvent)
	// Obs, when set, receives the commit-pipeline telemetry: the per-stage
	// histograms wal.sync_us and store.commit_visible_us. Stage stamps in
	// the epoch Timeline are recorded regardless.
	Obs *obs.Obs
	// TimelineCap bounds the epoch timeline ring (default 512 recent
	// epochs).
	TimelineCap int
}

// CommitEvent describes one epoch swap for Config.OnCommit.
type CommitEvent struct {
	// Epoch is the sequence number just swapped in.
	Epoch uint64
	// Op is OpInsert or OpDelete for a mutation batch, OpSnapshot for a
	// wholesale state replacement (bootstrap or replica snapshot install).
	Op byte
	// Triples is the mutation batch as submitted (inserts may contain
	// duplicates of present triples, deletes may name absent ones — both are
	// no-ops at the graph level and folding them must tolerate that). Nil
	// for OpSnapshot events.
	Triples []rdf.Triple
}

func (c Config) withDefaults() Config {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1024
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 64 << 20
	}
	if c.ReplLog == 0 {
		c.ReplLog = 4096
	}
	return c
}

// Epoch is one committed version of the store: a sequence number and the
// immutable graph that version holds. Readers may keep an Epoch arbitrarily
// long; its Graph never changes.
type Epoch struct {
	// Seq is the commit sequence number, 0 for the empty pre-bootstrap store.
	Seq uint64
	// Graph is this epoch's triple set. It must not be mutated.
	Graph *rdf.Graph
}

// Recovery reports what Open found and did.
type Recovery struct {
	// SnapshotEpoch is the checkpoint the replay started from (0 = none).
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	// Epoch is the recovered store epoch after replay.
	Epoch uint64 `json:"epoch"`
	// Triples is the recovered graph size.
	Triples int `json:"triples"`
	// Records is the number of WAL records replayed onto the snapshot.
	Records int `json:"records_replayed"`
	// Skipped counts stale pre-snapshot records (a crash between a
	// checkpoint's snapshot rename and its WAL reset leaves them behind).
	Skipped int `json:"records_skipped,omitempty"`
	// DamagedTail is true when the WAL ended in a torn or corrupt record;
	// the file was truncated at TruncatedAt and the tail discarded.
	DamagedTail bool `json:"damaged_tail,omitempty"`
	// TruncatedAt is the byte offset the WAL was cut back to when
	// DamagedTail is set.
	TruncatedAt int64 `json:"truncated_at,omitempty"`
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Store errors.
var (
	// ErrCrashed reports that an injected crash point fired; the store
	// refuses all further work until reopened, like a dead process.
	ErrCrashed = errors.New("store: crashed by fault injection; reopen to recover")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("store: closed")
	// ErrNotEmpty reports a Bootstrap against a store that already has data.
	ErrNotEmpty = errors.New("store: bootstrap requires an empty store")
)

const (
	snapshotName = "snapshot.nt"
	walName      = "wal.log"
)

// Store is the epoch-versioned durable fact store. Safe for any number of
// concurrent readers (Current) alongside serialized writers.
type Store struct {
	cfg Config

	mu     sync.Mutex // serializes Insert/Delete/Checkpoint/Bootstrap/Close
	cur    atomic.Pointer[Epoch]
	w      *wal // nil in memory-only mode
	closed bool

	crashed  atomic.Bool
	readonly atomic.Bool // latched by a real WAL I/O failure; see repl.go
	batches  int         // committed batches since the last checkpoint

	// Replication state (repl.go): the changelog retains the last ReplLog
	// committed records — epochs clFloor+1 through cur.Seq, contiguous — so a
	// reconnecting replica can catch up without a snapshot; subs fan commits
	// out to live streams; watch is closed and remade on every epoch swap so
	// bounded-staleness readers can wait for an epoch.
	changelog []Record
	clFloor   uint64
	subs      map[*Sub]struct{}
	watch     chan struct{}

	stopSync chan struct{} // interval-syncer lifecycle
	syncWG   sync.WaitGroup

	// tl is the commit-pipeline flight recorder (timeline.go): per-epoch
	// stage stamps for /debug/epochs and the slow-mutation log.
	tl *Timeline
}

// Timeline exposes the store's epoch-stage flight recorder.
func (s *Store) Timeline() *Timeline { return s.tl }

// Open builds a Store from cfg.Dir: it loads the latest snapshot if any,
// replays the WAL past torn or corrupt tails (truncating the file at the
// first bad record), and installs the recovered epoch. A fresh or empty
// directory yields epoch 0 with an empty graph — seed it with Bootstrap.
func Open(cfg Config) (*Store, *Recovery, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:   cfg,
		subs:  make(map[*Sub]struct{}),
		watch: make(chan struct{}),
		tl:    newTimeline(cfg.TimelineCap),
	}
	rec := &Recovery{}
	start := time.Now()

	g := rdf.NewGraph()
	epoch := uint64(0)

	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: open: %w", err)
		}
		snapEpoch, snapGraph, err := readSnapshot(filepath.Join(cfg.Dir, snapshotName))
		if err != nil {
			return nil, nil, err
		}
		if snapGraph != nil {
			g = snapGraph
			epoch = snapEpoch
			rec.SnapshotEpoch = snapEpoch
		}

		w, err := openWAL(filepath.Join(cfg.Dir, walName), cfg.Sync, cfg.Faults, cfg.Obs)
		if err != nil {
			return nil, nil, fmt.Errorf("store: open wal: %w", err)
		}
		epoch, err = s.replay(w, g, epoch, rec)
		if err != nil {
			w.f.Close()
			return nil, nil, err
		}
		s.w = w
		if cfg.Sync == SyncInterval {
			s.stopSync = make(chan struct{})
			s.syncWG.Add(1)
			go s.syncLoop()
		}
	}

	s.cur.Store(&Epoch{Seq: epoch, Graph: g})
	s.clFloor = epoch // nothing retained yet: pre-open epochs need a snapshot
	rec.Epoch = epoch
	rec.Triples = g.Len()
	rec.Elapsed = time.Since(start)
	return s, rec, nil
}

// replay applies the WAL's valid prefix onto g in place and truncates the
// file past the first bad record. It returns the recovered epoch.
func (s *Store) replay(w *wal, g *rdf.Graph, snapEpoch uint64, rec *Recovery) (uint64, error) {
	buf, err := os.ReadFile(w.path)
	if err != nil {
		return 0, fmt.Errorf("store: read wal: %w", err)
	}
	recs, valid, damaged := scanRecords(buf)
	epoch := snapEpoch
	for _, r := range recs {
		if r.Epoch <= snapEpoch {
			// Stale record from before the snapshot: a crash interrupted a
			// checkpoint after the rename, before the WAL reset.
			rec.Skipped++
			continue
		}
		if r.Epoch != epoch+1 {
			// A gap between the snapshot and the first live record: the
			// remainder of the log is not continuable. Cut here.
			valid, damaged = int(r.off), true
			break
		}
		batch, perr := rdf.ParseNTriplesString(string(r.Text))
		if perr != nil {
			// Checksum-valid but unparseable — treat like corruption and
			// truncate; nothing after it can be trusted to apply in order.
			valid, damaged = int(r.off), true
			break
		}
		switch r.Op {
		case OpInsert:
			g.AddGraph(batch)
		case OpDelete:
			g.Remove(batch.Triples()...)
		}
		epoch = r.Epoch
		rec.Records++
	}
	if damaged {
		rec.DamagedTail = true
		rec.TruncatedAt = int64(valid)
		if err := w.f.Truncate(int64(valid)); err != nil {
			return 0, fmt.Errorf("store: truncate damaged wal tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: sync truncated wal: %w", err)
		}
	}
	if _, err := w.f.Seek(int64(valid), 0); err != nil {
		return 0, fmt.Errorf("store: seek wal end: %w", err)
	}
	w.size = int64(valid)
	return epoch, nil
}

// syncLoop is the SyncInterval background flusher.
func (s *Store) syncLoop() {
	defer s.syncWG.Done()
	t := time.NewTicker(s.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !s.crashed.Load() {
				if err := s.w.sync(); err != nil {
					// A background fsync failure is a real I/O error with no
					// caller to report to: degrade to read-only (repl.go).
					s.readonly.Store(true)
				}
			}
		case <-s.stopSync:
			return
		}
	}
}

// Current returns the live epoch. The returned graph is immutable; readers
// may hold it across any number of writer commits.
func (s *Store) Current() Epoch { return *s.cur.Load() }

// Durable reports whether the store persists mutations at all.
func (s *Store) Durable() bool { return s.w != nil }

// AckDurable reports whether an acknowledged mutation is guaranteed to be on
// stable storage (durable store with SyncAlways).
func (s *Store) AckDurable() bool { return s.w != nil && s.cfg.Sync == SyncAlways }

// Crashed reports whether an injected crash point fired.
func (s *Store) Crashed() bool { return s.crashed.Load() }

// Bootstrap seeds an empty store (epoch 0, no triples) with g as epoch 1
// and, when durable, checkpoints it so the seed does not depend on the WAL.
func (s *Store) Bootstrap(g *rdf.Graph) (Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableWrite(); err != nil {
		return Epoch{}, err
	}
	cur := s.cur.Load()
	if cur.Seq != 0 || cur.Graph.Len() != 0 {
		return Epoch{}, ErrNotEmpty
	}
	e := &Epoch{Seq: 1, Graph: g.Clone()}
	s.cur.Store(e)
	// A bootstrap has no changelog record; move the retention floor past it
	// so subscribers resync via snapshot, and drop any that subscribed to
	// the empty store (they would wait forever for a record that never
	// comes).
	s.clFloor = e.Seq
	s.dropAllSubsLocked()
	s.wakeWaitersLocked()
	if s.cfg.OnCommit != nil {
		s.cfg.OnCommit(CommitEvent{Epoch: e.Seq, Op: OpSnapshot})
	}
	if s.w != nil {
		if err := s.checkpointLocked(); err != nil {
			return Epoch{}, err
		}
	}
	return *e, nil
}

// Insert commits one batch of triples as a new epoch. It returns the new
// epoch and how many triples were actually new; a batch of only duplicates
// is a no-op that neither logs nor bumps the epoch. The batch is atomic:
// after a crash it is recovered entirely or not at all.
func (s *Store) Insert(triples []rdf.Triple) (Epoch, int, error) {
	return s.apply(OpInsert, triples, "")
}

// Delete commits one batch of removals as a new epoch, returning the new
// epoch and how many triples were actually removed. Missing triples are
// ignored; a batch removing nothing is a no-op.
func (s *Store) Delete(triples []rdf.Triple) (Epoch, int, error) {
	return s.apply(OpDelete, triples, "")
}

// InsertTraced is Insert with the originating W3C traceparent attached to
// the committed record, so the replication layer can propagate the trace
// context to replicas. The traceparent rides the in-memory changelog only —
// it is never written to the WAL.
func (s *Store) InsertTraced(triples []rdf.Triple, traceparent string) (Epoch, int, error) {
	return s.apply(OpInsert, triples, traceparent)
}

// DeleteTraced is Delete with the originating traceparent attached; see
// InsertTraced.
func (s *Store) DeleteTraced(triples []rdf.Triple, traceparent string) (Epoch, int, error) {
	return s.apply(OpDelete, triples, traceparent)
}

func (s *Store) apply(op byte, triples []rdf.Triple, traceparent string) (Epoch, int, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableWrite(); err != nil {
		return Epoch{}, 0, err
	}
	cur := s.cur.Load()

	// Copy-on-write: the batch lands on a private copy, so every reader that
	// pinned the current epoch keeps an untouched graph.
	next := cur.Graph.Clone()
	var n int
	if op == OpInsert {
		n = next.Add(triples...)
	} else {
		n = next.Remove(triples...)
	}
	if n == 0 {
		return *cur, 0, nil
	}

	r := Record{Op: op, Epoch: cur.Seq + 1, Text: encodeTriples(triples), Trace: traceparent}
	s.tl.StampAt(r.Epoch, StageStart, start)
	if s.w != nil {
		if err := s.w.append(r); err != nil {
			return Epoch{}, 0, s.writeFailed("wal append", err)
		}
		s.tl.StampAt(r.Epoch, StageAppend, s.w.appendedAt)
		if !s.w.syncedAt.IsZero() {
			s.tl.StampAt(r.Epoch, StageSync, s.w.syncedAt)
		}
	} else {
		s.tl.Stamp(r.Epoch, StageAppend)
	}

	// The record is durable (per policy); the swap makes it visible. A crash
	// here loses nothing: the un-acknowledged batch is whole in the WAL and
	// recovery replays it — the allowed "unacknowledged-whole" outcome.
	if err := limits.Hit(s.cfg.Faults, "store.swap"); err != nil {
		s.noteCrash(err)
		return Epoch{}, 0, err
	}
	e := &Epoch{Seq: r.Epoch, Graph: next}
	s.cur.Store(e)
	s.batches++
	s.noteCommitLocked(r)
	if s.cfg.OnCommit != nil {
		s.cfg.OnCommit(CommitEvent{Epoch: e.Seq, Op: op, Triples: triples})
		s.tl.Stamp(e.Seq, StageMaintain)
	}
	s.tl.Stamp(e.Seq, StageCommit)
	s.cfg.Obs.Observe("store.commit_visible_us", float64(time.Since(start).Microseconds()))

	if err := s.maybeCheckpointLocked(); err != nil {
		// The mutation itself is committed and visible; the failed
		// checkpoint is still an error the caller must see.
		return *e, n, err
	}
	return *e, n, nil
}

// Checkpoint snapshots the current epoch and resets the WAL.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableWrite(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

func (s *Store) maybeCheckpointLocked() error {
	if s.w == nil {
		return nil
	}
	byCount := s.cfg.CheckpointEvery > 0 && s.batches >= s.cfg.CheckpointEvery
	bySize := s.cfg.CheckpointBytes > 0 && s.w.size >= s.cfg.CheckpointBytes
	if !byCount && !bySize {
		return nil
	}
	return s.checkpointLocked()
}

// checkpointLocked writes snapshot.nt via an atomic rename, then resets the
// WAL. The "wal.checkpoint" fault point fires in the window between the two,
// so recovery's stale-record skipping is testable.
func (s *Store) checkpointLocked() error {
	if s.w == nil {
		return nil
	}
	cur := s.cur.Load()
	path := filepath.Join(s.cfg.Dir, snapshotName)
	tmp := path + ".tmp"
	if err := writeSnapshot(tmp, cur.Seq, cur.Graph); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := syncDir(s.cfg.Dir); err != nil {
		return err
	}
	if err := limits.Hit(s.cfg.Faults, "wal.checkpoint"); err != nil {
		s.noteCrash(err)
		return err
	}
	if err := s.w.reset(); err != nil {
		return err
	}
	s.batches = 0
	s.tl.Stamp(cur.Seq, StageCheckpoint)
	return nil
}

// Close stops the syncer and releases the WAL after a final flush. A
// crashed store closes nothing — the simulated dead process must not get a
// parting fsync.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.dropAllSubsLocked()
	s.wakeWaitersLocked() // WaitEpoch callers recheck, see closed, and return
	if s.stopSync != nil {
		close(s.stopSync)
		s.syncWG.Wait()
	}
	if s.crashed.Load() {
		if s.w != nil {
			_ = s.w.f.Close()
		}
		return ErrCrashed
	}
	if s.w != nil {
		return s.w.close()
	}
	return nil
}

// usable gates every entry point that needs a live store.
func (s *Store) usable() error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	if s.closed {
		return ErrClosed
	}
	return nil
}

// usableWrite additionally rejects writes once a WAL I/O failure degraded
// the store to read-only (repl.go); reads are unaffected.
func (s *Store) usableWrite() error {
	if err := s.usable(); err != nil {
		return err
	}
	if s.readonly.Load() {
		return &StorageError{Op: "write"}
	}
	return nil
}

// noteCrash latches the crashed state when err carries an injected crash.
func (s *Store) noteCrash(err error) {
	if errors.Is(err, limits.ErrCrash) {
		s.crashed.Store(true)
	}
}

// encodeTriples renders a batch as N-Triples WAL payload text.
func encodeTriples(triples []rdf.Triple) []byte {
	var b strings.Builder
	for _, t := range triples {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// writeSnapshot writes "# epoch N" plus the graph as N-Triples and fsyncs.
func writeSnapshot(path string, epoch uint64, g *rdf.Graph) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# epoch %d\n", epoch)
	for _, t := range g.SortedTriples() {
		w.WriteString(t.String())
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads a checkpoint; a missing file returns (0, nil, nil).
func readSnapshot(path string) (uint64, *rdf.Graph, error) {
	src, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	head, rest, _ := strings.Cut(string(src), "\n")
	epochStr, ok := strings.CutPrefix(strings.TrimSpace(head), "# epoch ")
	if !ok {
		return 0, nil, fmt.Errorf("store: snapshot %s: missing epoch header", path)
	}
	epoch, err := strconv.ParseUint(strings.TrimSpace(epochStr), 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("store: snapshot %s: bad epoch header: %w", path, err)
	}
	g, err := rdf.ParseNTriplesString(rest)
	if err != nil {
		return 0, nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return epoch, g, nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	err = d.Sync()
	closeErr := d.Close()
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return closeErr
}
