// The recovery differential suite: random mutation schedules are driven
// into a durable store with a crash point armed at every WAL/commit stage
// (and in every corruption mode), the "process" dies, the directory is
// reopened, and the recovered state is checked against the acknowledged
// writes under the paper's certain-answer oracle — the answers of a
// recursive TriQ-Lite query over the recovered store must be bit-identical
// to a fresh chase over exactly the surviving triples, and the surviving
// triple set itself must be the acknowledged prefix of the schedule
// (optionally plus the whole in-flight batch: acknowledged-durable,
// unacknowledged-absent-or-whole).
package store_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/limits"
	"repro/internal/rdf"
	"repro/internal/store"
)

// diffQuery is the recursive reachability query the oracle evaluates.
const diffQuery = `
	triple(?X, partOf, ?Y) -> reach(?X, ?Y).
	triple(?X, partOf, ?Z), reach(?Z, ?Y) -> reach(?X, ?Y).
	reach(?X, ?Y) -> query(?X, ?Y).
`

// mutation is one schedule step.
type mutation struct {
	insert bool
	batch  []rdf.Triple
}

// randomSchedule builds n mutations over a small term universe, tracking a
// model graph so deletes target triples that actually exist.
func randomSchedule(rng *rand.Rand, base *rdf.Graph, n int) []mutation {
	model := base.Clone()
	term := func() string { return fmt.Sprintf("s%d", rng.Intn(8)) }
	var out []mutation
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.7 || model.Len() == 0 {
			k := 1 + rng.Intn(3)
			batch := make([]rdf.Triple, 0, k)
			for j := 0; j < k; j++ {
				batch = append(batch, rdf.T(term(), "partOf", term()))
			}
			model.Add(batch...)
			out = append(out, mutation{insert: true, batch: batch})
		} else {
			all := model.SortedTriples()
			batch := []rdf.Triple{all[rng.Intn(len(all))]}
			model.Remove(batch...)
			out = append(out, mutation{insert: false, batch: batch})
		}
	}
	return out
}

// applyMutations replays a schedule prefix onto a fresh copy of base.
func applyMutations(base *rdf.Graph, ops []mutation) *rdf.Graph {
	g := base.Clone()
	for _, op := range ops {
		if op.insert {
			g.Add(op.batch...)
		} else {
			g.Remove(op.batch...)
		}
	}
	return g
}

// answers runs the recursive query over g and returns sorted rows.
func answers(t *testing.T, g *rdf.Graph) []string {
	t.Helper()
	q, err := repro.ParseQuery(diffQuery, "query")
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	res, err := repro.Ask(g, q, repro.TriQLite10, repro.Options{})
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	rows := res.Rows()
	sortStrings(rows)
	return rows
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecoveryDifferential(t *testing.T) {
	crashCases := []struct {
		point string
		mode  limits.CrashMode
		ckpt  int // CheckpointEvery (negative disables)
	}{
		{"wal.append", limits.CrashClean, -1},
		{"wal.append", limits.CrashTorn, -1},
		{"wal.append", limits.CrashFlip, -1},
		{"wal.sync", limits.CrashClean, -1},
		{"store.swap", limits.CrashClean, -1},
		{"wal.checkpoint", limits.CrashClean, 3},
		// Crash points with periodic checkpoints interleaved, so recovery
		// composes snapshot + stale-skip + replay + truncation.
		{"wal.append", limits.CrashTorn, 4},
		{"store.swap", limits.CrashClean, 4},
	}
	base := rdf.NewGraph(rdf.T("s0", "partOf", "s1"), rdf.T("s1", "partOf", "s2"))

	for _, cc := range crashCases {
		for seed := int64(1); seed <= 3; seed++ {
			for _, after := range []int{0, 3, 7} {
				name := fmt.Sprintf("%s/%s/ckpt%d/seed%d/after%d", cc.point, cc.mode, cc.ckpt, seed, after)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					schedule := randomSchedule(rng, base, 12)
					dir := t.TempDir()

					plan := limits.NewPlan(limits.Fault{
						Point: cc.point, Action: limits.ActCrash, Mode: cc.mode, After: after,
					})
					st, _, err := store.Open(store.Config{
						Dir: dir, Sync: store.SyncAlways,
						CheckpointEvery: cc.ckpt, CheckpointBytes: -1,
						Faults: plan,
					})
					if err != nil {
						t.Fatalf("open: %v", err)
					}
					acked := 0
					var crashErr error
					if _, err := st.Bootstrap(base); err != nil {
						// Bootstrap itself checkpoints on durable stores, so the
						// wal.checkpoint crash can fire here; the snapshot is
						// already renamed, so recovery must still yield the base.
						if !errors.Is(err, limits.ErrCrash) {
							t.Fatalf("bootstrap: %v", err)
						}
						crashErr = err
					}
					for _, op := range schedule {
						if crashErr != nil {
							break
						}
						if op.insert {
							_, _, crashErr = st.Insert(op.batch)
						} else {
							_, _, crashErr = st.Delete(op.batch)
						}
						if crashErr != nil {
							break
						}
						acked++
					}
					if crashErr != nil && !errors.Is(crashErr, limits.ErrCrash) {
						t.Fatalf("schedule failed with non-crash error: %v", crashErr)
					}
					_ = st.Close() // a crashed store refuses the close; either way the "process" is gone

					// Restart: recovery must succeed whatever the crash left.
					st2, rec, err := store.Open(store.Config{Dir: dir})
					if err != nil {
						t.Fatalf("recovery open: %v (report %+v)", err, rec)
					}
					defer st2.Close()
					recovered := st2.Current().Graph

					// Contract: the survivors are exactly the acknowledged
					// prefix, or that prefix plus the whole in-flight batch.
					ackedG := applyMutations(base, schedule[:acked])
					candidates := []*rdf.Graph{ackedG}
					if crashErr != nil && acked < len(schedule) {
						candidates = append(candidates, applyMutations(base, schedule[:acked+1]))
					}
					var match *rdf.Graph
					for _, c := range candidates {
						if recovered.Equal(c) {
							match = c
							break
						}
					}
					if match == nil {
						t.Fatalf("recovered state matches no candidate:\nrecovered:\n%sacked:\n%s",
							recovered, ackedG)
					}

					// Certain-answer oracle: answers over the recovered store
					// ≡ a fresh chase over exactly the surviving triples ≡
					// the matched candidate's answers.
					got := answers(t, recovered)
					fresh := answers(t, rdf.NewGraph(recovered.Triples()...))
					want := answers(t, match)
					if !equalRows(got, fresh) {
						t.Fatalf("recovered answers != fresh chase over surviving triples:\n%v\nvs\n%v", got, fresh)
					}
					if !equalRows(got, want) {
						t.Fatalf("recovered answers != acknowledged-set answers:\n%v\nvs\n%v", got, want)
					}

					// The recovered store must accept writes again.
					if _, _, err := st2.Insert([]rdf.Triple{rdf.T("post", "partOf", "crash")}); err != nil {
						t.Fatalf("post-recovery insert: %v", err)
					}
				})
			}
		}
	}
}

// TestRecoveryDifferentialEnvPlan drives one crash through the TRIQ_FAULTS
// string syntax (point@N=torn) installed as the process-global plan, proving
// the CI-facing spelling arms the same machinery.
func TestRecoveryDifferentialEnvPlan(t *testing.T) {
	plan, err := limits.ParsePlan("wal.append@2=torn")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	restore := limits.SetGlobal(plan)
	defer restore()

	dir := t.TempDir()
	st, _, err := store.Open(store.Config{Dir: dir, CheckpointEvery: -1, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var crashErr error
	acked := 0
	for i := 0; i < 5; i++ {
		if _, _, crashErr = st.Insert([]rdf.Triple{rdf.T(fmt.Sprintf("s%d", i), "partOf", "hub")}); crashErr != nil {
			break
		}
		acked++
	}
	if !errors.Is(crashErr, limits.ErrCrash) || acked != 2 {
		t.Fatalf("acked=%d err=%v, want 2 acked then ErrCrash", acked, crashErr)
	}
	_ = st.Close()
	restore() // the "restarted process" has no faults armed

	st2, rec, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	if !rec.DamagedTail {
		t.Fatalf("recovery = %+v, want damaged tail from torn append", rec)
	}
	g := st2.Current().Graph
	if g.Len() != acked {
		t.Fatalf("recovered %d triples, want the %d acknowledged", g.Len(), acked)
	}
}
