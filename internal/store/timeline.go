package store

import (
	"sync"
	"time"
)

// The epoch timeline is the commit-pipeline flight recorder: every committed
// epoch is stamped (wall clock, nanoseconds) as it crosses each pipeline
// stage — WAL append, fsync, materialization maintain, commit visibility,
// checkpoint on the primary; replication ship on the primary and apply on a
// replica — into a bounded ring. The serve layer exposes the ring as GET
// /debug/epochs, so an operator can see exactly which stage of a slow commit
// burned the latency, and the per-stage obs histograms (wal.sync_us,
// mat.maintain_us, repl.ship_us, repl.apply_us, store.commit_visible_us)
// aggregate the same stamps over time.

// Stage is one pipeline station an epoch passes through.
type Stage int

const (
	// StageStart is when the mutation entered the store's write path.
	StageStart Stage = iota
	// StageAppend is when the batch's WAL record was fully written.
	StageAppend
	// StageSync is when the record reached stable storage (SyncAlways only;
	// under interval/none sync the stamp is absent).
	StageSync
	// StageMaintain is when the synchronous OnCommit fold (incremental
	// materialization) returned.
	StageMaintain
	// StageCommit is when the epoch swap completed and the commit became
	// visible to readers — the end of what a writer waits for.
	StageCommit
	// StageCheckpoint is when a snapshot checkpoint covering this epoch
	// finished.
	StageCheckpoint
	// StageShip is when the primary wrote the record to a replication
	// stream (last send wins when several replicas or reconnects ship it).
	StageShip
	// StageApply is when a replica folded the shipped record in.
	StageApply

	numStages
)

var stageNames = [numStages]string{
	"start", "append", "sync", "mat_maintain", "commit", "checkpoint", "ship", "replica_apply",
}

func (st Stage) String() string {
	if st < 0 || st >= numStages {
		return "unknown"
	}
	return stageNames[st]
}

// EpochStamps is one ring entry: the wall-clock nanosecond each stage saw
// the epoch (0 = the stage has not stamped it).
type EpochStamps struct {
	Epoch  uint64
	Stamps [numStages]int64
}

// Stages renders the non-zero stamps as a stage-name → unix-nanos map.
func (e EpochStamps) Stages() map[string]int64 {
	out := make(map[string]int64, numStages)
	for i, ns := range e.Stamps {
		if ns != 0 {
			out[Stage(i).String()] = ns
		}
	}
	return out
}

// timelineCap is the default ring capacity: enough recent epochs for an
// operator (or the slow-mutation log) to look up any commit still in flight
// anywhere in the pipeline.
const timelineCap = 512

// Timeline is the bounded per-epoch stage-stamp ring. Safe for concurrent
// use; stamping is a mutex and an array write, cheap enough to stay always
// on.
type Timeline struct {
	mu      sync.Mutex
	entries []EpochStamps // slot = epoch % cap
}

func newTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = timelineCap
	}
	return &Timeline{entries: make([]EpochStamps, capacity)}
}

// Stamp records stage st for the epoch at the current wall clock.
func (t *Timeline) Stamp(epoch uint64, st Stage) { t.StampAt(epoch, st, time.Now()) }

// StampAt records stage st for the epoch at the given instant. Epoch 0 (the
// empty pre-bootstrap store) and stale epochs already evicted from the ring
// are ignored.
func (t *Timeline) StampAt(epoch uint64, st Stage, at time.Time) {
	if t == nil || epoch == 0 || st < 0 || st >= numStages {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := &t.entries[epoch%uint64(len(t.entries))]
	if slot.Epoch != epoch {
		if slot.Epoch > epoch {
			return // the ring wrapped past this epoch; a late stamp must not resurrect it
		}
		*slot = EpochStamps{Epoch: epoch}
	}
	slot.Stamps[st] = at.UnixNano()
}

// Lookup returns the stamps for one epoch, if still retained.
func (t *Timeline) Lookup(epoch uint64) (EpochStamps, bool) {
	if t == nil || epoch == 0 {
		return EpochStamps{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[epoch%uint64(len(t.entries))]
	return e, e.Epoch == epoch
}

// Snapshot returns the retained entries in ascending epoch order.
func (t *Timeline) Snapshot() []EpochStamps {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]EpochStamps, 0, len(t.entries))
	for _, e := range t.entries {
		if e.Epoch != 0 {
			out = append(out, e)
		}
	}
	t.mu.Unlock()
	sortStamps(out)
	return out
}

func sortStamps(es []EpochStamps) {
	// Insertion sort: the ring is nearly ordered already and stays small.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j-1].Epoch > es[j].Epoch; j-- {
			es[j-1], es[j] = es[j], es[j-1]
		}
	}
}
