package store

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// The epoch-timeline contract: stage stamps land in the ring, lookups are
// exact, the ring never resurrects an epoch it already wrapped past, and a
// real commit through a durable SyncAlways store stamps the full pipeline
// (start → append → sync → commit) while feeding the per-stage histograms.

func TestTimelineStampLookupSnapshot(t *testing.T) {
	tl := newTimeline(8)
	base := time.Unix(100, 0)
	tl.StampAt(3, StageStart, base)
	tl.StampAt(3, StageAppend, base.Add(time.Millisecond))
	tl.StampAt(3, StageCommit, base.Add(2*time.Millisecond))
	tl.StampAt(5, StageStart, base.Add(3*time.Millisecond))

	e, ok := tl.Lookup(3)
	if !ok || e.Epoch != 3 {
		t.Fatalf("Lookup(3) = %+v, %v", e, ok)
	}
	m := e.Stages()
	if m["start"] != base.UnixNano() || m["append"] != base.Add(time.Millisecond).UnixNano() ||
		m["commit"] != base.Add(2*time.Millisecond).UnixNano() {
		t.Fatalf("stages = %v", m)
	}
	if _, present := m["sync"]; present {
		t.Fatalf("unstamped stage rendered: %v", m)
	}

	snap := tl.Snapshot()
	if len(snap) != 2 || snap[0].Epoch != 3 || snap[1].Epoch != 5 {
		t.Fatalf("snapshot = %+v, want epochs [3 5] ascending", snap)
	}

	// Epoch 0 and out-of-range stages are ignored.
	tl.StampAt(0, StageStart, base)
	tl.StampAt(7, Stage(-1), base)
	tl.StampAt(7, numStages, base)
	if _, ok := tl.Lookup(7); ok {
		t.Fatal("invalid stamps created an entry")
	}
}

func TestTimelineWrapEvictsAndRefusesLateStamps(t *testing.T) {
	tl := newTimeline(4)
	for e := uint64(1); e <= 6; e++ {
		tl.StampAt(e, StageCommit, time.Unix(int64(e), 0))
	}
	// Epochs 1 and 2 share slots with 5 and 6 and must be gone.
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("epoch 1 survived the wrap")
	}
	if e, ok := tl.Lookup(5); !ok || e.Epoch != 5 {
		t.Fatalf("Lookup(5) = %+v, %v", e, ok)
	}
	// A late stamp for a wrapped-past epoch must not clobber the newer one.
	tl.StampAt(1, StageCheckpoint, time.Unix(99, 0))
	if e, _ := tl.Lookup(5); e.Stamps[StageCheckpoint] != 0 {
		t.Fatalf("late stamp for epoch 1 resurrected onto epoch 5: %+v", e)
	}
	snap := tl.Snapshot()
	if len(snap) != 4 || snap[0].Epoch != 3 || snap[3].Epoch != 6 {
		t.Fatalf("post-wrap snapshot = %+v, want epochs 3..6", snap)
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Stamp(1, StageCommit)
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("nil timeline returned an entry")
	}
	if s := tl.Snapshot(); s != nil {
		t.Fatalf("nil snapshot = %v", s)
	}
}

func TestStoreStampsCommitPipeline(t *testing.T) {
	o := obs.New()
	st, _, err := Open(Config{Dir: t.TempDir(), Sync: SyncAlways, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	e, n, err := st.Insert([]rdf.Triple{rdf.T("a", "p", "b")})
	if err != nil || n != 1 {
		t.Fatalf("insert = %v, %d", err, n)
	}
	stamps, ok := st.Timeline().Lookup(e.Seq)
	if !ok {
		t.Fatalf("no timeline entry for committed epoch %d", e.Seq)
	}
	m := stamps.Stages()
	for _, stage := range []string{"start", "append", "sync", "commit"} {
		if m[stage] == 0 {
			t.Fatalf("stage %q unstamped: %v", stage, m)
		}
	}
	// Ordering across the pipeline: start ≤ append ≤ sync ≤ commit.
	if !(m["start"] <= m["append"] && m["append"] <= m["sync"] && m["sync"] <= m["commit"]) {
		t.Fatalf("stage stamps out of order: %v", m)
	}

	reg := o.Registry()
	if hs, ok := reg.Hist("wal.sync_us"); !ok || hs.Count == 0 {
		t.Fatalf("wal.sync_us not observed: %+v ok=%v", hs, ok)
	}
	if hs, ok := reg.Hist("store.commit_visible_us"); !ok || hs.Count == 0 {
		t.Fatalf("store.commit_visible_us not observed: %+v ok=%v", hs, ok)
	}
}

func TestStoreMemoryOnlySkipsSyncStamp(t *testing.T) {
	st, _, err := Open(Config{}) // pure in-memory: no WAL, no fsync
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e, _, err := st.Insert([]rdf.Triple{rdf.T("a", "p", "b")})
	if err != nil {
		t.Fatal(err)
	}
	stamps, ok := st.Timeline().Lookup(e.Seq)
	if !ok {
		t.Fatalf("no timeline entry for epoch %d", e.Seq)
	}
	m := stamps.Stages()
	if m["start"] == 0 || m["append"] == 0 || m["commit"] == 0 {
		t.Fatalf("start/append/commit unstamped: %v", m)
	}
	if m["sync"] != 0 {
		t.Fatalf("memory-only store stamped a WAL fsync: %v", m)
	}
}
