package chase

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/obs"
)

// obsTestProgram exercises plain rules, recursion, and null invention, so
// every per-rule counter is non-trivial.
const obsTestProgram = `
	e(?X, ?Y) -> tc(?X, ?Y).
	e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	tc(?X, ?Y) -> exists ?W w(?X, ?W).
`

func obsTestDB() *Instance {
	return NewInstance(
		atom("e", "a", "b"), atom("e", "b", "c"), atom("e", "c", "d"),
	)
}

// TestObsOffMatchesObsOn is the "byte-identical results" acceptance check:
// the instrumented run derives exactly the same instance and headline stats
// as the uninstrumented run.
func TestObsOffMatchesObsOn(t *testing.T) {
	off, err := Run(obsTestDB(), datalog.MustParse(obsTestProgram), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	on, err := Run(obsTestDB(), datalog.MustParse(obsTestProgram), Options{Obs: obs.NewWithSink(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if !off.Instance.Equal(on.Instance) {
		t.Error("instrumented chase derived a different instance")
	}
	if off.Stats.Rounds != on.Stats.Rounds ||
		off.Stats.TriggersFired != on.Stats.TriggersFired ||
		off.Stats.FactsDerived != on.Stats.FactsDerived ||
		off.Stats.NullsInvented != on.Stats.NullsInvented ||
		off.Stats.DepthTruncated != on.Stats.DepthTruncated {
		t.Errorf("core stats differ: off=%+v on=%+v", off.Stats, on.Stats)
	}
	if buf.Len() == 0 {
		t.Error("instrumented run wrote no trace")
	}
}

// TestPerRuleStatsSumToTotals: the PerRule breakdown must partition the
// headline counters.
func TestPerRuleStatsSumToTotals(t *testing.T) {
	res, err := Run(obsTestDB(), datalog.MustParse(obsTestProgram), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if len(s.PerRule) != 3 {
		t.Fatalf("PerRule has %d entries, want 3", len(s.PerRule))
	}
	var fired, facts, nulls int
	for i, r := range s.PerRule {
		if r.Index != i {
			t.Errorf("PerRule[%d].Index = %d", i, r.Index)
		}
		if r.Rule == "" {
			t.Errorf("PerRule[%d].Rule is empty", i)
		}
		if r.TriggersFired > r.TriggersAttempted {
			t.Errorf("rule %d fired more than attempted: %+v", i, r)
		}
		fired += r.TriggersFired
		facts += r.FactsDerived
		nulls += r.NullsInvented
	}
	if fired != s.TriggersFired || facts != s.FactsDerived || nulls != s.NullsInvented {
		t.Errorf("per-rule sums (%d,%d,%d) != totals (%d,%d,%d)",
			fired, facts, nulls, s.TriggersFired, s.FactsDerived, s.NullsInvented)
	}
	if nulls == 0 {
		t.Error("test program should invent nulls")
	}
	if top := s.TopRule(); top == nil {
		t.Error("TopRule returned nil with a non-empty breakdown")
	}
}

// TestStatsString checks the -metrics rendering: a headline plus one table
// row per rule.
func TestStatsString(t *testing.T) {
	res, err := Run(obsTestDB(), datalog.MustParse(obsTestProgram), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Stats.String()
	for _, want := range []string{"chase:", "rounds", "facts derived", "#0", "#1", "#2", "tc(?X, ?Z)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 5 { // headline + header + 3 rules
		t.Errorf("Stats.String() has %d lines, want 5:\n%s", n, out)
	}
	var empty Stats
	if got := empty.String(); strings.Count(got, "\n") != 1 {
		t.Errorf("empty Stats.String() should be the headline only:\n%s", got)
	}
}

// TestChaseTrace runs a small fixed program with a JSONL sink and checks the
// trace invariants: every line parses, the expected span kinds appear, and
// the per-rule "fired" attrs sum to the headline counter.
func TestChaseTrace(t *testing.T) {
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	res, err := Run(obsTestDB(), datalog.MustParse(obsTestProgram), Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SinkErr(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid JSONL: %v", err)
	}
	kinds := map[string]int{}
	firedSum := 0
	for _, r := range recs {
		name, _ := r["name"].(string)
		kinds[name]++
		if name == "chase.rule" {
			attrs, _ := r["attrs"].(map[string]any)
			fired, ok := attrs["fired"].(float64)
			if !ok {
				t.Fatalf("chase.rule span missing fired attr: %v", r)
			}
			firedSum += int(fired)
		}
	}
	for _, k := range []string{"chase.run", "chase.round", "chase.rule"} {
		if kinds[k] == 0 {
			t.Errorf("trace missing span kind %q (got %v)", k, kinds)
		}
	}
	if kinds["chase.run"] != 1 {
		t.Errorf("want exactly one chase.run span, got %d", kinds["chase.run"])
	}
	if kinds["chase.rule"] != kinds["chase.round"]*3 {
		t.Errorf("want 3 chase.rule spans per round: rounds=%d rules=%d",
			kinds["chase.round"], kinds["chase.rule"])
	}
	if firedSum != res.Stats.TriggersFired {
		t.Errorf("sum of rule span fired attrs = %d, want %d", firedSum, res.Stats.TriggersFired)
	}
	// Registry counters mirror the stats.
	if got := o.Registry().Counter("chase.facts_derived"); got != int64(res.Stats.FactsDerived) {
		t.Errorf("chase.facts_derived counter = %d, want %d", got, res.Stats.FactsDerived)
	}
}

// TestStableGroundTrace checks the iterative-deepening driver nests chase.run
// under chase.deepen.
func TestStableGroundTrace(t *testing.T) {
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	_, err := StableGround(obsTestDB(), datalog.MustParse(obsTestProgram), Options{Obs: o}, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	deepenIDs := map[float64]bool{}
	for _, r := range recs {
		if r["name"] == "chase.deepen" {
			deepenIDs[r["id"].(float64)] = true
		}
	}
	if len(deepenIDs) == 0 {
		t.Fatal("no chase.deepen spans")
	}
	nested := false
	for _, r := range recs {
		if r["name"] == "chase.run" {
			if parent, ok := r["parent"].(float64); ok && deepenIDs[parent] {
				nested = true
			}
		}
	}
	if !nested {
		t.Error("no chase.run span is parented under a chase.deepen span")
	}
}

func benchmarkChase(b *testing.B, o *obs.Obs) {
	prog := datalog.MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`)
	db := NewInstance()
	chain := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for i := 0; i+1 < len(chain); i++ {
		db.Add(atom("e", chain[i], chain[i+1]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(db, prog, Options{Obs: o}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaseObsOff is the baseline: no Obs handle, no spans, no I/O.
// Compare with BenchmarkChaseObsOn to measure the instrumentation overhead
// (the disabled path must stay negligible).
func BenchmarkChaseObsOff(b *testing.B) { benchmarkChase(b, nil) }

// BenchmarkChaseObsOn measures the fully-enabled path (registry + in-memory
// discard sink).
func BenchmarkChaseObsOn(b *testing.B) {
	var sink bytes.Buffer
	o := obs.NewWithSink(&sink)
	b.Cleanup(func() { sink.Reset() })
	benchmarkChase(b, o)
}
