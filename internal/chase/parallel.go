package chase

import (
	"sync"
	"sync/atomic"

	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
)

// This file implements the parallel trigger-enumeration phase of a chase
// round. Each round is evaluated rule by rule in two strictly ordered
// phases:
//
//  1. enumerate — the candidate space of the rule (per semi-naive seed
//     position, sharded over the seed's delta candidates) is matched against
//     the instance as it stands at the start of the rule's turn. The
//     instance is not mutated during this phase, so any number of workers
//     may match concurrently without synchronization; each shard records the
//     bindings it found in a private buffer.
//  2. apply — the shard buffers are replayed in one canonical order (seed
//     position, then candidate order within the seed) on the calling
//     goroutine: cross-seed deduplication, stratified-negation checks,
//     restricted-mode head-satisfaction probes, Skolem null invention, and
//     the fact-budget boundary all happen here, exactly as they would in a
//     sequential run.
//
// Because the shard partition refines the sequential enumeration order and
// the apply phase is single-threaded, the derived facts, invented null
// names, Stats counters, and truncation points are bit-identical for every
// Options.Parallelism value — the property checked exhaustively by
// differential_test.go.

// shardFan bounds how many shards are cut per seed position: enough for the
// work-stealing loop to balance unequal shards, not so many that buffer
// bookkeeping dominates.
const shardFan = 4

// parallelThreshold is the smallest per-rule candidate count worth paying
// goroutine startup for; below it enumeration runs inline.
const parallelThreshold = 64

// errShardStopped is the sentinel a shard returns when it halted because a
// sibling worker failed first; the pool keeps the sibling's error instead.
type shardStoppedError struct{}

func (shardStoppedError) Error() string { return "chase: shard stopped by sibling failure" }

var errShardStopped = shardStoppedError{}

// triggerBuf is one shard's private output: the bindings it enumerated, as
// flat parallel slices with a stride of one rule body's variable slots.
type triggerBuf struct {
	vals []datalog.Term
	set  []bool
	n    int
}

func (b *triggerBuf) push(ev *env, slots int) {
	b.vals = append(b.vals, ev.val[:slots]...)
	b.set = append(b.set, ev.set[:slots]...)
	b.n++
}

// load restores binding i into the environment; slots past the body are
// cleared so fire sees fresh existential slots.
func (b *triggerBuf) load(i, slots int, ev *env) {
	copy(ev.val[:slots], b.vals[i*slots:(i+1)*slots])
	copy(ev.set[:slots], b.set[i*slots:(i+1)*slots])
	for s := slots; s < len(ev.set); s++ {
		ev.set[s] = false
	}
}

// shard is one unit of enumeration work: candidates [lo,hi) of one seed
// position (seed == -1 is the unseeded full-instance matching of the first
// round, seeded from the first pattern of the precomputed join order;
// trivial marks a rule with an empty positive body, which has exactly one —
// empty — trigger).
type shard struct {
	seed    int
	trivial bool
	cands   []datalog.Atom
	lo, hi  int
	buf     triggerBuf
}

// buildShards cuts the rule's candidate space for this round into shards in
// canonical order. The partition depends only on the candidate lists (which
// are deterministic products of the apply phase), never on the worker
// count, so concatenating the shard buffers in slice order always
// reproduces the sequential enumeration order.
func (e *engine) buildShards(c *compiledRule, delta *Instance) []*shard {
	probe := newEnv(len(c.st.vars))
	if delta == nil {
		if len(c.bodyPos) == 0 {
			return []*shard{{seed: -1, trivial: true}}
		}
		first := c.fullOrder[0]
		return e.shardRange(nil, -1, candidatesFor(e.inst, c.bodyPos[first], probe))
	}
	var out []*shard
	for j := range c.bodyPos {
		out = e.shardRange(out, j, candidatesFor(delta, c.bodyPos[j], probe))
	}
	return out
}

// shardRange appends shards covering cands for one seed position.
func (e *engine) shardRange(out []*shard, seed int, cands []datalog.Atom) []*shard {
	n := len(cands)
	if n == 0 {
		return out
	}
	chunk := n
	if w := e.opts.Parallelism; w > 1 {
		chunk = (n + w*shardFan - 1) / (w * shardFan)
		if chunk < 16 {
			chunk = 16
		}
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, &shard{seed: seed, cands: cands, lo: lo, hi: hi})
	}
	return out
}

// enumShard runs phase one for a single shard: read-only matching against
// the engine instance into the shard's buffer. stop is the pool's shared
// abort flag (nil on the inline path); the context is polled every few
// dozen candidates and emissions so a canceled chase stops within
// milliseconds even inside one huge shard.
func (e *engine) enumShard(c *compiledRule, s *shard, stop *atomic.Bool) error {
	ev := newEnv(len(c.st.vars))
	var retErr error
	polls := 0
	poll := func() bool {
		if polls++; polls&63 != 0 {
			return true
		}
		if stop != nil && stop.Load() {
			retErr = errShardStopped
			return false
		}
		if kind := limits.CtxKind(e.ctx); kind != nil {
			retErr = kind
			return false
		}
		return true
	}
	emit := func() bool {
		s.buf.push(ev, c.bodySlots)
		return poll()
	}
	if s.trivial {
		emit()
		return retErr
	}
	seedPat, order := c.bodyPos[c.fullOrder[0]], c.fullOrder[1:]
	if s.seed >= 0 {
		seedPat, order = c.bodyPos[s.seed], c.seeded[s.seed]
	}
	var added []int
	for _, fact := range s.cands[s.lo:s.hi] {
		if !poll() {
			break
		}
		ev.reset()
		added = added[:0]
		if !seedPat.matchInto(fact, ev, &added) {
			continue
		}
		if !matchPatterns(e.inst, c.bodyPos, order, ev, emit) {
			break
		}
	}
	return retErr
}

// enumerate runs phase one of the round for one rule, inline or on a worker
// pool, and returns the shards with their buffers filled. On a context
// abort the first worker error wins and no shard output is applied.
func (e *engine) enumerate(c *compiledRule, delta *Instance, ruleSpan *obs.Span) ([]*shard, error) {
	shards := e.buildShards(c, delta)
	if len(shards) == 0 {
		return nil, nil
	}
	total := 0
	for _, s := range shards {
		total += s.hi - s.lo
	}
	workers := e.opts.Parallelism
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 || total < parallelThreshold {
		for _, s := range shards {
			if err := e.enumShard(c, s, nil); err != nil {
				return nil, e.abort(err, 0, 0)
			}
		}
		return shards, nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			e.opts.Progress.workerStart()
			defer e.opts.Progress.workerEnd()
			var wspan *obs.Span
			if ruleSpan != nil {
				wspan = ruleSpan.Span("chase.worker", obs.F("worker", worker))
			}
			done, found := 0, 0
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) || stop.Load() {
					break
				}
				s := shards[i]
				if err := e.enumShard(c, s, &stop); err != nil {
					if err != errShardStopped {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
					stop.Store(true)
					break
				}
				done++
				found += s.buf.n
			}
			wspan.End(obs.F("shards", done), obs.F("triggers", found))
			if o := e.opts.Obs; o != nil {
				o.Count(obs.WorkerMetric("chase.worker.shards", worker), int64(done))
				o.Count(obs.WorkerMetric("chase.worker.triggers", worker), int64(found))
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, e.abort(firstErr, 0, 0)
	}
	if o := e.opts.Obs; o != nil {
		o.Count("chase.parallel.rule_rounds", 1)
		o.Count("chase.parallel.shards", int64(len(shards)))
	}
	return shards, nil
}

// apply replays the shard buffers in canonical order on the calling
// goroutine: phase two of the round. dedup enables the cross-seed
// deduplication of semi-naive matching (a trigger whose body holds two
// delta facts is enumerated once per seed position).
func (e *engine) apply(c *compiledRule, rs *RuleStats, shards []*shard, dedup bool, next *Instance) error {
	if len(shards) == 0 {
		return nil
	}
	var seen map[string]struct{}
	if dedup && len(c.bodyPos) > 1 {
		seen = make(map[string]struct{})
	}
	ev := newEnv(len(c.st.vars))
	for _, s := range shards {
		for i := 0; i < s.buf.n; i++ {
			s.buf.load(i, c.bodySlots, ev)
			if seen != nil {
				key := bindingKey(ev, c.bodySlots)
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
			}
			rs.TriggersAttempted++
			// Cancellation is polled inside the apply loop (not just per
			// round/rule) so a canceled query stops within milliseconds even
			// when a single round is huge; the counter keeps the common path
			// to one increment and a mask.
			if e.tick++; e.tick&63 == 0 {
				if err := e.interrupted(); err != nil {
					return err
				}
			}
			// Stratified negation against the current instance (the negated
			// predicates belong to lower strata and are final).
			negated := false
			for _, np := range c.bodyNeg {
				if e.inst.Has(np.instantiate(ev)) {
					negated = true
					break
				}
			}
			if negated {
				continue
			}
			newFacts, err := e.fire(c, ev)
			if err != nil {
				return err
			}
			for _, f := range newFacts {
				next.Add(f)
			}
		}
	}
	return nil
}
