package chase

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
)

// chainProgram derives a linear chain next(a0,a1), ..., so each round fires
// exactly one new fact: handy for budget and round assertions.
const chainSrc = `
	start(?X) -> step(?X, ?X).
	step(?X, ?Y), edge(?Y, ?Z) -> step(?X, ?Z).
`

func chainDB(n int) *Instance {
	db := NewInstance(atom("start", nodeName(0)))
	for i := 0; i < n; i++ {
		db.Add(datalog.NewAtom("edge",
			datalog.C(nodeName(i)), datalog.C(nodeName(i+1))))
	}
	return db
}

func nodeName(i int) string {
	return "v" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestFactBudgetReturnsTypedErrorAndPartialInstance(t *testing.T) {
	db := NewInstance(atom("n", "a"), atom("n", "b"), atom("n", "c"))
	prog := datalog.MustParse(`n(?X), n(?Y) -> pair(?X, ?Y).`)
	const budget = 5
	res, err := Run(db, prog, Options{MaxFacts: budget})
	if !errors.Is(err, limits.ErrFactBudget) {
		t.Fatalf("want ErrFactBudget, got %v", err)
	}
	if res == nil || res.Instance == nil {
		t.Fatal("budget abort must return the partial instance")
	}
	if res.Instance.Len() > budget {
		t.Fatalf("instance exceeded the budget: %d > %d", res.Instance.Len(), budget)
	}
	// Everything in the partial instance must be derivable: subset of the
	// unbudgeted run.
	full, ferr := Run(db, prog, Options{})
	if ferr != nil {
		t.Fatal(ferr)
	}
	for _, a := range res.Instance.AtomsOf("pair") {
		if !full.Instance.Has(a) {
			t.Fatalf("partial instance holds underivable atom %v", a)
		}
	}
	tr, ok := limits.TruncationOf(err)
	if !ok {
		t.Fatal("budget error must carry a Truncation")
	}
	if tr.Limit != limits.LimitFacts || tr.Budget != budget {
		t.Fatalf("truncation = %+v, want limit=facts budget=%d", tr, budget)
	}
	if len(tr.PerRule) == 0 {
		t.Error("truncation must carry the per-rule breakdown")
	}
	if tr.Facts == 0 || tr.Elapsed <= 0 {
		t.Errorf("truncation progress not populated: %+v", tr)
	}
}

func TestRoundBudgetReturnsTypedError(t *testing.T) {
	res, err := Run(chainDB(8), datalog.MustParse(chainSrc), Options{MaxRounds: 2})
	if !errors.Is(err, limits.ErrRoundBudget) {
		t.Fatalf("want ErrRoundBudget, got %v", err)
	}
	if res == nil || res.Instance == nil {
		t.Fatal("round abort must return the partial instance")
	}
	full, ferr := Run(chainDB(8), datalog.MustParse(chainSrc), Options{})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if got, want := len(res.Instance.AtomsOf("step")), len(full.Instance.AtomsOf("step")); got >= want {
		t.Fatalf("round budget did not truncate: %d >= %d step facts", got, want)
	}
}

func TestCanceledContextStopsMidRound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the engine, right before the second rule
	// application of the run: the chase must stop before the round
	// completes rather than at the next round boundary.
	plan := limits.NewPlan(limits.Fault{
		Point:  "chase.rule",
		After:  1,
		Action: limits.ActHook,
		Hook:   cancel,
	})
	res, err := RunCtx(ctx, chainDB(8), datalog.MustParse(chainSrc), Options{Faults: plan})
	if !errors.Is(err, limits.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil || res.Instance == nil {
		t.Fatal("cancellation must still return the partial instance")
	}
	if plan.Fires() == 0 {
		t.Fatal("the cancel hook never fired")
	}
	tr, ok := limits.TruncationOf(err)
	if !ok || tr.Limit != limits.LimitCanceled {
		t.Fatalf("want canceled truncation, got %+v (ok=%v)", tr, ok)
	}
}

func TestExpiredDeadlineReturnsErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err := RunCtx(ctx, chainDB(4), datalog.MustParse(chainSrc), Options{})
	if !errors.Is(err, limits.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestInjectedFaultAtRoundBoundary(t *testing.T) {
	plan := limits.NewPlan(limits.Fault{Point: "chase.round", After: 1, Action: limits.ActError})
	res, err := Run(chainDB(8), datalog.MustParse(chainSrc), Options{Faults: plan})
	if !errors.Is(err, limits.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if res == nil || res.Instance == nil {
		t.Fatal("injected abort must return the partial instance")
	}
	if plan.Fires() != 1 {
		t.Fatalf("plan fired %d times, want 1", plan.Fires())
	}
}

func TestGlobalFaultPlanViaEnvSyntax(t *testing.T) {
	plan, err := limits.ParsePlan("chase.round@1=error")
	if err != nil {
		t.Fatal(err)
	}
	defer limits.SetGlobal(plan)()
	_, err = Run(chainDB(8), datalog.MustParse(chainSrc), Options{})
	if !errors.Is(err, limits.ErrInjected) {
		t.Fatalf("want ErrInjected from the global plan, got %v", err)
	}
}

func TestAbortEmitsObsEvent(t *testing.T) {
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	_, err := Run(chainDB(8), datalog.MustParse(chainSrc), Options{MaxRounds: 1, Obs: o})
	if !errors.Is(err, limits.ErrRoundBudget) {
		t.Fatalf("want ErrRoundBudget, got %v", err)
	}
	records, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range records {
		if r["kind"] == "event" && r["name"] == "limits.aborted" {
			attrs, _ := r["attrs"].(map[string]any)
			if attrs["limit"] != limits.LimitRounds {
				t.Fatalf("limits.aborted limit attr = %v, want %q", attrs["limit"], limits.LimitRounds)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("trace has no limits.aborted event")
	}
}

func TestAnswerCtxReturnsPartialAnswersOnBudget(t *testing.T) {
	q := datalog.Query{Program: datalog.MustParse(chainSrc + "\nstep(?X, ?Y) -> query(?X, ?Y).\n"), Output: "query"}
	ans, err := AnswerCtx(context.Background(), chainDB(8), q, Options{MaxRounds: 3})
	if !errors.Is(err, limits.ErrRoundBudget) {
		t.Fatalf("want ErrRoundBudget, got %v", err)
	}
	if ans == nil {
		t.Fatal("budget abort must return the partial answers")
	}
	full, ferr := Answer(chainDB(8), q, Options{})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if len(ans.Tuples) == 0 || len(ans.Tuples) >= len(full.Tuples) {
		t.Fatalf("partial answers = %d, full = %d; want a proper non-empty subset", len(ans.Tuples), len(full.Tuples))
	}
}
