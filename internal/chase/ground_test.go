package chase

import (
	"testing"

	"repro/internal/datalog"
)

func TestGroundSemanticsExactOnTerminatingChase(t *testing.T) {
	db := NewInstance(atom("e", "a", "b"), atom("e", "b", "c"))
	gr, err := GroundSemantics(db, datalog.MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Exact {
		t.Error("terminating chase must be exact")
	}
	if !gr.Ground.Has(atom("tc", "a", "c")) {
		t.Error("missing tc(a,c)")
	}
}

func TestStableGroundOnInfiniteWardedChase(t *testing.T) {
	// The canonical warded program with an infinite chase: ground atoms are
	// nevertheless finite. e(a,b); e(X,Y) → ∃Z e(Y,Z); e(X,Y),g(Y) → out(X).
	db := NewInstance(atom("e", "a", "b"), atom("g", "b"))
	prog := datalog.MustParse(`
		e(?X, ?Y) -> exists ?Z e(?Y, ?Z).
		e(?X, ?Y), g(?Y) -> out(?X).
	`)
	if err := datalog.CheckWarded(prog); err != nil {
		t.Fatalf("test program should be warded: %v", err)
	}
	gr, err := StableGround(db, prog, Options{MaxDepth: 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Inconsistent {
		t.Fatal("unexpected ⊤")
	}
	if !gr.Ground.Has(atom("out", "a")) {
		t.Error("out(a) missing")
	}
	if gr.Ground.Has(atom("out", "b")) {
		t.Error("out(b) must not be derivable: g holds only for b, e(b,·) leads to nulls")
	}
	// e's ground part is only the database edge.
	if got := len(gr.Ground.AtomsOf("e")); got != 1 {
		t.Errorf("ground e atoms = %d, want 1", got)
	}
}

func TestStableGroundDetectsNewGroundAtomsAtDepth(t *testing.T) {
	// Ground atoms that require chasing through several null levels:
	// a(c) → ∃Z1 p1; p1 → ∃Z2 p2; p2(X,…) joined back on the constant.
	db := NewInstance(atom("a", "c"))
	prog := datalog.MustParse(`
		a(?X) -> exists ?Z p(?X, ?Z).
		p(?X, ?Z) -> exists ?W q(?X, ?Z, ?W).
		q(?X, ?Z, ?W) -> found(?X).
	`)
	gr, err := StableGround(db, prog, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Exact {
		t.Error("acyclic program should terminate exactly")
	}
	if !gr.Ground.Has(atom("found", "c")) {
		t.Error("found(c) missing")
	}
}

func TestStableGroundInconsistency(t *testing.T) {
	db := NewInstance(atom("a", "c"))
	prog := datalog.MustParse(`
		a(?X) -> exists ?Z p(?X, ?Z).
		p(?X, ?Z) -> false.
	`)
	gr, err := StableGround(db, prog, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Inconsistent {
		t.Error("constraint over null-carrying atom should fire")
	}
}

func TestStableGroundGivesUpAtCeiling(t *testing.T) {
	// A program whose ground part keeps growing with depth (not warded:
	// the invented null feeds a counter joined with constants). StableGround
	// must stop at the ceiling rather than loop forever.
	db := NewInstance(atom("s", "a", "b"), atom("c", "a"))
	prog := datalog.MustParse(`
		s(?X, ?Y) -> exists ?Z s(?Y, ?Z).
		s(?X, ?Y), c(?W) -> reach(?W, ?X).
	`)
	gr, err := StableGround(db, prog, Options{MaxDepth: 6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Exact {
		t.Error("infinite chase cannot be exact")
	}
	if gr.Depth > 6 {
		t.Errorf("depth %d exceeded ceiling", gr.Depth)
	}
}
