package chase

import "sync/atomic"

// Progress is a lock-free live view of chase work, meant to be shared by an
// operator-facing poller (triqd's /debug/progress) while evaluations run.
// The engine stores into it with plain atomics from the round loop and the
// enumeration workers, so sampling it costs the reader a handful of atomic
// loads and costs the chase nothing measurable. When several evaluations
// share one Progress (a server), Round/Facts are last-writer-wins live
// gauges while ActiveRuns, WorkersBusy, and TriggersFired aggregate across
// runs; the point is watching a long materialization move, not accounting.
//
// The zero value is ready to use. Progress never influences evaluation:
// answers and Stats stay bit-identical with or without it.
type Progress struct {
	activeRuns  atomic.Int64
	round       atomic.Int64
	facts       atomic.Int64
	triggers    atomic.Int64
	workersBusy atomic.Int64
}

// ProgressSnapshot is one point-in-time sample of a Progress, in the JSON
// shape served at /debug/progress.
type ProgressSnapshot struct {
	// ActiveRuns is the number of chase runs currently between start and
	// finish (0 = idle).
	ActiveRuns int64 `json:"active_runs"`
	// Round is the current (1-based) semi-naive round of the most recently
	// advanced run.
	Round int64 `json:"round"`
	// Facts is the instance size as of the last rule turn that reported.
	Facts int64 `json:"facts"`
	// TriggersFired counts triggers fired across all runs sharing this
	// Progress (monotonic while the process lives).
	TriggersFired int64 `json:"triggers_fired"`
	// WorkersBusy is the number of parallel enumeration workers currently
	// running.
	WorkersBusy int64 `json:"workers_busy"`
}

// Snapshot samples the progress; a nil Progress samples as all-zero.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		ActiveRuns:    p.activeRuns.Load(),
		Round:         p.round.Load(),
		Facts:         p.facts.Load(),
		TriggersFired: p.triggers.Load(),
		WorkersBusy:   p.workersBusy.Load(),
	}
}

// The unexported mutators below are all nil-safe so instrumentation sites
// need no branches beyond the method call.

func (p *Progress) runStart() {
	if p != nil {
		p.activeRuns.Add(1)
	}
}

func (p *Progress) runEnd() {
	if p != nil {
		p.activeRuns.Add(-1)
	}
}

func (p *Progress) setRound(round, facts int64) {
	if p != nil {
		p.round.Store(round)
		p.facts.Store(facts)
	}
}

func (p *Progress) setFacts(n int64) {
	if p != nil {
		p.facts.Store(n)
	}
}

func (p *Progress) addTriggers(n int64) {
	if p != nil && n != 0 {
		p.triggers.Add(n)
	}
}

func (p *Progress) workerStart() {
	if p != nil {
		p.workersBusy.Add(1)
	}
}

func (p *Progress) workerEnd() {
	if p != nil {
		p.workersBusy.Add(-1)
	}
}
