package chase

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
)

func mustRun(t *testing.T, db *Instance, src string, opts Options) *Result {
	t.Helper()
	res, err := Run(db, datalog.MustParse(src), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChaseTransitiveClosure(t *testing.T) {
	db := NewInstance(
		atom("e", "a", "b"), atom("e", "b", "c"), atom("e", "c", "d"),
	)
	res := mustRun(t, db, `
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`, Options{})
	want := [][2]string{
		{"a", "b"}, {"b", "c"}, {"c", "d"},
		{"a", "c"}, {"b", "d"}, {"a", "d"},
	}
	for _, w := range want {
		if !res.Instance.Has(atom("tc", w[0], w[1])) {
			t.Errorf("missing tc(%s,%s)", w[0], w[1])
		}
	}
	if got := len(res.Instance.AtomsOf("tc")); got != len(want) {
		t.Errorf("tc count = %d, want %d", got, len(want))
	}
	if res.Stats.DepthTruncated {
		t.Error("Datalog chase should never truncate")
	}
}

func TestChaseSection2Transport(t *testing.T) {
	// The transport-service scenario of Section 2.
	db := NewInstance(
		atom("triple", "TheAirline", "partOf", "transportService"),
		atom("triple", "BritishAirways", "partOf", "transportService"),
		atom("triple", "Renfe", "partOf", "transportService"),
		atom("triple", "A311", "partOf", "TheAirline"),
		atom("triple", "BA201", "partOf", "BritishAirways"),
		atom("triple", "R502", "partOf", "Renfe"),
		atom("triple", "Oxford", "A311", "London"),
		atom("triple", "London", "BA201", "Madrid"),
		atom("triple", "Madrid", "R502", "Valladolid"),
	)
	// The Section 2 program, with the recursive predicate factored out of
	// the output predicate to satisfy the formal query definition of §3.2
	// (the output predicate may not occur in rule bodies).
	q := datalog.MustParseQuery(`
		triple(?X, partOf, transportService) -> ts(?X).
		triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
		ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
		ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
		conn(?X, ?Y) -> query(?X, ?Y).
	`, "query")
	ans, err := Answer(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := [][2]string{
		{"Oxford", "London"}, {"Oxford", "Madrid"}, {"Oxford", "Valladolid"},
		{"London", "Madrid"}, {"London", "Valladolid"},
		{"Madrid", "Valladolid"},
	}
	if len(ans.Tuples) != len(wantPairs) {
		t.Errorf("answers = %v, want %d pairs", ans.Tuples, len(wantPairs))
	}
	for _, w := range wantPairs {
		if !ans.HasConstants(w[0], w[1]) {
			t.Errorf("missing connection %s → %s", w[0], w[1])
		}
	}
}

func TestChaseStratifiedNegationMinMax(t *testing.T) {
	// The Π_aux order rules of Example 4.3.
	db := NewInstance(
		atom("succ0", "0", "1"), atom("succ0", "1", "2"), atom("succ0", "2", "3"),
	)
	res := mustRun(t, db, `
		succ0(?X, ?Y) -> less0(?X, ?Y).
		succ0(?X, ?Y), less0(?Y, ?Z) -> less0(?X, ?Z).
		less0(?X, ?Y) -> not_max(?X).
		less0(?X, ?Y) -> not_min(?Y).
		less0(?X, ?Y), not not_min(?X) -> zero0(?X).
		less0(?Y, ?X), not not_max(?X) -> max0(?X).
	`, Options{})
	if !res.Instance.Has(atom("zero0", "0")) {
		t.Error("zero0(0) missing")
	}
	if !res.Instance.Has(atom("max0", "3")) {
		t.Error("max0(3) missing")
	}
	if got := len(res.Instance.AtomsOf("zero0")); got != 1 {
		t.Errorf("zero0 atoms = %d, want 1", got)
	}
	if got := len(res.Instance.AtomsOf("max0")); got != 1 {
		t.Errorf("max0 atoms = %d, want 1", got)
	}
	if got := len(res.Instance.AtomsOf("less0")); got != 6 {
		t.Errorf("less0 atoms = %d, want 6", got)
	}
}

func TestChaseExistentialCoauthors(t *testing.T) {
	// The blank-node CONSTRUCT query (4) of Section 2 as a Datalog∃ rule.
	db := NewInstance(atom("triple", "dbAho", "is_coauthor_of", "dbUllman"))
	res := mustRun(t, db, `
		triple(?X, is_coauthor_of, ?Y) ->
			exists ?Z pub(?X, ?Z), pub(?Y, ?Z).
	`, Options{})
	pubs := res.Instance.AtomsOf("pub")
	if len(pubs) != 2 {
		t.Fatalf("pub atoms = %v", pubs)
	}
	// Both authors share the same invented null.
	if pubs[0].Args[1] != pubs[1].Args[1] {
		t.Errorf("shared existential differs: %v vs %v", pubs[0], pubs[1])
	}
	if !pubs[0].Args[1].IsNull() {
		t.Error("second position should be a null")
	}
}

func TestChaseSkolemReusesNulls(t *testing.T) {
	// Two derivations of the same trigger must not invent two nulls.
	db := NewInstance(atom("a", "c"), atom("b", "c"))
	res := mustRun(t, db, `
		a(?X) -> s(?X).
		b(?X) -> s(?X).
		s(?X) -> exists ?Z e(?X, ?Z).
	`, Options{Mode: Skolem})
	if got := len(res.Instance.AtomsOf("e")); got != 1 {
		t.Errorf("e atoms = %d, want 1 (Skolem reuse)", got)
	}
	if res.Stats.NullsInvented != 1 {
		t.Errorf("nulls invented = %d, want 1", res.Stats.NullsInvented)
	}
}

func TestChaseRestrictedSkipsSatisfiedHeads(t *testing.T) {
	// anon(?X) → ∃Z e(?X,?Z) is already satisfied for a: e(a,b) exists.
	db := NewInstance(atom("anon", "a"), atom("e", "a", "b"))
	res := mustRun(t, db, `
		anon(?X) -> exists ?Z e(?X, ?Z).
	`, Options{Mode: Restricted})
	if got := len(res.Instance.AtomsOf("e")); got != 1 {
		t.Errorf("restricted chase invented a redundant null: %v", res.Instance.AtomsOf("e"))
	}
	// Skolem mode fires regardless.
	res = mustRun(t, db, `
		anon(?X) -> exists ?Z e(?X, ?Z).
	`, Options{Mode: Skolem})
	if got := len(res.Instance.AtomsOf("e")); got != 2 {
		t.Errorf("skolem chase should fire: %v", res.Instance.AtomsOf("e"))
	}
}

func TestChaseAnonymizationGlobalBlankNodes(t *testing.T) {
	// The subject-anonymization program of Section 2: the same subject gets
	// the same blank node across all its triples (which CONSTRUCT cannot do).
	db := NewInstance(
		atom("triple", "u1", "p", "a"),
		atom("triple", "u1", "q", "b"),
		atom("triple", "u2", "p", "c"),
	)
	res := mustRun(t, db, `
		triple(?X, ?Y, ?Z) -> subj(?X).
		subj(?X) -> exists ?Y bn(?X, ?Y).
		triple(?X, ?Y, ?Z), bn(?X, ?U) -> output(?U, ?Y, ?Z).
	`, Options{})
	out := res.Instance.AtomsOf("output")
	if len(out) != 3 {
		t.Fatalf("output = %v", out)
	}
	byPred := map[string]datalog.Term{}
	for _, a := range out {
		if !a.Args[0].IsNull() {
			t.Errorf("subject not anonymized: %v", a)
		}
		key := a.Args[1].Name + "/" + a.Args[2].Name
		byPred[key] = a.Args[0]
	}
	if byPred["p/a"] != byPred["q/b"] {
		t.Error("u1's triples must share one blank node")
	}
	if byPred["p/a"] == byPred["p/c"] {
		t.Error("u1 and u2 must get distinct blank nodes")
	}
}

func TestChaseInfiniteChainTruncates(t *testing.T) {
	db := NewInstance(atom("s", "a", "b"))
	res := mustRun(t, db, `
		s(?X, ?Y) -> exists ?Z s(?Y, ?Z).
	`, Options{MaxDepth: 5})
	if !res.Stats.DepthTruncated {
		t.Error("infinite chain must hit the depth bound")
	}
	// Ground part is just the database.
	g := res.Instance.GroundPart()
	if g.Len() != 1 {
		t.Errorf("ground part = %v", g.All())
	}
	// Depth d adds exactly one null per level.
	if res.Stats.NullsInvented != 5 {
		t.Errorf("nulls = %d, want 5", res.Stats.NullsInvented)
	}
}

func TestChaseConstraints(t *testing.T) {
	db := NewInstance(atom("type", "a", "C1"), atom("type", "a", "C2"), atom("disj", "C1", "C2"))
	res := mustRun(t, db, `
		type(?X, ?Y) -> keep(?X).
		type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.
	`, Options{})
	if !res.Inconsistent {
		t.Error("disjointness violation must yield ⊤")
	}
	db2 := NewInstance(atom("type", "a", "C1"), atom("disj", "C1", "C2"))
	res = mustRun(t, db2, `
		type(?X, ?Y) -> keep(?X).
		type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.
	`, Options{})
	if res.Inconsistent {
		t.Error("consistent database flagged as ⊤")
	}
}

func TestAnswerFiltersNulls(t *testing.T) {
	db := NewInstance(atom("a", "c"))
	q := datalog.MustParseQuery(`
		a(?X) -> exists ?Z e(?X, ?Z).
		e(?X, ?Y) -> out(?X, ?Y).
	`, "out")
	ans, err := Answer(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// out(c, z) has a null → not a constant tuple → excluded per Q(D) ⊆ U^n.
	if len(ans.Tuples) != 0 {
		t.Errorf("answers = %v, want none", ans.Tuples)
	}
}

func TestAnswerInconsistent(t *testing.T) {
	db := NewInstance(atom("bad", "x"))
	q := datalog.MustParseQuery(`
		bad(?X) -> out(?X).
		bad(?X) -> false.
	`, "out")
	ans, err := Answer(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Inconsistent {
		t.Error("Q(D) should be ⊤")
	}
}

func TestAnswerHasHelpers(t *testing.T) {
	a := &Answers{Tuples: [][]datalog.Term{{datalog.C("x"), datalog.C("y")}}}
	if !a.HasConstants("x", "y") || a.HasConstants("x") || a.HasConstants("y", "x") {
		t.Error("Has helpers wrong")
	}
}

// The k-clique query of Example 4.3, end to end.
func cliqueDB(k int, nodes []string, edges [][2]string) *Instance {
	db := NewInstance()
	for _, n := range nodes {
		db.Add(atom("node0", n))
	}
	for _, e := range edges {
		db.Add(atom("edge0", e[0], e[1]))
		db.Add(atom("edge0", e[1], e[0]))
	}
	digits := []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}
	for i := 0; i < k; i++ {
		db.Add(atom("succ0", digits[i], digits[i+1]))
	}
	return db
}

const cliqueSrc = `
	succ0(?X, ?Y) -> less0(?X, ?Y).
	succ0(?X, ?Y), less0(?Y, ?Z) -> less0(?X, ?Z).
	less0(?X, ?Y) -> not_max(?X).
	less0(?X, ?Y) -> not_min(?Y).
	less0(?X, ?Y), not not_min(?X) -> zero0(?X).
	less0(?Y, ?X), not not_max(?X) -> max0(?X).
	node0(?X) -> node(?X).
	edge0(?X, ?Y) -> edge(?X, ?Y).
	succ0(?X, ?Y) -> succ(?X, ?Y).
	less0(?X, ?Y) -> less(?X, ?Y).
	zero0(?X) -> zero(?X).
	max0(?X) -> max(?X).
	zero(?X) -> exists ?Y ism(?Y, ?X).
	ism(?X, ?Y), succ(?Y, ?Z), node(?W) ->
		exists ?U next(?X, ?W, ?U), ism(?U, ?Z), map(?U, ?Z, ?W).
	next(?X, ?Y, ?Z), map(?X, ?U, ?V) -> map(?Z, ?U, ?V).
	less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?U), not edge(?W, ?U) -> noclique(?Z).
	less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?W) -> noclique(?Z).
	ism(?X, ?Y), max(?Y), not noclique(?X) -> yes().
`

func TestCliqueQueryExample43(t *testing.T) {
	q := datalog.MustParseQuery(cliqueSrc, "yes")
	cases := []struct {
		name  string
		k     int
		nodes []string
		edges [][2]string
		want  bool
	}{
		{"triangle k=3", 3, []string{"a", "b", "c"},
			[][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}, true},
		{"path k=3", 3, []string{"a", "b", "c"},
			[][2]string{{"a", "b"}, {"b", "c"}}, false},
		{"k4 in k4 plus pendant", 4, []string{"a", "b", "c", "d", "e"},
			[][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}, {"d", "e"}}, true},
		{"k4 missing edge", 4, []string{"a", "b", "c", "d"},
			[][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}}, false},
		{"self loop is not a 2-clique twice", 3, []string{"a", "b"},
			[][2]string{{"a", "a"}, {"a", "b"}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := cliqueDB(tc.k, tc.nodes, tc.edges)
			ans, err := Answer(db, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := ans.Has()
			if got != tc.want {
				t.Errorf("k-clique = %v, want %v", got, tc.want)
			}
		})
	}
}

// Property: the chase result of a Datalog program does not depend on rule
// order.
func TestChaseRuleOrderIndependence(t *testing.T) {
	src := `
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
		tc(?X, ?X) -> cyc(?X).
		e(?X, ?Y), not cyc(?X) -> acyc(?X).
	`
	db := NewInstance(
		atom("e", "a", "b"), atom("e", "b", "c"), atom("e", "c", "a"),
		atom("e", "d", "e"),
	)
	base, err := Run(db, datalog.MustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 10; round++ {
		prog := datalog.MustParse(src)
		rng.Shuffle(len(prog.Rules), func(i, j int) {
			prog.Rules[i], prog.Rules[j] = prog.Rules[j], prog.Rules[i]
		})
		res, err := Run(db, prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Instance.Equal(base.Instance) {
			t.Fatalf("round %d: rule order changed the result", round)
		}
	}
}

func TestChaseMaxFacts(t *testing.T) {
	db := NewInstance(atom("n", "a"), atom("n", "b"), atom("n", "c"))
	_, err := Run(db, datalog.MustParse(`
		n(?X), n(?Y) -> pair(?X, ?Y).
	`), Options{MaxFacts: 5})
	if err == nil {
		t.Error("MaxFacts must abort the chase")
	}
}

func TestModeString(t *testing.T) {
	if Skolem.String() != "skolem" || Restricted.String() != "restricted" {
		t.Error("Mode strings wrong")
	}
	if Mode(7).String() == "" {
		t.Error("unknown mode should render")
	}
}
