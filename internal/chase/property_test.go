package chase

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
)

// randomProgram builds a random safe positive Datalog∃ program over unary
// and binary predicates p/1, e/2, q/1, r/2 with occasional existentials.
func randomProgram(rng *rand.Rand, allowExistentials bool) *datalog.Program {
	x, y, z := datalog.V("X"), datalog.V("Y"), datalog.V("Z")
	bodies := [][]datalog.Atom{
		{datalog.NewAtom("p", x)},
		{datalog.NewAtom("e", x, y)},
		{datalog.NewAtom("e", x, y), datalog.NewAtom("e", y, z)},
		{datalog.NewAtom("e", x, y), datalog.NewAtom("p", y)},
		{datalog.NewAtom("r", x, y), datalog.NewAtom("q", y)},
		{datalog.NewAtom("p", x), datalog.NewAtom("q", x)},
	}
	heads := []datalog.Atom{
		datalog.NewAtom("q", x),
		datalog.NewAtom("r", x, y),
		datalog.NewAtom("r", x, x),
		datalog.NewAtom("e", x, y),
		datalog.NewAtom("p", y),
	}
	exHeads := []datalog.Atom{
		datalog.NewAtom("r", x, datalog.V("W")),
		datalog.NewAtom("e", x, datalog.V("W")),
	}
	prog := &datalog.Program{}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		body := bodies[rng.Intn(len(bodies))]
		var head datalog.Atom
		if allowExistentials && rng.Intn(3) == 0 {
			head = exHeads[rng.Intn(len(exHeads))]
		} else {
			head = heads[rng.Intn(len(heads))]
		}
		// Safety: non-existential head vars must occur in the body.
		bv := map[datalog.Term]bool{}
		for _, v := range datalog.VarsOf(body) {
			bv[v] = true
		}
		ok := true
		for _, v := range head.Vars() {
			if v != datalog.V("W") && !bv[v] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		prog.Add(datalog.Rule{BodyPos: body, Head: []datalog.Atom{head}})
	}
	if len(prog.Rules) == 0 {
		prog.Add(datalog.MustParse(`p(?X) -> q(?X).`).Rules[0])
	}
	return prog
}

func randomDB(rng *rand.Rand) *Instance {
	db := NewInstance()
	names := []string{"a", "b", "c"}
	for i := 0; i < 2+rng.Intn(5); i++ {
		switch rng.Intn(3) {
		case 0:
			db.Add(atom("p", names[rng.Intn(3)]))
		case 1:
			db.Add(atom("q", names[rng.Intn(3)]))
		default:
			db.Add(atom("e", names[rng.Intn(3)], names[rng.Intn(3)]))
		}
	}
	return db
}

// Property: semi-naive and naive evaluation produce the same instance on
// random existential programs.
func TestPropertySemiNaiveEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng, true)
		db := randomDB(rng)
		opts := Options{MaxDepth: 4}
		semi, err1 := Run(db, prog, opts)
		naiveOpts := opts
		naiveOpts.NaiveEvaluation = true
		naive, err2 := Run(db, prog, naiveOpts)
		if err1 != nil || err2 != nil {
			t.Logf("errors: %v %v\n%s", err1, err2, prog)
			return false
		}
		// The Skolem naming may differ between strategies, so compare the
		// ground parts (which determine all answers).
		if !semi.Instance.GroundPart().Equal(naive.Instance.GroundPart()) {
			t.Logf("program:\n%s\ndb:\n%s", prog, db)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the chase is monotone in the database for positive programs —
// adding facts never removes derivable ground atoms.
func TestPropertyChaseMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng, true)
		db := randomDB(rng)
		bigger := db.Clone()
		bigger.Add(atom("e", "a", "c"))
		bigger.Add(atom("p", "b"))
		small, err1 := Run(db, prog, Options{MaxDepth: 4})
		big, err2 := Run(bigger, prog, Options{MaxDepth: 4})
		if err1 != nil || err2 != nil {
			return false
		}
		for _, a := range small.Instance.GroundPart().All() {
			if !big.Instance.Has(a) {
				t.Logf("lost %v for program:\n%s", a, prog)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SingleHead and SingleExistential preserve the ground semantics
// on the original schema.
func TestPropertyNormalizationsPreserveGround(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng, true)
		// Multi-head variant: merge two random rules' heads.
		if len(prog.Rules) >= 2 && rng.Intn(2) == 0 {
			r0 := prog.Rules[0]
			r0.Head = append(append([]datalog.Atom{}, r0.Head...), prog.Rules[1].Head...)
			// Keep safety: all non-existential head vars must be in body.
			bv := map[datalog.Term]bool{}
			for _, v := range datalog.VarsOf(r0.BodyPos) {
				bv[v] = true
			}
			ok := true
			for _, v := range datalog.VarsOf(r0.Head) {
				if v != datalog.V("W") && !bv[v] {
					ok = false
				}
			}
			if ok {
				prog.Rules[0] = r0
			}
		}
		db := randomDB(rng)
		sch, err := prog.Schema()
		if err != nil {
			return true // arity clash in generated program: skip
		}
		base, err := Run(db, prog, Options{MaxDepth: 4})
		if err != nil {
			return false
		}
		for name, norm := range map[string]*datalog.Program{
			"single-head":        datalog.SingleHead(prog),
			"single-existential": datalog.SingleExistential(datalog.SingleHead(prog)),
		} {
			got, err := Run(db, norm, Options{MaxDepth: 4})
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			for pred := range sch {
				for _, a := range base.Instance.GroundPart().AtomsOf(pred) {
					if !got.Instance.Has(a) {
						t.Logf("%s lost %v for\n%s", name, a, prog)
						return false
					}
				}
				for _, a := range got.Instance.GroundPart().AtomsOf(pred) {
					if !base.Instance.Has(a) {
						t.Logf("%s invented %v for\n%s", name, a, prog)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Instance.Has agrees with linear scan after random adds.
func TestPropertyInstanceHasConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := NewInstance()
		var all []datalog.Atom
		for i := 0; i < 30; i++ {
			a := atom(fmt.Sprintf("p%d", rng.Intn(3)),
				fmt.Sprintf("c%d", rng.Intn(4)), fmt.Sprintf("c%d", rng.Intn(4)))
			inst.Add(a)
			all = append(all, a)
		}
		for _, a := range all {
			if !inst.Has(a) {
				return false
			}
		}
		if inst.Has(atom("absent", "x")) {
			return false
		}
		// Lookup cross-check against brute force.
		probe := atom("p0", "c1", "c2")
		want := 0
		for _, a := range inst.AtomsOf("p0") {
			if a.Args[0] == probe.Args[0] {
				want++
			}
		}
		if len(inst.Lookup("p0", 0, probe.Args[0])) != want {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
