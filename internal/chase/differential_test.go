package chase

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/datalog"
	"repro/internal/limits"
)

// The differential suite proves the tentpole guarantee of the parallel
// engine: for the same program and database, every Parallelism value
// produces the byte-identical instance (including invented null names), the
// same Stats (down to per-rule trigger counts), and the same typed
// truncation outcome. Random warded programs are driven through
// {1, 2, 8 workers} × {Skolem, Restricted} × {semi-naive, naive}; within a
// (mode, evaluation) cell the runs must agree exactly, and across the two
// evaluation strategies they must agree up to null renaming (the invention
// order of fresh nulls differs between full re-matching and delta seeding,
// their count and the ground part do not).
//
// On failure the case's seed and generated program are logged; replay one
// seed with TRIQ_DIFF_SEED=<n> go test -run TestDifferential ./internal/chase.

// diffTemplates is the rule pool the generator samples from. Each rule is
// individually warded (existential rules are guarded: single-atom positive
// bodies, or bodies whose null-carrying variables stay inside one atom) and
// negation is applied to EDB predicates or low strata only; the generator
// still filters every sampled program through Validate/CheckWarded/
// IsStratified, discarding combinations that break either property.
var diffTemplates = []string{
	"e0(?X, ?Y) -> p(?X, ?Y).",
	"e1(?X, ?Y) -> p(?Y, ?X).",
	"p(?X, ?Y), e1(?Y, ?Z) -> p(?X, ?Z).",
	"p(?X, ?Y), p(?Y, ?Z) -> q(?X, ?Z).",
	"e0(?X, ?Y) -> q(?X, ?Y).",
	"q(?X, ?Y) -> r(?X).",
	"r(?X) -> s(?X, ?V).",
	"e1(?X, ?Y) -> s(?Y, ?W).",
	"s(?X, ?V), e0(?X, ?Y) -> p(?X, ?Y).",
	"s(?X, ?V), e1(?X, ?Z) -> q(?X, ?Z).",
	"s(?X, ?V), e1(?X, ?Y) -> s(?Y, ?W).",
	"s(?X, ?V) -> q(?X, ?X).",
	"e0(?X, ?Y), not e1(?X, ?Y) -> q(?Y, ?X).",
	"e1(?X, ?Y), not e0(?Y, ?X) -> r(?X).",
	"r(?X), e0(?X, ?Y) -> q(?X, ?Y).",
}

// diffCase is one generated program + database.
type diffCase struct {
	seed    int64
	program *datalog.Program
	source  string
	db      *Instance
}

// genDiffCase derives a valid random case from the seed: a subset of the
// template pool that parses, is warded, and stratifies, over a random EDB
// big enough that trigger enumeration crosses the parallel threshold.
func genDiffCase(seed int64) (diffCase, error) {
	rng := rand.New(rand.NewSource(seed))
	var prog *datalog.Program
	var source string
	for attempt := 0; ; attempt++ {
		if attempt >= 100 {
			return diffCase{}, fmt.Errorf("no valid program after %d attempts", attempt)
		}
		perm := rng.Perm(len(diffTemplates))
		k := 3 + rng.Intn(5)
		source = ""
		for _, i := range perm[:k] {
			source += diffTemplates[i] + "\n"
		}
		p, err := datalog.Parse(source)
		if err != nil {
			continue
		}
		if datalog.CheckWarded(p) != nil || !datalog.IsStratified(p) {
			continue
		}
		prog = p
		break
	}
	consts := make([]datalog.Term, 12)
	for i := range consts {
		consts[i] = datalog.C("c" + strconv.Itoa(i))
	}
	db := NewInstance()
	for _, pred := range []string{"e0", "e1"} {
		n := 40 + rng.Intn(60)
		for i := 0; i < n; i++ {
			db.Add(datalog.NewAtom(pred, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]))
		}
	}
	return diffCase{seed: seed, program: prog, source: source, db: db}, nil
}

// diffOutcome is everything a run must reproduce exactly.
type diffOutcome struct {
	res *Result
	err error
}

func runDiff(c diffCase, parallelism int, mode Mode, naive bool) diffOutcome {
	res, err := Run(c.db, c.program, Options{
		Mode:            mode,
		MaxDepth:        3,
		MaxFacts:        50_000,
		MaxRounds:       1_000,
		NaiveEvaluation: naive,
		Parallelism:     parallelism,
	})
	return diffOutcome{res: res, err: err}
}

// normStats strips the fields that are allowed to differ between runs: Time
// (wall clock) and Parallelism (configuration, not behavior).
func normStats(s Stats) Stats {
	s.Parallelism = 0
	for i := range s.PerRule {
		s.PerRule[i].Time = 0
	}
	return s
}

// sameError compares typed limit outcomes: both nil, or same limit name with
// the same deterministic truncation counters.
func sameError(a, b error) (bool, string) {
	if (a == nil) != (b == nil) {
		return false, fmt.Sprintf("error presence differs: %v vs %v", a, b)
	}
	if a == nil {
		return true, ""
	}
	if limits.LimitName(a) != limits.LimitName(b) {
		return false, fmt.Sprintf("limit differs: %v vs %v", a, b)
	}
	ta, oka := limits.TruncationOf(a)
	tb, okb := limits.TruncationOf(b)
	if oka != okb {
		return false, "truncation presence differs"
	}
	if oka && (ta.Budget != tb.Budget || ta.Reached != tb.Reached || ta.Rounds != tb.Rounds || ta.Facts != tb.Facts) {
		return false, fmt.Sprintf("truncation differs: %+v vs %+v", ta, tb)
	}
	return true, ""
}

// requireIdentical asserts the full bit-identical contract between a
// baseline run and a run that differs only in Parallelism.
func requireIdentical(t *testing.T, label string, base, got diffOutcome) {
	t.Helper()
	if ok, why := sameError(base.err, got.err); !ok {
		t.Errorf("%s: %s", label, why)
		return
	}
	if (base.res == nil) != (got.res == nil) {
		t.Errorf("%s: result presence differs", label)
		return
	}
	if base.res == nil {
		return
	}
	if base.res.Inconsistent != got.res.Inconsistent {
		t.Errorf("%s: Inconsistent differs: %v vs %v", label, base.res.Inconsistent, got.res.Inconsistent)
	}
	if bs, gs := normStats(base.res.Stats), normStats(got.res.Stats); fmt.Sprintf("%+v", bs) != fmt.Sprintf("%+v", gs) {
		t.Errorf("%s: stats differ:\n  base: %+v\n  got:  %+v", label, bs, gs)
	}
	if bi, gi := base.res.Instance.String(), got.res.Instance.String(); bi != gi {
		t.Errorf("%s: instances differ (%d vs %d atoms)", label, base.res.Instance.Len(), got.res.Instance.Len())
	}
}

// requireEquivalent asserts the cross-evaluation-strategy contract, which is
// weaker than the cross-parallelism one: naive full re-matching can reach
// the fixpoint in fewer rounds than delta seeding (a rule's same-round
// output is visible to the next full scan but only enters the delta one
// round later), and the rule that first derives a shared fact can shift with
// it — so rounds, trigger counts, and per-rule attribution are allowed to
// differ. What must agree: the fixpoint itself (ground part exactly, nulls
// up to renaming — invention order differs, so names may be permuted) and
// the typed error outcome. Depth-truncated runs are excluded: truncation
// cuts at a null-depth assignment that depends on which derivation path won,
// so the reachable fixpoints legitimately diverge.
func requireEquivalent(t *testing.T, label string, a, b diffOutcome) {
	t.Helper()
	if ok, why := sameError(a.err, b.err); !ok {
		t.Errorf("%s: %s", label, why)
		return
	}
	if a.res == nil || b.res == nil || a.err != nil {
		return
	}
	if a.res.Stats.DepthTruncated || b.res.Stats.DepthTruncated {
		return
	}
	if !a.res.Instance.GroundPart().Equal(b.res.Instance.GroundPart()) {
		t.Errorf("%s: ground parts differ", label)
	}
	if an, bn := len(a.res.Instance.Nulls()), len(b.res.Instance.Nulls()); an != bn {
		t.Errorf("%s: null counts differ: %d vs %d", label, an, bn)
	}
	if af, bf := a.res.Stats.FactsDerived, b.res.Stats.FactsDerived; af != bf {
		t.Errorf("%s: facts derived differ: %d vs %d", label, af, bf)
	}
}

// injectedSomewhere reports whether any outcome carries an injected fault —
// the process-global TRIQ_FAULTS plan counts hits across runs, so an armed
// probabilistic fault trips at different points in different configurations
// and the case is not comparable.
func injectedSomewhere(outs ...diffOutcome) bool {
	for _, o := range outs {
		if o.err != nil && errors.Is(o.err, limits.ErrInjected) {
			return true
		}
	}
	return false
}

func TestDifferentialEngines(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597, 2584, 4181, 6765, 10946}
	if testing.Short() {
		seeds = seeds[:6]
	}
	if env := os.Getenv("TRIQ_DIFF_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad TRIQ_DIFF_SEED %q: %v", env, err)
		}
		seeds = []int64{n}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c, err := genDiffCase(seed)
			if err != nil {
				t.Fatalf("seed=%d: %v", seed, err)
			}
			fail := func() {
				t.Logf("replay: TRIQ_DIFF_SEED=%d go test -run 'TestDifferentialEngines' ./internal/chase\nprogram (db: %d facts):\n%s",
					seed, c.db.Len(), c.source)
			}
			for _, mode := range []Mode{Skolem, Restricted} {
				var byEval [2]diffOutcome // [0]=semi-naive, [1]=naive baselines
				for ni, naive := range []bool{false, true} {
					base := runDiff(c, 1, mode, naive)
					p2 := runDiff(c, 2, mode, naive)
					p8 := runDiff(c, 8, mode, naive)
					if injectedSomewhere(base, p2, p8) {
						t.Skipf("seed=%d: injected fault (TRIQ_FAULTS armed); case not comparable", seed)
					}
					label := fmt.Sprintf("seed=%d mode=%v naive=%v", seed, mode, naive)
					before := 0
					if t.Failed() {
						before = 1
					}
					requireIdentical(t, label+" P1≡P2", base, p2)
					requireIdentical(t, label+" P1≡P8", base, p8)
					if before == 0 && t.Failed() {
						fail()
					}
					byEval[ni] = base
				}
				if injectedSomewhere(byEval[0], byEval[1]) {
					t.Skipf("seed=%d: injected fault (TRIQ_FAULTS armed); case not comparable", seed)
				}
				before := t.Failed()
				requireEquivalent(t, fmt.Sprintf("seed=%d mode=%v semi-naive≡naive", seed, mode), byEval[0], byEval[1])
				if !before && t.Failed() {
					fail()
				}
			}
		})
	}
}

// TestDifferentialBudgetTrip pins the abort path: a fact budget that trips
// mid-round must abort at the identical fact, with identical partial
// instances and truncation counters, for every worker count. (ErrFactBudget
// is raised in the sequential apply phase, so unlike wall-clock limits it is
// deterministic by construction — this test keeps it that way.)
func TestDifferentialBudgetTrip(t *testing.T) {
	prog := datalog.MustParse(`
		edge(?X, ?Y) -> path(?X, ?Y).
		path(?X, ?Y), edge(?Y, ?Z) -> path(?X, ?Z).
	`)
	db := NewInstance()
	for i := 0; i < 120; i++ {
		db.Add(datalog.NewAtom("edge",
			datalog.C("v"+strconv.Itoa(i)), datalog.C("v"+strconv.Itoa(i+1))))
	}
	run := func(par int) diffOutcome {
		res, err := Run(db, prog, Options{MaxFacts: 300, Parallelism: par})
		return diffOutcome{res: res, err: err}
	}
	base := run(1)
	if base.err == nil || !errors.Is(base.err, limits.ErrFactBudget) {
		t.Fatalf("expected fact-budget abort, got %v", base.err)
	}
	for _, par := range []int{2, 4, 8} {
		requireIdentical(t, fmt.Sprintf("budget P1≡P%d", par), base, run(par))
	}
}

// TestParallelismDefaulting pins the Options contract: 0 means GOMAXPROCS
// (≥1), negative values clamp to sequential, and the resolved value is
// reported in Stats.
func TestParallelismDefaulting(t *testing.T) {
	for _, par := range []int{0, -3, 1, 4} {
		o := Options{Parallelism: par}.withDefaults()
		if o.Parallelism < 1 {
			t.Errorf("Parallelism=%d resolved to %d, want >= 1", par, o.Parallelism)
		}
	}
	prog := datalog.MustParse("e(?X, ?Y) -> p(?X, ?Y).")
	db := NewInstance(datalog.NewAtom("e", datalog.C("a"), datalog.C("b")))
	res, err := Run(db, prog, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Parallelism != 4 {
		t.Errorf("Stats.Parallelism = %d, want 4", res.Stats.Parallelism)
	}
}
