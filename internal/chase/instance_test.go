package chase

import (
	"testing"

	"repro/internal/datalog"
)

func atom(pred string, names ...string) datalog.Atom {
	args := make([]datalog.Term, len(names))
	for i, n := range names {
		args[i] = datalog.C(n)
	}
	return datalog.NewAtom(pred, args...)
}

func TestInstanceAddHasLen(t *testing.T) {
	i := NewInstance()
	a := atom("p", "a", "b")
	if !i.Add(a) || i.Add(a) {
		t.Error("Add should report newness")
	}
	if !i.Has(a) || i.Has(atom("p", "b", "a")) {
		t.Error("Has wrong")
	}
	if i.Len() != 1 {
		t.Errorf("Len = %d", i.Len())
	}
}

func TestInstanceRejectsVariables(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add of non-ground atom should panic")
		}
	}()
	NewInstance().Add(datalog.NewAtom("p", datalog.V("X")))
}

func TestInstanceLookup(t *testing.T) {
	i := NewInstance(
		atom("p", "a", "b"),
		atom("p", "a", "c"),
		atom("p", "b", "c"),
		atom("q", "a"),
	)
	if got := len(i.Lookup("p", 0, datalog.C("a"))); got != 2 {
		t.Errorf("Lookup p[1]=a returned %d", got)
	}
	if got := len(i.Lookup("p", 1, datalog.C("c"))); got != 2 {
		t.Errorf("Lookup p[2]=c returned %d", got)
	}
	if got := len(i.Lookup("p", 0, datalog.C("z"))); got != 0 {
		t.Errorf("Lookup missing returned %d", got)
	}
	if got := len(i.AtomsOf("p")); got != 3 {
		t.Errorf("AtomsOf(p) = %d", got)
	}
}

func TestInstanceGroundPartAndNulls(t *testing.T) {
	i := NewInstance(
		atom("p", "a"),
		datalog.NewAtom("p", datalog.N("z0")),
		datalog.NewAtom("q", datalog.C("a"), datalog.N("z1")),
	)
	g := i.GroundPart()
	if g.Len() != 1 || !g.Has(atom("p", "a")) {
		t.Errorf("GroundPart = %v", g.All())
	}
	if got := i.Nulls(); len(got) != 2 {
		t.Errorf("Nulls = %v", got)
	}
	if got := i.Constants(); len(got) != 1 || got[0] != datalog.C("a") {
		t.Errorf("Constants = %v", got)
	}
}

func TestInstanceCloneEqual(t *testing.T) {
	i := NewInstance(atom("p", "a"), atom("q", "b"))
	j := i.Clone()
	if !i.Equal(j) {
		t.Error("clone not equal")
	}
	j.Add(atom("r", "c"))
	if i.Equal(j) {
		t.Error("modified clone still equal")
	}
	k := NewInstance(atom("p", "a"), atom("q", "c"))
	if i.Equal(k) {
		t.Error("different same-size instances equal")
	}
}

func TestInstanceSortedDeterministic(t *testing.T) {
	i := NewInstance(atom("q", "b"), atom("p", "z"), atom("p", "a"))
	s := i.Sorted()
	for k := 1; k < len(s); k++ {
		if s[k-1].Compare(s[k]) >= 0 {
			t.Fatalf("Sorted not strictly increasing: %v", s)
		}
	}
	if i.String() == "" {
		t.Error("String empty")
	}
}

func TestFromFacts(t *testing.T) {
	if _, err := FromFacts([]datalog.Atom{datalog.NewAtom("p", datalog.N("z"))}); err == nil {
		t.Error("null in database should be rejected")
	}
	i, err := FromFacts([]datalog.Atom{atom("p", "a")})
	if err != nil || i.Len() != 1 {
		t.Errorf("FromFacts = %v, %v", i, err)
	}
}
