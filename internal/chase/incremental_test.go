package chase

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/limits"
)

// The incremental differential suite proves the maintenance contract: after
// any schedule of EDB insert and delete batches, the maintained instance must
// agree with a from-scratch chase of the final EDB (ground part exactly,
// nulls up to renaming), and with a from-scratch incremental build exactly —
// including support counts — once nulls are renamed to their Skolem keys.
// Replay one seed with TRIQ_DIFF_SEED=<n> go test -run TestIncremental
// ./internal/chase.

// incTemplates is the positive (materializable) rule pool: recursion through
// p, existential invention through s and t, including a depth-2 chain (the
// null invented by the t rule has a null in its frontier).
var incTemplates = []string{
	"e0(?X, ?Y) -> p(?X, ?Y).",
	"e1(?X, ?Y) -> p(?Y, ?X).",
	"p(?X, ?Y), e1(?Y, ?Z) -> p(?X, ?Z).",
	"p(?X, ?Y), p(?Y, ?Z) -> q(?X, ?Z).",
	"e0(?X, ?Y) -> q(?X, ?Y).",
	"q(?X, ?Y) -> r(?X).",
	"r(?X) -> s(?X, ?V).",
	"e1(?X, ?Y) -> s(?Y, ?W).",
	"s(?X, ?V), e0(?X, ?Y) -> p(?X, ?Y).",
	"s(?X, ?V) -> q(?X, ?X).",
	"s(?X, ?V) -> t(?V, ?W).",
	"t(?X, ?V), s(?Y, ?X) -> q(?Y, ?Y).",
}

var incOpts = Options{MaxDepth: 6, MaxFacts: 50_000, MaxRounds: 1_000, Parallelism: 1}

// genIncProgram samples a positive warded program from the template pool.
func genIncProgram(rng *rand.Rand) (*datalog.Program, string, error) {
	for attempt := 0; attempt < 100; attempt++ {
		perm := rng.Perm(len(incTemplates))
		k := 3 + rng.Intn(5)
		var source string
		for _, i := range perm[:k] {
			source += incTemplates[i] + "\n"
		}
		p, err := datalog.Parse(source)
		if err != nil {
			continue
		}
		if datalog.CheckWarded(p) != nil {
			continue
		}
		return p, source, nil
	}
	return nil, "", fmt.Errorf("no valid program after 100 attempts")
}

func randEDBAtom(rng *rand.Rand, consts []datalog.Term) datalog.Atom {
	pred := "e0"
	if rng.Intn(2) == 1 {
		pred = "e1"
	}
	return datalog.NewAtom(pred, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
}

// keyedForm renders the instance and support table with every null replaced
// by its canonicalized Skolem key: two materializations of the same program
// over the same EDB are isomorphic exactly when their keyed forms are equal,
// whatever order their nulls were invented in. Skolem keys embed the *names*
// of nulls appearing in the frontier binding, and those names are
// engine-local, so canonicalization rewrites them recursively (the key DAG
// is acyclic: a key only references strictly shallower nulls).
func keyedForm(inc *Incremental) map[string]int {
	names := inc.NullKeys()
	var nullKind byte
	if ns := inc.Instance().Nulls(); len(ns) > 0 {
		nullKind = byte('0' + ns[0].Kind)
	}
	memo := make(map[string]string, len(names))
	var canon func(name string) string
	canon = func(name string) string {
		if c, ok := memo[name]; ok {
			return c
		}
		key, ok := names[name]
		if !ok {
			return name
		}
		segs := strings.Split(key, "|")
		for i, seg := range segs {
			if len(seg) > 1 && seg[0] == nullKind {
				if _, isNull := names[seg[1:]]; isNull {
					segs[i] = string(nullKind) + "(" + canon(seg[1:]) + ")"
				}
			}
		}
		c := strings.Join(segs, "|")
		memo[name] = c
		return c
	}
	out := make(map[string]int)
	for _, a := range inc.Instance().All() {
		var b strings.Builder
		b.WriteString(a.Pred)
		for _, t := range a.Args {
			b.WriteByte('|')
			if t.IsNull() {
				b.WriteString("⟨" + canon(t.Name) + "⟩")
			} else {
				b.WriteString(t.Name)
			}
		}
		out[b.String()] = inc.SupportOf(a)
	}
	return out
}

func diffKeyed(a, b map[string]int) string {
	for k, v := range a {
		if bv, ok := b[k]; !ok {
			return fmt.Sprintf("only in maintained: %s (support %d)", k, v)
		} else if bv != v {
			return fmt.Sprintf("support differs for %s: %d vs %d", k, v, bv)
		}
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			return fmt.Sprintf("only in fresh: %s (support %d)", k, v)
		}
	}
	return ""
}

func skipIfInjected(t *testing.T, errs ...error) {
	t.Helper()
	for _, err := range errs {
		if err != nil && errors.Is(err, limits.ErrInjected) {
			t.Skipf("injected fault (TRIQ_FAULTS armed); case not comparable")
		}
	}
}

func incSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233}
	if testing.Short() {
		seeds = seeds[:5]
	}
	if env := os.Getenv("TRIQ_DIFF_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad TRIQ_DIFF_SEED %q: %v", env, err)
		}
		seeds = []int64{n}
	}
	return seeds
}

func TestIncrementalDifferential(t *testing.T) {
	ctx := context.Background()
	for _, seed := range incSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			prog, source, err := genIncProgram(rng)
			if err != nil {
				t.Fatal(err)
			}
			consts := make([]datalog.Term, 10)
			for i := range consts {
				consts[i] = datalog.C("c" + strconv.Itoa(i))
			}
			edb := NewInstance()
			n := 15 + rng.Intn(25)
			for i := 0; i < n; i++ {
				edb.Add(randEDBAtom(rng, consts))
			}
			inc, err := NewIncremental(ctx, edb, prog, incOpts)
			skipIfInjected(t, err)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			replay := func() {
				t.Logf("replay: TRIQ_DIFF_SEED=%d go test -run TestIncrementalDifferential ./internal/chase\nprogram:\n%s", seed, source)
			}
			for step := 0; step < 12; step++ {
				var st MaintainStats
				if rng.Intn(5) < 3 { // insert-leaning mix
					batch := make([]datalog.Atom, 1+rng.Intn(6))
					for i := range batch {
						batch[i] = randEDBAtom(rng, consts)
					}
					for _, a := range batch {
						edb.Add(a)
					}
					st, err = inc.Insert(ctx, batch)
				} else {
					pool := edb.All()
					if len(pool) == 0 {
						continue
					}
					batch := make([]datalog.Atom, 1+rng.Intn(6))
					for i := range batch {
						batch[i] = pool[rng.Intn(len(pool))]
					}
					edb.RemoveBatch(batch)
					st, err = inc.Delete(ctx, batch)
				}
				skipIfInjected(t, err)
				if err != nil {
					replay()
					t.Fatalf("step %d: maintain: %v", step, err)
				}
				_ = st
				scratch, serr := RunCtx(ctx, edb, prog, incOpts)
				skipIfInjected(t, serr)
				if serr != nil {
					replay()
					t.Fatalf("step %d: scratch chase: %v", step, serr)
				}
				if scratch.Stats.DepthTruncated {
					t.Fatalf("step %d: scratch chase depth-truncated; templates should be depth-bounded", step)
				}
				if !inc.Instance().GroundPart().Equal(scratch.Instance.GroundPart()) {
					replay()
					t.Fatalf("step %d: ground parts differ (%d vs %d atoms)", step,
						inc.Instance().GroundPart().Len(), scratch.Instance.GroundPart().Len())
				}
				if in, sn := len(inc.Instance().Nulls()), len(scratch.Instance.Nulls()); in != sn {
					replay()
					t.Fatalf("step %d: null counts differ: %d vs %d", step, in, sn)
				}
				if inc.Instance().Len() != scratch.Instance.Len() {
					replay()
					t.Fatalf("step %d: sizes differ: %d vs %d", step, inc.Instance().Len(), scratch.Instance.Len())
				}
				if step%4 == 3 {
					fresh, ferr := NewIncremental(ctx, edb, prog, incOpts)
					skipIfInjected(t, ferr)
					if ferr != nil {
						replay()
						t.Fatalf("step %d: fresh build: %v", step, ferr)
					}
					if d := diffKeyed(keyedForm(inc), keyedForm(fresh)); d != "" {
						replay()
						t.Fatalf("step %d: maintained ≠ fresh rebuild: %s", step, d)
					}
				}
			}
		})
	}
}

// TestIncrementalInsertDeleteRestores is the strongest metamorphic property:
// inserting a batch and deleting the same batch restores the instance and
// support table EXACTLY — same null names, not just isomorphic — because the
// Skolem table persists across the round trip.
func TestIncrementalInsertDeleteRestores(t *testing.T) {
	ctx := context.Background()
	for _, seed := range incSeeds(t) {
		rng := rand.New(rand.NewSource(seed + 1_000_000))
		prog, source, err := genIncProgram(rng)
		if err != nil {
			t.Fatal(err)
		}
		consts := make([]datalog.Term, 8)
		for i := range consts {
			consts[i] = datalog.C("c" + strconv.Itoa(i))
		}
		edb := NewInstance()
		for i := 0; i < 20; i++ {
			edb.Add(randEDBAtom(rng, consts))
		}
		inc, err := NewIncremental(ctx, edb, prog, incOpts)
		skipIfInjected(t, err)
		if err != nil {
			t.Fatalf("seed=%d: build: %v", seed, err)
		}
		before := inc.Instance().String()
		beforeKeyed := keyedForm(inc)
		batch := make([]datalog.Atom, 6)
		for i := range batch {
			for {
				a := randEDBAtom(rng, consts)
				if !edb.Has(a) { // only genuinely-new atoms round-trip to a no-op
					batch[i] = a
					break
				}
			}
		}
		if _, err := inc.Insert(ctx, batch); err != nil {
			skipIfInjected(t, err)
			t.Fatalf("seed=%d: insert: %v", seed, err)
		}
		if _, err := inc.Delete(ctx, batch); err != nil {
			skipIfInjected(t, err)
			t.Fatalf("seed=%d: delete: %v", seed, err)
		}
		if after := inc.Instance().String(); after != before {
			t.Fatalf("seed=%d: insert-then-delete did not restore the instance exactly\nprogram:\n%s", seed, source)
		}
		if d := diffKeyed(beforeKeyed, keyedForm(inc)); d != "" {
			t.Fatalf("seed=%d: support table not restored: %s", seed, d)
		}
	}
}

// TestIncrementalDeleteAll: removing every EDB atom must drain the instance
// to empty, whatever derivation structure was built on top.
func TestIncrementalDeleteAll(t *testing.T) {
	ctx := context.Background()
	for _, seed := range incSeeds(t) {
		rng := rand.New(rand.NewSource(seed + 2_000_000))
		prog, source, err := genIncProgram(rng)
		if err != nil {
			t.Fatal(err)
		}
		consts := make([]datalog.Term, 6)
		for i := range consts {
			consts[i] = datalog.C("c" + strconv.Itoa(i))
		}
		edb := NewInstance()
		for i := 0; i < 25; i++ {
			edb.Add(randEDBAtom(rng, consts))
		}
		inc, err := NewIncremental(ctx, edb, prog, incOpts)
		skipIfInjected(t, err)
		if err != nil {
			t.Fatalf("seed=%d: build: %v", seed, err)
		}
		if _, err := inc.Delete(ctx, edb.All()); err != nil {
			skipIfInjected(t, err)
			t.Fatalf("seed=%d: delete all: %v", seed, err)
		}
		if inc.Instance().Len() != 0 {
			t.Fatalf("seed=%d: %d facts remain after deleting the whole EDB\nprogram:\n%s\nresidue:\n%s",
				seed, inc.Instance().Len(), source, inc.Instance().String())
		}
	}
}

// TestIncrementalBatchSplit: folding one insert batch is equivalent (up to
// null renaming, which the keyed form quotients out) to folding it as two
// batches — the per-epoch grouping of writes must not affect the fixpoint.
func TestIncrementalBatchSplit(t *testing.T) {
	ctx := context.Background()
	for _, seed := range incSeeds(t) {
		rng := rand.New(rand.NewSource(seed + 3_000_000))
		prog, _, err := genIncProgram(rng)
		if err != nil {
			t.Fatal(err)
		}
		consts := make([]datalog.Term, 8)
		for i := range consts {
			consts[i] = datalog.C("c" + strconv.Itoa(i))
		}
		base := NewInstance()
		for i := 0; i < 15; i++ {
			base.Add(randEDBAtom(rng, consts))
		}
		batch := make([]datalog.Atom, 10)
		for i := range batch {
			batch[i] = randEDBAtom(rng, consts)
		}
		one, err := NewIncremental(ctx, base, prog, incOpts)
		skipIfInjected(t, err)
		if err != nil {
			t.Fatalf("seed=%d: build: %v", seed, err)
		}
		two, err := NewIncremental(ctx, base, prog, incOpts)
		skipIfInjected(t, err)
		if err != nil {
			t.Fatalf("seed=%d: build: %v", seed, err)
		}
		if _, err := one.Insert(ctx, batch); err != nil {
			skipIfInjected(t, err)
			t.Fatalf("seed=%d: whole insert: %v", seed, err)
		}
		if _, err := two.Insert(ctx, batch[:5]); err != nil {
			skipIfInjected(t, err)
			t.Fatalf("seed=%d: first half: %v", seed, err)
		}
		if _, err := two.Insert(ctx, batch[5:]); err != nil {
			skipIfInjected(t, err)
			t.Fatalf("seed=%d: second half: %v", seed, err)
		}
		if d := diffKeyed(keyedForm(one), keyedForm(two)); d != "" {
			t.Fatalf("seed=%d: one batch ≠ two batches: %s", seed, d)
		}
	}
}

// TestIncrementalRejects pins the gating: negation, constraints, and the
// restricted chase are not maintainable and must be refused up front.
func TestIncrementalRejects(t *testing.T) {
	ctx := context.Background()
	db := NewInstance(datalog.NewAtom("e", datalog.C("a"), datalog.C("b")))
	neg := datalog.MustParse("e(?X, ?Y), not p(?X, ?Y) -> q(?X).\ne(?X, ?Y) -> p(?X, ?Y).")
	if _, err := NewIncremental(ctx, db, neg, incOpts); err == nil {
		t.Error("negation accepted")
	}
	cons := datalog.MustParse("e(?X, ?Y) -> p(?X, ?Y).")
	cons.AddConstraint(datalog.Constraint{Body: []datalog.Atom{datalog.NewAtom("p", datalog.V("X"), datalog.V("X"))}})
	if _, err := NewIncremental(ctx, db, cons, incOpts); err == nil {
		t.Error("constraints accepted")
	}
	pos := datalog.MustParse("e(?X, ?Y) -> p(?X, ?Y).")
	restricted := incOpts
	restricted.Mode = Restricted
	if _, err := NewIncremental(ctx, db, pos, restricted); err == nil {
		t.Error("restricted mode accepted")
	}
}
