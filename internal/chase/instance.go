// Package chase implements the chase procedure of Section 3.2 of the paper:
// instances of ground atoms over constants and labeled nulls, homomorphism
// matching, the (semi-naive) chase for Datalog^∃ programs in restricted and
// Skolem variants, the stratified semantics S_0, …, S_ℓ for Datalog^{∃,¬s,⊥},
// constraint checking, and the ground semantics Π(D)↓.
package chase

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Instance is a set of ground atoms (constants and labeled nulls) with
// per-position hash indexes for matching. Internally terms and predicates
// are dictionary-encoded to small integers, so set membership and index
// lookups hash packed integer keys instead of structured strings — the
// dominant cost in the chase inner loop. The zero value is unusable; call
// NewInstance.
type Instance struct {
	set    map[string]struct{}
	byPred map[string][]datalog.Atom
	// idx maps packed (pred, position, term) keys to the atoms with that
	// term at that position.
	idx    map[uint64][]datalog.Atom
	termID map[datalog.Term]uint32
	predID map[string]uint32
	n      int
}

// NewInstance returns an instance containing the given atoms.
func NewInstance(atoms ...datalog.Atom) *Instance {
	i := &Instance{
		set:    make(map[string]struct{}),
		byPred: make(map[string][]datalog.Atom),
		idx:    make(map[uint64][]datalog.Atom),
		termID: make(map[datalog.Term]uint32),
		predID: make(map[string]uint32),
	}
	for _, a := range atoms {
		i.Add(a)
	}
	return i
}

func (i *Instance) internTerm(t datalog.Term) uint32 {
	if id, ok := i.termID[t]; ok {
		return id
	}
	id := uint32(len(i.termID))
	i.termID[t] = id
	return id
}

func (i *Instance) internPred(p string) uint32 {
	if id, ok := i.predID[p]; ok {
		return id
	}
	id := uint32(len(i.predID))
	i.predID[p] = id
	return id
}

// key packs the atom into a compact byte-string key: predicate id followed
// by the argument term ids, 4 bytes each.
func (i *Instance) key(pid uint32, argIDs []uint32) string {
	buf := make([]byte, 4+4*len(argIDs))
	binary.LittleEndian.PutUint32(buf, pid)
	for k, id := range argIDs {
		binary.LittleEndian.PutUint32(buf[4+4*k:], id)
	}
	return string(buf)
}

// idxKey packs (pred, position, term) into one uint64: 24 bits predicate,
// 8 bits position, 32 bits term.
func idxKey(pid uint32, pos int, tid uint32) uint64 {
	return uint64(pid)<<40 | uint64(pos)<<32 | uint64(tid)
}

// Add inserts a ground atom, reporting whether it was new. Atoms with
// variables are rejected with a panic: they indicate a bug in the caller.
func (i *Instance) Add(a datalog.Atom) bool {
	if !a.IsGround() {
		panic(fmt.Sprintf("chase: non-ground atom %v added to instance", a))
	}
	pid := i.internPred(a.Pred)
	var idsArr [8]uint32
	ids := idsArr[:0]
	if len(a.Args) > len(idsArr) {
		ids = make([]uint32, 0, len(a.Args))
	}
	for _, t := range a.Args {
		ids = append(ids, i.internTerm(t))
	}
	k := i.key(pid, ids)
	if _, ok := i.set[k]; ok {
		return false
	}
	i.set[k] = struct{}{}
	i.byPred[a.Pred] = append(i.byPred[a.Pred], a)
	for pos, tid := range ids {
		kk := idxKey(pid, pos, tid)
		i.idx[kk] = append(i.idx[kk], a)
	}
	i.n++
	return true
}

// internKey returns the packed set key for a ground atom, interning any
// previously-unseen terms and predicate. Unlike factKey it always succeeds;
// interning is monotone, so the key stays stable for the instance's lifetime
// whether or not the atom is ever added. The incremental maintenance engine
// uses it to address support counters for facts that are about to exist.
func (i *Instance) internKey(a datalog.Atom) string {
	pid := i.internPred(a.Pred)
	var idsArr [8]uint32
	ids := idsArr[:0]
	if len(a.Args) > len(idsArr) {
		ids = make([]uint32, 0, len(a.Args))
	}
	for _, t := range a.Args {
		ids = append(ids, i.internTerm(t))
	}
	return i.key(pid, ids)
}

// factKey returns the packed set key for a ground atom without interning new
// dictionary entries; ok is false when the atom mentions a term or predicate
// the instance has never seen (and therefore cannot contain).
func (i *Instance) factKey(a datalog.Atom) (string, bool) {
	pid, ok := i.predID[a.Pred]
	if !ok {
		return "", false
	}
	var idsArr [8]uint32
	ids := idsArr[:0]
	if len(a.Args) > len(idsArr) {
		ids = make([]uint32, 0, len(a.Args))
	}
	for _, t := range a.Args {
		tid, ok := i.termID[t]
		if !ok {
			return "", false
		}
		ids = append(ids, tid)
	}
	return i.key(pid, ids), true
}

// RemoveBatch deletes the given ground atoms and returns how many were
// actually present. The dictionary keeps its term/pred ids (interning is
// monotone), but the set, per-predicate slices, and per-position indexes are
// filtered in one pass per touched bucket, so a batch removal costs
// O(|touched buckets|) rather than O(|batch| × |bucket|).
func (i *Instance) RemoveBatch(atoms []datalog.Atom) int {
	dropped := make(map[string]struct{}, len(atoms))
	preds := make(map[string]struct{})
	for _, a := range atoms {
		k, ok := i.factKey(a)
		if !ok {
			continue
		}
		if _, present := i.set[k]; !present {
			continue
		}
		if _, dup := dropped[k]; dup {
			continue
		}
		dropped[k] = struct{}{}
		delete(i.set, k)
		preds[a.Pred] = struct{}{}
		i.n--
	}
	if len(dropped) == 0 {
		return 0
	}
	// gone reports whether an atom was part of this batch. Keys re-pack from
	// the (still intact) dictionary, so membership agrees with dropped.
	gone := func(a datalog.Atom) bool {
		k, ok := i.factKey(a)
		if !ok {
			return false
		}
		_, hit := dropped[k]
		return hit
	}
	for p := range preds {
		bucket := i.byPred[p]
		kept := bucket[:0]
		pid := i.predID[p]
		touched := make(map[uint64]struct{})
		for _, a := range bucket {
			if gone(a) {
				for pos, t := range a.Args {
					touched[idxKey(pid, pos, i.termID[t])] = struct{}{}
				}
				continue
			}
			kept = append(kept, a)
		}
		if len(kept) == 0 {
			delete(i.byPred, p)
		} else {
			i.byPred[p] = kept
		}
		for kk := range touched {
			lst := i.idx[kk]
			keptIdx := lst[:0]
			for _, a := range lst {
				if !gone(a) {
					keptIdx = append(keptIdx, a)
				}
			}
			if len(keptIdx) == 0 {
				delete(i.idx, kk)
			} else {
				i.idx[kk] = keptIdx
			}
		}
	}
	return len(dropped)
}

// Has reports whether the ground atom is present.
func (i *Instance) Has(a datalog.Atom) bool {
	pid, ok := i.predID[a.Pred]
	if !ok {
		return false
	}
	var idsArr [8]uint32
	ids := idsArr[:0]
	if len(a.Args) > len(idsArr) {
		ids = make([]uint32, 0, len(a.Args))
	}
	for _, t := range a.Args {
		tid, ok := i.termID[t]
		if !ok {
			return false
		}
		ids = append(ids, tid)
	}
	_, ok = i.set[i.key(pid, ids)]
	return ok
}

// Len returns the number of atoms.
func (i *Instance) Len() int { return i.n }

// AtomsOf returns the atoms with the given predicate; the slice must not be
// modified.
func (i *Instance) AtomsOf(pred string) []datalog.Atom { return i.byPred[pred] }

// Lookup returns the atoms of pred having term t at (0-based) position pos.
func (i *Instance) Lookup(pred string, pos int, t datalog.Term) []datalog.Atom {
	pid, ok := i.predID[pred]
	if !ok {
		return nil
	}
	tid, ok := i.termID[t]
	if !ok {
		return nil
	}
	return i.idx[idxKey(pid, pos, tid)]
}

// All returns every atom, predicate-by-predicate in sorted predicate order.
func (i *Instance) All() []datalog.Atom {
	preds := make([]string, 0, len(i.byPred))
	for p := range i.byPred {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	out := make([]datalog.Atom, 0, i.n)
	for _, p := range preds {
		out = append(out, i.byPred[p]...)
	}
	return out
}

// Sorted returns every atom in the canonical order; for deterministic output.
func (i *Instance) Sorted() []datalog.Atom {
	out := i.All()
	datalog.SortAtoms(out)
	return out
}

// Clone returns a deep copy of the instance.
func (i *Instance) Clone() *Instance {
	j := NewInstance()
	for _, a := range i.All() {
		j.Add(a)
	}
	return j
}

// GroundPart returns Π(D)↓-style restriction: the atoms whose arguments are
// all constants.
func (i *Instance) GroundPart() *Instance {
	j := NewInstance()
	for _, a := range i.All() {
		if a.IsConstantGround() {
			j.Add(a)
		}
	}
	return j
}

// Constants returns dom(D) ∩ U: the constants occurring in the instance.
func (i *Instance) Constants() []datalog.Term {
	seen := make(map[datalog.Term]struct{})
	for _, a := range i.All() {
		for _, t := range a.Args {
			if t.IsConst() {
				seen[t] = struct{}{}
			}
		}
	}
	out := make([]datalog.Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Compare(out[b]) < 0 })
	return out
}

// Nulls returns the labeled nulls occurring in the instance.
func (i *Instance) Nulls() []datalog.Term {
	seen := make(map[datalog.Term]struct{})
	for _, a := range i.All() {
		for _, t := range a.Args {
			if t.IsNull() {
				seen[t] = struct{}{}
			}
		}
	}
	out := make([]datalog.Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Compare(out[b]) < 0 })
	return out
}

// Equal reports whether two instances hold exactly the same atoms.
func (i *Instance) Equal(j *Instance) bool {
	if i.Len() != j.Len() {
		return false
	}
	// Dictionaries may assign different ids, so compare atom-wise.
	for _, a := range i.All() {
		if !j.Has(a) {
			return false
		}
	}
	return true
}

// String renders the instance one atom per line in canonical order.
func (i *Instance) String() string {
	var b strings.Builder
	for _, a := range i.Sorted() {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FromFacts builds an instance from constant-only atoms, validating that no
// nulls or variables sneak into the extensional database.
func FromFacts(atoms []datalog.Atom) (*Instance, error) {
	i := NewInstance()
	for _, a := range atoms {
		if !a.IsConstantGround() {
			return nil, fmt.Errorf("chase: database atom %v must contain only constants", a)
		}
		i.Add(a)
	}
	return i, nil
}
