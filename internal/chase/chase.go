package chase

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
)

// Mode selects the chase variant.
type Mode int

const (
	// Skolem is the semi-oblivious chase: the null invented by a rule is a
	// deterministic function of the rule and the frontier binding, so
	// re-deriving the same trigger reuses the same null. It is complete for
	// certain (ground) answers and is the default.
	Skolem Mode = iota
	// Restricted fires a trigger only when the head is not already
	// satisfied in the current instance; it terminates more often (e.g. on
	// all DL-LiteR-style programs with acyclic existential parts).
	Restricted
)

func (m Mode) String() string {
	switch m {
	case Skolem:
		return "skolem"
	case Restricted:
		return "restricted"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options bound the chase. The zero value selects the defaults below.
type Options struct {
	// Mode is the chase variant (default Skolem).
	Mode Mode
	// MaxDepth caps the nesting depth of invented nulls: a null invented
	// from a trigger whose frontier contains nulls of depth d gets depth
	// d+1; triggers that would exceed MaxDepth are skipped and the result
	// is marked DepthTruncated. Default 12.
	MaxDepth int
	// MaxFacts aborts the chase with an error when the instance grows
	// beyond this many atoms. Default 4,000,000.
	MaxFacts int
	// MaxRounds aborts the chase with an error after this many semi-naive
	// rounds. Default 1,000,000.
	MaxRounds int
	// NaiveEvaluation disables the semi-naive delta restriction, re-matching
	// every rule against the full instance each round. Exposed for the
	// ablation benchmarks; results are identical, only slower.
	NaiveEvaluation bool
	// Parallelism is the number of workers enumerating rule triggers within
	// a round (0 = GOMAXPROCS, 1 = fully sequential). Trigger enumeration is
	// read-only against the instance as of the rule's turn; derivations are
	// applied afterwards in one canonical order on a single goroutine, so the
	// resulting instance, invented null names, and Stats are bit-identical
	// for every Parallelism value.
	Parallelism int
	// Obs attaches the observability layer: when non-nil the engine emits
	// chase.run / chase.round / chase.rule spans and registry counters. A nil
	// Obs (the default) adds no tracing work and no I/O.
	Obs *obs.Obs
	// Progress, when non-nil, receives lock-free live counters (current
	// round, instance size, triggers fired, busy workers) that an operator
	// endpoint can sample while the run is in flight. It never affects
	// evaluation.
	Progress *Progress
	// Parent optionally nests the chase.run span under an enclosing span
	// (e.g. the iterative-deepening driver). Ignored when Obs is nil.
	Parent *obs.Span
	// Faults arms a per-evaluation fault-injection plan checked at the
	// chase.round and chase.rule sites (the process-global TRIQ_FAULTS plan
	// is always consulted too). Nil disables per-evaluation injection.
	Faults *limits.Plan
}

// WithDefaults returns the options with every zero field replaced by its
// default; the materialization layer uses it to compare a query's effective
// bounds against its own.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.MaxFacts == 0 {
		o.MaxFacts = 4_000_000
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 1_000_000
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return o
}

// Stats reports what the chase did.
type Stats struct {
	Rounds         int
	TriggersFired  int
	FactsDerived   int
	NullsInvented  int
	DepthTruncated bool
	// Parallelism is the worker count the run was configured with (after
	// defaulting); it never changes the other counters.
	Parallelism int
	// PerRule breaks the run down by rule, in stratum evaluation order.
	PerRule []RuleStats
}

// RuleStats is the per-rule slice of a chase run. A trigger is "attempted"
// when the positive body matched (before the negation check and duplicate
// suppression in fire); it is "fired" when it derived at least one new fact.
type RuleStats struct {
	// Index is the rule's position in stratum evaluation order (which may
	// differ from source order when the program is stratified).
	Index int
	// Rule is the rule's source rendering.
	Rule string
	// Origin is the rule's provenance label (datalog.Rule.Provenance): for
	// translated SPARQL queries, the operator that emitted the rule. Empty
	// for hand-written rules.
	Origin            string
	TriggersAttempted int
	TriggersFired     int
	FactsDerived      int
	NullsInvented     int
	// Time is the cumulative wall-clock time spent matching and firing the
	// rule across all rounds.
	Time time.Duration
}

// TopRule returns the rule with the largest cumulative time, or nil when no
// per-rule breakdown was collected.
func (s Stats) TopRule() *RuleStats {
	var top *RuleStats
	for i := range s.PerRule {
		if top == nil || s.PerRule[i].Time > top.Time {
			top = &s.PerRule[i]
		}
	}
	return top
}

// String renders the stats with the per-rule breakdown as a human-readable
// table; it backs the CLI -metrics flag.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chase: %d rounds, %d triggers fired, %d facts derived, %d nulls invented",
		s.Rounds, s.TriggersFired, s.FactsDerived, s.NullsInvented)
	if s.DepthTruncated {
		b.WriteString(" (depth-truncated)")
	}
	b.WriteByte('\n')
	if len(s.PerRule) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-5s %9s %9s %9s %7s %10s  %s\n",
		"rule", "attempted", "fired", "facts", "nulls", "time", "definition")
	for _, r := range s.PerRule {
		def := r.Rule
		if len([]rune(def)) > 60 {
			def = string([]rune(def)[:57]) + "..."
		}
		fmt.Fprintf(&b, "#%-4d %9d %9d %9d %7d %10s  %s\n",
			r.Index, r.TriggersAttempted, r.TriggersFired, r.FactsDerived,
			r.NullsInvented, obs.FormatDuration(r.Time), def)
	}
	return b.String()
}

// Result is the outcome of evaluating a program over a database.
type Result struct {
	// Instance is Π(D) (up to the depth bound), or the state reached when
	// an inconsistency was detected.
	Instance *Instance
	// Inconsistent is true when some constraint fired: Π(D) = ⊤.
	Inconsistent bool
	Stats        Stats
}

// compiledRule is a rule lowered to slot-indexed patterns with precomputed
// join orders (one per semi-naive seed position, plus the unseeded order).
type compiledRule struct {
	rule      datalog.Rule
	idx       int
	st        *slotTable
	bodyPos   []pattern
	bodyNeg   []pattern
	heads     []pattern
	headOrder []int
	bodySlots int   // slots of body variables; existential slots follow
	exSlots   []int // environment slots of the existential variables
	exNames   []string
	frontier  []int // body slots propagated to the head
	fullOrder []int
	seeded    [][]int // seeded[j]: order of the remaining atoms when atom j matched delta
}

func compileRule(r datalog.Rule, idx int) *compiledRule {
	c := &compiledRule{rule: r, idx: idx, st: newSlotTable()}
	for _, a := range r.BodyPos {
		c.bodyPos = append(c.bodyPos, compileAtom(a, c.st))
	}
	for _, a := range r.BodyNeg {
		c.bodyNeg = append(c.bodyNeg, compileAtom(a, c.st))
	}
	c.bodySlots = len(c.st.vars)
	for _, h := range r.Head {
		c.heads = append(c.heads, compileAtom(h, c.st))
	}
	for s := c.bodySlots; s < len(c.st.vars); s++ {
		c.exSlots = append(c.exSlots, s)
		c.exNames = append(c.exNames, c.st.vars[s].Name)
	}
	frontierSeen := make(map[int]bool)
	for _, h := range c.heads {
		for _, a := range h.args {
			if a.slot >= 0 && a.slot < c.bodySlots && !frontierSeen[a.slot] {
				frontierSeen[a.slot] = true
				c.frontier = append(c.frontier, a.slot)
			}
		}
	}
	c.headOrder = orderPatterns(c.heads, -1)
	c.fullOrder = orderPatterns(c.bodyPos, -1)
	c.seeded = make([][]int, len(c.bodyPos))
	for j := range c.bodyPos {
		c.seeded[j] = orderPatterns(c.bodyPos, j)
	}
	return c
}

// engine holds the mutable chase state shared across strata.
type engine struct {
	ctx        context.Context
	opts       Options
	inst       *Instance
	depth      map[string]int    // null name → invention depth
	skolem     map[string]string // skolem key → null name
	nextNull   int
	stats      Stats
	perRule    []*RuleStats // one entry per rule, across strata
	cur        *RuleStats   // the rule currently being matched/fired
	span       *obs.Span    // the chase.run span (nil when tracing is off)
	start      time.Time
	tick       int  // trigger-attempt counter gating the in-round ctx checks
	ruleLabels bool // attach per-rule pprof labels (recording traces only)
}

// snapshotStats copies the cumulative counters plus the per-rule breakdown;
// it is used on both the success and the abort path so a truncated run still
// reports what it did.
func (e *engine) snapshotStats() Stats {
	s := e.stats
	for _, rs := range e.perRule {
		s.PerRule = append(s.PerRule, *rs)
	}
	return s
}

// abort builds a typed limits error for the tripped limit, attaching the
// Truncation report (progress counters and per-rule stats) and emitting the
// limits.aborted observability event.
func (e *engine) abort(kind error, budget, reached int64) error {
	return e.fail(limits.NewError(kind, limits.Truncation{Budget: budget, Reached: reached}))
}

// interrupted returns a typed abort when the context has been canceled or
// its deadline passed, nil otherwise.
func (e *engine) interrupted() error {
	if kind := limits.CtxKind(e.ctx); kind != nil {
		return e.abort(kind, 0, 0)
	}
	return nil
}

// fail decorates a typed limits error (including injected faults) with the
// engine's progress and emits the limits.aborted event. Non-limits errors
// pass through untouched.
func (e *engine) fail(err error) error {
	tr, ok := limits.TruncationOf(err)
	if !ok {
		return err
	}
	tr.Rounds = e.stats.Rounds
	tr.Facts = e.inst.Len()
	tr.Elapsed = time.Since(e.start)
	for _, rs := range e.perRule {
		tr.PerRule = append(tr.PerRule, limits.RuleStat{
			Index: rs.Index, Rule: rs.Rule,
			TriggersAttempted: rs.TriggersAttempted,
			TriggersFired:     rs.TriggersFired,
			FactsDerived:      rs.FactsDerived,
		})
	}
	if e.opts.Obs != nil {
		e.opts.Obs.Event("limits.aborted",
			obs.F("limit", tr.Limit),
			obs.F("rounds", tr.Rounds),
			obs.F("facts", tr.Facts))
		e.opts.Obs.Count("limits.aborted", 1)
	}
	return err
}

// newRuleStats registers a per-rule stats slot in evaluation order.
func (e *engine) newRuleStats(r datalog.Rule) *RuleStats {
	rs := &RuleStats{Index: len(e.perRule), Rule: r.String(), Origin: r.Provenance}
	e.perRule = append(e.perRule, rs)
	return rs
}

func newEngine(ctx context.Context, db *Instance, opts Options) *engine {
	e := &engine{
		ctx:    ctx,
		opts:   opts,
		inst:   db.Clone(),
		depth:  make(map[string]int),
		skolem: make(map[string]string),
		start:  time.Now(),
	}
	for _, n := range e.inst.Nulls() {
		e.depth[n.Name] = 0
	}
	return e
}

func (e *engine) freshNull(key string, d int) datalog.Term {
	if name, ok := e.skolem[key]; ok {
		return datalog.N(name)
	}
	name := "n" + strconv.Itoa(e.nextNull)
	e.nextNull++
	e.skolem[key] = name
	e.depth[name] = d
	e.stats.NullsInvented++
	if e.cur != nil {
		e.cur.NullsInvented++
	}
	return datalog.N(name)
}

// chaseStratum exhaustively applies the given rules (one stratum) to the
// engine instance. Negated atoms are evaluated against the current instance,
// which is correct under stratification: their predicates belong to lower
// strata and are already final.
//
// Each rule's turn within a round runs in two phases (see parallel.go):
// enumerate matches the rule against the instance as of the start of its
// turn (read-only, optionally on Options.Parallelism workers), then apply
// fires the buffered triggers sequentially in canonical order. Rules earlier
// in the round feed the instance that later rules enumerate against, and the
// round reaches its fixpoint when no rule derives a new fact.
func (e *engine) chaseStratum(rules []datalog.Rule) error {
	comp := make([]*compiledRule, len(rules))
	ruleStats := make([]*RuleStats, len(rules))
	for i, r := range rules {
		comp[i] = compileRule(r, i)
		ruleStats[i] = e.newRuleStats(r)
	}
	var delta *Instance // nil on the first round = match everything
	for round := 0; ; round++ {
		if round > e.opts.MaxRounds {
			return e.abort(limits.ErrRoundBudget, int64(e.opts.MaxRounds), int64(round))
		}
		if err := limits.Hit(e.opts.Faults, "chase.round"); err != nil {
			return e.fail(err)
		}
		if err := e.interrupted(); err != nil {
			return err
		}
		e.stats.Rounds++
		e.opts.Progress.setRound(int64(e.stats.Rounds), int64(e.inst.Len()))
		var roundSpan *obs.Span
		if e.span != nil {
			deltaSize := e.inst.Len() // first round matches the full instance
			if delta != nil {
				deltaSize = delta.Len()
			}
			roundSpan = e.span.Span("chase.round",
				obs.F("round", e.stats.Rounds),
				obs.F("delta", deltaSize),
				obs.F("instance", e.inst.Len()),
				obs.F("workers", e.opts.Parallelism))
		}
		roundFacts := e.stats.FactsDerived
		next := NewInstance()
		for ci, c := range comp {
			rs := ruleStats[ci]
			var ruleSpan *obs.Span
			if roundSpan != nil {
				joinOrder := "seeded(delta)"
				if delta == nil {
					joinOrder = fmt.Sprint(c.fullOrder)
				}
				ruleSpan = roundSpan.Span("chase.rule",
					obs.F("rule", rs.Index),
					obs.F("pred", c.rule.Head[0].Pred),
					obs.F("join_order", joinOrder))
			}
			before := *rs
			t0 := time.Now()
			var fireErr error
			var shards []*shard
			// The fault and cancellation checks stay on the sequential
			// control path (never inside workers) so the sequence of
			// limits.Hit calls — and therefore where an armed fault plan
			// trips — is identical for every Parallelism value.
			ruleTurn := func() {
				if err := limits.Hit(e.opts.Faults, "chase.rule"); err != nil {
					fireErr = e.fail(err)
				} else if err := e.interrupted(); err != nil {
					fireErr = err
				}
				if fireErr == nil {
					shards, fireErr = e.enumerate(c, delta, ruleSpan)
				}
				if fireErr == nil {
					e.cur = rs
					fireErr = e.apply(c, rs, shards, delta != nil, next)
					e.cur = nil
				}
			}
			if e.ruleLabels {
				// Workers spawned inside enumerate inherit these goroutine
				// labels, so CPU samples of traced requests attribute to the
				// rule (alongside the request-level trace_id label on ctx).
				pprof.Do(e.ctx, pprof.Labels("rule", c.rule.Head[0].Pred), func(context.Context) { ruleTurn() })
			} else {
				ruleTurn()
			}
			rs.Time += time.Since(t0)
			e.opts.Progress.addTriggers(int64(rs.TriggersFired - before.TriggersFired))
			e.opts.Progress.setFacts(int64(e.inst.Len()))
			ruleSpan.End(
				obs.F("shards", len(shards)),
				obs.F("attempted", rs.TriggersAttempted-before.TriggersAttempted),
				obs.F("fired", rs.TriggersFired-before.TriggersFired),
				obs.F("facts", rs.FactsDerived-before.FactsDerived),
				obs.F("nulls", rs.NullsInvented-before.NullsInvented))
			if fireErr != nil {
				roundSpan.End(obs.F("error", true))
				return fireErr
			}
		}
		roundSpan.End(
			obs.F("facts", e.stats.FactsDerived-roundFacts),
			obs.F("next_delta", next.Len()))
		if next.Len() == 0 {
			return nil
		}
		if e.opts.NaiveEvaluation {
			delta = nil
		} else {
			delta = next
		}
	}
}

func bindingKey(ev *env, slots int) string {
	buf := make([]byte, 0, 16*slots)
	for s := 0; s < slots; s++ {
		if !ev.set[s] {
			buf = append(buf, 0xFF)
			continue
		}
		t := ev.val[s]
		buf = append(buf, byte('0'+t.Kind))
		buf = append(buf, t.Name...)
		buf = append(buf, 0)
	}
	return string(buf)
}

// fire applies one trigger; it returns the head atoms that were new.
func (e *engine) fire(c *compiledRule, ev *env) ([]datalog.Atom, error) {
	if len(c.exSlots) > 0 {
		// Depth control for null invention.
		d := 1
		for _, s := range c.frontier {
			if s < c.bodySlots && ev.set[s] && ev.val[s].IsNull() {
				if e.depth[ev.val[s].Name]+1 > d {
					d = e.depth[ev.val[s].Name] + 1
				}
			}
		}
		if d > e.opts.MaxDepth {
			if !e.stats.DepthTruncated && e.opts.Obs != nil {
				e.opts.Obs.Event("chase.truncated", obs.F("depth", e.opts.MaxDepth))
			}
			e.stats.DepthTruncated = true
			return nil, nil
		}
		if e.opts.Mode == Restricted {
			// Skip when an extension of the frontier binding already maps
			// the whole head into the instance. The existential slots are
			// unbound here, so matchPatterns searches for witnesses.
			satisfied := false
			matchPatterns(e.inst, c.heads, c.headOrder, ev, func() bool {
				satisfied = true
				return false
			})
			if satisfied {
				return nil, nil
			}
		}
		for k, s := range c.exSlots {
			key := skolemKeyFor(c, k, ev)
			if e.opts.Mode == Restricted {
				// Restricted-mode nulls are always fresh.
				key += "|#" + strconv.Itoa(e.nextNull)
			}
			ev.set[s] = true
			ev.val[s] = e.freshNull(key, d)
		}
		defer func() {
			for _, s := range c.exSlots {
				ev.set[s] = false
			}
		}()
	}
	var added []datalog.Atom
	for _, h := range c.heads {
		fact := h.instantiate(ev)
		// The fact budget is enforced per insertion, not per trigger or per
		// round, so the instance never overshoots MaxFacts: an insertion that
		// would exceed the cap aborts before it happens. (The Has probe runs
		// only at the boundary, so the common path pays nothing.)
		if e.inst.Len() >= e.opts.MaxFacts && !e.inst.Has(fact) {
			if len(added) > 0 {
				e.stats.TriggersFired++
				if e.cur != nil {
					e.cur.TriggersFired++
				}
			}
			return added, e.abort(limits.ErrFactBudget, int64(e.opts.MaxFacts), int64(e.inst.Len()))
		}
		if e.inst.Add(fact) {
			e.stats.FactsDerived++
			if e.cur != nil {
				e.cur.FactsDerived++
			}
			added = append(added, fact)
		}
	}
	if len(added) > 0 {
		e.stats.TriggersFired++
		if e.cur != nil {
			e.cur.TriggersFired++
		}
	}
	return added, nil
}

// skolemKeyFor renders the Skolem-function key of one existential variable
// under a frontier binding. It depends only on the rule and the environment,
// so the incremental maintenance engine shares it with the batch engine: the
// same trigger always maps to the same key, and therefore (through the
// persistent skolem table) to the same null.
func skolemKeyFor(c *compiledRule, exIdx int, ev *env) string {
	buf := make([]byte, 0, 32)
	buf = append(buf, 'r')
	buf = strconv.AppendInt(buf, int64(c.idx), 10)
	buf = append(buf, '|')
	buf = append(buf, c.exNames[exIdx]...)
	for _, s := range c.frontier {
		buf = append(buf, '|')
		if ev.set[s] {
			t := ev.val[s]
			buf = append(buf, byte('0'+t.Kind))
			buf = append(buf, t.Name...)
		}
	}
	return string(buf)
}

// Run evaluates a Datalog^{∃,¬s,⊥} program over a database following the
// stratified semantics of Section 3.2: S_0 = chase(D, Π_0),
// S_i = chase(S_{i-1}, (Π_i)^{S_{i-1}}), then constraints are checked on
// S_ℓ. The result is Π(D) (Result.Inconsistent true encodes ⊤).
func Run(db *Instance, prog *datalog.Program, opts Options) (*Result, error) {
	return RunCtx(context.Background(), db, prog, opts)
}

// RunCtx is Run under a context: cancellation and deadlines are honored at
// round, rule, and (every few dozen) trigger granularity, so a canceled
// chase stops within milliseconds rather than at the next round boundary.
// When the run is cut short by a limit — a canceled/expired context, the
// fact or round budget, or an injected fault — RunCtx returns BOTH a
// non-nil *Result snapshotting the instance and stats reached so far AND a
// typed limits error carrying the Truncation report; for positive programs
// that partial instance is a sound under-approximation of Π(D), which is
// what the graceful-degradation paths upstream rely on.
func RunCtx(ctx context.Context, db *Instance, prog *datalog.Program, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	// Stratified evaluation needs single-head rules when a multi-head rule
	// spans strata; normalizing unconditionally keeps the engine simple.
	work := prog
	if prog.HasNegation() {
		for _, r := range prog.Rules {
			if len(r.Head) > 1 {
				work = datalog.SingleHead(prog)
				break
			}
		}
	}
	strat, err := datalog.Stratify(work)
	if err != nil {
		return nil, err
	}
	strata, err := strat.Strata(work)
	if err != nil {
		return nil, err
	}
	e := newEngine(ctx, db, opts)
	e.stats.Parallelism = opts.Parallelism
	// Per-rule pprof labels let CPU profiles attribute chase work to rules
	// (and, via the request labels already on ctx, to trace ids). The extra
	// label swap per rule turn is only paid when the request is actually
	// being traced.
	e.ruleLabels = obs.RecordingTrace(ctx)
	opts.Progress.runStart()
	defer opts.Progress.runEnd()
	if opts.Obs != nil || e.ruleLabels {
		if opts.Parent != nil {
			e.span = opts.Parent.Span("chase.run")
		} else {
			_, e.span = obs.StartSpan(ctx, opts.Obs, "chase.run")
		}
		e.span.Attr("mode", opts.Mode.String())
		e.span.Attr("parallelism", opts.Parallelism)
		e.span.Attr("rules", len(work.Rules))
		e.span.Attr("strata", len(strata))
		e.span.Attr("db_facts", db.Len())
		defer func() {
			e.span.End(
				obs.F("rounds", e.stats.Rounds),
				obs.F("triggers_fired", e.stats.TriggersFired),
				obs.F("facts_derived", e.stats.FactsDerived),
				obs.F("nulls_invented", e.stats.NullsInvented),
				obs.F("depth_truncated", e.stats.DepthTruncated))
			opts.Obs.Count("chase.runs", 1)
			opts.Obs.Count("chase.rounds", int64(e.stats.Rounds))
			opts.Obs.Count("chase.triggers_fired", int64(e.stats.TriggersFired))
			opts.Obs.Count("chase.facts_derived", int64(e.stats.FactsDerived))
			opts.Obs.Count("chase.nulls_invented", int64(e.stats.NullsInvented))
		}()
	}
	for _, rules := range strata {
		if len(rules) == 0 {
			continue
		}
		if err := e.chaseStratum(rules); err != nil {
			// Snapshot rather than discard: the caller gets the instance and
			// stats reached at the abort alongside the typed error.
			return &Result{Instance: e.inst, Stats: e.snapshotStats()}, err
		}
	}
	res := &Result{Instance: e.inst, Stats: e.snapshotStats()}
	for _, c := range work.Constraints {
		violated := false
		matchBody(e.inst, e.inst, c.Body, nil, Binding{}, func(Binding) bool {
			violated = true
			return false
		})
		if violated {
			res.Inconsistent = true
			break
		}
	}
	return res, nil
}

// Answers is the evaluation Q(D) of a query: either ⊤ (Inconsistent) or the
// set of constant tuples of the output predicate.
type Answers struct {
	Inconsistent bool
	Tuples       [][]datalog.Term
}

// Has reports whether the tuple is among the answers.
func (a *Answers) Has(tuple ...datalog.Term) bool {
	for _, t := range a.Tuples {
		if len(t) != len(tuple) {
			continue
		}
		eq := true
		for i := range t {
			if t[i] != tuple[i] {
				eq = false
				break
			}
		}
		if eq {
			return true
		}
	}
	return false
}

// HasConstants is Has over constant names.
func (a *Answers) HasConstants(names ...string) bool {
	tuple := make([]datalog.Term, len(names))
	for i, n := range names {
		tuple[i] = datalog.C(n)
	}
	return a.Has(tuple...)
}

// Answer evaluates the query Q = (Π, p) over the database: Q(D) = ⊤ when D is
// inconsistent w.r.t. Π, and otherwise the set of constant tuples t with
// p(t) ∈ Π(D), sorted canonically.
func Answer(db *Instance, q datalog.Query, opts Options) (*Answers, error) {
	return AnswerCtx(context.Background(), db, q, opts)
}

// AnswerCtx is Answer under a context. When the run aborts on a limit it
// returns the (sound, for positive programs) partial answer set reached so
// far together with the typed limits error, mirroring RunCtx.
func AnswerCtx(ctx context.Context, db *Instance, q datalog.Query, opts Options) (*Answers, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	res, err := RunCtx(ctx, db, q.Program, opts)
	if err != nil {
		if res == nil {
			return nil, err
		}
		return collectAnswers(res.Instance, q.Output), err
	}
	if res.Inconsistent {
		return &Answers{Inconsistent: true}, nil
	}
	return collectAnswers(res.Instance, q.Output), nil
}

func collectAnswers(inst *Instance, output string) *Answers {
	ans := &Answers{}
	atoms := append([]datalog.Atom(nil), inst.AtomsOf(output)...)
	datalog.SortAtoms(atoms)
	for _, a := range atoms {
		if a.IsConstantGround() {
			ans.Tuples = append(ans.Tuples, a.Args)
		}
	}
	return ans
}
