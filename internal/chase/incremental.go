package chase

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/datalog"
	"repro/internal/limits"
)

// This file implements incremental maintenance of the Skolem chase fixpoint
// under EDB delta batches: semi-naive insertion (only triggers touching new
// facts fire) and deletion by either exact counting (non-recursive programs)
// or DRed (over-delete the closure reachable from the removed facts, then
// re-derive survivors). The engine keeps, alongside the instance, a support
// counter per fact — the number of distinct rule triggers currently deriving
// it, plus one when the fact is extensional — and the persistent Skolem table
// name→key, so re-deriving a trigger after churn reuses the very same null
// names and an insert-then-delete round trip restores the instance exactly.
//
// Support counting is only exact if every satisfied trigger is counted
// exactly once over the materialization's lifetime. The batch engine's
// Gauss-Seidel rounds (facts derived by an earlier rule are visible to later
// rules in the same round AND re-seed the next round's delta) would
// double-enumerate some triggers, so the incremental engine runs strict
// Jacobi rounds instead: facts derived in a round go only into a pending set
// that becomes the next round's delta, and within a round triggers are
// deduplicated by (rule, body binding). A trigger is then enumerable only in
// the single round where its last body atom arrived, and exactly once.

// ErrMaintainDepth reports that a maintenance pass would have invented a null
// beyond Options.MaxDepth. The batch chase degrades to a depth-truncated
// result in that situation; an incremental materialization cannot (it would
// silently serve an under-approximation forever), so it invalidates itself
// instead and callers fall back to the from-scratch chase.
var ErrMaintainDepth = errors.New("chase: incremental maintenance exceeded the null-depth bound")

// errBroken latches an Incremental whose last maintenance pass failed partway
// (its instance and counters may be inconsistent); every later call fails.
var errBroken = errors.New("chase: incremental materialization is invalid after a failed maintenance pass")

// MaintainStats reports what one maintenance pass (build, insert, or delete)
// did; the mat layer turns these into the mat.* metrics.
type MaintainStats struct {
	// DeltaIn is how many EDB atoms of the batch actually changed the EDB
	// (inserts of already-present or deletes of never-inserted atoms are
	// no-ops and excluded).
	DeltaIn int
	// Rounds is the number of semi-naive rounds (plus deletion waves) run.
	Rounds int
	// Triggers is the number of rule triggers enumerated.
	Triggers int
	// Derived is how many facts were added to the instance.
	Derived int
	// OverDeleted is how many facts DRed provisionally deleted.
	OverDeleted int
	// Rederived is how many over-deleted facts survived: they kept support
	// from untouched derivations or were re-derived from survivors.
	Rederived int
	// Deleted is how many facts were actually removed from the instance.
	Deleted int
}

// Incremental is a materialized Skolem-chase fixpoint that can be maintained
// under EDB insert and delete batches. It is not safe for concurrent use;
// the mat layer serializes access.
type Incremental struct {
	prog *datalog.Program
	opts Options
	comp []*compiledRule
	inst *Instance
	// support maps an instance fact key to its derivation count (one per
	// counted trigger deriving it, plus one when the fact is in the EDB).
	support map[string]int
	// edb marks the fact keys of the extensional atoms.
	edb map[string]struct{}
	// skolem and depth persist across maintenance passes so re-derivation
	// reuses null names; see freshNull.
	skolem    map[string]string
	depth     map[string]int
	nextNull  int
	deepest   int // max depth of any null ever invented
	recursive bool
	broken    bool
}

// NewIncremental builds the materialized fixpoint of a positive Skolem-chase
// program over the given EDB. Programs with negation or constraints are
// rejected (their strata/marker semantics do not maintain incrementally), as
// are non-Skolem modes; callers fall back to the batch chase. A depth or fact
// budget trip during the build is an error, not a truncation: a partial
// materialization must never be served.
func NewIncremental(ctx context.Context, db *Instance, prog *datalog.Program, opts Options) (*Incremental, error) {
	opts = opts.withDefaults()
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if opts.Mode != Skolem {
		return nil, fmt.Errorf("chase: incremental maintenance requires the Skolem chase")
	}
	if prog.HasNegation() {
		return nil, fmt.Errorf("chase: incremental maintenance does not support negation")
	}
	if len(prog.Constraints) > 0 {
		return nil, fmt.Errorf("chase: incremental maintenance does not support constraints")
	}
	inc := &Incremental{
		prog:    prog,
		opts:    opts,
		inst:    NewInstance(),
		support: make(map[string]int),
		edb:     make(map[string]struct{}),
		skolem:  make(map[string]string),
		depth:   make(map[string]int),
	}
	for i, r := range prog.Rules {
		inc.comp = append(inc.comp, compileRule(r, i))
	}
	inc.recursive = hasRecursion(prog)
	if _, err := inc.Insert(ctx, db.All()); err != nil {
		return nil, err
	}
	return inc, nil
}

// hasRecursion reports whether the predicate dependency graph (body pred →
// head pred over all rules) has a cycle. Acyclic programs admit the exact
// counting deletion algorithm; cyclic ones need DRed (a fact may support
// itself through a cycle, so a positive count does not prove independent
// derivability).
func hasRecursion(p *datalog.Program) bool {
	adj := make(map[string][]string)
	for _, r := range p.Rules {
		for _, b := range r.Body() {
			for _, h := range r.Head {
				adj[b.Pred] = append(adj[b.Pred], h.Pred)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(string) bool
	visit = func(u string) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := range adj {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// Instance returns the live materialized instance. Callers must treat it as
// read-only and must not retain it across maintenance passes.
func (inc *Incremental) Instance() *Instance { return inc.inst }

// Facts returns the current instance size.
func (inc *Incremental) Facts() int { return inc.inst.Len() }

// Depth returns the maximum nesting depth of any null ever invented.
func (inc *Incremental) Depth() int { return inc.deepest }

// Recursive reports whether deletions run DRed (true) or exact counting.
func (inc *Incremental) Recursive() bool { return inc.recursive }

// NullKeys returns a copy of the null name → Skolem key table. Two
// materializations of the same program are isomorphic exactly when renaming
// each null to its key makes their instances equal; the differential tests
// rely on this.
func (inc *Incremental) NullKeys() map[string]string {
	out := make(map[string]string, len(inc.skolem))
	for key, name := range inc.skolem {
		out[name] = key
	}
	return out
}

// SupportOf returns the support count of a fact (0 when absent).
func (inc *Incremental) SupportOf(a datalog.Atom) int {
	k, ok := inc.inst.factKey(a)
	if !ok {
		return 0
	}
	return inc.support[k]
}

// freshNull returns the null for a Skolem key, inventing (and depth-tagging)
// it on first use. Keys persist across deletes, so a re-derived trigger gets
// its original null back and instance equality after churn is exact, not just
// up to renaming.
func (inc *Incremental) freshNull(key string, d int) datalog.Term {
	if name, ok := inc.skolem[key]; ok {
		return datalog.N(name)
	}
	name := "i" + strconv.Itoa(inc.nextNull)
	inc.nextNull++
	inc.skolem[key] = name
	inc.depth[name] = d
	if d > inc.deepest {
		inc.deepest = d
	}
	return datalog.N(name)
}

// triggerKey identifies a trigger for deduplication: the rule index plus the
// full body binding.
func triggerKey(c *compiledRule, e *env) string {
	return "r" + strconv.Itoa(c.idx) + ":" + bindingKey(e, c.bodySlots)
}

// checkRound runs the per-round bookkeeping shared by every maintenance
// loop: the round budget, the chase.round fault point (so TRIQ_FAULTS plans
// exercise the maintenance path exactly like the batch engine), and context
// cancellation.
func (inc *Incremental) checkRound(ctx context.Context, st *MaintainStats) error {
	st.Rounds++
	if st.Rounds > inc.opts.MaxRounds {
		return limits.NewError(limits.ErrRoundBudget, limits.Truncation{
			Budget: int64(inc.opts.MaxRounds), Reached: int64(st.Rounds)})
	}
	if err := limits.Hit(inc.opts.Faults, "chase.round"); err != nil {
		return err
	}
	if kind := limits.CtxKind(ctx); kind != nil {
		return limits.NewError(kind, limits.Truncation{})
	}
	return nil
}

// forEachSeededTrigger enumerates, exactly once each, the triggers of rule c
// with at least one body atom in dseed and the remaining atoms in inst (which
// may itself contain the seed facts). seen deduplicates across seed positions
// and — when shared by the caller across waves — across the whole pass.
func (inc *Incremental) forEachSeededTrigger(c *compiledRule, dseed *Instance, seen map[string]struct{}, yield func(*env) error) error {
	e := newEnv(len(c.st.vars))
	var err error
	for j := range c.bodyPos {
		p := c.bodyPos[j]
		cands := dseed.AtomsOf(p.pred)
		if len(cands) == 0 {
			continue
		}
		for _, fact := range cands {
			var added []int
			if p.matchInto(fact, e, &added) {
				matchPatterns(inc.inst, c.bodyPos, c.seeded[j], e, func() bool {
					tk := triggerKey(c, e)
					if _, dup := seen[tk]; dup {
						return true
					}
					seen[tk] = struct{}{}
					if err = yield(e); err != nil {
						return false
					}
					return true
				})
			}
			p.rollback(e, &added, 0)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// bindNulls resolves the existential slots of a fully-bound body environment.
// When invent is true missing Skolem keys mint fresh nulls (insert
// direction); when false a missing key means the trigger never fired and the
// caller must skip it (delete direction). The caller must invoke the returned
// release func to clear the slots. A depth-bound violation returns
// ErrMaintainDepth.
func (inc *Incremental) bindNulls(c *compiledRule, e *env, invent bool) (release func(), fired bool, err error) {
	if len(c.exSlots) == 0 {
		return func() {}, true, nil
	}
	d := 1
	for _, s := range c.frontier {
		if s < c.bodySlots && e.set[s] && e.val[s].IsNull() {
			if inc.depth[e.val[s].Name]+1 > d {
				d = inc.depth[e.val[s].Name] + 1
			}
		}
	}
	if invent && d > inc.opts.MaxDepth {
		return nil, false, ErrMaintainDepth
	}
	release = func() {
		for _, s := range c.exSlots {
			e.set[s] = false
		}
	}
	for k, s := range c.exSlots {
		key := skolemKeyFor(c, k, e)
		if invent {
			e.val[s] = inc.freshNull(key, d)
		} else {
			name, ok := inc.skolem[key]
			if !ok {
				release()
				return nil, false, nil
			}
			e.val[s] = datalog.N(name)
		}
		e.set[s] = true
	}
	return release, true, nil
}

// Insert folds a batch of extensional atoms into the materialization with
// semi-naive evaluation seeded on the actually-new atoms. Atoms already in
// the EDB are no-ops. On error the materialization is invalid and every
// subsequent call fails; callers must discard it.
func (inc *Incremental) Insert(ctx context.Context, atoms []datalog.Atom) (MaintainStats, error) {
	var st MaintainStats
	if inc.broken {
		return st, errBroken
	}
	var delta []datalog.Atom
	for _, a := range atoms {
		if !a.IsConstantGround() {
			inc.broken = true
			return st, fmt.Errorf("chase: extensional atom %v must contain only constants", a)
		}
		k := inc.inst.internKey(a)
		if _, dup := inc.edb[k]; dup {
			continue
		}
		inc.edb[k] = struct{}{}
		inc.support[k]++
		st.DeltaIn++
		if inc.inst.Add(a) {
			st.Derived++
			delta = append(delta, a)
		}
	}
	if err := inc.propagate(ctx, delta, &st); err != nil {
		inc.broken = true
		return st, err
	}
	return st, nil
}

// propagate runs strict-Jacobi semi-naive rounds from the given delta until
// fixpoint, counting one support per enumerated trigger per head atom. It is
// used both by Insert and by the DRed re-derivation phase (whose restored
// facts behave exactly like an insert delta).
func (inc *Incremental) propagate(ctx context.Context, delta []datalog.Atom, st *MaintainStats) error {
	seen := make(map[string]struct{})
	for len(delta) > 0 {
		if err := inc.checkRound(ctx, st); err != nil {
			return err
		}
		dseed := NewInstance(delta...)
		var pending []datalog.Atom
		pendingSet := make(map[string]struct{})
		for _, c := range inc.comp {
			err := inc.forEachSeededTrigger(c, dseed, seen, func(e *env) error {
				release, fired, err := inc.bindNulls(c, e, true)
				if err != nil || !fired {
					return err
				}
				defer release()
				st.Triggers++
				for _, h := range c.heads {
					fact := h.instantiate(e)
					k := inc.inst.internKey(fact)
					inc.support[k]++
					if inc.inst.Has(fact) {
						continue
					}
					if _, dup := pendingSet[k]; dup {
						continue
					}
					if inc.inst.Len()+len(pending) >= inc.opts.MaxFacts {
						return limits.NewError(limits.ErrFactBudget, limits.Truncation{
							Budget: int64(inc.opts.MaxFacts), Reached: int64(inc.inst.Len() + len(pending))})
					}
					pendingSet[k] = struct{}{}
					pending = append(pending, fact)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		for _, a := range pending {
			inc.inst.Add(a)
			st.Derived++
		}
		delta = pending
	}
	return nil
}

// Delete removes a batch of extensional atoms and retracts everything that
// loses all support. Atoms not in the EDB are no-ops. Non-recursive programs
// use exact counting (delete exactly the facts whose count reaches zero);
// recursive programs use DRed: over-delete the closure derivable from the
// removed facts against the pre-removal instance, keep the members that
// retain support from untouched derivations, then propagate the survivors
// like an insert delta to re-derive (and re-count) the rest.
func (inc *Incremental) Delete(ctx context.Context, atoms []datalog.Atom) (MaintainStats, error) {
	var st MaintainStats
	if inc.broken {
		return st, errBroken
	}
	var seeds []datalog.Atom
	seedKeys := make(map[string]struct{})
	for _, a := range atoms {
		k, ok := inc.inst.factKey(a)
		if !ok {
			continue
		}
		if _, isEDB := inc.edb[k]; !isEDB {
			continue
		}
		if _, dup := seedKeys[k]; dup {
			continue
		}
		seedKeys[k] = struct{}{}
		delete(inc.edb, k)
		inc.support[k]--
		st.DeltaIn++
		seeds = append(seeds, a)
	}
	if len(seeds) == 0 {
		return st, nil
	}
	var err error
	if inc.recursive {
		err = inc.deleteDRed(ctx, seeds, &st)
	} else {
		err = inc.deleteCounting(ctx, seeds, &st)
	}
	if err != nil {
		inc.broken = true
	}
	return st, err
}

// deleteCounting deletes by exact support counting, valid because the
// program's predicate dependency graph is acyclic: a positive count always
// witnesses a real derivation from surviving facts. Facts whose count hits
// zero die and propagate in waves; each wave is enumerated against the
// instance before being removed, so a trigger with several dying body atoms
// is still found (and the per-pass seen map makes it decrement only once).
func (inc *Incremental) deleteCounting(ctx context.Context, seeds []datalog.Atom, st *MaintainStats) error {
	seen := make(map[string]struct{})
	var wave []datalog.Atom
	for _, a := range seeds {
		if k, _ := inc.inst.factKey(a); inc.support[k] == 0 {
			wave = append(wave, a)
		}
	}
	for len(wave) > 0 {
		if err := inc.checkRound(ctx, st); err != nil {
			return err
		}
		dseed := NewInstance(wave...)
		var died []datalog.Atom
		diedSet := make(map[string]struct{})
		for _, c := range inc.comp {
			err := inc.forEachSeededTrigger(c, dseed, seen, func(e *env) error {
				release, fired, err := inc.bindNulls(c, e, false)
				if err != nil || !fired {
					return err
				}
				defer release()
				st.Triggers++
				for _, h := range c.heads {
					fact := h.instantiate(e)
					k, ok := inc.inst.factKey(fact)
					if !ok || !inc.inst.Has(fact) {
						continue
					}
					inc.support[k]--
					if inc.support[k] > 0 {
						continue
					}
					if _, isEDB := inc.edb[k]; isEDB {
						continue
					}
					if _, dup := diedSet[k]; dup {
						continue
					}
					diedSet[k] = struct{}{}
					died = append(died, fact)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		st.Deleted += inc.inst.RemoveBatch(wave)
		for _, a := range wave {
			if k, ok := inc.inst.factKey(a); ok {
				delete(inc.support, k)
			}
		}
		wave = died
	}
	return nil
}

// deleteDRed deletes with over-delete + re-derive. Phase 1 walks the closure
// of facts with a derivation touching a removed fact, matching against the
// untouched pre-removal instance and decrementing each enumerated trigger's
// heads exactly once (one global seen map across waves); existential heads
// resolve through the Skolem table, so only triggers that actually fired are
// retracted. Phase 2 removes the closure members whose residual support hit
// zero. Phase 3 propagates the survivors as an ordinary insert delta: every
// trigger it can enumerate was decremented in phase 1 (its body holds a
// closure fact and survived into the new instance), so the re-increments
// restore exact counts, and re-derived facts reuse their original nulls.
func (inc *Incremental) deleteDRed(ctx context.Context, seeds []datalog.Atom, st *MaintainStats) error {
	seen := make(map[string]struct{})
	closure := make(map[string]struct{})
	var closureAtoms []datalog.Atom
	for _, a := range seeds {
		k, _ := inc.inst.factKey(a)
		closure[k] = struct{}{}
		closureAtoms = append(closureAtoms, a)
	}
	wave := seeds
	for len(wave) > 0 {
		if err := inc.checkRound(ctx, st); err != nil {
			return err
		}
		dseed := NewInstance(wave...)
		var next []datalog.Atom
		for _, c := range inc.comp {
			err := inc.forEachSeededTrigger(c, dseed, seen, func(e *env) error {
				release, fired, err := inc.bindNulls(c, e, false)
				if err != nil || !fired {
					return err
				}
				defer release()
				st.Triggers++
				for _, h := range c.heads {
					fact := h.instantiate(e)
					k, ok := inc.inst.factKey(fact)
					if !ok || !inc.inst.Has(fact) {
						continue
					}
					inc.support[k]--
					if _, in := closure[k]; !in {
						closure[k] = struct{}{}
						closureAtoms = append(closureAtoms, fact)
						next = append(next, fact)
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		wave = next
	}
	st.OverDeleted = len(closureAtoms)
	var deleted, restored []datalog.Atom
	for _, a := range closureAtoms {
		k, _ := inc.inst.factKey(a)
		if inc.support[k] > 0 {
			restored = append(restored, a)
		} else {
			deleted = append(deleted, a)
		}
	}
	st.Deleted += inc.inst.RemoveBatch(deleted)
	for _, a := range deleted {
		if k, ok := inc.inst.factKey(a); ok {
			delete(inc.support, k)
		}
	}
	st.Rederived = len(restored)
	before := st.Derived
	if err := inc.propagate(ctx, restored, st); err != nil {
		return err
	}
	st.Rederived += st.Derived - before
	return nil
}
