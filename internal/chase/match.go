package chase

import (
	"repro/internal/datalog"
)

// Binding is a substitution from variables to ground terms. It remains the
// map-based public face of the matcher (used by callers such as the
// ProofTree prover); the chase inner loop itself runs on compiled patterns
// with slice environments, which avoids hashing terms on every extension.
type Binding map[datalog.Term]datalog.Term

// ---------------------------------------------------------------------------
// Compiled patterns: variables are numbered slots, environments are slices.
// ---------------------------------------------------------------------------

// patArg is one argument of a compiled pattern: a variable slot (slot ≥ 0)
// or a constant/null term (slot < 0).
type patArg struct {
	slot int
	term datalog.Term
}

// pattern is a compiled atom.
type pattern struct {
	pred string
	args []patArg
}

// env is a slice environment: env.val[s] is meaningful iff env.set[s].
type env struct {
	val []datalog.Term
	set []bool
}

func newEnv(n int) *env {
	return &env{val: make([]datalog.Term, n), set: make([]bool, n)}
}

func (e *env) reset() {
	for i := range e.set {
		e.set[i] = false
	}
}

// slotTable numbers variables.
type slotTable struct {
	slots map[datalog.Term]int
	vars  []datalog.Term
}

func newSlotTable() *slotTable {
	return &slotTable{slots: make(map[datalog.Term]int)}
}

func (st *slotTable) slot(v datalog.Term) int {
	if s, ok := st.slots[v]; ok {
		return s
	}
	s := len(st.vars)
	st.slots[v] = s
	st.vars = append(st.vars, v)
	return s
}

func compileAtom(a datalog.Atom, st *slotTable) pattern {
	p := pattern{pred: a.Pred, args: make([]patArg, len(a.Args))}
	for i, t := range a.Args {
		if t.IsVar() {
			p.args[i] = patArg{slot: st.slot(t)}
		} else {
			p.args[i] = patArg{slot: -1, term: t}
		}
	}
	return p
}

// instantiate builds the ground atom of a fully-bound pattern.
func (p pattern) instantiate(e *env) datalog.Atom {
	args := make([]datalog.Term, len(p.args))
	for i, a := range p.args {
		if a.slot >= 0 {
			args[i] = e.val[a.slot]
		} else {
			args[i] = a.term
		}
	}
	return datalog.Atom{Pred: p.pred, Args: args}
}

// matchInto extends the environment so that the pattern matches the fact; it
// records newly-bound slots in *added (indices into env) and reports success.
// On failure it rolls back its own additions.
func (p pattern) matchInto(fact datalog.Atom, e *env, added *[]int) bool {
	if len(p.args) != len(fact.Args) {
		return false
	}
	start := len(*added)
	for i, a := range p.args {
		f := fact.Args[i]
		if a.slot < 0 {
			if a.term != f {
				p.rollback(e, added, start)
				return false
			}
			continue
		}
		if e.set[a.slot] {
			if e.val[a.slot] != f {
				p.rollback(e, added, start)
				return false
			}
			continue
		}
		e.set[a.slot] = true
		e.val[a.slot] = f
		*added = append(*added, a.slot)
	}
	return true
}

func (p pattern) rollback(e *env, added *[]int, start int) {
	for _, s := range (*added)[start:] {
		e.set[s] = false
	}
	*added = (*added)[:start]
}

// candidatesFor returns the facts possibly matching the pattern under the
// environment, via the most selective index position.
func candidatesFor(inst *Instance, p pattern, e *env) []datalog.Atom {
	bestLen := -1
	var best []datalog.Atom
	for i, a := range p.args {
		var ground datalog.Term
		switch {
		case a.slot < 0:
			ground = a.term
		case e.set[a.slot]:
			ground = e.val[a.slot]
		default:
			continue
		}
		c := inst.Lookup(p.pred, i, ground)
		if bestLen == -1 || len(c) < bestLen {
			bestLen, best = len(c), c
			if bestLen == 0 {
				return nil
			}
		}
	}
	if bestLen >= 0 {
		return best
	}
	return inst.AtomsOf(p.pred)
}

// orderPatterns returns a greedy join order over the pattern indices: start
// from the already-bound prefix (seed), then repeatedly pick the pattern
// with the fewest unbound slots, penalizing cartesian products.
func orderPatterns(pats []pattern, seed int) []int {
	bound := make(map[int]bool)
	if seed >= 0 {
		for _, a := range pats[seed].args {
			if a.slot >= 0 {
				bound[a.slot] = true
			}
		}
	}
	var out []int
	used := make([]bool, len(pats))
	if seed >= 0 {
		used[seed] = true
	}
	for {
		best, bestScore := -1, 1<<30
		for i, p := range pats {
			if used[i] {
				continue
			}
			unbound, total := 0, 0
			for _, a := range p.args {
				if a.slot >= 0 {
					total++
					if !bound[a.slot] {
						unbound++
					}
				}
			}
			score := unbound
			if len(out) > 0 || seed >= 0 {
				if unbound == total && unbound > 0 {
					score += 100 // cartesian product, defer
				}
			}
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			return out
		}
		used[best] = true
		out = append(out, best)
		for _, a := range pats[best].args {
			if a.slot >= 0 {
				bound[a.slot] = true
			}
		}
	}
}

// matchPatterns enumerates extensions of the environment matching every
// pattern (in the given order) against the instance. The callback returns
// false to stop early; matchPatterns reports whether enumeration completed.
func matchPatterns(inst *Instance, pats []pattern, order []int, e *env, yield func() bool) bool {
	if len(order) == 0 {
		return yield()
	}
	var added []int
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return yield()
		}
		p := pats[order[k]]
		for _, fact := range candidatesFor(inst, p, e) {
			start := len(added)
			if p.matchInto(fact, e, &added) {
				if !rec(k + 1) {
					return false
				}
				p.rollback(e, &added, start)
			}
		}
		return true
	}
	return rec(0)
}

// matchBody is the compatibility entry point used for constraints and by
// tests: it matches positive atoms against inst, filters by negated atoms
// against negInst, and yields map Bindings over the atoms' variables.
func matchBody(inst, negInst *Instance, bodyPos, bodyNeg []datalog.Atom, init Binding, yield func(Binding) bool) bool {
	st := newSlotTable()
	pats := make([]pattern, len(bodyPos))
	for i, a := range bodyPos {
		pats[i] = compileAtom(a, st)
	}
	negPats := make([]pattern, len(bodyNeg))
	for i, a := range bodyNeg {
		negPats[i] = compileAtom(a, st)
	}
	e := newEnv(len(st.vars))
	for v, t := range init {
		if s, ok := st.slots[v]; ok {
			e.set[s] = true
			e.val[s] = t
		}
	}
	order := orderPatterns(pats, -1)
	return matchPatterns(inst, pats, order, e, func() bool {
		for _, np := range negPats {
			if negInst.Has(np.instantiate(e)) {
				return true
			}
		}
		out := make(Binding, len(st.vars))
		for s, v := range st.vars {
			if e.set[s] {
				out[v] = e.val[s]
			}
		}
		return yield(out)
	})
}
