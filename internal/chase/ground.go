package chase

import (
	"context"

	"repro/internal/datalog"
	"repro/internal/obs"
)

// GroundResult is the outcome of computing the ground semantics Π(D)↓.
type GroundResult struct {
	// Ground holds the constant-only atoms of Π(D): the paper's Π(D)↓.
	Ground *Instance
	// Inconsistent is true when a constraint fired.
	Inconsistent bool
	// Exact is true when the chase terminated within the depth bound, so
	// Ground is provably Π(D)↓. When false, Ground is the stable fixpoint of
	// the iterative-deepening procedure (see StableGround).
	Exact bool
	// Depth is the null-nesting depth at which the result was obtained.
	Depth int
	Stats Stats
}

// GroundSemantics runs the chase once with the given options and restricts
// the result to its constant-only atoms.
func GroundSemantics(db *Instance, prog *datalog.Program, opts Options) (*GroundResult, error) {
	return GroundSemanticsCtx(context.Background(), db, prog, opts)
}

// GroundSemanticsCtx is GroundSemantics under a context. A limit abort
// returns the ground part of the partial instance alongside the typed
// error, never Exact.
func GroundSemanticsCtx(ctx context.Context, db *Instance, prog *datalog.Program, opts Options) (*GroundResult, error) {
	opts = opts.withDefaults()
	res, err := RunCtx(ctx, db, prog, opts)
	if err != nil {
		if res == nil {
			return nil, err
		}
		return &GroundResult{
			Ground: res.Instance.GroundPart(),
			Depth:  opts.MaxDepth,
			Stats:  res.Stats,
		}, err
	}
	return &GroundResult{
		Ground:       res.Instance.GroundPart(),
		Inconsistent: res.Inconsistent,
		Exact:        !res.Stats.DepthTruncated,
		Depth:        opts.MaxDepth,
		Stats:        res.Stats,
	}, nil
}

// StableGround computes Π(D)↓ by iterative deepening on the null-nesting
// depth: the chase is re-run with increasing MaxDepth until either it
// terminates within the bound (the result is then exact), or the ground part
// stays unchanged for `window` consecutive depth increments.
//
// For warded programs the stabilization criterion is justified by the
// wardedness condition: a null-carrying fact can contribute to further
// ground atoms only through the constants it carries (the ward shares only
// harmless — ground — variables with the rest of a rule body), so once an
// extra level of null depth stops producing new ground atoms, deeper levels
// reproduce isomorphic null patterns and cannot produce new ones either. The
// ProofTree decision procedure (internal/triq) provides an independent
// per-atom certification used by the test-suite to cross-check this
// procedure.
func StableGround(db *Instance, prog *datalog.Program, opts Options, window int) (*GroundResult, error) {
	return StableGroundCtx(context.Background(), db, prog, opts, window)
}

// StableGroundCtx is StableGround under a context. On a limit abort it
// returns the partial GroundResult of the interrupted deepening step (when
// one exists) together with the typed error, so callers can degrade to the
// sound partial ground part instead of discarding the work.
func StableGroundCtx(ctx context.Context, db *Instance, prog *datalog.Program, opts Options, window int) (*GroundResult, error) {
	opts = opts.withDefaults()
	if window <= 0 {
		window = 2
	}
	depth := 2
	var prev *Instance
	stable := 0
	var last *GroundResult
	for {
		o := opts
		o.MaxDepth = depth
		_, sp := obs.StartSpan(ctx, opts.Obs, "chase.deepen", obs.F("depth", depth))
		o.Parent = sp
		res, err := GroundSemanticsCtx(ctx, db, prog, o)
		if err != nil {
			sp.End(obs.F("error", true))
			if res != nil {
				res.Depth = depth
			}
			return res, err
		}
		res.Depth = depth
		sp.End(
			obs.F("ground", res.Ground.Len()),
			obs.F("exact", res.Exact),
			obs.F("inconsistent", res.Inconsistent),
			obs.F("stable", stable))
		if res.Inconsistent || res.Exact {
			return res, nil
		}
		if prev != nil && res.Ground.Equal(prev) {
			stable++
			if stable >= window {
				return res, nil
			}
		} else {
			stable = 0
		}
		prev = res.Ground
		last = res
		depth += 2
		if depth > opts.MaxDepth {
			// Give up at the configured ceiling; return the deepest result.
			return last, nil
		}
	}
}
