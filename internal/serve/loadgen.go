package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// loadgen drives a running triqd from N parallel clients and reports
// throughput and latency quantiles. cmd/triqbench -server/-parallel wraps
// RunLoad; the serve tests use it as a miniature soak client.

// LoadConfig describes one load run.
type LoadConfig struct {
	// URL is the endpoint to POST, e.g. http://127.0.0.1:8471/query.
	URL string
	// Body is the JSON request body every client sends.
	Body []byte
	// Parallel is the number of concurrent clients (default 4).
	Parallel int
	// Requests is the total number of requests across all clients
	// (default 100).
	Requests int
	// Timeout bounds each individual HTTP request (default 30s).
	Timeout time.Duration
	// Trace sends a W3C traceparent header with each request so the server
	// joins the client's trace; TraceSample sets the fraction of requests
	// sent with the sampled flag (default 0.1 when Trace is set).
	Trace       bool
	TraceSample float64
	// Seed seeds trace-id generation (0 derives from the clock).
	Seed int64
}

// LoadResult aggregates a load run.
type LoadResult struct {
	// Total / OK / Shed / Failed partition the requests: 200s, 503s, and
	// everything else (including transport errors).
	Total, OK, Shed, Failed int
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// Throughput is requests per second over the run.
	Throughput float64
	// P50/P95/P99 are latency quantiles over all requests.
	P50, P95, P99 time.Duration
	// TraceEchoed counts responses whose traceparent header echoed the
	// request's trace id (only with LoadConfig.Trace).
	TraceEchoed int
	// SampledTraceIDs holds up to 64 trace ids that were sent with the
	// sampled flag — look them up at /debug/trace?id= on the server.
	SampledTraceIDs []string
}

func (r *LoadResult) String() string {
	s := fmt.Sprintf("total=%d ok=%d shed=%d failed=%d elapsed=%s throughput=%.1f req/s p50=%s p95=%s p99=%s",
		r.Total, r.OK, r.Shed, r.Failed, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	if r.TraceEchoed > 0 || len(r.SampledTraceIDs) > 0 {
		s += fmt.Sprintf(" trace_echoed=%d sampled_traces=%d", r.TraceEchoed, len(r.SampledTraceIDs))
	}
	return s
}

// maxSampledTraceIDs caps the trace ids retained in a LoadResult.
const maxSampledTraceIDs = 64

// RunLoad fires cfg.Requests POSTs at cfg.URL from cfg.Parallel goroutines
// and aggregates outcomes. Shed (503) responses are expected under overload
// and counted separately from failures.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}

	var ids *obs.IDSource
	var sampler *obs.Sampler
	if cfg.Trace {
		if cfg.TraceSample == 0 {
			cfg.TraceSample = 0.1
		}
		ids = obs.NewIDSource(cfg.Seed)
		sampler = obs.NewSampler(cfg.TraceSample, cfg.Seed)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       LoadResult
	)
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				var traceparent string
				var tid obs.TraceID
				sampled := false
				if ids != nil {
					tid = ids.TraceID()
					sampled = sampler.Sampled(tid)
					var flags byte
					if sampled {
						flags = obs.FlagSampled
					}
					traceparent = obs.FormatTraceparent(tid, ids.SpanID(), flags)
				}
				t0 := time.Now()
				status, echoed, err := post(ctx, client, cfg.URL, cfg.Body, traceparent, tid)
				lat := time.Since(t0)
				mu.Lock()
				res.Total++
				latencies = append(latencies, lat)
				switch {
				case err == nil && status == http.StatusOK:
					res.OK++
				case err == nil && status == http.StatusServiceUnavailable:
					res.Shed++
				default:
					res.Failed++
				}
				if echoed {
					res.TraceEchoed++
				}
				if sampled && len(res.SampledTraceIDs) < maxSampledTraceIDs {
					res.SampledTraceIDs = append(res.SampledTraceIDs, tid.String())
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		select {
		case jobs <- struct{}{}:
		case <-ctx.Done():
			i = cfg.Requests
		}
	}
	close(jobs)
	wg.Wait()

	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Total) / res.Elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = quantileDur(latencies, 0.50)
	res.P95 = quantileDur(latencies, 0.95)
	res.P99 = quantileDur(latencies, 0.99)
	if res.Total == 0 {
		return &res, ctx.Err()
	}
	return &res, nil
}

// post sends one request; echoed reports whether the response traceparent
// carried the same trace id the request sent.
func post(ctx context.Context, client *http.Client, url string, body []byte, traceparent string, tid obs.TraceID) (int, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	echoed := false
	if traceparent != "" {
		if rtid, _, _, perr := obs.ParseTraceparent(resp.Header.Get("traceparent")); perr == nil {
			echoed = rtid == tid
		}
	}
	return resp.StatusCode, echoed, nil
}

// quantileDur picks the q-th quantile of a sorted slice (nearest-rank).
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
