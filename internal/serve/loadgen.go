package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// loadgen drives a running triqd from N parallel clients and reports
// throughput and latency quantiles. cmd/triqbench -server/-parallel wraps
// RunLoad; the serve tests use it as a miniature soak client.

// LoadConfig describes one load run.
type LoadConfig struct {
	// URL is the endpoint to POST, e.g. http://127.0.0.1:8471/query.
	URL string
	// Body is the JSON request body every client sends.
	Body []byte
	// Parallel is the number of concurrent clients (default 4).
	Parallel int
	// Requests is the total number of requests across all clients
	// (default 100).
	Requests int
	// Timeout bounds each individual HTTP request (default 30s).
	Timeout time.Duration
	// Trace sends a W3C traceparent header with each request so the server
	// joins the client's trace; TraceSample sets the fraction of requests
	// sent with the sampled flag (default 0.1 when Trace is set).
	Trace       bool
	TraceSample float64
	// Seed seeds trace-id generation (0 derives from the clock).
	Seed int64
	// WritePct is the percentage (0–100) of requests sent as mutations
	// instead of Body: alternating /insert and /delete batches of generated
	// triples against MutateBase. Zero keeps the run read-only.
	WritePct float64
	// MutateBase is the server base URL for the write mix, e.g.
	// http://127.0.0.1:8471 (required when WritePct > 0).
	MutateBase string
	// WriteBatch is the triples per mutation batch (default 8).
	WriteBatch int
	// RetryBudget is the total number of 503 retries the whole run may
	// spend. A shed response carrying Retry-After is retried after honoring
	// the hint (capped at maxRetryWait, at most maxRetriesPerReq attempts
	// per request) while budget remains; exhausted budget counts the 503 as
	// shed, as before. Zero disables retrying.
	RetryBudget int
	// ReadYourWrites makes every read demand the highest epoch any write in
	// the run has acknowledged so far (X-Triq-Min-Epoch), exercising the
	// bounded-staleness path; the observed waits (from the server's
	// X-Triq-Staleness-Wait-US header) come back in the result.
	ReadYourWrites bool
	// StatusBase, when set, is a server base URL whose /readyz is sampled at
	// the end of the run to report the node's replication lag (epochs and
	// wall-clock seconds behind the primary; zero on a primary).
	StatusBase string
}

// LoadResult aggregates a load run.
type LoadResult struct {
	// Total / OK / Shed / Failed partition the requests: 200s, 503s, and
	// everything else (including transport errors).
	Total, OK, Shed, Failed int
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// Throughput is requests per second over the run.
	Throughput float64
	// P50/P95/P99 are latency quantiles over all requests.
	P50, P95, P99 time.Duration
	// TraceEchoed counts responses whose traceparent header echoed the
	// request's trace id (only with LoadConfig.Trace).
	TraceEchoed int
	// SampledTraceIDs holds up to 64 trace ids that were sent with the
	// sampled flag — look them up at /debug/trace?id= on the server.
	SampledTraceIDs []string
	// Writes / WriteOK count the mutation requests in the mix and their 200s
	// (both are also included in Total / OK).
	Writes, WriteOK int
	// LastEpoch is the highest store epoch any mutation acknowledged.
	LastEpoch uint64
	// Retried counts 503 responses that were retried out of the budget;
	// RetriedOK counts requests that succeeded on a retry.
	Retried, RetriedOK int
	// StalenessWaits counts reads the server stalled for a min-epoch floor
	// (bounded staleness) and StalenessWait sums the observed waits — both
	// from the X-Triq-Staleness-Wait-US response header.
	StalenessWaits int
	StalenessWait  time.Duration
	// ReplicaLagEpochs / ReplicaLagSeconds are the serving node's
	// replication lag sampled from /readyz at the end of the run (zero on a
	// primary or when LoadConfig.StatusBase is unset) — the epoch lag and
	// the wall-clock time-lag behind the primary.
	ReplicaLagEpochs  uint64
	ReplicaLagSeconds float64
}

func (r *LoadResult) String() string {
	s := fmt.Sprintf("total=%d ok=%d shed=%d failed=%d elapsed=%s throughput=%.1f req/s p50=%s p95=%s p99=%s",
		r.Total, r.OK, r.Shed, r.Failed, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	if r.TraceEchoed > 0 || len(r.SampledTraceIDs) > 0 {
		s += fmt.Sprintf(" trace_echoed=%d sampled_traces=%d", r.TraceEchoed, len(r.SampledTraceIDs))
	}
	if r.Writes > 0 {
		s += fmt.Sprintf(" writes=%d write_ok=%d last_epoch=%d", r.Writes, r.WriteOK, r.LastEpoch)
	}
	if r.Retried > 0 {
		s += fmt.Sprintf(" retried=%d retried_ok=%d", r.Retried, r.RetriedOK)
	}
	if r.StalenessWaits > 0 {
		s += fmt.Sprintf(" staleness_waits=%d staleness_wait_total=%s",
			r.StalenessWaits, r.StalenessWait.Round(time.Microsecond))
	}
	if r.ReplicaLagEpochs > 0 || r.ReplicaLagSeconds > 0 {
		s += fmt.Sprintf(" replica_lag_epochs=%d replica_lag_seconds=%.3f",
			r.ReplicaLagEpochs, r.ReplicaLagSeconds)
	}
	return s
}

// maxSampledTraceIDs caps the trace ids retained in a LoadResult.
const maxSampledTraceIDs = 64

// maxRetryWait caps how long a client sleeps on one Retry-After hint, and
// maxRetriesPerReq caps how much of the budget a single request may burn
// (a persistently-shedding server should fail the request, not stall the
// run).
const (
	maxRetryWait     = 2 * time.Second
	maxRetriesPerReq = 3
)

// retryBudget is the shared pool of 503 retries one run may spend.
type retryBudget struct{ left atomic.Int64 }

func newRetryBudget(n int) *retryBudget {
	b := &retryBudget{}
	b.left.Store(int64(n))
	return b
}

// take spends one retry; it reports false when the pool is dry.
func (b *retryBudget) take() bool { return b.left.Add(-1) >= 0 }

// RunLoad fires cfg.Requests POSTs at cfg.URL from cfg.Parallel goroutines
// and aggregates outcomes. Shed (503) responses are expected under overload
// and counted separately from failures.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}

	var ids *obs.IDSource
	var sampler *obs.Sampler
	if cfg.Trace {
		if cfg.TraceSample == 0 {
			cfg.TraceSample = 0.1
		}
		ids = obs.NewIDSource(cfg.Seed)
		sampler = obs.NewSampler(cfg.TraceSample, cfg.Seed)
	}

	// The write mix is decided up front from the seed so a run is
	// reproducible regardless of worker interleaving. Batches alternate
	// insert of a fresh generated batch and delete of the previous one, so a
	// long soak doesn't grow the store without bound.
	writes := make([]loadMutation, cfg.Requests)
	if cfg.WritePct > 0 {
		if cfg.MutateBase == "" {
			return nil, fmt.Errorf("loadgen: WritePct set without MutateBase")
		}
		if cfg.WriteBatch <= 0 {
			cfg.WriteBatch = 8
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 17))
		batch := 0
		for i := range writes {
			if rng.Float64()*100 >= cfg.WritePct {
				continue
			}
			if batch%2 == 0 || batch == 1 {
				writes[i] = mutationJob(cfg.MutateBase+"/insert", batch/2, cfg.WriteBatch)
			} else {
				writes[i] = mutationJob(cfg.MutateBase+"/delete", batch/2-1, cfg.WriteBatch)
			}
			batch++
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       LoadResult
		// lastEpoch is the read-your-writes floor: the highest epoch any
		// write has acknowledged, demanded by subsequent reads.
		lastEpoch atomic.Uint64
	)
	budget := newRetryBudget(cfg.RetryBudget)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				url, body, isWrite := cfg.URL, cfg.Body, false
				if writes[i].body != nil {
					url, body, isWrite = writes[i].url, writes[i].body, true
				}
				var traceparent string
				var tid obs.TraceID
				sampled := false
				if ids != nil {
					tid = ids.TraceID()
					sampled = sampler.Sampled(tid)
					var flags byte
					if sampled {
						flags = obs.FlagSampled
					}
					traceparent = obs.FormatTraceparent(tid, ids.SpanID(), flags)
				}
				var minEpoch uint64
				if cfg.ReadYourWrites && !isWrite {
					minEpoch = lastEpoch.Load()
				}
				var (
					status    int
					respBody  []byte
					echoed    bool
					err       error
					lat       time.Duration
					staleWait time.Duration
				)
				retries := 0
				for {
					t0 := time.Now()
					var retryAfter time.Duration
					status, respBody, echoed, retryAfter, staleWait, err = post(ctx, client, url, body, traceparent, tid, minEpoch, isWrite)
					lat = time.Since(t0)
					// A shed response is retried after honoring its
					// Retry-After hint while budget remains; with the pool
					// dry (or per-request retries spent) it stays a shed.
					if err != nil || status != http.StatusServiceUnavailable ||
						retries >= maxRetriesPerReq || !budget.take() {
						break
					}
					if retryAfter <= 0 {
						retryAfter = 50 * time.Millisecond
					}
					if retryAfter > maxRetryWait {
						retryAfter = maxRetryWait
					}
					retries++
					select {
					case <-time.After(retryAfter):
					case <-ctx.Done():
					}
					if ctx.Err() != nil {
						break
					}
				}
				var epoch uint64
				if isWrite && err == nil && status == http.StatusOK {
					var mr MutationResponse
					if json.Unmarshal(respBody, &mr) == nil {
						epoch = mr.Epoch
					}
					for { // publish the read-your-writes floor (max wins)
						cur := lastEpoch.Load()
						if epoch <= cur || lastEpoch.CompareAndSwap(cur, epoch) {
							break
						}
					}
				}
				mu.Lock()
				res.Total++
				latencies = append(latencies, lat)
				switch {
				case err == nil && status == http.StatusOK:
					res.OK++
				case err == nil && status == http.StatusServiceUnavailable:
					res.Shed++
				default:
					res.Failed++
				}
				if isWrite {
					res.Writes++
					if err == nil && status == http.StatusOK {
						res.WriteOK++
					}
					if epoch > res.LastEpoch {
						res.LastEpoch = epoch
					}
				}
				res.Retried += retries
				if retries > 0 && err == nil && status == http.StatusOK {
					res.RetriedOK++
				}
				if staleWait > 0 {
					res.StalenessWaits++
					res.StalenessWait += staleWait
				}
				if echoed {
					res.TraceEchoed++
				}
				if sampled && len(res.SampledTraceIDs) < maxSampledTraceIDs {
					res.SampledTraceIDs = append(res.SampledTraceIDs, tid.String())
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			i = cfg.Requests
		}
	}
	close(jobs)
	wg.Wait()

	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Total) / res.Elapsed.Seconds()
	}
	if cfg.StatusBase != "" {
		res.ReplicaLagEpochs, res.ReplicaLagSeconds = fetchReadyLag(ctx, client, cfg.StatusBase)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = quantileDur(latencies, 0.50)
	res.P95 = quantileDur(latencies, 0.95)
	res.P99 = quantileDur(latencies, 0.99)
	if res.Total == 0 {
		return &res, ctx.Err()
	}
	return &res, nil
}

// loadMutation is one precomputed write of the mix; a nil body means the
// request slot stays a read.
type loadMutation struct {
	url  string
	body []byte
}

// mutationJob renders the JSON body for generated batch b of n triples. The
// triples are deterministic in b, so a delete of batch b removes exactly
// what its insert added.
func mutationJob(url string, b, n int) loadMutation {
	var nt bytes.Buffer
	for j := 0; j < n; j++ {
		fmt.Fprintf(&nt, "lg-b%d-s%d lg-p lg-o%d .\n", b, j, j)
	}
	body, _ := json.Marshal(MutationRequest{Triples: nt.String()})
	return loadMutation{url: url, body: body}
}

// fetchReadyLag samples /readyz for the node's replication lag. Decoding is
// best-effort and status-agnostic (a catching-up replica answers 503 with
// the same body shape); a primary has no lag fields and reports zeros.
func fetchReadyLag(ctx context.Context, client *http.Client, base string) (lagEpochs uint64, lagSeconds float64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return 0, 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var ready struct {
		LagEpochs  uint64  `json:"lag_epochs"`
		LagSeconds float64 `json:"lag_seconds"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ready) != nil {
		return 0, 0
	}
	return ready.LagEpochs, ready.LagSeconds
}

// post sends one request; echoed reports whether the response traceparent
// carried the same trace id the request sent. The body is returned only
// when capture is set (mutations need the acknowledged epoch). On a 503
// the server's retry hint comes back too — Failure.RetryAfterMS when the
// body has it (millisecond granularity), the Retry-After header otherwise.
// A non-zero minEpoch rides X-Triq-Min-Epoch (bounded staleness), and any
// observed X-Triq-Staleness-Wait-US comes back as staleWait.
func post(ctx context.Context, client *http.Client, url string, body []byte, traceparent string, tid obs.TraceID, minEpoch uint64, capture bool) (int, []byte, bool, time.Duration, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, false, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	if minEpoch > 0 {
		req.Header.Set("X-Triq-Min-Epoch", strconv.FormatUint(minEpoch, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, false, 0, 0, err
	}
	defer resp.Body.Close()
	var respBody []byte
	if capture || resp.StatusCode == http.StatusServiceUnavailable {
		respBody, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	var retryAfter time.Duration
	if resp.StatusCode == http.StatusServiceUnavailable {
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		var f Failure
		if json.Unmarshal(respBody, &f) == nil && f.RetryAfterMS > 0 {
			retryAfter = time.Duration(f.RetryAfterMS) * time.Millisecond
		}
	}
	echoed := false
	if traceparent != "" {
		if rtid, _, _, perr := obs.ParseTraceparent(resp.Header.Get("traceparent")); perr == nil {
			echoed = rtid == tid
		}
	}
	var staleWait time.Duration
	if h := resp.Header.Get("X-Triq-Staleness-Wait-US"); h != "" {
		if us, werr := strconv.ParseInt(h, 10, 64); werr == nil && us > 0 {
			staleWait = time.Duration(us) * time.Microsecond
		}
	}
	return resp.StatusCode, respBody, echoed, retryAfter, staleWait, nil
}

// quantileDur picks the q-th quantile of a sorted slice (nearest-rank).
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
