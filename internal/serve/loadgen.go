package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// loadgen drives a running triqd from N parallel clients and reports
// throughput and latency quantiles. cmd/triqbench -server/-parallel wraps
// RunLoad; the serve tests use it as a miniature soak client.

// LoadConfig describes one load run.
type LoadConfig struct {
	// URL is the endpoint to POST, e.g. http://127.0.0.1:8471/query.
	URL string
	// Body is the JSON request body every client sends.
	Body []byte
	// Parallel is the number of concurrent clients (default 4).
	Parallel int
	// Requests is the total number of requests across all clients
	// (default 100).
	Requests int
	// Timeout bounds each individual HTTP request (default 30s).
	Timeout time.Duration
}

// LoadResult aggregates a load run.
type LoadResult struct {
	// Total / OK / Shed / Failed partition the requests: 200s, 503s, and
	// everything else (including transport errors).
	Total, OK, Shed, Failed int
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// Throughput is requests per second over the run.
	Throughput float64
	// P50/P95/P99 are latency quantiles over all requests.
	P50, P95, P99 time.Duration
}

func (r *LoadResult) String() string {
	return fmt.Sprintf("total=%d ok=%d shed=%d failed=%d elapsed=%s throughput=%.1f req/s p50=%s p95=%s p99=%s",
		r.Total, r.OK, r.Shed, r.Failed, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
}

// RunLoad fires cfg.Requests POSTs at cfg.URL from cfg.Parallel goroutines
// and aggregates outcomes. Shed (503) responses are expected under overload
// and counted separately from failures.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       LoadResult
	)
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				t0 := time.Now()
				status, err := post(ctx, client, cfg.URL, cfg.Body)
				lat := time.Since(t0)
				mu.Lock()
				res.Total++
				latencies = append(latencies, lat)
				switch {
				case err == nil && status == http.StatusOK:
					res.OK++
				case err == nil && status == http.StatusServiceUnavailable:
					res.Shed++
				default:
					res.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		select {
		case jobs <- struct{}{}:
		case <-ctx.Done():
			i = cfg.Requests
		}
	}
	close(jobs)
	wg.Wait()

	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Total) / res.Elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = quantileDur(latencies, 0.50)
	res.P95 = quantileDur(latencies, 0.95)
	res.P99 = quantileDur(latencies, 0.99)
	if res.Total == 0 {
		return &res, ctx.Err()
	}
	return &res, nil
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// quantileDur picks the q-th quantile of a sorted slice (nearest-rank).
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
