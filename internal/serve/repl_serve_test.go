package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/store"
)

var errFakeDisk = errors.New("fake disk failure")

// The serve-layer replication contract: epoch tokens and bounded-staleness
// reads, replica write refusal (and proxying) with the primary's address,
// promotion over the API, replica readiness states, and the read-only
// degrade of a primary whose WAL failed. The repl package's own tests cover
// the stream/apply mechanics; these tests cover the HTTP surface.

// newPair boots a primary server and a replica server wired together over
// real HTTP and waits until the replica is streaming.
func newPair(t *testing.T, primaryCfg, replicaCfg Config) (pri, rep *httptest.Server, replica *repl.Replica, priStore, repStore *store.Store) {
	t.Helper()
	var priSrv *Server
	priSrv, priStore, pri = newStoreServer(t, primaryCfg, store.Config{})
	_ = priSrv

	replicaCfg.Obs = obs.New()
	if replicaCfg.Breaker.Window == 0 {
		replicaCfg.Breaker.Disabled = true
	}
	repSrv := New(replicaCfg)
	var err error
	repStore, _, err = store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repStore.Close() })
	repSrv.SetStore(repStore)

	replica = repl.New(repl.Config{
		Primary: pri.URL, Store: repStore, Obs: replicaCfg.Obs,
		Backoff: 5 * time.Millisecond,
	})
	repSrv.SetReplica(replica)
	rep = httptest.NewServer(repSrv.Handler())
	t.Cleanup(rep.Close)
	replica.Start(context.Background())
	t.Cleanup(replica.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := repStore.WaitEpoch(ctx, priStore.Current().Seq); err != nil {
		t.Fatalf("replica never caught up: %v", err)
	}
	return pri, rep, replica, priStore, repStore
}

func getReadyz(t *testing.T, base string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}

func TestServeEpochTokens(t *testing.T) {
	_, st, ts := newStoreServer(t, Config{}, store.Config{})
	base := st.Current().Seq

	// Every query against a store answers with the pinned epoch, in the
	// header and the body.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Program: testProgram})))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Triq-Epoch"); got != itoa(base) {
		t.Fatalf("X-Triq-Epoch = %q, want %d", got, base)
	}
	if qr := decodeResponse(t, body); qr.Epoch != base {
		t.Fatalf("response epoch = %d, want %d", qr.Epoch, base)
	}

	// A satisfied min-epoch is a plain 200.
	status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram, MinEpoch: base})
	if status != http.StatusOK {
		t.Fatalf("satisfied min_epoch = %d", status)
	}

	// A min-epoch the store cannot reach within the staleness window sheds
	// 503 with a retry hint.
	_, st2, ts2 := newStoreServer(t, Config{StalenessWait: 30 * time.Millisecond}, store.Config{})
	resp2, err := http.Post(ts2.URL+"/query", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Program: testProgram, MinEpoch: st2.Current().Seq + 5})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Fatalf("stale read = %d, Retry-After %q, want 503 with hint",
			resp2.StatusCode, resp2.Header.Get("Retry-After"))
	}

	// The header spelling works too, and a write that lands during the wait
	// unblocks the read.
	go func() {
		time.Sleep(20 * time.Millisecond)
		st.Insert([]rdf.Triple{rdf.T("Shuttle", "partOf", "TheAirline")})
	}()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query",
		bytes.NewReader(mustJSON(t, QueryRequest{Program: testProgram})))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Triq-Min-Epoch", itoa(base+1))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("min-epoch wait = %d, body %s", resp3.StatusCode, body3)
	}
	if qr := decodeResponse(t, body3); qr.Epoch != base+1 || len(qr.Rows) != 3 {
		t.Fatalf("waited read epoch %d rows %v, want epoch %d with Shuttle visible",
			qr.Epoch, qr.Rows, base+1)
	}
}

func TestServeReplicaRefusesWritesAndPromotes(t *testing.T) {
	pri, rep, _, priStore, repStore := newPair(t, Config{}, Config{})

	// Readiness reports a live replica with the primary's address.
	status, m := getReadyz(t, rep.URL)
	if status != http.StatusOK || m["state"] != "replica" || m["primary"] != pri.URL {
		t.Fatalf("replica readyz = %d %v", status, m)
	}

	// Writes to the replica are refused toward the primary.
	status, body := postMutation(t, rep.URL+"/insert", MutationRequest{Triples: "x partOf y .\n"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("replica insert = %d, body %s, want 503", status, body)
	}
	var f Failure
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.Primary != pri.URL || f.RetryAfterMS <= 0 {
		t.Fatalf("failure = %+v, want primary %q and a retry hint", f, pri.URL)
	}

	// Reads are served, with the replica's epoch token.
	if status, _ := postJSON(t, rep.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatalf("replica query = %d", status)
	}

	// Promotion over the API opens the write path at the primary's epoch +1.
	resp, err := http.Post(rep.URL+"/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st repl.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != repl.StatePromoted {
		t.Fatalf("promote = %d %+v", resp.StatusCode, st)
	}
	status, body = postMutation(t, rep.URL+"/insert", MutationRequest{Triples: "x partOf y .\n"})
	if status != http.StatusOK {
		t.Fatalf("post-promote insert = %d, body %s", status, body)
	}
	var mr MutationResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if want := priStore.Current().Seq + 1; mr.Epoch != want {
		t.Fatalf("promoted epoch = %d, want %d", mr.Epoch, want)
	}
	if repStore.Current().Seq != mr.Epoch {
		t.Fatalf("promoted store at %d, ack said %d", repStore.Current().Seq, mr.Epoch)
	}
	// And readiness flips to plain ready.
	if status, m := getReadyz(t, rep.URL); status != http.StatusOK || m["state"] != "ready" {
		t.Fatalf("post-promote readyz = %d %v", status, m)
	}
}

func TestServePromoteWithoutReplicaIs409(t *testing.T) {
	_, _, ts := newStoreServer(t, Config{}, store.Config{})
	resp, err := http.Post(ts.URL+"/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on primary = %d, want 409", resp.StatusCode)
	}
}

func TestServeReplStreamWithoutStoreIs501(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/repl/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("stream without store = %d, want 501", resp.StatusCode)
	}
}

func TestServeProxyWrites(t *testing.T) {
	pri, rep, _, priStore, repStore := newPair(t, Config{}, Config{ProxyWrites: true})

	status, body := postMutation(t, rep.URL+"/insert", MutationRequest{Triples: "Shuttle partOf TheAirline .\n"})
	if status != http.StatusOK {
		t.Fatalf("proxied insert = %d, body %s", status, body)
	}
	var mr MutationResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != priStore.Current().Seq || mr.Applied != 1 {
		t.Fatalf("proxied ack = %+v, primary at %d", mr, priStore.Current().Seq)
	}

	// Read-your-writes through the replica: the ack's epoch is the
	// min-epoch token for the follow-up read.
	req, _ := http.NewRequest(http.MethodPost, rep.URL+"/query",
		bytes.NewReader(mustJSON(t, QueryRequest{Program: testProgram, MinEpoch: mr.Epoch})))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read-your-writes = %d, body %s", resp.StatusCode, rbody)
	}
	if qr := decodeResponse(t, rbody); len(qr.Rows) != 3 {
		t.Fatalf("rows = %v, want the proxied write visible", qr.Rows)
	}
	if repStore.Current().Seq < mr.Epoch {
		t.Fatalf("replica at %d after min-epoch read for %d", repStore.Current().Seq, mr.Epoch)
	}
	// And the proxy header marks where the write landed.
	hreq, _ := http.NewRequest(http.MethodPost, rep.URL+"/insert",
		bytes.NewReader(mustJSON2(t, MutationRequest{Triples: "another partOf TheAirline .\n"})))
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if got := hresp.Header.Get("X-Triq-Primary"); got != pri.URL {
		t.Fatalf("X-Triq-Primary = %q, want %q", got, pri.URL)
	}
}

func TestServeReadOnlyDegrade503(t *testing.T) {
	// A real WAL write failure latches the store read-only: writes shed 503
	// (not 500), reads stay up, and the gauge flips.
	plan := limits.NewPlan(limits.Fault{Point: "wal.append", After: 1, Err: errFakeDisk})
	srv, _, ts := newStoreServer(t, Config{}, store.Config{Dir: t.TempDir(), Faults: plan})

	if status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "ok partOf TheAirline .\n"}); status != http.StatusOK {
		t.Fatalf("first insert = %d, body %s", status, body)
	}
	status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "boom partOf TheAirline .\n"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("insert over dead WAL = %d, body %s, want 503", status, body)
	}
	var f Failure
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.RetryAfterMS <= 0 {
		t.Fatalf("read-only 503 without retry hint: %+v", f)
	}
	// Still read-only for subsequent writes; reads fine.
	if status, _ := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "again partOf x .\n"}); status != http.StatusServiceUnavailable {
		t.Fatalf("second write on read-only store = %d, want 503", status)
	}
	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatalf("read on read-only store = %d", status)
	}
	if g := srv.metricsRegistry().Snapshot().Gauges["store.readonly"]; g != 1 {
		t.Fatalf("store.readonly gauge = %v, want 1", g)
	}
}

// Small helpers local to these tests.

func mustJSON(t *testing.T, v QueryRequest) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustJSON2(t *testing.T, v MutationRequest) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }
