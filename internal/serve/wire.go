package serve

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/limits"
	"repro/internal/obs"
)

// The HTTP wire format. Success bodies are QueryResponse; failure bodies are
// Failure, which embeds limits.WireError — the same JSON rendering of the
// error taxonomy the CLI -json mode emits, so one client-side decoder serves
// both surfaces. Field names are frozen (see internal/limits/wire.go).

// QueryRequest is the body of POST /query and POST /sparql.
type QueryRequest struct {
	// Program is the Datalog^{∃,¬s,⊥} program text (/query).
	Program string `json:"program,omitempty"`
	// Output is the program's output predicate (/query; default "query").
	Output string `json:"output,omitempty"`
	// Query is the SPARQL SELECT text (/sparql).
	Query string `json:"query,omitempty"`
	// Lang picks the dialect check for /query: "triq", "triq-lite"
	// (default), or "unrestricted".
	Lang string `json:"lang,omitempty"`
	// Regime picks the /sparql entailment regime: "plain" (default),
	// "active-domain", "all", or "rdfs".
	Regime string `json:"regime,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline, capped
	// by the server's maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxFacts / MaxRounds cap the chase; zero uses engine defaults. Budget
	// trips degrade to a 200 with Incomplete and Truncation set.
	MaxFacts  int `json:"max_facts,omitempty"`
	MaxRounds int `json:"max_rounds,omitempty"`
	// Explain requests the per-query telemetry report in the response; the
	// handlers also accept it as the query parameter explain=1.
	Explain bool `json:"explain,omitempty"`
	// Exact requests certain-answer evaluation through the proof-theoretic
	// prover instead of the sound chase approximation. Supported by both
	// endpoints for TriQ-Lite 1.0 programs (Corollaries 5.4 / 6.2).
	Exact bool `json:"exact,omitempty"`
	// MinEpoch is the bounded-staleness floor: the evaluation waits (up to
	// the server's StalenessWait) for the local store to reach this epoch,
	// and sheds 503 + Retry-After if it cannot. Clients take the token from
	// a write's MutationResponse.Epoch (or any X-Triq-Epoch header) to get
	// read-your-writes on a replica. The X-Triq-Min-Epoch request header is
	// an equivalent spelling; the larger of the two wins.
	MinEpoch uint64 `json:"min_epoch,omitempty"`
}

// QueryResponse is the 200 body. A truncated evaluation is still a 200 — the
// rows are a sound partial answer and Truncation says what tripped; clients
// that need completeness must check Incomplete.
type QueryResponse struct {
	// Rows holds the answers, one row per answer tuple (space-joined RDF
	// terms for /query, "var=term" bindings for /sparql).
	Rows []string `json:"rows"`
	// Inconsistent is true when the query evaluated to ⊤.
	Inconsistent bool `json:"inconsistent,omitempty"`
	// Exact reports a provably saturated evaluation.
	Exact bool `json:"exact,omitempty"`
	// Incomplete marks a budget-truncated (sound but possibly partial)
	// answer set.
	Incomplete bool `json:"incomplete,omitempty"`
	// Truncation is the limit report, present exactly when Incomplete.
	Truncation *limits.Truncation `json:"truncation,omitempty"`
	// ElapsedUS is the server-side evaluation time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Attempts counts evaluation tries (> 1 when transient faults were
	// retried away).
	Attempts int `json:"attempts,omitempty"`
	// Explain is the per-query telemetry report, present when the request
	// asked for it (body field or explain=1).
	Explain *repro.ExplainReport `json:"explain,omitempty"`
	// TraceID identifies the request's trace; the same id is echoed in the
	// traceparent response header and addresses /debug/trace?id=...
	TraceID string `json:"trace_id,omitempty"`
	// Resources is the request's resource account, present when the request
	// asked for Explain (it also rides inside Explain.Resources).
	Resources *obs.Account `json:"resources,omitempty"`
	// Epoch is the store epoch the evaluation pinned (also in the
	// X-Triq-Epoch response header). Zero on graph-only deployments.
	Epoch uint64 `json:"epoch,omitempty"`
}

// MutationRequest is the body of POST /insert and POST /delete: a batch of
// N-Triples to apply atomically (all-or-nothing, one new epoch).
type MutationRequest struct {
	// Triples is the batch in N-Triples text.
	Triples string `json:"triples"`
}

// MutationResponse is the 200 body of a mutation.
type MutationResponse struct {
	// Epoch is the store epoch after the batch (unchanged for a no-op batch).
	Epoch uint64 `json:"epoch"`
	// Applied counts the triples that actually changed the graph (inserts of
	// present triples and deletes of absent ones are no-ops).
	Applied int `json:"applied"`
	// Batch counts the triples in the request.
	Batch int `json:"batch"`
	// Durable reports whether the acknowledgement implies the batch survives
	// a crash (WAL enabled with the "always" fsync policy).
	Durable bool `json:"durable"`
	// ElapsedUS is the server-side mutation time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// TraceID identifies the mutation's trace (also echoed in the
	// traceparent response header); a sampled trace gains a replica-side
	// repl.apply span once the record ships.
	TraceID string `json:"trace_id,omitempty"`
}

// Failure is the non-200 body: the taxonomy wire error plus an optional
// retry hint (set on 503s).
type Failure struct {
	limits.WireError
	// RetryAfterMS mirrors the Retry-After header in milliseconds.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Primary is the primary's address, set when a replica refuses a write
	// (mirrors the X-Triq-Primary header) so clients can re-aim.
	Primary string `json:"primary,omitempty"`
}

// parseLang maps the wire name to a dialect.
func parseLang(name string) (repro.Language, error) {
	switch name {
	case "", "triq-lite":
		return repro.TriQLite10, nil
	case "triq":
		return repro.TriQ10, nil
	case "unrestricted":
		return repro.Unrestricted, nil
	default:
		return 0, fmt.Errorf("unknown lang %q (want triq, triq-lite, or unrestricted)", name)
	}
}

// parseRegime maps the wire name to an entailment regime.
func parseRegime(name string) (repro.Regime, error) {
	switch name {
	case "", "plain":
		return repro.PlainRegime, nil
	case "active-domain":
		return repro.ActiveDomainRegime, nil
	case "all":
		return repro.AllRegime, nil
	case "rdfs":
		return repro.RDFSRegime, nil
	default:
		return 0, fmt.Errorf("unknown regime %q (want plain, active-domain, all, or rdfs)", name)
	}
}

// timeoutOf resolves the effective evaluation deadline for a request.
func (r *QueryRequest) timeoutOf(def, max time.Duration) time.Duration {
	d := def
	if r.TimeoutMS > 0 {
		d = time.Duration(r.TimeoutMS) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
