// Package serve is the resilient query-serving layer over the repro facade:
// bounded-concurrency admission control with FIFO queueing and load
// shedding, per-request deadlines mapped onto the limits error taxonomy,
// in-server retries for transient faults, a per-endpoint circuit breaker,
// and graceful drain. cmd/triqd is the thin binary around it.
//
// The HTTP status contract (also documented in the README):
//
//	200 — answers, including budget-truncated partial answers (Incomplete
//	      plus a Truncation report in the body)
//	400 — malformed request: bad JSON, unparseable program/query, unknown
//	      lang/regime, dialect validation failure
//	500 — internal error (recovered panic) or a transient fault that
//	      survived every retry
//	503 — load shed: queue full, queue deadline exceeded, circuit open,
//	      draining, still recovering the WAL, or a bounded-staleness wait
//	      that expired; always carries Retry-After
//	504 — the per-request evaluation deadline expired
//
// Mutations (POST /insert, POST /delete) add:
//
//	413 — request body over the configured size cap
//	501 — the server has no store (query-only deployment)
//	503 — the node is an unpromoted replica (the primary's address rides
//	      the X-Triq-Primary header and Failure.Primary; with ProxyWrites
//	      the write is forwarded instead), or the store latched read-only
//	      after a WAL write failure
//
// Replication (internal/repl) rides the same surface: GET /repl/stream is
// the primary's record stream, POST /repl/promote flips a replica into a
// writable primary (409 on a non-replica), every query response carries
// the pinned epoch in the X-Triq-Epoch header and QueryResponse.Epoch, and
// requests demand freshness with min_epoch / X-Triq-Min-Epoch — the
// bounded-staleness token that buys read-your-writes on any replica.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	rtpprof "runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/limits"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/slo"
	"repro/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Admission bounds concurrent evaluations and the wait queue.
	Admission AdmissionConfig
	// Breaker tunes the per-endpoint circuit breakers.
	Breaker BreakerConfig
	// Retry tunes in-server retries of transient faults.
	Retry RetryConfig
	// DefaultTimeout is the per-request evaluation deadline when the request
	// does not set one (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 60s).
	MaxTimeout time.Duration
	// Obs receives server metrics (and is exported by /metrics and
	// /metrics.json). Nil disables.
	Obs *obs.Obs
	// SlowLog configures the slow-query log (/debug/slowlog). A zero
	// Threshold disables it.
	SlowLog SlowLogConfig
	// Progress, when non-nil, is the shared live chase progress gauge every
	// evaluation reports into (served at /debug/progress). New installs one
	// automatically when nil.
	Progress *repro.Progress
	// Parallelism is the chase worker count per evaluation (0 = GOMAXPROCS,
	// 1 = sequential). Answers are identical at every setting; tune it
	// against Admission.MaxConcurrent so slots × workers ≈ cores.
	Parallelism int
	// Seed seeds the retry jitter; 0 uses a fixed seed (fine for a server,
	// handy for tests).
	Seed int64
	// Trace configures request-scoped tracing (traceparent propagation,
	// sampling, the /debug/trace store). Enabled by default; set
	// Trace.Disable to turn it off.
	Trace TraceConfig
	// AutoProfile configures slow-query auto-profiling; a zero Dir disables.
	AutoProfile AutoProfileConfig
	// HealthInterval is the runtime health sampling cadence for the
	// go_goroutines / heap / GC-pause gauges on /metrics (0 = 10s; negative
	// disables). Sampling requires Obs.
	HealthInterval time.Duration
	// MaxBodyBytes caps request bodies on every POST endpoint (default
	// 8 MiB; negative disables). Oversized bodies get 413.
	MaxBodyBytes int64
	// StalenessWait bounds how long a query carrying a min-epoch token waits
	// for the local store to catch up before shedding 503 + Retry-After
	// (default 2s; negative sheds stale reads immediately).
	StalenessWait time.Duration
	// ReplHeartbeat is the idle-stream heartbeat cadence of GET /repl/stream
	// (default repl.DefaultHeartbeat).
	ReplHeartbeat time.Duration
	// ProxyWrites forwards writes arriving at a replica to its primary
	// instead of rejecting them with 503 + the primary's address.
	ProxyWrites bool
	// Mat, when non-nil, serves queries pinned to the materializer's epoch
	// from incrementally maintained materializations (wire the same instance
	// as store.Config.OnCommit so commits keep it caught up). Queries that
	// miss fall back to the from-scratch chase.
	Mat *mat.Materializer
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.StalenessWait == 0 {
		c.StalenessWait = 2 * time.Second
	}
	return c
}

// Server is the query service. Build with New, install a graph with
// SetGraph (readiness flips only then), mount Handler on an http.Server,
// and stop with Drain.
type Server struct {
	cfg      Config
	adm      *admission
	jit      *jitter
	obs      *obs.Obs
	slow     *slowLog
	progress *repro.Progress
	traces   *tracer
	autoprof *autoProfiler
	health   *obs.HealthCollector

	mu    sync.RWMutex
	graph *repro.Graph
	store *store.Store
	rep   *repl.Replica
	watch *slo.Watchdog // SLO burn-rate watchdog behind /debug/alerts

	// proxy forwards replica-received writes to the primary (ProxyWrites).
	proxy *http.Client

	// recovering is set while boot-time WAL replay runs; /readyz reports 503
	// {"state":"recovering"} and mutations shed until it clears.
	recovering atomic.Bool

	draining  chan struct{} // closed by Drain
	drainOnce sync.Once
	hardStop  context.Context // canceled when drain gives up on stragglers
	hardKill  context.CancelFunc

	// In-flight evaluation tracking. A plain WaitGroup would race Add
	// against Drain's Wait (requests that passed the draining check are
	// still arriving); a counter under a mutex with a condvar has no such
	// constraint.
	trackMu   sync.Mutex
	trackCond *sync.Cond
	trackN    int

	breakers map[string]*breaker
}

// New builds a Server; it is not ready until SetGraph is called.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Progress == nil {
		cfg.Progress = &repro.Progress{}
	}
	hardStop, hardKill := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.Admission),
		jit:      newJitter(cfg.Seed + 1),
		obs:      cfg.Obs,
		slow:     newSlowLog(cfg.SlowLog),
		progress: cfg.Progress,
		draining: make(chan struct{}),
		hardStop: hardStop,
		hardKill: hardKill,
		breakers: map[string]*breaker{
			"query":  newBreaker(cfg.Breaker),
			"sparql": newBreaker(cfg.Breaker),
		},
		proxy: &http.Client{Timeout: 30 * time.Second},
	}
	s.trackCond = sync.NewCond(&s.trackMu)
	s.traces = newTracer(cfg.Trace, cfg.Obs, cfg.SlowLog.Threshold)
	s.autoprof = newAutoProfiler(cfg.AutoProfile, cfg.SlowLog.Threshold, cfg.Obs)
	if cfg.Obs.Enabled() && cfg.HealthInterval >= 0 {
		s.health = obs.StartHealth(cfg.Obs.Registry(), cfg.HealthInterval)
	}
	return s
}

// trackBegin / trackEnd bracket one in-flight evaluation.
func (s *Server) trackBegin() {
	s.trackMu.Lock()
	s.trackN++
	s.trackMu.Unlock()
}

func (s *Server) trackEnd() {
	s.trackMu.Lock()
	s.trackN--
	if s.trackN == 0 {
		s.trackCond.Broadcast()
	}
	s.trackMu.Unlock()
}

// SetGraph installs the dataset and marks the server ready. It may be called
// again to swap datasets; in-flight evaluations keep the graph they started
// with (a Graph is immutable).
func (s *Server) SetGraph(g *repro.Graph) {
	s.mu.Lock()
	s.graph = g
	s.mu.Unlock()
}

// SetStore installs the durable store: queries read its live epoch (each
// request pins the epoch current at admission), and POST /insert / /delete
// come alive. Readiness still requires SetRecovering(false).
func (s *Server) SetStore(st *store.Store) {
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
}

// SetRecovering flips the recovery gate: while true, /readyz reports
// {"state":"recovering"} with 503 and mutations shed. triqd sets it before
// WAL replay and clears it once the recovered epoch is live.
func (s *Server) SetRecovering(v bool) { s.recovering.Store(v) }

// SetReplica installs the replication handle: /readyz reports the replica
// states, writes proxy-or-503 to the primary, /repl/promote comes alive,
// and the repl.* gauges appear on /metrics. Install it before starting the
// replica so no state transition is missed.
func (s *Server) SetReplica(rep *repl.Replica) {
	s.mu.Lock()
	s.rep = rep
	s.mu.Unlock()
}

func (s *Server) storeNow() *store.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store
}

func (s *Server) replicaNow() *repl.Replica {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rep
}

// asReplica returns the replica handle iff the node currently refuses
// local writes: a configured replica that has not been promoted.
func (s *Server) asReplica() (*repl.Replica, bool) {
	rep := s.replicaNow()
	return rep, rep != nil && !rep.IsPromoted()
}

func (s *Server) graphNow() *repro.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.store != nil {
		return s.store.Current().Graph
	}
	return s.graph
}

// pinEpoch atomically pins the graph a request evaluates against together
// with the epoch token it advertises. Graph-only deployments (no store)
// have no epochs and report ok=false.
func (s *Server) pinEpoch() (*repro.Graph, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.store != nil {
		cur := s.store.Current()
		return cur.Graph, cur.Seq, true
	}
	return s.graph, 0, false
}

// isDraining reports whether Drain has begun.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain begins graceful shutdown: readiness flips to 503, new queries are
// shed, and Drain blocks until in-flight evaluations finish. If ctx expires
// first, stragglers are canceled (they abort with the taxonomy's canceled
// error) and Drain waits for them to unwind. The caller still owns the
// http.Server and should run its Shutdown alongside.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.draining) })
	done := make(chan struct{})
	go func() {
		s.trackMu.Lock()
		for s.trackN > 0 {
			s.trackCond.Wait()
		}
		s.trackMu.Unlock()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.hardKill()
		<-done // cancellation unwinds evaluations promptly
		err = errors.New("serve: drain deadline expired; stragglers were canceled")
	}
	s.health.Stop()
	s.autoprof.drain()
	return err
}

// Handler mounts the service endpoints:
//
//	POST /query   — Datalog (TriQ) evaluation (?explain=1 for telemetry)
//	POST /sparql  — SPARQL evaluation under a regime (?explain=1 likewise)
//	POST /insert  — apply an N-Triples batch atomically (requires a store)
//	POST /delete  — remove an N-Triples batch atomically (requires a store)
//	GET  /healthz — liveness (200 while the process runs)
//	GET  /readyz  — readiness JSON {"state":...}: 200 "ready" only with data
//	               loaded, not draining, and recovery finished; 503 with
//	               "recovering", "draining", or "empty" otherwise. A
//	               replica reports 200 {"state":"replica","lag_epochs":N,
//	               "primary":addr} once streaming, 503 "catching-up" before
//	GET  /repl/stream   — the primary's WAL record stream (octet-stream;
//	                      ?from=<epoch> resumes, snapshot fallback below the
//	                      retained changelog; requires a store)
//	POST /repl/promote  — promote this replica to a writable primary (409
//	                      when the node is not a replica)
//	GET  /metrics — Prometheus text exposition (counters, gauges, histograms
//	                with cumulative buckets)
//	GET  /metrics.json    — the same registry as structured JSON
//	GET  /debug/slowlog   — retained slow-query entries, oldest first
//	GET  /debug/progress  — live chase progress snapshot
//	GET  /debug/trace     — retained request traces (?id=<hex> for one
//	                        trace as OTLP-shaped JSON with the span tree
//	                        and resource account)
//	GET  /debug/epochs    — the store's epoch timeline: per-stage wall-clock
//	                        stamps (append/sync/mat/commit/checkpoint/ship/
//	                        apply) for every retained epoch
//	GET  /debug/alerts    — the SLO watchdog's alert states (firing/cleared,
//	                        windowed values, pinned traces, profile links)
//	     /debug/pprof/    — runtime profiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, "query")
	})
	mux.HandleFunc("POST /sparql", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, "sparql")
	})
	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, r *http.Request) {
		s.serveMutation(w, r, true)
	})
	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, r *http.Request) {
		s.serveMutation(w, r, false)
	})
	mux.HandleFunc("GET /repl/stream", s.serveReplStream)
	mux.HandleFunc("POST /repl/promote", s.servePromote)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		s.serveReadyz(w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := s.metricsRegistry()
		w.Header().Set("Content-Type", obs.PromContentType)
		reg.WritePrometheus(w)
		obs.WriteBuildInfoProm(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.metricsRegistry().Snapshot())
	})
	mux.HandleFunc("GET /debug/slowlog", func(w http.ResponseWriter, _ *http.Request) {
		entries, total := s.slow.entries()
		if entries == nil {
			entries = []SlowEntry{}
		}
		writeJSON(w, http.StatusOK, struct {
			Enabled     bool        `json:"enabled"`
			ThresholdMS int64       `json:"threshold_ms,omitempty"`
			Total       int64       `json:"total"`
			Entries     []SlowEntry `json:"entries"`
		}{
			Enabled:     s.slow.enabled(),
			ThresholdMS: s.cfg.SlowLog.Threshold.Milliseconds(),
			Total:       total,
			Entries:     entries,
		})
	})
	mux.HandleFunc("GET /debug/progress", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.progress.Snapshot())
	})
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if s.traces == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if id := r.URL.Query().Get("id"); id != "" {
			t := s.traces.store.Get(id)
			if t == nil {
				http.Error(w, "trace not found (evicted or never sampled)", http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, s.traces.store.OTLP(t))
			return
		}
		rows, added, evicted := s.traces.store.List()
		if rows == nil {
			rows = []obs.TraceSummary{}
		}
		writeJSON(w, http.StatusOK, struct {
			Sample  float64            `json:"sample"`
			Added   int64              `json:"added"`
			Evicted int64              `json:"evicted"`
			Traces  []obs.TraceSummary `json:"traces"`
		}{s.traces.cfg.Sample, added, evicted, rows})
	})
	mux.HandleFunc("GET /debug/epochs", func(w http.ResponseWriter, _ *http.Request) {
		st := s.storeNow()
		if st == nil {
			http.Error(w, "no store (query-only deployment)", http.StatusNotFound)
			return
		}
		snap := st.Timeline().Snapshot()
		type row struct {
			Epoch  uint64           `json:"epoch"`
			Stages map[string]int64 `json:"stages"` // stage → unix nanos
		}
		rows := make([]row, 0, len(snap))
		for _, es := range snap {
			rows = append(rows, row{Epoch: es.Epoch, Stages: es.Stages()})
		}
		writeJSON(w, http.StatusOK, struct {
			Epoch  uint64 `json:"epoch"`
			Epochs []row  `json:"epochs"`
		}{st.Current().Seq, rows})
	})
	mux.HandleFunc("GET /debug/alerts", func(w http.ResponseWriter, _ *http.Request) {
		s.serveAlerts(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveReadyz renders the readiness JSON. Replica states ride the same
// endpoint: "catching-up" (503) until the stream is live — reads before
// that would be arbitrarily stale — then "replica" (200) with the lag and
// the primary's address; a promoted ex-replica reports plain "ready".
func (s *Server) serveReadyz(w http.ResponseWriter) {
	type readiness struct {
		State      string  `json:"state"`
		Epoch      uint64  `json:"epoch,omitempty"`
		LagEpochs  uint64  `json:"lag_epochs,omitempty"`
		LagSeconds float64 `json:"lag_seconds,omitempty"`
		Primary    string  `json:"primary,omitempty"`
	}
	var ready readiness
	status := http.StatusOK
	rep, isReplica := s.asReplica()
	switch {
	case s.isDraining():
		ready.State = "draining"
		status = http.StatusServiceUnavailable
	case s.recovering.Load():
		ready.State = "recovering"
		status = http.StatusServiceUnavailable
	case isReplica:
		rst := rep.State()
		ready.Epoch = rst.Epoch
		ready.LagEpochs = rst.LagEpochs
		ready.LagSeconds = rst.LagSeconds
		ready.Primary = rst.Primary
		if rst.State == repl.StateReplica {
			ready.State = "replica"
		} else {
			ready.State = "catching-up"
			status = http.StatusServiceUnavailable
		}
	case s.graphNow() == nil:
		ready.State = "empty"
		status = http.StatusServiceUnavailable
	default:
		ready.State = "ready"
		if st := s.storeNow(); st != nil {
			ready.Epoch = st.Current().Seq
		}
	}
	writeJSON(w, status, ready)
}

// serveReplStream serves the primary's record stream (GET /repl/stream).
// A promoted ex-replica serves it too — that is how a failed-over pair
// re-forms with the roles swapped.
func (s *Server) serveReplStream(w http.ResponseWriter, r *http.Request) {
	st := s.storeNow()
	if st == nil {
		s.fail(w, http.StatusNotImplemented,
			errors.New("serve: no store configured (replication needs one)"), 0)
		return
	}
	if s.isDraining() {
		s.count("serve.shed.draining")
		s.shed(w, ErrDraining)
		return
	}
	s.count("serve.repl_streams")
	repl.StreamHandler(st, s.obs, repl.StreamOptions{Heartbeat: s.cfg.ReplHeartbeat}).ServeHTTP(w, r)
}

// servePromote flips a replica into a writable primary (POST /repl/promote)
// and returns the resulting replica state. Idempotent — promoting an
// already-promoted node is a 200 — but a node that was never a replica is
// a 409.
func (s *Server) servePromote(w http.ResponseWriter, _ *http.Request) {
	rep := s.replicaNow()
	if rep == nil {
		s.fail(w, http.StatusConflict, errors.New("serve: not a replica"), 0)
		return
	}
	rep.Promote("api request")
	s.count("serve.promotions")
	writeJSON(w, http.StatusOK, rep.State())
}

// metricsRegistry returns the registry backing /metrics and /metrics.json
// with the point-in-time server gauges (inflight, queue depth, breaker
// states) refreshed. With observability disabled it builds a gauges-only
// registry per call.
func (s *Server) metricsRegistry() *obs.Registry {
	reg := s.obs.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.SetGauge("serve.inflight", float64(s.adm.inflight()))
	reg.SetGauge("serve.queue_depth", float64(s.adm.depth()))
	reg.SetGauge("serve.queue_depth_hwm", float64(s.adm.queueHWM()))
	if st := s.storeNow(); st != nil {
		cur := st.Current()
		reg.SetGauge("store.epoch", float64(cur.Seq))
		reg.SetGauge("store.triples", float64(cur.Graph.Len()))
		reg.SetGauge("store.readonly", boolGauge(st.ReadOnly()))
	}
	if rep := s.replicaNow(); rep != nil {
		rst := rep.State()
		reg.SetGauge("repl.lag_epochs", float64(rst.LagEpochs))
		reg.SetGauge("repl.lag_seconds", rst.LagSeconds)
		reg.SetGauge("repl.primary_epoch", float64(rst.PrimaryEpoch))
		reg.SetGauge("repl.connected", boolGauge(rst.Connected))
		reg.SetGauge("repl.promoted", boolGauge(rst.State == repl.StatePromoted))
	}
	if m := s.cfg.Mat; m != nil {
		mst := m.Snapshot()
		reg.SetGauge("mat.epoch", float64(mst.Epoch))
		reg.SetGauge("mat.programs", float64(mst.Programs))
		reg.SetGauge("mat.facts", float64(mst.Facts))
	}
	for name, b := range s.breakers {
		reg.SetGauge("serve.breaker_state."+name, breakerStateNum(b.snapshot()))
	}
	return reg
}

// boolGauge is the 0/1 gauge encoding of a flag.
func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// breakerStateNum maps a breaker state name to its gauge encoding:
// closed=0, half-open=1, open=2, disabled=-1.
func breakerStateNum(state string) float64 {
	switch state {
	case "closed":
		return 0
	case "half-open":
		return 1
	case "open":
		return 2
	default:
		return -1
	}
}

// count is a nil-safe metrics increment.
func (s *Server) count(name string) {
	if s.obs.Enabled() {
		s.obs.Count(name, 1)
	}
}

// serveQuery is the shared admission → parse → evaluate → respond flow of
// the two query endpoints.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, endpoint string) {
	s.count("serve.requests")
	start := time.Now()

	// The request trace opens before admission so queue waits and sheds are
	// visible in it; the response traceparent header is set here, before any
	// status is written.
	rt := s.traces.start(w, r, endpoint)

	if s.isDraining() {
		s.count("serve.shed.draining")
		s.shed(w, ErrDraining)
		rt.finish(http.StatusServiceUnavailable, 0, 0, time.Since(start))
		return
	}
	done, err := s.breakers[endpoint].allow()
	if err != nil {
		s.count("serve.shed.breaker")
		s.shed(w, err)
		rt.finish(http.StatusServiceUnavailable, 0, 0, time.Since(start))
		return
	}
	admSpan := rt.span("serve.admission")
	release, err := s.adm.acquire(r.Context())
	queueWait := time.Since(start)
	admSpan.End(obs.F("queue_us", queueWait.Microseconds()), obs.F("admitted", err == nil))
	if err != nil {
		done(false) // an admission shed is not the endpoint's fault
		switch {
		case errors.Is(err, ErrQueueFull):
			s.count("serve.shed.queue_full")
			s.shed(w, err)
		case errors.Is(err, ErrQueueTimeout):
			s.count("serve.shed.queue_timeout")
			s.shed(w, err)
		default: // client went away while queued
			s.count("serve.client_gone")
			s.fail(w, http.StatusServiceUnavailable, limits.NewError(limits.ErrCanceled, limits.Truncation{}), 0)
		}
		rt.finish(http.StatusServiceUnavailable, queueWait, 0, time.Since(start))
		return
	}
	defer release()

	var req QueryRequest
	if err := json.NewDecoder(s.limitBody(w, r)).Decode(&req); err != nil {
		done(false)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.count("serve.body_too_large")
			status = http.StatusRequestEntityTooLarge
		}
		s.fail(w, status, fmt.Errorf("bad request body: %w", err), 0)
		rt.finish(status, queueWait, 0, time.Since(start))
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		req.Explain = true
	}
	g, epoch, hasStore := s.pinEpoch()
	if g == nil {
		done(false)
		s.shed(w, errors.New("serve: no graph loaded"))
		rt.finish(http.StatusServiceUnavailable, queueWait, 0, time.Since(start))
		return
	}

	// Bounded staleness: a min-epoch token makes the read wait (inside its
	// admission slot, up to StalenessWait) for the local store to reach that
	// epoch — read-your-writes across a primary/replica pair — and shed
	// 503 + Retry-After when it cannot. Staleness sheds are not the
	// endpoint's fault, so they do not count against the breaker.
	if min := minEpochOf(&req, r); min > epoch {
		waited := false
		if st := s.storeNow(); st != nil && s.cfg.StalenessWait > 0 {
			wctx, wcancel := context.WithTimeout(r.Context(), s.cfg.StalenessWait)
			w0 := time.Now()
			waited = st.WaitEpoch(wctx, min) == nil
			staleWait := time.Since(w0)
			wcancel()
			// The observed wait rides a header (and a histogram) whether the
			// catch-up succeeded or shed, so load generators can report how
			// much time bounded staleness actually cost.
			w.Header().Set("X-Triq-Staleness-Wait-US", strconv.FormatInt(staleWait.Microseconds(), 10))
			s.obs.Observe("serve.staleness_wait_us", float64(staleWait.Microseconds()))
		}
		if !waited {
			done(false)
			s.count("serve.shed.stale")
			s.shed(w, fmt.Errorf("serve: local epoch %d behind requested min_epoch %d", epoch, min))
			rt.finish(http.StatusServiceUnavailable, queueWait, 0, time.Since(start))
			return
		}
		g, epoch, hasStore = s.pinEpoch()
	}
	if hasStore {
		// The epoch token rides the header so clients (and the loadgen) can
		// chain read-your-writes requests without parsing the body.
		w.Header().Set("X-Triq-Epoch", strconv.FormatUint(epoch, 10))
	}

	// The evaluation context: the client's own context (disconnect cancels
	// the evaluation) bounded by the per-request deadline, with a hard-stop
	// hook so an expiring drain cancels stragglers. The trace and its root
	// span ride the context so every layer's spans join one tree.
	ctx, cancel := context.WithTimeout(r.Context(), req.timeoutOf(s.cfg.DefaultTimeout, s.cfg.MaxTimeout))
	defer cancel()
	stop := context.AfterFunc(s.hardStop, cancel)
	defer stop()
	ctx = rt.bind(ctx)

	s.trackBegin()
	defer s.trackEnd()

	execStart := time.Now()
	var resp *QueryResponse
	var report *repro.ExplainReport
	var evalErr error
	// pprof labels tag the evaluation's CPU samples (and every goroutine it
	// spawns) with the trace id, so auto-captured profiles slice by request.
	rtpprof.Do(ctx, rtpprof.Labels("trace_id", rt.traceID(), "endpoint", endpoint), func(ctx context.Context) {
		resp, report, evalErr = s.evaluate(ctx, g, epoch, hasStore, endpoint, &req)
	})
	exec := time.Since(execStart)
	if evalErr != nil {
		status := statusOf(evalErr)
		// Only server faults count against the breaker.
		done(status == http.StatusInternalServerError || status == http.StatusGatewayTimeout)
		if status == http.StatusGatewayTimeout {
			s.count("serve.timeouts")
		}
		if status == http.StatusInternalServerError {
			s.count("serve.internal_errors")
		}
		if errors.Is(evalErr, limits.ErrCanceled) {
			s.count("serve.canceled")
		}
		s.fail(w, status, evalErr, 0)
		rt.finish(status, queueWait, exec, time.Since(start))
		s.recordSlow(endpoint, &req, nil, report, status, evalErr, queueWait, exec, rt)
		return
	}
	done(false)
	if resp.Attempts > 1 {
		s.obs.Count("serve.retries", int64(resp.Attempts-1))
	}
	if resp.Incomplete {
		s.count("serve.truncated")
	}
	s.count("serve.ok")
	if hasStore {
		resp.Epoch = epoch
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	if s.obs.Enabled() {
		s.obs.Observe("serve.latency_us", float64(resp.ElapsedUS))
		s.obs.Observe("serve.queue_wait_us", float64(queueWait.Microseconds()))
	}
	// Close the trace before the body is rendered so the response and the
	// explain report carry the final resource account.
	rt.finish(http.StatusOK, queueWait, exec, time.Since(start))
	resp.TraceID = rt.traceID()
	if rt != nil {
		acct := rt.account()
		if report != nil {
			report.Resources = &acct
		}
		if req.Explain {
			resp.Resources = &acct
		}
	}
	if req.Explain {
		resp.Explain = report
	}
	writeJSON(w, http.StatusOK, resp)
	s.recordSlow(endpoint, &req, resp, report, http.StatusOK, nil, queueWait, exec, rt)
}

// limitBody caps the request body at Config.MaxBodyBytes. Reads past the cap
// surface as *http.MaxBytesError (mapped to 413); a negative cap disables.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) io.ReadCloser {
	if s.cfg.MaxBodyBytes < 0 {
		return r.Body
	}
	return http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
}

// minEpochOf resolves a request's bounded-staleness floor: the body's
// min_epoch or the X-Triq-Min-Epoch header, whichever is larger.
func minEpochOf(req *QueryRequest, r *http.Request) uint64 {
	min := req.MinEpoch
	if h := r.Header.Get("X-Triq-Min-Epoch"); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil && v > min {
			min = v
		}
	}
	return min
}

// serveMutation is the POST /insert and /delete flow: gate → decode → parse
// N-Triples → apply one atomic batch through the store → acknowledge with
// the new epoch. Batches serialize on the store's writer lock; queries are
// never blocked (they read the previous epoch until the swap).
func (s *Server) serveMutation(w http.ResponseWriter, r *http.Request, insert bool) {
	s.count("serve.requests")
	start := time.Now()
	endpoint := "delete"
	if insert {
		endpoint = "insert"
	}

	// Mutations are traced like queries: the trace opens before any shed so
	// even refused writes echo a traceparent, and the store hands the trace
	// context to the replication stream so a replica's apply span joins the
	// same distributed trace.
	rt := s.traces.start(w, r, endpoint)

	if s.isDraining() {
		s.count("serve.shed.draining")
		s.shed(w, ErrDraining)
		rt.finish(http.StatusServiceUnavailable, 0, 0, time.Since(start))
		return
	}
	if s.recovering.Load() {
		s.count("serve.shed.recovering")
		s.shed(w, errors.New("serve: recovering"))
		rt.finish(http.StatusServiceUnavailable, 0, 0, time.Since(start))
		return
	}
	// A replica refuses local writes: 503 with the primary's address (in
	// the X-Triq-Primary header and Failure.Primary) so clients re-aim, or
	// a transparent forward to the primary when ProxyWrites is on. A
	// promoted ex-replica falls through to the normal write path.
	if rep, isReplica := s.asReplica(); isReplica {
		primary := rep.State().Primary
		if s.cfg.ProxyWrites {
			status := s.proxyMutation(w, r, primary)
			rt.finish(status, 0, 0, time.Since(start))
			return
		}
		s.count("serve.shed")
		s.count("serve.shed.replica")
		w.Header().Set("X-Triq-Primary", primary)
		retryAfter := time.Second
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
		writeJSON(w, http.StatusServiceUnavailable, Failure{
			WireError:    limits.ToWire(fmt.Errorf("serve: read-only replica; write to the primary at %s", primary)),
			RetryAfterMS: retryAfter.Milliseconds(),
			Primary:      primary,
		})
		rt.finish(http.StatusServiceUnavailable, 0, 0, time.Since(start))
		return
	}
	st := s.storeNow()
	if st == nil {
		s.fail(w, http.StatusNotImplemented,
			errors.New("serve: no store configured (query-only deployment; start triqd with a store to enable mutations)"), 0)
		rt.finish(http.StatusNotImplemented, 0, 0, time.Since(start))
		return
	}

	var req MutationRequest
	if err := json.NewDecoder(s.limitBody(w, r)).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.count("serve.body_too_large")
			status = http.StatusRequestEntityTooLarge
		}
		s.fail(w, status, fmt.Errorf("bad request body: %w", err), 0)
		rt.finish(status, 0, 0, time.Since(start))
		return
	}
	batch, err := rdf.ParseNTriplesString(req.Triples)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad triples: %w", err), 0)
		rt.finish(http.StatusBadRequest, 0, 0, time.Since(start))
		return
	}
	if batch.Len() == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"), 0)
		rt.finish(http.StatusBadRequest, 0, 0, time.Since(start))
		return
	}

	s.trackBegin() // drain waits for in-flight mutations too
	defer s.trackEnd()

	triples := batch.SortedTriples()
	applySpan := rt.span("serve.apply", obs.F("batch", batch.Len()))
	var epoch store.Epoch
	var applied int
	if insert {
		epoch, applied, err = st.InsertTraced(triples, rt.traceparent())
	} else {
		epoch, applied, err = st.DeleteTraced(triples, rt.traceparent())
	}
	exec := time.Since(start)
	applySpan.End(obs.F("applied", applied), obs.F("epoch", int64(epoch.Seq)), obs.F("ok", err == nil))
	if err != nil {
		var status int
		if errors.Is(err, limits.ErrStorage) {
			// The WAL failed underneath us and the store latched read-only.
			// Reads stay up; writes shed with a retry hint while an operator
			// (or a failover) restores the write path.
			s.count("serve.shed.readonly")
			status = http.StatusServiceUnavailable
		} else {
			s.count("serve.internal_errors")
			status = http.StatusInternalServerError
		}
		s.fail(w, status, err, 0)
		rt.finish(status, 0, exec, time.Since(start))
		s.recordSlowMutation(endpoint, &req, batch.Len(), 0, status, err, exec, rt)
		return
	}
	s.count("serve." + endpoint + "s")
	if s.obs.Enabled() {
		s.obs.Count("serve.mutation_triples", int64(applied))
		s.obs.Observe("serve.mutation_latency_us", float64(time.Since(start).Microseconds()))
	}
	rt.finish(http.StatusOK, 0, exec, time.Since(start))
	resp := MutationResponse{
		Epoch:     epoch.Seq,
		Applied:   applied,
		Batch:     batch.Len(),
		Durable:   st.AckDurable(),
		ElapsedUS: time.Since(start).Microseconds(),
		TraceID:   rt.traceID(),
	}
	writeJSON(w, http.StatusOK, resp)
	s.recordSlowMutation(endpoint, &req, batch.Len(), epoch.Seq, http.StatusOK, nil, exec, rt)
}

// recordSlowMutation feeds the slow log from the write path. Beyond the
// shared fields it records the committed epoch, the batch size, and the
// WAL-sync wait the batch saw (read back from the store's epoch timeline),
// so a slow insert is attributable to fsync stalls vs. apply cost.
func (s *Server) recordSlowMutation(endpoint string, req *MutationRequest, batch int, epoch uint64, status int, evalErr error, exec time.Duration, rt *reqTrace) {
	cpuFile, heapFile := s.autoprof.maybeCapture(exec, rt.traceID())
	if !s.slow.enabled() {
		return
	}
	q, cut := truncateQuery(req.Triples)
	e := SlowEntry{
		Time:           time.Now(),
		Endpoint:       endpoint,
		Query:          q,
		QueryTruncated: cut,
		Status:         status,
		ExecUS:         exec.Microseconds(),
		TotalUS:        exec.Microseconds(),
		Epoch:          epoch,
		Batch:          batch,
		TraceID:        rt.traceID(),
		ProfileCPU:     cpuFile,
		ProfileHeap:    heapFile,
	}
	if st := s.storeNow(); st != nil && epoch != 0 {
		if stamps, ok := st.Timeline().Lookup(epoch); ok {
			m := stamps.Stages()
			if a, b := m["append"], m["sync"]; a != 0 && b > a {
				e.WALSyncWaitUS = (b - a) / 1000
			}
		}
	}
	if rt != nil {
		acct := rt.account()
		e.Resources = &acct
	}
	if evalErr != nil {
		e.Error = evalErr.Error()
	}
	s.maybeCountSlow(e)
}

// proxyMutation forwards a write that arrived at a replica to the primary
// and relays the response verbatim, tagged with X-Triq-Primary so the
// client can see where the write actually landed. It returns the status it
// wrote, for the caller's trace.
func (s *Server) proxyMutation(w http.ResponseWriter, r *http.Request, primary string) int {
	s.count("serve.proxied_writes")
	body, err := io.ReadAll(s.limitBody(w, r))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.count("serve.body_too_large")
			status = http.StatusRequestEntityTooLarge
		}
		s.fail(w, status, fmt.Errorf("bad request body: %w", err), 0)
		return status
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, primary+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		s.count("serve.internal_errors")
		s.fail(w, http.StatusInternalServerError, err, 0)
		return http.StatusInternalServerError
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.proxy.Do(req)
	if err != nil {
		s.count("serve.proxy_errors")
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("serve: primary unreachable: %w", err), 0)
		return http.StatusServiceUnavailable
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Triq-Primary", primary)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return resp.StatusCode
}

// recordSlow feeds the slow-query log and the auto-profiler; it runs exactly
// once per evaluated request (success or failure) and is a no-op when the
// log is disabled or the request finished under the threshold.
func (s *Server) recordSlow(endpoint string, req *QueryRequest, resp *QueryResponse, report *repro.ExplainReport, status int, evalErr error, queueWait, exec time.Duration, rt *reqTrace) {
	total := queueWait + exec
	cpuFile, heapFile := s.autoprof.maybeCapture(total, rt.traceID())
	if !s.slow.enabled() {
		return
	}
	text := req.Program
	if endpoint == "sparql" {
		text = req.Query
	}
	q, cut := truncateQuery(text)
	e := SlowEntry{
		Time:           time.Now(),
		Endpoint:       endpoint,
		Query:          q,
		QueryTruncated: cut,
		Status:         status,
		QueueWaitUS:    queueWait.Microseconds(),
		ExecUS:         exec.Microseconds(),
		TotalUS:        total.Microseconds(),
		Explain:        report,
		TraceID:        rt.traceID(),
		ProfileCPU:     cpuFile,
		ProfileHeap:    heapFile,
	}
	if rt != nil {
		acct := rt.account()
		e.Resources = &acct
		if report != nil && report.Resources == nil {
			report.Resources = &acct
		}
	}
	if resp != nil {
		e.Incomplete = resp.Incomplete
		e.Truncation = resp.Truncation
	}
	if evalErr != nil {
		e.Error = evalErr.Error()
	}
	s.maybeCountSlow(e)
}

// maybeCountSlow bumps the counter iff the entry was actually recorded.
func (s *Server) maybeCountSlow(e SlowEntry) {
	if time.Duration(e.TotalUS)*time.Microsecond >= s.cfg.SlowLog.Threshold {
		s.count("serve.slow_queries")
	}
	s.slow.maybeRecord(e)
}

// evaluate parses the request payload and runs the evaluation with retries.
// Parse and validation failures come back wrapped in errBadRequest. When the
// request asked for EXPLAIN or the slow-query log is armed, the evaluation
// runs through the explain entry points and the report comes back alongside
// the response (the per-query observations still fold into the server
// registry, so /metrics sees explained runs too).
func (s *Server) evaluate(ctx context.Context, g *repro.Graph, epoch uint64, hasStore bool, endpoint string, req *QueryRequest) (*QueryResponse, *repro.ExplainReport, error) {
	opts := repro.Options{}
	opts.Chase.MaxFacts = req.MaxFacts
	opts.Chase.MaxRounds = req.MaxRounds
	opts.Chase.Parallelism = s.cfg.Parallelism
	opts.Chase.Obs = s.obs
	opts.Chase.Progress = s.progress
	if s.cfg.Mat != nil && hasStore {
		// The request is pinned to this epoch: a materialization may answer
		// only if it is at exactly the same one. The exact (prover) path
		// ignores these fields.
		opts.Mat = s.cfg.Mat
		opts.MatEpoch = epoch
	}
	wantReport := req.Explain || s.slow.enabled()

	var report *repro.ExplainReport
	var eval func() (*QueryResponse, error)
	switch endpoint {
	case "query":
		lang, err := parseLang(req.Lang)
		if err != nil {
			return nil, nil, badRequest(err)
		}
		output := req.Output
		if output == "" {
			output = "query"
		}
		q, err := repro.ParseQuery(req.Program, output)
		if err != nil {
			return nil, nil, badRequest(err)
		}
		if err := repro.Validate(q, lang); err != nil {
			return nil, nil, badRequest(err)
		}
		eval = func() (*QueryResponse, error) {
			var res *repro.Results
			var err error
			switch {
			case req.Exact && wantReport:
				res, report, err = repro.ExplainExactCtx(ctx, g, q, opts)
			case req.Exact:
				res, err = repro.AskExactCtx(ctx, g, q, opts)
			case wantReport:
				res, report, err = repro.ExplainCtx(ctx, g, q, lang, opts)
			default:
				res, err = repro.AskCtx(ctx, g, q, lang, opts)
			}
			if err != nil {
				return nil, err
			}
			return &QueryResponse{
				Rows:         res.Rows(),
				Inconsistent: res.Inconsistent,
				Exact:        res.Exact,
				Incomplete:   res.Incomplete,
				Truncation:   res.Truncation,
			}, nil
		}
	default:
		regime, err := parseRegime(req.Regime)
		if err != nil {
			return nil, nil, badRequest(err)
		}
		sq, err := repro.ParseSPARQL(req.Query)
		if err != nil {
			return nil, nil, badRequest(err)
		}
		eval = func() (*QueryResponse, error) {
			var ms *repro.MappingSet
			var exact bool
			var err error
			switch {
			case req.Exact && wantReport:
				ms, report, err = repro.ExplainSPARQLExactCtx(ctx, sq, g, regime, opts)
				// A visit-budget trip degrades to a certified partial set.
				exact = err == nil && !ms.Incomplete
			case req.Exact:
				ms, _, err = repro.AskSPARQLExactCtx(ctx, sq, g, regime, opts)
				exact = err == nil && !ms.Incomplete
			case wantReport:
				ms, report, err = repro.ExplainSPARQLCtx(ctx, sq, g, regime, opts)
				if err == nil {
					exact = report.Exact
				}
			default:
				ms, exact, err = repro.AskSPARQLCtx(ctx, sq, g, regime, opts)
			}
			if err != nil {
				return nil, err
			}
			rows := make([]string, 0, ms.Len())
			for _, m := range ms.Mappings() {
				rows = append(rows, m.String())
			}
			return &QueryResponse{
				Rows:       rows,
				Exact:      exact,
				Incomplete: ms.Incomplete,
				Truncation: ms.Truncation,
			}, nil
		}
	}

	var resp *QueryResponse
	attempts, err := withRetry(ctx, s.cfg.Retry, s.jit, func() error {
		var evalErr error
		resp, evalErr = eval()
		return evalErr
	})
	if err != nil {
		return nil, report, err
	}
	resp.Attempts = attempts
	return resp, report, nil
}

// errBadRequest marks parse/validation failures for the 400 mapping.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

func badRequest(err error) error { return errBadRequest{err: err} }

// statusOf maps an evaluation error to the HTTP contract.
func statusOf(err error) int {
	var br errBadRequest
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, limits.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, limits.ErrCanceled):
		// Client went away or drain canceled us; the body likely goes
		// nowhere, but a retryable 503 is the honest answer either way.
		return http.StatusServiceUnavailable
	default:
		// Internal errors, retries-exhausted injected faults, and any budget
		// error that somehow escaped graceful degradation.
		return http.StatusInternalServerError
	}
}

// shed writes the 503 + Retry-After response for load-shedding rejections.
// Every shed also bumps the aggregate serve.shed counter — the numerator of
// the shed-rate SLO — alongside the per-cause serve.shed.* counters.
func (s *Server) shed(w http.ResponseWriter, err error) {
	s.count("serve.shed")
	retryAfter := time.Second
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
	writeJSON(w, http.StatusServiceUnavailable, Failure{
		WireError:    limits.ToWire(err),
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// fail writes a non-200 taxonomy error body. Server faults (500/504) also
// bump the aggregate serve.errors counter — the numerator of the error-rate
// SLO; client errors and sheds do not burn that budget.
func (s *Server) fail(w http.ResponseWriter, status int, err error, retryAfter time.Duration) {
	if status == http.StatusInternalServerError || status == http.StatusGatewayTimeout {
		s.count("serve.errors")
	}
	f := Failure{WireError: limits.ToWire(err)}
	if status == http.StatusServiceUnavailable {
		if retryAfter <= 0 {
			retryAfter = time.Second
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
		f.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, status, f)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
