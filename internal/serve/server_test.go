package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/limits"
	"repro/internal/obs"
)

// These tests pin the full status-code contract against a live handler, with
// global fault plans standing in for slow, flaky, and crashing evaluations.
// They share the process-global fault plan, so none of them run in parallel.

const testData = `
	TheAirline partOf transportService .
	A311 partOf TheAirline .
	Oxford A311 London .
`

const testProgram = `
	triple(?X, partOf, transportService) -> ts(?X).
	triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
	ts(?X) -> query(?X).
`

// chainGraph builds a next-chain of n nodes; with the transitive-closure
// program the chase runs ~n rounds, so a per-round fault hook can slow the
// evaluation deterministically.
func chainGraph(t *testing.T, n int) *repro.Graph {
	t.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString("v")
		b.WriteString(string(rune('0' + i/10)))
		b.WriteString(string(rune('0' + i%10)))
		b.WriteString(" next v")
		b.WriteString(string(rune('0' + (i+1)/10)))
		b.WriteString(string(rune('0' + (i+1)%10)))
		b.WriteString(" .\n")
	}
	g, err := repro.ParseGraph(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const chainProgram = `
	triple(?X, next, ?Y) -> conn(?X, ?Y).
	conn(?X, ?Z), triple(?Z, next, ?Y) -> conn(?X, ?Y).
	conn(?X, ?Y) -> query(?X, ?Y).
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Obs) {
	t.Helper()
	o := obs.New()
	cfg.Obs = o
	if cfg.Breaker.Window == 0 {
		cfg.Breaker.Disabled = true // most tests don't want breaker coupling
	}
	s := New(cfg)
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, o
}

func postJSON(t *testing.T, url string, req QueryRequest) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func decodeResponse(t *testing.T, body []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response body %q: %v", body, err)
	}
	return qr
}

func decodeFailure(t *testing.T, body []byte) Failure {
	t.Helper()
	var f Failure
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("bad failure body %q: %v", body, err)
	}
	return f
}

func TestServeQueryOK(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	qr := decodeResponse(t, body)
	if len(qr.Rows) != 2 || qr.Incomplete {
		t.Fatalf("got %+v, want 2 complete rows", qr)
	}
	if qr.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", qr.Attempts)
	}
}

func TestServeSPARQLOK(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/sparql", QueryRequest{
		Query: `SELECT ?x ?y WHERE { ?x partOf ?y }`,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if qr := decodeResponse(t, body); len(qr.Rows) != 2 {
		t.Fatalf("got %+v, want 2 mappings", qr)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []QueryRequest{
		{Program: "this is not datalog"},
		{Program: testProgram, Lang: "prolog"},
	}
	for _, req := range cases {
		status, body := postJSON(t, ts.URL+"/query", req)
		if status != http.StatusBadRequest {
			t.Errorf("%+v: status = %d (body %s), want 400", req, status, body)
		}
	}
	if status, _ := postJSON(t, ts.URL+"/sparql", QueryRequest{Query: "SELECT"}); status != http.StatusBadRequest {
		t.Errorf("bad sparql: status = %d, want 400", status)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON: status = %d, want 400", resp.StatusCode)
	}
}

// TestServeTruncatedIs200 pins the graceful-degradation contract: a budget
// trip is a 200 with Incomplete and a Truncation report, not an error.
func TestServeTruncatedIs200(t *testing.T) {
	s, ts, o := newTestServer(t, Config{})
	s.SetGraph(chainGraph(t, 30))
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{
		Program: chainProgram, MaxFacts: 100,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d (body %s), want 200 with partial result", status, body)
	}
	qr := decodeResponse(t, body)
	if !qr.Incomplete || qr.Truncation == nil {
		t.Fatalf("want Incomplete with Truncation, got %+v", qr)
	}
	if qr.Truncation.Limit != limits.LimitFacts {
		t.Fatalf("truncation.limit = %q, want %q", qr.Truncation.Limit, limits.LimitFacts)
	}
	if len(qr.Rows) == 0 {
		t.Fatal("partial result lost its rows")
	}
	if o.Registry().Counter("serve.truncated") == 0 {
		t.Fatal("serve.truncated counter not bumped")
	}
}

func TestServeDeadlineIs504(t *testing.T) {
	s, ts, o := newTestServer(t, Config{})
	s.SetGraph(chainGraph(t, 50))
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{
		Point: "chase.round", Action: limits.ActHook,
		Hook: func() { time.Sleep(10 * time.Millisecond) },
	}))
	defer restore()
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{
		Program: chainProgram, TimeoutMS: 40,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (body %s), want 504", status, body)
	}
	f := decodeFailure(t, body)
	if f.Limit != limits.LimitDeadline {
		t.Fatalf("failure.limit = %q, want %q", f.Limit, limits.LimitDeadline)
	}
	if o.Registry().Counter("serve.timeouts") != 1 {
		t.Fatal("serve.timeouts counter not bumped")
	}
}

func TestServePanicIs500(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{
		Point: "chase.round", Action: limits.ActPanic, Times: 1,
	}))
	defer restore()
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d (body %s), want 500", status, body)
	}
	if f := decodeFailure(t, body); f.Limit != limits.LimitInternal {
		t.Fatalf("failure.limit = %q, want %q", f.Limit, limits.LimitInternal)
	}
	if o.Registry().Counter("serve.internal_errors") != 1 {
		t.Fatal("serve.internal_errors counter not bumped")
	}
	// The panic was isolated to its request: the server still works.
	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatalf("server did not survive the panic: status = %d", status)
	}
}

// TestServeRetryAbsorbsTransientFault pins the retry path: a fault that
// fires once and recovers yields a 200 on the second attempt.
func TestServeRetryAbsorbsTransientFault(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{
		Point: "chase.rule", Times: 1, // ActError, fail once then recover
	}))
	defer restore()
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("status = %d (body %s), want 200 after retry", status, body)
	}
	qr := decodeResponse(t, body)
	if qr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", qr.Attempts)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("rows = %v, want the full answer", qr.Rows)
	}
	if o.Registry().Counter("serve.retries") != 1 {
		t.Fatal("serve.retries counter not bumped")
	}
}

// TestServeRetriesExhaustedIs500 pins the other side: a fault that never
// clears exhausts the retry budget and surfaces as a 500 with the injected
// taxonomy name.
func TestServeRetriesExhaustedIs500(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Retry: RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond}})
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{Point: "chase.rule"}))
	defer restore()
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d (body %s), want 500", status, body)
	}
	if f := decodeFailure(t, body); f.Limit != limits.LimitInjected {
		t.Fatalf("failure.limit = %q, want %q", f.Limit, limits.LimitInjected)
	}
}

// blockEvaluations installs a hook that parks every chase round until the
// returned release is called (or a safety timeout passes). It lets tests
// hold a request in-flight deterministically.
func blockEvaluations(t *testing.T) (started <-chan struct{}, release func()) {
	t.Helper()
	start := make(chan struct{})
	var startOnce sync.Once
	gate := make(chan struct{})
	var gateOnce sync.Once
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{
		Point: "chase.round", Action: limits.ActHook,
		Hook: func() {
			startOnce.Do(func() { close(start) })
			select {
			case <-gate:
			case <-time.After(5 * time.Second):
			}
		},
	}))
	release = func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(release)
	t.Cleanup(restore)
	return start, release
}

func TestServeQueueFullSheds503(t *testing.T) {
	_, ts, o := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxConcurrent: 1, MaxQueue: -1, QueueTimeout: time.Second},
	})
	started, release := blockEvaluations(t)

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	}()
	<-started

	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (body %s), want 503", status, body)
	}
	f := decodeFailure(t, body)
	if f.RetryAfterMS <= 0 {
		t.Fatalf("503 without retry_after_ms: %+v", f)
	}
	if o.Registry().Counter("serve.shed.queue_full") != 1 {
		t.Fatal("serve.shed.queue_full counter not bumped")
	}
	release()
	<-blocked
}

func TestServeQueueTimeoutSheds503(t *testing.T) {
	_, ts, o := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 30 * time.Millisecond},
	})
	started, release := blockEvaluations(t)

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	}()
	<-started

	status, resp := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (body %s), want 503", status, resp)
	}
	if o.Registry().Counter("serve.shed.queue_timeout") != 1 {
		t.Fatal("serve.shed.queue_timeout counter not bumped")
	}
	release()
	<-blocked
}

// TestServeRetryAfterHeader pins the Retry-After header on shed responses.
func TestServeRetryAfterHeader(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	go s.Drain(context.Background())
	for !s.isDraining() {
		time.Sleep(time.Millisecond)
	}
	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
}

// TestServeMidDrainRejection holds a request in flight, starts a drain, and
// checks that (a) new requests shed immediately, (b) readiness flips, and
// (c) the drain completes once the in-flight request finishes.
func TestServeMidDrainRejection(t *testing.T) {
	s, ts, o := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxConcurrent: 2, MaxQueue: 4, QueueTimeout: time.Second},
	})
	started, release := blockEvaluations(t)

	inFlightStatus := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
		inFlightStatus <- status
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.isDraining() {
		time.Sleep(time.Millisecond)
	}

	// New work is shed while draining.
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain status = %d (body %s), want 503", status, body)
	}
	if o.Registry().Counter("serve.shed.draining") != 1 {
		t.Fatal("serve.shed.draining counter not bumped")
	}
	// Readiness flips so the balancer stops routing here.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}

	// The in-flight request is NOT canceled by a patient drain: it finishes
	// normally, then the drain completes.
	select {
	case err := <-drained:
		t.Fatalf("drain finished with a request still in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	if status := <-inFlightStatus; status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status = %d, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServeDrainDeadlineCancelsStragglers pins the hard edge of shutdown: a
// drain whose context expires cancels in-flight evaluations instead of
// waiting forever, and still unwinds cleanly.
func TestServeDrainDeadlineCancelsStragglers(t *testing.T) {
	s, ts, o := newTestServer(t, Config{})
	s.SetGraph(chainGraph(t, 50))
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{
		Point: "chase.round", Action: limits.ActHook,
		Hook: func() { time.Sleep(5 * time.Millisecond) },
	}))
	defer restore()

	statusCh := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: chainProgram})
		statusCh <- status
	}()
	// Let the evaluation get going.
	for i := 0; o.Registry().Counter("serve.requests") == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("drain should report that it canceled stragglers")
	}
	if took := time.Since(t0); took > 2*time.Second {
		t.Fatalf("drain took %s; cancellation did not unwind the straggler", took)
	}
	// The straggler got a canceled-taxonomy response.
	if status := <-statusCh; status != http.StatusServiceUnavailable {
		t.Fatalf("straggler status = %d, want 503 (canceled)", status)
	}
	if o.Registry().Counter("serve.canceled") != 1 {
		t.Fatal("serve.canceled counter not bumped")
	}
}

// TestServeClientDisconnectCancelsEvaluation pins request-context
// propagation: when the client goes away, the evaluation is canceled rather
// than running to completion.
func TestServeClientDisconnectCancelsEvaluation(t *testing.T) {
	s, ts, o := newTestServer(t, Config{})
	s.SetGraph(chainGraph(t, 50))
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{
		Point: "chase.round", Action: limits.ActHook,
		Hook: func() { time.Sleep(5 * time.Millisecond) },
	}))
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(QueryRequest{Program: chainProgram})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	for i := 0; o.Registry().Counter("serve.requests") == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client cancel should abort the HTTP request")
	}
	// The server-side evaluation must unwind as canceled, promptly.
	deadline := time.Now().Add(2 * time.Second)
	for o.Registry().Counter("serve.canceled") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("evaluation was not canceled after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.adm.inflight(); got != 0 {
		t.Fatalf("inflight after disconnect = %d, want 0", got)
	}
}

// TestServeBreakerOpensAndRecovers drives the breaker through its whole
// cycle over HTTP: persistent 500s open it, the open breaker sheds with
// Retry-After, and after the open interval a healthy probe closes it.
func TestServeBreakerOpensAndRecovers(t *testing.T) {
	o := obs.New()
	s := New(Config{
		Obs:     o,
		Breaker: BreakerConfig{Window: 8, MinSamples: 2, FailureRatio: 0.5, OpenFor: time.Hour, HalfOpenProbes: 1},
		Retry:   RetryConfig{MaxAttempts: 1},
	})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.breakers["query"].now = clk.now
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{Point: "chase.rule"}))
	for i := 0; i < 2; i++ {
		if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d, want 500", i, status)
		}
	}
	// Breaker is open now: requests shed without evaluating.
	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status with open breaker = %d (body %s), want 503", status, body)
	}
	if o.Registry().Counter("serve.shed.breaker") != 1 {
		t.Fatal("serve.shed.breaker counter not bumped")
	}
	restore() // the fault clears

	// Still open before the interval elapses…
	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusServiceUnavailable {
		t.Fatalf("breaker closed too early: status = %d", status)
	}
	// …and after it, a healthy probe closes the circuit.
	clk.advance(2 * time.Hour)
	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatalf("probe after open interval: status = %d, want 200", status)
	}
	if got := s.breakers["query"].snapshot(); got != "closed" {
		t.Fatalf("breaker state = %s, want closed", got)
	}
	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatalf("closed breaker must pass traffic: status = %d", status)
	}
}

func TestServeHealthAndMetricsEndpoints(t *testing.T) {
	o := obs.New()
	s := New(Config{Obs: o, Breaker: BreakerConfig{Disabled: true}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 even before a graph loads", status)
	}
	// Not ready before a graph is installed.
	if status, _ := get("/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz without graph = %d, want 503", status)
	}
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Fatalf("readyz with graph = %d, want 200", status)
	}
	// A query populates the registry; /metrics must expose it.
	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatal("query failed")
	}
	status, metrics := get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics = %d, want 200", status)
	}
	for _, want := range []string{"serve_breaker_state_query", "serve_inflight", "serve_queue_depth", "serve_latency_us_bucket{le="} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if status, _ := get("/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("pprof = %d, want 200", status)
	}
}

// TestRetryBackoffRespectsContext checks the retry helper sleeps with
// jittered backoff but gives up as soon as the context dies.
func TestRetryBackoffRespectsContext(t *testing.T) {
	j := newJitter(1)
	calls := 0
	attempts, err := withRetry(context.Background(), RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond}, j, func() error {
		calls++
		if calls < 3 {
			return limits.NewError(limits.ErrInjected, limits.Truncation{})
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3 attempts and success", attempts, err)
	}

	// Non-retryable errors return immediately.
	calls = 0
	_, err = withRetry(context.Background(), RetryConfig{MaxAttempts: 5}, j, func() error {
		calls++
		return limits.NewError(limits.ErrDeadline, limits.Truncation{})
	})
	if calls != 1 || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("calls=%d err=%v, want exactly one call with the deadline error", calls, err)
	}

	// A canceled context aborts the backoff sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = withRetry(ctx, RetryConfig{MaxAttempts: 5, BaseDelay: time.Hour, MaxDelay: time.Hour}, j, func() error {
		return limits.NewError(limits.ErrInjected, limits.Truncation{})
	})
	if err == nil {
		t.Fatal("want a context error")
	}
}
