package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission control bounds how much work the server accepts at once. A fixed
// number of evaluation slots runs concurrently; past that, requests wait in a
// bounded FIFO queue with a queue deadline. Anything beyond the queue — or
// anything that would wait longer than the deadline — is shed immediately
// with a retryable error, which the HTTP layer maps to 503 + Retry-After.
// Shedding early under overload keeps latency bounded for the requests that
// are admitted instead of letting every request degrade together.

// Shed classification errors. All of them mean "not now, try again".
var (
	// ErrQueueFull is returned when the wait queue is at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrQueueTimeout is returned when a request waited its full queue
	// deadline without getting a slot.
	ErrQueueTimeout = errors.New("serve: queue deadline exceeded")
	// ErrDraining is returned for requests arriving while the server drains.
	ErrDraining = errors.New("serve: server draining")
	// ErrBreakerOpen is returned while the endpoint's circuit breaker is
	// open.
	ErrBreakerOpen = errors.New("serve: circuit open")
)

// IsShed reports whether err is an admission/load-shedding rejection (as
// opposed to an evaluation failure).
func IsShed(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrQueueTimeout) ||
		errors.Is(err, ErrDraining) || errors.Is(err, ErrBreakerOpen)
}

// AdmissionConfig bounds concurrent work.
type AdmissionConfig struct {
	// MaxConcurrent is the number of evaluation slots (default 4).
	MaxConcurrent int
	// MaxQueue is how many requests may wait for a slot (default 16; 0 uses
	// the default, negative disables queueing entirely).
	MaxQueue int
	// QueueTimeout is the longest a request may wait in the queue before it
	// is shed (default 1s).
	QueueTimeout time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	return c
}

// waiter is one queued request. granted and abandoned are written under the
// admission mutex; the grant channel is closed exactly once by whichever side
// settles the waiter first.
type waiter struct {
	grant     chan struct{}
	granted   bool
	abandoned bool
}

// admission is the slot pool plus FIFO wait queue.
type admission struct {
	cfg AdmissionConfig

	mu    sync.Mutex
	inUse int
	queue []*waiter
	hwm   int // deepest the queue has ever been (serve.queue_depth_hwm)
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg.withDefaults()}
}

// depth reports the current queue length (for the queue_depth gauge).
func (a *admission) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// queueHWM reports the deepest the queue has ever been.
func (a *admission) queueHWM() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hwm
}

// inflight reports the number of slots in use.
func (a *admission) inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// acquire claims an evaluation slot, waiting in FIFO order up to the queue
// deadline. On success the returned release must be called exactly once; on
// failure release is nil and err is ErrQueueFull, ErrQueueTimeout, or the
// context error.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	if a.inUse < a.cfg.MaxConcurrent {
		a.inUse++
		a.mu.Unlock()
		return a.release, nil
	}
	if len(a.queue) >= a.cfg.MaxQueue {
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{grant: make(chan struct{})}
	a.queue = append(a.queue, w)
	if len(a.queue) > a.hwm {
		a.hwm = len(a.queue)
	}
	a.mu.Unlock()

	timer := time.NewTimer(a.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case <-w.grant:
		// Slot handed off directly by a releasing request; inUse was never
		// decremented, so the slot is ours.
		return a.release, nil
	case <-timer.C:
		if a.settleAbandon(w) {
			return nil, ErrQueueTimeout
		}
		// Lost the race: a grant landed between the timer firing and the
		// abandon. The slot is ours after all.
		return a.release, nil
	case <-ctx.Done():
		if a.settleAbandon(w) {
			return nil, ctx.Err()
		}
		// Granted concurrently with cancellation: give the slot back and
		// report the cancellation.
		a.release()
		return nil, ctx.Err()
	}
}

// settleAbandon marks w abandoned unless it was already granted. Reports
// whether the abandon won.
func (a *admission) settleAbandon(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return false
	}
	w.abandoned = true
	return true
}

// release frees a slot: the longest-waiting live waiter inherits it
// directly; with no waiters the slot returns to the pool. Abandoned waiters
// are discarded on the way.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		if w.abandoned {
			continue
		}
		w.granted = true
		close(w.grant)
		return // slot handed off, inUse unchanged
	}
	a.inUse--
}
