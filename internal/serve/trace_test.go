package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/limits"
	"repro/internal/obs"
)

// postTraced posts a JSON body with a traceparent header and returns the
// status, body, and response headers.
func postTraced(t *testing.T, url, traceparent string, req QueryRequest) (int, []byte, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// otlpDoc is the slice of the OTLP export the tests read back.
type otlpDoc struct {
	ResourceSpans []struct {
		ScopeSpans []struct {
			Spans []struct {
				TraceID      string `json:"traceId"`
				SpanID       string `json:"spanId"`
				ParentSpanID string `json:"parentSpanId"`
				Name         string `json:"name"`
				Start        string `json:"startTimeUnixNano"`
				End          string `json:"endTimeUnixNano"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
	Account obs.Account `json:"account"`
}

func fetchTrace(t *testing.T, base, id string) (otlpDoc, int) {
	t.Helper()
	status, body, _ := getBody(t, base+"/debug/trace?id="+id)
	var doc otlpDoc
	if status == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("decoding trace export: %v", err)
		}
	}
	return doc, status
}

// A sampled traceparent is honored end to end: the trace id is adopted, the
// response echoes it, and the stored span tree covers serve admission →
// translation → chase → prover under that single id — the exact /sparql path
// exercises all four layers in one request.
func TestTraceSparqlExactFullSpanTree(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Trace: TraceConfig{Sample: -1}}) // head sampler off: only the flag records
	defer ts.Close()
	_ = s

	ids := obs.NewIDSource(17)
	tid, psid := ids.TraceID(), ids.SpanID()
	inbound := obs.FormatTraceparent(tid, psid, obs.FlagSampled)

	status, body, hdr := postTraced(t, ts.URL+"/sparql", inbound, QueryRequest{
		Query: "SELECT ?x ?y WHERE { ?x partOf ?y . OPTIONAL { ?y partOf ?z } }",
		Exact: true,
	})
	if status != http.StatusOK {
		t.Fatalf("exact sparql = %d: %s", status, body)
	}

	echo := hdr.Get("traceparent")
	etid, esid, eflags, err := obs.ParseTraceparent(echo)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", echo, err)
	}
	if etid != tid {
		t.Fatalf("echoed trace id %s, want %s", etid, tid)
	}
	if esid == psid || esid.IsZero() {
		t.Errorf("echoed parent span id should be the server's root span, got %s", esid)
	}
	if eflags&obs.FlagSampled == 0 {
		t.Error("sampled flag not echoed")
	}

	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != tid.String() {
		t.Fatalf("body trace_id = %q, want %s", resp.TraceID, tid)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("exact evaluation returned no rows")
	}

	doc, st := fetchTrace(t, ts.URL, tid.String())
	if st != http.StatusOK {
		t.Fatalf("/debug/trace?id= -> %d", st)
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	seen := map[string]bool{}
	parentOf := map[string]string{}
	idOf := map[string]string{}
	for _, sp := range spans {
		if sp.TraceID != tid.String() {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, tid)
		}
		if sp.End == "" || sp.Start == "" {
			t.Errorf("span %s missing timestamps", sp.Name)
		}
		seen[sp.Name] = true
		if _, dup := idOf[sp.Name]; !dup {
			idOf[sp.Name] = sp.SpanID
			parentOf[sp.Name] = sp.ParentSpanID
		}
	}
	for _, want := range []string{"serve.request", "serve.admission", "translate.compile", "triq.exact", "chase.run", "prover.prove"} {
		if !seen[want] {
			t.Errorf("span %q missing from trace (have %v)", want, seen)
		}
	}
	// The tree hangs together: the server root is parented on the caller's
	// span, admission on the root.
	if parentOf["serve.request"] != psid.String() {
		t.Errorf("serve.request parent = %s, want caller span %s", parentOf["serve.request"], psid)
	}
	if parentOf["serve.admission"] != idOf["serve.request"] {
		t.Error("serve.admission not parented on serve.request")
	}
	if doc.Account.ProverProofs == 0 {
		t.Error("exact evaluation billed no prover proofs")
	}
	if doc.Account.WallUS <= 0 || doc.Account.ExecUS <= 0 {
		t.Errorf("account times not filled: %+v", doc.Account)
	}
}

// The resource account mirrors the final evaluation's chase.Stats exactly:
// the numbers in Explain (which come from Result.Stats) and in
// Explain.Resources (which come from the trace account) must agree.
func TestTraceAccountMatchesExplainStats(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Trace: TraceConfig{Sample: 1}})
	defer ts.Close()
	_ = s

	status, body := postJSON(t, ts.URL+"/query?explain=1", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("query = %d: %s", status, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Explain == nil || resp.Explain.Resources == nil {
		t.Fatal("explained response missing report or resources")
	}
	acct := resp.Explain.Resources
	if resp.Resources == nil || *resp.Resources != *acct {
		t.Error("response Resources disagrees with Explain.Resources")
	}
	if int(acct.Rounds) != resp.Explain.Rounds {
		t.Errorf("account rounds %d != explain rounds %d", acct.Rounds, resp.Explain.Rounds)
	}
	if int(acct.TriggersFired) != resp.Explain.TriggersFired {
		t.Errorf("account fired %d != explain fired %d", acct.TriggersFired, resp.Explain.TriggersFired)
	}
	if int(acct.FactsDerived) != resp.Explain.FactsDerived {
		t.Errorf("account facts %d != explain facts %d", acct.FactsDerived, resp.Explain.FactsDerived)
	}
	if int(acct.NullsInvented) != resp.Explain.NullsInvented {
		t.Errorf("account nulls %d != explain nulls %d", acct.NullsInvented, resp.Explain.NullsInvented)
	}
	attempted := 0
	for _, r := range resp.Explain.Rules {
		attempted += r.TriggersAttempted
	}
	if int(acct.TriggersAttempted) != attempted {
		t.Errorf("account attempted %d != explain per-rule sum %d", acct.TriggersAttempted, attempted)
	}
	if acct.ChaseRuns == 0 {
		t.Error("no chase run billed")
	}
	if acct.WallUS < acct.ExecUS {
		t.Errorf("wall %d < exec %d", acct.WallUS, acct.ExecUS)
	}
}

// Unsampled requests still get a trace id and a resource account; only the
// span tree is absent.
func TestTraceUnsampledStillAccounted(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Trace: TraceConfig{Sample: -1}})
	defer ts.Close()
	_ = s

	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("query = %d", status)
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("unsampled request got no trace id")
	}
	doc, st := fetchTrace(t, ts.URL, resp.TraceID)
	if st != http.StatusOK {
		t.Fatalf("/debug/trace?id= -> %d for unsampled trace", st)
	}
	if n := len(doc.ResourceSpans[0].ScopeSpans[0].Spans); n != 0 {
		t.Errorf("unsampled trace recorded %d spans, want 0", n)
	}
	if doc.Account.FactsDerived == 0 || doc.Account.WallUS == 0 {
		t.Errorf("unsampled trace not accounted: %+v", doc.Account)
	}

	// The listing shows it as a non-recording row.
	_, listBody, _ := getBody(t, ts.URL+"/debug/trace")
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal([]byte(listBody), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range list.Traces {
		if row.TraceID == resp.TraceID {
			found = true
			if row.Recording {
				t.Error("unsampled trace listed as recording")
			}
		}
	}
	if !found {
		t.Error("unsampled trace missing from /debug/trace listing")
	}
}

// A deadline-tripped evaluation still produces a finished trace: every span
// is closed (Finish force-closes stragglers) and the trace is retrievable.
func TestTraceDeadlineTripClosesSpans(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Trace: TraceConfig{Sample: -1}, Retry: RetryConfig{MaxAttempts: 1}})
	defer ts.Close()
	s.SetGraph(chainGraph(t, 50))
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{
		Point: "chase.round", Action: limits.ActHook,
		Hook: func() { time.Sleep(10 * time.Millisecond) },
	}))
	defer restore()

	ids := obs.NewIDSource(23)
	tid := ids.TraceID()
	inbound := obs.FormatTraceparent(tid, ids.SpanID(), obs.FlagSampled)
	status, body, _ := postTraced(t, ts.URL+"/query", inbound, QueryRequest{
		Program:   chainProgram,
		TimeoutMS: 40,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, body)
	}
	doc, st := fetchTrace(t, ts.URL, tid.String())
	if st != http.StatusOK {
		t.Fatalf("timed-out request's trace not stored (%d)", st)
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) == 0 {
		t.Fatal("no spans recorded for timed-out evaluation")
	}
	for _, sp := range spans {
		if sp.End == "" || sp.End == "0" {
			t.Errorf("span %s left open after cancellation", sp.Name)
		}
	}
}

// A slow query trips the auto-profiler exactly once per cooldown: the slowlog
// entry references the CPU and heap profile files, and both exist on disk
// after the capture drains.
func TestAutoProfileCaptureOnSlowQuery(t *testing.T) {
	dir := t.TempDir()
	s, ts, _ := newTestServer(t, Config{
		SlowLog: SlowLogConfig{Threshold: time.Nanosecond},
		AutoProfile: AutoProfileConfig{
			Dir:         dir,
			Threshold:   time.Nanosecond,
			CPUDuration: 50 * time.Millisecond,
			Cooldown:    time.Hour, // only the first query captures
		},
		Trace: TraceConfig{Sample: 1},
	})
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	s.autoprof.drain()

	_, body, _ := getBody(t, ts.URL+"/debug/slowlog")
	var got struct {
		Entries []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("want 3 slowlog entries, got %d", len(got.Entries))
	}
	captured := 0
	for _, e := range got.Entries {
		if e.TraceID == "" {
			t.Error("slow entry missing trace id")
		}
		if e.Resources == nil || e.Resources.FactsDerived == 0 {
			t.Error("slow entry missing resource account")
		}
		if e.ProfileCPU != "" || e.ProfileHeap != "" {
			captured++
			for _, f := range []string{e.ProfileCPU, e.ProfileHeap} {
				if f == "" {
					t.Error("only one of the two profile files referenced")
					continue
				}
				fi, err := os.Stat(f)
				if err != nil {
					t.Errorf("referenced profile %s: %v", f, err)
				} else if fi.Size() == 0 {
					t.Errorf("profile %s is empty", f)
				}
			}
		}
	}
	if captured != 1 {
		t.Errorf("captured on %d entries, want exactly 1 (cooldown)", captured)
	}
}

// The exact flag works over HTTP for both endpoints.
func TestQueryExactOverHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	defer ts.Close()

	status, body := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram, Exact: true})
	if status != http.StatusOK {
		t.Fatalf("exact /query = %d: %s", status, body)
	}
	resp := decodeResponse(t, body)
	if !resp.Exact {
		t.Error("exact evaluation not marked Exact")
	}
	if len(resp.Rows) == 0 {
		t.Error("exact evaluation returned no rows")
	}

	// Answers agree with the chase path.
	_, chaseBody := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	chaseResp := decodeResponse(t, chaseBody)
	if len(resp.Rows) != len(chaseResp.Rows) {
		t.Errorf("exact rows %d != chase rows %d", len(resp.Rows), len(chaseResp.Rows))
	}
}

// Tracing can be disabled entirely.
func TestTraceDisable(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Trace: TraceConfig{Disable: true}})
	defer ts.Close()

	status, body, hdr := postTraced(t, ts.URL+"/query", "", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("query = %d", status)
	}
	if hdr.Get("traceparent") != "" {
		t.Error("disabled tracing still echoed a traceparent")
	}
	if bytes.Contains(body, []byte("trace_id")) {
		t.Error("disabled tracing still put trace_id in the body")
	}
	if st, _, _ := getBody(t, ts.URL+"/debug/trace"); st != http.StatusNotFound {
		t.Errorf("/debug/trace = %d with tracing disabled, want 404", st)
	}
}

// The loadgen injects traceparent headers; the server echoes every one, and
// sampled ids are retrievable from the trace store.
func TestLoadgenTraceInjection(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Trace: TraceConfig{Sample: -1}})
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:         ts.URL + "/query",
		Body:        body,
		Parallel:    2,
		Requests:    20,
		Trace:       true,
		TraceSample: 0.5,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 20 {
		t.Fatalf("ok=%d of 20", res.OK)
	}
	if res.TraceEchoed != 20 {
		t.Errorf("trace echoed on %d of 20 requests", res.TraceEchoed)
	}
	if len(res.SampledTraceIDs) == 0 {
		t.Fatal("no sampled trace ids recorded")
	}
	// A sampled id forced recording server-side even with head sampling off.
	doc, st := fetchTrace(t, ts.URL, res.SampledTraceIDs[0])
	if st != http.StatusOK {
		t.Fatalf("sampled trace %s not stored (%d)", res.SampledTraceIDs[0], st)
	}
	if len(doc.ResourceSpans[0].ScopeSpans[0].Spans) == 0 {
		t.Error("sampled trace has no spans")
	}
}

// Build info rides /metrics as triq_build_info{...} 1.
func TestMetricsBuildInfo(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	defer ts.Close()
	_, body, _ := getBody(t, ts.URL+"/metrics")
	if !bytes.Contains([]byte(body), []byte("triq_build_info{")) {
		t.Error("/metrics missing triq_build_info")
	}
	samples, types := promParse(t, body)
	if types["triq_build_info"] != "gauge" {
		t.Errorf("triq_build_info type = %q", types["triq_build_info"])
	}
	found := false
	for k, v := range samples {
		if len(k) >= len("triq_build_info") && k[:len("triq_build_info")] == "triq_build_info" {
			found = v == 1
		}
	}
	if !found {
		t.Error("triq_build_info sample not 1")
	}

	// Health gauges ride the same exposition.
	if _, ok := samples["go_goroutines"]; !ok {
		t.Error("/metrics missing go_goroutines health gauge")
	}
	if _, ok := samples["serve_queue_depth_hwm"]; !ok {
		t.Error("/metrics missing serve_queue_depth_hwm")
	}
}
