package serve

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestRunLoadAgainstServer drives the load generator at a live handler with
// a tight admission bound, checking the partition (ok + shed + failed =
// total) and that quantiles come back sane.
func TestRunLoadAgainstServer(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2, QueueTimeout: 50 * time.Millisecond},
	})
	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:      ts.URL + "/query",
		Body:     body,
		Parallel: 8,
		Requests: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 48 {
		t.Fatalf("total = %d, want 48", res.Total)
	}
	if res.OK+res.Shed+res.Failed != res.Total {
		t.Fatalf("partition leak: %+v", res)
	}
	if res.OK == 0 {
		t.Fatalf("no request succeeded: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("unexpected hard failures: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("bad quantiles: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("bad throughput: %+v", res)
	}
	t.Logf("load: %s", res)
}
