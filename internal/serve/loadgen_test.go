package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/limits"
	"repro/internal/store"
)

// TestRunLoadAgainstServer drives the load generator at a live handler with
// a tight admission bound, checking the partition (ok + shed + failed =
// total) and that quantiles come back sane.
func TestRunLoadAgainstServer(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2, QueueTimeout: 50 * time.Millisecond},
	})
	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:      ts.URL + "/query",
		Body:     body,
		Parallel: 8,
		Requests: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 48 {
		t.Fatalf("total = %d, want 48", res.Total)
	}
	if res.OK+res.Shed+res.Failed != res.Total {
		t.Fatalf("partition leak: %+v", res)
	}
	if res.OK == 0 {
		t.Fatalf("no request succeeded: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("unexpected hard failures: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("bad quantiles: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("bad throughput: %+v", res)
	}
	t.Logf("load: %s", res)
}

// TestRunLoadWriteMix soaks a store-backed server with a read/write mix and
// checks the mutation accounting: every write lands (no shedding configured),
// epochs advance monotonically, and reads keep succeeding throughout.
func TestRunLoadWriteMix(t *testing.T) {
	_, st, ts := newStoreServer(t, Config{}, store.Config{Dir: t.TempDir(), CheckpointEvery: 8})
	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:        ts.URL + "/query",
		Body:       body,
		Parallel:   6,
		Requests:   60,
		WritePct:   40,
		MutateBase: ts.URL,
		WriteBatch: 4,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 60 || res.OK+res.Shed+res.Failed != res.Total {
		t.Fatalf("partition leak: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if res.Writes == 0 || res.WriteOK != res.Writes {
		t.Fatalf("write mix = %d/%d ok, want all writes acknowledged: %+v", res.WriteOK, res.Writes, res)
	}
	if res.OK <= res.WriteOK {
		t.Fatalf("no reads in the mix: %+v", res)
	}
	if res.LastEpoch != st.Current().Seq {
		t.Fatalf("last acked epoch %d != store epoch %d", res.LastEpoch, st.Current().Seq)
	}
	t.Logf("write-mix load: %s", res)

	// WritePct without MutateBase is a configuration error.
	if _, err := RunLoad(context.Background(), LoadConfig{URL: ts.URL + "/query", Body: body, Requests: 1, WritePct: 10}); err == nil {
		t.Fatal("want an error for WritePct without MutateBase")
	}
}

// TestRunLoadRetryBudget puts a shedding front in front of the handler: the
// first attempt of every request is refused with 503 + a millisecond
// Retry-After hint, so each success costs exactly one retry. The budget
// bounds how many requests may recover; without budget every shed stays a
// shed.
func TestRunLoadRetryBudget(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var hits sync.Map
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("traceparent")
		if key == "" {
			key = "untraced"
		}
		if _, retried := hits.LoadOrStore(key, true); !retried && key != "untraced" {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, Failure{
				WireError:    limits.ToWire(ErrQueueFull),
				RetryAfterMS: 20,
			})
			return
		}
		r.URL.Host = ""
		proxyReq, _ := http.NewRequest(http.MethodPost, ts.URL+r.URL.Path, r.Body)
		proxyReq.Header = r.Header
		resp, err := http.DefaultClient.Do(proxyReq)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer front.Close()

	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:         front.URL + "/query",
		Body:        body,
		Parallel:    4,
		Requests:    12,
		Trace:       true, // per-request traceparent keys the first-attempt shed
		Seed:        7,
		RetryBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 12 || res.Shed != 0 {
		t.Fatalf("with budget: %+v, want every request to recover on retry", res)
	}
	if res.Retried != 12 || res.RetriedOK != 12 {
		t.Fatalf("retry accounting: %+v, want 12 retried / 12 recovered", res)
	}

	// Budget exhausted mid-run: only the budgeted retries recover.
	hits = sync.Map{}
	res, err = RunLoad(context.Background(), LoadConfig{
		URL:         front.URL + "/query",
		Body:        body,
		Parallel:    1,
		Requests:    8,
		Trace:       true,
		Seed:        11,
		RetryBudget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried != 3 || res.RetriedOK != 3 || res.OK != 3 || res.Shed != 5 {
		t.Fatalf("budgeted run: %+v, want 3 recovered and 5 shed", res)
	}

	// Zero budget: no retries at all.
	hits = sync.Map{}
	res, err = RunLoad(context.Background(), LoadConfig{
		URL:      front.URL + "/query",
		Body:     body,
		Parallel: 2,
		Requests: 6,
		Trace:    true,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried != 0 || res.Shed != 6 {
		t.Fatalf("no-budget run: %+v, want every first attempt shed", res)
	}
}
