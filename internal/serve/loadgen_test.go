package serve

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/store"
)

// TestRunLoadAgainstServer drives the load generator at a live handler with
// a tight admission bound, checking the partition (ok + shed + failed =
// total) and that quantiles come back sane.
func TestRunLoadAgainstServer(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2, QueueTimeout: 50 * time.Millisecond},
	})
	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:      ts.URL + "/query",
		Body:     body,
		Parallel: 8,
		Requests: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 48 {
		t.Fatalf("total = %d, want 48", res.Total)
	}
	if res.OK+res.Shed+res.Failed != res.Total {
		t.Fatalf("partition leak: %+v", res)
	}
	if res.OK == 0 {
		t.Fatalf("no request succeeded: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("unexpected hard failures: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("bad quantiles: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("bad throughput: %+v", res)
	}
	t.Logf("load: %s", res)
}

// TestRunLoadWriteMix soaks a store-backed server with a read/write mix and
// checks the mutation accounting: every write lands (no shedding configured),
// epochs advance monotonically, and reads keep succeeding throughout.
func TestRunLoadWriteMix(t *testing.T) {
	_, st, ts := newStoreServer(t, Config{}, store.Config{Dir: t.TempDir(), CheckpointEvery: 8})
	body, _ := json.Marshal(QueryRequest{Program: testProgram})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:        ts.URL + "/query",
		Body:       body,
		Parallel:   6,
		Requests:   60,
		WritePct:   40,
		MutateBase: ts.URL,
		WriteBatch: 4,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 60 || res.OK+res.Shed+res.Failed != res.Total {
		t.Fatalf("partition leak: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if res.Writes == 0 || res.WriteOK != res.Writes {
		t.Fatalf("write mix = %d/%d ok, want all writes acknowledged: %+v", res.WriteOK, res.Writes, res)
	}
	if res.OK <= res.WriteOK {
		t.Fatalf("no reads in the mix: %+v", res)
	}
	if res.LastEpoch != st.Current().Seq {
		t.Fatalf("last acked epoch %d != store epoch %d", res.LastEpoch, st.Current().Seq)
	}
	t.Logf("write-mix load: %s", res)

	// WritePct without MutateBase is a configuration error.
	if _, err := RunLoad(context.Background(), LoadConfig{URL: ts.URL + "/query", Body: body, Requests: 1, WritePct: 10}); err == nil {
		t.Fatal("want an error for WritePct without MutateBase")
	}
}
