package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/limits"
)

// Transient faults (limits.ErrInjected — the taxonomy's stand-in for "the
// dependency hiccupped") are retried inside the server while the request
// holds its admission slot, with exponential backoff and full jitter so
// synchronized retries don't stampede. Everything else — deadlines, budget
// trips, internal errors, real answers — is never retried: deadlines have no
// time left, budgets would trip again, and internal errors are bugs, not
// weather.

// RetryConfig tunes in-server retries of transiently failing evaluations.
type RetryConfig struct {
	// MaxAttempts is the total number of tries, first included (default 3;
	// negative disables retrying).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 100ms).
	MaxDelay time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.MaxAttempts < 0 {
		c.MaxAttempts = 1
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 5 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 100 * time.Millisecond
	}
	return c
}

// jitter is a lock-protected source for backoff jitter; math/rand's global
// is fine too, but a private source keeps tests free to seed it.
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitter(seed int64) *jitter {
	return &jitter{rng: rand.New(rand.NewSource(seed))}
}

func (j *jitter) scale() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Float64()
}

// retryable reports whether the evaluation error is worth retrying.
func retryable(err error) bool {
	return errors.Is(err, limits.ErrInjected)
}

// withRetry runs eval up to cfg.MaxAttempts times, backing off between
// attempts (full jitter: sleep a uniform fraction of the exponential step).
// It returns the attempt count alongside the final outcome; a context
// cancellation during backoff surfaces as the context's typed error.
func withRetry(ctx context.Context, cfg RetryConfig, j *jitter, eval func() error) (attempts int, err error) {
	cfg = cfg.withDefaults()
	for attempts = 1; ; attempts++ {
		err = eval()
		if err == nil || !retryable(err) || attempts >= cfg.MaxAttempts {
			return attempts, err
		}
		step := cfg.BaseDelay << (attempts - 1)
		if step > cfg.MaxDelay {
			step = cfg.MaxDelay
		}
		sleep := time.Duration(j.scale() * float64(step))
		timer := time.NewTimer(sleep)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return attempts, limits.NewError(limits.CtxKind(ctx), limits.Truncation{})
		}
	}
}
