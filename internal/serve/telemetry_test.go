package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// promParse is a minimal Prometheus 0.0.4 text parser: it validates comment
// and sample syntax and returns samples keyed by "name{labels}" plus the
// declared family types. It fails the test on any malformed line, so a 200
// from /metrics that reaches this parser is a well-formedness proof.
func promParse(t *testing.T, data string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	for ln, line := range strings.Split(data, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no sample value in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, key)
			}
			name = key[:i]
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		samples[key] = v
	}
	return samples, types
}

func getBody(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header
}

// /metrics must emit parseable Prometheus 0.0.4 text with the right content
// type: at least one histogram family whose percentile source (buckets, sum,
// count) round-trips through the parser, plus the server gauges.
func TestMetricsPrometheusExposition(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	defer ts.Close()
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)
	for i := 0; i < 3; i++ {
		if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}

	status, body, hdr := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics = %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	samples, types := promParse(t, body)

	if types["serve_latency_us"] != "histogram" {
		t.Fatalf("serve_latency_us type = %q, want histogram (types: %v)", types["serve_latency_us"], types)
	}
	count := samples["serve_latency_us_count"]
	if count != 3 {
		t.Errorf("serve_latency_us_count = %g, want 3", count)
	}
	if inf := samples[`serve_latency_us_bucket{le="+Inf"}`]; inf != count {
		t.Errorf("+Inf bucket = %g, want count %g", inf, count)
	}
	if samples["serve_latency_us_sum"] <= 0 {
		t.Error("serve_latency_us_sum not positive")
	}
	// Buckets must be cumulative (monotone nondecreasing in le order).
	var prev float64
	for _, b := range obs.BucketBounds() {
		key := fmt.Sprintf("serve_latency_us_bucket{le=%q}", strconv.FormatFloat(b, 'g', -1, 64))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %g < previous %g (not cumulative)", key, v, prev)
		}
		prev = v
	}
	for _, gauge := range []string{"serve_inflight", "serve_queue_depth", "serve_breaker_state_query", "serve_breaker_state_sparql"} {
		if _, ok := samples[gauge]; !ok {
			t.Errorf("missing gauge %s", gauge)
		}
	}

	// The percentile summary of the same histogram is served by
	// /metrics.json and must agree with the Prometheus count.
	status, body, hdr = getBody(t, ts.URL+"/metrics.json")
	if status != http.StatusOK {
		t.Fatalf("/metrics.json = %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json Content-Type = %q", ct)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("decoding /metrics.json: %v", err)
	}
	h, ok := snap.Hists["serve.latency_us"]
	if !ok {
		t.Fatalf("/metrics.json missing serve.latency_us (has %v)", snap.Hists)
	}
	if float64(h.Count) != count {
		t.Errorf("JSON count %d != Prometheus count %g", h.Count, count)
	}
	if h.P50 <= 0 || h.P95 < h.P50 || h.P99 < h.P95 {
		t.Errorf("implausible percentiles: p50=%g p95=%g p99=%g", h.P50, h.P95, h.P99)
	}
	if snap.Counters["serve.ok"] != 3 {
		t.Errorf("serve.ok = %d, want 3", snap.Counters["serve.ok"])
	}
}

// Each over-threshold query produces exactly one slowlog entry — in the ring
// AND in the JSONL sink — and under-threshold queries produce none.
func TestSlowLogExactlyOncePerSlowQuery(t *testing.T) {
	var sink bytes.Buffer
	// Threshold 1ns: every query is "slow", so counting is deterministic.
	s, ts, _ := newTestServer(t, Config{SlowLog: SlowLogConfig{Threshold: time.Nanosecond, Capacity: 8, Sink: &sink}})
	defer ts.Close()
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)

	const n = 5
	for i := 0; i < n; i++ {
		if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}

	status, body, _ := getBody(t, ts.URL+"/debug/slowlog")
	if status != http.StatusOK {
		t.Fatalf("/debug/slowlog = %d", status)
	}
	var got struct {
		Enabled bool        `json:"enabled"`
		Total   int64       `json:"total"`
		Entries []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("decoding slowlog: %v", err)
	}
	if !got.Enabled {
		t.Error("slowlog not enabled")
	}
	if got.Total != n || len(got.Entries) != n {
		t.Fatalf("slowlog total=%d entries=%d, want exactly %d each", got.Total, len(got.Entries), n)
	}
	for i, e := range got.Entries {
		if e.Endpoint != "query" || e.Status != http.StatusOK {
			t.Errorf("entry %d: endpoint=%q status=%d", i, e.Endpoint, e.Status)
		}
		if !strings.Contains(e.Query, "ts(?X)") {
			t.Errorf("entry %d: query text not captured: %q", i, e.Query)
		}
		if e.TotalUS < e.ExecUS {
			t.Errorf("entry %d: total %d < exec %d", i, e.TotalUS, e.ExecUS)
		}
		if e.Explain == nil {
			t.Errorf("entry %d: slow entry missing EXPLAIN summary", i)
		} else if e.Explain.TriggersFired == 0 {
			t.Errorf("entry %d: EXPLAIN has no trigger stats", i)
		}
	}
	// The sink saw the same five entries, one JSON line each.
	lines := strings.Split(strings.TrimRight(sink.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("sink has %d lines, want %d", len(lines), n)
	}
	for i, line := range lines {
		var e SlowEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Errorf("sink line %d not JSON: %v", i, err)
		}
	}
	if c := s.obs.Registry().Counter("serve.slow_queries"); c != n {
		t.Errorf("serve.slow_queries = %d, want %d", c, n)
	}
}

// With a high threshold nothing is recorded.
func TestSlowLogUnderThresholdRecordsNothing(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{SlowLog: SlowLogConfig{Threshold: time.Hour}})
	defer ts.Close()
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)
	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatal("query failed")
	}
	_, body, _ := getBody(t, ts.URL+"/debug/slowlog")
	var got struct {
		Total   int64       `json:"total"`
		Entries []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 0 || len(got.Entries) != 0 {
		t.Errorf("fast queries were recorded: total=%d entries=%d", got.Total, len(got.Entries))
	}
}

// explain=1 embeds the report in the response; without it the field is absent
// even when the server computes reports for the slowlog.
func TestQueryExplainParam(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{SlowLog: SlowLogConfig{Threshold: time.Nanosecond}})
	defer ts.Close()
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)

	status, body := postJSON(t, ts.URL+"/query?explain=1", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("explained query = %d: %s", status, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Explain == nil {
		t.Fatal("explain=1 response missing report")
	}
	if resp.Explain.Kind != "triq" || len(resp.Explain.Rules) == 0 {
		t.Errorf("report kind=%q rules=%d", resp.Explain.Kind, len(resp.Explain.Rules))
	}

	status, body = postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatal("plain query failed")
	}
	if strings.Contains(string(body), `"explain"`) {
		t.Errorf("unexplained response leaked the report: %s", body)
	}

	// SPARQL explain carries operator provenance on the compiled rules.
	status, body = postJSON(t, ts.URL+"/sparql?explain=1", QueryRequest{
		Query: "SELECT ?x ?y WHERE { ?x partOf ?y }",
	})
	if status != http.StatusOK {
		t.Fatalf("explained sparql = %d: %s", status, body)
	}
	var sresp QueryResponse
	if err := json.Unmarshal(body, &sresp); err != nil {
		t.Fatal(err)
	}
	if sresp.Explain == nil || sresp.Explain.Kind != "sparql" {
		t.Fatalf("sparql report missing or wrong kind: %+v", sresp.Explain)
	}
	hasOrigin := false
	for _, ru := range sresp.Explain.Rules {
		if ru.Origin != "" {
			hasOrigin = true
		}
	}
	if !hasOrigin {
		t.Error("no compiled rule carries SPARQL operator provenance")
	}
}

// /debug/progress serves a well-formed snapshot, and a completed evaluation
// leaves its last round/fact counts behind.
func TestDebugProgressEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	defer ts.Close()
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGraph(g)

	_, body, _ := getBody(t, ts.URL+"/debug/progress")
	var before repro.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &before); err != nil {
		t.Fatalf("decoding progress: %v", err)
	}
	if before.ActiveRuns != 0 || before.Facts != 0 {
		t.Errorf("idle server reports activity: %+v", before)
	}

	if status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram}); status != http.StatusOK {
		t.Fatal("query failed")
	}
	_, body, _ = getBody(t, ts.URL+"/debug/progress")
	var after repro.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.ActiveRuns != 0 {
		t.Errorf("ActiveRuns = %d after completion, want 0", after.ActiveRuns)
	}
	if after.Facts == 0 || after.TriggersFired == 0 {
		t.Errorf("completed run left no progress marks: %+v", after)
	}
}

// The caches survive httptest churn: WorkerMetric keys formatted per
// (base, worker) must be stable across servers (regression guard for the
// package-level cache).
func TestWorkerMetricKeysStableAcrossServers(t *testing.T) {
	k1 := obs.WorkerMetric("chase.worker.shards", 3)
	k2 := obs.WorkerMetric("chase.worker.shards", 3)
	if k1 != "chase.worker.shards.w3" || k1 != k2 {
		t.Errorf("WorkerMetric unstable: %q vs %q", k1, k2)
	}
}
