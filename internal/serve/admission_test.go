package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionImmediateSlots(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2, MaxQueue: 1, QueueTimeout: time.Second})
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	r1()
	r2()
	if got := a.inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: time.Second})
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// One waiter fills the queue.
	waiterErr := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background())
		if r != nil {
			defer r()
		}
		waiterErr <- err
	}()
	// Wait until it is actually queued.
	for i := 0; a.depth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.depth() != 1 {
		t.Fatal("waiter never queued")
	}

	// The next request must shed immediately.
	t0 := time.Now()
	_, err = a.acquire(context.Background())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if since := time.Since(t0); since > 100*time.Millisecond {
		t.Fatalf("queue-full shed took %s; must be immediate", since)
	}

	release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter should have inherited the slot: %v", err)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 30 * time.Millisecond})
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	t0 := time.Now()
	_, err = a.acquire(context.Background())
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout, got %v", err)
	}
	if waited := time.Since(t0); waited < 25*time.Millisecond {
		t.Fatalf("shed after only %s; must wait the queue deadline", waited)
	}
	// The abandoned waiter must not leak queue capacity.
	if a.depth() != 1 { // still recorded until a release sweeps it
		t.Logf("queue depth after timeout: %d", a.depth())
	}
	release()
	if got := a.inflight(); got != 0 {
		t.Fatalf("inflight after sweeping release = %d, want 0", got)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: time.Second})
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		errCh <- err
	}()
	for i := 0; a.depth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestAdmissionFIFOHandoff checks that released slots go to the
// longest-waiting request, not the newest.
func TestAdmissionFIFOHandoff(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: time.Second})
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 4
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := a.acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}()
		// Serialize enqueue order.
		for a.depth() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("handoff order: got waiter %d before waiter %d", got, want)
		}
		want++
	}
}

// TestAdmissionStress hammers the pool and checks the slot invariant holds.
func TestAdmissionStress(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 3, MaxQueue: 8, QueueTimeout: 20 * time.Millisecond})
	var running, peak, violations int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.acquire(context.Background())
			if err != nil {
				return // shed is fine under stress
			}
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			if running > 3 {
				violations++
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if violations > 0 {
		t.Fatalf("%d concurrency violations (peak %d > MaxConcurrent 3)", violations, peak)
	}
	if a.inflight() != 0 {
		t.Fatalf("slots leaked: inflight = %d", a.inflight())
	}
}
