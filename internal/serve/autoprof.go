package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Slow-query auto-profiling: when a request's total time trips the
// threshold, the server captures a bounded CPU profile and a heap profile
// and links the file names from the slow-log entry. Captures are rate
// limited (cooldown + lifetime cap) and at most one CPU profile runs at a
// time, so a storm of slow queries costs a handful of profiles, not one per
// request.

// AutoProfileConfig configures slow-query auto-profiling. A zero Dir
// disables it.
type AutoProfileConfig struct {
	// Dir is where profile files are written; "" disables auto-profiling.
	Dir string
	// Threshold is the minimum total request time that trips a capture;
	// 0 uses the slow-log threshold (auto-profiling needs one of the two to
	// be set).
	Threshold time.Duration
	// CPUDuration bounds the CPU profile capture (default 2s).
	CPUDuration time.Duration
	// Cooldown is the minimum time between captures (default 1m).
	Cooldown time.Duration
	// MaxCaptures caps captures over the server's lifetime (default 16).
	MaxCaptures int
}

func (c AutoProfileConfig) withDefaults(slowThreshold time.Duration) AutoProfileConfig {
	if c.Threshold <= 0 {
		c.Threshold = slowThreshold
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 16
	}
	return c
}

// autoProfiler owns the capture state.
type autoProfiler struct {
	cfg AutoProfileConfig
	obs *obs.Obs

	mu       sync.Mutex
	last     time.Time
	captures int
	active   bool // a CPU profile is running
	wg       sync.WaitGroup
}

func newAutoProfiler(cfg AutoProfileConfig, slowThreshold time.Duration, o *obs.Obs) *autoProfiler {
	if cfg.Dir == "" {
		return nil
	}
	cfg = cfg.withDefaults(slowThreshold)
	if cfg.Threshold <= 0 {
		return nil
	}
	return &autoProfiler{cfg: cfg, obs: o}
}

// maybeCapture trips a capture when total meets the threshold and the rate
// limits allow one. It returns the CPU and heap profile file names (either
// may be empty) for the slow-log entry; the files themselves are finalized
// by a background goroutine so the serving path is never blocked on
// profiling.
func (p *autoProfiler) maybeCapture(total time.Duration, traceID string) (cpuFile, heapFile string) {
	if p == nil || total < p.cfg.Threshold {
		return "", ""
	}
	if traceID == "" {
		traceID = "untraced"
	}
	return p.capture(traceID, obs.F("total_us", total.Microseconds()))
}

// forceCapture bypasses the latency threshold — the SLO watchdog calls it on
// a burn-rate breach so the profile shows what the process was doing while
// the budget burned — but still honors the cooldown and lifetime cap.
func (p *autoProfiler) forceCapture(tag string) (cpuFile, heapFile string) {
	if p == nil {
		return "", ""
	}
	return p.capture(tag, obs.F("forced", true))
}

// capture runs one rate-limited CPU+heap capture tagged into the file names.
func (p *autoProfiler) capture(tag string, extra ...obs.KV) (cpuFile, heapFile string) {
	p.mu.Lock()
	now := time.Now()
	if p.active || p.captures >= p.cfg.MaxCaptures ||
		(!p.last.IsZero() && now.Sub(p.last) < p.cfg.Cooldown) {
		p.mu.Unlock()
		return "", ""
	}
	p.active = true
	p.captures++
	p.last = now
	p.mu.Unlock()

	stamp := now.UnixNano()
	cpuFile = filepath.Join(p.cfg.Dir, fmt.Sprintf("cpu-%d-%s.pprof", stamp, tag))
	heapFile = filepath.Join(p.cfg.Dir, fmt.Sprintf("heap-%d-%s.pprof", stamp, tag))

	cf, err := os.Create(cpuFile)
	if err != nil {
		p.release()
		return "", ""
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		// Another CPU profile is running (e.g. via /debug/pprof/profile);
		// keep the heap capture, drop the CPU file.
		cf.Close()
		os.Remove(cpuFile)
		cpuFile = ""
	}
	p.obs.Count("serve.autoprofile_captures", 1)
	p.obs.Event("serve.autoprofile", append([]obs.KV{obs.F("tag", tag)}, extra...)...)

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.release()
		if hf, err := os.Create(heapFile); err == nil {
			runtime.GC() // fold garbage out of the live-heap profile
			_ = pprof.Lookup("heap").WriteTo(hf, 0)
			hf.Close()
		}
		if cpuFile != "" {
			time.Sleep(p.cfg.CPUDuration)
			pprof.StopCPUProfile()
			cf.Close()
		}
	}()
	return cpuFile, heapFile
}

func (p *autoProfiler) release() {
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
}

// drain waits for an in-flight capture to finish (used by Server.Drain so a
// profile file is complete before the process exits).
func (p *autoProfiler) drain() {
	if p == nil {
		return
	}
	p.wg.Wait()
}
