package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
	"repro/internal/store"
)

// The mutation endpoint contract: atomic N-Triples batches through the
// epoch store, 501 without a store, 503 while recovering or draining,
// 413 over the body cap, and query visibility of committed epochs.

func newStoreServer(t *testing.T, cfg Config, scfg store.Config) (*Server, *store.Store, *httptest.Server) {
	t.Helper()
	cfg.Obs = obs.New()
	if cfg.Breaker.Window == 0 {
		cfg.Breaker.Disabled = true
	}
	s := New(cfg)
	st, _, err := store.Open(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	g, err := repro.ParseGraph(testData)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	s.SetStore(st)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, st, ts
}

func postMutation(t *testing.T, url string, req MutationRequest) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func TestServeInsertDeleteRoundTrip(t *testing.T) {
	_, st, ts := newStoreServer(t, Config{}, store.Config{Dir: t.TempDir(), CheckpointEvery: -1})
	base := st.Current().Seq

	status, body := postMutation(t, ts.URL+"/insert", MutationRequest{
		Triples: "Shuttle partOf TheAirline .\nShuttle partOf TheAirline .\n",
	})
	if status != http.StatusOK {
		t.Fatalf("insert = %d, body %s", status, body)
	}
	var mr MutationResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != base+1 || mr.Applied != 1 || mr.Batch != 1 || !mr.Durable {
		t.Fatalf("insert response = %+v, want epoch %d / 1 applied / durable", mr, base+1)
	}

	// The committed epoch is immediately visible to queries.
	status, qbody := postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("query = %d", status)
	}
	if qr := decodeResponse(t, qbody); len(qr.Rows) != 3 {
		t.Fatalf("rows after insert = %v, want 3 (Shuttle now in the closure)", qr.Rows)
	}

	status, body = postMutation(t, ts.URL+"/delete", MutationRequest{
		Triples: "Shuttle partOf TheAirline .\nNoSuch partOf Nothing .\n",
	})
	if status != http.StatusOK {
		t.Fatalf("delete = %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != base+2 || mr.Applied != 1 || mr.Batch != 2 {
		t.Fatalf("delete response = %+v, want epoch %d / 1 of 2 applied", mr, base+2)
	}
	status, qbody = postJSON(t, ts.URL+"/query", QueryRequest{Program: testProgram})
	if status != http.StatusOK {
		t.Fatalf("query = %d", status)
	}
	if qr := decodeResponse(t, qbody); len(qr.Rows) != 2 {
		t.Fatalf("rows after delete = %v, want the original 2", qr.Rows)
	}
}

func TestServeMutationWithoutStoreIs501(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "a p b .\n"})
	if status != http.StatusNotImplemented {
		t.Fatalf("insert without store = %d, body %s", status, body)
	}
}

func TestServeMutationBadRequests(t *testing.T) {
	_, _, ts := newStoreServer(t, Config{}, store.Config{})
	for name, req := range map[string]MutationRequest{
		"unparseable": {Triples: "not an n-triple"},
		"empty":       {Triples: ""},
	} {
		if status, body := postMutation(t, ts.URL+"/insert", req); status != http.StatusBadRequest {
			t.Errorf("%s = %d, body %s, want 400", name, status, body)
		}
	}
	resp, err := http.Post(ts.URL+"/delete", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken JSON = %d, want 400", resp.StatusCode)
	}
}

func TestServeBodyCap413(t *testing.T) {
	_, _, ts := newStoreServer(t, Config{MaxBodyBytes: 64}, store.Config{})
	big := MutationRequest{Triples: strings.Repeat("subj pred obj .\n", 64)}
	if status, body := postMutation(t, ts.URL+"/insert", big); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized insert = %d, body %s, want 413", status, body)
	}
	// Queries share the cap.
	status, _ := postJSON(t, ts.URL+"/query", QueryRequest{Program: strings.Repeat(testProgram, 10)})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query = %d, want 413", status)
	}
	// An in-budget request still works.
	if status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "a partOf b .\n"}); status != http.StatusOK {
		t.Fatalf("small insert = %d, body %s", status, body)
	}
}

func TestServeReadyzStatesJSON(t *testing.T) {
	s := New(Config{Breaker: BreakerConfig{Disabled: true}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readyz := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("readyz body not JSON: %v", err)
		}
		return resp.StatusCode, m
	}

	if status, m := readyz(); status != http.StatusServiceUnavailable || m["state"] != "empty" {
		t.Fatalf("empty server readyz = %d %v", status, m)
	}
	s.SetRecovering(true)
	if status, m := readyz(); status != http.StatusServiceUnavailable || m["state"] != "recovering" {
		t.Fatalf("recovering readyz = %d %v, want 503 {\"state\":\"recovering\"}", status, m)
	}
	// Mutations shed while recovering.
	st, _, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s.SetStore(st)
	if status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "a p b .\n"}); status != http.StatusServiceUnavailable {
		t.Fatalf("insert while recovering = %d, body %s, want 503", status, body)
	}
	s.SetRecovering(false)
	if status, m := readyz(); status != http.StatusOK || m["state"] != "ready" {
		t.Fatalf("ready readyz = %d %v", status, m)
	}
	if status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "a p b .\n"}); status != http.StatusOK {
		t.Fatalf("insert after recovery = %d, body %s", status, body)
	}
	if status, m := readyz(); status != http.StatusOK || m["epoch"] != float64(st.Current().Seq) {
		t.Fatalf("ready readyz epoch = %d %v, want %d", status, m, st.Current().Seq)
	}
}

func TestServeMutationStoreErrorIs500(t *testing.T) {
	// A dead store turns mutations into 500s, not panics.
	_, st, ts := newStoreServer(t, Config{}, store.Config{})
	st.Close()
	if status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "x p y .\n"}); status != http.StatusInternalServerError {
		t.Fatalf("insert on closed store = %d, body %s, want 500", status, body)
	}
}
