package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro"
	"repro/internal/limits"
	"repro/internal/obs"
)

// SlowLogConfig configures the slow-query log: every request whose total
// time (queue wait + evaluation) meets Threshold is recorded exactly once in
// an in-memory ring served at /debug/slowlog, and — when a Sink is attached —
// appended to it as one JSON line.
type SlowLogConfig struct {
	// Threshold is the minimum total request time to record; 0 disables the
	// log entirely.
	Threshold time.Duration
	// Capacity bounds the in-memory ring (default 128).
	Capacity int
	// Sink, when non-nil, receives one JSON line per slow entry (JSONL). The
	// caller owns its lifetime.
	Sink io.Writer
}

// maxSlowQueryLen caps the query text captured per entry.
const maxSlowQueryLen = 2048

// SlowEntry is one recorded slow query.
type SlowEntry struct {
	// Time is when the request finished.
	Time time.Time `json:"time"`
	// Endpoint is "query" or "sparql".
	Endpoint string `json:"endpoint"`
	// Query is the program or SPARQL text, truncated to a bounded length.
	Query string `json:"query"`
	// QueryTruncated is true when Query was cut at the capture limit.
	QueryTruncated bool `json:"query_truncated,omitempty"`
	// Status is the HTTP status the request got.
	Status int `json:"status"`
	// QueueWaitUS is the time spent waiting for an admission slot.
	QueueWaitUS int64 `json:"queue_wait_us"`
	// ExecUS is the evaluation time (parse + chase + decode, with retries).
	ExecUS int64 `json:"exec_us"`
	// TotalUS is the whole request (queue wait + execution).
	TotalUS int64 `json:"total_us"`
	// Incomplete / Truncation report a budget-truncated answer set.
	Incomplete bool               `json:"incomplete,omitempty"`
	Truncation *limits.Truncation `json:"truncation,omitempty"`
	// Error carries the failure message of non-200 outcomes.
	Error string `json:"error,omitempty"`
	// Explain is the per-query telemetry report, present when the server
	// computed one for this request (slowlog enabled or explain requested).
	Explain *repro.ExplainReport `json:"explain,omitempty"`
	// TraceID links the entry to its request trace (/debug/trace?id=...),
	// present when tracing is enabled.
	TraceID string `json:"trace_id,omitempty"`
	// Resources is the request's resource account (wall/queue/exec time,
	// chase and prover work, heap allocation delta).
	Resources *obs.Account `json:"resources,omitempty"`
	// ProfileCPU / ProfileHeap name pprof files captured by the slow-query
	// auto-profiler for this request, when it tripped.
	ProfileCPU  string `json:"profile_cpu,omitempty"`
	ProfileHeap string `json:"profile_heap,omitempty"`
	// Epoch, Batch, and WALSyncWaitUS describe mutation entries: the epoch
	// the batch committed, the triples in the batch, and how long the commit
	// waited on the WAL fsync (from the store's epoch timeline; absent under
	// interval/none sync).
	Epoch         uint64 `json:"epoch,omitempty"`
	Batch         int    `json:"batch,omitempty"`
	WALSyncWaitUS int64  `json:"wal_sync_wait_us,omitempty"`
}

// slowLog is the ring + sink behind /debug/slowlog.
type slowLog struct {
	cfg SlowLogConfig

	mu    sync.Mutex
	ring  []SlowEntry
	next  int
	total int64
}

func newSlowLog(cfg SlowLogConfig) *slowLog {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 128
	}
	return &slowLog{cfg: cfg, ring: make([]SlowEntry, 0, cfg.Capacity)}
}

// enabled is nil-safe.
func (l *slowLog) enabled() bool { return l != nil }

// maybeRecord records the entry iff its total time meets the threshold.
// Called exactly once per request, so an over-threshold query produces
// exactly one entry.
func (l *slowLog) maybeRecord(e SlowEntry) {
	if l == nil || time.Duration(e.TotalUS)*time.Microsecond < l.cfg.Threshold {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % cap(l.ring)
	}
	if l.cfg.Sink != nil {
		b, err := json.Marshal(e)
		if err == nil {
			b = append(b, '\n')
			_, _ = l.cfg.Sink.Write(b)
		}
	}
}

// entries returns the retained entries oldest-first plus the all-time count
// (which exceeds len(entries) once the ring has wrapped).
func (l *slowLog) entries() ([]SlowEntry, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
	} else {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	}
	return out, l.total
}

// truncateQuery bounds the captured query text.
func truncateQuery(q string) (string, bool) {
	if len(q) <= maxSlowQueryLen {
		return q, false
	}
	return q[:maxSlowQueryLen], true
}
