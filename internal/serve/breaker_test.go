package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives the breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	b := newBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func mustAllow(t *testing.T, b *breaker) func(bool) {
	t.Helper()
	done, err := b.allow()
	if err != nil {
		t.Fatalf("allow: %v (state %s)", err, b.snapshot())
	}
	return done
}

func TestBreakerOpensOnFailureRatio(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 8, MinSamples: 4, FailureRatio: 0.5, OpenFor: time.Second, HalfOpenProbes: 1})
	// Three failures out of four samples: 0.75 ≥ 0.5 → open.
	mustAllow(t, b)(false)
	mustAllow(t, b)(true)
	mustAllow(t, b)(true)
	if b.snapshot() == "open" {
		t.Fatal("breaker tripped before MinSamples")
	}
	mustAllow(t, b)(true)
	if got := b.snapshot(); got != "open" {
		t.Fatalf("state = %s, want open", got)
	}
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker must shed, got %v", err)
	}
}

func TestBreakerHalfOpenThenCloses(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Window: 8, MinSamples: 2, FailureRatio: 0.5, OpenFor: time.Second, HalfOpenProbes: 2})
	mustAllow(t, b)(true)
	mustAllow(t, b)(true)
	if got := b.snapshot(); got != "open" {
		t.Fatalf("state = %s, want open", got)
	}

	// Before OpenFor elapses: still shedding.
	clk.advance(500 * time.Millisecond)
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker probed too early: %v", err)
	}

	// After OpenFor: exactly HalfOpenProbes probes pass, the rest shed.
	clk.advance(600 * time.Millisecond)
	p1 := mustAllow(t, b)
	p2 := mustAllow(t, b)
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker admitted more than HalfOpenProbes probes: %v", err)
	}
	p1(false)
	if got := b.snapshot(); got != "half-open" {
		t.Fatalf("state after one good probe = %s, want half-open", got)
	}
	p2(false)
	if got := b.snapshot(); got != "closed" {
		t.Fatalf("state after full probe set = %s, want closed", got)
	}
	mustAllow(t, b)(false) // closed again: traffic flows
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Window: 8, MinSamples: 2, FailureRatio: 0.5, OpenFor: time.Second, HalfOpenProbes: 1})
	mustAllow(t, b)(true)
	mustAllow(t, b)(true)
	clk.advance(1100 * time.Millisecond)
	probe := mustAllow(t, b)
	probe(true)
	if got := b.snapshot(); got != "open" {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	// Reopen backs off: 1s was not enough the second time (OpenFor doubled).
	clk.advance(1100 * time.Millisecond)
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened breaker must back off longer than the first open")
	}
	clk.advance(time.Second)
	if done, err := b.allow(); err != nil {
		t.Fatalf("probe after backoff: %v", err)
	} else {
		done(false)
	}
	if got := b.snapshot(); got != "closed" {
		t.Fatalf("state = %s, want closed", got)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Disabled: true})
	for i := 0; i < 100; i++ {
		done, err := b.allow()
		if err != nil {
			t.Fatal(err)
		}
		done(true)
	}
	if got := b.snapshot(); got != "disabled" {
		t.Fatalf("state = %s, want disabled", got)
	}
}
