package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/slo"
	"repro/internal/store"
)

// The write-pipeline observability surface: mutation slow-log entries carry
// the committed epoch, batch size, and WAL-sync wait; GET /debug/epochs
// exposes the store's per-stage epoch timeline; GET /debug/alerts serves the
// SLO watchdog (with breach annotations pinning traces); and a sampled
// traceparent on an insert propagates across replication so the replica's
// trace store holds the distributed repl.apply span.

func TestMutationSlowlogRecordsEpochBatchAndWALWait(t *testing.T) {
	_, st, ts := newStoreServer(t,
		Config{SlowLog: SlowLogConfig{Threshold: time.Nanosecond}},
		store.Config{Dir: t.TempDir(), CheckpointEvery: -1})
	base := st.Current().Seq

	status, body := postMutation(t, ts.URL+"/insert", MutationRequest{
		Triples: "Shuttle partOf TheAirline .\nFerry partOf TheAirline .\n",
	})
	if status != http.StatusOK {
		t.Fatalf("insert = %d, body %s", status, body)
	}
	var mr MutationResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.TraceID == "" {
		t.Fatalf("mutation ack carries no trace id: %+v", mr)
	}

	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var log struct {
		Entries []SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		t.Fatal(err)
	}
	var entry *SlowEntry
	for i := range log.Entries {
		if log.Entries[i].Endpoint == "insert" {
			entry = &log.Entries[i]
		}
	}
	if entry == nil {
		t.Fatalf("no insert entry in slowlog: %+v", log.Entries)
	}
	if entry.Epoch != base+1 || entry.Batch != 2 {
		t.Fatalf("slowlog entry epoch/batch = %d/%d, want %d/2", entry.Epoch, entry.Batch, base+1)
	}
	if entry.TraceID != mr.TraceID {
		t.Fatalf("slowlog trace id %q != ack trace id %q", entry.TraceID, mr.TraceID)
	}
	// SyncAlways: the fsync stamp exists, so the wait is attributable
	// (it may round to 0µs on a fast disk, but must not be negative).
	if entry.WALSyncWaitUS < 0 {
		t.Fatalf("negative WAL-sync wait: %+v", entry)
	}
}

func TestDebugEpochsExposesPipelineStages(t *testing.T) {
	_, st, ts := newStoreServer(t, Config{}, store.Config{Dir: t.TempDir(), CheckpointEvery: -1})

	status, body := postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "a partOf b .\n"})
	if status != http.StatusOK {
		t.Fatalf("insert = %d, body %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/debug/epochs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Epoch  uint64 `json:"epoch"`
		Epochs []struct {
			Epoch  uint64           `json:"epoch"`
			Stages map[string]int64 `json:"stages"`
		} `json:"epochs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != st.Current().Seq {
		t.Fatalf("current epoch = %d, store at %d", out.Epoch, st.Current().Seq)
	}
	var found bool
	for _, row := range out.Epochs {
		if row.Epoch != st.Current().Seq {
			continue
		}
		found = true
		for _, stage := range []string{"start", "append", "sync", "commit"} {
			if row.Stages[stage] == 0 {
				t.Fatalf("epoch %d missing stage %q: %v", row.Epoch, stage, row.Stages)
			}
		}
	}
	if !found {
		t.Fatalf("committed epoch %d not in timeline: %+v", st.Current().Seq, out.Epochs)
	}
}

func TestDebugEpochsWithoutStoreIs404(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/epochs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/epochs without store = %d, want 404", resp.StatusCode)
	}
}

func TestDebugAlertsServesWatchdogAndPinsTraces(t *testing.T) {
	srv, _, ts := newStoreServer(t, Config{}, store.Config{})

	// Without a watchdog the endpoint reports disabled, not an error.
	var out struct {
		Enabled bool        `json:"enabled"`
		Firing  int         `json:"firing"`
		Alerts  []slo.Alert `json:"alerts"`
	}
	getAlerts := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/alerts")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out = struct {
			Enabled bool        `json:"enabled"`
			Firing  int         `json:"firing"`
			Alerts  []slo.Alert `json:"alerts"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	getAlerts()
	if out.Enabled || len(out.Alerts) != 0 {
		t.Fatalf("alerts without watchdog = %+v", out)
	}

	// Seed the trace store with a recorded request (sampled traceparent) so
	// the breach hook has something to pin.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query",
		bytes.NewReader(mustJSON(t, QueryRequest{Program: testProgram})))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query = %d", resp.StatusCode)
	}

	// A watchdog over a hand-fed registry, installed on the live server, with
	// the server's own breach hook. A sustained saturated error ratio fires
	// after the fake clock walks both windows.
	reg := obs.NewRegistry()
	now := time.Unix(5000, 0)
	wd, err := slo.New(slo.Config{
		Objectives: []slo.Objective{{
			Name: "error_rate", Kind: slo.KindRatio,
			Bad: "errs", Total: "reqs", Threshold: 0.01,
			Description: "request error rate burning the budget",
		}},
		Interval: time.Second, FastWindow: 3 * time.Second, SlowWindow: 9 * time.Second,
		Source:   func() *obs.Registry { return reg },
		OnBreach: srv.OnSLOBreach,
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetSLO(wd)
	for i := 0; i < 12; i++ {
		reg.Add("reqs", 100)
		reg.Add("errs", 100)
		now = now.Add(time.Second)
		wd.Tick()
	}

	getAlerts()
	if !out.Enabled || out.Firing != 1 || len(out.Alerts) != 1 {
		t.Fatalf("alerts after breach = %+v", out)
	}
	a := out.Alerts[0]
	if a.Name != "error_rate" || a.State != "firing" || a.Fires != 1 {
		t.Fatalf("alert = %+v", a)
	}
	if len(a.TraceIDs) == 0 {
		t.Fatalf("breach pinned no traces: %+v", a)
	}
	// The pinned trace is the recorded one and survives in /debug/trace.
	if tr := srv.TraceStore().Get(a.TraceIDs[0]); tr == nil || !tr.Pinned() {
		t.Fatalf("pinned trace %q not retained/pinned", a.TraceIDs[0])
	}

	// Recovery clears through the same endpoint.
	for i := 0; i < 6; i++ {
		reg.Add("reqs", 100)
		now = now.Add(time.Second)
		wd.Tick()
	}
	getAlerts()
	if out.Firing != 0 || out.Alerts[0].State != "cleared" {
		t.Fatalf("alerts after recovery = %+v", out)
	}
}

// newTracedPair is newPair with a replica-side trace store wired in, so
// shipped trace sidecars land replica-apply spans.
func newTracedPair(t *testing.T) (pri *httptest.Server, priStore, repStore *store.Store, traces *obs.TraceStore) {
	t.Helper()
	var priSrv *Server
	priSrv, priStore, pri = newStoreServer(t, Config{}, store.Config{})
	_ = priSrv

	repObs := obs.New()
	var err error
	repStore, _, err = store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repStore.Close() })

	traces = obs.NewTraceStore(64, "triq-replica")
	replica := repl.New(repl.Config{
		Primary: pri.URL, Store: repStore, Obs: repObs,
		Backoff: 5 * time.Millisecond,
		Traces:  traces, TraceSeed: 42,
	})
	replica.Start(context.Background())
	t.Cleanup(replica.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := repStore.WaitEpoch(ctx, priStore.Current().Seq); err != nil {
		t.Fatalf("replica never caught up: %v", err)
	}
	return pri, priStore, repStore, traces
}

func TestTracePropagatesAcrossReplication(t *testing.T) {
	pri, _, repStore, traces := newTracedPair(t)

	const tid = "00112233445566778899aabbccddeeff"
	req, _ := http.NewRequest(http.MethodPost, pri.URL+"/insert",
		bytes.NewReader(mustJSON2(t, MutationRequest{Triples: "Shuttle partOf TheAirline .\n"})))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+tid+"-0123456789abcdef-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced insert = %d, body %s", resp.StatusCode, body)
	}
	var mr MutationResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.TraceID != tid {
		t.Fatalf("ack trace id = %q, want the client's %q", mr.TraceID, tid)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := repStore.WaitEpoch(ctx, mr.Epoch); err != nil {
		t.Fatalf("replica never applied epoch %d: %v", mr.Epoch, err)
	}
	// The apply span is stored right after the epoch swap; poll briefly.
	var tr *obs.Trace
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if tr = traces.Get(tid); tr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tr == nil {
		t.Fatalf("replica trace store has no trace %s", tid)
	}
	var apply *obs.TraceSpan
	spans := tr.Spans()
	for i := range spans {
		if spans[i].Name == "repl.apply" {
			apply = &spans[i]
		}
	}
	if apply == nil {
		t.Fatalf("no repl.apply span in replica trace: %+v", spans)
	}
	// The span joins the client's trace with the primary's span as remote
	// parent — a stitched distributed tree, not an orphan.
	if apply.Parent.IsZero() {
		t.Fatalf("repl.apply span has no remote parent: %+v", apply)
	}
	if apply.End.IsZero() {
		t.Fatalf("repl.apply span never closed: %+v", apply)
	}
}

func TestStalenessWaitHeaderOnBoundedReads(t *testing.T) {
	_, st, ts := newStoreServer(t, Config{}, store.Config{})
	base := st.Current().Seq

	// The read demands an epoch that does not exist yet; a concurrent write
	// commits it shortly after, so the read waits, succeeds, and reports the
	// time bounded staleness cost it.
	go func() {
		time.Sleep(30 * time.Millisecond)
		postMutation(t, ts.URL+"/insert", MutationRequest{Triples: "late partOf write .\n"})
	}()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query",
		bytes.NewReader(mustJSON(t, QueryRequest{Program: testProgram})))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Triq-Min-Epoch", strconv.FormatUint(base+1, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bounded read = %d", resp.StatusCode)
	}
	h := resp.Header.Get("X-Triq-Staleness-Wait-US")
	if h == "" {
		t.Fatal("no X-Triq-Staleness-Wait-US header on a waiting min-epoch read")
	}
	if us, err := strconv.ParseInt(h, 10, 64); err != nil || us <= 0 {
		t.Fatalf("staleness-wait header = %q (err %v), want a positive wait", h, err)
	}
}
