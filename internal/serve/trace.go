package serve

import (
	"context"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Request-scoped tracing for the HTTP server. Every request gets a Trace
// carrying its resource account; a head-sampled fraction (or any request
// arriving with a sampled W3C traceparent) additionally records the full
// span tree. Finished traces land in an in-memory store served at
// /debug/trace, where tail sampling keeps slow traces preferentially. The
// request's traceparent is honored on the way in and echoed on the way out,
// so callers can stitch the server's tree under their own spans.

// TraceConfig configures request tracing. The zero value enables tracing
// with defaults; set Disable to turn it off.
type TraceConfig struct {
	// Sample is the head-sampling rate in [0, 1] — the fraction of requests
	// whose full span tree is recorded (default 0.1). Requests arriving with
	// the traceparent sampled flag are always recorded regardless. Every
	// request, sampled or not, still gets a resource account.
	Sample float64
	// Capacity bounds the in-memory trace store (default 256).
	Capacity int
	// Seed seeds trace-id generation and the sampler; 0 derives a seed from
	// the clock. A fixed seed makes sampling decisions reproducible.
	Seed int64
	// MaxSpans caps recorded spans per trace (default obs.DefaultMaxSpans).
	MaxSpans int
	// Disable turns request tracing off entirely: no store, no traceparent
	// echo, no accounts.
	Disable bool
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Sample == 0 {
		c.Sample = 0.1
	}
	if c.Sample < 0 {
		c.Sample = 0
	}
	return c
}

// tracer is the server-wide tracing state.
type tracer struct {
	cfg     TraceConfig
	ids     *obs.IDSource
	sampler *obs.Sampler
	store   *obs.TraceStore
	obs     *obs.Obs
	slow    time.Duration // slowlog threshold, for MarkSlow tail sampling
}

func newTracer(cfg TraceConfig, o *obs.Obs, slowThreshold time.Duration) *tracer {
	if cfg.Disable {
		return nil
	}
	cfg = cfg.withDefaults()
	return &tracer{
		cfg:     cfg,
		ids:     obs.NewIDSource(cfg.Seed),
		sampler: obs.NewSampler(cfg.Sample, cfg.Seed),
		store:   obs.NewTraceStore(cfg.Capacity, "triqd"),
		obs:     o,
		slow:    slowThreshold,
	}
}

// reqTrace bundles one request's trace state. A nil *reqTrace (tracing
// disabled) is a no-op everywhere.
type reqTrace struct {
	t       *tracer
	tr      *obs.Trace
	root    *obs.Span
	rootSID obs.SpanID
	heap0   int64
	done    bool
}

// start opens a request trace: parse the incoming traceparent (its trace id
// is adopted and its sampled flag forces recording), make the head-sampling
// decision, open the "serve.request" root span, and set the response
// traceparent header so even shed requests are traceable by the caller.
func (t *tracer) start(w http.ResponseWriter, r *http.Request, endpoint string) *reqTrace {
	if t == nil {
		return nil
	}
	var tid obs.TraceID
	var remote obs.SpanID
	forced := false
	if h := r.Header.Get("traceparent"); h != "" {
		if ptid, psid, flags, err := obs.ParseTraceparent(h); err == nil {
			tid, remote = ptid, psid
			forced = flags&obs.FlagSampled != 0
		}
	}
	if tid.IsZero() {
		tid = t.ids.TraceID()
	}
	tr := obs.NewTrace(tid, t.ids, forced || t.sampler.Sampled(tid))
	tr.SetMaxSpans(t.cfg.MaxSpans)
	tr.SetRemoteParent(remote)

	rt := &reqTrace{t: t, tr: tr, heap0: obs.HeapAllocBytes()}
	ctx := obs.ContextWithTrace(context.Background(), tr)
	_, rt.root = obs.StartSpan(ctx, t.obs, "serve.request", obs.F("endpoint", endpoint))
	if rt.rootSID = rt.root.TraceSpanID(); rt.rootSID.IsZero() {
		rt.rootSID = t.ids.SpanID() // non-recording: still a valid parent id for the echo
	}
	var flags byte
	if tr.Recording() {
		flags = obs.FlagSampled
	}
	w.Header().Set("traceparent", obs.FormatTraceparent(tid, rt.rootSID, flags))
	return rt
}

// bind attaches the trace and its root span to the request context so every
// StartSpan/Span call downstream joins the tree.
func (rt *reqTrace) bind(ctx context.Context) context.Context {
	if rt == nil {
		return ctx
	}
	ctx = obs.ContextWithTrace(ctx, rt.tr)
	return obs.ContextWithSpan(ctx, rt.root)
}

// span opens a child of the root span (e.g. "serve.admission").
func (rt *reqTrace) span(name string, kv ...obs.KV) *obs.Span {
	if rt == nil {
		return nil
	}
	return rt.root.Span(name, kv...)
}

// traceparent renders the trace context a mutation hands to the store: the
// request's trace id with this request's root span as parent, sampled iff
// the trace is recording. The replication stream ships it so the replica's
// apply span joins the client's distributed trace.
func (rt *reqTrace) traceparent() string {
	if rt == nil {
		return ""
	}
	var flags byte
	if rt.tr.Recording() {
		flags = obs.FlagSampled
	}
	return obs.FormatTraceparent(rt.tr.ID(), rt.rootSID, flags)
}

// traceID returns the hex trace id ("" when tracing is off).
func (rt *reqTrace) traceID() string {
	if rt == nil {
		return ""
	}
	return rt.tr.ID().String()
}

// account returns a snapshot of the request's resource account.
func (rt *reqTrace) account() obs.Account {
	if rt == nil {
		return obs.Account{}
	}
	return rt.tr.Account()
}

// finish closes the root span, fills the timing and heap fields of the
// account, applies the slow tail-sampling mark, and files the trace in the
// store. Idempotent so shed paths and the main path can both call it.
func (rt *reqTrace) finish(status int, queueWait, exec, total time.Duration) {
	if rt == nil || rt.done {
		return
	}
	rt.done = true
	rt.root.End(obs.F("status", status))
	rt.tr.SetTimes(total.Microseconds(), queueWait.Microseconds(), exec.Microseconds())
	rt.tr.SetHeapAlloc(obs.HeapAllocBytes() - rt.heap0)
	if rt.t.slow > 0 && total >= rt.t.slow {
		rt.tr.MarkSlow()
	}
	rt.tr.Finish()
	rt.t.store.Add(rt.tr)
}
