package serve

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/slo"
)

// SLO watchdog integration: triqd builds an slo.Watchdog over the server's
// own metrics registry (Source = MetricsRegistry, OnBreach = OnSLOBreach)
// and installs it with SetSLO; the server serves its alert states at
// GET /debug/alerts and, on a fresh breach, captures profiles and pins the
// implicated traces so the evidence outlives the buffer.

// maxPinnedPerAlert bounds how many traces one breach pins; pinned traces
// are eviction-exempt, so an alert storm must not freeze the whole store.
const maxPinnedPerAlert = 3

// SetSLO installs the burn-rate watchdog behind GET /debug/alerts. The
// caller owns the watchdog's lifecycle (Start/Stop).
func (s *Server) SetSLO(wd *slo.Watchdog) {
	s.mu.Lock()
	s.watch = wd
	s.mu.Unlock()
}

func (s *Server) sloNow() *slo.Watchdog {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.watch
}

// MetricsRegistry returns the live registry with the point-in-time gauges
// (store epoch, replica lag, breaker states, ...) refreshed — the same view
// /metrics scrapes. The SLO watchdog samples through it so gauge objectives
// like repl.lag_seconds see current values even between scrapes.
func (s *Server) MetricsRegistry() *obs.Registry { return s.metricsRegistry() }

// TraceStore exposes the request-trace store (nil when tracing is disabled)
// so replica wiring can land replicated-apply spans in the same store
// /debug/trace serves.
func (s *Server) TraceStore() *obs.TraceStore {
	if s.traces == nil {
		return nil
	}
	return s.traces.store
}

// OnSLOBreach is the slo.Config.OnBreach hook: force an auto-profile
// capture (rate limits still apply) and pin the most recent slow or
// recorded traces so the evidence is still at /debug/trace when the
// operator follows the alert's links.
func (s *Server) OnSLOBreach(a slo.Alert) slo.Annotation {
	var ann slo.Annotation
	ann.ProfileCPU, ann.ProfileHeap = s.autoprof.forceCapture("slo-" + a.Name)
	if s.traces != nil {
		rows, _, _ := s.traces.store.List() // newest first
		for _, row := range rows {
			if len(ann.TraceIDs) >= maxPinnedPerAlert {
				break
			}
			if (row.Slow || row.Recording) && s.traces.store.Pin(row.TraceID) {
				ann.TraceIDs = append(ann.TraceIDs, row.TraceID)
			}
		}
	}
	return ann
}

// serveAlerts renders GET /debug/alerts.
func (s *Server) serveAlerts(w http.ResponseWriter) {
	wd := s.sloNow()
	if wd == nil {
		writeJSON(w, http.StatusOK, struct {
			Enabled bool        `json:"enabled"`
			Firing  int         `json:"firing"`
			Alerts  []slo.Alert `json:"alerts"`
		}{false, 0, []slo.Alert{}})
		return
	}
	alerts := wd.Alerts()
	if alerts == nil {
		alerts = []slo.Alert{}
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled bool        `json:"enabled"`
		Firing  int         `json:"firing"`
		Alerts  []slo.Alert `json:"alerts"`
	}{true, wd.Firing(), alerts})
}
