package serve

import (
	"sync"
	"time"
)

// A circuit breaker per endpoint keeps a persistently failing evaluation
// path from burning evaluation slots on requests that will fail anyway.
// Standard three-state machine:
//
//	closed    — outcomes are recorded in a sliding window; when the window
//	            holds enough samples and the failure ratio crosses the
//	            threshold, the breaker opens.
//	open      — every request is shed (ErrBreakerOpen) until OpenFor has
//	            elapsed, then the breaker moves to half-open.
//	half-open — up to HalfOpenProbes requests are let through as probes; one
//	            failed probe reopens the breaker, a full set of successful
//	            probes closes it and resets the window.
//
// Only failures the server itself caused count toward the ratio — internal
// errors and deadline blowouts. Shed requests never reach the breaker, and
// client errors (400s) and graceful truncation record as successes.

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// Disabled turns the breaker off entirely (every Allow succeeds).
	Disabled bool
	// Window is the sliding outcome window size (default 32).
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// breaker may trip (default 8).
	MinSamples int
	// FailureRatio opens the breaker when failures/window ≥ ratio
	// (default 0.5).
	FailureRatio float64
	// OpenFor is how long the breaker stays open before probing
	// (default 2s). It doubles on every consecutive reopen, capped at 8×.
	OpenFor time.Duration
	// HalfOpenProbes is how many successful probes close the breaker
	// (default 2).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	return c
}

type breakerState int

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one endpoint's circuit breaker. The clock is injectable so the
// state machine is testable without sleeping.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    breakerState
	ring     []bool // true = failure
	idx      int
	filled   int
	failures int
	openedAt time.Time
	reopens  int // consecutive open transitions, for backoff of OpenFor
	probes   int // probes admitted in half-open
	probeOK  int // successful probes in half-open
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, now: time.Now, ring: make([]bool, cfg.Window)}
}

// allow asks the breaker whether a request may proceed. It returns a done
// callback to report the outcome (done(false) = server-fault failure), or
// ErrBreakerOpen. done is nil exactly when err is non-nil.
func (b *breaker) allow() (done func(failure bool), err error) {
	if b == nil || b.cfg.Disabled {
		return func(bool) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stOpen:
		if b.now().Sub(b.openedAt) < b.openFor() {
			return nil, ErrBreakerOpen
		}
		b.state = stHalfOpen
		b.probes, b.probeOK = 0, 0
		fallthrough
	case stHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return nil, ErrBreakerOpen
		}
		b.probes++
		return b.recordProbe, nil
	default:
		return b.record, nil
	}
}

// openFor is the current open interval: the configured OpenFor doubled per
// consecutive reopen, capped at 8×. Called under b.mu.
func (b *breaker) openFor() time.Duration {
	d := b.cfg.OpenFor
	for i := 1; i < b.reopens && d < 8*b.cfg.OpenFor; i++ {
		d *= 2
	}
	if d > 8*b.cfg.OpenFor {
		d = 8 * b.cfg.OpenFor
	}
	return d
}

// record folds a closed-state outcome into the window and trips the breaker
// when the failure ratio crosses the threshold.
func (b *breaker) record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stClosed {
		// A stale outcome from before a transition; half-open accounting is
		// handled by recordProbe.
		return
	}
	if b.filled == len(b.ring) && b.ring[b.idx] {
		b.failures--
	}
	b.ring[b.idx] = failure
	b.idx = (b.idx + 1) % len(b.ring)
	if b.filled < len(b.ring) {
		b.filled++
	}
	if failure {
		b.failures++
	}
	if b.filled >= b.cfg.MinSamples &&
		float64(b.failures) >= b.cfg.FailureRatio*float64(b.filled) {
		b.trip()
	}
}

// recordProbe folds a half-open probe outcome: any failure reopens, a full
// set of successes closes and resets the window.
func (b *breaker) recordProbe(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stHalfOpen {
		return
	}
	if failure {
		b.trip()
		return
	}
	b.probeOK++
	if b.probeOK >= b.cfg.HalfOpenProbes {
		b.state = stClosed
		b.reopens = 0
		b.reset()
	}
}

// trip opens the breaker and clears the window. Called under b.mu.
func (b *breaker) trip() {
	b.state = stOpen
	b.openedAt = b.now()
	b.reopens++
	b.reset()
}

// reset clears the outcome window. Called under b.mu.
func (b *breaker) reset() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.idx, b.filled, b.failures = 0, 0, 0
}

// snapshot reports the state name (for /metrics).
func (b *breaker) snapshot() string {
	if b == nil || b.cfg.Disabled {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
