package workload

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/datalog"
)

// This file implements the apparatus of Theorem 6.15: alternating Turing
// machines with linearly bounded tape, a direct simulator (the ground-truth
// oracle), and the reduction to warded Datalog^∃ with minimal interaction —
// the fixed machine-independent program ATMProgram and the machine-dependent
// database ATMDatabase.

// StateKind classifies ATM states.
type StateKind int

const (
	// Existential states accept when some successor accepts.
	Existential StateKind = iota
	// Universal states accept when all successors accept.
	Universal
	// Accepting is the accepting halt state s_a.
	Accepting
	// Rejecting is the rejecting halt state s_r.
	Rejecting
)

// Move is one branch of a transition: write Write, switch to State, move the
// cursor by Dir (-1 left, +1 right).
type Move struct {
	State string
	Write string
	Dir   int
}

// ATM is an alternating Turing machine M = (S, Λ, δ, s0) with the binary
// transition relation shape of Theorem 6.15: δ(s, α) yields exactly two
// branches (deterministic machines duplicate the branch).
type ATM struct {
	States map[string]StateKind
	Start  string
	Blank  string
	Delta  map[[2]string][2]Move
}

// Accepts simulates the machine on the input within a linear tape of
// len(input) cells, bounded by maxSteps computation-tree depth. Branches
// that run off the tape, exceed the depth, or revisit a configuration along
// the current path reject (a finite accepting computation tree never needs
// repeats).
func (m *ATM) Accepts(input []string, maxSteps int) bool {
	type cfg struct {
		state string
		pos   int
		tape  string
	}
	join := func(tape []string) string {
		out := ""
		for _, s := range tape {
			out += s + "\x00"
		}
		return out
	}
	tape := append([]string(nil), input...)
	memo := make(map[cfg]bool)
	var rec func(state string, pos int, tape []string, path map[cfg]bool, depth int) bool
	rec = func(state string, pos int, tape []string, path map[cfg]bool, depth int) bool {
		switch m.States[state] {
		case Accepting:
			return true
		case Rejecting:
			return false
		}
		if depth >= maxSteps || pos < 0 || pos >= len(tape) {
			return false
		}
		c := cfg{state, pos, join(tape)}
		if v, ok := memo[c]; ok {
			return v
		}
		if path[c] {
			return false
		}
		path[c] = true
		defer delete(path, c)
		moves, ok := m.Delta[[2]string{state, tape[pos]}]
		if !ok {
			return false
		}
		branch := func(mv Move) bool {
			np := pos + mv.Dir
			if np < 0 || np >= len(tape) {
				return false
			}
			old := tape[pos]
			tape[pos] = mv.Write
			res := rec(mv.State, np, tape, path, depth+1)
			tape[pos] = old
			return res
		}
		var res bool
		if m.States[state] == Existential {
			res = branch(moves[0]) || branch(moves[1])
		} else {
			res = branch(moves[0]) && branch(moves[1])
		}
		memo[c] = res
		return res
	}
	return rec(m.Start, 0, tape, make(map[cfg]bool), 0)
}

// ATMProgramSrc is the fixed warded-with-minimal-interaction program of
// Theorem 6.15. It does not depend on the machine; the machine lives in the
// database (ATMDatabase). Cursor directions are the constants left/right,
// and the acceptance condition reads the machine's accepting states from the
// database predicate accepting(·), keeping the program machine-independent.
const ATMProgramSrc = `
	% Configuration tree generation.
	config(?V) -> exists ?V1 exists ?V2
		succ(?V, ?V1, ?V2), config(?V1), config(?V2),
		follows(?V, ?V1), follows(?V, ?V2).

	% The state-cursor-symbol join (the auxiliary predicates that keep the
	% transition rules warded with minimal interaction).
	state(?S, ?V), cursor(?C, ?V) -> statecursor(?S, ?C, ?V).
	statecursor(?S, ?C, ?V), symbol(?A, ?C, ?V) -> scs(?S, ?C, ?A, ?V).

	% Transition rules, one per cursor-direction combination.
	trans(?S, ?A, ?S1, ?A1, left, ?S2, ?A2, left),
		succ(?V, ?V1, ?V2), scs(?S, ?C, ?A, ?V),
		nextcell(?C1, ?C) ->
		state(?S1, ?V1), state(?S2, ?V2),
		symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
		cursor(?C1, ?V1), cursor(?C1, ?V2).
	trans(?S, ?A, ?S1, ?A1, left, ?S2, ?A2, right),
		succ(?V, ?V1, ?V2), scs(?S, ?C, ?A, ?V),
		nextcell(?C1, ?C), nextcell(?C, ?C2) ->
		state(?S1, ?V1), state(?S2, ?V2),
		symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
		cursor(?C1, ?V1), cursor(?C2, ?V2).
	trans(?S, ?A, ?S1, ?A1, right, ?S2, ?A2, left),
		succ(?V, ?V1, ?V2), scs(?S, ?C, ?A, ?V),
		nextcell(?C1, ?C), nextcell(?C, ?C2) ->
		state(?S1, ?V1), state(?S2, ?V2),
		symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
		cursor(?C2, ?V1), cursor(?C1, ?V2).
	trans(?S, ?A, ?S1, ?A1, right, ?S2, ?A2, right),
		succ(?V, ?V1, ?V2), scs(?S, ?C, ?A, ?V),
		nextcell(?C, ?C2) ->
		state(?S1, ?V1), state(?S2, ?V2),
		symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2),
		cursor(?C2, ?V1), cursor(?C2, ?V2).

	% Cells not under the cursor keep their symbols in both successors.
	scs(?S, ?C, ?A, ?V), neq(?C, ?D), symbol(?B, ?D, ?V) -> nextsym(?B, ?D, ?V).
	follows(?V, ?V1), nextsym(?B, ?D, ?V) -> symbol(?B, ?D, ?V1).

	% Acceptance propagation.
	state(?S, ?V), accepting(?S) -> accept(?V).
	follows(?V, ?V1), state(?S, ?V) -> prevstate(?S, ?V1).
	succ(?V, ?V1, ?V2), accept(?V2) -> sibaccept(?V1).
	succ(?V, ?V1, ?V2), accept(?V1) -> sibaccept(?V2).
	accept(?V), sibaccept(?V) -> bothaccept(?V).
	prevstate(?S, ?V), existential(?S), accept(?V) -> prevaccept(?V).
	prevstate(?S, ?V), universal(?S), bothaccept(?V) -> prevaccept(?V).
	follows(?V, ?V1), prevaccept(?V1) -> accept(?V).
	accept(?V), init(?V) -> accepted(?V).
`

// ATMProgram parses the fixed program.
func ATMProgram() *datalog.Program { return datalog.MustParse(ATMProgramSrc) }

// ATMQuery is the fixed query (Π, accepted); M accepts on input I iff
// accepted(ι) is derivable over ATMDatabase(M, I).
func ATMQuery() datalog.Query {
	return datalog.NewQuery(ATMProgram(), "accepted")
}

// ATMDatabase builds D_M for the machine and input: the initial
// configuration ι, the tape layout, and the transition table.
func (m *ATM) ATMDatabase(input []string) *chase.Instance {
	db := chase.NewInstance(
		atom("config", "ι"),
		atom("init", "ι"),
		atom("state", m.Start, "ι"),
		atom("cursor", "cell0", "ι"),
	)
	n := len(input)
	for i, sym := range input {
		db.Add(atom("symbol", sym, cell(i), "ι"))
	}
	for i := 0; i+1 < n; i++ {
		db.Add(atom("nextcell", cell(i), cell(i+1)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				db.Add(atom("neq", cell(i), cell(j)))
			}
		}
	}
	for s, kind := range m.States {
		switch kind {
		case Existential:
			db.Add(atom("existential", s))
		case Universal:
			db.Add(atom("universal", s))
		case Accepting:
			db.Add(atom("accepting", s))
		}
	}
	for key, moves := range m.Delta {
		db.Add(atom("trans",
			key[0], key[1],
			moves[0].State, moves[0].Write, dir(moves[0].Dir),
			moves[1].State, moves[1].Write, dir(moves[1].Dir)))
	}
	return db
}

func cell(i int) string { return fmt.Sprintf("cell%d", i) }

func dir(d int) string {
	if d < 0 {
		return "left"
	}
	return "right"
}

// ParityATM builds a small alternating machine that accepts inputs over
// {0,1} whose number of 1s is even, sweeping right with existential states
// and finishing through a universal checkpoint. It exercises both state
// kinds and both cursor directions.
func ParityATM() *ATM {
	// evens/odds track the parity seen so far while moving right; at the
	// right end (marker $), even parity leads through a universal state to
	// acceptance (both branches accept trivially on the same cell).
	return &ATM{
		Start: "even",
		Blank: "_",
		States: map[string]StateKind{
			"even":  Existential,
			"odd":   Existential,
			"check": Universal,
			"yes":   Accepting,
			"no":    Rejecting,
		},
		Delta: map[[2]string][2]Move{
			{"even", "^"}:  {{State: "even", Write: "^", Dir: +1}, {State: "even", Write: "^", Dir: +1}},
			{"check", "^"}: {{State: "yes", Write: "^", Dir: +1}, {State: "yes", Write: "^", Dir: +1}},
			{"even", "0"}:  {{State: "even", Write: "0", Dir: +1}, {State: "even", Write: "0", Dir: +1}},
			{"even", "1"}:  {{State: "odd", Write: "1", Dir: +1}, {State: "odd", Write: "1", Dir: +1}},
			{"odd", "0"}:   {{State: "odd", Write: "0", Dir: +1}, {State: "odd", Write: "0", Dir: +1}},
			{"odd", "1"}:   {{State: "even", Write: "1", Dir: +1}, {State: "even", Write: "1", Dir: +1}},
			{"even", "$"}:  {{State: "check", Write: "$", Dir: -1}, {State: "check", Write: "$", Dir: -1}},
			{"odd", "$"}:   {{State: "no", Write: "$", Dir: -1}, {State: "no", Write: "$", Dir: -1}},
			{"check", "0"}: {{State: "yes", Write: "0", Dir: +1}, {State: "yes", Write: "0", Dir: +1}},
			{"check", "1"}: {{State: "yes", Write: "1", Dir: +1}, {State: "yes", Write: "1", Dir: +1}},
		},
	}
}

// ParityInput builds the tape for ParityATM: a ^ start marker, the bits,
// and the $ end marker.
func ParityInput(bits []int) []string {
	out := make([]string, 0, len(bits)+2)
	out = append(out, "^")
	for _, b := range bits {
		out = append(out, fmt.Sprintf("%d", b))
	}
	return append(out, "$")
}
