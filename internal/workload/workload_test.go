package workload

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/owl"
	"repro/internal/triq"
)

func TestTransportGenerator(t *testing.T) {
	db := Transport(3, 2, 4)
	// 3 lines × 3 legs = 9 city edges; 3 lines × 2 partOf levels = 6.
	if db.Len() != 15 {
		t.Errorf("facts = %d, want 15:\n%s", db.Len(), db)
	}
	n := TransportCityCount(3, 4)
	if n != 10 {
		t.Errorf("cities = %d, want 10", n)
	}
	res, err := triq.Eval(db, TransportQuery(), triq.TriQLite10, triq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All cities lie on one directed route: n(n-1)/2 ordered reachable pairs.
	want := n * (n - 1) / 2
	if len(res.Answers.Tuples) != want {
		t.Errorf("connections = %d, want %d", len(res.Answers.Tuples), want)
	}
	if !res.Answers.HasConstants("city_0", "city_9") {
		t.Error("end-to-end connection missing")
	}
}

func TestTransportQueryIsTriQLite(t *testing.T) {
	if err := triq.Validate(TransportQuery(), triq.TriQLite10); err != nil {
		t.Errorf("transport query should be TriQ-Lite 1.0: %v", err)
	}
}

func TestCliqueAgainstOracle(t *testing.T) {
	q := CliqueQuery()
	if err := triq.Validate(q, triq.TriQ10); err != nil {
		t.Fatalf("clique query should be TriQ 1.0: %v", err)
	}
	for seed := int64(0); seed < 6; seed++ {
		nodes, edges := RandomGraph(6, 0.4, seed)
		if seed%2 == 0 {
			edges = PlantClique(nodes, edges, 3)
		}
		for _, k := range []int{3, 4} {
			want := HasClique(nodes, edges, k)
			db := CliqueDB(k, nodes, edges)
			res, err := triq.Eval(db, q, triq.TriQ10, triq.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := len(res.Answers.Tuples) > 0
			if got != want {
				t.Errorf("seed %d k=%d: program=%v oracle=%v", seed, k, got, want)
			}
		}
	}
}

func TestHasCliqueOracle(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	triangle := [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}
	if !HasClique(nodes, triangle, 3) {
		t.Error("triangle not found")
	}
	if HasClique(nodes, triangle, 4) {
		t.Error("phantom 4-clique")
	}
	if !HasClique(nodes, nil, 1) {
		t.Error("every node is a 1-clique")
	}
	loop := [][2]string{{"a", "a"}, {"a", "b"}}
	if HasClique(nodes, loop, 3) {
		t.Error("self-loop must not fake a clique")
	}
}

func TestUGCPFamily(t *testing.T) {
	o := UGCP(4)
	if len(o.Axioms) != 6 {
		t.Errorf("axioms = %d, want 6:\n%s", len(o.Axioms), o)
	}
	r := owl.NewReasoner(o)
	// c gets a p-successor whose classes climb the whole chain.
	if !r.Member("c", owl.Some(owl.Prop("p"))) {
		t.Error("c ∈ ∃p missing")
	}
	if !r.SubClassOf(owl.Atom("a1"), owl.Atom("a4")) {
		t.Error("a1 ⊑ a4 missing")
	}
	if got := UGCPClasses(3); len(got) != 3 || got[2] != "a3" {
		t.Errorf("UGCPClasses = %v", got)
	}
}

func TestUGCPGroundConnectionGrows(t *testing.T) {
	// Lemma 6.5: the invented null is connected to n constants, so mgc grows
	// with n for the warded τ_owl2ql_core — the UGCP.
	prev := 0
	for _, n := range []int{2, 4, 8} {
		db, err := chase.FromFacts(owl.GraphToDB(UGCP(n).ToGraph()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := chase.Run(db, owl.Program().Positive(), chase.Options{MaxDepth: 6})
		if err != nil {
			t.Fatal(err)
		}
		mgc := MaxGroundConnection(res.Instance)
		if mgc < n {
			t.Errorf("n=%d: mgc = %d, want ≥ n", n, mgc)
		}
		if mgc <= prev {
			t.Errorf("n=%d: mgc = %d did not grow beyond %d", n, mgc, prev)
		}
		prev = mgc
	}
}

func TestNearlyFrontierGuardedBoundedGroundConnection(t *testing.T) {
	// Lemma 6.6: nearly-frontier-guarded programs have bounded mgc. The
	// frontier-guarded invention below connects each null only with the
	// constants of its creating atom, however long the chain grows.
	prog := datalog.MustParse(`
		e(?X, ?Y) -> exists ?Z f(?X, ?Y, ?Z).
		e(?X, ?Y), e(?Y, ?W) -> e(?X, ?W).
	`)
	if err := datalog.CheckNearlyFrontierGuarded(prog); err != nil {
		t.Fatalf("test program should be nearly frontier-guarded: %v", err)
	}
	var last int
	for _, n := range []int{4, 8, 16} {
		res, err := chase.Run(Chain(n), prog, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		last = MaxGroundConnection(res.Instance)
		if last > 2 {
			t.Errorf("n=%d: mgc = %d, want ≤ 2 (the creating atom's constants)", n, last)
		}
	}
}

func TestParityATMSimulator(t *testing.T) {
	m := ParityATM()
	cases := []struct {
		bits []int
		want bool
	}{
		{[]int{}, true},
		{[]int{1}, false},
		{[]int{1, 1}, true},
		{[]int{1, 0, 1}, true},
		{[]int{1, 1, 1}, false},
		{[]int{0, 0, 0}, true},
		{[]int{0, 1, 0, 0}, false},
	}
	for _, tc := range cases {
		if got := m.Accepts(ParityInput(tc.bits), 50); got != tc.want {
			t.Errorf("Accepts(%v) = %v, want %v", tc.bits, got, tc.want)
		}
	}
}

func TestATMProgramDialect(t *testing.T) {
	p := ATMProgram()
	// Theorem 6.15: the program is warded with minimal interaction…
	if err := datalog.CheckWardedMinimalInteraction(p); err != nil {
		t.Errorf("ATM program should be warded with minimal interaction: %v", err)
	}
	// …but not plain warded (that is the point of the relaxation).
	if err := datalog.CheckWarded(p); err == nil {
		t.Error("ATM program should NOT be plain warded")
	}
	if err := datalog.CheckDialect(p, datalog.WeaklyFrontierGuarded); err != nil {
		t.Errorf("ATM program should still be TriQ 1.0: %v", err)
	}
}

func TestATMReductionMatchesSimulator(t *testing.T) {
	m := ParityATM()
	q := ATMQuery()
	cases := [][]int{{}, {1}, {1, 1}, {1, 0}, {0, 1, 1}}
	for _, bits := range cases {
		input := ParityInput(bits)
		want := m.Accepts(input, 50)
		db := m.ATMDatabase(input)
		// The ATM program is outside the warded fragment, so ground
		// stabilization does not apply; run the chase to an explicit depth
		// comfortably beyond the machine's run length.
		prog := q.Program
		res, err := chase.Run(db, prog, chase.Options{MaxDepth: len(input) + 6})
		if err != nil {
			t.Fatal(err)
		}
		got := len(res.Instance.AtomsOf("accepted")) > 0
		if got != want {
			t.Errorf("bits=%v: reduction=%v simulator=%v", bits, got, want)
		}
	}
}

func TestUniversityOntology(t *testing.T) {
	o := University(2, 2, 2, false)
	r := owl.NewReasoner(o)
	if !r.Consistent() {
		t.Fatal("university ontology should be consistent")
	}
	// The head professor works for the department via headOf ⊑ worksFor.
	if !r.Role(owl.Prop("worksFor"), "prof_0_0", "dept0") {
		t.Error("headOf should imply worksFor")
	}
	// Advised students are students, hence persons.
	if !r.Member("stud_0_0_0", owl.Atom("student")) {
		t.Error("advisee should be a student")
	}
	if !r.Member("stud_0_0_0", owl.Atom("person")) {
		t.Error("student should be a person")
	}
	// Professors teach something (anonymous course witness).
	if !r.Member("prof_1_1", owl.Some(owl.Prop("teaches"))) {
		t.Error("professor should teach something")
	}
	if len(o.Individuals()) != 2+2*2+2*2*2 {
		t.Errorf("individuals = %d", len(o.Individuals()))
	}
	// Disjoint variant stays consistent on a clean ABox.
	if !owl.NewReasoner(University(1, 1, 1, true)).Consistent() {
		t.Error("disjoint variant should be consistent")
	}
}

func TestChainGenerator(t *testing.T) {
	db := Chain(3)
	if db.Len() != 3 {
		t.Errorf("Chain(3) = %d facts", db.Len())
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	n1, e1 := RandomGraph(10, 0.3, 7)
	n2, e2 := RandomGraph(10, 0.3, 7)
	if len(n1) != len(n2) || len(e1) != len(e2) {
		t.Error("RandomGraph not deterministic")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edge mismatch")
		}
	}
}
