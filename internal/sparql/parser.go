package sparql

import (
	"context"
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/rdf"
)

// QueryKind discriminates SELECT and CONSTRUCT queries.
type QueryKind int

const (
	// SelectQuery projects variable bindings.
	SelectQuery QueryKind = iota
	// ConstructQuery produces an RDF graph from a template.
	ConstructQuery
)

// Query is a parsed SPARQL query.
type Query struct {
	Kind QueryKind
	// Proj lists the SELECT variables; nil means SELECT *.
	Proj []string
	// Where is the graph pattern of the WHERE clause.
	Where Pattern
	// Template holds the CONSTRUCT template triples.
	Template []TriplePattern
}

// Pattern returns the algebraic pattern of the query: for SELECT with an
// explicit projection it wraps Where in (SELECT W ·).
func (q *Query) Pattern() Pattern {
	if q.Kind == SelectQuery && q.Proj != nil {
		return Select{Proj: q.Proj, P: q.Where}
	}
	return q.Where
}

// Select evaluates a SELECT query over a graph.
func (q *Query) Select(g *rdf.Graph) (*MappingSet, error) {
	if q.Kind != SelectQuery {
		return nil, fmt.Errorf("sparql: not a SELECT query")
	}
	return Eval(q.Pattern(), g), nil
}

// SelectCtx is Select under a context; cancellation and deadlines surface as
// typed limits errors.
func (q *Query) SelectCtx(ctx context.Context, g *rdf.Graph) (*MappingSet, error) {
	if q.Kind != SelectQuery {
		return nil, fmt.Errorf("sparql: not a SELECT query")
	}
	return EvalCtx(ctx, q.Pattern(), g)
}

// ParseQuery parses a SPARQL query in the subset covered by the paper:
//
//	SELECT ?X ?Y WHERE { ?Y name ?X . OPTIONAL { ?Y phone ?Z } }
//	SELECT * WHERE { { ?X a t1 } UNION { ?X a t2 } FILTER(bound(?X)) }
//	CONSTRUCT { ?X name_author ?Z } WHERE { ?Y is_author_of ?Z . ?Y name ?X }
//
// IRIs are written bare (rdf:type, dbUllman) or bracketed (<http://…>);
// literals are double-quoted; blank nodes are _:b; keywords are
// case-insensitive. FILTER conditions support bound(?X), ?X = ?Y, ?X = term,
// !=, !, &&, || and parentheses; filters apply to their enclosing group.
func ParseQuery(src string) (*Query, error) {
	p := &qparser{in: src}
	p.skipWS()
	kw := strings.ToUpper(p.peekWord())
	q := &Query{}
	switch kw {
	case "SELECT":
		p.word()
		p.skipWS()
		if p.peekByte() == '*' {
			p.pos++
		} else {
			for {
				p.skipWS()
				if p.peekByte() != '?' {
					break
				}
				v, err := p.varName()
				if err != nil {
					return nil, err
				}
				q.Proj = append(q.Proj, v)
			}
			if q.Proj == nil {
				return nil, p.errf("SELECT requires variables or *")
			}
		}
	case "CONSTRUCT":
		p.word()
		q.Kind = ConstructQuery
		tpl, err := p.templateBlock()
		if err != nil {
			return nil, err
		}
		q.Template = tpl
	default:
		return nil, p.errf("expected SELECT or CONSTRUCT, got %q", p.peekWord())
	}
	p.skipWS()
	if strings.ToUpper(p.peekWord()) != "WHERE" {
		return nil, p.errf("expected WHERE, got %q", p.peekWord())
	}
	p.word()
	where, err := p.group()
	if err != nil {
		return nil, err
	}
	q.Where = where
	p.skipWS()
	if !p.eof() {
		return nil, p.errf("trailing input %q", p.rest())
	}
	if err := Validate(q.Where); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseQuery is ParseQuery, panicking on error.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

type qparser struct {
	in  string
	pos int
}

func (p *qparser) eof() bool { return p.pos >= len(p.in) }

func (p *qparser) rest() string {
	r := p.in[p.pos:]
	if len(r) > 30 {
		r = r[:30] + "…"
	}
	return r
}

func (p *qparser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.in[:p.pos], "\n")
	return fmt.Errorf("sparql: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *qparser) peekByte() byte {
	if p.eof() {
		return 0
	}
	return p.in[p.pos]
}

func (p *qparser) skipWS() {
	for !p.eof() {
		c := p.in[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '#' {
			for !p.eof() && p.in[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		break
	}
}

// peekWord returns the next bare word without consuming it.
func (p *qparser) peekWord() string {
	save := p.pos
	w := p.word()
	p.pos = save
	return w
}

func (p *qparser) word() string {
	p.skipWS()
	start := p.pos
	for !p.eof() {
		r, sz := utf8.DecodeRuneInString(p.in[p.pos:])
		if !isNameRune(r) {
			break
		}
		p.pos += sz
	}
	return p.in[start:p.pos]
}

func isNameRune(r rune) bool {
	switch r {
	case '_', ':', '-', '\'', '/', '∃', '⁻':
		return true
	}
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *qparser) varName() (string, error) {
	p.skipWS()
	if p.peekByte() != '?' {
		return "", p.errf("expected variable at %q", p.rest())
	}
	p.pos++
	w := p.word()
	if w == "" {
		return "", p.errf("empty variable name")
	}
	return "?" + w, nil
}

// term parses one pattern term.
func (p *qparser) term() (PTerm, error) {
	p.skipWS()
	if p.eof() {
		return PTerm{}, p.errf("unexpected end of query")
	}
	switch p.peekByte() {
	case '?':
		v, err := p.varName()
		if err != nil {
			return PTerm{}, err
		}
		return PTerm{IsVar: true, Var: v}, nil
	case '<':
		p.pos++
		start := p.pos
		for !p.eof() && p.in[p.pos] != '>' {
			p.pos++
		}
		if p.eof() {
			return PTerm{}, p.errf("unterminated IRI")
		}
		iri := p.in[start:p.pos]
		p.pos++
		return IRI(iri), nil
	case '"':
		return p.literal()
	case '_':
		if strings.HasPrefix(p.in[p.pos:], "_:") {
			p.pos += 2
			w := p.word()
			if w == "" {
				return PTerm{}, p.errf("empty blank node label")
			}
			return Blank(w), nil
		}
	}
	w := p.word()
	if w == "" {
		return PTerm{}, p.errf("expected term at %q", p.rest())
	}
	return IRI(w), nil
}

func (p *qparser) literal() (PTerm, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return PTerm{}, p.errf("unterminated literal")
		}
		c := p.in[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			p.pos++
			if p.eof() {
				return PTerm{}, p.errf("dangling escape")
			}
			switch p.in[p.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return PTerm{}, p.errf("unknown escape \\%c", p.in[p.pos])
			}
			p.pos++
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.term()
		if err != nil {
			return PTerm{}, err
		}
		if dt.IsVar || !dt.Term.IsIRI() {
			return PTerm{}, p.errf("literal datatype must be an IRI")
		}
		return FromTerm(rdf.NewTypedLiteral(lex, dt.Term.Value)), nil
	}
	if p.peekByte() == '@' {
		p.pos++
		w := p.word()
		if w == "" {
			return PTerm{}, p.errf("empty language tag")
		}
		return FromTerm(rdf.NewLangLiteral(lex, w)), nil
	}
	return FromTerm(rdf.NewLiteral(lex)), nil
}

// templateBlock parses "{ t1 . t2 . … }".
func (p *qparser) templateBlock() ([]TriplePattern, error) {
	p.skipWS()
	if p.peekByte() != '{' {
		return nil, p.errf("expected '{' after CONSTRUCT")
	}
	p.pos++
	var out []TriplePattern
	for {
		p.skipWS()
		if p.peekByte() == '}' {
			p.pos++
			return out, nil
		}
		tp, err := p.triple()
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
		p.skipWS()
		if p.peekByte() == '.' {
			p.pos++
		}
	}
}

func (p *qparser) triple() (TriplePattern, error) {
	s, err := p.term()
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.term()
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.term()
	if err != nil {
		return TriplePattern{}, err
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

// group parses a GroupGraphPattern '{ … }'. Elements are combined left to
// right with AND; OPTIONAL extends the accumulated pattern; UNION combines
// braced sub-groups; FILTERs collected in the group apply to its result.
func (p *qparser) group() (Pattern, error) {
	p.skipWS()
	if p.peekByte() != '{' {
		return nil, p.errf("expected '{'")
	}
	p.pos++
	var acc Pattern
	var pendingBGP []TriplePattern
	var filters []Condition
	flushBGP := func() {
		if pendingBGP != nil {
			bgp := BGP{Triples: pendingBGP}
			pendingBGP = nil
			if acc == nil {
				acc = bgp
			} else {
				acc = And{L: acc, R: bgp}
			}
		}
	}
	for {
		p.skipWS()
		if p.eof() {
			return nil, p.errf("unterminated group")
		}
		switch {
		case p.peekByte() == '}':
			p.pos++
			flushBGP()
			if acc == nil {
				acc = BGP{}
			}
			for _, f := range filters {
				acc = Filter{P: acc, Cond: f}
			}
			return acc, nil
		case p.peekByte() == '.':
			p.pos++
		case p.peekByte() == '{':
			// Sub-group, possibly a UNION chain.
			flushBGP()
			sub, err := p.group()
			if err != nil {
				return nil, err
			}
			for {
				p.skipWS()
				if strings.ToUpper(p.peekWord()) != "UNION" {
					break
				}
				p.word()
				rhs, err := p.group()
				if err != nil {
					return nil, err
				}
				sub = Union{L: sub, R: rhs}
			}
			if acc == nil {
				acc = sub
			} else {
				acc = And{L: acc, R: sub}
			}
		default:
			kw := strings.ToUpper(p.peekWord())
			switch kw {
			case "OPTIONAL":
				p.word()
				flushBGP()
				inner, err := p.group()
				if err != nil {
					return nil, err
				}
				if acc == nil {
					acc = BGP{}
				}
				acc = Opt{L: acc, R: inner}
			case "FILTER":
				p.word()
				cond, err := p.filterCond()
				if err != nil {
					return nil, err
				}
				filters = append(filters, cond)
			case "UNION":
				return nil, p.errf("UNION must connect braced groups")
			default:
				tp, err := p.triple()
				if err != nil {
					return nil, err
				}
				pendingBGP = append(pendingBGP, tp)
			}
		}
	}
}

// filterCond parses "( expr )" or a bare expr after FILTER.
func (p *qparser) filterCond() (Condition, error) {
	return p.orExpr()
}

func (p *qparser) orExpr() (Condition, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		if strings.HasPrefix(p.in[p.pos:], "||") {
			p.pos += 2
			r, err := p.andExpr()
			if err != nil {
				return nil, err
			}
			l = Disj{L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *qparser) andExpr() (Condition, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		if strings.HasPrefix(p.in[p.pos:], "&&") {
			p.pos += 2
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = Conj{L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *qparser) unaryExpr() (Condition, error) {
	p.skipWS()
	if p.peekByte() == '!' && !strings.HasPrefix(p.in[p.pos:], "!=") {
		p.pos++
		c, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Neg{C: c}, nil
	}
	if p.peekByte() == '(' {
		p.pos++
		c, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.peekByte() != ')' {
			return nil, p.errf("expected ')' in FILTER expression")
		}
		p.pos++
		return c, nil
	}
	if strings.EqualFold(p.peekWord(), "BOUND") {
		p.word()
		p.skipWS()
		if p.peekByte() != '(' {
			return nil, p.errf("expected '(' after bound")
		}
		p.pos++
		v, err := p.varName()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.peekByte() != ')' {
			return nil, p.errf("expected ')' after bound variable")
		}
		p.pos++
		return Bound{Var: v}, nil
	}
	// Comparison: ?X = term | ?X != term.
	v, err := p.varName()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	neg := false
	switch {
	case strings.HasPrefix(p.in[p.pos:], "!="):
		neg = true
		p.pos += 2
	case p.peekByte() == '=':
		p.pos++
	default:
		return nil, p.errf("expected '=' or '!=' after %s", v)
	}
	rhs, err := p.term()
	if err != nil {
		return nil, err
	}
	var cond Condition
	if rhs.IsVar {
		cond = EqVars{X: v, Y: rhs.Var}
	} else {
		cond = EqConst{Var: v, Val: rhs.Term}
	}
	if neg {
		cond = Neg{C: cond}
	}
	return cond, nil
}
