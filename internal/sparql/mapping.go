package sparql

import (
	"sort"
	"strings"

	"repro/internal/limits"
	"repro/internal/rdf"
)

// Mapping is a partial function µ : V → terms. The paper ranges over U; this
// implementation also admits literals so realistic data round-trips.
type Mapping map[string]rdf.Term

// Compatible reports µ1 ∼ µ2: agreement on the shared domain.
func (m Mapping) Compatible(n Mapping) bool {
	// Iterate over the smaller mapping.
	if len(n) < len(m) {
		m, n = n, m
	}
	for v, t := range m {
		if u, ok := n[v]; ok && u != t {
			return false
		}
	}
	return true
}

// Merge returns µ1 ∪ µ2; callers must have checked compatibility.
func (m Mapping) Merge(n Mapping) Mapping {
	out := make(Mapping, len(m)+len(n))
	for v, t := range m {
		out[v] = t
	}
	for v, t := range n {
		out[v] = t
	}
	return out
}

// Restrict returns µ|W.
func (m Mapping) Restrict(w map[string]bool) Mapping {
	out := make(Mapping)
	for v, t := range m {
		if w[v] {
			out[v] = t
		}
	}
	return out
}

// Clone copies the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	for v, t := range m {
		out[v] = t
	}
	return out
}

// Equal reports whether two mappings have the same domain and values.
func (m Mapping) Equal(n Mapping) bool {
	if len(m) != len(n) {
		return false
	}
	for v, t := range m {
		if u, ok := n[v]; !ok || u != t {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding of the mapping, usable as a map key.
func (m Mapping) Key() string {
	vars := make([]string, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		t := m[v]
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteByte(byte('0' + t.Kind))
		b.WriteString(t.Value)
		b.WriteByte(1)
		b.WriteString(t.Datatype)
		b.WriteByte(1)
		b.WriteString(t.Lang)
		b.WriteByte(0)
	}
	return b.String()
}

// String renders the mapping deterministically: {?X→a, ?Y→b}.
func (m Mapping) String() string {
	vars := make([]string, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v)
		b.WriteString("→")
		b.WriteString(m[v].String())
	}
	b.WriteByte('}')
	return b.String()
}

// MappingSet is a set of mappings with set semantics.
type MappingSet struct {
	list []Mapping
	seen map[string]struct{}

	// Incomplete is true when the producing evaluation tripped a resource
	// budget and this set is the sound partial result computed before the
	// abort (see internal/limits); set only by the budget-degrading
	// evaluation paths, never by the plain algebra.
	Incomplete bool
	// Truncation reports which limit tripped; non-nil exactly when
	// Incomplete.
	Truncation *limits.Truncation
}

// NewMappingSet builds a set from the given mappings, deduplicating.
func NewMappingSet(ms ...Mapping) *MappingSet {
	s := &MappingSet{seen: make(map[string]struct{})}
	for _, m := range ms {
		s.Add(m)
	}
	return s
}

// Add inserts a mapping, reporting whether it was new.
func (s *MappingSet) Add(m Mapping) bool {
	k := m.Key()
	if _, ok := s.seen[k]; ok {
		return false
	}
	s.seen[k] = struct{}{}
	s.list = append(s.list, m)
	return true
}

// Has reports membership.
func (s *MappingSet) Has(m Mapping) bool {
	_, ok := s.seen[m.Key()]
	return ok
}

// Len returns the number of mappings.
func (s *MappingSet) Len() int { return len(s.list) }

// Mappings returns the mappings; the slice must not be modified.
func (s *MappingSet) Mappings() []Mapping { return s.list }

// Equal reports set equality.
func (s *MappingSet) Equal(t *MappingSet) bool {
	if s.Len() != t.Len() {
		return false
	}
	for k := range s.seen {
		if _, ok := t.seen[k]; !ok {
			return false
		}
	}
	return true
}

// String renders the set sorted, one mapping per line.
func (s *MappingSet) String() string {
	lines := make([]string, 0, len(s.list))
	for _, m := range s.list {
		lines = append(lines, m.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Join implements Ω1 ⋈ Ω2 = {µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ∼ µ2}.
func Join(a, b *MappingSet) *MappingSet {
	out := NewMappingSet()
	for _, m := range a.list {
		for _, n := range b.list {
			if m.Compatible(n) {
				out.Add(m.Merge(n))
			}
		}
	}
	return out
}

// UnionSets implements Ω1 ∪ Ω2.
func UnionSets(a, b *MappingSet) *MappingSet {
	out := NewMappingSet()
	for _, m := range a.list {
		out.Add(m)
	}
	for _, m := range b.list {
		out.Add(m)
	}
	return out
}

// Diff implements Ω1 ∖ Ω2 = {µ ∈ Ω1 | ∀µ' ∈ Ω2 : µ ≁ µ'}.
func Diff(a, b *MappingSet) *MappingSet {
	out := NewMappingSet()
	for _, m := range a.list {
		ok := true
		for _, n := range b.list {
			if m.Compatible(n) {
				ok = false
				break
			}
		}
		if ok {
			out.Add(m)
		}
	}
	return out
}

// LeftOuterJoin implements Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2).
func LeftOuterJoin(a, b *MappingSet) *MappingSet {
	return UnionSets(Join(a, b), Diff(a, b))
}
