package sparql

import (
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

// g1 is the paper's graph G1 (Section 2), with the book title as an IRI-less
// literal replaced by a URI-like constant to stay within the paper's
// URI-only graphs.
func g1() *rdf.Graph {
	return rdf.NewGraph(
		rdf.Triple{S: rdf.NewIRI("dbUllman"), P: rdf.NewIRI("is_author_of"), O: rdf.NewLiteral("The Complete Book")},
		rdf.Triple{S: rdf.NewIRI("dbUllman"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Jeffrey Ullman")},
	)
}

func TestEvalBGPAuthors(t *testing.T) {
	// Query (1) of Section 2.
	p := Select{Proj: []string{"?X"}, P: BGP{Triples: []TriplePattern{
		TP(Var("Y"), IRI("is_author_of"), Var("Z")),
		TP(Var("Y"), IRI("name"), Var("X")),
	}}}
	got := Eval(p, g1())
	if got.Len() != 1 {
		t.Fatalf("answers = %s", got)
	}
	m := got.Mappings()[0]
	if m["?X"] != rdf.NewLiteral("Jeffrey Ullman") || len(m) != 1 {
		t.Errorf("mapping = %v", m)
	}
}

func TestEvalBGPEmptyPattern(t *testing.T) {
	got := Eval(BGP{}, g1())
	if got.Len() != 1 || len(got.Mappings()[0]) != 0 {
		t.Errorf("⟦{}⟧ should be {µ∅}, got %s", got)
	}
}

func TestEvalBGPBlankNode(t *testing.T) {
	// Pattern P2 = (?X, name, _:B): blank nodes are existential.
	p := BGP{Triples: []TriplePattern{TP(Var("X"), IRI("name"), Blank("B"))}}
	got := Eval(p, g1())
	if got.Len() != 1 {
		t.Fatalf("answers = %s", got)
	}
	m := got.Mappings()[0]
	if _, ok := m["_:B"]; ok {
		t.Error("blank node binding leaked into the mapping")
	}
	if m["?X"] != rdf.NewIRI("dbUllman") {
		t.Errorf("mapping = %v", m)
	}
}

func TestEvalBGPSharedBlank(t *testing.T) {
	// A blank node occurring twice must take a single value.
	g := rdf.NewGraph(
		rdf.T("a", "p", "x"), rdf.T("x", "q", "b"),
		rdf.T("a", "p", "y"), rdf.T("z", "q", "b"),
	)
	p := BGP{Triples: []TriplePattern{
		TP(Var("S"), IRI("p"), Blank("B")),
		TP(Blank("B"), IRI("q"), Var("O")),
	}}
	got := Eval(p, g)
	// Only the x-path connects: (S=a, O=b).
	if got.Len() != 1 || !got.Has(Mapping{"?S": rdf.NewIRI("a"), "?O": rdf.NewIRI("b")}) {
		t.Errorf("answers = %s", got)
	}
}

func TestEvalRepeatedVariableInTriple(t *testing.T) {
	g := rdf.NewGraph(rdf.T("a", "p", "a"), rdf.T("a", "p", "b"))
	p := BGP{Triples: []TriplePattern{TP(Var("X"), IRI("p"), Var("X"))}}
	got := Eval(p, g)
	if got.Len() != 1 || !got.Has(Mapping{"?X": rdf.NewIRI("a")}) {
		t.Errorf("answers = %s", got)
	}
}

// optExampleGraph is the phone-book graph of Example 5.1 (patterns P3/P4).
func optExampleGraph() *rdf.Graph {
	return rdf.NewGraph(
		rdf.T("u1", "name", "alice"),
		rdf.T("u1", "phone", "tel1"),
		rdf.T("u2", "name", "bob"),
		rdf.T("tel1", "phone_company", "acme"),
		rdf.T("tel9", "phone_company", "other"),
	)
}

func TestEvalOptP3(t *testing.T) {
	// P3 = (?X, name, ?Y) OPT (?X, phone, ?Z).
	p := Opt{
		L: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("name"), Var("Y"))}},
		R: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("phone"), Var("Z"))}},
	}
	got := Eval(p, optExampleGraph())
	if got.Len() != 2 {
		t.Fatalf("answers = %s", got)
	}
	if !got.Has(Mapping{"?X": rdf.NewIRI("u1"), "?Y": rdf.NewIRI("alice"), "?Z": rdf.NewIRI("tel1")}) {
		t.Error("u1 with phone missing")
	}
	if !got.Has(Mapping{"?X": rdf.NewIRI("u2"), "?Y": rdf.NewIRI("bob")}) {
		t.Error("u2 without phone missing")
	}
}

func TestEvalAndOverOptP4(t *testing.T) {
	// P4 = ((?X,name,?Y) OPT (?X,phone,?Z)) AND (?Z, phone_company, ?W).
	// The paper points out the cartesian effect for phone-less people.
	p := And{
		L: Opt{
			L: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("name"), Var("Y"))}},
			R: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("phone"), Var("Z"))}},
		},
		R: BGP{Triples: []TriplePattern{TP(Var("Z"), IRI("phone_company"), Var("W"))}},
	}
	got := Eval(p, optExampleGraph())
	// u1: joins with its own phone company (1 mapping). u2: no ?Z → its
	// mapping is compatible with both phone_company rows (2 mappings).
	if got.Len() != 3 {
		t.Fatalf("answers (%d) = %s", got.Len(), got)
	}
	if !got.Has(Mapping{"?X": rdf.NewIRI("u2"), "?Y": rdf.NewIRI("bob"),
		"?Z": rdf.NewIRI("tel9"), "?W": rdf.NewIRI("other")}) {
		t.Error("cartesian mapping for bob missing")
	}
}

func TestEvalUnionSameAs(t *testing.T) {
	// Query (6) of Section 2 over the graph G4.
	g := rdf.NewGraph(
		rdf.Triple{S: rdf.NewIRI("dbUllman"), P: rdf.NewIRI("is_author_of"), O: rdf.NewLiteral("The Complete Book")},
		rdf.T("dbUllman", "owl:sameAs", "yagoUllman"),
		rdf.Triple{S: rdf.NewIRI("yagoUllman"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Jeffrey Ullman")},
	)
	branch1 := BGP{Triples: []TriplePattern{
		TP(Var("Y"), IRI("is_author_of"), Var("Z")),
		TP(Var("Y"), IRI("name"), Var("X")),
	}}
	branch2 := BGP{Triples: []TriplePattern{
		TP(Var("Y"), IRI("is_author_of"), Var("Z")),
		TP(Var("Y"), IRI("owl:sameAs"), Var("W")),
		TP(Var("W"), IRI("name"), Var("X")),
	}}
	p := Select{Proj: []string{"?X"}, P: Union{L: branch1, R: branch2}}
	got := Eval(p, g)
	if got.Len() != 1 || !got.Has(Mapping{"?X": rdf.NewLiteral("Jeffrey Ullman")}) {
		t.Errorf("answers = %s", got)
	}
	// Without the UNION branch the query (1) has no answers on G4 — the
	// motivation of the example.
	if Eval(Select{Proj: []string{"?X"}, P: branch1}, g).Len() != 0 {
		t.Error("query (1) should be empty on G4")
	}
}

func TestEvalFilter(t *testing.T) {
	g := rdf.NewGraph(rdf.T("u1", "name", "alice"), rdf.T("u2", "name", "bob"))
	base := BGP{Triples: []TriplePattern{TP(Var("X"), IRI("name"), Var("N"))}}
	cases := []struct {
		name string
		cond Condition
		want int
	}{
		{"eq const", EqConst{Var: "?N", Val: rdf.NewIRI("alice")}, 1},
		{"neg eq", Neg{C: EqConst{Var: "?N", Val: rdf.NewIRI("alice")}}, 1},
		{"bound", Bound{Var: "?X"}, 2},
		{"neg bound", Neg{C: Bound{Var: "?X"}}, 0},
		{"conj", Conj{L: Bound{Var: "?X"}, R: EqConst{Var: "?N", Val: rdf.NewIRI("bob")}}, 1},
		{"disj", Disj{L: EqConst{Var: "?N", Val: rdf.NewIRI("alice")}, R: EqConst{Var: "?N", Val: rdf.NewIRI("bob")}}, 2},
		{"eqvars same", EqVars{X: "?X", Y: "?X"}, 2},
		{"eqvars diff", EqVars{X: "?X", Y: "?N"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Eval(Filter{P: base, Cond: tc.cond}, g)
			if got.Len() != tc.want {
				t.Errorf("answers = %s, want %d", got, tc.want)
			}
		})
	}
}

func TestEvalBoundDistinguishesOptBranches(t *testing.T) {
	// bound(?Z) over an OPT separates the two kinds of mappings.
	p := Filter{
		P: Opt{
			L: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("name"), Var("Y"))}},
			R: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("phone"), Var("Z"))}},
		},
		Cond: Neg{C: Bound{Var: "?Z"}},
	}
	got := Eval(p, optExampleGraph())
	if got.Len() != 1 || !got.Has(Mapping{"?X": rdf.NewIRI("u2"), "?Y": rdf.NewIRI("bob")}) {
		t.Errorf("answers = %s", got)
	}
}

func TestEvalSelectProjection(t *testing.T) {
	p := Select{Proj: []string{"?Y"}, P: BGP{Triples: []TriplePattern{
		TP(Var("X"), IRI("name"), Var("Y")),
	}}}
	got := Eval(p, optExampleGraph())
	if got.Len() != 2 {
		t.Fatalf("answers = %s", got)
	}
	for _, m := range got.Mappings() {
		if len(m) != 1 {
			t.Errorf("projection leaked: %v", m)
		}
	}
}

func TestValidateFilterScope(t *testing.T) {
	bad := Filter{
		P:    BGP{Triples: []TriplePattern{TP(Var("X"), IRI("p"), Var("Y"))}},
		Cond: Bound{Var: "?Z"},
	}
	if err := Validate(bad); err == nil {
		t.Error("FILTER over out-of-scope variable must be rejected")
	}
	good := Filter{
		P:    BGP{Triples: []TriplePattern{TP(Var("X"), IRI("p"), Var("Y"))}},
		Cond: Bound{Var: "?X"},
	}
	if err := Validate(good); err != nil {
		t.Errorf("valid filter rejected: %v", err)
	}
}

func TestPatternVars(t *testing.T) {
	p := Opt{
		L: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("p"), Blank("B"))}},
		R: Filter{
			P:    BGP{Triples: []TriplePattern{TP(Var("X"), IRI("q"), Var("Z"))}},
			Cond: Bound{Var: "?Z"},
		},
	}
	vars := p.Vars()
	if len(vars) != 2 || !vars["?X"] || !vars["?Z"] {
		t.Errorf("Vars = %v", vars)
	}
	sel := Select{Proj: []string{"?X", "?Missing"}, P: p}
	sv := sel.Vars()
	if len(sv) != 1 || !sv["?X"] {
		t.Errorf("Select.Vars = %v", sv)
	}
}

func TestBasicPatterns(t *testing.T) {
	p := Union{
		L: And{L: BGP{}, R: BGP{}},
		R: Opt{L: BGP{}, R: Select{Proj: nil, P: Filter{P: BGP{}, Cond: Bound{Var: "?X"}}}},
	}
	if got := len(BasicPatterns(p)); got != 4 {
		t.Errorf("BasicPatterns = %d, want 4", got)
	}
}

func TestPatternStrings(t *testing.T) {
	p := Filter{
		P: Select{Proj: []string{"?X"}, P: Opt{
			L: Union{L: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("p"), Lit("v"))}}, R: BGP{}},
			R: And{L: BGP{}, R: BGP{}},
		}},
		Cond: Conj{L: Neg{C: Bound{Var: "?X"}}, R: Disj{L: EqVars{X: "?X", Y: "?Y"}, R: EqConst{Var: "?X", Val: rdf.NewIRI("c")}}},
	}
	if p.String() == "" {
		t.Error("pattern String empty")
	}
}

// Pattern-level algebra laws (Pérez et al., carried over by the paper's
// semantics): AND and UNION are commutative and associative, AND distributes
// over UNION, and SELECT-to-var(P) is the identity — checked on random
// patterns and graphs.
func TestEvalAlgebraLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	names := []string{"a", "b", "c"}
	preds := []string{"p", "q"}
	randG := func() *rdf.Graph {
		g := rdf.NewGraph()
		for i := 0; i < 1+rng.Intn(8); i++ {
			g.Add(rdf.T(names[rng.Intn(3)], preds[rng.Intn(2)], names[rng.Intn(3)]))
		}
		return g
	}
	randBGP := func() Pattern {
		var ts []TriplePattern
		for i := 0; i < 1+rng.Intn(2); i++ {
			mk := func() PTerm {
				if rng.Intn(2) == 0 {
					return Var([]string{"?A", "?B", "?C"}[rng.Intn(3)])
				}
				return IRI(names[rng.Intn(3)])
			}
			ts = append(ts, TP(mk(), IRI(preds[rng.Intn(2)]), mk()))
		}
		return BGP{Triples: ts}
	}
	for round := 0; round < 40; round++ {
		g := randG()
		p1, p2, p3 := randBGP(), randBGP(), randBGP()
		if !Eval(And{L: p1, R: p2}, g).Equal(Eval(And{L: p2, R: p1}, g)) {
			t.Fatalf("AND not commutative: %s vs %s", p1, p2)
		}
		if !Eval(Union{L: p1, R: p2}, g).Equal(Eval(Union{L: p2, R: p1}, g)) {
			t.Fatalf("UNION not commutative")
		}
		if !Eval(And{L: p1, R: And{L: p2, R: p3}}, g).
			Equal(Eval(And{L: And{L: p1, R: p2}, R: p3}, g)) {
			t.Fatalf("AND not associative")
		}
		if !Eval(And{L: p1, R: Union{L: p2, R: p3}}, g).
			Equal(Eval(Union{L: And{L: p1, R: p2}, R: And{L: p1, R: p3}}, g)) {
			t.Fatalf("AND does not distribute over UNION")
		}
		// SELECT over all of var(P) is the identity.
		vars := p1.Vars()
		var proj []string
		for v := range vars {
			proj = append(proj, v)
		}
		if !Eval(Select{Proj: proj, P: p1}, g).Equal(Eval(p1, g)) {
			t.Fatalf("SELECT var(P) is not the identity for %s", p1)
		}
	}
}
