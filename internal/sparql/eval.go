package sparql

import (
	"context"
	"fmt"

	"repro/internal/limits"
	"repro/internal/rdf"
)

// Eval computes ⟦P⟧_G by the recursive definition of Section 3.1.
func Eval(p Pattern, g *rdf.Graph) *MappingSet {
	out, _ := EvalCtx(context.Background(), p, g)
	return out
}

// EvalCtx is Eval under a context: cancellation and deadlines are polled at
// every operator node and (counter-gated) throughout BGP backtracking, and
// surface as typed limits errors (ErrCanceled / ErrDeadline).
func EvalCtx(ctx context.Context, p Pattern, g *rdf.Graph) (*MappingSet, error) {
	e := &ctxEval{ctx: ctx}
	out := e.eval(p, g)
	if e.err != nil {
		return nil, e.err
	}
	return out, nil
}

// ctxEval threads the cancellation state through the recursive evaluation;
// once err is set every remaining node short-circuits.
type ctxEval struct {
	ctx  context.Context
	tick int
	err  error
}

// interrupted polls the context (the direct algebra has no budgets, so
// cancellation and deadlines are the only limits here).
func (e *ctxEval) interrupted() bool {
	if e.err != nil {
		return true
	}
	if kind := limits.CtxKind(e.ctx); kind != nil {
		e.err = limits.NewError(kind, limits.Truncation{})
		return true
	}
	return false
}

// bgpTick is interrupted gated to every 64th backtracking step, keeping the
// hot path to an increment and a mask.
func (e *ctxEval) bgpTick() bool {
	if e.tick++; e.tick&63 == 0 {
		return e.interrupted()
	}
	return e.err != nil
}

func (e *ctxEval) eval(p Pattern, g *rdf.Graph) *MappingSet {
	if e.interrupted() {
		return NewMappingSet()
	}
	switch q := p.(type) {
	case BGP:
		return evalBGP(q, g, e.bgpTick)
	case And:
		return Join(e.eval(q.L, g), e.eval(q.R, g))
	case Union:
		return UnionSets(e.eval(q.L, g), e.eval(q.R, g))
	case Opt:
		return LeftOuterJoin(e.eval(q.L, g), e.eval(q.R, g))
	case Filter:
		out := NewMappingSet()
		for _, m := range e.eval(q.P, g).Mappings() {
			if q.Cond.Satisfied(m) {
				out.Add(m)
			}
		}
		return out
	case Select:
		w := make(map[string]bool, len(q.Proj))
		for _, v := range q.Proj {
			w[v] = true
		}
		out := NewMappingSet()
		for _, m := range e.eval(q.P, g).Mappings() {
			out.Add(m.Restrict(w))
		}
		return out
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// evalBGP implements ⟦P⟧_G for a basic graph pattern: the mappings µ with
// dom(µ) = var(P) such that some h : B → U satisfies µ(h(P)) ⊆ G. Variables
// and blank nodes are both matched by backtracking; blank-node bindings are
// projected away afterwards, which realizes the existential h.
//
// interrupt, when non-nil, is polled during the backtracking search; a true
// return abandons the remaining search space (the caller reports the typed
// error, so the truncated set is never observed as a complete answer).
func evalBGP(p BGP, g *rdf.Graph, interrupt func() bool) *MappingSet {
	out := NewMappingSet()
	if len(p.Triples) == 0 {
		// The empty BGP yields the single empty mapping µ∅.
		out.Add(Mapping{})
		return out
	}
	vars := p.Vars()
	// binding covers variables and blank labels; blanks are keyed with the
	// "_:" prefix so they cannot collide with "?" variables.
	binding := make(map[string]rdf.Term)
	var rec func(k int)
	rec = func(k int) {
		if interrupt != nil && interrupt() {
			return
		}
		if k == len(p.Triples) {
			m := make(Mapping)
			for v := range vars {
				m[v] = binding[v]
			}
			out.Add(m)
			return
		}
		tp := p.Triples[k]
		var s, pr, o *rdf.Term
		keys := [3]string{}
		terms := tp.Terms()
		ptrs := [3]**rdf.Term{&s, &pr, &o}
		for i, t := range terms {
			switch {
			case t.IsVar:
				keys[i] = t.Var
			case t.Term.IsBlank():
				keys[i] = "_:" + t.Term.Value
			default:
				v := t.Term
				*ptrs[i] = &v
				continue
			}
			if bound, ok := binding[keys[i]]; ok {
				v := bound
				*ptrs[i] = &v
				keys[i] = ""
			}
		}
		for _, triple := range g.Match(s, pr, o) {
			vals := [3]rdf.Term{triple.S, triple.P, triple.O}
			var added []string
			ok := true
			for i := 0; i < 3; i++ {
				if keys[i] == "" {
					continue
				}
				if bound, has := binding[keys[i]]; has {
					if bound != vals[i] {
						ok = false
						break
					}
					continue
				}
				binding[keys[i]] = vals[i]
				added = append(added, keys[i])
			}
			if ok {
				rec(k + 1)
			}
			for _, kk := range added {
				delete(binding, kk)
			}
		}
	}
	rec(0)
	return out
}

// A subtlety in the triple loop above: the same key may appear twice in one
// triple pattern (e.g. (?X, p, ?X)); the "bound, has" check inside the value
// loop handles the second occurrence because the first occurrence has already
// extended the binding.
