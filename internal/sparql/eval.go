package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// Eval computes ⟦P⟧_G by the recursive definition of Section 3.1.
func Eval(p Pattern, g *rdf.Graph) *MappingSet {
	switch q := p.(type) {
	case BGP:
		return evalBGP(q, g)
	case And:
		return Join(Eval(q.L, g), Eval(q.R, g))
	case Union:
		return UnionSets(Eval(q.L, g), Eval(q.R, g))
	case Opt:
		return LeftOuterJoin(Eval(q.L, g), Eval(q.R, g))
	case Filter:
		out := NewMappingSet()
		for _, m := range Eval(q.P, g).Mappings() {
			if q.Cond.Satisfied(m) {
				out.Add(m)
			}
		}
		return out
	case Select:
		w := make(map[string]bool, len(q.Proj))
		for _, v := range q.Proj {
			w[v] = true
		}
		out := NewMappingSet()
		for _, m := range Eval(q.P, g).Mappings() {
			out.Add(m.Restrict(w))
		}
		return out
	default:
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
}

// evalBGP implements ⟦P⟧_G for a basic graph pattern: the mappings µ with
// dom(µ) = var(P) such that some h : B → U satisfies µ(h(P)) ⊆ G. Variables
// and blank nodes are both matched by backtracking; blank-node bindings are
// projected away afterwards, which realizes the existential h.
func evalBGP(p BGP, g *rdf.Graph) *MappingSet {
	out := NewMappingSet()
	if len(p.Triples) == 0 {
		// The empty BGP yields the single empty mapping µ∅.
		out.Add(Mapping{})
		return out
	}
	vars := p.Vars()
	// binding covers variables and blank labels; blanks are keyed with the
	// "_:" prefix so they cannot collide with "?" variables.
	binding := make(map[string]rdf.Term)
	var rec func(k int)
	rec = func(k int) {
		if k == len(p.Triples) {
			m := make(Mapping)
			for v := range vars {
				m[v] = binding[v]
			}
			out.Add(m)
			return
		}
		tp := p.Triples[k]
		var s, pr, o *rdf.Term
		keys := [3]string{}
		terms := tp.Terms()
		ptrs := [3]**rdf.Term{&s, &pr, &o}
		for i, t := range terms {
			switch {
			case t.IsVar:
				keys[i] = t.Var
			case t.Term.IsBlank():
				keys[i] = "_:" + t.Term.Value
			default:
				v := t.Term
				*ptrs[i] = &v
				continue
			}
			if bound, ok := binding[keys[i]]; ok {
				v := bound
				*ptrs[i] = &v
				keys[i] = ""
			}
		}
		for _, triple := range g.Match(s, pr, o) {
			vals := [3]rdf.Term{triple.S, triple.P, triple.O}
			var added []string
			ok := true
			for i := 0; i < 3; i++ {
				if keys[i] == "" {
					continue
				}
				if bound, has := binding[keys[i]]; has {
					if bound != vals[i] {
						ok = false
						break
					}
					continue
				}
				binding[keys[i]] = vals[i]
				added = append(added, keys[i])
			}
			if ok {
				rec(k + 1)
			}
			for _, kk := range added {
				delete(binding, kk)
			}
		}
	}
	rec(0)
	return out
}

// A subtlety in the triple loop above: the same key may appear twice in one
// triple pattern (e.g. (?X, p, ?X)); the "bound, has" check inside the value
// loop handles the second occurrence because the first occurrence has already
// extended the binding.
