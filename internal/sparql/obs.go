package sparql

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// PatternKind names an operator of the SPARQL algebra for spans and metrics.
func PatternKind(p Pattern) string {
	switch p.(type) {
	case BGP:
		return "BGP"
	case And:
		return "AND"
	case Union:
		return "UNION"
	case Opt:
		return "OPT"
	case Filter:
		return "FILTER"
	case Select:
		return "SELECT"
	default:
		return fmt.Sprintf("%T", p)
	}
}

// EvalTraced computes ⟦P⟧_G like Eval while emitting one sparql.op span per
// algebra operator (kind, result cardinality) to the observability layer.
// With a nil Obs it is exactly Eval.
func EvalTraced(p Pattern, g *rdf.Graph, o *obs.Obs) *MappingSet {
	if o == nil {
		return Eval(p, g)
	}
	return evalTraced(p, g, o, nil)
}

func evalTraced(p Pattern, g *rdf.Graph, o *obs.Obs, parent *obs.Span) *MappingSet {
	var sp *obs.Span
	if parent != nil {
		sp = parent.Span("sparql.op", obs.F("kind", PatternKind(p)))
	} else {
		sp = o.Span("sparql.op", obs.F("kind", PatternKind(p)))
	}
	var out *MappingSet
	switch q := p.(type) {
	case BGP:
		out = evalBGP(q, g, nil)
	case And:
		out = Join(evalTraced(q.L, g, o, sp), evalTraced(q.R, g, o, sp))
	case Union:
		out = UnionSets(evalTraced(q.L, g, o, sp), evalTraced(q.R, g, o, sp))
	case Opt:
		out = LeftOuterJoin(evalTraced(q.L, g, o, sp), evalTraced(q.R, g, o, sp))
	case Filter:
		out = NewMappingSet()
		for _, m := range evalTraced(q.P, g, o, sp).Mappings() {
			if q.Cond.Satisfied(m) {
				out.Add(m)
			}
		}
	case Select:
		w := make(map[string]bool, len(q.Proj))
		for _, v := range q.Proj {
			w[v] = true
		}
		out = NewMappingSet()
		for _, m := range evalTraced(q.P, g, o, sp).Mappings() {
			out.Add(m.Restrict(w))
		}
	default:
		sp.End(obs.F("error", true))
		panic(fmt.Sprintf("sparql: unknown pattern type %T", p))
	}
	sp.End(obs.F("mappings", out.Len()))
	return out
}
