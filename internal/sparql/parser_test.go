package sparql

import (
	"testing"

	"repro/internal/rdf"
)

func TestParseSelectBasic(t *testing.T) {
	q := MustParseQuery(`
		SELECT ?X
		WHERE {
			?Y is_author_of ?Z .
			?Y name ?X }
	`)
	if q.Kind != SelectQuery || len(q.Proj) != 1 || q.Proj[0] != "?X" {
		t.Fatalf("query = %+v", q)
	}
	got, err := q.Select(g1())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(Mapping{"?X": rdf.NewLiteral("Jeffrey Ullman")}) {
		t.Errorf("answers = %s", got)
	}
}

func TestParseSelectStar(t *testing.T) {
	q := MustParseQuery(`SELECT * WHERE { ?X name ?N }`)
	if q.Proj != nil {
		t.Error("SELECT * should leave Proj nil")
	}
	got, err := q.Select(g1())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("answers = %s", got)
	}
	m := got.Mappings()[0]
	if len(m) != 2 {
		t.Errorf("SELECT * should keep all vars: %v", m)
	}
}

func TestParseOptional(t *testing.T) {
	q := MustParseQuery(`
		SELECT * WHERE {
			?X name ?Y .
			OPTIONAL { ?X phone ?Z }
		}
	`)
	opt, ok := q.Where.(Opt)
	if !ok {
		t.Fatalf("Where = %T, want Opt", q.Where)
	}
	if _, ok := opt.L.(BGP); !ok {
		t.Errorf("left of OPT = %T", opt.L)
	}
	got := Eval(q.Where, optExampleGraph())
	if got.Len() != 2 {
		t.Errorf("answers = %s", got)
	}
}

func TestParseUnion(t *testing.T) {
	// Query (6) of Section 2 in concrete syntax.
	q := MustParseQuery(`
		SELECT ?X
		WHERE {
			{ ?Y is_author_of ?Z .
			  ?Y name ?X }
			UNION
			{ ?Y is_author_of ?Z .
			  ?Y owl:sameAs ?W .
			  ?W name ?X }
		}
	`)
	if _, ok := q.Where.(Union); !ok {
		t.Fatalf("Where = %T, want Union", q.Where)
	}
	g := rdf.NewGraph(
		rdf.Triple{S: rdf.NewIRI("dbUllman"), P: rdf.NewIRI("is_author_of"), O: rdf.NewLiteral("The Complete Book")},
		rdf.T("dbUllman", "owl:sameAs", "yagoUllman"),
		rdf.Triple{S: rdf.NewIRI("yagoUllman"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Jeffrey Ullman")},
	)
	got, err := q.Select(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(Mapping{"?X": rdf.NewLiteral("Jeffrey Ullman")}) {
		t.Errorf("answers = %s", got)
	}
}

func TestParseNestedUnionChain(t *testing.T) {
	q := MustParseQuery(`SELECT * WHERE { { ?X a t1 } UNION { ?X a t2 } UNION { ?X a t3 } }`)
	u, ok := q.Where.(Union)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if _, ok := u.L.(Union); !ok {
		t.Error("UNION should chain left-associatively")
	}
}

func TestParseFilter(t *testing.T) {
	q := MustParseQuery(`
		SELECT * WHERE {
			?X name ?N
			FILTER(?N = alice || !bound(?X) && ?N != bob)
		}
	`)
	f, ok := q.Where.(Filter)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	// || binds loosest: (?N = alice) ∨ ((¬bound) ∧ (¬(?N = bob)))
	d, ok := f.Cond.(Disj)
	if !ok {
		t.Fatalf("Cond = %T, want Disj", f.Cond)
	}
	if _, ok := d.R.(Conj); !ok {
		t.Errorf("right of || = %T, want Conj", d.R)
	}
	g := rdf.NewGraph(rdf.T("u1", "name", "alice"), rdf.T("u2", "name", "bob"))
	got := Eval(q.Where, g)
	if got.Len() != 1 {
		t.Errorf("answers = %s", got)
	}
}

func TestParseFilterAppliesToGroup(t *testing.T) {
	// A filter written before the triples still scopes over the whole group.
	q := MustParseQuery(`
		SELECT * WHERE {
			FILTER(bound(?N))
			?X name ?N
		}
	`)
	g := rdf.NewGraph(rdf.T("u1", "name", "alice"))
	if got := Eval(q.Where, g); got.Len() != 1 {
		t.Errorf("answers = %s", got)
	}
}

func TestParseBlankAndLiteralTerms(t *testing.T) {
	q := MustParseQuery(`SELECT ?X WHERE { ?X name "Jeffrey Ullman" . ?X wrote _:B }`)
	bgp, ok := q.Where.(BGP)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if !bgp.Triples[0].O.Term.IsLiteral() {
		t.Error("literal object not parsed")
	}
	if !bgp.Triples[1].O.IsBlank() {
		t.Error("blank object not parsed")
	}
}

func TestParseTypedAndTaggedLiterals(t *testing.T) {
	q := MustParseQuery(`SELECT * WHERE { ?X age "3"^^<xsd:int> . ?X greet "hi"@en }`)
	bgp := q.Where.(BGP)
	if bgp.Triples[0].O.Term != rdf.NewTypedLiteral("3", "xsd:int") {
		t.Errorf("typed literal = %v", bgp.Triples[0].O)
	}
	if bgp.Triples[1].O.Term != rdf.NewLangLiteral("hi", "en") {
		t.Errorf("tagged literal = %v", bgp.Triples[1].O)
	}
}

func TestParseBracketedIRI(t *testing.T) {
	q := MustParseQuery(`SELECT * WHERE { ?X <http://ex.org/p> ?Y }`)
	bgp := q.Where.(BGP)
	if bgp.Triples[0].P.Term.Value != "http://ex.org/p" {
		t.Errorf("IRI = %v", bgp.Triples[0].P)
	}
}

func TestParseConstruct(t *testing.T) {
	// The CONSTRUCT example of Section 2.
	q := MustParseQuery(`
		CONSTRUCT { ?X name_author ?Z }
		WHERE {
			?Y is_author_of ?Z .
			?Y name ?X }
	`)
	if q.Kind != ConstructQuery || len(q.Template) != 1 {
		t.Fatalf("query = %+v", q)
	}
	out, err := q.Construct(g1())
	if err != nil {
		t.Fatal(err)
	}
	want := rdf.Triple{
		S: rdf.NewLiteral("Jeffrey Ullman"),
		P: rdf.NewIRI("name_author"),
		O: rdf.NewLiteral("The Complete Book"),
	}
	if out.Len() != 1 || !out.Has(want) {
		t.Errorf("constructed graph:\n%s", out)
	}
}

func TestConstructBlankNodesPerMapping(t *testing.T) {
	// Query (4) of Section 2: a fresh blank node per match.
	g := rdf.NewGraph(
		rdf.T("dbAho", "is_coauthor_of", "dbUllman"),
		rdf.T("dbX", "is_coauthor_of", "dbY"),
	)
	q := MustParseQuery(`
		CONSTRUCT { ?X is_author_of _:B . ?Y is_author_of _:B }
		WHERE { ?X is_coauthor_of ?Y }
	`)
	out, err := q.Construct(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("constructed graph:\n%s", out)
	}
	// Within one match the blank is shared; across matches it differs.
	aho := out.Match(termPtr(rdf.NewIRI("dbAho")), nil, nil)
	ull := out.Match(termPtr(rdf.NewIRI("dbUllman")), nil, nil)
	if len(aho) != 1 || len(ull) != 1 || aho[0].O != ull[0].O {
		t.Error("blank node should be shared within a match")
	}
	x := out.Match(termPtr(rdf.NewIRI("dbX")), nil, nil)
	if len(x) != 1 || x[0].O == aho[0].O {
		t.Error("blank node must be fresh per match")
	}
}

func termPtr(t rdf.Term) *rdf.Term { return &t }

func TestConstructSkipsUnboundTemplateVars(t *testing.T) {
	g := rdf.NewGraph(rdf.T("u1", "name", "alice"))
	q := MustParseQuery(`
		CONSTRUCT { ?X hasPhone ?Z . ?X hasName ?N }
		WHERE { ?X name ?N OPTIONAL { ?X phone ?Z } }
	`)
	out, err := q.Construct(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("constructed graph:\n%s", out)
	}
}

func TestSelectOnConstructErrors(t *testing.T) {
	q := MustParseQuery(`CONSTRUCT { ?X p ?Y } WHERE { ?X q ?Y }`)
	if _, err := q.Select(rdf.NewGraph()); err == nil {
		t.Error("Select on CONSTRUCT should error")
	}
	s := MustParseQuery(`SELECT * WHERE { ?X q ?Y }`)
	if _, err := s.Construct(rdf.NewGraph()); err == nil {
		t.Error("Construct on SELECT should error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`ASK WHERE { ?X p ?Y }`,
		`SELECT WHERE { ?X p ?Y }`,
		`SELECT ?X { ?X p ?Y }`,
		`SELECT ?X WHERE { ?X p }`,
		`SELECT ?X WHERE { ?X p ?Y`,
		`SELECT ?X WHERE { ?X p ?Y } trailing`,
		`SELECT ?X WHERE { { ?X p ?Y } UNION ?Z }`,
		`SELECT ?X WHERE { ?X p ?Y FILTER(?Z = a) }`, // out of scope
		`SELECT ?X WHERE { ?X p ?Y FILTER(?X ~ a) }`,
		`SELECT ?X WHERE { ?X p ?Y FILTER(bound ?X) }`,
		`SELECT ?X WHERE { ?X p "unterminated }`,
		`CONSTRUCT ?X p ?Y WHERE { ?X p ?Y }`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", src)
		}
	}
}

func TestParseCommentsAndCase(t *testing.T) {
	q := MustParseQuery(`
		# leading comment
		select ?X where {
			?X name ?N . # trailing comment
			optional { ?X phone ?P }
			filter(bound(?N))
		}
	`)
	if q.Kind != SelectQuery {
		t.Error("lower-case keywords should parse")
	}
}
