package sparql

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
)

func tracedEvalGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.Add(rdf.T("u1", "name", "n1"))
	g.Add(rdf.T("u2", "name", "n2"))
	g.Add(rdf.T("u1", "phone", "t1"))
	g.Add(rdf.T("u1", "knows", "u2"))
	return g
}

func tracedEvalPattern() Pattern {
	return Select{
		Proj: []string{"?X"},
		P: Filter{
			P: Union{
				L: Opt{
					L: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("name"), Var("N"))}},
					R: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("phone"), Var("P"))}},
				},
				R: BGP{Triples: []TriplePattern{TP(Var("X"), IRI("knows"), Var("Y"))}},
			},
			Cond: Bound{Var: "?X"},
		},
	}
}

// TestEvalTracedMatchesEval: the traced evaluator is semantically Eval.
func TestEvalTracedMatchesEval(t *testing.T) {
	g := tracedEvalGraph()
	p := tracedEvalPattern()
	want := Eval(p, g)
	if got := EvalTraced(p, g, nil); !want.Equal(got) {
		t.Error("EvalTraced(nil obs) differs from Eval")
	}
	var buf bytes.Buffer
	if got := EvalTraced(p, g, obs.NewWithSink(&buf)); !want.Equal(got) {
		t.Error("EvalTraced(obs) differs from Eval")
	}
	if buf.Len() == 0 {
		t.Error("traced evaluation wrote no spans")
	}
}

// TestEvalTracedSpans: one sparql.op span per algebra operator, labeled with
// its kind and result cardinality.
func TestEvalTracedSpans(t *testing.T) {
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	EvalTraced(tracedEvalPattern(), tracedEvalGraph(), o)
	recs, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]int{}
	for _, r := range recs {
		if r["name"] != "sparql.op" {
			t.Errorf("unexpected span name %v", r["name"])
			continue
		}
		attrs, _ := r["attrs"].(map[string]any)
		kind, _ := attrs["kind"].(string)
		ops[kind]++
		if _, ok := attrs["mappings"]; !ok {
			t.Errorf("sparql.op span missing mappings attr: %v", r)
		}
	}
	want := map[string]int{"SELECT": 1, "FILTER": 1, "UNION": 1, "OPT": 1, "BGP": 3}
	for k, n := range want {
		if ops[k] != n {
			t.Errorf("sparql.op kind %s: got %d spans, want %d (all: %v)", k, ops[k], n, ops)
		}
	}
}

// TestPatternKind covers the operator naming used by spans and metrics.
func TestPatternKind(t *testing.T) {
	cases := map[string]Pattern{
		"BGP":    BGP{},
		"AND":    And{},
		"UNION":  Union{},
		"OPT":    Opt{},
		"FILTER": Filter{},
		"SELECT": Select{},
	}
	for want, p := range cases {
		if got := PatternKind(p); got != want {
			t.Errorf("PatternKind(%T) = %q, want %q", p, got, want)
		}
	}
}
