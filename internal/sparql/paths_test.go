package sparql

import (
	"testing"

	"repro/internal/rdf"
)

func pathGraph() *rdf.Graph {
	return rdf.NewGraph(
		rdf.T("a", "p", "b"), rdf.T("b", "p", "c"), rdf.T("c", "p", "d"),
		rdf.T("a", "q", "c"),
	)
}

func pair(s, o string) TermPair {
	return TermPair{rdf.NewIRI(s), rdf.NewIRI(o)}
}

func TestEvalPathBasics(t *testing.T) {
	g := pathGraph()
	cases := []struct {
		path string
		want []TermPair
	}{
		{"p", []TermPair{pair("a", "b"), pair("b", "c"), pair("c", "d")}},
		{"^p", []TermPair{pair("b", "a"), pair("c", "b"), pair("d", "c")}},
		{"p/p", []TermPair{pair("a", "c"), pair("b", "d")}},
		{"p|q", []TermPair{pair("a", "b"), pair("b", "c"), pair("c", "d"), pair("a", "c")}},
		{"p/^p", []TermPair{pair("a", "a"), pair("b", "b"), pair("c", "c")}},
		{"q/^p", []TermPair{pair("a", "b")}},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			got := EvalPath(g, MustParsePath(tc.path))
			want := make(PairSet)
			for _, p := range tc.want {
				want[p] = true
			}
			if !got.Equal(want) {
				t.Errorf("⟦%s⟧ = %v, want %v", tc.path, got.Sorted(), want.Sorted())
			}
		})
	}
}

func TestEvalPathClosures(t *testing.T) {
	g := pathGraph()
	plus := EvalPath(g, MustParsePath("p+"))
	if len(plus) != 6 { // ab ac ad bc bd cd
		t.Errorf("p+ = %v", plus.Sorted())
	}
	if !plus[pair("a", "d")] {
		t.Error("p+ missing (a,d)")
	}
	star := EvalPath(g, MustParsePath("p*"))
	// p+ pairs plus identity on every graph term (a b c d).
	if len(star) != 6+4 {
		t.Errorf("p* = %v", star.Sorted())
	}
	if !star[pair("d", "d")] {
		t.Error("p* missing zero-length (d,d)")
	}
	opt := EvalPath(g, MustParsePath("q?"))
	if len(opt) != 1+4 {
		t.Errorf("q? = %v", opt.Sorted())
	}
}

func TestEvalPathCycle(t *testing.T) {
	g := rdf.NewGraph(rdf.T("a", "p", "b"), rdf.T("b", "p", "a"))
	plus := EvalPath(g, MustParsePath("p+"))
	for _, w := range []TermPair{pair("a", "a"), pair("a", "b"), pair("b", "a"), pair("b", "b")} {
		if !plus[w] {
			t.Errorf("p+ over a cycle missing %v", w)
		}
	}
}

func TestParsePathPrecedence(t *testing.T) {
	// '|' binds loosest, '/' next, postfix tightest.
	p := MustParsePath("a/b|c+")
	alt, ok := p.(PathAlt)
	if !ok {
		t.Fatalf("top = %T, want PathAlt", p)
	}
	if _, ok := alt.L.(PathSeq); !ok {
		t.Errorf("left of | = %T, want PathSeq", alt.L)
	}
	if _, ok := alt.R.(PathPlus); !ok {
		t.Errorf("right of | = %T, want PathPlus", alt.R)
	}
	// ^ wraps the whole path element including its modifier (SPARQL 1.1
	// grammar: '^' PathElt, PathElt ::= PathPrimary PathMod?).
	p2 := MustParsePath("^(a/b)*")
	inv, ok := p2.(PathInv)
	if !ok {
		t.Fatalf("p2 = %T, want PathInv", p2)
	}
	if _, ok := inv.P.(PathStar); !ok {
		t.Errorf("inside ^ = %T, want PathStar", inv.P)
	}
	p3 := MustParsePath("<http://x/y>+")
	if plus, ok := p3.(PathPlus); !ok || plus.P.(PathIRI).IRI != "http://x/y" {
		t.Errorf("bracketed IRI path = %v", p3)
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, src := range []string{"", "a/", "(a", "a)", "|a", "<unterminated", "a b"} {
		if _, err := ParsePath(src); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", src)
		}
	}
}

func TestPathStrings(t *testing.T) {
	for _, src := range []string{"a", "^a", "a/b", "a|b", "a*", "a+", "a?", "^(a|b)+"} {
		p := MustParsePath(src)
		// Round-trip: the rendering must re-parse to a semantically equal
		// expression (check on a sample graph).
		back, err := ParsePath(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q → %q failed: %v", src, p.String(), err)
		}
		g := pathGraph()
		if !EvalPath(g, p).Equal(EvalPath(g, back)) {
			t.Errorf("round trip changed semantics of %q", src)
		}
	}
}

func TestEnumeratePaths(t *testing.T) {
	exprs := EnumeratePaths([]string{"p"}, 3)
	// size 1: p. size 2: ^p, p*, p+, p?. size 3: unary over size-2 (16)
	// plus p/p, p|p.
	if len(exprs) != 1+4+16+2 {
		t.Errorf("enumerated %d expressions, want 23", len(exprs))
	}
	seen := make(map[string]bool)
	for _, e := range exprs {
		if seen[e.String()] {
			t.Errorf("duplicate expression %s", e)
		}
		seen[e.String()] = true
	}
	if len(EnumeratePaths([]string{"p", "q"}, 1)) != 2 {
		t.Error("size-1 enumeration wrong")
	}
}
