// Package sparql implements the algebraic formalization of SPARQL used in
// Section 3.1 of the paper (after Pérez, Arenas, Gutierrez 2009): graph
// patterns built from basic graph patterns with AND, UNION, OPT, FILTER and
// SELECT, built-in conditions, mapping sets with the ⋈ / ∪ / ∖ / left-outer
// -join operators, the evaluation function ⟦·⟧_G, and a parser for a concrete
// SPARQL subset (SELECT / CONSTRUCT / OPTIONAL / UNION / FILTER).
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// PTerm is a pattern term: a variable or an RDF term (URI, blank node, or
// literal). Blank nodes in basic graph patterns act as existential variables
// (the function h : B → U of the semantics).
type PTerm struct {
	// IsVar marks a variable; Var then holds its name including the '?'.
	IsVar bool
	Var   string
	// Term holds the RDF term when IsVar is false.
	Term rdf.Term
}

// Var returns a variable pattern term; the '?' prefix is added if missing.
func Var(name string) PTerm {
	if !strings.HasPrefix(name, "?") {
		name = "?" + name
	}
	return PTerm{IsVar: true, Var: name}
}

// IRI returns an IRI pattern term.
func IRI(iri string) PTerm { return PTerm{Term: rdf.NewIRI(iri)} }

// Blank returns a blank-node pattern term.
func Blank(label string) PTerm { return PTerm{Term: rdf.NewBlank(label)} }

// Lit returns a plain-literal pattern term.
func Lit(lex string) PTerm { return PTerm{Term: rdf.NewLiteral(lex)} }

// FromTerm wraps an RDF term as a pattern term.
func FromTerm(t rdf.Term) PTerm { return PTerm{Term: t} }

// String renders the pattern term.
func (t PTerm) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Term.String()
}

// IsBlank reports whether the term is a blank node.
func (t PTerm) IsBlank() bool { return !t.IsVar && t.Term.IsBlank() }

// TriplePattern is one triple of a basic graph pattern.
type TriplePattern struct {
	S, P, O PTerm
}

// TP builds a triple pattern.
func TP(s, p, o PTerm) TriplePattern { return TriplePattern{S: s, P: p, O: o} }

// String renders the triple pattern.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Terms returns the three pattern terms.
func (tp TriplePattern) Terms() [3]PTerm { return [3]PTerm{tp.S, tp.P, tp.O} }

// Pattern is a SPARQL graph pattern.
type Pattern interface {
	isPattern()
	// Vars returns var(P): the set of variables occurring in the pattern.
	Vars() map[string]bool
	String() string
}

// BGP is a basic graph pattern: a set of triple patterns.
type BGP struct {
	Triples []TriplePattern
}

// And is (P1 AND P2).
type And struct{ L, R Pattern }

// Union is (P1 UNION P2).
type Union struct{ L, R Pattern }

// Opt is (P1 OPT P2).
type Opt struct{ L, R Pattern }

// Filter is (P FILTER R).
type Filter struct {
	P    Pattern
	Cond Condition
}

// Select is (SELECT W P): projection to the variable set W.
type Select struct {
	Proj []string
	P    Pattern
}

func (BGP) isPattern()    {}
func (And) isPattern()    {}
func (Union) isPattern()  {}
func (Opt) isPattern()    {}
func (Filter) isPattern() {}
func (Select) isPattern() {}

// Vars implements Pattern.
func (p BGP) Vars() map[string]bool {
	out := make(map[string]bool)
	for _, tp := range p.Triples {
		for _, t := range tp.Terms() {
			if t.IsVar {
				out[t.Var] = true
			}
		}
	}
	return out
}

func union2(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// Vars implements Pattern.
func (p And) Vars() map[string]bool { return union2(p.L.Vars(), p.R.Vars()) }

// Vars implements Pattern.
func (p Union) Vars() map[string]bool { return union2(p.L.Vars(), p.R.Vars()) }

// Vars implements Pattern.
func (p Opt) Vars() map[string]bool { return union2(p.L.Vars(), p.R.Vars()) }

// Vars implements Pattern.
func (p Filter) Vars() map[string]bool { return p.P.Vars() }

// Vars implements Pattern.
func (p Select) Vars() map[string]bool {
	inner := p.P.Vars()
	out := make(map[string]bool)
	for _, v := range p.Proj {
		if inner[v] {
			out[v] = true
		}
	}
	return out
}

func (p BGP) String() string {
	parts := make([]string, len(p.Triples))
	for i, tp := range p.Triples {
		parts[i] = tp.String()
	}
	return "{" + strings.Join(parts, " . ") + "}"
}

func (p And) String() string    { return "(" + p.L.String() + " AND " + p.R.String() + ")" }
func (p Union) String() string  { return "(" + p.L.String() + " UNION " + p.R.String() + ")" }
func (p Opt) String() string    { return "(" + p.L.String() + " OPT " + p.R.String() + ")" }
func (p Filter) String() string { return "(" + p.P.String() + " FILTER " + p.Cond.String() + ")" }
func (p Select) String() string {
	vs := append([]string(nil), p.Proj...)
	sort.Strings(vs)
	return "(SELECT {" + strings.Join(vs, ",") + "} " + p.P.String() + ")"
}

// Condition is a SPARQL built-in condition (Section 3.1).
type Condition interface {
	isCondition()
	// Vars returns var(R).
	Vars() map[string]bool
	// Satisfied implements µ ⊨ R.
	Satisfied(m Mapping) bool
	String() string
}

// Bound is bound(?X).
type Bound struct{ Var string }

// EqConst is ?X = c.
type EqConst struct {
	Var string
	Val rdf.Term
}

// EqVars is ?X = ?Y.
type EqVars struct{ X, Y string }

// Neg is (¬R).
type Neg struct{ C Condition }

// Conj is (R1 ∧ R2).
type Conj struct{ L, R Condition }

// Disj is (R1 ∨ R2).
type Disj struct{ L, R Condition }

func (Bound) isCondition()   {}
func (EqConst) isCondition() {}
func (EqVars) isCondition()  {}
func (Neg) isCondition()     {}
func (Conj) isCondition()    {}
func (Disj) isCondition()    {}

// Vars implements Condition.
func (c Bound) Vars() map[string]bool { return map[string]bool{c.Var: true} }

// Vars implements Condition.
func (c EqConst) Vars() map[string]bool { return map[string]bool{c.Var: true} }

// Vars implements Condition.
func (c EqVars) Vars() map[string]bool { return map[string]bool{c.X: true, c.Y: true} }

// Vars implements Condition.
func (c Neg) Vars() map[string]bool { return c.C.Vars() }

// Vars implements Condition.
func (c Conj) Vars() map[string]bool { return union2(c.L.Vars(), c.R.Vars()) }

// Vars implements Condition.
func (c Disj) Vars() map[string]bool { return union2(c.L.Vars(), c.R.Vars()) }

// Satisfied implements µ ⊨ bound(?X).
func (c Bound) Satisfied(m Mapping) bool { _, ok := m[c.Var]; return ok }

// Satisfied implements µ ⊨ (?X = c).
func (c EqConst) Satisfied(m Mapping) bool {
	v, ok := m[c.Var]
	return ok && v == c.Val
}

// Satisfied implements µ ⊨ (?X = ?Y).
func (c EqVars) Satisfied(m Mapping) bool {
	x, okx := m[c.X]
	y, oky := m[c.Y]
	return okx && oky && x == y
}

// Satisfied implements µ ⊨ (¬R).
func (c Neg) Satisfied(m Mapping) bool { return !c.C.Satisfied(m) }

// Satisfied implements µ ⊨ (R1 ∧ R2).
func (c Conj) Satisfied(m Mapping) bool { return c.L.Satisfied(m) && c.R.Satisfied(m) }

// Satisfied implements µ ⊨ (R1 ∨ R2).
func (c Disj) Satisfied(m Mapping) bool { return c.L.Satisfied(m) || c.R.Satisfied(m) }

func (c Bound) String() string   { return "bound(" + c.Var + ")" }
func (c EqConst) String() string { return c.Var + " = " + c.Val.String() }
func (c EqVars) String() string  { return c.X + " = " + c.Y }
func (c Neg) String() string     { return "(¬" + c.C.String() + ")" }
func (c Conj) String() string    { return "(" + c.L.String() + " ∧ " + c.R.String() + ")" }
func (c Disj) String() string    { return "(" + c.L.String() + " ∨ " + c.R.String() + ")" }

// Validate checks the side condition var(R) ⊆ var(P) for every FILTER
// sub-pattern, as assumed by the paper.
func Validate(p Pattern) error {
	switch q := p.(type) {
	case BGP:
		return nil
	case And:
		if err := Validate(q.L); err != nil {
			return err
		}
		return Validate(q.R)
	case Union:
		if err := Validate(q.L); err != nil {
			return err
		}
		return Validate(q.R)
	case Opt:
		if err := Validate(q.L); err != nil {
			return err
		}
		return Validate(q.R)
	case Select:
		return Validate(q.P)
	case Filter:
		if err := Validate(q.P); err != nil {
			return err
		}
		pv := q.P.Vars()
		for v := range q.Cond.Vars() {
			if !pv[v] {
				return fmt.Errorf("sparql: FILTER uses %s which does not occur in the pattern %s", v, q.P)
			}
		}
		return nil
	default:
		return fmt.Errorf("sparql: unknown pattern type %T", p)
	}
}

// BasicPatterns returns the basic graph patterns of P in left-to-right order.
func BasicPatterns(p Pattern) []BGP {
	var out []BGP
	var walk func(Pattern)
	walk = func(p Pattern) {
		switch q := p.(type) {
		case BGP:
			out = append(out, q)
		case And:
			walk(q.L)
			walk(q.R)
		case Union:
			walk(q.L)
			walk(q.R)
		case Opt:
			walk(q.L)
			walk(q.R)
		case Filter:
			walk(q.P)
		case Select:
			walk(q.P)
		}
	}
	walk(p)
	return out
}
