package sparql

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func mp(pairs ...string) Mapping {
	if len(pairs)%2 != 0 {
		panic("mp: odd arguments")
	}
	m := make(Mapping)
	for i := 0; i < len(pairs); i += 2 {
		m["?"+pairs[i]] = rdf.NewIRI(pairs[i+1])
	}
	return m
}

func TestMappingCompatible(t *testing.T) {
	m1 := mp("X", "a", "Y", "b")
	m2 := mp("Y", "b", "Z", "c")
	m3 := mp("Y", "z")
	if !m1.Compatible(m2) || !m2.Compatible(m1) {
		t.Error("overlapping agreeing mappings should be compatible")
	}
	if m1.Compatible(m3) || m3.Compatible(m1) {
		t.Error("disagreeing mappings should be incompatible")
	}
	empty := Mapping{}
	if !empty.Compatible(m1) || !m1.Compatible(empty) {
		t.Error("µ∅ is compatible with everything")
	}
}

func TestMappingMergeRestrict(t *testing.T) {
	m := mp("X", "a").Merge(mp("Y", "b"))
	if len(m) != 2 || m["?X"] != rdf.NewIRI("a") || m["?Y"] != rdf.NewIRI("b") {
		t.Errorf("Merge = %v", m)
	}
	r := m.Restrict(map[string]bool{"?X": true})
	if len(r) != 1 || r["?X"] != rdf.NewIRI("a") {
		t.Errorf("Restrict = %v", r)
	}
}

func TestMappingEqualKey(t *testing.T) {
	m1 := mp("X", "a", "Y", "b")
	m2 := mp("Y", "b", "X", "a")
	if !m1.Equal(m2) || m1.Key() != m2.Key() {
		t.Error("insertion order must not matter")
	}
	if m1.Equal(mp("X", "a")) || m1.Key() == mp("X", "a").Key() {
		t.Error("different domains must differ")
	}
	if mp("X", "a").Equal(mp("X", "b")) {
		t.Error("different values must differ")
	}
}

func TestMappingSetBasics(t *testing.T) {
	s := NewMappingSet(mp("X", "a"), mp("X", "a"), mp("X", "b"))
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (dedup)", s.Len())
	}
	if !s.Has(mp("X", "a")) || s.Has(mp("X", "c")) {
		t.Error("Has wrong")
	}
	other := NewMappingSet(mp("X", "b"), mp("X", "a"))
	if !s.Equal(other) {
		t.Error("order-insensitive equality failed")
	}
}

func TestJoinSemantics(t *testing.T) {
	// Ω1 ⋈ Ω2 per the paper's definition.
	o1 := NewMappingSet(mp("X", "a", "Y", "b"), mp("X", "a", "Y", "z"))
	o2 := NewMappingSet(mp("Y", "b", "Z", "c"))
	j := Join(o1, o2)
	if j.Len() != 1 {
		t.Fatalf("Join = %v", j)
	}
	want := mp("X", "a", "Y", "b", "Z", "c")
	if !j.Has(want) {
		t.Errorf("Join missing %v", want)
	}
}

func TestDiffSemantics(t *testing.T) {
	o1 := NewMappingSet(mp("X", "a"), mp("X", "b"))
	o2 := NewMappingSet(mp("X", "a", "Y", "c"))
	d := Diff(o1, o2)
	// mp(X,a) is compatible with mp(X,a,Y,c) → removed; mp(X,b) survives.
	if d.Len() != 1 || !d.Has(mp("X", "b")) {
		t.Errorf("Diff = %v", d)
	}
}

func TestLeftOuterJoinSemantics(t *testing.T) {
	// The canonical OPT example: everyone keeps their name; phones attach
	// where available.
	names := NewMappingSet(mp("X", "u1", "N", "alice"), mp("X", "u2", "N", "bob"))
	phones := NewMappingSet(mp("X", "u1", "P", "123"))
	j := LeftOuterJoin(names, phones)
	if j.Len() != 2 {
		t.Fatalf("LeftOuterJoin = %v", j)
	}
	if !j.Has(mp("X", "u1", "N", "alice", "P", "123")) {
		t.Error("joined mapping missing")
	}
	if !j.Has(mp("X", "u2", "N", "bob")) {
		t.Error("unextended mapping missing")
	}
}

func randomMappingSet(rng *rand.Rand) *MappingSet {
	vars := []string{"X", "Y", "Z"}
	vals := []string{"a", "b", "c"}
	s := NewMappingSet()
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		m := make(Mapping)
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				m["?"+v] = rdf.NewIRI(vals[rng.Intn(len(vals))])
			}
		}
		s.Add(m)
	}
	return s
}

// Algebraic properties from the SPARQL algebra: commutativity of ⋈ and ∪,
// and the left-outer-join identity Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2).
func TestAlgebraProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomMappingSet(rng), randomMappingSet(rng)
		if !Join(a, b).Equal(Join(b, a)) {
			t.Logf("join not commutative for\n%s\n--\n%s", a, b)
			return false
		}
		if !UnionSets(a, b).Equal(UnionSets(b, a)) {
			return false
		}
		lo := LeftOuterJoin(a, b)
		alt := UnionSets(Join(a, b), Diff(a, b))
		return lo.Equal(alt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Join with the singleton {µ∅} is the identity.
func TestJoinIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMappingSet(rng)
		id := NewMappingSet(Mapping{})
		return Join(a, id).Equal(a) && Join(id, a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMappingString(t *testing.T) {
	m := mp("Y", "b", "X", "a")
	if got := m.String(); got != "{?X→<a>, ?Y→<b>}" {
		t.Errorf("String = %q", got)
	}
	s := NewMappingSet(mp("X", "b"), mp("X", "a"))
	if s.String() == "" {
		t.Error("set String empty")
	}
}
