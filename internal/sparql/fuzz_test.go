package sparql

import "testing"

// FuzzParseQuery asserts the SPARQL parser's total-function contract: any
// input must produce a query or an error — never a panic. Parsed SELECT
// queries must also build their algebraic pattern without panicking (the
// translation pipeline calls Pattern() unconditionally).
func FuzzParseQuery(f *testing.F) {
	f.Add(`SELECT ?X ?Y WHERE { ?Y name ?X . OPTIONAL { ?Y phone ?Z } }`)
	f.Add(`SELECT * WHERE { { ?X a t1 } UNION { ?X a t2 } FILTER(bound(?X)) }`)
	f.Add(`CONSTRUCT { ?X name_author ?Z } WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	f.Add(`SELECT ?X WHERE { ?X <http://p> "lit"@en }`)
	f.Add(`SELECT ?X WHERE { _:b ?X ?X FILTER(?X = ?X && !bound(?Y)) }`)
	f.Add(`SELECT WHERE`)
	f.Add(`SELECT * WHERE { ?X`)
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		_ = q.Pattern()
	})
}
