package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// This file implements the nested regular expressions (NREs) of nSPARQL
// (Pérez, Arenas, Gutierrez — reference [32] of the paper), the strongest of
// the navigational languages the paper compares against in Corollary 7.3.
// Unlike SPARQL 1.1 property paths, NREs can navigate *through* predicates
// with nested tests, so they express the Section 2 transport query:
//
//	(next::[ (next::partOf)+ / self::transportService ])+
//
// Corollary 7.3's separation from TriQ-Lite 1.0 is therefore not about this
// query but about program expressive power: nSPARQL translates into
// Datalog^{¬s,⊥}, which Theorem 7.2 separates from TriQ-Lite 1.0.
//
// Grammar (axes per the nSPARQL paper; ⁻¹ may be written -1):
//
//	nre   := alt
//	alt   := seq ('|' seq)*
//	seq   := unary ('/' unary)*
//	unary := primary ('*' | '+' | '?')*
//	primary := axis | axis '::' IRI | axis '::[' alt ']' | '(' alt ')'
//	axis  := (self | next | edge | node) ['⁻¹' | '-1']

// Axis is an nSPARQL navigation axis.
type Axis int

const (
	// AxisSelf stays on the current node.
	AxisSelf Axis = iota
	// AxisNext moves subject → object (over the predicate).
	AxisNext
	// AxisEdge moves subject → predicate (over the object).
	AxisEdge
	// AxisNode moves predicate → object (over the subject).
	AxisNode
)

func (a Axis) String() string {
	switch a {
	case AxisSelf:
		return "self"
	case AxisNext:
		return "next"
	case AxisEdge:
		return "edge"
	case AxisNode:
		return "node"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// NRE is a nested regular expression.
type NRE interface {
	isNRE()
	String() string
}

// NREStep is one axis step, optionally labeled (axis::a) or tested
// (axis::[exp]), optionally inverted.
type NREStep struct {
	Axis    Axis
	Inverse bool
	// Label restricts the element passed over to one IRI (axis::a).
	Label *rdf.Term
	// Test restricts the element passed over by a nested expression.
	Test NRE
}

// NRESeq is exp1/exp2.
type NRESeq struct{ L, R NRE }

// NREAlt is exp1|exp2.
type NREAlt struct{ L, R NRE }

// NREStar is exp*.
type NREStar struct{ P NRE }

func (NREStep) isNRE() {}
func (NRESeq) isNRE()  {}
func (NREAlt) isNRE()  {}
func (NREStar) isNRE() {}

func (s NREStep) String() string {
	out := s.Axis.String()
	if s.Inverse {
		out += "⁻¹"
	}
	if s.Label != nil {
		out += "::" + s.Label.Value
	} else if s.Test != nil {
		out += "::[" + s.Test.String() + "]"
	}
	return out
}

func (s NRESeq) String() string  { return nreParen(s.L) + "/" + nreParen(s.R) }
func (s NREAlt) String() string  { return nreParen(s.L) + "|" + nreParen(s.R) }
func (s NREStar) String() string { return nreParen(s.P) + "*" }

func nreParen(e NRE) string {
	switch e.(type) {
	case NREStep:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// EvalNRE computes the pairs of graph terms related by the expression.
func EvalNRE(g *rdf.Graph, e NRE) PairSet {
	switch q := e.(type) {
	case NREStep:
		return evalStep(g, q)
	case NRESeq:
		l, r := EvalNRE(g, q.L), EvalNRE(g, q.R)
		byFirst := make(map[rdf.Term][]rdf.Term)
		for pr := range r {
			byFirst[pr[0]] = append(byFirst[pr[0]], pr[1])
		}
		out := make(PairSet)
		for pr := range l {
			for _, z := range byFirst[pr[1]] {
				out[TermPair{pr[0], z}] = true
			}
		}
		return out
	case NREAlt:
		out := EvalNRE(g, q.L)
		for pr := range EvalNRE(g, q.R) {
			out[pr] = true
		}
		return out
	case NREStar:
		out := transitiveClosure(EvalNRE(g, q.P))
		for _, t := range allTerms(g) {
			out[TermPair{t, t}] = true
		}
		return out
	default:
		panic(fmt.Sprintf("sparql: unknown NRE type %T", e))
	}
}

func allTerms(g *rdf.Graph) []rdf.Term { return g.Terms() }

// passes reports whether the middle element z satisfies the step's label or
// nested test; testOK is the set of terms with an outgoing test pair.
func stepFilter(g *rdf.Graph, s NREStep) func(z rdf.Term) bool {
	if s.Label != nil {
		want := *s.Label
		return func(z rdf.Term) bool { return z == want }
	}
	if s.Test != nil {
		ok := make(map[rdf.Term]bool)
		for pr := range EvalNRE(g, s.Test) {
			ok[pr[0]] = true
		}
		return func(z rdf.Term) bool { return ok[z] }
	}
	return func(rdf.Term) bool { return true }
}

func evalStep(g *rdf.Graph, s NREStep) PairSet {
	out := make(PairSet)
	add := func(x, y rdf.Term) {
		if s.Inverse {
			out[TermPair{y, x}] = true
		} else {
			out[TermPair{x, y}] = true
		}
	}
	filter := stepFilter(g, s)
	if s.Axis == AxisSelf {
		if s.Label != nil {
			// self::a = {(a,a)} (on nonempty graphs; the Datalog translation
			// anchors the pair to the active domain the same way).
			if g.Len() > 0 {
				add(*s.Label, *s.Label)
			}
			return out
		}
		for _, t := range allTerms(g) {
			if filter(t) {
				add(t, t)
			}
		}
		return out
	}
	for _, tr := range g.Triples() {
		var from, over, to rdf.Term
		switch s.Axis {
		case AxisNext: // subject → object over the predicate
			from, over, to = tr.S, tr.P, tr.O
		case AxisEdge: // subject → predicate over the object
			from, over, to = tr.S, tr.O, tr.P
		case AxisNode: // predicate → object over the subject
			from, over, to = tr.P, tr.S, tr.O
		}
		if filter(over) {
			add(from, to)
		}
	}
	return out
}

// ParseNRE parses a nested regular expression.
func ParseNRE(src string) (NRE, error) {
	p := &nreParser{in: src}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos < len(p.in) {
		return nil, fmt.Errorf("sparql: trailing NRE input %q", p.in[p.pos:])
	}
	return e, nil
}

// MustParseNRE is ParseNRE, panicking on error.
func MustParseNRE(src string) NRE {
	e, err := ParseNRE(src)
	if err != nil {
		panic(err)
	}
	return e
}

type nreParser struct {
	in  string
	pos int
}

func (p *nreParser) skip() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *nreParser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *nreParser) alt() (NRE, error) {
	l, err := p.seq()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != '|' {
			return l, nil
		}
		p.pos++
		r, err := p.seq()
		if err != nil {
			return nil, err
		}
		l = NREAlt{L: l, R: r}
	}
}

func (p *nreParser) seq() (NRE, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != '/' {
			return l, nil
		}
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = NRESeq{L: l, R: r}
	}
}

func (p *nreParser) unary() (NRE, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		switch p.peek() {
		case '*':
			p.pos++
			e = NREStar{P: e}
		case '+':
			p.pos++
			e = NRESeq{L: e, R: NREStar{P: e}}
		case '?':
			p.pos++
			e = NREAlt{L: e, R: NREStep{Axis: AxisSelf}}
		default:
			return e, nil
		}
	}
}

func (p *nreParser) primary() (NRE, error) {
	p.skip()
	if p.peek() == '(' {
		p.pos++
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, fmt.Errorf("sparql: expected ')' in NRE at %q", p.in[p.pos:])
		}
		p.pos++
		return e, nil
	}
	var axis Axis
	switch {
	case strings.HasPrefix(p.in[p.pos:], "self"):
		axis = AxisSelf
	case strings.HasPrefix(p.in[p.pos:], "next"):
		axis = AxisNext
	case strings.HasPrefix(p.in[p.pos:], "edge"):
		axis = AxisEdge
	case strings.HasPrefix(p.in[p.pos:], "node"):
		axis = AxisNode
	default:
		return nil, fmt.Errorf("sparql: expected an axis (self/next/edge/node) at %q", p.in[p.pos:])
	}
	p.pos += 4
	step := NREStep{Axis: axis}
	switch {
	case strings.HasPrefix(p.in[p.pos:], "⁻¹"):
		step.Inverse = true
		p.pos += len("⁻¹")
	case strings.HasPrefix(p.in[p.pos:], "-1"):
		step.Inverse = true
		p.pos += 2
	}
	p.skip()
	if strings.HasPrefix(p.in[p.pos:], "::") {
		p.pos += 2
		p.skip()
		if p.peek() == '[' {
			p.pos++
			test, err := p.alt()
			if err != nil {
				return nil, err
			}
			p.skip()
			if p.peek() != ']' {
				return nil, fmt.Errorf("sparql: expected ']' in NRE test")
			}
			p.pos++
			step.Test = test
			return step, nil
		}
		label := p.word()
		if label == "" {
			return nil, fmt.Errorf("sparql: expected label after '::'")
		}
		t := rdf.NewIRI(label)
		step.Label = &t
		return step, nil
	}
	return step, nil
}

func (p *nreParser) word() string {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if isPathNameByte(c) {
			p.pos++
			continue
		}
		// allow the multi-byte ⁻¹ suffix
		if strings.HasPrefix(p.in[p.pos:], "⁻¹") {
			p.pos += len("⁻¹")
			continue
		}
		break
	}
	return p.in[start:p.pos]
}

// PathToNRE embeds a SPARQL 1.1 property path into a nested regular
// expression: p ↦ next::p, ^e ↦ inverse, and /, |, *, +, ? map to their NRE
// counterparts. This is the inclusion "property paths ⊆ nSPARQL" that makes
// the navigational baselines of the paper comparable. The two specifications
// disagree on zero-length paths — SPARQL matches subjects and objects only,
// nSPARQL's self ranges over all of voc(G) — so the embedding is exact after
// restricting the NRE result to node terms:
//
//	EvalPath(g, p) = {(x,y) ∈ EvalNRE(g, PathToNRE(p)) : x, y node terms of g}
func PathToNRE(p PathExpr) NRE {
	switch q := p.(type) {
	case PathIRI:
		label := rdf.NewIRI(q.IRI)
		return NREStep{Axis: AxisNext, Label: &label}
	case PathInv:
		return invertNRE(PathToNRE(q.P))
	case PathSeq:
		return NRESeq{L: PathToNRE(q.L), R: PathToNRE(q.R)}
	case PathAlt:
		return NREAlt{L: PathToNRE(q.L), R: PathToNRE(q.R)}
	case PathStar:
		return NREStar{P: PathToNRE(q.P)}
	case PathPlus:
		inner := PathToNRE(q.P)
		return NRESeq{L: inner, R: NREStar{P: inner}}
	case PathOpt:
		return NREAlt{L: PathToNRE(q.P), R: NREStep{Axis: AxisSelf}}
	default:
		panic(fmt.Sprintf("sparql: unknown path type %T", p))
	}
}

// invertNRE reverses the direction of an expression.
func invertNRE(e NRE) NRE {
	switch q := e.(type) {
	case NREStep:
		q.Inverse = !q.Inverse
		return q
	case NRESeq:
		return NRESeq{L: invertNRE(q.R), R: invertNRE(q.L)}
	case NREAlt:
		return NREAlt{L: invertNRE(q.L), R: invertNRE(q.R)}
	case NREStar:
		return NREStar{P: invertNRE(q.P)}
	default:
		panic(fmt.Sprintf("sparql: unknown NRE type %T", e))
	}
}
