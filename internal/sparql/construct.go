package sparql

import (
	"fmt"
	"strconv"

	"repro/internal/rdf"
)

// Construct evaluates a CONSTRUCT query over a graph: the WHERE pattern is
// evaluated to a set of mappings, and for each mapping the template is
// instantiated. As the paper discusses in Section 2, the semantics of blank
// nodes in CONSTRUCT is local: a fresh blank node is created per template
// blank node *per mapping*.
func (q *Query) Construct(g *rdf.Graph) (*rdf.Graph, error) {
	if q.Kind != ConstructQuery {
		return nil, fmt.Errorf("sparql: not a CONSTRUCT query")
	}
	out := rdf.NewGraph()
	fresh := 0
	for _, m := range Eval(q.Where, g).Mappings() {
		blanks := make(map[string]rdf.Term)
		inst := func(t PTerm) (rdf.Term, bool) {
			if t.IsVar {
				v, ok := m[t.Var]
				return v, ok
			}
			if t.Term.IsBlank() {
				b, ok := blanks[t.Term.Value]
				if !ok {
					b = rdf.NewBlank("c" + strconv.Itoa(fresh))
					fresh++
					blanks[t.Term.Value] = b
				}
				return b, true
			}
			return t.Term, true
		}
		for _, tp := range q.Template {
			s, ok1 := inst(tp.S)
			p, ok2 := inst(tp.P)
			o, ok3 := inst(tp.O)
			// Template triples with unbound variables are skipped, as in
			// the SPARQL specification.
			if ok1 && ok2 && ok3 {
				out.Add(rdf.NewTriple(s, p, o))
			}
		}
	}
	return out, nil
}
