package sparql

import (
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

func nreGraph() *rdf.Graph {
	return rdf.NewGraph(
		rdf.T("a", "p", "b"),
		rdf.T("b", "q", "c"),
		rdf.T("p", "subPropertyOf", "r"),
	)
}

func TestNREAxes(t *testing.T) {
	g := nreGraph()
	cases := []struct {
		nre  string
		want []TermPair
	}{
		{"next::p", []TermPair{pair("a", "b")}},
		{"next", []TermPair{pair("a", "b"), pair("b", "c"), pair("p", "r")}},
		{"next⁻¹::p", []TermPair{pair("b", "a")}},
		{"next-1::p", []TermPair{pair("b", "a")}},
		{"edge::b", []TermPair{pair("a", "p")}}, // subject → predicate over object
		{"node::a", []TermPair{pair("p", "b")}}, // predicate → object over subject
		{"self::a", []TermPair{pair("a", "a")}},
		{"next::p/next::q", []TermPair{pair("a", "c")}},
		{"next::p|next::q", []TermPair{pair("a", "b"), pair("b", "c")}},
	}
	for _, tc := range cases {
		t.Run(tc.nre, func(t *testing.T) {
			got := EvalNRE(g, MustParseNRE(tc.nre))
			want := make(PairSet)
			for _, p := range tc.want {
				want[p] = true
			}
			if !got.Equal(want) {
				t.Errorf("⟦%s⟧ = %v, want %v", tc.nre, got.Sorted(), want.Sorted())
			}
		})
	}
}

func TestNRESelfIsIdentityOnTerms(t *testing.T) {
	g := nreGraph()
	self := EvalNRE(g, MustParseNRE("self"))
	terms := g.Terms()
	if len(self) != len(terms) {
		t.Errorf("self = %d pairs, want %d", len(self), len(terms))
	}
	for _, x := range terms {
		if !self[TermPair{x, x}] {
			t.Errorf("self missing (%v,%v)", x, x)
		}
	}
}

func TestNRENestedTest(t *testing.T) {
	// next::[ next::subPropertyOf / self::r ]: traverse an edge whose
	// predicate is a (direct) subproperty of r.
	g := nreGraph()
	got := EvalNRE(g, MustParseNRE("next::[ next::subPropertyOf / self::r ]"))
	want := PairSet{pair("a", "b"): true}
	if !got.Equal(want) {
		t.Errorf("nested test = %v", got.Sorted())
	}
}

func TestNREClosures(t *testing.T) {
	g := rdf.NewGraph(rdf.T("a", "p", "b"), rdf.T("b", "p", "c"))
	plus := EvalNRE(g, MustParseNRE("next::p+"))
	if len(plus) != 3 || !plus[pair("a", "c")] {
		t.Errorf("plus = %v", plus.Sorted())
	}
	star := EvalNRE(g, MustParseNRE("next::p*"))
	// 3 closure pairs + identity on all 4 terms (a, b, c, p).
	if len(star) != 3+4 {
		t.Errorf("star = %v", star.Sorted())
	}
	opt := EvalNRE(g, MustParseNRE("next::p?"))
	if len(opt) != 2+4 {
		t.Errorf("opt = %v", opt.Sorted())
	}
}

// TestNREExpressesTransport is the flip side of experiment E9: nSPARQL's
// nested regular expressions (unlike plain property paths) DO express the
// Section 2 transport query, with a fixed expression that transfers across
// renamed networks — matching the role reference [32] plays in the paper.
func TestNREExpressesTransport(t *testing.T) {
	nre := MustParseNRE("(next::[ (next::partOf)+ / self::transportService ])+")
	for _, tag := range []string{"acme", "zeta"} {
		g := transportGraphForNRE(tag)
		got := EvalNRE(g, nre)
		want := transportPairsDirect(g)
		if !got.Equal(want) {
			t.Errorf("tag %s: NRE = %v, want %v", tag, got.Sorted(), want.Sorted())
		}
		if len(want) == 0 {
			t.Fatal("reference relation empty — vacuous test")
		}
	}
}

// transportGraphForNRE builds a small two-line network (mirrors
// workload.TransportGraph, re-built here to avoid an import cycle).
func transportGraphForNRE(tag string) *rdf.Graph {
	g := rdf.NewGraph(
		rdf.T(tag+"_hub", "partOf", "transportService"),
		rdf.T(tag+"_line0", "partOf", tag+"_hub"),
		rdf.T(tag+"_line1", "partOf", tag+"_hub"),
		rdf.T("city_0", tag+"_line0", "city_1"),
		rdf.T("city_1", tag+"_line0", "city_2"),
		rdf.T("city_2", tag+"_line1", "city_3"),
	)
	return g
}

// transportPairsDirect computes the reference relation by brute force.
func transportPairsDirect(g *rdf.Graph) PairSet {
	// Transport services: partOf+ reaches transportService.
	partOf := EvalPath(g, MustParsePath("partOf+"))
	ts := make(map[rdf.Term]bool)
	for pr := range partOf {
		if pr[1] == rdf.NewIRI("transportService") {
			ts[pr[0]] = true
		}
	}
	edges := make(PairSet)
	for _, tr := range g.Triples() {
		if ts[tr.P] {
			edges[TermPair{tr.S, tr.O}] = true
		}
	}
	return transitiveClosure(edges)
}

func TestParseNREErrors(t *testing.T) {
	bad := []string{
		"",
		"bogus",
		"next::",
		"next::[",
		"next::[self",
		"(next",
		"next/",
		"next | ",
		"next]]",
	}
	for _, src := range bad {
		if _, err := ParseNRE(src); err == nil {
			t.Errorf("ParseNRE(%q) succeeded, want error", src)
		}
	}
}

func TestNREStrings(t *testing.T) {
	for _, src := range []string{
		"next::p", "next⁻¹", "self::a", "edge/node",
		"(next|edge)*", "next::[ self::a ]",
	} {
		e := MustParseNRE(src)
		back, err := ParseNRE(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q → %q: %v", src, e.String(), err)
		}
		g := nreGraph()
		if !EvalNRE(g, e).Equal(EvalNRE(g, back)) {
			t.Errorf("round trip changed semantics of %q", src)
		}
	}
	if AxisSelf.String() != "self" || Axis(9).String() == "" {
		t.Error("Axis.String wrong")
	}
}

// Property paths embed into NREs: evaluation agrees on random expressions.
func TestPathToNREAgrees(t *testing.T) {
	g := rdf.NewGraph(
		rdf.T("a", "p", "b"), rdf.T("b", "p", "c"), rdf.T("b", "q", "a"),
		rdf.T("c", "q", "b"),
	)
	exprs := []string{
		"p", "^p", "p/q", "p|q", "p*", "p+", "p?", "^(p/q)", "(p|^q)+", "p/^p",
	}
	for _, src := range exprs {
		t.Run(src, func(t *testing.T) {
			path := MustParsePath(src)
			direct := EvalPath(g, path)
			viaNRE := restrictToNodes(g, EvalNRE(g, PathToNRE(path)))
			if !direct.Equal(viaNRE) {
				t.Errorf("⟦%s⟧: path %v vs NRE %v", src, direct.Sorted(), viaNRE.Sorted())
			}
		})
	}
}

// …and randomized over graphs.
func TestPathToNRERandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := []string{"a", "b", "c"}
	preds := []string{"p", "q"}
	var build func(depth int) PathExpr
	build = func(depth int) PathExpr {
		if depth <= 0 {
			return PathIRI{IRI: preds[rng.Intn(len(preds))]}
		}
		switch rng.Intn(6) {
		case 0:
			return PathInv{P: build(depth - 1)}
		case 1:
			return PathSeq{L: build(depth - 1), R: build(depth - 1)}
		case 2:
			return PathAlt{L: build(depth - 1), R: build(depth - 1)}
		case 3:
			return PathStar{P: build(depth - 1)}
		case 4:
			return PathPlus{P: build(depth - 1)}
		default:
			return PathOpt{P: build(depth - 1)}
		}
	}
	for round := 0; round < 60; round++ {
		g := rdf.NewGraph()
		for i := 0; i < 1+rng.Intn(6); i++ {
			g.Add(rdf.T(names[rng.Intn(3)], preds[rng.Intn(2)], names[rng.Intn(3)]))
		}
		p := build(2)
		if !EvalPath(g, p).Equal(restrictToNodes(g, EvalNRE(g, PathToNRE(p)))) {
			t.Fatalf("round %d: path %s disagrees with its NRE embedding over\n%s", round, p, g)
		}
	}
}

// restrictToNodes drops pairs touching predicate-only terms: SPARQL paths
// range over subjects and objects, nSPARQL over all of voc(G).
func restrictToNodes(g *rdf.Graph, ps PairSet) PairSet {
	nodes := make(map[rdf.Term]bool)
	for _, t := range g.Triples() {
		nodes[t.S] = true
		nodes[t.O] = true
	}
	out := make(PairSet)
	for pr := range ps {
		if nodes[pr[0]] && nodes[pr[1]] {
			out[pr] = true
		}
	}
	return out
}
