package sparql

import (
	"testing"
	"testing/quick"
)

func TestSPARQLParsersNeverPanic(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", s, r)
			}
		}()
		_, _ = ParseQuery(s)
		_, _ = ParsePath(s)
		_, _ = ParseNRE(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Structured prefixes of valid queries.
	full := `SELECT ?X WHERE { ?X name ?N . OPTIONAL { ?X phone ?P } FILTER(?N != bob && bound(?P)) }`
	for i := 0; i <= len(full); i++ {
		_, _ = ParseQuery(full[:i])
	}
	fullPath := `(partOf+/^partOf | knows)*`
	for i := 0; i <= len(fullPath); i++ {
		_, _ = ParsePath(fullPath[:i])
	}
	fullNRE := `(next::[ (next::partOf)+ / self::transportService ])+`
	for i := 0; i <= len(fullNRE); i++ {
		_, _ = ParseNRE(fullNRE[:i])
	}
}
