package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// This file implements the navigational baseline the paper's introduction
// measures itself against: SPARQL 1.1 property paths (a regular-expression
// mechanism over predicates). Section 2 argues — after [26, 36] — that the
// transport-service query cannot be expressed with property paths because it
// must recurse in two directions at once; experiment E9 demonstrates this
// finitely by enumerating all small path expressions.
//
// Supported grammar (SPARQL 1.1 §9.1, negated property sets omitted):
//
//	path  := alt
//	alt   := seq ('|' seq)*
//	seq   := unary ('/' unary)*
//	unary := '^' unary | primary postfix*
//	postfix := '*' | '+' | '?'
//	primary := IRI | '(' path ')'

// PathExpr is a SPARQL 1.1 property-path expression.
type PathExpr interface {
	isPath()
	String() string
}

// PathIRI is a single predicate step.
type PathIRI struct{ IRI string }

// PathInv is ^p: the inverse step.
type PathInv struct{ P PathExpr }

// PathSeq is p1/p2: composition.
type PathSeq struct{ L, R PathExpr }

// PathAlt is p1|p2: alternation.
type PathAlt struct{ L, R PathExpr }

// PathStar is p*: zero or more.
type PathStar struct{ P PathExpr }

// PathPlus is p+: one or more.
type PathPlus struct{ P PathExpr }

// PathOpt is p?: zero or one.
type PathOpt struct{ P PathExpr }

func (PathIRI) isPath()  {}
func (PathInv) isPath()  {}
func (PathSeq) isPath()  {}
func (PathAlt) isPath()  {}
func (PathStar) isPath() {}
func (PathPlus) isPath() {}
func (PathOpt) isPath()  {}

func (p PathIRI) String() string  { return p.IRI }
func (p PathInv) String() string  { return "^" + parenthesize(p.P) }
func (p PathSeq) String() string  { return parenthesize(p.L) + "/" + parenthesize(p.R) }
func (p PathAlt) String() string  { return parenthesize(p.L) + "|" + parenthesize(p.R) }
func (p PathStar) String() string { return parenthesize(p.P) + "*" }
func (p PathPlus) String() string { return parenthesize(p.P) + "+" }
func (p PathOpt) String() string  { return parenthesize(p.P) + "?" }

func parenthesize(p PathExpr) string {
	switch p.(type) {
	case PathIRI:
		return p.String()
	default:
		return "(" + p.String() + ")"
	}
}

// TermPair is an (subject, object) pair connected by a path.
type TermPair [2]rdf.Term

// PairSet is a set of term pairs.
type PairSet map[TermPair]bool

// Sorted returns the pairs in canonical order.
func (s PairSet) Sorted() []TermPair {
	out := make([]TermPair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i][0].Compare(out[j][0]); c != 0 {
			return c < 0
		}
		return out[i][1].Compare(out[j][1]) < 0
	})
	return out
}

// Equal reports set equality.
func (s PairSet) Equal(t PairSet) bool {
	if len(s) != len(t) {
		return false
	}
	for p := range s {
		if !t[p] {
			return false
		}
	}
	return true
}

// EvalPath computes the pairs of graph terms connected by the path
// expression, per the SPARQL 1.1 path semantics (with the W3C "simple walk"
// subtleties resolved to the standard existential reading: p* relates x to y
// iff some p-walk of length ≥ 0 connects them; zero-length paths relate
// every term occurring in the graph to itself).
func EvalPath(g *rdf.Graph, p PathExpr) PairSet {
	switch q := p.(type) {
	case PathIRI:
		out := make(PairSet)
		pred := rdf.NewIRI(q.IRI)
		for _, t := range g.Match(nil, &pred, nil) {
			out[TermPair{t.S, t.O}] = true
		}
		return out
	case PathInv:
		inner := EvalPath(g, q.P)
		out := make(PairSet, len(inner))
		for pr := range inner {
			out[TermPair{pr[1], pr[0]}] = true
		}
		return out
	case PathSeq:
		l, r := EvalPath(g, q.L), EvalPath(g, q.R)
		byFirst := make(map[rdf.Term][]rdf.Term)
		for pr := range r {
			byFirst[pr[0]] = append(byFirst[pr[0]], pr[1])
		}
		out := make(PairSet)
		for pr := range l {
			for _, z := range byFirst[pr[1]] {
				out[TermPair{pr[0], z}] = true
			}
		}
		return out
	case PathAlt:
		out := EvalPath(g, q.L)
		for pr := range EvalPath(g, q.R) {
			out[pr] = true
		}
		return out
	case PathStar:
		out := transitiveClosure(EvalPath(g, q.P))
		for _, t := range nodeTerms(g) {
			out[TermPair{t, t}] = true
		}
		return out
	case PathPlus:
		return transitiveClosure(EvalPath(g, q.P))
	case PathOpt:
		out := EvalPath(g, q.P)
		for _, t := range nodeTerms(g) {
			out[TermPair{t, t}] = true
		}
		return out
	default:
		panic(fmt.Sprintf("sparql: unknown path type %T", p))
	}
}

func nodeTerms(g *rdf.Graph) []rdf.Term {
	seen := make(map[rdf.Term]bool)
	var out []rdf.Term
	for _, t := range g.Triples() {
		for _, x := range []rdf.Term{t.S, t.O} {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}

func transitiveClosure(base PairSet) PairSet {
	succ := make(map[rdf.Term][]rdf.Term)
	for pr := range base {
		succ[pr[0]] = append(succ[pr[0]], pr[1])
	}
	out := make(PairSet, len(base))
	for start := range succ {
		// BFS from each source.
		queue := append([]rdf.Term(nil), succ[start]...)
		seen := make(map[rdf.Term]bool)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if seen[x] {
				continue
			}
			seen[x] = true
			out[TermPair{start, x}] = true
			queue = append(queue, succ[x]...)
		}
	}
	return out
}

// ParsePath parses a property-path expression such as
// "partOf+/^partOf | (knows/knows)*".
func ParsePath(src string) (PathExpr, error) {
	p := &pathParser{in: src}
	expr, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos < len(p.in) {
		return nil, fmt.Errorf("sparql: trailing path input %q", p.in[p.pos:])
	}
	return expr, nil
}

// MustParsePath is ParsePath, panicking on error.
func MustParsePath(src string) PathExpr {
	p, err := ParsePath(src)
	if err != nil {
		panic(err)
	}
	return p
}

type pathParser struct {
	in  string
	pos int
}

func (p *pathParser) skip() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *pathParser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *pathParser) alt() (PathExpr, error) {
	l, err := p.seq()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != '|' {
			return l, nil
		}
		p.pos++
		r, err := p.seq()
		if err != nil {
			return nil, err
		}
		l = PathAlt{L: l, R: r}
	}
}

func (p *pathParser) seq() (PathExpr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != '/' {
			return l, nil
		}
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = PathSeq{L: l, R: r}
	}
}

func (p *pathParser) unary() (PathExpr, error) {
	p.skip()
	if p.peek() == '^' {
		p.pos++
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return PathInv{P: inner}, nil
	}
	expr, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		switch p.peek() {
		case '*':
			p.pos++
			expr = PathStar{P: expr}
		case '+':
			p.pos++
			expr = PathPlus{P: expr}
		case '?':
			p.pos++
			expr = PathOpt{P: expr}
		default:
			return expr, nil
		}
	}
}

func (p *pathParser) primary() (PathExpr, error) {
	p.skip()
	if p.peek() == '(' {
		p.pos++
		inner, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, fmt.Errorf("sparql: expected ')' in path at %q", p.in[p.pos:])
		}
		p.pos++
		return inner, nil
	}
	if p.peek() == '<' {
		end := strings.IndexByte(p.in[p.pos:], '>')
		if end < 0 {
			return nil, fmt.Errorf("sparql: unterminated IRI in path")
		}
		iri := p.in[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return PathIRI{IRI: iri}, nil
	}
	start := p.pos
	for p.pos < len(p.in) && isPathNameByte(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("sparql: expected path step at %q", p.in[start:])
	}
	return PathIRI{IRI: p.in[start:p.pos]}, nil
}

func isPathNameByte(c byte) bool {
	switch c {
	case '_', ':', '-', '.':
		return true
	}
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c >= 0x80
}

// EnumeratePaths generates every path expression of syntactic size ≤ maxSize
// over the given predicate alphabet (size = number of operators and steps).
// Used by experiment E9 to falsify expressibility claims exhaustively over a
// finite fragment.
func EnumeratePaths(alphabet []string, maxSize int) []PathExpr {
	bySize := make([][]PathExpr, maxSize+1)
	for _, a := range alphabet {
		bySize[1] = append(bySize[1], PathIRI{IRI: a})
	}
	for size := 2; size <= maxSize; size++ {
		for _, inner := range bySize[size-1] {
			bySize[size] = append(bySize[size],
				PathInv{P: inner}, PathStar{P: inner}, PathPlus{P: inner}, PathOpt{P: inner})
		}
		for ls := 1; ls < size-1; ls++ {
			for _, l := range bySize[ls] {
				for _, r := range bySize[size-1-ls] {
					bySize[size] = append(bySize[size], PathSeq{L: l, R: r}, PathAlt{L: l, R: r})
				}
			}
		}
	}
	var out []PathExpr
	for _, exprs := range bySize {
		out = append(out, exprs...)
	}
	return out
}
