package limits

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestWireErrorRoundTrip pins the wire format: a typed limits error survives
// error → WireError → JSON → WireError → error with its sentinel (errors.Is)
// and its full Truncation report intact.
func TestWireErrorRoundTrip(t *testing.T) {
	orig := NewError(ErrFactBudget, Truncation{
		Budget:  1000,
		Reached: 1000,
		Rounds:  7,
		Facts:   1000,
		Elapsed: 1500 * time.Microsecond,
		PerRule: []RuleStat{{
			Index: 2, Rule: "a(?X) -> b(?X).",
			TriggersAttempted: 40, TriggersFired: 12, FactsDerived: 12,
		}},
	})

	buf, err := json.Marshal(ToWire(orig))
	if err != nil {
		t.Fatal(err)
	}
	var w WireError
	if err := json.Unmarshal(buf, &w); err != nil {
		t.Fatal(err)
	}
	back := w.Err()
	if !errors.Is(back, ErrFactBudget) {
		t.Fatalf("round-trip lost the sentinel: %v", back)
	}
	tr, ok := TruncationOf(back)
	if !ok {
		t.Fatal("round-trip lost the Truncation report")
	}
	if !reflect.DeepEqual(*tr, orig.Trunc) {
		t.Fatalf("truncation mismatch:\n got %+v\nwant %+v", *tr, orig.Trunc)
	}
}

// TestWireErrorStableFieldNames pins the JSON key names: they are the shared
// contract between triqd error bodies and the CLI -json output.
func TestWireErrorStableFieldNames(t *testing.T) {
	w := ToWire(NewError(ErrDeadline, Truncation{
		Rounds: 1, Facts: 2, Visits: 3, Elapsed: time.Millisecond,
		PerRule: []RuleStat{{Rule: "r", TriggersAttempted: 1, TriggersFired: 1, FactsDerived: 1}},
	}))
	buf, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	if m["limit"] != LimitDeadline {
		t.Fatalf("limit field: got %v", m["limit"])
	}
	tr, ok := m["truncation"].(map[string]any)
	if !ok {
		t.Fatalf("truncation field missing: %v", m)
	}
	for _, key := range []string{"limit", "rounds", "facts", "visits", "elapsed_ns", "per_rule"} {
		if _, ok := tr[key]; !ok {
			t.Errorf("truncation.%s missing (got %v)", key, tr)
		}
	}
	rules, ok := tr["per_rule"].([]any)
	if !ok || len(rules) != 1 {
		t.Fatalf("per_rule: got %v", tr["per_rule"])
	}
	rule := rules[0].(map[string]any)
	for _, key := range []string{"index", "rule", "triggers_attempted", "triggers_fired", "facts_derived"} {
		if _, ok := rule[key]; !ok {
			t.Errorf("per_rule[0].%s missing (got %v)", key, rule)
		}
	}
}

// TestWireErrorUntyped checks that non-taxonomy errors survive with their
// message and no limit name, and that nil maps to the zero value and back.
func TestWireErrorUntyped(t *testing.T) {
	w := ToWire(errors.New("boom"))
	if w.Limit != "" || w.Error != "boom" {
		t.Fatalf("got %+v", w)
	}
	if got := w.Err(); got == nil || got.Error() != "boom" {
		t.Fatalf("got %v", got)
	}
	if got := ToWire(nil).Err(); got != nil {
		t.Fatalf("nil round-trip: got %v", got)
	}
}

// TestFaultEvery checks intermittent firing: After skips, then every M-th
// eligible hit fires.
func TestFaultEvery(t *testing.T) {
	p := NewPlan(Fault{Point: "x", After: 2, Every: 3})
	var fired []int
	for i := 1; i <= 12; i++ {
		if p.Check("x") != nil {
			fired = append(fired, i)
		}
	}
	// Eligible hits are 3..12 (skip 2); every 3rd eligible hit fires: 5, 8, 11.
	want := []int{5, 8, 11}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
}

// TestFaultTimes checks the fire cap: a Times=1 fault fails once and then
// recovers — the canonical transient fault a retrying caller absorbs.
func TestFaultTimes(t *testing.T) {
	p := NewPlan(Fault{Point: "x", Times: 1})
	if p.Check("x") == nil {
		t.Fatal("first hit should fire")
	}
	for i := 0; i < 5; i++ {
		if p.Check("x") != nil {
			t.Fatal("capped fault fired again")
		}
	}
	if p.Fires() != 1 {
		t.Fatalf("fires = %d, want 1", p.Fires())
	}
}

// TestParsePlanEvery pins the %M spec syntax, alone and combined with @N.
func TestParsePlanEvery(t *testing.T) {
	p, err := ParsePlan("a%4=error, b@2%3=panic")
	if err != nil {
		t.Fatal(err)
	}
	var aFired []int
	for i := 1; i <= 8; i++ {
		if p.Check("a") != nil {
			aFired = append(aFired, i)
		}
	}
	if want := []int{4, 8}; !reflect.DeepEqual(aFired, want) {
		t.Fatalf("a fired on %v, want %v", aFired, want)
	}
	for _, bad := range []string{"a%0=error", "a%x=error", "a%-1=panic"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q): expected error", bad)
		}
	}
}
