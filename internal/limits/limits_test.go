package limits

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestErrorTaxonomyIsAs(t *testing.T) {
	err := NewError(ErrFactBudget, Truncation{Budget: 100, Reached: 101, Rounds: 3})
	if !errors.Is(err, ErrFactBudget) {
		t.Error("errors.Is must match the sentinel")
	}
	if errors.Is(err, ErrRoundBudget) {
		t.Error("errors.Is must not match a different sentinel")
	}
	var le *Error
	if !errors.As(err, &le) || le.Trunc.Budget != 100 {
		t.Error("errors.As must extract the typed error with its Truncation")
	}
	tr, ok := TruncationOf(err)
	if !ok || tr.Limit != LimitFacts || tr.Reached != 101 {
		t.Errorf("TruncationOf = %+v, %v", tr, ok)
	}
	if !IsBudget(err) {
		t.Error("fact budget is a budget error")
	}
	if IsBudget(NewError(ErrCanceled, Truncation{})) {
		t.Error("cancellation is not a budget error")
	}
}

func TestLimitNameRoundTrip(t *testing.T) {
	for _, kind := range []error{ErrCanceled, ErrDeadline, ErrFactBudget, ErrRoundBudget, ErrVisitBudget, ErrInternal, ErrInjected} {
		name := LimitName(kind)
		if name == "" {
			t.Fatalf("no limit name for %v", kind)
		}
		tr := Truncation{Limit: name}
		if !errors.Is(tr.Err(), kind) {
			t.Errorf("Truncation{%q}.Err() does not wrap %v", name, kind)
		}
	}
}

func TestTruncationString(t *testing.T) {
	tr := Truncation{
		Limit: LimitFacts, Budget: 10, Reached: 10, Rounds: 2, Facts: 10,
		Elapsed: 3 * time.Millisecond,
		PerRule: []RuleStat{{Index: 0, Rule: "n(?X) -> m(?X).", TriggersAttempted: 5, FactsDerived: 4}},
	}
	s := tr.String()
	for _, want := range []string{"limit=facts", "budget=10", "rounds=2", "rule #0"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestCtxKind(t *testing.T) {
	if CtxKind(context.Background()) != nil {
		t.Error("live context must map to nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if CtxKind(ctx) != ErrCanceled {
		t.Error("canceled context must map to ErrCanceled")
	}
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if CtxKind(ctx2) != ErrDeadline {
		t.Error("expired context must map to ErrDeadline")
	}
	if CtxKind(nil) != nil {
		t.Error("nil context is live")
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	run := func() (err error) {
		defer Recover(&err)
		panic("boom")
	}
	err := run()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("recovered panic must wrap ErrInternal, got %v", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Value != "boom" || len(ie.Stack) == 0 {
		t.Errorf("InternalError must carry the panic value and a stack, got %+v", ie)
	}
}

func TestRecoverPreservesTypedPanic(t *testing.T) {
	typed := NewError(ErrFactBudget, Truncation{Budget: 7})
	run := func() (err error) {
		defer Recover(&err)
		panic(typed)
	}
	if err := run(); !errors.Is(err, ErrFactBudget) {
		t.Errorf("typed panic must be preserved, got %v", err)
	}
}

func TestPlanErrorAfterN(t *testing.T) {
	p := NewPlan(Fault{Point: "chase.round", After: 2, Action: ActError})
	for i := 0; i < 2; i++ {
		if err := p.Check("chase.round"); err != nil {
			t.Fatalf("hit %d must pass", i)
		}
	}
	err := p.Check("chase.round")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit must inject, got %v", err)
	}
	if p.Fires() != 1 {
		t.Errorf("fires = %d, want 1", p.Fires())
	}
	if err := p.Check("other.site"); err != nil {
		t.Error("unarmed sites must pass")
	}
}

func TestPlanPanicAndHook(t *testing.T) {
	fired := 0
	p := NewPlan(
		Fault{Point: "hook.site", Action: ActHook, Hook: func() { fired++ }},
		Fault{Point: "panic.site", Action: ActPanic},
	)
	if err := p.Check("hook.site"); err != nil || fired != 1 {
		t.Fatalf("hook must run and the check succeed (err=%v fired=%d)", err, fired)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ActPanic must panic")
			}
		}()
		p.Check("panic.site")
	}()
}

func TestNilPlanAndHit(t *testing.T) {
	var p *Plan
	if err := p.Check("anything"); err != nil {
		t.Error("nil plan must pass")
	}
	if err := Hit(nil, "anything"); err != nil {
		t.Error("Hit with no plans must pass")
	}
	restore := SetGlobal(NewPlan(Fault{Point: "g.site", Action: ActError}))
	defer restore()
	if err := Hit(nil, "g.site"); !errors.Is(err, ErrInjected) {
		t.Error("Hit must consult the global plan")
	}
	restore()
	if err := Hit(nil, "g.site"); err != nil {
		t.Error("restore must clear the global plan")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("chase.round@1=error, prover.expand=panic")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check("chase.round"); err != nil {
		t.Error("first hit is skipped by @1")
	}
	if err := p.Check("chase.round"); !errors.Is(err, ErrInjected) {
		t.Error("second hit must inject")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("parsed panic action must panic")
			}
		}()
		p.Check("prover.expand")
	}()
	for _, bad := range []string{"nosign", "p@x=error", "p=unknown", "p@-1=error"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) must fail", bad)
		}
	}
	if p, err := ParsePlan(""); err != nil || p == nil {
		t.Error("empty spec is an empty plan")
	}
}

func TestParsePlanCrashActions(t *testing.T) {
	p, err := ParsePlan("wal.append@1=torn, wal.sync=crash, wal.checkpoint=flip")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check("wal.append"); err != nil {
		t.Error("first wal.append hit is skipped by @1")
	}
	var ce *CrashError
	err = p.Check("wal.append")
	if !errors.Is(err, ErrCrash) || !errors.As(err, &ce) || ce.Mode != CrashTorn || ce.Point != "wal.append" {
		t.Errorf("torn crash = %v (%+v)", err, ce)
	}
	err = p.Check("wal.sync")
	if !errors.As(err, &ce) || ce.Mode != CrashClean {
		t.Errorf("clean crash = %v", err)
	}
	err = p.Check("wal.checkpoint")
	if !errors.As(err, &ce) || ce.Mode != CrashFlip {
		t.Errorf("flip crash = %v", err)
	}
	if got := ce.Error(); got != "limits: injected crash at wal.checkpoint (flip)" {
		t.Errorf("CrashError.Error() = %q", got)
	}
}

func TestParsePlanNetworkActions(t *testing.T) {
	p, err := ParsePlan("repl.send@1=partition, repl.recv=dup, repl.apply=slow")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check("repl.send"); err != nil {
		t.Error("first repl.send hit is skipped by @1")
	}
	var ne *NetError
	err = p.Check("repl.send")
	if !errors.Is(err, ErrNet) || !errors.As(err, &ne) || ne.Kind != NetPartition || ne.Point != "repl.send" {
		t.Errorf("partition = %v (%+v)", err, ne)
	}
	if errors.Is(err, ErrCrash) {
		t.Error("a network fault must not read as a crash")
	}
	err = p.Check("repl.recv")
	if !errors.As(err, &ne) || ne.Kind != NetDup {
		t.Errorf("dup = %v", err)
	}
	if got := ne.Error(); got != "limits: injected network fault at repl.recv (dup)" {
		t.Errorf("NetError.Error() = %q", got)
	}
	// A slow link delays but succeeds.
	start := time.Now()
	if err := p.Check("repl.apply"); err != nil {
		t.Errorf("slow link must succeed, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < SlowLinkDelay {
		t.Errorf("slow link slept %v, want >= %v", elapsed, SlowLinkDelay)
	}
}

func TestStorageTaxonomy(t *testing.T) {
	err := NewError(ErrStorage, Truncation{})
	if LimitName(err) != LimitStorage {
		t.Errorf("LimitName = %q, want %q", LimitName(err), LimitStorage)
	}
	w := ToWire(err)
	if w.Limit != LimitStorage {
		t.Errorf("wire limit = %q", w.Limit)
	}
	back := w.Err()
	if !errors.Is(back, ErrStorage) {
		t.Errorf("wire round-trip lost the storage sentinel: %v", back)
	}
}
