package limits

import "errors"

// This file defines the JSON wire form of the error taxonomy. The triqd
// server error bodies and the CLI -json modes both emit a WireError, so a
// client can dispatch on the same limit names (Truncation.Limit constants)
// regardless of which surface produced the error, and can reconstruct a
// typed error — errors.Is against the sentinels keeps working — from the
// decoded form.

// WireError is the JSON rendering of an engine error. For typed limits
// errors Limit holds the taxonomy name and Truncation the progress report;
// for untyped errors only Error is set. The field names are frozen.
type WireError struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Limit is the taxonomy name (one of the Limit* constants), empty for
	// errors outside the taxonomy.
	Limit string `json:"limit,omitempty"`
	// Truncation is the progress report attached to the abort, when any.
	Truncation *Truncation `json:"truncation,omitempty"`
}

// ToWire renders an error in the wire form. A nil error yields the zero
// WireError.
func ToWire(err error) WireError {
	if err == nil {
		return WireError{}
	}
	w := WireError{Error: err.Error(), Limit: LimitName(err)}
	if tr, ok := TruncationOf(err); ok {
		t := *tr
		w.Truncation = &t
		if w.Limit == "" {
			w.Limit = tr.Limit
		}
	}
	return w
}

// Err reconstructs a typed error from the wire form: when Limit names a
// taxonomy sentinel the result wraps it (errors.Is matches and TruncationOf
// recovers the report); otherwise a plain error with the message is
// returned. A zero WireError yields nil.
func (w WireError) Err() error {
	if w.Error == "" && w.Limit == "" && w.Truncation == nil {
		return nil
	}
	if w.Limit == "" {
		return errors.New(w.Error)
	}
	t := Truncation{Limit: w.Limit}
	if w.Truncation != nil {
		t = *w.Truncation
		if t.Limit == "" {
			t.Limit = w.Limit
		}
	}
	return NewError(kindFor(w.Limit), t)
}
