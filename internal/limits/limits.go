// Package limits is the resource-governance layer of the engine: a typed
// error taxonomy for every way an evaluation can be cut short (cooperative
// cancellation, wall-clock deadlines, fact/round/visit budgets, engine
// panics), a Truncation report describing how far an aborted run got, panic
// recovery for the public API boundary, and a deterministic fault-injection
// harness used by the test-suite to prove that every abort path actually
// works.
//
// The paper's PTime guarantee for TriQ-Lite (Theorem 6.7) is a data-
// complexity statement: a warded program one rule away from the ExpTime
// cliff of Theorem 6.15, or a pathological SPARQL workload, can still drive
// the chase and the ProofTree search to unbounded runs. Every evaluation
// entry point therefore threads a context.Context and converts resource
// exhaustion into errors of this package — or, for budgets, into sound
// partial results carrying a Truncation (see the Incomplete fields on
// triq.Result, sparql.MappingSet, and the facade Results).
package limits

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"
)

// The taxonomy. All errors returned by the engine's governed paths wrap
// exactly one of these sentinels, so callers dispatch with errors.Is.
var (
	// ErrCanceled reports cooperative cancellation via context.Context.
	ErrCanceled = errors.New("limits: evaluation canceled")
	// ErrDeadline reports a missed wall-clock deadline (context deadline).
	ErrDeadline = errors.New("limits: evaluation deadline exceeded")
	// ErrFactBudget reports that the chase instance hit Options.MaxFacts.
	ErrFactBudget = errors.New("limits: fact budget exhausted")
	// ErrRoundBudget reports that the chase hit Options.MaxRounds.
	ErrRoundBudget = errors.New("limits: round budget exhausted")
	// ErrVisitBudget reports that the proof search hit ProofOptions.MaxVisits.
	ErrVisitBudget = errors.New("limits: visit budget exhausted")
	// ErrInternal reports an engine panic recovered at the API boundary.
	ErrInternal = errors.New("limits: internal engine error")
	// ErrInjected reports a fault injected through a Plan (tests only).
	ErrInjected = errors.New("limits: injected fault")
	// ErrStorage reports a durable-storage write failure (fsync or append
	// I/O error, e.g. ENOSPC). The store degrades to read-only: reads keep
	// serving the last committed epoch, writes fail with this sentinel.
	ErrStorage = errors.New("limits: storage write error")
)

// Limit names, as they appear in Truncation.Limit and in the
// "limits.aborted" observability event.
const (
	LimitCanceled = "canceled"
	LimitDeadline = "deadline"
	LimitFacts    = "facts"
	LimitRounds   = "rounds"
	LimitVisits   = "visits"
	LimitInternal = "internal"
	LimitInjected = "injected"
	LimitStorage  = "storage"
)

// LimitName maps a sentinel (or an error wrapping one) to its limit name.
func LimitName(err error) string {
	switch {
	case errors.Is(err, ErrCanceled):
		return LimitCanceled
	case errors.Is(err, ErrDeadline):
		return LimitDeadline
	case errors.Is(err, ErrFactBudget):
		return LimitFacts
	case errors.Is(err, ErrRoundBudget):
		return LimitRounds
	case errors.Is(err, ErrVisitBudget):
		return LimitVisits
	case errors.Is(err, ErrInternal):
		return LimitInternal
	case errors.Is(err, ErrStorage):
		return LimitStorage
	case errors.Is(err, ErrInjected):
		return LimitInjected
	default:
		return ""
	}
}

// kindFor is the inverse of LimitName.
func kindFor(limit string) error {
	switch limit {
	case LimitCanceled:
		return ErrCanceled
	case LimitDeadline:
		return ErrDeadline
	case LimitFacts:
		return ErrFactBudget
	case LimitRounds:
		return ErrRoundBudget
	case LimitVisits:
		return ErrVisitBudget
	case LimitInternal:
		return ErrInternal
	case LimitStorage:
		return ErrStorage
	default:
		return ErrInjected
	}
}

// RuleStat is the per-rule slice of a Truncation: how much work each rule of
// the aborted chase had done when the limit tripped. The JSON field names are
// part of the wire format shared by the triqd server and the CLI -json modes;
// treat them as frozen.
type RuleStat struct {
	// Index is the rule's position in stratum evaluation order.
	Index int `json:"index"`
	// Rule is the rule's source rendering.
	Rule              string `json:"rule"`
	TriggersAttempted int    `json:"triggers_attempted"`
	TriggersFired     int    `json:"triggers_fired"`
	FactsDerived      int    `json:"facts_derived"`
}

// Truncation reports what limit cut an evaluation short and how far the
// evaluation got. It rides on every *Error and is surfaced to callers of the
// degrading entry points through the Incomplete/Truncation result fields.
// The JSON field names are part of the wire format shared by the triqd server
// and the CLI -json modes; treat them as frozen. Elapsed serializes as
// nanoseconds (Go's time.Duration integer form), so the report round-trips.
type Truncation struct {
	// Limit names the limit that tripped (one of the Limit* constants).
	Limit string `json:"limit"`
	// Budget is the configured limit value (facts, rounds, visits, or the
	// deadline in nanoseconds), 0 when not applicable.
	Budget int64 `json:"budget,omitempty"`
	// Reached is the value observed when the limit tripped.
	Reached int64 `json:"reached,omitempty"`
	// Rounds is the number of chase rounds completed or started.
	Rounds int `json:"rounds,omitempty"`
	// Facts is the instance size (database + derived) at abort.
	Facts int `json:"facts,omitempty"`
	// Visits is the number of proof-search component visits at abort.
	Visits int `json:"visits,omitempty"`
	// Elapsed is the wall-clock time spent before the abort.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
	// PerRule breaks the aborted chase down by rule (empty for prover
	// aborts).
	PerRule []RuleStat `json:"per_rule,omitempty"`
}

// Err packages the truncation back into a typed *Error whose sentinel
// matches Limit. It is used by callers (e.g. the CLIs) that carried only the
// report and need the error form again.
func (t *Truncation) Err() *Error { return NewError(kindFor(t.Limit), *t) }

// String renders the report for humans; the CLIs print it on stderr.
func (t *Truncation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "truncated: limit=%s", t.Limit)
	if t.Budget > 0 {
		fmt.Fprintf(&b, " budget=%d reached=%d", t.Budget, t.Reached)
	}
	fmt.Fprintf(&b, " rounds=%d facts=%d", t.Rounds, t.Facts)
	if t.Visits > 0 {
		fmt.Fprintf(&b, " visits=%d", t.Visits)
	}
	if t.Elapsed > 0 {
		fmt.Fprintf(&b, " elapsed=%s", t.Elapsed.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	for _, r := range t.PerRule {
		def := r.Rule
		if len([]rune(def)) > 60 {
			def = string([]rune(def)[:57]) + "..."
		}
		fmt.Fprintf(&b, "  rule #%-3d attempted=%d fired=%d facts=%d  %s\n",
			r.Index, r.TriggersAttempted, r.TriggersFired, r.FactsDerived, def)
	}
	return b.String()
}

// Error is a typed abort: a taxonomy sentinel plus the Truncation report.
// errors.Is matches the sentinel; errors.As extracts the report.
type Error struct {
	// Kind is the taxonomy sentinel this error wraps.
	Kind error
	// Trunc reports how far the evaluation got.
	Trunc Truncation
}

// NewError builds a typed abort; an empty Trunc.Limit is filled in from the
// sentinel.
func NewError(kind error, t Truncation) *Error {
	if t.Limit == "" {
		t.Limit = LimitName(kind)
	}
	return &Error{Kind: kind, Trunc: t}
}

func (e *Error) Error() string {
	if e.Trunc.Budget > 0 {
		return fmt.Sprintf("%v (budget %d, reached %d)", e.Kind, e.Trunc.Budget, e.Trunc.Reached)
	}
	return e.Kind.Error()
}

func (e *Error) Unwrap() error { return e.Kind }

// TruncationOf extracts the Truncation report from an error chain.
func TruncationOf(err error) (*Truncation, bool) {
	var le *Error
	if errors.As(err, &le) {
		return &le.Trunc, true
	}
	return nil, false
}

// IsBudget reports whether the error is one of the degradable budget
// exhaustions (facts, rounds, or visits) — the cases where a sound partial
// result exists and the engine degrades instead of failing.
func IsBudget(err error) bool {
	return errors.Is(err, ErrFactBudget) ||
		errors.Is(err, ErrRoundBudget) ||
		errors.Is(err, ErrVisitBudget)
}

// CtxKind maps the context's state to the taxonomy: nil while the context is
// live, ErrCanceled / ErrDeadline once it is done. A nil context is live.
func CtxKind(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadline
	default:
		return ErrCanceled
	}
}

// InternalError is a recovered engine panic: the panic value plus the stack
// captured at the recovery point. It wraps ErrInternal.
type InternalError struct {
	// Value is the value the engine panicked with.
	Value any
	// Stack is the goroutine stack captured by the recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("limits: internal engine error: %v", e.Value)
}

func (e *InternalError) Unwrap() error { return ErrInternal }

// Recover converts an in-flight panic into an *InternalError stored in
// *errp. It must be invoked directly by defer at the public API boundary:
//
//	func Ask(...) (res *Results, err error) {
//	    defer limits.Recover(&err)
//	    ...
//
// so one pathological query cannot take down a serving process. A panic that
// is already a typed limits error (e.g. injected by a fault plan action) is
// preserved as such.
func Recover(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if le, ok := r.(*Error); ok {
		*errp = le
		return
	}
	*errp = &InternalError{Value: r, Stack: debug.Stack()}
}
