package limits

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the deterministic fault-injection harness. The engine calls
// Hit(plan, point) at well-known sites — "chase.round", "chase.rule",
// "prover.expand", "prover.memo", "translate.decode" — and a Plan armed for
// that site makes the call return an injected error, panic, or run a test
// hook (e.g. cancel the context mid-round). Plans are configured per
// evaluation through the engine Options, or process-wide through the
// TRIQ_FAULTS environment variable; with no plan armed a fault point is a
// nil check and two pointer loads.

// Action is what an armed fault does when it fires.
type Action int

const (
	// ActError makes the fault point return an injected typed error.
	ActError Action = iota
	// ActPanic makes the fault point panic, exercising the API-boundary
	// recovery.
	ActPanic
	// ActHook runs the fault's Hook and lets the fault point succeed; tests
	// use it to cancel contexts at a precise engine site.
	ActHook
	// ActCrash simulates process death at the point: the fault returns a
	// *CrashError whose Mode says what the interrupted I/O left on disk.
	// Durable subsystems (internal/store) honor it by ceasing all further
	// writes, so a test can "restart" by reopening the directory.
	ActCrash
	// ActPartition simulates a network partition at the point: the fault
	// returns a *NetError{Kind: NetPartition} and the networking subsystem
	// (internal/repl) honors it by severing the connection. Unlike ActCrash
	// nothing latches — a later reconnect attempt may succeed.
	ActPartition
	// ActSlow simulates a slow link: the fault point sleeps SlowLinkDelay
	// and then succeeds. It models added latency, not failure.
	ActSlow
	// ActDup simulates a duplicated message: the fault returns a
	// *NetError{Kind: NetDup} and the networking subsystem honors it by
	// sending (or processing) the in-flight record twice, exercising
	// receiver idempotency.
	ActDup
)

// SlowLinkDelay is the latency an ActSlow fault injects per fire.
const SlowLinkDelay = 25 * time.Millisecond

// CrashMode describes what an injected crash (ActCrash) leaves behind at the
// interrupted write site.
type CrashMode int

const (
	// CrashClean dies at the point with the in-flight write either fully
	// absent (before the write) or fully present (after it), depending on
	// where the subsystem placed the fault point.
	CrashClean CrashMode = iota
	// CrashTorn dies mid-write: only a prefix of the in-flight record lands.
	CrashTorn
	// CrashFlip lands the whole in-flight record but with one bit flipped,
	// modeling silent media corruption that checksums must catch.
	CrashFlip
)

func (m CrashMode) String() string {
	switch m {
	case CrashTorn:
		return "torn"
	case CrashFlip:
		return "flip"
	default:
		return "crash"
	}
}

// ErrCrash is the sentinel every injected crash wraps; errors.Is(err,
// ErrCrash) detects a simulated process death.
var ErrCrash = errors.New("limits: injected crash")

// ErrNet is the sentinel every injected network fault wraps; errors.Is(err,
// ErrNet) detects a simulated network condition (as opposed to process
// death or a plain injected error).
var ErrNet = errors.New("limits: injected network fault")

// NetKind refines an injected network fault.
type NetKind int

const (
	// NetPartition severs the connection; reconnects may succeed.
	NetPartition NetKind = iota
	// NetDup duplicates the in-flight record on the wire.
	NetDup
)

func (k NetKind) String() string {
	switch k {
	case NetDup:
		return "dup"
	default:
		return "partition"
	}
}

// NetError is the typed injected network fault: the site it fired at and
// what the network "did". The replication layer dispatches on Kind.
type NetError struct {
	// Point is the fault site, e.g. "repl.send".
	Point string
	// Kind says what happened on the wire.
	Kind NetKind
}

func (e *NetError) Error() string {
	return fmt.Sprintf("limits: injected network fault at %s (%s)", e.Point, e.Kind)
}

func (e *NetError) Unwrap() error { return ErrNet }

// CrashError is the typed injected-crash error: the site that died and what
// its interrupted write left behind.
type CrashError struct {
	// Point is the fault site that crashed, e.g. "wal.append".
	Point string
	// Mode says what landed on disk (clean / torn prefix / bit flip).
	Mode CrashMode
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("limits: injected crash at %s (%s)", e.Point, e.Mode)
}

func (e *CrashError) Unwrap() error { return ErrCrash }

// Fault arms one site of a Plan.
type Fault struct {
	// Point is the site name, e.g. "chase.round".
	Point string
	// After skips the first After hits of the site; the fault fires on every
	// hit from the After+1-th on (subject to Every and Times).
	After int
	// Every makes the fault intermittent: when > 1 it fires only on every
	// Every-th eligible hit (hits past After). 0 or 1 fires on every eligible
	// hit. Intermittent faults model transient failures — the kind a serving
	// layer is expected to absorb by retrying.
	Every int
	// Times caps how often the fault fires; 0 means no cap. Times=1 yields a
	// fail-once-then-recover fault, the canonical retry test case.
	Times int
	// Action selects error / panic / hook / crash.
	Action Action
	// Mode refines ActCrash: what the interrupted write leaves on disk.
	Mode CrashMode
	// Err overrides the injected error for ActError (default: a typed
	// ErrInjected).
	Err error
	// Hook runs on fire for ActHook.
	Hook func()
}

// Plan is a set of armed faults. The zero value by pointer (nil) is an empty
// plan; Check on it always succeeds. A Plan is safe for concurrent use.
type Plan struct {
	mu    sync.Mutex
	armed map[string][]*armedFault
	fires int
}

type armedFault struct {
	f     Fault
	hits  int
	fired int
}

// NewPlan builds a plan with the given faults armed.
func NewPlan(faults ...Fault) *Plan {
	p := &Plan{}
	for _, f := range faults {
		p.Arm(f)
	}
	return p
}

// Arm adds a fault to the plan.
func (p *Plan) Arm(f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.armed == nil {
		p.armed = make(map[string][]*armedFault)
	}
	p.armed[f.Point] = append(p.armed[f.Point], &armedFault{f: f})
}

// Fires reports how many times any fault of the plan has fired.
func (p *Plan) Fires() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fires
}

// Check registers a hit on the site and fires any armed fault whose After
// threshold has passed. Hooks run (and panics unwind) outside the plan lock.
func (p *Plan) Check(point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	var fire []*Fault
	for _, a := range p.armed[point] {
		a.hits++
		eligible := a.hits - a.f.After
		if eligible <= 0 {
			continue
		}
		if a.f.Every > 1 && eligible%a.f.Every != 0 {
			continue
		}
		if a.f.Times > 0 && a.fired >= a.f.Times {
			continue
		}
		a.fired++
		p.fires++
		fire = append(fire, &a.f)
	}
	p.mu.Unlock()
	for _, f := range fire {
		switch f.Action {
		case ActPanic:
			panic(fmt.Sprintf("limits: injected panic at %s", f.Point))
		case ActHook:
			if f.Hook != nil {
				f.Hook()
			}
		case ActCrash:
			return &CrashError{Point: f.Point, Mode: f.Mode}
		case ActPartition:
			return &NetError{Point: f.Point, Kind: NetPartition}
		case ActDup:
			return &NetError{Point: f.Point, Kind: NetDup}
		case ActSlow:
			time.Sleep(SlowLinkDelay)
		default:
			if f.Err != nil {
				return f.Err
			}
			return NewError(ErrInjected, Truncation{Limit: LimitInjected})
		}
	}
	return nil
}

// Hit checks the per-evaluation plan first, then the process-global plan
// (armed from TRIQ_FAULTS). Engine fault points call this.
func Hit(p *Plan, point string) error {
	if p != nil {
		if err := p.Check(point); err != nil {
			return err
		}
	}
	return FaultPoint(point)
}

var (
	globalMu   sync.Mutex
	globalPlan *Plan
)

// FaultPoint checks the process-global plan only.
func FaultPoint(point string) error {
	globalMu.Lock()
	p := globalPlan
	globalMu.Unlock()
	return p.Check(point)
}

// SetGlobal installs a process-global plan (nil clears it) and returns a
// restore function; tests pair the two with defer.
func SetGlobal(p *Plan) (restore func()) {
	globalMu.Lock()
	old := globalPlan
	globalPlan = p
	globalMu.Unlock()
	return func() {
		globalMu.Lock()
		globalPlan = old
		globalMu.Unlock()
	}
}

// ParsePlan parses the TRIQ_FAULTS syntax: comma-separated entries of the
// form "point=action", "point@N=action", or "point%M=action" (combinable as
// "point@N%M=action") where action is "error", "panic", one of the crash
// actions "crash" / "torn" / "flip" (ActCrash with the matching CrashMode),
// or one of the network actions "partition" / "slow" / "dup" (honored by the
// replication points repl.send / repl.recv / repl.apply; "torn" there cuts
// the stream mid-record), N is the number of hits to skip first, and M makes
// the fault intermittent — it fires only on every M-th eligible hit, e.g.
//
//	TRIQ_FAULTS="chase.round@3=error,prover.expand=panic"
//	TRIQ_FAULTS="chase.rule%997=error"   # transient: one failure per 997 hits
//	TRIQ_FAULTS="wal.append@5=torn"      # die mid-write on the 6th WAL append
//	TRIQ_FAULTS="repl.send%7=partition"  # sever the stream every 7th frame
//	TRIQ_FAULTS="repl.recv%5=dup"        # replay every 5th received frame
//
// (Hooks are code, not syntax, so they cannot be armed from the
// environment.)
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, action, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("limits: fault entry %q: want point[@N][%%M]=action", entry)
		}
		f := Fault{Point: site}
		if point, every, hasPct := strings.Cut(f.Point, "%"); hasPct {
			m, err := strconv.Atoi(every)
			if err != nil || m < 1 {
				return nil, fmt.Errorf("limits: fault entry %q: bad every count %q", entry, every)
			}
			f.Point = point
			f.Every = m
		}
		if point, after, hasAt := strings.Cut(f.Point, "@"); hasAt {
			n, err := strconv.Atoi(after)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("limits: fault entry %q: bad hit count %q", entry, after)
			}
			f.Point = point
			f.After = n
		}
		switch action {
		case "error":
			f.Action = ActError
		case "panic":
			f.Action = ActPanic
		case "crash":
			f.Action = ActCrash
			f.Mode = CrashClean
		case "torn":
			f.Action = ActCrash
			f.Mode = CrashTorn
		case "flip":
			f.Action = ActCrash
			f.Mode = CrashFlip
		case "partition":
			f.Action = ActPartition
		case "slow":
			f.Action = ActSlow
		case "dup":
			f.Action = ActDup
		default:
			return nil, fmt.Errorf("limits: fault entry %q: unknown action %q (want error, panic, crash, torn, flip, partition, slow, or dup)", entry, action)
		}
		p.Arm(f)
	}
	return p, nil
}

func init() {
	if spec := os.Getenv("TRIQ_FAULTS"); spec != "" {
		p, err := ParsePlan(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "limits: ignoring TRIQ_FAULTS:", err)
			return
		}
		globalPlan = p
	}
}
