package translate

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

// This file translates nSPARQL nested regular expressions into plain Datalog
// — the "Datalog version L_dat" of the navigational languages that
// Corollary 7.3 compares with TriQ-Lite 1.0. Every NRE compiles to a
// stratification-free (indeed negation-free) Datalog program computing a
// binary relation over τ_db(G), so nSPARQL ⊆ Datalog^{¬s,⊥} executably; the
// Pep separation from TriQ-Lite 1.0 is then Theorem 7.2.

// NRETranslation is a compiled nested regular expression.
type NRETranslation struct {
	// Query is the Datalog query (Π, nre_answer) with a binary output.
	Query datalog.Query
}

// nreCompiler assigns one binary predicate per sub-expression.
type nreCompiler struct {
	prog    *datalog.Program
	nextID  int
	hasTerm bool
}

func (c *nreCompiler) fresh() string {
	c.nextID++
	return fmt.Sprintf("nre%d", c.nextID)
}

// termPred lazily emits the rules collecting all graph terms (needed by the
// reflexive closure of * and by the bare self axis).
func (c *nreCompiler) termPred() string {
	if !c.hasTerm {
		c.hasTerm = true
		c.prog.Merge(datalog.MustParse(`
			triple(?X, ?Y, ?Z) -> nreterm(?X), nreterm(?Y), nreterm(?Z).
		`))
	}
	return "nreterm"
}

// TranslateNRE compiles a nested regular expression into a Datalog query
// over the schema {triple/3}; the output predicate holds the pairs of
// ⟦e⟧_G.
func TranslateNRE(e sparql.NRE) (*NRETranslation, error) {
	c := &nreCompiler{prog: &datalog.Program{}}
	pred, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	x, y := datalog.V("X"), datalog.V("Y")
	c.prog.Add(datalog.Rule{
		BodyPos: []datalog.Atom{datalog.NewAtom(pred, x, y)},
		Head:    []datalog.Atom{datalog.NewAtom("nre_answer", x, y)},
	})
	q := datalog.NewQuery(c.prog, "nre_answer")
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("translate: internal: %w", err)
	}
	return &NRETranslation{Query: q}, nil
}

func (c *nreCompiler) compile(e sparql.NRE) (string, error) {
	x, y, z := datalog.V("X"), datalog.V("Y"), datalog.V("Z")
	switch q := e.(type) {
	case sparql.NREStep:
		pred := c.fresh()
		from, to := x, y
		if q.Inverse {
			from, to = y, x
		}
		head := datalog.NewAtom(pred, x, y)
		if q.Axis == sparql.AxisSelf {
			var body []datalog.Atom
			switch {
			case q.Label != nil:
				// self::a = {(a,a)}; anchor it to the active domain so the
				// rule stays safe even though both positions are constant.
				la := EncodeTerm(*q.Label)
				c.prog.Add(datalog.Rule{
					BodyPos: []datalog.Atom{datalog.NewAtom(c.termPred(), datalog.V("T"))},
					Head:    []datalog.Atom{datalog.NewAtom(pred, la, la)},
				})
				return pred, nil
			case q.Test != nil:
				inner, err := c.compile(q.Test)
				if err != nil {
					return "", err
				}
				body = []datalog.Atom{datalog.NewAtom(inner, x, datalog.V("W"))}
				c.prog.Add(datalog.Rule{
					BodyPos: body,
					Head:    []datalog.Atom{datalog.NewAtom(pred, x, x)},
				})
				return pred, nil
			default:
				c.prog.Add(datalog.Rule{
					BodyPos: []datalog.Atom{datalog.NewAtom(c.termPred(), x)},
					Head:    []datalog.Atom{datalog.NewAtom(pred, x, x)},
				})
				return pred, nil
			}
		}
		// For the moving axes, (from, over, to) positions in triple(s,p,o):
		var s, p, o datalog.Term
		var over datalog.Term
		switch q.Axis {
		case sparql.AxisNext: // subject → object over predicate
			s, p, o = from, z, to
			over = z
		case sparql.AxisEdge: // subject → predicate over object
			s, p, o = from, to, z
			over = z
		case sparql.AxisNode: // predicate → object over subject
			s, p, o = z, from, to
			over = z
		default:
			return "", fmt.Errorf("translate: unknown NRE axis %v", q.Axis)
		}
		body := []datalog.Atom{datalog.NewAtom("triple", s, p, o)}
		switch {
		case q.Label != nil:
			// Substitute the label constant for the over-variable.
			la := EncodeTerm(*q.Label)
			sub := map[datalog.Term]datalog.Term{over: la}
			body[0] = body[0].Substitute(sub)
		case q.Test != nil:
			inner, err := c.compile(q.Test)
			if err != nil {
				return "", err
			}
			body = append(body, datalog.NewAtom(inner, over, datalog.V("W")))
		}
		c.prog.Add(datalog.Rule{BodyPos: body, Head: []datalog.Atom{head}})
		return pred, nil

	case sparql.NRESeq:
		l, err := c.compile(q.L)
		if err != nil {
			return "", err
		}
		r, err := c.compile(q.R)
		if err != nil {
			return "", err
		}
		pred := c.fresh()
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{datalog.NewAtom(l, x, z), datalog.NewAtom(r, z, y)},
			Head:    []datalog.Atom{datalog.NewAtom(pred, x, y)},
		})
		return pred, nil

	case sparql.NREAlt:
		l, err := c.compile(q.L)
		if err != nil {
			return "", err
		}
		r, err := c.compile(q.R)
		if err != nil {
			return "", err
		}
		pred := c.fresh()
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{datalog.NewAtom(l, x, y)},
			Head:    []datalog.Atom{datalog.NewAtom(pred, x, y)},
		})
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{datalog.NewAtom(r, x, y)},
			Head:    []datalog.Atom{datalog.NewAtom(pred, x, y)},
		})
		return pred, nil

	case sparql.NREStar:
		inner, err := c.compile(q.P)
		if err != nil {
			return "", err
		}
		pred := c.fresh()
		// e* = identity on the graph terms ∪ e ∪ e∘e ∪ …; the inner relation
		// is included directly so that pairs outside the active domain (e.g.
		// self::a with a fresh constant) are not lost.
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{datalog.NewAtom(c.termPred(), x)},
			Head:    []datalog.Atom{datalog.NewAtom(pred, x, x)},
		})
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{datalog.NewAtom(inner, x, y)},
			Head:    []datalog.Atom{datalog.NewAtom(pred, x, y)},
		})
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{datalog.NewAtom(pred, x, z), datalog.NewAtom(inner, z, y)},
			Head:    []datalog.Atom{datalog.NewAtom(pred, x, y)},
		})
		return pred, nil

	default:
		return "", fmt.Errorf("translate: unknown NRE type %T", e)
	}
}

// Evaluate runs the translated NRE over a graph and decodes the pair set.
func (tr *NRETranslation) Evaluate(g *rdf.Graph, opts triq.Options) (sparql.PairSet, error) {
	res, err := triq.Eval(DB(g), tr.Query, triq.TriQLite10, opts)
	if err != nil {
		return nil, err
	}
	out := make(sparql.PairSet)
	for _, tup := range res.Answers.Tuples {
		out[sparql.TermPair{DecodeTerm(tup[0].Name), DecodeTerm(tup[1].Name)}] = true
	}
	return out, nil
}
