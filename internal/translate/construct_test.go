package translate

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

func TestTranslateConstructNameAuthor(t *testing.T) {
	// The CONSTRUCT example of Section 2 (rule (3)).
	g := rdf.NewGraph(
		rdf.T("dbUllman", "is_author_of", "tcb"),
		rdf.T("dbUllman", "name", "jeff"),
	)
	q := sparql.MustParseQuery(`
		CONSTRUCT { ?X name_author ?Z }
		WHERE { ?Y is_author_of ?Z . ?Y name ?X }
	`)
	ct, err := TranslateConstruct(q, Plain)
	if err != nil {
		t.Fatal(err)
	}
	got, inconsistent, err := ct.Evaluate(g, triq.Options{})
	if err != nil || inconsistent {
		t.Fatal(err, inconsistent)
	}
	want, err := q.Construct(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rdf.Isomorphic(got, want) {
		t.Errorf("translated CONSTRUCT differs:\n%s\nvs\n%s", got, want)
	}
}

func TestTranslateConstructBlankNodes(t *testing.T) {
	// Query (4) of Section 2: fresh shared blank node per match.
	g := rdf.NewGraph(
		rdf.T("dbAho", "is_coauthor_of", "dbUllman"),
		rdf.T("dbX", "is_coauthor_of", "dbY"),
	)
	q := sparql.MustParseQuery(`
		CONSTRUCT { ?X is_author_of _:B . ?Y is_author_of _:B }
		WHERE { ?X is_coauthor_of ?Y }
	`)
	ct, err := TranslateConstruct(q, Plain)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ct.Evaluate(g, triq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := q.Construct(g)
	if !rdf.Isomorphic(got, want) {
		t.Errorf("blank-node CONSTRUCT differs:\n%s\nvs\n%s", got, want)
	}
	if got.Len() != 4 {
		t.Errorf("expected 4 triples, got\n%s", got)
	}
}

func TestTranslateConstructOptionalTemplate(t *testing.T) {
	// Template triples with variables unbound in some domains are skipped
	// per domain, matching the SPARQL semantics.
	g := rdf.NewGraph(
		rdf.T("u1", "name", "alice"),
		rdf.T("u1", "phone", "tel1"),
		rdf.T("u2", "name", "bob"),
	)
	q := sparql.MustParseQuery(`
		CONSTRUCT { ?X hasName ?N . ?X hasPhone ?P }
		WHERE { ?X name ?N OPTIONAL { ?X phone ?P } }
	`)
	ct, err := TranslateConstruct(q, Plain)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ct.Evaluate(g, triq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := q.Construct(g)
	if !rdf.Isomorphic(got, want) {
		t.Errorf("OPT CONSTRUCT differs:\n%s\nvs\n%s", got, want)
	}
}

// Randomized agreement between the direct CONSTRUCT evaluation and the
// rule translation, up to blank-node isomorphism.
func TestTranslateConstructRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 40; round++ {
		where := randomPattern(rng, 1)
		// Build a template over the pattern's variables plus a blank.
		vars := sortedVars(sparql.Pattern(where).Vars())
		tmpl := []sparql.TriplePattern{}
		pick := func() sparql.PTerm {
			if len(vars) > 0 && rng.Intn(3) > 0 {
				return sparql.Var(vars[rng.Intn(len(vars))])
			}
			if rng.Intn(2) == 0 {
				return sparql.Blank("T")
			}
			return sparql.IRI("out")
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			tmpl = append(tmpl, sparql.TP(pick(), sparql.IRI("emits"), pick()))
		}
		q := &sparql.Query{Kind: sparql.ConstructQuery, Template: tmpl, Where: where}
		g := randomGraph(rng)
		want, err := q.Construct(g)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := TranslateConstruct(q, Plain)
		if err != nil {
			t.Fatalf("round %d: translate: %v", round, err)
		}
		got, _, err := ct.Evaluate(g, triq.Options{})
		if err != nil {
			t.Fatalf("round %d: evaluate: %v", round, err)
		}
		if !rdf.Isomorphic(got, want) {
			t.Fatalf("round %d: CONSTRUCT mismatch for %s over\n%s\ngot:\n%s\nwant:\n%s",
				round, where, g, got, want)
		}
	}
}

func TestTranslateConstructUnderRegime(t *testing.T) {
	// Materialize the implied eats-triples of the Section 5.2 ontology into
	// a new graph.
	o := owl.NewOntology().Add(
		owl.ClassAssertion(owl.Atom("animal"), "dog"),
		owl.SubClassOf(owl.Atom("animal"), owl.Some(owl.Prop("eats"))),
	)
	g := o.ToGraph()
	q := sparql.MustParseQuery(`
		CONSTRUCT { ?X mustEat somethingEdible }
		WHERE { ?X rdf:type ∃eats }
	`)
	ct, err := TranslateConstruct(q, ActiveDomain)
	if err != nil {
		t.Fatal(err)
	}
	got, inconsistent, err := ct.Evaluate(g, triq.Options{Chase: chase.Options{MaxDepth: 10}})
	if err != nil || inconsistent {
		t.Fatal(err, inconsistent)
	}
	if !got.Has(rdf.T("dog", "mustEat", "somethingEdible")) {
		t.Errorf("implied membership not constructed:\n%s", got)
	}
}

func TestTranslateConstructRejectsSelect(t *testing.T) {
	q := sparql.MustParseQuery(`SELECT * WHERE { ?X p ?Y }`)
	if _, err := TranslateConstruct(q, Plain); err == nil {
		t.Error("SELECT must be rejected")
	}
}
