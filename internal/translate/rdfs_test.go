package translate

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

func TestRDFSProgramIsTriQLite(t *testing.T) {
	p := owl.RDFSProgram()
	if p.HasExistentials() || p.HasNegation() {
		t.Fatal("ρdf library must be plain Datalog")
	}
	if err := datalog.CheckDialect(p, datalog.TriQLite); err != nil {
		t.Errorf("ρdf library should be TriQ-Lite 1.0: %v", err)
	}
}

func rdfsGraph() *rdf.Graph {
	return rdf.NewGraph(
		rdf.T("spaniel", "rdfs:subClassOf", "dog"),
		rdf.T("dog", "rdfs:subClassOf", "animal"),
		rdf.T("barks_at", "rdfs:subPropertyOf", "interacts_with"),
		rdf.T("barks_at", "rdfs:domain", "dog"),
		rdf.T("barks_at", "rdfs:range", "postman"),
		rdf.T("rex", "rdf:type", "spaniel"),
		rdf.T("rex", "barks_at", "pat"),
	)
}

func TestRDFSRegimeEntailments(t *testing.T) {
	g := rdfsGraph()
	cases := []struct {
		name    string
		pattern sparql.Pattern
		want    []sparql.Mapping
	}{
		{
			"type inheritance through subclass chain",
			sparql.BGP{Triples: []sparql.TriplePattern{
				sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("animal")),
			}},
			[]sparql.Mapping{{"?X": rdf.NewIRI("rex")}},
		},
		{
			"subproperty inheritance",
			sparql.BGP{Triples: []sparql.TriplePattern{
				sparql.TP(sparql.Var("X"), sparql.IRI("interacts_with"), sparql.Var("Y")),
			}},
			[]sparql.Mapping{{"?X": rdf.NewIRI("rex"), "?Y": rdf.NewIRI("pat")}},
		},
		{
			"range typing",
			sparql.BGP{Triples: []sparql.TriplePattern{
				sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("postman")),
			}},
			[]sparql.Mapping{{"?X": rdf.NewIRI("pat")}},
		},
		{
			"transitive subclass triple",
			sparql.BGP{Triples: []sparql.TriplePattern{
				sparql.TP(sparql.IRI("spaniel"), sparql.IRI("rdfs:subClassOf"), sparql.Var("C")),
			}},
			[]sparql.Mapping{{"?C": rdf.NewIRI("dog")}, {"?C": rdf.NewIRI("animal")}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := Translate(tc.pattern, RDFS)
			if err != nil {
				t.Fatal(err)
			}
			got, inconsistent, err := tr.Evaluate(g, triq.Options{})
			if err != nil || inconsistent {
				t.Fatal(err, inconsistent)
			}
			want := sparql.NewMappingSet(tc.want...)
			if !got.Equal(want) {
				t.Errorf("answers:\n%s\nwant:\n%s", got, want)
			}
			// The plain semantics misses the inferred answers (except where
			// they are asserted).
			plain := sparql.Eval(tc.pattern, g)
			if plain.Len() > got.Len() {
				t.Error("regime lost answers")
			}
		})
	}
}

func TestRDFSRegimeConstruct(t *testing.T) {
	// Materialize the domain typing via CONSTRUCT under the ρdf regime.
	g := rdfsGraph()
	q := sparql.MustParseQuery(`
		CONSTRUCT { ?X inferredType dog }
		WHERE { ?X rdf:type dog }
	`)
	ct, err := TranslateConstruct(q, RDFS)
	if err != nil {
		t.Fatal(err)
	}
	out, inconsistent, err := ct.Evaluate(g, triq.Options{})
	if err != nil || inconsistent {
		t.Fatal(err, inconsistent)
	}
	if !out.Has(rdf.T("rex", "inferredType", "dog")) {
		t.Errorf("inferred typing missing:\n%s", out)
	}
}

func TestRDFSRegimeIsDatalogOnly(t *testing.T) {
	p := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.Var("C")),
	}}
	tr, err := Translate(p, RDFS)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Query.Program.HasExistentials() {
		t.Error("RDFS translation should not use existentials")
	}
	if err := triq.Validate(tr.Query, triq.TriQLite10); err != nil {
		t.Errorf("RDFS translation should be TriQ-Lite 1.0: %v", err)
	}
}
