package translate

import (
	"bytes"
	"testing"

	"repro/internal/chase"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

func tracedTestPattern() sparql.Pattern {
	v, iri := sparql.Var, sparql.IRI
	return sparql.Union{
		L: sparql.Opt{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("name"), v("N"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("phone"), v("P"))}},
		},
		R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(v("X"), iri("knows"), v("N"))}},
	}
}

// TestTracedMatchesTranslate: tracing must not change the translation.
func TestTracedMatchesTranslate(t *testing.T) {
	p := tracedTestPattern()
	plain, err := Translate(p, Plain)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	traced, err := Traced(p, Plain, obs.NewWithSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Query.Program.String() != traced.Query.Program.String() {
		t.Error("traced translation produced a different program")
	}
}

// TestTranslateSpans: the compiler emits one translate.compile root and one
// translate.op span per algebra operator.
func TestTranslateSpans(t *testing.T) {
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	if _, err := Traced(tracedTestPattern(), Plain, o); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	compile, ops := 0, map[string]int{}
	for _, r := range recs {
		switch r["name"] {
		case "translate.compile":
			compile++
		case "translate.op":
			attrs, _ := r["attrs"].(map[string]any)
			kind, _ := attrs["kind"].(string)
			ops[kind]++
		}
	}
	if compile != 1 {
		t.Errorf("want 1 translate.compile span, got %d", compile)
	}
	// The pattern has UNION, OPT, and three BGPs.
	if ops["UNION"] != 1 || ops["OPT"] != 1 || ops["BGP"] != 3 {
		t.Errorf("unexpected translate.op kinds: %v", ops)
	}
}

// TestEvaluateFull: the extended evaluator returns the underlying result
// (with chase stats) and emits the load/decode spans.
func TestEvaluateFull(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.T("u1", "name", "n1"))
	g.Add(rdf.T("u1", "knows", "u2"))
	var buf bytes.Buffer
	o := obs.NewWithSink(&buf)
	tr, err := Traced(tracedTestPattern(), Plain, o)
	if err != nil {
		t.Fatal(err)
	}
	ms, res, err := tr.EvaluateFull(g, triq.Options{Chase: chase.Options{Obs: o}})
	if err != nil {
		t.Fatal(err)
	}
	if ms == nil || res == nil {
		t.Fatal("EvaluateFull returned nil result")
	}
	if res.Stats.FactsDerived == 0 {
		t.Error("EvaluateFull result carries no chase stats")
	}
	// Cross-check against the boolean wrapper.
	ms2, inconsistent, err := tr.Evaluate(g, triq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inconsistent {
		t.Error("unexpected inconsistency")
	}
	if !ms.Equal(ms2) {
		t.Error("EvaluateFull and Evaluate disagree on the mappings")
	}
	recs, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, k := range obs.TraceKinds(recs) {
		kinds[k] = true
	}
	for _, k := range []string{"translate.load_db", "translate.decode", "triq.eval"} {
		if !kinds[k] {
			t.Errorf("trace missing span kind %q (got %v)", k, obs.TraceKinds(recs))
		}
	}
}
