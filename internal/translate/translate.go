// Package translate implements the SPARQL → Datalog translations of
// Sections 5.1–5.3 of the paper: the plain translation P_dat = (τ_bgp(P) ∪
// τ_opr(P) ∪ τ_out(P), answer_P) of Theorem 5.2, and its entailment-regime
// variants P^U_dat (OWL 2 QL core direct semantics with the active-domain
// restriction, Theorem 5.3) and P^All_dat (without the restriction,
// Definition 5.5). Both regime variants are TriQ-Lite 1.0 queries
// (Corollaries 5.4 and 6.2), which the test-suite checks syntactically.
//
// For every sub-pattern P' the translator computes the set D(P') of
// *possible domains* — the sets of variables that can be simultaneously
// bound in a mapping of ⟦P'⟧ — and emits one predicate q_{P',d} per (P',d).
// The final answer predicate answer_P pads unbound positions with the
// reserved constant ⋆, exactly as in Section 5.1, and mapping sets are
// decoded back per ⟦(P_dat, τ_db(G))⟧.
package translate

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

// Regime selects the semantics of basic graph patterns.
type Regime int

const (
	// Plain is the standard SPARQL semantics ⟦·⟧_G over the raw graph
	// (Section 5.1).
	Plain Regime = iota
	// ActiveDomain is the OWL 2 QL core direct semantics entailment regime
	// ⟦·⟧^U_G: variables and blank nodes range over the URIs of G
	// (Section 5.2).
	ActiveDomain
	// All is ⟦·⟧^All_G: blank nodes are true existentials, not restricted
	// to the active domain (Section 5.3).
	All
	// RDFS evaluates basic graph patterns over the ρdf closure of the graph
	// (the fixed RDFS rule library; subPropertyOf/subClassOf/domain/range).
	// The library is plain Datalog, so blank nodes never see nulls and the
	// active-domain question does not arise.
	RDFS
)

func (r Regime) String() string {
	switch r {
	case Plain:
		return "plain"
	case ActiveDomain:
		return "U (active domain)"
	case All:
		return "All"
	case RDFS:
		return "RDFS (ρdf)"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Translation is the compiled query P_dat (resp. P^U_dat, P^All_dat).
type Translation struct {
	// Query is the Datalog^{∃,¬s,⊥} query (Π, answer_P).
	Query datalog.Query
	// Vars lists var(P) sorted; position i of the answer predicate holds
	// the value of Vars[i], or ⋆ when unbound.
	Vars []string
	// Regime records which semantics was compiled.
	Regime Regime
}

// seedFact makes the empty basic graph pattern (whose value is {µ∅}) work on
// databases of any size: τ_db always contains this 0-ary fact.
const seedFact = "q⊤"

// AnswerPred is the output predicate name of every translation.
const AnswerPred = "answer"

// Translate compiles a SPARQL graph pattern.
func Translate(p sparql.Pattern, regime Regime) (*Translation, error) {
	return Traced(p, regime, nil)
}

// Traced is Translate with the observability layer attached: each compiled
// sub-pattern emits a translate.op span (operator kind, rules added) nested
// under one translate.compile span. A nil Obs behaves exactly like Translate.
func Traced(p sparql.Pattern, regime Regime, o *obs.Obs) (*Translation, error) {
	return TracedCtx(context.Background(), p, regime, o)
}

// TracedCtx is Traced under a context: when the context carries a recording
// trace (obs.ContextWithTrace), the translate.compile span and its
// translate.op children join the request's span tree.
func TracedCtx(ctx context.Context, p sparql.Pattern, regime Regime, o *obs.Obs) (*Translation, error) {
	if err := sparql.Validate(p); err != nil {
		return nil, err
	}
	_, root := obs.StartSpan(ctx, o, "translate.compile", obs.F("regime", regime.String()))
	c := &compiler{regime: regime, prog: &datalog.Program{}, obs: o, span: root}
	node, err := c.compile(p)
	if err != nil {
		root.End(obs.F("error", true))
		return nil, err
	}
	defer func() {
		root.End(obs.F("rules", len(c.prog.Rules)), obs.F("constraints", len(c.prog.Constraints)))
	}()
	// τ_out: answer_P(v1 … vn) with ⋆ at unbound positions.
	vars := sortedVars(p.Vars())
	for _, d := range node.domains {
		head := datalog.Atom{Pred: AnswerPred}
		for _, v := range vars {
			if d.has(v) {
				head.Args = append(head.Args, datalog.V(v))
			} else {
				head.Args = append(head.Args, datalog.C(datalog.StarConstant))
			}
		}
		c.prog.Add(datalog.Rule{
			BodyPos:    []datalog.Atom{node.atom(d)},
			Head:       []datalog.Atom{head},
			Provenance: "τ_out",
		})
	}
	if c.needEq {
		eqStart := len(c.prog.Rules)
		c.emitEqRules()
		c.claimRules(eqStart, "EQ")
	}
	ontStart := len(c.prog.Rules)
	switch regime {
	case ActiveDomain, All:
		c.prog.Merge(owl.Program())
	case RDFS:
		c.prog.Merge(owl.RDFSProgram())
	}
	c.claimRules(ontStart, "ontology")
	q := datalog.NewQuery(c.prog, AnswerPred)
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("translate: internal: %w", err)
	}
	return &Translation{Query: q, Vars: vars, Regime: regime}, nil
}

// MustTranslate is Translate, panicking on error.
func MustTranslate(p sparql.Pattern, regime Regime) *Translation {
	tr, err := Translate(p, regime)
	if err != nil {
		panic(err)
	}
	return tr
}

// DB builds τ_db(G) (plus the constant seed fact) as a chase instance.
func DB(g *rdf.Graph) *chase.Instance {
	inst := chase.NewInstance(datalog.Atom{Pred: seedFact})
	for _, a := range owl.GraphToDB(g) {
		inst.Add(a)
	}
	return inst
}

// Evaluate runs the translated query over the graph and decodes the answer
// tuples into a mapping set: ⟦(P_dat, τ_db(G))⟧. The boolean reports
// inconsistency (⊤), which can arise only under the entailment regimes.
func (tr *Translation) Evaluate(g *rdf.Graph, opts triq.Options) (*sparql.MappingSet, bool, error) {
	return tr.EvaluateCtx(context.Background(), g, opts)
}

// EvaluateCtx is Evaluate under a context. On a budget trip the returned
// mapping set is the sound partial set with MappingSet.Incomplete and the
// Truncation attached (err nil); cancellation and deadlines return typed
// limits errors.
func (tr *Translation) EvaluateCtx(ctx context.Context, g *rdf.Graph, opts triq.Options) (*sparql.MappingSet, bool, error) {
	ms, res, err := tr.EvaluateFullCtx(ctx, g, opts)
	if err != nil {
		return nil, false, err
	}
	return ms, res.Answers != nil && res.Answers.Inconsistent, nil
}

// EvaluateFull is Evaluate, additionally returning the underlying evaluation
// Result (chase stats with per-rule breakdown, depth, exactness). When
// opts.Chase.Obs is set, the load and decode phases emit translate.* spans.
func (tr *Translation) EvaluateFull(g *rdf.Graph, opts triq.Options) (*sparql.MappingSet, *triq.Result, error) {
	return tr.EvaluateFullCtx(context.Background(), g, opts)
}

// EvaluateFullCtx is EvaluateFull under a context; see EvaluateCtx for the
// limit semantics. The decode phase carries the "translate.decode" fault
// point.
func (tr *Translation) EvaluateFullCtx(ctx context.Context, g *rdf.Graph, opts triq.Options) (*sparql.MappingSet, *triq.Result, error) {
	// Warm-materialization fast path: a materialization of this translated
	// program pinned to opts.MatEpoch answers without building τ_db(G) at
	// all. (The materialized instance includes the seed fact, since it was
	// built from a loadDB instance; store deltas only ever touch triple
	// atoms.) On a miss, EvalCtx below may still build one from the db.
	if res, ok := triq.ServeMaterialized(tr.Query, triq.Unrestricted, opts); ok {
		return tr.decode(ctx, res, opts)
	}
	db, err := tr.loadDB(ctx, g, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := triq.EvalCtx(ctx, db, tr.Query, triq.Unrestricted, opts)
	if err != nil {
		return nil, nil, err
	}
	return tr.decode(ctx, res, opts)
}

// EvaluateExactFullCtx is EvaluateFullCtx with the bottom-up evaluator
// replaced by the exact ProofTree procedure (triq.EvalExactCtx): every
// reported mapping is certified by a proof tree, at the cost of enumerating
// the answer domain. The translation must be TriQ-Lite 1.0, which the
// regime variants are by Corollaries 5.4 and 6.2.
func (tr *Translation) EvaluateExactFullCtx(ctx context.Context, g *rdf.Graph, opts triq.Options) (*sparql.MappingSet, *triq.Result, error) {
	db, err := tr.loadDB(ctx, g, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := triq.EvalExactCtx(ctx, db, tr.Query, opts)
	if err != nil {
		return nil, nil, err
	}
	return tr.decode(ctx, res, opts)
}

// loadDB builds τ_db(G) under a translate.load_db span.
func (tr *Translation) loadDB(ctx context.Context, g *rdf.Graph, opts triq.Options) (*chase.Instance, error) {
	_, sp := obs.StartSpan(ctx, opts.Chase.Obs, "translate.load_db", obs.F("triples", g.Len()))
	db := DB(g)
	sp.End(obs.F("facts", db.Len()))
	return db, nil
}

// decode maps the evaluation result back to ⟦(P_dat, τ_db(G))⟧.
func (tr *Translation) decode(ctx context.Context, res *triq.Result, opts triq.Options) (*sparql.MappingSet, *triq.Result, error) {
	if res.Answers.Inconsistent {
		return nil, res, nil
	}
	if err := limits.Hit(opts.Chase.Faults, "translate.decode"); err != nil {
		return nil, res, err
	}
	_, dec := obs.StartSpan(ctx, opts.Chase.Obs, "translate.decode", obs.F("tuples", len(res.Answers.Tuples)))
	defer func() { dec.End() }()
	out := sparql.NewMappingSet()
	out.Incomplete = res.Incomplete
	out.Truncation = res.Truncation
	for _, tup := range res.Answers.Tuples {
		m := make(sparql.Mapping)
		for i, t := range tup {
			if i >= len(tr.Vars) {
				break
			}
			if t.Name == datalog.StarConstant {
				continue
			}
			m[tr.Vars[i]] = DecodeTerm(t.Name)
		}
		out.Add(m)
	}
	return out, res, nil
}

// compiler carries the translation state.
type compiler struct {
	regime  Regime
	prog    *datalog.Program
	nextID  int
	nextVar int
	needEq  bool
	obs     *obs.Obs
	span    *obs.Span // current parent span for translate.op children
}

// patternKind names a SPARQL operator for spans and summaries.
func patternKind(p sparql.Pattern) string {
	switch p.(type) {
	case sparql.BGP:
		return "BGP"
	case sparql.And:
		return "AND"
	case sparql.Union:
		return "UNION"
	case sparql.Opt:
		return "OPT"
	case sparql.Filter:
		return "FILTER"
	case sparql.Select:
		return "SELECT"
	default:
		return fmt.Sprintf("%T", p)
	}
}

// domain is a sorted set of variable names.
type domain []string

func (d domain) key() string { return strings.Join(d, ",") }

func (d domain) has(v string) bool {
	for _, x := range d {
		if x == v {
			return true
		}
	}
	return false
}

func domainOf(vars map[string]bool) domain {
	return domain(sortedVars(vars))
}

func unionDomains(a, b domain) domain {
	seen := make(map[string]bool, len(a)+len(b))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		seen[v] = true
	}
	return domainOf(seen)
}

func intersectWith(a domain, keep map[string]bool) domain {
	seen := make(map[string]bool)
	for _, v := range a {
		if keep[v] {
			seen[v] = true
		}
	}
	return domainOf(seen)
}

// node is the compilation result of one sub-pattern: its predicate family.
type node struct {
	id      int
	domains []domain
	preds   map[string]string // domain key → predicate name
}

func (n *node) atom(d domain) datalog.Atom {
	a := datalog.Atom{Pred: n.preds[d.key()]}
	for _, v := range d {
		a.Args = append(a.Args, datalog.V(v))
	}
	return a
}

func (c *compiler) newNode(domains []domain) *node {
	c.nextID++
	n := &node{id: c.nextID, preds: make(map[string]string)}
	seen := make(map[string]bool)
	for _, d := range domains {
		k := d.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		n.domains = append(n.domains, d)
		n.preds[k] = fmt.Sprintf("q%d|%s", n.id, k)
	}
	return n
}

func (c *compiler) freshVar() datalog.Term {
	c.nextVar++
	return datalog.V(fmt.Sprintf("?_b%d", c.nextVar))
}

func (c *compiler) compile(p sparql.Pattern) (*node, error) {
	kind := patternKind(p)
	before := len(c.prog.Rules)
	parent := c.span
	var sp *obs.Span
	if parent != nil {
		sp = parent.Span("translate.op", obs.F("kind", kind))
		c.span = sp
	}
	n, err := c.compileInner(p)
	if parent != nil {
		c.span = parent
		sp.End(obs.F("rules", len(c.prog.Rules)-before), obs.F("error", err != nil))
	}
	// Provenance: rules added by this operator that no nested compile call
	// already claimed belong to this operator (the recursion tags innermost
	// first), giving EXPLAIN its SPARQL-operator → Datalog-rule attribution.
	c.claimRules(before, kind)
	return n, err
}

// claimRules stamps the given provenance on every rule from index start on
// that has none yet.
func (c *compiler) claimRules(start int, provenance string) {
	for i := start; i < len(c.prog.Rules); i++ {
		if c.prog.Rules[i].Provenance == "" {
			c.prog.Rules[i].Provenance = provenance
		}
	}
}

func (c *compiler) compileInner(p sparql.Pattern) (*node, error) {
	switch q := p.(type) {
	case sparql.BGP:
		return c.compileBGP(q)
	case sparql.And:
		return c.compileAnd(q)
	case sparql.Union:
		return c.compileUnion(q)
	case sparql.Opt:
		return c.compileOpt(q)
	case sparql.Filter:
		return c.compileFilter(q)
	case sparql.Select:
		return c.compileSelect(q)
	default:
		return nil, fmt.Errorf("translate: unknown pattern type %T", p)
	}
}

// compileBGP emits τ_bgp (Plain), τ^U_bgp, or τ^All_bgp for one basic graph
// pattern: one rule whose body holds the triple atoms — over triple(·,·,·)
// for Plain and over triple1(·,·,·) with C(·) active-domain atoms under the
// regimes (every variable under U; only the pattern variables, not the
// blank-node variables, under All).
func (c *compiler) compileBGP(p sparql.BGP) (*node, error) {
	d := domainOf(p.Vars())
	n := c.newNode([]domain{d})
	head := n.atom(d)
	if len(p.Triples) == 0 {
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{{Pred: seedFact}},
			Head:    []datalog.Atom{head},
		})
		return n, nil
	}
	triplePred := "triple"
	if c.regime != Plain {
		triplePred = "triple1"
	}
	blankVars := make(map[string]datalog.Term)
	var body []datalog.Atom
	var varTerms []datalog.Term   // pattern variables, for C(·) anchors
	var blankTerms []datalog.Term // blank-node variables, for C(·) under U
	seenVar := map[string]bool{}
	conv := func(t sparql.PTerm) datalog.Term {
		if t.IsVar {
			if !seenVar[t.Var] {
				seenVar[t.Var] = true
				varTerms = append(varTerms, datalog.V(t.Var))
			}
			return datalog.V(t.Var)
		}
		if t.Term.IsBlank() {
			v, ok := blankVars[t.Term.Value]
			if !ok {
				v = c.freshVar()
				blankVars[t.Term.Value] = v
				blankTerms = append(blankTerms, v)
			}
			return v
		}
		return EncodeTerm(t.Term)
	}
	for _, tp := range p.Triples {
		body = append(body, datalog.NewAtom(triplePred, conv(tp.S), conv(tp.P), conv(tp.O)))
	}
	if c.regime != Plain {
		for _, v := range varTerms {
			body = append(body, datalog.NewAtom("C", v))
		}
		if c.regime == ActiveDomain || c.regime == RDFS {
			for _, v := range blankTerms {
				body = append(body, datalog.NewAtom("C", v))
			}
		}
	}
	c.prog.Add(datalog.Rule{BodyPos: body, Head: []datalog.Atom{head}})
	return n, nil
}

func (c *compiler) compileAnd(p sparql.And) (*node, error) {
	l, err := c.compile(p.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(p.R)
	if err != nil {
		return nil, err
	}
	var domains []domain
	for _, d1 := range l.domains {
		for _, d2 := range r.domains {
			domains = append(domains, unionDomains(d1, d2))
		}
	}
	n := c.newNode(domains)
	for _, d1 := range l.domains {
		for _, d2 := range r.domains {
			d := unionDomains(d1, d2)
			c.prog.Add(datalog.Rule{
				BodyPos: []datalog.Atom{l.atom(d1), r.atom(d2)},
				Head:    []datalog.Atom{n.atom(d)},
			})
		}
	}
	return n, nil
}

func (c *compiler) compileUnion(p sparql.Union) (*node, error) {
	l, err := c.compile(p.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(p.R)
	if err != nil {
		return nil, err
	}
	n := c.newNode(append(append([]domain{}, l.domains...), r.domains...))
	for _, d := range l.domains {
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{l.atom(d)},
			Head:    []datalog.Atom{n.atom(d)},
		})
	}
	for _, d := range r.domains {
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{r.atom(d)},
			Head:    []datalog.Atom{n.atom(d)},
		})
	}
	return n, nil
}

// compileOpt realizes Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2) following the
// compatible/¬compatible recipe of Example 5.1: the join rules are those of
// AND; the difference keeps µ1 ∈ Ω1 with no compatible µ2 ∈ Ω2, tracked by a
// per-domain hasmate predicate and stratified grounded negation.
func (c *compiler) compileOpt(p sparql.Opt) (*node, error) {
	l, err := c.compile(p.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(p.R)
	if err != nil {
		return nil, err
	}
	var domains []domain
	for _, d1 := range l.domains {
		for _, d2 := range r.domains {
			domains = append(domains, unionDomains(d1, d2))
		}
	}
	domains = append(domains, l.domains...)
	n := c.newNode(domains)
	for _, d1 := range l.domains {
		// Join part.
		for _, d2 := range r.domains {
			d := unionDomains(d1, d2)
			c.prog.Add(datalog.Rule{
				BodyPos: []datalog.Atom{l.atom(d1), r.atom(d2)},
				Head:    []datalog.Atom{n.atom(d)},
			})
		}
		// Difference part: hasmate_{d1}(d1) ← q_{P1,d1} ⋈ q_{P2,d2}.
		hasmate := fmt.Sprintf("hasmate%d|%s", n.id, d1.key())
		hm := datalog.Atom{Pred: hasmate}
		for _, v := range d1 {
			hm.Args = append(hm.Args, datalog.V(v))
		}
		for _, d2 := range r.domains {
			c.prog.Add(datalog.Rule{
				BodyPos: []datalog.Atom{l.atom(d1), r.atom(d2)},
				Head:    []datalog.Atom{hm},
			})
		}
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{l.atom(d1)},
			BodyNeg: []datalog.Atom{hm},
			Head:    []datalog.Atom{n.atom(d1)},
		})
	}
	return n, nil
}

func (c *compiler) compileSelect(p sparql.Select) (*node, error) {
	inner, err := c.compile(p.P)
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(p.Proj))
	for _, v := range p.Proj {
		keep[v] = true
	}
	var domains []domain
	for _, d := range inner.domains {
		domains = append(domains, intersectWith(d, keep))
	}
	n := c.newNode(domains)
	for _, d := range inner.domains {
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{inner.atom(d)},
			Head:    []datalog.Atom{n.atom(intersectWith(d, keep))},
		})
	}
	return n, nil
}

func sortedVars(vars map[string]bool) []string {
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// EncodeTerm maps an RDF term to a Datalog constant. IRIs map to their bare
// value; blank nodes get a "_:" prefix; literals keep their N-Triples
// rendering so that IRIs and literals with the same lexical form stay
// distinct.
func EncodeTerm(t rdf.Term) datalog.Term {
	switch t.Kind {
	case rdf.IRI:
		return datalog.C(t.Value)
	case rdf.Blank:
		return datalog.C("_:" + t.Value)
	default:
		return datalog.C(t.String())
	}
}

// DecodeTerm inverts EncodeTerm.
func DecodeTerm(name string) rdf.Term {
	if strings.HasPrefix(name, "_:") {
		return rdf.NewBlank(strings.TrimPrefix(name, "_:"))
	}
	if strings.HasPrefix(name, `"`) {
		g, err := rdf.ParseNTriplesString("s p " + name + " .")
		if err == nil {
			for _, tr := range g.Triples() {
				return tr.O
			}
		}
	}
	return rdf.NewIRI(name)
}
