package translate

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/sparql"
	"repro/internal/triq"
)

// The metamorphic suite checks answer-set invariance of the full
// translate→chase→eval pipeline under rewrites the paper's algebra makes
// semantics-preserving: AND is join (commutative and associative, Sec. 2),
// UNION is set union (commutative), and a FILTER over a conjunction is the
// composition of the two filters. Each rewrite is applied at every matching
// node of a random pattern; the rewritten pattern must produce the same
// mapping set as the original — and, as a bonus differential angle, the
// original is evaluated sequentially while the rewrite runs on the parallel
// chase, so any divergence between the two engines surfaces here too.

// rewrite is one semantics-preserving transformation, applied recursively;
// it reports how many nodes it changed via the counter.
type rewrite struct {
	name  string
	apply func(p sparql.Pattern, hits *int) sparql.Pattern
}

// mapChildren rebuilds a pattern with f applied to every direct child.
func mapChildren(p sparql.Pattern, f func(sparql.Pattern) sparql.Pattern) sparql.Pattern {
	switch t := p.(type) {
	case sparql.And:
		return sparql.And{L: f(t.L), R: f(t.R)}
	case sparql.Union:
		return sparql.Union{L: f(t.L), R: f(t.R)}
	case sparql.Opt:
		return sparql.Opt{L: f(t.L), R: f(t.R)}
	case sparql.Filter:
		return sparql.Filter{P: f(t.P), Cond: t.Cond}
	case sparql.Select:
		return sparql.Select{Proj: t.Proj, P: f(t.P)}
	default: // BGP — no children
		return p
	}
}

var rewrites = []rewrite{
	{"and-commute", func(p sparql.Pattern, hits *int) sparql.Pattern {
		var rec func(sparql.Pattern) sparql.Pattern
		rec = func(p sparql.Pattern) sparql.Pattern {
			p = mapChildren(p, rec)
			if a, ok := p.(sparql.And); ok {
				*hits++
				return sparql.And{L: a.R, R: a.L}
			}
			return p
		}
		return rec(p)
	}},
	{"and-assoc", func(p sparql.Pattern, hits *int) sparql.Pattern {
		var rec func(sparql.Pattern) sparql.Pattern
		rec = func(p sparql.Pattern) sparql.Pattern {
			p = mapChildren(p, rec)
			if a, ok := p.(sparql.And); ok {
				if l, ok := a.L.(sparql.And); ok {
					*hits++
					return sparql.And{L: l.L, R: sparql.And{L: l.R, R: a.R}}
				}
			}
			return p
		}
		return rec(p)
	}},
	{"union-commute", func(p sparql.Pattern, hits *int) sparql.Pattern {
		var rec func(sparql.Pattern) sparql.Pattern
		rec = func(p sparql.Pattern) sparql.Pattern {
			p = mapChildren(p, rec)
			if u, ok := p.(sparql.Union); ok {
				*hits++
				return sparql.Union{L: u.R, R: u.L}
			}
			return p
		}
		return rec(p)
	}},
	{"filter-split", func(p sparql.Pattern, hits *int) sparql.Pattern {
		var rec func(sparql.Pattern) sparql.Pattern
		rec = func(p sparql.Pattern) sparql.Pattern {
			p = mapChildren(p, rec)
			if fp, ok := p.(sparql.Filter); ok {
				if c, ok := fp.Cond.(sparql.Conj); ok {
					*hits++
					return sparql.Filter{P: sparql.Filter{P: fp.P, Cond: c.L}, Cond: c.R}
				}
			}
			return p
		}
		return rec(p)
	}},
}

func TestMetamorphicRewrites(t *testing.T) {
	rng := rand.New(rand.NewSource(20140622))
	rounds := 140
	if testing.Short() {
		rounds = 40
	}
	applied := make(map[string]int)
	for round := 0; round < rounds; round++ {
		p := randomPattern(rng, 3)
		if sparql.Validate(p) != nil {
			continue
		}
		g := randomGraph(rng)
		tr, err := Translate(p, Plain)
		if err != nil {
			t.Fatalf("round %d: translate %s: %v", round, p, err)
		}
		base, baseInc, err := tr.Evaluate(g, triq.Options{Chase: chase.Options{Parallelism: 1}})
		if err != nil {
			t.Fatalf("round %d: evaluate %s: %v", round, p, err)
		}
		for _, rw := range rewrites {
			hits := 0
			q := rw.apply(p, &hits)
			if hits == 0 {
				continue
			}
			applied[rw.name] += hits
			trq, err := Translate(q, Plain)
			if err != nil {
				t.Fatalf("round %d: translate rewrite %s of %s: %v", round, rw.name, p, err)
			}
			got, gotInc, err := trq.Evaluate(g, triq.Options{Chase: chase.Options{Parallelism: 8}})
			if err != nil {
				t.Fatalf("round %d: evaluate rewrite %s of %s: %v", round, rw.name, p, err)
			}
			if baseInc != gotInc {
				t.Errorf("round %d: %s changed inconsistency: %v vs %v", round, rw.name, baseInc, gotInc)
			}
			if !base.Equal(got) {
				t.Errorf("round %d: %s changed the answers of %s over\n%s\noriginal:\n%s\nrewritten %s:\n%s",
					round, rw.name, p, g, base, q, got)
			}
		}
	}
	for _, rw := range rewrites {
		if applied[rw.name] == 0 {
			t.Errorf("rewrite %s never applied in %d rounds; generator drifted?", rw.name, rounds)
		}
	}
}

// TestMetamorphicRegimes repeats the core rewrites under the OWL 2 QL
// entailment regime, where evaluation routes through the saturation chase
// (existential rules) rather than plain Datalog — the paths the parallel
// engine changes most.
func TestMetamorphicRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rounds := 25
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		p := sparql.And{L: randomPattern(rng, 1), R: randomPattern(rng, 1)}
		if sparql.Validate(p) != nil {
			continue
		}
		g := randomGraph(rng)
		tr, err := Translate(p, ActiveDomain)
		if err != nil {
			t.Fatalf("round %d: translate %s: %v", round, p, err)
		}
		base, baseInc, err := tr.Evaluate(g, triq.Options{Chase: chase.Options{Parallelism: 1}})
		if err != nil {
			t.Fatalf("round %d: evaluate %s: %v", round, p, err)
		}
		swapped := sparql.And{L: p.R, R: p.L}
		trs, err := Translate(swapped, ActiveDomain)
		if err != nil {
			t.Fatalf("round %d: translate swap of %s: %v", round, p, err)
		}
		got, gotInc, err := trs.Evaluate(g, triq.Options{Chase: chase.Options{Parallelism: 8}})
		if err != nil {
			t.Fatalf("round %d: evaluate swap of %s: %v", round, p, err)
		}
		if baseInc != gotInc || !base.Equal(got) {
			t.Errorf("round %d: AND commutativity violated under regime for %s over\n%s\n%s\nvs\n%s",
				round, p, g, base, got)
		}
	}
}
