package translate

import (
	"fmt"
	"strconv"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

// This file translates CONSTRUCT queries into triple-producing rules, as in
// rule (3) of Section 2: the user "simply replaces the predicate query(·) by
// the predicate triple(·,·,·)" — here a dedicated output predicate, so the
// translation composes (Section 2's compositionality discussion) without
// accidentally feeding its own output back into the match. Template blank
// nodes become existentially quantified head variables, which reproduces the
// fresh-blank-per-match semantics of CONSTRUCT under the Skolem chase: the
// invented null is a function of the match's frontier.

// ConstructPred is the output predicate of CONSTRUCT translations.
const ConstructPred = "construct"

// ConstructTranslation is a compiled CONSTRUCT query.
type ConstructTranslation struct {
	// Query is the Datalog^{∃,¬s,⊥} query (Π, construct).
	Query datalog.Query
	// Regime records the semantics of the WHERE clause.
	Regime Regime
}

// TranslateConstruct compiles a CONSTRUCT query.
func TranslateConstruct(q *sparql.Query, regime Regime) (*ConstructTranslation, error) {
	if q.Kind != sparql.ConstructQuery {
		return nil, fmt.Errorf("translate: not a CONSTRUCT query")
	}
	if err := sparql.Validate(q.Where); err != nil {
		return nil, err
	}
	c := &compiler{regime: regime, prog: &datalog.Program{}}
	node, err := c.compile(q.Where)
	if err != nil {
		return nil, err
	}
	// One rule group per domain: instantiate the template triples whose
	// variables are all bound under d; blanks become shared existential
	// variables. SPARQL requires a FRESH blank node per solution mapping
	// (not merely per distinct template projection), so when the template
	// has blanks the rule first derives an auxiliary atom carrying the full
	// domain — making the invented null a Skolem function of the whole
	// mapping — and projection rules then emit the triples.
	for di, d := range node.domains {
		blankVars := make(map[string]datalog.Term)
		nextBlank := 0
		var head []datalog.Atom
		for _, tp := range q.Template {
			atomArgs := make([]datalog.Term, 0, 3)
			ok := true
			for _, term := range tp.Terms() {
				switch {
				case term.IsVar:
					if !d.has(term.Var) {
						ok = false
					} else {
						atomArgs = append(atomArgs, datalog.V(term.Var))
					}
				case term.IsBlank():
					v, have := blankVars[term.Term.Value]
					if !have {
						v = datalog.V("?_t" + strconv.Itoa(nextBlank))
						nextBlank++
						blankVars[term.Term.Value] = v
					}
					atomArgs = append(atomArgs, v)
				default:
					atomArgs = append(atomArgs, EncodeTerm(term.Term))
				}
			}
			if ok {
				head = append(head, datalog.Atom{Pred: ConstructPred, Args: atomArgs})
			}
		}
		if len(head) == 0 {
			continue
		}
		if len(blankVars) == 0 {
			c.prog.Add(datalog.Rule{
				BodyPos: []datalog.Atom{node.atom(d)},
				Head:    head,
			})
			continue
		}
		auxArgs := make([]datalog.Term, 0, len(d)+len(blankVars))
		for _, v := range d {
			auxArgs = append(auxArgs, datalog.V(v))
		}
		for i := 0; i < nextBlank; i++ {
			auxArgs = append(auxArgs, datalog.V("?_t"+strconv.Itoa(i)))
		}
		aux := datalog.Atom{Pred: fmt.Sprintf("cmatch%d", di), Args: auxArgs}
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{node.atom(d)},
			Head:    []datalog.Atom{aux},
		})
		c.prog.Add(datalog.Rule{
			BodyPos: []datalog.Atom{aux},
			Head:    head,
		})
	}
	if c.needEq {
		c.emitEqRules()
	}
	switch regime {
	case ActiveDomain, All:
		c.prog.Merge(owl.Program())
	case RDFS:
		c.prog.Merge(owl.RDFSProgram())
	}
	query := datalog.NewQuery(c.prog, ConstructPred)
	if err := query.Validate(); err != nil {
		return nil, fmt.Errorf("translate: internal: %w", err)
	}
	return &ConstructTranslation{Query: query, Regime: regime}, nil
}

// Evaluate runs the translated CONSTRUCT over a graph and decodes the output
// relation into an RDF graph; invented nulls become blank nodes. The boolean
// reports ⊤ under the entailment regimes.
func (ct *ConstructTranslation) Evaluate(g *rdf.Graph, opts triq.Options) (*rdf.Graph, bool, error) {
	if opts.Chase.MaxDepth == 0 {
		opts.Chase.MaxDepth = 12
	}
	res, err := chase.Run(DB(g), ct.Query.Program, opts.Chase)
	if err != nil {
		return nil, false, err
	}
	if res.Inconsistent {
		return nil, true, nil
	}
	out := rdf.NewGraph()
	for _, a := range res.Instance.AtomsOf(ConstructPred) {
		if a.Arity() != 3 {
			continue
		}
		out.Add(rdf.NewTriple(decodeAny(a.Args[0]), decodeAny(a.Args[1]), decodeAny(a.Args[2])))
	}
	return out, false, nil
}

func decodeAny(t datalog.Term) rdf.Term {
	if t.IsNull() {
		return rdf.NewBlank(t.Name)
	}
	return DecodeTerm(t.Name)
}
