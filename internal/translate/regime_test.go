package translate

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

func regimeOpts() triq.Options {
	return triq.Options{Chase: chase.Options{MaxDepth: 16}}
}

// animalsGraph is the graph (14) of Section 5.2: dog is an animal, and every
// animal eats something — serialized with full vocabulary triples.
func animalsGraph() *rdf.Graph {
	o := owl.NewOntology().Add(
		owl.ClassAssertion(owl.Atom("animal"), "dog"),
		owl.SubClassOf(owl.Atom("animal"), owl.Some(owl.Prop("eats"))),
	)
	return o.ToGraph()
}

func evalRegime(t *testing.T, p sparql.Pattern, g *rdf.Graph, r Regime) *sparql.MappingSet {
	t.Helper()
	tr, err := Translate(p, r)
	if err != nil {
		t.Fatal(err)
	}
	got, inconsistent, err := tr.Evaluate(g, regimeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if inconsistent {
		t.Fatal("unexpected inconsistency")
	}
	return got
}

func TestActiveDomainRegimeSection52(t *testing.T) {
	g := animalsGraph()
	// (?X, eats, _:B) is empty under the active-domain regime: the eater's
	// witness is anonymous.
	pBlank := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("eats"), sparql.Blank("B")),
	}}
	if got := evalRegime(t, pBlank, g, ActiveDomain); got.Len() != 0 {
		t.Errorf("⟦(?X, eats, _:B)⟧^U should be empty, got %s", got)
	}
	// (?X, rdf:type, ∃eats) retrieves dog.
	pType := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("∃eats")),
	}}
	got := evalRegime(t, pType, g, ActiveDomain)
	if got.Len() != 1 || !got.Has(sparql.Mapping{"?X": rdf.NewIRI("dog")}) {
		t.Errorf("⟦(?X, rdf:type, ∃eats)⟧^U = %s, want {dog}", got)
	}
}

func TestAllRegimeLiftsActiveDomain(t *testing.T) {
	g := animalsGraph()
	// Under ⟦·⟧^All the blank node is a true existential, so dog is found
	// (Section 5.3 motivation).
	pBlank := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("eats"), sparql.Blank("B")),
	}}
	got := evalRegime(t, pBlank, g, All)
	if got.Len() != 1 || !got.Has(sparql.Mapping{"?X": rdf.NewIRI("dog")}) {
		t.Errorf("⟦(?X, eats, _:B)⟧^All = %s, want {dog}", got)
	}
}

func TestAllRegimeHerbivores(t *testing.T) {
	// The Section 5.3 query Q = {(?X, eats, _:B), (_:B, rdf:type,
	// plant_material)} over the herbivores ontology with
	// (∃eats⁻, rdfs:subClassOf, plant_material): the witness is anonymous
	// AND its class membership is derived.
	o := owl.NewOntology().Add(
		owl.ClassAssertion(owl.Atom("animal"), "rex"),
		owl.SubClassOf(owl.Atom("animal"), owl.Some(owl.Prop("eats"))),
		owl.SubClassOf(owl.Some(owl.Inv("eats")), owl.Atom("plant_material")),
	)
	g := o.ToGraph()
	q := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("eats"), sparql.Blank("B")),
		sparql.TP(sparql.Blank("B"), sparql.IRI("rdf:type"), sparql.IRI("plant_material")),
	}}
	got := evalRegime(t, q, g, All)
	if got.Len() != 1 || !got.Has(sparql.Mapping{"?X": rdf.NewIRI("rex")}) {
		t.Errorf("⟦Q⟧^All = %s, want {rex}", got)
	}
	// Under the active-domain regime the same query is empty.
	if got := evalRegime(t, q, g, ActiveDomain); got.Len() != 0 {
		t.Errorf("⟦Q⟧^U = %s, want empty", got)
	}
}

func TestRegimeCoauthorsSection2(t *testing.T) {
	// Graph G3 of Section 2: the restriction axiom makes dbAho an author of
	// something, so the authors query finds both authors under the regime
	// but only dbUllman without it.
	o := owl.NewOntology().Add(
		owl.SubClassOf(owl.Some(owl.Prop("is_coauthor_of")), owl.Some(owl.Prop("is_author_of"))),
		owl.PropertyAssertion("is_author_of", "dbUllman", "tcb"),
		owl.PropertyAssertion("name", "dbUllman", "jeff"),
		owl.PropertyAssertion("is_coauthor_of", "dbAho", "dbUllman"),
		owl.PropertyAssertion("name", "dbAho", "alfred"),
	)
	g := o.ToGraph()
	// Query (1): SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }.
	p := sparql.Select{Proj: []string{"?X"}, P: sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("Y"), sparql.IRI("is_author_of"), sparql.Var("Z")),
		sparql.TP(sparql.Var("Y"), sparql.IRI("name"), sparql.Var("X")),
	}}}
	plain := evalRegime(t, p, g, Plain)
	if plain.Len() != 1 || !plain.Has(sparql.Mapping{"?X": rdf.NewIRI("jeff")}) {
		t.Errorf("plain answers = %s", plain)
	}
	// Under the regime, dbAho's authorship is implied, but its witness is
	// anonymous — so the ?Z variable cannot be bound under U…
	u := evalRegime(t, p, g, ActiveDomain)
	if u.Len() != 1 {
		t.Errorf("U answers = %s", u)
	}
	// …whereas replacing (?Y is_author_of ?Z) with a blank node finds both
	// names under All.
	pAll := sparql.Select{Proj: []string{"?X"}, P: sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("Y"), sparql.IRI("is_author_of"), sparql.Blank("B")),
		sparql.TP(sparql.Var("Y"), sparql.IRI("name"), sparql.Var("X")),
	}}}
	all := evalRegime(t, pAll, g, All)
	if all.Len() != 2 || !all.Has(sparql.Mapping{"?X": rdf.NewIRI("alfred")}) {
		t.Errorf("All answers = %s", all)
	}
}

func TestRegimeSameAs(t *testing.T) {
	// The owl:sameAs scenario of Section 2 expressed through subproperties
	// is out of OWL 2 QL core scope, but the regime still answers queries
	// over subPropertyOf reasoning; check a knows ⊒ is_coauthor_of case.
	o := owl.NewOntology().Add(
		owl.SubPropertyOf(owl.Prop("is_coauthor_of"), owl.Prop("knows")),
		owl.PropertyAssertion("is_coauthor_of", "aho", "ullman"),
	)
	g := o.ToGraph()
	p := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("knows"), sparql.Var("Y")),
	}}
	got := evalRegime(t, p, g, ActiveDomain)
	if got.Len() != 1 || !got.Has(sparql.Mapping{"?X": rdf.NewIRI("aho"), "?Y": rdf.NewIRI("ullman")}) {
		t.Errorf("knows answers = %s", got)
	}
	// Inverse direction via knows⁻.
	pInv := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("knows⁻"), sparql.Var("Y")),
	}}
	got = evalRegime(t, pInv, g, ActiveDomain)
	if got.Len() != 1 || !got.Has(sparql.Mapping{"?X": rdf.NewIRI("ullman"), "?Y": rdf.NewIRI("aho")}) {
		t.Errorf("knows⁻ answers = %s", got)
	}
}

func TestRegimeInconsistency(t *testing.T) {
	o := owl.NewOntology().Add(
		owl.DisjointClasses(owl.Atom("cat"), owl.Atom("dog")),
		owl.ClassAssertion(owl.Atom("cat"), "rex"),
		owl.ClassAssertion(owl.Atom("dog"), "rex"),
	)
	g := o.ToGraph()
	p := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("dog")),
	}}
	tr := MustTranslate(p, ActiveDomain)
	_, inconsistent, err := tr.Evaluate(g, regimeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !inconsistent {
		t.Error("disjointness violation should surface as ⊤")
	}
}

// TestRegimeAgreesWithOracle compares the translated regime evaluation with
// the direct DL-LiteR reasoner on single-triple patterns (the shape for
// which the oracle directly defines the semantics).
func TestRegimeAgreesWithOracle(t *testing.T) {
	o := owl.NewOntology().Add(
		owl.SubClassOf(owl.Atom("dog"), owl.Atom("animal")),
		owl.SubClassOf(owl.Atom("animal"), owl.Some(owl.Prop("eats"))),
		owl.SubPropertyOf(owl.Prop("feeds_on"), owl.Prop("eats")),
		owl.ClassAssertion(owl.Atom("dog"), "rex"),
		owl.PropertyAssertion("feeds_on", "bess", "grass"),
	)
	g := o.ToGraph()
	r := owl.NewReasoner(o)
	inds := o.Individuals()
	for _, b := range o.BasicClasses() {
		p := sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI(b.URI())),
		}}
		got := evalRegime(t, p, g, ActiveDomain)
		for _, a := range inds {
			want := r.Member(a, b)
			has := got.Has(sparql.Mapping{"?X": rdf.NewIRI(a)})
			if want != has {
				t.Errorf("type(%s, %s): regime=%v oracle=%v", a, b.URI(), has, want)
			}
		}
	}
	for _, prop := range o.BasicProperties() {
		p := sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI(prop.URI()), sparql.Var("Y")),
		}}
		got := evalRegime(t, p, g, ActiveDomain)
		for _, a := range inds {
			for _, b := range inds {
				want := r.Role(prop, a, b)
				has := got.Has(sparql.Mapping{"?X": rdf.NewIRI(a), "?Y": rdf.NewIRI(b)})
				if want != has {
					t.Errorf("%s(%s, %s): regime=%v oracle=%v", prop.URI(), a, b, has, want)
				}
			}
		}
	}
}
