package translate

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

func evalBoth(t *testing.T, p sparql.Pattern, g *rdf.Graph) (*sparql.MappingSet, *sparql.MappingSet) {
	t.Helper()
	direct := sparql.Eval(p, g)
	tr, err := Translate(p, Plain)
	if err != nil {
		t.Fatalf("translate %s: %v", p, err)
	}
	got, inconsistent, err := tr.Evaluate(g, triq.Options{})
	if err != nil {
		t.Fatalf("evaluate %s: %v", p, err)
	}
	if inconsistent {
		t.Fatalf("plain translation can never be inconsistent: %s", p)
	}
	return direct, got
}

func assertTheorem52(t *testing.T, p sparql.Pattern, g *rdf.Graph) {
	t.Helper()
	direct, got := evalBoth(t, p, g)
	if !direct.Equal(got) {
		t.Errorf("Theorem 5.2 violated for %s:\nSPARQL:\n%s\nDatalog:\n%s", p, direct, got)
	}
}

func TestTranslateBGPAuthors(t *testing.T) {
	g := rdf.NewGraph(
		rdf.Triple{S: rdf.NewIRI("dbUllman"), P: rdf.NewIRI("is_author_of"), O: rdf.NewLiteral("The Complete Book")},
		rdf.Triple{S: rdf.NewIRI("dbUllman"), P: rdf.NewIRI("name"), O: rdf.NewLiteral("Jeffrey Ullman")},
	)
	p := sparql.Select{Proj: []string{"?X"}, P: sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("Y"), sparql.IRI("is_author_of"), sparql.Var("Z")),
		sparql.TP(sparql.Var("Y"), sparql.IRI("name"), sparql.Var("X")),
	}}}
	assertTheorem52(t, p, g)
}

func TestTranslateOptStarConvention(t *testing.T) {
	// Example 5.1, pattern P3 = (?X,name,?Y) OPT (?X,phone,?Z): the phoneless
	// individual appears with ⋆ in the third position.
	g := rdf.NewGraph(
		rdf.T("u1", "name", "alice"),
		rdf.T("u1", "phone", "tel1"),
		rdf.T("u2", "name", "bob"),
	)
	p := sparql.Opt{
		L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("name"), sparql.Var("Y"))}},
		R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("phone"), sparql.Var("Z"))}},
	}
	tr := MustTranslate(p, Plain)
	res, err := triq.Eval(DB(g), tr.Query, triq.Unrestricted, triq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Raw answers: (u1, alice, tel1) and (u2, bob, ⋆).
	star := datalog.C(datalog.StarConstant)
	foundStar := false
	for _, tup := range res.Answers.Tuples {
		if tup[2] == star {
			foundStar = true
			if tup[0] != datalog.C("u2") {
				t.Errorf("⋆-row = %v", tup)
			}
		}
	}
	if !foundStar {
		t.Error("no ⋆-padded answer emitted")
	}
	assertTheorem52(t, p, g)
}

func TestTranslateAndOverOptP4(t *testing.T) {
	// Example 5.1, pattern P4: the cartesian phenomenon must carry over.
	g := rdf.NewGraph(
		rdf.T("u1", "name", "alice"),
		rdf.T("u1", "phone", "tel1"),
		rdf.T("u2", "name", "bob"),
		rdf.T("tel1", "phone_company", "acme"),
		rdf.T("tel9", "phone_company", "other"),
	)
	p := sparql.And{
		L: sparql.Opt{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("name"), sparql.Var("Y"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("phone"), sparql.Var("Z"))}},
		},
		R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("Z"), sparql.IRI("phone_company"), sparql.Var("W"))}},
	}
	assertTheorem52(t, p, g)
}

func TestTranslateUnionBlanksFilters(t *testing.T) {
	g := rdf.NewGraph(
		rdf.T("a", "p", "b"), rdf.T("b", "p", "c"), rdf.T("a", "q", "c"),
		rdf.T("c", "q", "a"),
	)
	patterns := []sparql.Pattern{
		sparql.Union{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("p"), sparql.Var("Y"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("q"), sparql.Var("Z"))}},
		},
		// Blank node as join witness.
		sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI("p"), sparql.Blank("B")),
			sparql.TP(sparql.Blank("B"), sparql.IRI("q"), sparql.Var("Y")),
		}},
		// FILTER with equality, inequality, bound.
		sparql.Filter{
			P:    sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("p"), sparql.Var("Y"))}},
			Cond: sparql.Neg{C: sparql.EqConst{Var: "?X", Val: rdf.NewIRI("a")}},
		},
		sparql.Filter{
			P: sparql.Opt{
				L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("p"), sparql.Var("Y"))}},
				R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("Y"), sparql.IRI("q"), sparql.Var("Z"))}},
			},
			Cond: sparql.Disj{L: sparql.Neg{C: sparql.Bound{Var: "?Z"}}, R: sparql.EqVars{X: "?X", Y: "?X"}},
		},
		// Ground pattern (no variables).
		sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.IRI("a"), sparql.IRI("p"), sparql.IRI("b"))}},
		// Empty BGP.
		sparql.BGP{},
		// SELECT projection.
		sparql.Select{Proj: []string{"?X"}, P: sparql.Opt{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("p"), sparql.Var("Y"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("Y"), sparql.IRI("q"), sparql.Var("Z"))}},
		}},
	}
	for _, p := range patterns {
		assertTheorem52(t, p, g)
	}
}

// randomPattern builds a random well-formed pattern of bounded depth.
func randomPattern(rng *rand.Rand, depth int) sparql.Pattern {
	vars := []string{"?A", "?B", "?C"}
	iris := []string{"a", "b", "c"}
	preds := []string{"p", "q"}
	term := func() sparql.PTerm {
		switch rng.Intn(4) {
		case 0:
			return sparql.IRI(iris[rng.Intn(len(iris))])
		case 1:
			return sparql.Blank("B" + string(rune('0'+rng.Intn(2))))
		default:
			return sparql.Var(vars[rng.Intn(len(vars))])
		}
	}
	bgp := func() sparql.Pattern {
		n := 1 + rng.Intn(2)
		var ts []sparql.TriplePattern
		for i := 0; i < n; i++ {
			ts = append(ts, sparql.TP(term(), sparql.IRI(preds[rng.Intn(len(preds))]), term()))
		}
		return sparql.BGP{Triples: ts}
	}
	if depth <= 0 {
		return bgp()
	}
	switch rng.Intn(6) {
	case 0:
		return sparql.And{L: randomPattern(rng, depth-1), R: randomPattern(rng, depth-1)}
	case 1:
		return sparql.Union{L: randomPattern(rng, depth-1), R: randomPattern(rng, depth-1)}
	case 2:
		return sparql.Opt{L: randomPattern(rng, depth-1), R: randomPattern(rng, depth-1)}
	case 3:
		inner := randomPattern(rng, depth-1)
		pv := sparql.Pattern(inner).Vars()
		var inScope []string
		for v := range pv {
			inScope = append(inScope, v)
		}
		if len(inScope) == 0 {
			return inner
		}
		cond := randomCond(rng, inScope, 2)
		return sparql.Filter{P: inner, Cond: cond}
	case 4:
		inner := randomPattern(rng, depth-1)
		proj := []string{vars[rng.Intn(len(vars))]}
		return sparql.Select{Proj: proj, P: inner}
	default:
		return bgp()
	}
}

func randomCond(rng *rand.Rand, scope []string, depth int) sparql.Condition {
	v := func() string { return scope[rng.Intn(len(scope))] }
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return sparql.Bound{Var: v()}
		case 1:
			return sparql.EqConst{Var: v(), Val: rdf.NewIRI([]string{"a", "b"}[rng.Intn(2)])}
		default:
			return sparql.EqVars{X: v(), Y: v()}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return sparql.Neg{C: randomCond(rng, scope, depth-1)}
	case 1:
		return sparql.Conj{L: randomCond(rng, scope, depth-1), R: randomCond(rng, scope, depth-1)}
	case 2:
		return sparql.Disj{L: randomCond(rng, scope, depth-1), R: randomCond(rng, scope, depth-1)}
	default:
		return randomCond(rng, scope, 0)
	}
}

func randomGraph(rng *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	names := []string{"a", "b", "c", "d"}
	preds := []string{"p", "q"}
	n := rng.Intn(10)
	for i := 0; i < n; i++ {
		g.Add(rdf.T(
			names[rng.Intn(len(names))],
			preds[rng.Intn(len(preds))],
			names[rng.Intn(len(names))]))
	}
	return g
}

// TestTheorem52Randomized is the main correctness check of the translation:
// ⟦P⟧_G = ⟦(P_dat, τ_db(G))⟧ on randomized patterns and graphs.
func TestTheorem52Randomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20180713))
	for round := 0; round < 120; round++ {
		p := randomPattern(rng, 2)
		if err := sparql.Validate(p); err != nil {
			t.Fatalf("round %d: generator produced invalid pattern: %v", round, err)
		}
		g := randomGraph(rng)
		direct := sparql.Eval(p, g)
		tr, err := Translate(p, Plain)
		if err != nil {
			t.Fatalf("round %d: translate %s: %v", round, p, err)
		}
		got, _, err := tr.Evaluate(g, triq.Options{})
		if err != nil {
			t.Fatalf("round %d: evaluate %s: %v", round, p, err)
		}
		if !direct.Equal(got) {
			t.Fatalf("round %d: Theorem 5.2 violated for %s over\n%s\nSPARQL:\n%s\nDatalog:\n%s",
				round, p, g, direct, got)
		}
	}
}

// TestTranslationsAreNonRecursiveTriQLite checks Corollary 5.4/6.2
// syntactically: the plain translation is a (stratified, grounded-negation)
// Datalog¬s query, and the regime translations are TriQ-Lite 1.0 (hence also
// TriQ 1.0) queries.
func TestTranslationsAreTriQLite(t *testing.T) {
	p := sparql.Filter{
		P: sparql.Opt{
			L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("name"), sparql.Var("Y"))}},
			R: sparql.BGP{Triples: []sparql.TriplePattern{
				sparql.TP(sparql.Var("X"), sparql.IRI("phone"), sparql.Blank("B")),
				sparql.TP(sparql.Blank("B"), sparql.IRI("q"), sparql.Var("Z")),
			}},
		},
		Cond: sparql.Neg{C: sparql.EqConst{Var: "?Y", Val: rdf.NewIRI("bob")}},
	}
	for _, regime := range []Regime{Plain, ActiveDomain, All} {
		tr, err := Translate(p, regime)
		if err != nil {
			t.Fatalf("%v: %v", regime, err)
		}
		if err := triq.Validate(tr.Query, triq.TriQLite10); err != nil {
			t.Errorf("%v translation should be TriQ-Lite 1.0: %v", regime, err)
		}
		if err := triq.Validate(tr.Query, triq.TriQ10); err != nil {
			t.Errorf("%v translation should be TriQ 1.0: %v", regime, err)
		}
	}
	// The plain translation must also be existential-free (Datalog¬s).
	tr, _ := Translate(p, Plain)
	if tr.Query.Program.HasExistentials() {
		t.Error("plain translation should not use existentials")
	}
}

func TestRegimeStrings(t *testing.T) {
	for _, r := range []Regime{Plain, ActiveDomain, All, Regime(9)} {
		if r.String() == "" {
			t.Errorf("Regime(%d).String empty", int(r))
		}
	}
}

func TestEncodeDecodeTerm(t *testing.T) {
	terms := []rdf.Term{
		rdf.NewIRI("http://example.org/x"),
		rdf.NewIRI("bare"),
		rdf.NewBlank("b0"),
		rdf.NewLiteral("plain text"),
		rdf.NewTypedLiteral("3", "xsd:int"),
		rdf.NewLangLiteral("hi", "en"),
	}
	for _, tm := range terms {
		enc := EncodeTerm(tm)
		dec := DecodeTerm(enc.Name)
		if dec != tm {
			t.Errorf("round trip %v → %v → %v", tm, enc, dec)
		}
	}
	// IRIs and literals with the same lexical form must stay distinct.
	if EncodeTerm(rdf.NewIRI("x")) == EncodeTerm(rdf.NewLiteral("x")) {
		t.Error("IRI and literal collide")
	}
}
