package translate

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/sparql"
)

// This file compiles FILTER conditions. For each possible domain d of the
// filtered pattern, the built-in condition is partially evaluated — bound(?X)
// and equalities over unbound variables have statically known truth values
// under d — and the residue is put into disjunctive normal form. Each
// disjunct becomes one rule: positive equalities are compiled away by
// unifying variables or substituting constants, and negative equalities
// become stratified grounded negation over an eq(·,·) predicate holding the
// identity relation on the active domain.

// atomic is a (possibly negated) residual equality over bound variables.
type atomic struct {
	neg bool
	x   string       // variable
	y   string       // second variable for ?X = ?Y, empty for ?X = c
	c   datalog.Term // constant for ?X = c
}

func (c *compiler) compileFilter(p sparql.Filter) (*node, error) {
	inner, err := c.compile(p.P)
	if err != nil {
		return nil, err
	}
	n := c.newNode(inner.domains)
	for _, d := range inner.domains {
		for _, conj := range dnfOf(p.Cond, d, false) {
			rule, ok := c.filterRule(inner, n, d, conj)
			if !ok {
				continue
			}
			c.prog.Add(rule)
		}
	}
	return n, nil
}

// dnfOf puts the condition (negated when neg is set) into DNF under the
// domain d. The empty disjunction means "statically false"; a disjunction
// containing an empty conjunction means "statically true".
func dnfOf(cond sparql.Condition, d domain, neg bool) [][]atomic {
	truth := func(v bool) [][]atomic {
		if v != neg {
			return [][]atomic{{}}
		}
		return nil
	}
	switch q := cond.(type) {
	case sparql.Bound:
		return truth(d.has(q.Var))
	case sparql.EqConst:
		if !d.has(q.Var) {
			return truth(false)
		}
		return [][]atomic{{{neg: neg, x: q.Var, c: EncodeTerm(q.Val)}}}
	case sparql.EqVars:
		if !d.has(q.X) || !d.has(q.Y) {
			return truth(false)
		}
		return [][]atomic{{{neg: neg, x: q.X, y: q.Y}}}
	case sparql.Neg:
		return dnfOf(q.C, d, !neg)
	case sparql.Conj:
		if neg {
			return append(dnfOf(q.L, d, true), dnfOf(q.R, d, true)...)
		}
		return crossDNF(dnfOf(q.L, d, false), dnfOf(q.R, d, false))
	case sparql.Disj:
		if neg {
			return crossDNF(dnfOf(q.L, d, true), dnfOf(q.R, d, true))
		}
		return append(dnfOf(q.L, d, false), dnfOf(q.R, d, false)...)
	default:
		panic(fmt.Sprintf("translate: unknown condition type %T", cond))
	}
}

func crossDNF(a, b [][]atomic) [][]atomic {
	var out [][]atomic
	for _, x := range a {
		for _, y := range b {
			conj := make([]atomic, 0, len(x)+len(y))
			conj = append(conj, x...)
			conj = append(conj, y...)
			out = append(out, conj)
		}
	}
	return out
}

// filterRule builds the rule for one disjunct, or reports the disjunct
// unsatisfiable.
func (c *compiler) filterRule(inner, n *node, d domain, conj []atomic) (datalog.Rule, bool) {
	// Union-find over the domain variables for positive var=var equalities.
	parent := make(map[string]string, len(d))
	for _, v := range d {
		parent[v] = v
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	bound := make(map[string]datalog.Term) // class representative → constant
	for _, a := range conj {
		if a.neg {
			continue
		}
		if a.y != "" {
			rx, ry := find(a.x), find(a.y)
			if rx == ry {
				continue
			}
			// Merge, reconciling constant bindings.
			if cx, okx := bound[rx]; okx {
				if cy, oky := bound[ry]; oky && cx != cy {
					return datalog.Rule{}, false
				}
				bound[ry] = cx
			}
			parent[rx] = ry
		} else {
			r := find(a.x)
			if prev, ok := bound[r]; ok && prev != a.c {
				return datalog.Rule{}, false
			}
			bound[r] = a.c
		}
	}
	subst := make(map[datalog.Term]datalog.Term)
	value := func(v string) datalog.Term {
		r := find(v)
		if cst, ok := bound[r]; ok {
			return cst
		}
		return datalog.V(r)
	}
	for _, v := range d {
		subst[datalog.V(v)] = value(v)
	}
	var bodyNeg []datalog.Atom
	for _, a := range conj {
		if !a.neg {
			continue
		}
		lhs := value(a.x)
		var rhs datalog.Term
		if a.y != "" {
			rhs = value(a.y)
		} else {
			rhs = a.c
		}
		if lhs == rhs {
			return datalog.Rule{}, false // ¬(t = t) is unsatisfiable
		}
		if lhs.IsConst() && rhs.IsConst() {
			continue // distinct constants: ¬(c1 = c2) is trivially true
		}
		c.needEq = true
		bodyNeg = append(bodyNeg, datalog.NewAtom("eq", lhs, rhs))
	}
	return datalog.Rule{
		BodyPos: []datalog.Atom{inner.atom(d).Substitute(subst)},
		BodyNeg: bodyNeg,
		Head:    []datalog.Atom{n.atom(d).Substitute(subst)},
	}, true
}

// emitEqRules defines eq as the identity on the active domain.
func (c *compiler) emitEqRules() {
	if c.regime == Plain {
		c.prog.Merge(datalog.MustParse(`
			triple(?X, ?Y, ?Z) -> adom(?X), adom(?Y), adom(?Z).
			adom(?X) -> eq(?X, ?X).
		`))
		return
	}
	c.prog.Merge(datalog.MustParse(`
		C(?X) -> eq(?X, ?X).
	`))
}
