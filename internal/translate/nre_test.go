package translate

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triq"
)

func nreTestGraph() *rdf.Graph {
	return rdf.NewGraph(
		rdf.T("a", "p", "b"),
		rdf.T("b", "q", "c"),
		rdf.T("p", "sub", "r"),
		rdf.T("c", "p", "a"),
	)
}

func TestTranslateNREMatchesEvaluator(t *testing.T) {
	exprs := []string{
		"next::p",
		"next",
		"next⁻¹::p",
		"edge::b",
		"node::a",
		"self",
		"self::a",
		"next::p/next::q",
		"next::p|next::q",
		"next::p*",
		"next::p+",
		"(next::p|next::q)+",
		"next::[ next::sub / self::r ]",
		"(next::[ next::sub / self::r ])+",
		"next::[ next::sub ]",
		"edge⁻¹",
		"node⁻¹::a",
	}
	g := nreTestGraph()
	for _, src := range exprs {
		t.Run(src, func(t *testing.T) {
			e := sparql.MustParseNRE(src)
			want := sparql.EvalNRE(g, e)
			tr, err := TranslateNRE(e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tr.Evaluate(g, triq.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("⟦%s⟧: datalog %v vs direct %v", src, got.Sorted(), want.Sorted())
			}
		})
	}
}

// The translated programs are plain Datalog — no existentials, no negation —
// hence trivially TriQ-Lite 1.0 (the executable content of Corollary 7.3:
// every navigational query of [32] lives inside Datalog^{¬s,⊥}, which
// Theorem 7.2 separates from TriQ-Lite 1.0).
func TestTranslateNREIsPlainDatalog(t *testing.T) {
	e := sparql.MustParseNRE("(next::[ (next::partOf)+ / self::transportService ])+")
	tr, err := TranslateNRE(e)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Query.Program.HasExistentials() || tr.Query.Program.HasNegation() {
		t.Error("NRE translation must be plain Datalog")
	}
	if err := triq.Validate(tr.Query, triq.TriQLite10); err != nil {
		t.Errorf("NRE translation should be TriQ-Lite 1.0: %v", err)
	}
	if err := datalog.CheckDialect(tr.Query.Program, datalog.NearlyFrontierGuarded); err != nil {
		t.Errorf("plain Datalog should be nearly frontier-guarded: %v", err)
	}
}

// randomNRE builds a random expression over a small alphabet.
func randomNRE(rng *rand.Rand, depth int) sparql.NRE {
	labels := []string{"p", "q", "sub"}
	step := func() sparql.NRE {
		s := sparql.NREStep{
			Axis:    sparql.Axis(rng.Intn(4)),
			Inverse: rng.Intn(2) == 0,
		}
		if rng.Intn(2) == 0 {
			l := rdf.NewIRI(labels[rng.Intn(len(labels))])
			s.Label = &l
		}
		return s
	}
	if depth <= 0 {
		return step()
	}
	switch rng.Intn(5) {
	case 0:
		return sparql.NRESeq{L: randomNRE(rng, depth-1), R: randomNRE(rng, depth-1)}
	case 1:
		return sparql.NREAlt{L: randomNRE(rng, depth-1), R: randomNRE(rng, depth-1)}
	case 2:
		return sparql.NREStar{P: randomNRE(rng, depth-1)}
	case 3:
		s := sparql.NREStep{Axis: sparql.Axis(1 + rng.Intn(3)), Test: randomNRE(rng, depth-1)}
		return s
	default:
		return step()
	}
}

func TestTranslateNRERandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	names := []string{"a", "b", "c", "p", "q"}
	for round := 0; round < 80; round++ {
		g := rdf.NewGraph()
		for i := 0; i < 2+rng.Intn(6); i++ {
			g.Add(rdf.T(
				names[rng.Intn(len(names))],
				names[rng.Intn(len(names))],
				names[rng.Intn(len(names))]))
		}
		e := randomNRE(rng, 2)
		want := sparql.EvalNRE(g, e)
		tr, err := TranslateNRE(e)
		if err != nil {
			t.Fatalf("round %d: translate %s: %v", round, e, err)
		}
		got, err := tr.Evaluate(g, triq.Options{})
		if err != nil {
			t.Fatalf("round %d: evaluate %s: %v", round, e, err)
		}
		if !got.Equal(want) {
			t.Fatalf("round %d: ⟦%s⟧ mismatch over\n%s\ndatalog: %v\ndirect:  %v",
				round, e, g, got.Sorted(), want.Sorted())
		}
	}
}
