package datalog

import (
	"fmt"
	"sort"
)

// Stratification is a function μ : sch(Π) → [0, ℓ] assigning a stratum to
// every predicate, such that for each rule ρ with head predicate p:
// μ(p) ≥ μ(p') for every p' in sch(body+(ρ)), and μ(p) > μ(p') for every
// p' in sch(body−(ρ)).
type Stratification struct {
	// Level maps each predicate of sch(Π) to its stratum.
	Level map[string]int
	// Max is ℓ, the highest stratum in use.
	Max int
}

// Stratify computes a stratification of ex(Π) (constraints are ignored, as in
// the paper: a Datalog^{∃,¬,⊥} program is stratified iff ex(Π) is). It
// returns an error when the program is not stratifiable, i.e. when there is a
// cycle through negation.
//
// The computed stratification is the minimal one: each predicate gets the
// least stratum consistent with the conditions.
func Stratify(p *Program) (*Stratification, error) {
	sch, err := p.Schema()
	if err != nil {
		return nil, fmt.Errorf("datalog: stratify: %w", err)
	}
	level := make(map[string]int, len(sch))
	for pred := range sch {
		level[pred] = 0
	}
	// Fixpoint iteration; a correct stratification needs at most |sch|
	// rounds, so exceeding |sch| levels proves a negative cycle.
	maxLevel := len(sch)
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			for _, h := range r.Head {
				hl := level[h.Pred]
				for _, a := range r.BodyPos {
					if level[a.Pred] > hl {
						hl = level[a.Pred]
					}
				}
				for _, a := range r.BodyNeg {
					if level[a.Pred]+1 > hl {
						hl = level[a.Pred] + 1
					}
				}
				if hl > level[h.Pred] {
					if hl > maxLevel {
						return nil, fmt.Errorf("datalog: program is not stratified: predicate %s participates in a cycle through negation", h.Pred)
					}
					level[h.Pred] = hl
					changed = true
				}
			}
		}
	}
	max := 0
	for _, l := range level {
		if l > max {
			max = l
		}
	}
	return &Stratification{Level: level, Max: max}, nil
}

// IsStratified reports whether the program admits a stratification.
func IsStratified(p *Program) bool {
	_, err := Stratify(p)
	return err == nil
}

// RuleStratum returns the stratum a rule must be evaluated at: the maximum
// stratum of its head predicates. For single-head rules this is μ(pred(head)).
func (s *Stratification) RuleStratum(r Rule) int {
	max := 0
	for _, h := range r.Head {
		if l := s.Level[h.Pred]; l > max {
			max = l
		}
	}
	return max
}

// Strata partitions the rules of Π into Π_0, …, Π_ℓ by the stratum of their
// head predicates. Multi-head rules whose heads fall into different strata
// are rejected; normalize with SingleHead first.
func (s *Stratification) Strata(p *Program) ([][]Rule, error) {
	out := make([][]Rule, s.Max+1)
	for _, r := range p.Rules {
		lv := -1
		for _, h := range r.Head {
			l := s.Level[h.Pred]
			if lv == -1 {
				lv = l
			} else if l != lv {
				return nil, fmt.Errorf("datalog: rule %v has head predicates in different strata; normalize with SingleHead first", r)
			}
		}
		out[lv] = append(out[lv], r)
	}
	return out, nil
}

// Ordered returns the predicates sorted by (stratum, name); useful for
// deterministic reporting.
func (s *Stratification) Ordered() []string {
	preds := make([]string, 0, len(s.Level))
	for p := range s.Level {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool {
		if s.Level[preds[i]] != s.Level[preds[j]] {
			return s.Level[preds[i]] < s.Level[preds[j]]
		}
		return preds[i] < preds[j]
	})
	return preds
}
