package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNegProgram builds random safe Datalog programs with negation over a
// small schema; some are stratifiable, some are not.
func randomNegProgram(rng *rand.Rand) *Program {
	x, y := V("X"), V("Y")
	atoms := []Atom{
		NewAtom("base", x),
		NewAtom("e", x, y),
		NewAtom("p", x),
		NewAtom("q", x),
		NewAtom("r", x),
	}
	heads := []Atom{NewAtom("p", x), NewAtom("q", x), NewAtom("r", x)}
	prog := &Program{}
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		body := []Atom{atoms[rng.Intn(2)]} // base(x) or e(x,y): safe anchor
		var neg []Atom
		if rng.Intn(2) == 0 {
			extra := atoms[2+rng.Intn(3)]
			if rng.Intn(2) == 0 {
				neg = append(neg, extra)
			} else {
				body = append(body, extra)
			}
		}
		prog.Add(Rule{BodyPos: body, BodyNeg: neg, Head: []Atom{heads[rng.Intn(len(heads))]}})
	}
	return prog
}

// Property: when Stratify succeeds, the returned level function satisfies
// the defining conditions of a stratification.
func TestPropertyStratificationValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomNegProgram(rng)
		strat, err := Stratify(prog)
		if err != nil {
			return true // rejection is fine; validity is only claimed on success
		}
		for _, r := range prog.Rules {
			for _, h := range r.Head {
				for _, a := range r.BodyPos {
					if strat.Level[h.Pred] < strat.Level[a.Pred] {
						t.Logf("positive condition violated in\n%s", prog)
						return false
					}
				}
				for _, a := range r.BodyNeg {
					if strat.Level[h.Pred] <= strat.Level[a.Pred] {
						t.Logf("negative condition violated in\n%s", prog)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: self-negation and 2-cycles through negation are always rejected.
func TestPropertyNegativeCyclesRejected(t *testing.T) {
	x := V("X")
	progs := []*Program{
		{Rules: []Rule{{
			BodyPos: []Atom{NewAtom("b", x)}, BodyNeg: []Atom{NewAtom("p", x)},
			Head: []Atom{NewAtom("p", x)},
		}}},
		{Rules: []Rule{
			{BodyPos: []Atom{NewAtom("b", x)}, BodyNeg: []Atom{NewAtom("p", x)}, Head: []Atom{NewAtom("q", x)}},
			{BodyPos: []Atom{NewAtom("q", x)}, Head: []Atom{NewAtom("r", x)}},
			{BodyPos: []Atom{NewAtom("r", x)}, Head: []Atom{NewAtom("p", x)}},
		}},
	}
	for i, p := range progs {
		if _, err := Stratify(p); err == nil {
			t.Errorf("program %d with a negative cycle accepted", i)
		}
	}
}

// Property: the positive part of any program is trivially stratified, and
// Analyze+Classify never panic and never classify a variable as both
// harmless and harmful.
func TestPropertyClassificationPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomNegProgram(rng)
		an := Analyze(prog.Positive())
		for _, r := range prog.Rules {
			vc := an.Classify(r)
			for v := range vc.Harmless {
				if vc.Harmful[v] {
					return false
				}
			}
			for v := range vc.Dangerous {
				if !vc.Harmful[v] {
					return false
				}
			}
			// Every positive-body variable is classified.
			for _, v := range VarsOf(r.BodyPos) {
				if !vc.Harmless[v] && !vc.Harmful[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
