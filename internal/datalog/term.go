// Package datalog implements the rule language Datalog^{∃,¬s,⊥} of Section 3.2
// of "Expressive Languages for Querying the Semantic Web" (Arenas, Gottlob,
// Pieris; TODS 2018): terms, atoms, rules with existential quantification in
// rule heads, stratified negation, and ⊥ constraints, together with the
// syntactic machinery the paper builds on top of it — stratification,
// affected positions, the harmless/harmful/dangerous variable classification
// (Section 4.1), the guardedness lattice (guarded, weakly-guarded,
// frontier-guarded, weakly-frontier-guarded, nearly-frontier-guarded, warded,
// warded with minimal interaction), and the rule normalizations of
// Section 6.3.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates constants (U), labeled nulls (B), and variables (V).
type TermKind uint8

const (
	// Const is a constant from U (a URI in the RDF reading).
	Const TermKind = iota
	// Null is a labeled null from B (a blank node in the RDF reading).
	Null
	// Var is a variable from V; variable names conventionally start with '?'.
	Var
)

func (k TermKind) String() string {
	switch k {
	case Const:
		return "Const"
	case Null:
		return "Null"
	case Var:
		return "Var"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a constant, labeled null, or variable. Terms are value types and
// compare with ==.
type Term struct {
	Kind TermKind
	Name string
}

// C returns a constant term.
func C(name string) Term { return Term{Kind: Const, Name: name} }

// N returns a labeled-null term.
func N(name string) Term { return Term{Kind: Null, Name: name} }

// V returns a variable term; the conventional "?" prefix is added if absent
// so that V("X") and V("?X") denote the same variable.
func V(name string) Term {
	if !strings.HasPrefix(name, "?") {
		name = "?" + name
	}
	return Term{Kind: Var, Name: name}
}

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return t.Kind == Const }

// IsNull reports whether the term is a labeled null.
func (t Term) IsNull() bool { return t.Kind == Null }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// String renders the term: variables as ?X, nulls as _:n, constants bare or
// quoted when they contain characters outside the bare-name alphabet.
func (t Term) String() string {
	switch t.Kind {
	case Var:
		return t.Name
	case Null:
		return "_:" + t.Name
	default:
		if needsQuoting(t.Name) {
			return `"` + strings.ReplaceAll(t.Name, `"`, `\"`) + `"`
		}
		return t.Name
	}
}

// Compare orders terms by (kind, name).
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	return strings.Compare(t.Name, u.Name)
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '_', c == ':', c == '-', c == '.', c == '\'', c == '/',
			c == '#', c == '*':
		default:
			// Allow multi-byte runes (e.g. ∃, ⋆) unquoted.
			if c < 0x80 {
				return true
			}
		}
	}
	return false
}

// Atom is a predicate applied to terms: p(t1, …, tn).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Vars returns the set of variables occurring in the atom, in first-occurrence
// order.
func (a Atom) Vars() []Term {
	var out []Term
	seen := make(map[Term]struct{})
	for _, t := range a.Args {
		if t.IsVar() {
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				out = append(out, t)
			}
		}
	}
	return out
}

// HasVar reports whether the variable v occurs in the atom.
func (a Atom) HasVar(v Term) bool {
	for _, t := range a.Args {
		if t == v {
			return true
		}
	}
	return false
}

// Terms returns dom(a): the set of all terms of the atom, in first-occurrence
// order.
func (a Atom) Terms() []Term {
	var out []Term
	seen := make(map[Term]struct{})
	for _, t := range a.Args {
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out
}

// IsGround reports whether the atom contains no variables (nulls allowed).
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// IsConstantGround reports whether every argument is a constant (no nulls,
// no variables); this is the dom(a) ⊂ U condition of Π(D)↓.
func (a Atom) IsConstantGround() bool {
	for _, t := range a.Args {
		if !t.IsConst() {
			return false
		}
	}
	return true
}

// Equal reports whether two atoms are identical.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding usable as a map key.
func (a Atom) Key() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(byte('0' + t.Kind))
		b.WriteString(t.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the atom in the surface syntax.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Compare orders atoms by predicate, arity, then argument terms.
func (a Atom) Compare(b Atom) int {
	if c := strings.Compare(a.Pred, b.Pred); c != 0 {
		return c
	}
	if len(a.Args) != len(b.Args) {
		if len(a.Args) < len(b.Args) {
			return -1
		}
		return 1
	}
	for i := range a.Args {
		if c := a.Args[i].Compare(b.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Substitute applies the substitution to the atom's arguments, leaving
// unmapped terms unchanged.
func (a Atom) Substitute(sub map[Term]Term) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		if u, ok := sub[t]; ok {
			out.Args[i] = u
		} else {
			out.Args[i] = t
		}
	}
	return out
}

// VarsOf returns the set of variables occurring in a list of atoms, in
// first-occurrence order (the paper's var(X) for sets of atoms).
func VarsOf(atoms []Atom) []Term {
	var out []Term
	seen := make(map[Term]struct{})
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := seen[t]; !ok {
					seen[t] = struct{}{}
					out = append(out, t)
				}
			}
		}
	}
	return out
}

// SortAtoms sorts atoms in place into the canonical order.
func SortAtoms(atoms []Atom) {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].Compare(atoms[j]) < 0 })
}

// Position identifies the i-th attribute p[i] of a predicate p. Positions are
// 1-based as in the paper.
type Position struct {
	Pred string
	Idx  int
}

// String renders the position as p[i].
func (p Position) String() string { return fmt.Sprintf("%s[%d]", p.Pred, p.Idx) }
