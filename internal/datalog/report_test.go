package datalog

import (
	"strings"
	"testing"
)

func TestReportContents(t *testing.T) {
	p := MustParse(`
		a(?X) -> exists ?Z e(?X, ?Z).
		e(?X, ?Y), e(?Y, ?Z) -> e(?X, ?Z).
		e(?X, ?Y), not bad(?X, c0) -> good(?X).
	`)
	out := Report(p)
	for _, want := range []string{
		"3 rules", "e/2", "idb", "edb", "affected positions: e[2]",
		"ward:", "✓ warded", "✗ guarded", "strata",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Report missing %q:\n%s", want, out)
		}
	}
	// An unwarded program must say so.
	bad := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W) -> h(?X).
	`)
	if !strings.Contains(Report(bad), "NO WARD") {
		t.Error("Report should flag the missing ward")
	}
	// Plain Datalog reports no affected positions.
	dl := MustParse(`e(?X, ?Y) -> tc(?X, ?Y).`)
	if !strings.Contains(Report(dl), "none (plain Datalog behaviour)") {
		t.Error("Report should note the Datalog case")
	}
	// Unstratified programs degrade gracefully.
	uns := MustParse(`b(?X), not p(?X) -> q(?X). b(?X), not q(?X) -> p(?X).`)
	if !strings.Contains(Report(uns), "not stratified") {
		t.Errorf("Report should surface the stratification error:\n%s", Report(uns))
	}
}

func TestDependencyDOT(t *testing.T) {
	p := MustParse(`
		a(?X) -> exists ?Z e(?X, ?Z).
		e(?X, ?Y), not bad(?X) -> good(?X).
	`)
	dot := DependencyDOT(p)
	for _, want := range []string{
		"digraph dependencies",
		`"a" -> "e" [penwidth=2];`,
		`"bad" -> "good" [style=dashed`,
		`"e" [peripheries=2];`,
		`"e" -> "good";`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
