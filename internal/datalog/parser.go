package datalog

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse reads a program in the surface syntax used throughout this
// repository, which mirrors the paper's notation:
//
//	% comment                                   (also //)
//	triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).
//	triple(?X, is_coauthor_of, ?Y) ->
//	    exists ?Z triple(?X, is_author_of, ?Z), triple(?Y, is_author_of, ?Z).
//	less0(?X, ?Y), not not_min(?X) -> zero0(?X).
//	type(?X,?Y), type(?X,?Z), disj(?Y,?Z) -> false.
//
// Variables start with '?'. Constants are bare names (rdf:type, dbUllman,
// ∃eats) or double-quoted strings. Negation is written not/!/¬, implication
// ->/→, existential quantification exists/∃ followed by variables, and ⊥ may
// be written false/bottom/⊥. Every statement ends with a dot. Existential
// variables may be declared explicitly; any head variable absent from the
// body is treated as existentially quantified either way.
func Parse(input string) (*Program, error) {
	p := &parser{lex: newLexer(input)}
	prog := &Program{}
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokEOF {
			break
		}
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses the program and panics on error; for tests and fixed
// embedded programs.
func MustParse(input string) *Program {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseQuery parses a program and pairs it with an output predicate.
func ParseQuery(input, output string) (Query, error) {
	prog, err := Parse(input)
	if err != nil {
		return Query{}, err
	}
	q := NewQuery(prog, output)
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustParseQuery is ParseQuery, panicking on error.
func MustParseQuery(input, output string) Query {
	q, err := ParseQuery(input, output)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseAtom parses a single atom such as "triple(?X, rdf:type, owl:Class)".
func ParseAtom(input string) (Atom, error) {
	p := &parser{lex: newLexer(input)}
	a, err := p.atom()
	if err != nil {
		return Atom{}, err
	}
	tok, err := p.lex.peek()
	if err != nil {
		return Atom{}, err
	}
	if tok.kind != tokEOF {
		return Atom{}, fmt.Errorf("datalog: trailing input %q after atom", tok.text)
	}
	return a, nil
}

// MustParseAtom is ParseAtom, panicking on error.
func MustParseAtom(input string) Atom {
	a, err := ParseAtom(input)
	if err != nil {
		panic(err)
	}
	return a
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrow
	tokNot
)

type token struct {
	kind tokKind
	text string
	pos  int
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	in     string
	pos    int
	line   int
	peeked *token
}

func newLexer(in string) *lexer { return &lexer{in: in, line: 1} }

func (l *lexer) peek() (token, error) {
	if l.peeked == nil {
		t, err := l.lexOne()
		if err != nil {
			return token{}, err
		}
		l.peeked = &t
	}
	return *l.peeked, nil
}

func (l *lexer) next() (token, error) {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t, nil
	}
	return l.lexOne()
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("datalog: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) lexOne() (token, error) {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '/':
			l.skipLine()
		default:
			goto lex
		}
	}
	return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
lex:
	start, line := l.pos, l.line
	c := l.in[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{tokLParen, "(", start, line}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start, line}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start, line}, nil
	case '.':
		l.pos++
		return token{tokDot, ".", start, line}, nil
	case '!':
		l.pos++
		return token{tokNot, "!", start, line}, nil
	case '-':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '>' {
			l.pos += 2
			return token{tokArrow, "->", start, line}, nil
		}
		return token{}, l.errorf("unexpected '-' (did you mean '->'?)")
	case '?':
		l.pos++
		name := l.bareName()
		if name == "" {
			return token{}, l.errorf("empty variable name after '?'")
		}
		return token{tokVar, "?" + name, start, line}, nil
	case '"':
		s, err := l.quoted()
		if err != nil {
			return token{}, err
		}
		return token{tokString, s, start, line}, nil
	}
	// Multi-byte operators and bare names.
	r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
	switch r {
	case '→':
		l.pos += sz
		return token{tokArrow, "→", start, line}, nil
	case '¬':
		l.pos += sz
		return token{tokNot, "¬", start, line}, nil
	}
	name := l.bareName()
	if name == "" {
		return token{}, l.errorf("unexpected character %q", r)
	}
	return token{tokIdent, name, start, line}, nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.in) && l.in[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) bareName() string {
	start := l.pos
	for l.pos < len(l.in) {
		r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
		if !isBareRune(r) {
			break
		}
		// '∃' begins a quantifier token, never continues a name, but is
		// allowed mid-name (e.g. the paper's class names ∃p, ∃eats start
		// with it: there it *is* the first rune of the name).
		l.pos += sz
	}
	return l.in[start:l.pos]
}

func isBareRune(r rune) bool {
	switch r {
	case '_', ':', '-', '\'', '/', '#', '*', '⋆', '⊥':
		return true
	}
	if r == '∃' || r == '⁻' {
		return true
	}
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) quoted() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch c {
		case '"':
			l.pos++
			return b.String(), nil
		case '\\':
			l.pos++
			if l.pos >= len(l.in) {
				return "", l.errorf("dangling escape in string")
			}
			switch l.in[l.pos] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", l.errorf("unknown escape \\%c", l.in[l.pos])
			}
			l.pos++
		case '\n':
			return "", l.errorf("newline in string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return "", l.errorf("unterminated string")
}

type parser struct {
	lex *lexer
}

func (p *parser) statement(prog *Program) error {
	var bodyPos, bodyNeg []Atom
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return err
		}
		neg := false
		if tok.kind == tokNot || (tok.kind == tokIdent && tok.text == "not") {
			// "not" can also be a predicate name; only treat it as negation
			// when not followed by '('.
			if tok.kind == tokIdent {
				save := *p.lex
				if _, err := p.lex.next(); err != nil {
					return err
				}
				nxt, err := p.lex.peek()
				if err != nil {
					return err
				}
				if nxt.kind == tokLParen {
					*p.lex = save
				} else {
					neg = true
				}
			} else {
				if _, err := p.lex.next(); err != nil {
					return err
				}
				neg = true
			}
		}
		a, err := p.atom()
		if err != nil {
			return err
		}
		if neg {
			bodyNeg = append(bodyNeg, a)
		} else {
			bodyPos = append(bodyPos, a)
		}
		tok, err = p.lex.next()
		if err != nil {
			return err
		}
		switch tok.kind {
		case tokComma:
			continue
		case tokArrow:
			goto head
		default:
			return fmt.Errorf("datalog: line %d: expected ',' or '->' after body atom, got %v", tok.line, tok)
		}
	}
head:
	tok, err := p.lex.peek()
	if err != nil {
		return err
	}
	// Constraint head: false / bottom / ⊥.
	if tok.kind == tokIdent && (tok.text == "false" || tok.text == "bottom" || tok.text == "⊥") {
		if _, err := p.lex.next(); err != nil {
			return err
		}
		if err := p.expect(tokDot); err != nil {
			return err
		}
		if len(bodyNeg) > 0 {
			return fmt.Errorf("datalog: line %d: constraints may not contain negated atoms", tok.line)
		}
		prog.AddConstraint(Constraint{Body: bodyPos})
		return nil
	}
	// Optional explicit existential quantifier prefix.
	declared := make(map[Term]bool)
	if tok.kind == tokIdent && (tok.text == "exists" || tok.text == "∃") {
		if _, err := p.lex.next(); err != nil {
			return err
		}
		for {
			tok, err := p.lex.peek()
			if err != nil {
				return err
			}
			// Accept both "exists ?Y1 ?Y2" and the paper's repeated form
			// "∃?Y1 ∃?Y2".
			if tok.kind == tokIdent && (tok.text == "exists" || tok.text == "∃") {
				if _, err := p.lex.next(); err != nil {
					return err
				}
				continue
			}
			if tok.kind != tokVar {
				break
			}
			if _, err := p.lex.next(); err != nil {
				return err
			}
			declared[Term{Kind: Var, Name: tok.text}] = true
		}
		if len(declared) == 0 {
			return fmt.Errorf("datalog: line %d: 'exists' requires at least one variable", tok.line)
		}
	}
	var head []Atom
	for {
		a, err := p.atom()
		if err != nil {
			return err
		}
		head = append(head, a)
		tok, err := p.lex.next()
		if err != nil {
			return err
		}
		if tok.kind == tokComma {
			continue
		}
		if tok.kind == tokDot {
			break
		}
		return fmt.Errorf("datalog: line %d: expected ',' or '.' after head atom, got %v", tok.line, tok)
	}
	r := Rule{BodyPos: bodyPos, BodyNeg: bodyNeg, Head: head}
	// Sanity: declared existential variables must not occur in the body, and
	// every declared variable must be used in the head.
	bodyVars := make(map[Term]bool)
	for _, v := range r.BodyVars() {
		bodyVars[v] = true
	}
	for v := range declared {
		if bodyVars[v] {
			return fmt.Errorf("datalog: existential variable %v also occurs in the body of rule %v", v, r)
		}
	}
	headVars := make(map[Term]bool)
	for _, v := range r.HeadVars() {
		headVars[v] = true
	}
	for v := range declared {
		if !headVars[v] {
			return fmt.Errorf("datalog: declared existential variable %v is unused in the head of rule %v", v, r)
		}
	}
	prog.Add(r)
	return nil
}

func (p *parser) atom() (Atom, error) {
	tok, err := p.lex.next()
	if err != nil {
		return Atom{}, err
	}
	if tok.kind != tokIdent && tok.kind != tokString {
		return Atom{}, fmt.Errorf("datalog: line %d: expected predicate name, got %v", tok.line, tok)
	}
	pred := tok.text
	if err := p.expect(tokLParen); err != nil {
		return Atom{}, fmt.Errorf("datalog: line %d: after predicate %s: %w", tok.line, pred, err)
	}
	var args []Term
	nxt, err := p.lex.peek()
	if err != nil {
		return Atom{}, err
	}
	if nxt.kind == tokRParen {
		_, _ = p.lex.next()
		return Atom{Pred: pred, Args: args}, nil
	}
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		tok, err := p.lex.next()
		if err != nil {
			return Atom{}, err
		}
		if tok.kind == tokComma {
			continue
		}
		if tok.kind == tokRParen {
			return Atom{Pred: pred, Args: args}, nil
		}
		return Atom{}, fmt.Errorf("datalog: line %d: expected ',' or ')' in argument list, got %v", tok.line, tok)
	}
}

func (p *parser) term() (Term, error) {
	tok, err := p.lex.next()
	if err != nil {
		return Term{}, err
	}
	switch tok.kind {
	case tokVar:
		return Term{Kind: Var, Name: tok.text}, nil
	case tokIdent, tokString:
		return C(tok.text), nil
	default:
		return Term{}, fmt.Errorf("datalog: line %d: expected term, got %v", tok.line, tok)
	}
}

func (p *parser) expect(k tokKind) error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	if tok.kind != k {
		return fmt.Errorf("datalog: line %d: unexpected token %v", tok.line, tok)
	}
	return nil
}
