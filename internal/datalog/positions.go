package datalog

import "sort"

// Analysis holds the affected-position analysis of Section 4.1 for a program.
// All classifications are computed over ex(Π)+ — the program obtained by
// dropping negative atoms and constraints — exactly as the paper prescribes
// for Datalog^{∃,¬s,⊥} programs.
type Analysis struct {
	affected map[Position]bool
	schema   map[string]int
}

// Analyze computes affected(Π) by the fixpoint of Section 4.1:
//
//  1. positions where an existentially quantified variable occurs in some
//     rule head are affected;
//  2. if a variable occurs in a rule's positive body only at affected
//     positions and also occurs in the head at position π, then π is affected.
func Analyze(p *Program) *Analysis {
	sch, _ := p.Schema()
	an := &Analysis{affected: make(map[Position]bool), schema: sch}

	// Seed: existential positions in heads.
	for _, r := range p.Rules {
		ex := make(map[Term]bool)
		for _, v := range r.ExistentialVars() {
			ex[v] = true
		}
		for _, h := range r.Head {
			for i, t := range h.Args {
				if t.IsVar() && ex[t] {
					an.affected[Position{h.Pred, i + 1}] = true
				}
			}
		}
	}

	// Propagate: a variable whose positive-body occurrences are all affected
	// contaminates its head positions.
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			for _, v := range VarsOf(r.BodyPos) {
				if !an.allBodyOccurrencesAffected(r, v) {
					continue
				}
				for _, h := range r.Head {
					for i, t := range h.Args {
						pos := Position{h.Pred, i + 1}
						if t == v && !an.affected[pos] {
							an.affected[pos] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return an
}

func (an *Analysis) allBodyOccurrencesAffected(r Rule, v Term) bool {
	found := false
	for _, a := range r.BodyPos {
		for i, t := range a.Args {
			if t == v {
				found = true
				if !an.affected[Position{a.Pred, i + 1}] {
					return false
				}
			}
		}
	}
	return found
}

// IsAffected reports whether the position belongs to affected(Π).
func (an *Analysis) IsAffected(pos Position) bool { return an.affected[pos] }

// AffectedPositions returns affected(Π), sorted.
func (an *Analysis) AffectedPositions() []Position {
	out := make([]Position, 0, len(an.affected))
	for p := range an.affected {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Idx < out[j].Idx
	})
	return out
}

// NonAffectedPositions returns pos(Π) \ affected(Π), sorted.
func (an *Analysis) NonAffectedPositions() []Position {
	var out []Position
	preds := make([]string, 0, len(an.schema))
	for p := range an.schema {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		for i := 1; i <= an.schema[p]; i++ {
			if !an.affected[Position{p, i}] {
				out = append(out, Position{p, i})
			}
		}
	}
	return out
}

// VarClass classifies the body variables of one rule with respect to the
// analyzed program (Section 4.1).
type VarClass struct {
	Harmless  map[Term]bool
	Harmful   map[Term]bool // includes dangerous variables
	Dangerous map[Term]bool
}

// Classify partitions var(body(ρ)) into Π-harmless and Π-harmful variables
// and identifies the Π-dangerous ones (harmful and propagated to the head).
// Occurrences in negative body atoms are not considered, matching the
// ex(Π)+ convention (and they could never make a variable harmless anyway,
// because classifications are defined on the positive program).
func (an *Analysis) Classify(r Rule) VarClass {
	vc := VarClass{
		Harmless:  make(map[Term]bool),
		Harmful:   make(map[Term]bool),
		Dangerous: make(map[Term]bool),
	}
	headVars := make(map[Term]bool)
	for _, v := range r.HeadVars() {
		headVars[v] = true
	}
	for _, v := range VarsOf(r.BodyPos) {
		if an.hasNonAffectedOccurrence(r, v) {
			vc.Harmless[v] = true
			continue
		}
		vc.Harmful[v] = true
		if headVars[v] {
			vc.Dangerous[v] = true
		}
	}
	return vc
}

func (an *Analysis) hasNonAffectedOccurrence(r Rule, v Term) bool {
	for _, a := range r.BodyPos {
		for i, t := range a.Args {
			if t == v && !an.affected[Position{a.Pred, i + 1}] {
				return true
			}
		}
	}
	return false
}

// sortedVars renders a variable set deterministically (used in error
// messages and tests).
func sortedVars(m map[Term]bool) []Term {
	out := make([]Term, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
