package datalog

import "testing"

func TestSingleHead(t *testing.T) {
	p := MustParse(`
		triple(?X, is_coauthor_of, ?Y) ->
			exists ?Z triple2(?X, is_author_of, ?Z), triple2(?Y, is_author_of, ?Z).
	`)
	q := SingleHead(p)
	if len(q.Rules) != 3 {
		t.Fatalf("SingleHead rules = %d, want 3:\n%s", len(q.Rules), q)
	}
	for _, r := range q.Rules {
		if len(r.Head) != 1 {
			t.Errorf("rule %v still multi-head", r)
		}
	}
	// The aux rule carries frontier + existential variables.
	aux := q.Rules[0]
	if len(aux.Head[0].Args) != 3 { // ?X, ?Y, ?Z
		t.Errorf("aux head = %v, want 3 args", aux.Head[0])
	}
	// Single-head rules pass through untouched.
	simple := MustParse(`p(?X) -> q(?X).`)
	if out := SingleHead(simple); len(out.Rules) != 1 || out.Rules[0].Head[0].Pred != "q" {
		t.Errorf("single-head rule modified: %v", out)
	}
}

func TestSingleHeadPreservesConstraints(t *testing.T) {
	p := MustParse(`
		p(?X) -> q(?X), r(?X).
		q(?X), r(?X) -> false.
	`)
	q := SingleHead(p)
	if len(q.Constraints) != 1 {
		t.Errorf("constraints lost: %v", q.Constraints)
	}
}

func TestSingleExistential(t *testing.T) {
	p := MustParse(`b(?X, ?Y) -> exists ?Z1 exists ?Z2 h(?X, ?Z1, ?Z2).`)
	q := SingleExistential(p)
	if len(q.Rules) != 3 {
		t.Fatalf("SingleExistential rules = %d, want 3:\n%s", len(q.Rules), q)
	}
	for _, r := range q.Rules {
		ex := r.ExistentialVars()
		if len(ex) > 1 {
			t.Errorf("rule %v still has %d existential variables", r, len(ex))
		}
		if len(ex) == 1 && countVar(r.Head[0], ex[0]) > 1 {
			t.Errorf("rule %v repeats its existential variable", r)
		}
	}
	// A repeated existential occurrence must also be normalized.
	rep := MustParse(`b(?X) -> exists ?Z h(?Z, ?Z).`)
	qq := SingleExistential(rep)
	if len(qq.Rules) != 2 {
		t.Fatalf("repeated-occurrence rules = %d, want 2:\n%s", len(qq.Rules), qq)
	}
	// Rules with ≤1 existential occurrence pass through.
	ok := MustParse(`b(?X) -> exists ?Z h(?X, ?Z).`)
	if out := SingleExistential(ok); len(out.Rules) != 1 {
		t.Errorf("simple existential rule modified:\n%s", out)
	}
}

func TestIsHeadGroundedAndSemiBodyGrounded(t *testing.T) {
	p := MustParse(`
		a(?X) -> exists ?Z e(?X, ?Z).
		e(?X, ?Y), e(?Y, ?Z) -> e(?X, ?Z).
		a(?X), a(?Y) -> f(?X, ?Y).
	`)
	an := Analyze(p)
	// Rule 3 over harmless variables is head-grounded.
	if !IsHeadGrounded(an, p.Rules[2]) {
		t.Error("all-harmless rule should be head-grounded")
	}
	// Rule 2's head carries the harmful ?Z → not head-grounded…
	if IsHeadGrounded(an, p.Rules[1]) {
		t.Error("rule with harmful head variable should not be head-grounded")
	}
	// …but only e(?Y,?Z) holds a harmful variable (?Y is anchored at the
	// non-affected e[1]), so the rule is semi-body-grounded.
	if !IsSemiBodyGrounded(an, p.Rules[1]) {
		t.Error("existential TC rule should be semi-body-grounded")
	}
	if !IsSemiBodyGrounded(an, p.Rules[0]) {
		t.Error("single-atom body is trivially semi-body-grounded")
	}
	// A rule with two genuinely harmful body atoms is not semi-body-grounded.
	q := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?X, ?W), a(?X) -> h(?X, ?Y).
	`)
	an2 := Analyze(q)
	if IsSemiBodyGrounded(an2, q.Rules[2]) {
		t.Error("two harmful body atoms should not be semi-body-grounded")
	}
	if IsHeadGrounded(an2, q.Rules[2]) {
		t.Error("harmful ?Y in the head should not be head-grounded")
	}
}

func TestHeadGroundedSplit(t *testing.T) {
	// The last rule is neither head-grounded (harmful ?Y in the head) nor
	// semi-body-grounded (two body atoms with harmful variables), so it must
	// be split into a head-grounded collector and a semi-body-grounded rule.
	p := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?X, ?W), a(?X) -> h(?X, ?Y).
	`)
	q, err := HeadGroundedSplit(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rules) != 4 {
		t.Fatalf("split rules = %d, want 4:\n%s", len(q.Rules), q)
	}
	an := Analyze(q)
	for _, r := range q.Rules {
		if !IsHeadGrounded(an, r) && !IsSemiBodyGrounded(an, r) {
			t.Errorf("rule %v is neither head-grounded nor semi-body-grounded", r)
		}
	}
	// The split program must still be warded.
	if err := CheckWarded(q); err != nil {
		t.Errorf("split program not warded: %v", err)
	}
}

func TestHeadGroundedSplitRejectsNegation(t *testing.T) {
	p := MustParse(`a(?X), not b(?X) -> c(?X).`)
	if _, err := HeadGroundedSplit(p); err == nil {
		t.Error("negation should be rejected")
	}
}

func TestHeadGroundedSplitRejectsUnwarded(t *testing.T) {
	p := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W) -> h(?X).
	`)
	if _, err := HeadGroundedSplit(p); err == nil {
		t.Error("unwarded program should be rejected")
	}
}

func TestNormalizeForProofTree(t *testing.T) {
	p := MustParse(example610Src)
	q, err := NormalizeForProofTree(p)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(q)
	for _, r := range q.Rules {
		if len(r.Head) != 1 {
			t.Errorf("rule %v not single-head", r)
		}
		if len(r.ExistentialVars()) > 1 {
			t.Errorf("rule %v has several existentials", r)
		}
		if !IsHeadGrounded(an, r) && !IsSemiBodyGrounded(an, r) {
			t.Errorf("rule %v not normalized", r)
		}
	}
}

func TestReduceConstraints(t *testing.T) {
	q := MustParseQuery(`
		p(?X) -> out(?X).
		p(?X), bad(?X) -> false.
	`, "out")
	r := ReduceConstraints(q)
	if len(r.Program.Constraints) != 0 {
		t.Error("constraints should be gone")
	}
	if len(r.Program.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(r.Program.Rules))
	}
	star := r.Program.Rules[1].Head[0]
	if star.Pred != "out" || star.Args[0] != C(StarConstant) {
		t.Errorf("⋆-rule head = %v", star)
	}
	// Constraint-free queries pass through unchanged.
	noc := MustParseQuery(`p(?X) -> out(?X).`, "out")
	if got := ReduceConstraints(noc); got.Program != noc.Program {
		t.Error("constraint-free query should be returned as-is")
	}
}

func TestStarTuple(t *testing.T) {
	st := StarTuple(3)
	if len(st) != 3 || st[0] != C(StarConstant) {
		t.Errorf("StarTuple = %v", st)
	}
	if len(StarTuple(0)) != 0 {
		t.Error("StarTuple(0) should be empty")
	}
}

func TestFreshPredicatesAvoidClashes(t *testing.T) {
	p := MustParse(`p(?X) -> exists ?Y1 exists ?Y2 "p#0"(?X, ?Y1, ?Y2).`)
	q := SingleExistential(p)
	sch, err := q.Schema()
	if err != nil {
		t.Fatal(err)
	}
	// The normalizer must have skipped the occupied name p#0.
	count := 0
	for pred := range sch {
		if pred == "p#0" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("schema = %v", sch)
	}
	if _, ok := sch["p#1"]; !ok {
		t.Errorf("expected fresh predicate p#1 in %v", sch)
	}
}
