package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders a human-readable analysis of a program: its schema, the
// stratification, the affected positions (Section 4.1), the per-rule
// variable classification with wards, and which of the paper's dialects the
// program belongs to. Intended for the CLI's -analyze mode and for debugging
// wardedness violations.
func Report(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d rules, %d constraints\n", len(p.Rules), len(p.Constraints))

	sch, err := p.Schema()
	if err != nil {
		fmt.Fprintf(&b, "schema error: %v\n", err)
		return b.String()
	}
	preds := make([]string, 0, len(sch))
	for pred := range sch {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	idb := p.IDBPredicates()

	strat, stratErr := Stratify(p)
	b.WriteString("\nschema:\n")
	for _, pred := range preds {
		kind := "edb"
		if idb[pred] {
			kind = "idb"
		}
		if stratErr == nil {
			fmt.Fprintf(&b, "  %s/%d  %s  stratum %d\n", pred, sch[pred], kind, strat.Level[pred])
		} else {
			fmt.Fprintf(&b, "  %s/%d  %s\n", pred, sch[pred], kind)
		}
	}
	if stratErr != nil {
		fmt.Fprintf(&b, "stratification: %v\n", stratErr)
	} else {
		fmt.Fprintf(&b, "stratification: %d strata\n", strat.Max+1)
	}

	pos := p.Positive()
	an := Analyze(pos)
	b.WriteString("\naffected positions: ")
	aff := an.AffectedPositions()
	if len(aff) == 0 {
		b.WriteString("none (plain Datalog behaviour)\n")
	} else {
		parts := make([]string, len(aff))
		for i, pp := range aff {
			parts[i] = pp.String()
		}
		b.WriteString(strings.Join(parts, ", ") + "\n")
	}

	b.WriteString("\nrules:\n")
	for i, r := range pos.Rules {
		vc := an.Classify(r)
		fmt.Fprintf(&b, "  ρ%d: %s\n", i+1, p.Rules[i])
		if len(vc.Harmful) == 0 {
			b.WriteString("      all variables harmless\n")
			continue
		}
		fmt.Fprintf(&b, "      harmless %v  harmful %v  dangerous %v\n",
			termNames(sortedVars(vc.Harmless)), termNames(sortedVars(vc.Harmful)),
			termNames(sortedVars(vc.Dangerous)))
		if len(vc.Dangerous) > 0 {
			if ward, ok := FindWard(an, r); ok {
				fmt.Fprintf(&b, "      ward: %s\n", ward)
			} else {
				b.WriteString("      NO WARD (rule breaks wardedness)\n")
			}
		}
	}

	b.WriteString("\ndialects:\n")
	for _, d := range []Dialect{Guarded, WeaklyGuarded, FrontierGuarded,
		WeaklyFrontierGuarded, NearlyFrontierGuarded, Warded, TriQLite,
		WardedMinimalInteraction} {
		if err := CheckDialect(p, d); err == nil {
			fmt.Fprintf(&b, "  ✓ %s\n", d)
		} else {
			fmt.Fprintf(&b, "  ✗ %s\n", d)
		}
	}
	return b.String()
}

func termNames(ts []Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// DependencyDOT renders the predicate dependency graph of the program in
// Graphviz DOT: solid edges for positive dependencies, dashed for negative,
// bold for rules that invent nulls, double circles for predicates with
// affected positions.
func DependencyDOT(p *Program) string {
	var b strings.Builder
	b.WriteString("digraph dependencies {\n  rankdir=BT;\n  node [shape=ellipse];\n")
	an := Analyze(p.Positive())
	sch, _ := p.Schema()
	preds := make([]string, 0, len(sch))
	for pred := range sch {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		affected := false
		for i := 1; i <= sch[pred]; i++ {
			if an.IsAffected(Position{pred, i}) {
				affected = true
				break
			}
		}
		shape := ""
		if affected {
			shape = " [peripheries=2]"
		}
		fmt.Fprintf(&b, "  %q%s;\n", pred, shape)
	}
	type edge struct {
		from, to string
		neg, ex  bool
	}
	seen := make(map[edge]bool)
	for _, r := range p.Rules {
		ex := r.HasExistential()
		for _, h := range r.Head {
			for _, a := range r.BodyPos {
				seen[edge{a.Pred, h.Pred, false, ex}] = true
			}
			for _, a := range r.BodyNeg {
				seen[edge{a.Pred, h.Pred, true, ex}] = true
			}
		}
	}
	edges := make([]edge, 0, len(seen))
	for e := range seen {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return !edges[i].neg && edges[j].neg
	})
	for _, e := range edges {
		var attrs []string
		if e.neg {
			attrs = append(attrs, "style=dashed", `label="¬"`)
		}
		if e.ex {
			attrs = append(attrs, "penwidth=2")
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.from, e.to, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", e.from, e.to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
