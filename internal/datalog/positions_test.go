package datalog

import "testing"

// example41 is the program of Example 4.1 in the paper.
func example41() *Program {
	return MustParse(`
		p(?X, ?Y), s(?Y, ?Z) -> exists ?W t(?Y, ?X, ?W).
		t(?X, ?Y, ?Z) -> exists ?W p(?W, ?Z).
		t(?X, ?Y, ?Z) -> s(?X, ?Y).
	`)
}

func TestAffectedPositionsExample41(t *testing.T) {
	an := Analyze(example41())
	wantAffected := []Position{{"p", 1}, {"p", 2}, {"s", 2}, {"t", 2}, {"t", 3}}
	wantNon := []Position{{"s", 1}, {"t", 1}}
	for _, pos := range wantAffected {
		if !an.IsAffected(pos) {
			t.Errorf("%v should be affected (Example 4.1)", pos)
		}
	}
	for _, pos := range wantNon {
		if an.IsAffected(pos) {
			t.Errorf("%v should not be affected (Example 4.1)", pos)
		}
	}
	if got := len(an.AffectedPositions()); got != len(wantAffected) {
		t.Errorf("affected count = %d, want %d: %v", got, len(wantAffected), an.AffectedPositions())
	}
	if got := len(an.NonAffectedPositions()); got != len(wantNon) {
		t.Errorf("non-affected count = %d, want %d: %v", got, len(wantNon), an.NonAffectedPositions())
	}
}

func TestClassifyExample41(t *testing.T) {
	p := example41()
	an := Analyze(p)
	// ρ1 = p(?X,?Y), s(?Y,?Z) → ∃?W t(?Y,?X,?W):
	// ?X occurs only at affected p[1] → harmful, and in the head → dangerous;
	// ?Y occurs at non-affected s[1] → harmless; ?Z occurs at affected s[2]
	// → harmful but not in the head.
	vc := an.Classify(p.Rules[0])
	if !vc.Dangerous[V("X")] || len(vc.Dangerous) != 1 {
		t.Errorf("ρ1 dangerous = %v, want {?X}", sortedVars(vc.Dangerous))
	}
	if !vc.Harmless[V("Y")] {
		t.Error("?Y should be harmless in ρ1")
	}
	if !vc.Harmful[V("Z")] || vc.Dangerous[V("Z")] {
		t.Error("?Z should be harmful but not dangerous in ρ1")
	}
	// ρ2 = t(?X,?Y,?Z) → ∃?W p(?W,?Z): ?X harmless (t[1]); ?Y harmful (t[2]);
	// ?Z harmful+dangerous (t[3], appears in head).
	vc = an.Classify(p.Rules[1])
	if !vc.Harmless[V("X")] || !vc.Harmful[V("Y")] || !vc.Dangerous[V("Z")] {
		t.Errorf("ρ2 classification wrong: %+v", vc)
	}
}

func TestAffectedEmptyForDatalog(t *testing.T) {
	// Plain Datalog programs have no affected positions (Section 6.3:
	// "given a Datalog program Π, affected(Π) = ∅").
	p := MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`)
	an := Analyze(p)
	if n := len(an.AffectedPositions()); n != 0 {
		t.Errorf("Datalog program has %d affected positions, want 0", n)
	}
	for _, r := range p.Rules {
		vc := an.Classify(r)
		if len(vc.Harmful) != 0 || len(vc.Dangerous) != 0 {
			t.Errorf("Datalog rule %v has harmful variables", r)
		}
	}
}

func TestAffectedPropagationChain(t *testing.T) {
	// Affectedness must propagate through rule chains.
	p := MustParse(`
		a(?X) -> exists ?Z b(?Z).
		b(?X) -> c(?X).
		c(?X) -> d(?X).
	`)
	an := Analyze(p)
	for _, pos := range []Position{{"b", 1}, {"c", 1}, {"d", 1}} {
		if !an.IsAffected(pos) {
			t.Errorf("%v should be affected via propagation", pos)
		}
	}
	if an.IsAffected(Position{"a", 1}) {
		t.Error("a[1] must not be affected")
	}
}

func TestAffectedBlockedByNonAffectedOccurrence(t *testing.T) {
	// A variable with one non-affected occurrence is harmless and does not
	// propagate affectedness (the ?Y/t[1] case of Example 4.1).
	p := MustParse(`
		a(?X) -> exists ?Z b(?Z).
		b(?X), ground(?X) -> c(?X).
	`)
	an := Analyze(p)
	if an.IsAffected(Position{"c", 1}) {
		t.Error("c[1] must not be affected: ?X is anchored by ground(?X)")
	}
}

func TestClassifyIgnoresNegativeOccurrences(t *testing.T) {
	// Negative atoms never make a variable harmless: classification is over
	// ex(Π)+.
	p := MustParse(`
		a(?X) -> exists ?Z b(?Z).
		b(?X), not ground(?X) -> c(?X).
	`)
	an := Analyze(p.Positive())
	vc := an.Classify(p.Rules[1])
	if !vc.Dangerous[V("X")] {
		t.Error("?X must stay dangerous; its only positive occurrence is affected")
	}
}
