package datalog

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	if C("a").Kind != Const || N("z").Kind != Null || V("X").Kind != Var {
		t.Fatal("constructor kinds wrong")
	}
	if V("X") != V("?X") {
		t.Error("V should normalize the ? prefix")
	}
	if !C("a").IsConst() || !N("z").IsNull() || !V("X").IsVar() {
		t.Error("kind predicates wrong")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{V("X"), "?X"},
		{N("z1"), "_:z1"},
		{C("rdf:type"), "rdf:type"},
		{C("∃eats"), "∃eats"},
		{C("has space"), `"has space"`},
		{C(`has"quote`), `"has\"quote"`},
		{C(""), `""`},
		{C("⋆"), "⋆"},
	}
	for _, tc := range cases {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.term, got, tc.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if Const.String() != "Const" || Null.String() != "Null" || Var.String() != "Var" {
		t.Error("TermKind.String wrong")
	}
	if TermKind(9).String() == "" {
		t.Error("unknown TermKind should render")
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("triple", V("X"), C("rdf:type"), V("X"))
	if a.Arity() != 3 {
		t.Errorf("Arity = %d", a.Arity())
	}
	if vs := a.Vars(); len(vs) != 1 || vs[0] != V("X") {
		t.Errorf("Vars = %v", vs)
	}
	if !a.HasVar(V("X")) || a.HasVar(V("Y")) {
		t.Error("HasVar wrong")
	}
	if got := a.String(); got != "triple(?X, rdf:type, ?X)" {
		t.Errorf("String = %q", got)
	}
	if a.IsGround() {
		t.Error("atom with variables is not ground")
	}
	g := NewAtom("p", C("a"), N("z"))
	if !g.IsGround() {
		t.Error("constant/null atom is ground")
	}
	if g.IsConstantGround() {
		t.Error("atom with null is not constant-ground")
	}
	if !NewAtom("p", C("a")).IsConstantGround() {
		t.Error("constant atom is constant-ground")
	}
}

func TestAtomTerms(t *testing.T) {
	a := NewAtom("p", V("X"), C("c"), V("X"), N("z"))
	if got := a.Terms(); len(got) != 3 {
		t.Errorf("Terms = %v, want 3 distinct", got)
	}
}

func TestAtomEqualAndKey(t *testing.T) {
	a := NewAtom("p", C("a"), V("X"))
	b := NewAtom("p", C("a"), V("X"))
	c := NewAtom("p", C("a"), N("X"))
	if !a.Equal(b) {
		t.Error("identical atoms should be equal")
	}
	if a.Equal(c) {
		t.Error("var vs null should differ")
	}
	if a.Key() == c.Key() {
		t.Error("keys must distinguish term kinds")
	}
	if a.Key() != b.Key() {
		t.Error("equal atoms must share keys")
	}
	if a.Equal(NewAtom("p", C("a"))) || a.Equal(NewAtom("q", C("a"), V("X"))) {
		t.Error("arity/pred mismatch should differ")
	}
}

func TestAtomSubstitute(t *testing.T) {
	a := NewAtom("p", V("X"), V("Y"), C("c"))
	sub := map[Term]Term{V("X"): C("a"), V("Y"): N("z")}
	got := a.Substitute(sub)
	want := NewAtom("p", C("a"), N("z"), C("c"))
	if !got.Equal(want) {
		t.Errorf("Substitute = %v, want %v", got, want)
	}
	// Original must be unchanged.
	if !a.Equal(NewAtom("p", V("X"), V("Y"), C("c"))) {
		t.Error("Substitute mutated the receiver")
	}
}

func TestVarsOfOrder(t *testing.T) {
	atoms := []Atom{
		NewAtom("p", V("B"), V("A")),
		NewAtom("q", V("A"), V("C")),
	}
	got := VarsOf(atoms)
	want := []Term{V("B"), V("A"), V("C")}
	if len(got) != len(want) {
		t.Fatalf("VarsOf = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("VarsOf[%d] = %v, want %v (first-occurrence order)", i, got[i], want[i])
		}
	}
}

func TestAtomCompare(t *testing.T) {
	if NewAtom("p", C("a")).Compare(NewAtom("q", C("a"))) >= 0 {
		t.Error("pred order wrong")
	}
	if NewAtom("p", C("a")).Compare(NewAtom("p", C("a"), C("b"))) >= 0 {
		t.Error("arity order wrong")
	}
	if NewAtom("p", C("a")).Compare(NewAtom("p", C("b"))) >= 0 {
		t.Error("arg order wrong")
	}
	if NewAtom("p", C("a")).Compare(NewAtom("p", C("a"))) != 0 {
		t.Error("equal atoms should compare 0")
	}
}

func TestTermCompareQuick(t *testing.T) {
	mk := func(k uint8, n string) Term { return Term{Kind: TermKind(k % 3), Name: n} }
	antisym := func(k1 uint8, n1 string, k2 uint8, n2 string) bool {
		a, b := mk(k1, n1), mk(k2, n2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
}

func TestSortAtoms(t *testing.T) {
	atoms := []Atom{NewAtom("q", C("a")), NewAtom("p", C("b")), NewAtom("p", C("a"))}
	SortAtoms(atoms)
	if atoms[0].Pred != "p" || atoms[0].Args[0] != C("a") || atoms[2].Pred != "q" {
		t.Errorf("SortAtoms = %v", atoms)
	}
}

func TestPositionString(t *testing.T) {
	if got := (Position{"t", 3}).String(); got != "t[3]" {
		t.Errorf("Position.String = %q", got)
	}
}
