package datalog

import "testing"

func TestStratifyPositiveProgram(t *testing.T) {
	p := MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Max != 0 {
		t.Errorf("positive program should be a single stratum, got max %d", s.Max)
	}
}

func TestStratifyNegation(t *testing.T) {
	p := MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
		v(?X), v(?Y), not tc(?X, ?Y) -> unreachable(?X, ?Y).
		v(?X), v(?Y), not unreachable(?X, ?Y) -> report(?X, ?Y).
	`)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Level["tc"] != 0 {
		t.Errorf("tc level = %d, want 0", s.Level["tc"])
	}
	if s.Level["unreachable"] != 1 {
		t.Errorf("unreachable level = %d, want 1", s.Level["unreachable"])
	}
	if s.Level["report"] != 2 {
		t.Errorf("report level = %d, want 2", s.Level["report"])
	}
	if s.Max != 2 {
		t.Errorf("max = %d, want 2", s.Max)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	p := MustParse(`
		base(?X), not q(?X) -> p(?X).
		base(?X), not p(?X) -> q(?X).
	`)
	if _, err := Stratify(p); err == nil {
		t.Error("mutual negation must be rejected")
	}
	// Positive recursion through a negative edge elsewhere is fine.
	q := MustParse(`
		base(?X), not excl(?X) -> p(?X).
		p(?X), e(?X, ?Y) -> p(?Y).
	`)
	if _, err := Stratify(q); err != nil {
		t.Errorf("stratifiable program rejected: %v", err)
	}
	// Self-negation is the smallest negative cycle.
	r := MustParse(`p(?X), not p(?X) -> p(?X).`)
	if _, err := Stratify(r); err == nil {
		t.Error("self-negation must be rejected")
	}
}

func TestStratifyCliqueProgram(t *testing.T) {
	p := MustParse(cliqueProgramSrc)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	// noclique must be strictly below yes (negated), and not_min strictly
	// below zero0.
	if !(s.Level["yes"] > s.Level["noclique"]) {
		t.Errorf("yes (%d) must be above noclique (%d)", s.Level["yes"], s.Level["noclique"])
	}
	if !(s.Level["zero0"] > s.Level["not_min"]) {
		t.Errorf("zero0 (%d) must be above not_min (%d)", s.Level["zero0"], s.Level["not_min"])
	}
}

func TestStrataPartition(t *testing.T) {
	p := MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		v(?X), v(?Y), not tc(?X, ?Y) -> un(?X, ?Y).
	`)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	strata, err := s.Strata(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 || len(strata[0]) != 1 || len(strata[1]) != 1 {
		t.Errorf("strata shape wrong: %v", strata)
	}
	if s.RuleStratum(p.Rules[1]) != 1 {
		t.Errorf("RuleStratum(un rule) = %d", s.RuleStratum(p.Rules[1]))
	}
}

func TestStrataRejectsMixedHeads(t *testing.T) {
	p := MustParse(`
		base(?X), not neg(?X) -> hi(?X).
		base(?X) -> neg(?X).
	`)
	// Force a multi-head rule with heads in different strata.
	p.Add(Rule{
		BodyPos: []Atom{NewAtom("base", V("X"))},
		Head:    []Atom{NewAtom("hi", V("X")), NewAtom("lo", V("X"))},
	})
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Strata(p); err == nil {
		t.Error("multi-head rule across strata should be rejected by Strata")
	}
}

func TestStratificationOrdered(t *testing.T) {
	p := MustParse(`
		b(?X), not a(?X) -> c(?X).
		b(?X) -> a(?X).
	`)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	ord := s.Ordered()
	if len(ord) != 3 {
		t.Fatalf("Ordered = %v", ord)
	}
	// c is in the top stratum, so it must come last.
	if ord[len(ord)-1] != "c" {
		t.Errorf("Ordered = %v, want c last", ord)
	}
}
